// Smoke test: end-to-end Listing 4 on a tiny graph, exercising the whole
// stack (generator -> builder -> graph_t -> operators -> enactor -> sssp).
#include <gtest/gtest.h>

#include "algorithms/sssp.hpp"
#include "essentials.hpp"

namespace e = essentials;

TEST(Smoke, SsspOnTinyGraph) {
  // 0 -1-> 1 -1-> 2, 0 -5-> 2
  e::graph::coo_t<> coo;
  coo.num_rows = coo.num_cols = 3;
  coo.push_back(0, 1, 1.0f);
  coo.push_back(1, 2, 1.0f);
  coo.push_back(0, 2, 5.0f);
  auto const g = e::graph::from_coo<e::graph::graph_csr>(std::move(coo));

  auto const seq = e::algorithms::sssp(e::execution::seq, g, 0);
  EXPECT_FLOAT_EQ(seq.distances[0], 0.0f);
  EXPECT_FLOAT_EQ(seq.distances[1], 1.0f);
  EXPECT_FLOAT_EQ(seq.distances[2], 2.0f);

  auto const par = e::algorithms::sssp(e::execution::par, g, 0);
  EXPECT_EQ(par.distances, seq.distances);

  auto const oracle = e::algorithms::dijkstra(g, 0);
  EXPECT_EQ(oracle.distances, seq.distances);
}

TEST(Smoke, RmatBuildsValidCsr) {
  e::generators::rmat_options opt;
  opt.scale = 8;
  opt.edge_factor = 8;
  auto coo = e::generators::rmat(opt);
  auto const g = e::graph::from_coo<e::graph::graph_push_pull>(std::move(coo));
  EXPECT_TRUE(e::graph::is_valid_csr(g.csr()));
  EXPECT_EQ(g.get_num_vertices(), 256);
  EXPECT_GT(g.get_num_edges(), 0);
}
