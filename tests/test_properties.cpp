// Property-based suite: algorithm-independent *invariants* checked over a
// parameterized sweep of graph families and seeds.  Where the oracle tests
// compare implementations pairwise, these check the mathematical contract
// of each result directly — so a bug shared by implementation and oracle
// still gets caught.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <tuple>

#include "algorithms/bfs.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "core/operators/advance_balanced.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;
namespace op = e::operators;
using e::vertex_t;

namespace {

g::graph_push_pull make_graph(std::string const& family, std::uint64_t seed) {
  e::generators::weight_options w{0.5f, 4.0f};
  g::coo_t<> coo;
  if (family == "rmat") {
    e::generators::rmat_options opt;
    opt.scale = 8;
    opt.edge_factor = 8;
    opt.seed = seed;
    opt.weights = w;
    coo = e::generators::rmat(opt);
  } else if (family == "er") {
    coo = e::generators::erdos_renyi(300, 2400, w, seed);
  } else if (family == "grid") {
    coo = e::generators::grid_2d(15, 17, w, seed);
  } else {
    coo = e::generators::watts_strogatz(250, 3, 0.2, w, seed);
  }
  g::remove_self_loops(coo);
  return g::from_coo<g::graph_push_pull>(std::move(coo),
                                         g::duplicate_policy::keep_min);
}

auto const always = [](vertex_t, vertex_t, e::edge_t, e::weight_t) {
  return true;
};

std::vector<vertex_t> sorted(std::vector<vertex_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

using Param = std::tuple<std::string, std::uint64_t>;

class GraphProperty : public ::testing::TestWithParam<Param> {
 protected:
  g::graph_push_pull graph_ = make_graph(std::get<0>(GetParam()),
                                         std::get<1>(GetParam()));
};

// --- SSSP fixpoint invariants ----------------------------------------------------

TEST_P(GraphProperty, SsspDistancesAreARelaxationFixpoint) {
  auto const d = e::algorithms::sssp(e::execution::par, graph_, 0).distances;
  // No edge can further relax: d[v] <= d[u] + w(u, v) for every edge.
  for (vertex_t u = 0; u < graph_.get_num_vertices(); ++u) {
    if (d[static_cast<std::size_t>(u)] == e::infinity_v<float>)
      continue;
    for (auto const ed : graph_.get_edges(u)) {
      auto const v = graph_.get_dest_vertex(ed);
      EXPECT_LE(d[static_cast<std::size_t>(v)],
                d[static_cast<std::size_t>(u)] + graph_.get_edge_weight(ed) +
                    1e-4f)
          << u << " -> " << v;
    }
  }
}

TEST_P(GraphProperty, SsspDistancesAreAttainedByRealPaths) {
  auto const d = e::algorithms::sssp(e::execution::par, graph_, 0).distances;
  // Every finite non-source distance is witnessed by an incoming edge that
  // achieves it exactly.
  for (vertex_t v = 1; v < graph_.get_num_vertices(); ++v) {
    if (d[static_cast<std::size_t>(v)] == e::infinity_v<float>)
      continue;
    bool witnessed = false;
    for (auto const ed : graph_.get_in_edges(v)) {
      auto const u = graph_.get_in_source_vertex(ed);
      if (d[static_cast<std::size_t>(u)] == e::infinity_v<float>)
        continue;
      if (std::abs(d[static_cast<std::size_t>(u)] +
                   graph_.get_in_edge_weight(ed) -
                   d[static_cast<std::size_t>(v)]) < 1e-3f) {
        witnessed = true;
        break;
      }
    }
    EXPECT_TRUE(witnessed) << "vertex " << v << " distance "
                           << d[static_cast<std::size_t>(v)]
                           << " has no witnessing edge";
  }
}

TEST_P(GraphProperty, SsspReachabilityMatchesBfsReachability) {
  auto const d = e::algorithms::sssp(e::execution::par, graph_, 0).distances;
  auto const reach = g::reachable_from(graph_.csr(), vertex_t{0});
  for (vertex_t v = 0; v < graph_.get_num_vertices(); ++v)
    EXPECT_EQ(d[static_cast<std::size_t>(v)] != e::infinity_v<float>,
              static_cast<bool>(reach[static_cast<std::size_t>(v)]))
        << v;
}

// --- BFS level invariants -----------------------------------------------------------

TEST_P(GraphProperty, BfsLevelsDifferByAtMostOneAcrossEdges) {
  auto const depths = e::algorithms::bfs(e::execution::par, graph_, 0).depths;
  for (vertex_t u = 0; u < graph_.get_num_vertices(); ++u) {
    if (depths[static_cast<std::size_t>(u)] == -1)
      continue;
    for (auto const ed : graph_.get_edges(u)) {
      auto const v = graph_.get_dest_vertex(ed);
      ASSERT_NE(depths[static_cast<std::size_t>(v)], -1)
          << "reached vertex has unreached successor";
      EXPECT_LE(depths[static_cast<std::size_t>(v)],
                depths[static_cast<std::size_t>(u)] + 1);
    }
  }
}

TEST_P(GraphProperty, BfsDepthsLowerBoundSsspHops) {
  // With weights >= 0.5, sssp distance >= 0.5 * hop count.
  auto const depths = e::algorithms::bfs(e::execution::par, graph_, 0).depths;
  auto const d = e::algorithms::sssp(e::execution::par, graph_, 0).distances;
  for (vertex_t v = 0; v < graph_.get_num_vertices(); ++v) {
    if (depths[static_cast<std::size_t>(v)] == -1)
      continue;
    EXPECT_GE(d[static_cast<std::size_t>(v)] + 1e-4f,
              0.5f * static_cast<float>(depths[static_cast<std::size_t>(v)]))
        << v;
  }
}

// --- operator overload equivalence (the §III-A contract) ----------------------------

TEST_P(GraphProperty, EveryAdvanceOverloadComputesTheSameSet) {
  e::frontier::sparse_frontier<vertex_t> in;
  for (vertex_t v = 0; v < graph_.get_num_vertices(); v += 5)
    in.add_vertex(v);

  auto const reference =
      sorted(op::advance_push(e::execution::seq, graph_, in, always)
                 .to_vector());

  EXPECT_EQ(sorted(op::advance_push(e::execution::par, graph_, in, always)
                       .to_vector()),
            reference);
  EXPECT_EQ(sorted(op::neighbors_expand_listing3(e::execution::par, graph_,
                                                 in, always)
                       .to_vector()),
            reference);
  EXPECT_EQ(sorted(op::advance_push_edge_balanced(e::execution::par, graph_,
                                                  in, always)
                       .to_vector()),
            reference);

  e::execution::parallel_nosync_policy nosync;
  e::frontier::sparse_frontier<vertex_t> nosync_out;
  op::advance_push(nosync, graph_, in, always, nosync_out);
  nosync.pool().wait_idle();
  EXPECT_EQ(sorted(nosync_out.to_vector()), reference);

  // Dense output equals the deduplicated reference.
  auto dedup = reference;
  dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
  EXPECT_EQ(op::advance_push_to_dense(e::execution::par, graph_, in, always)
                .to_vector(),
            dedup);
}

TEST_P(GraphProperty, PushAndPullAdvanceAgreeOnActivatedSet) {
  e::frontier::sparse_frontier<vertex_t> sparse_in;
  e::frontier::dense_frontier<vertex_t> dense_in(
      static_cast<std::size_t>(graph_.get_num_vertices()));
  for (vertex_t v = 0; v < graph_.get_num_vertices(); v += 7) {
    sparse_in.add_vertex(v);
    dense_in.add_vertex(v);
  }
  auto push = op::advance_push(e::execution::par, graph_, sparse_in, always);
  op::uniquify(e::execution::seq, push);
  auto const pull =
      op::advance_pull<false>(e::execution::par, graph_, dense_in, always);
  EXPECT_EQ(push.to_vector(), pull.to_vector());
}

// --- PageRank invariants --------------------------------------------------------------

TEST_P(GraphProperty, PagerankIsAProbabilityDistribution) {
  auto const r = e::algorithms::pagerank(e::execution::par, graph_);
  double const sum =
      std::accumulate(r.ranks.begin(), r.ranks.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  double const floor = (1.0 - 0.85) / graph_.get_num_vertices();
  for (double const rank : r.ranks)
    EXPECT_GE(rank, floor - 1e-12);
}

// --- k-core invariant --------------------------------------------------------------------

TEST_P(GraphProperty, KCoreMembersHaveEnoughCoreNeighbors) {
  // Build the undirected version for the k-core contract.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = graph_.get_num_vertices();
  for (vertex_t u = 0; u < graph_.get_num_vertices(); ++u)
    for (auto const ed : graph_.get_edges(u))
      coo.push_back(u, graph_.get_dest_vertex(ed), 1.0f);
  g::symmetrize(coo);
  auto const und = g::from_coo<g::graph_csr>(std::move(coo));

  auto const r = e::algorithms::kcore(e::execution::par, und);
  vertex_t const k = r.max_core;
  if (k < 1)
    return;
  // Every vertex with coreness >= k must have >= k neighbors with
  // coreness >= k (the defining property of the k-core).
  for (vertex_t v = 0; v < und.get_num_vertices(); ++v) {
    if (r.coreness[static_cast<std::size_t>(v)] < k)
      continue;
    int core_neighbors = 0;
    for (auto const ed : und.get_edges(v))
      core_neighbors +=
          r.coreness[static_cast<std::size_t>(und.get_dest_vertex(ed))] >= k;
    EXPECT_GE(core_neighbors, k) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, GraphProperty,
    ::testing::Combine(::testing::Values("rmat", "er", "grid", "ws"),
                       ::testing::Values(1u, 5u, 23u)),
    [](auto const& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });
