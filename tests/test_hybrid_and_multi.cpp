// Tests for the hierarchical/hybrid and multi-search extensions: hybrid
// SSSP (message passing between ranks + shared memory inside), bit-parallel
// multi-source BFS, and geolocation inference.
#include <gtest/gtest.h>

#include "algorithms/geo.hpp"
#include "algorithms/msbfs.hpp"
#include "algorithms/sssp_hybrid.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;
using e::vertex_t;

namespace {

g::graph_csr make_weighted(std::string const& family, std::uint64_t seed) {
  e::generators::weight_options w{0.5f, 4.0f};
  g::coo_t<> coo;
  if (family == "rmat") {
    e::generators::rmat_options opt;
    opt.scale = 9;
    opt.edge_factor = 8;
    opt.seed = seed;
    opt.weights = w;
    coo = e::generators::rmat(opt);
  } else if (family == "grid") {
    coo = e::generators::grid_2d(16, 16, w, seed);
  } else {
    coo = e::generators::erdos_renyi(400, 3200, w, seed);
  }
  g::remove_self_loops(coo);
  return g::from_coo<g::graph_csr>(std::move(coo),
                                   g::duplicate_policy::keep_min);
}

}  // namespace

// --- hybrid SSSP ---------------------------------------------------------------

TEST(HybridSssp, MatchesDijkstraAcrossFamilies) {
  for (auto const family : {"rmat", "grid", "er"}) {
    auto const gr = make_weighted(family, 3);
    auto const want = e::algorithms::dijkstra(gr, 0).distances;
    auto const got = e::algorithms::sssp_hybrid(gr, 0, /*ranks=*/3,
                                                /*threads_per_rank=*/2)
                         .distances;
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t v = 0; v < want.size(); ++v) {
      if (want[v] == e::infinity_v<float>)
        EXPECT_EQ(got[v], want[v]) << family << " v" << v;
      else
        EXPECT_NEAR(got[v], want[v], 1e-3f) << family << " v" << v;
    }
  }
}

TEST(HybridSssp, VariousRankAndThreadShapes) {
  auto const gr = make_weighted("er", 8);
  auto const want = e::algorithms::dijkstra(gr, 5).distances;
  for (auto const& [ranks, threads] :
       {std::pair{1, 4}, std::pair{2, 1}, std::pair{4, 2}}) {
    auto const got =
        e::algorithms::sssp_hybrid(gr, 5, ranks,
                                   static_cast<std::size_t>(threads))
            .distances;
    for (std::size_t v = 0; v < want.size(); ++v) {
      if (want[v] == e::infinity_v<float>) {
        EXPECT_EQ(got[v], want[v]);
      } else {
        EXPECT_NEAR(got[v], want[v], 1e-3f)
            << "ranks=" << ranks << " threads=" << threads << " v" << v;
      }
    }
  }
}

TEST(HybridSssp, PartitionDerivedOwnership) {
  auto const gr = make_weighted("grid", 2);
  auto const p = e::partition::partition_bfs_grow(gr.csr(), 3, 7);
  auto const want = e::algorithms::dijkstra(gr, 0).distances;
  auto const got =
      e::algorithms::sssp_hybrid(gr, 0, 3, 2,
                                 [&p](vertex_t v) { return p.part_of(v); })
          .distances;
  for (std::size_t v = 0; v < want.size(); ++v)
    EXPECT_NEAR(got[v], want[v], 1e-3f) << v;
}

// --- multi-source BFS --------------------------------------------------------------

TEST(MsBfs, EachLaneMatchesSingleSourceBfs) {
  auto const gr = make_weighted("er", 4);
  std::vector<vertex_t> const sources{0, 7, 42, 199};
  auto const multi =
      e::algorithms::multi_source_bfs(e::execution::par, gr, sources);
  ASSERT_EQ(multi.depth.size(), sources.size());
  for (std::size_t s = 0; s < sources.size(); ++s) {
    auto const single = e::algorithms::bfs_serial(gr, sources[s]).depths;
    EXPECT_EQ(multi.depth[s], single) << "source " << sources[s];
  }
}

TEST(MsBfs, SixtyFourLanes) {
  auto const gr = make_weighted("rmat", 6);
  std::vector<vertex_t> sources;
  for (vertex_t s = 0; s < 64; ++s)
    sources.push_back(s * 3);
  auto const multi =
      e::algorithms::multi_source_bfs(e::execution::par, gr, sources);
  // Spot check lanes 0, 31, 63 against single-source runs.
  for (std::size_t lane : {0u, 31u, 63u}) {
    auto const single = e::algorithms::bfs_serial(gr, sources[lane]).depths;
    EXPECT_EQ(multi.depth[lane], single) << "lane " << lane;
  }
}

TEST(MsBfs, IterationCountIsMaxEccentricityOfSources) {
  auto coo = e::generators::chain(30);
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  auto const multi = e::algorithms::multi_source_bfs(
      e::execution::par, gr, std::vector<vertex_t>{0, 25});
  // Source 0 reaches depth 29; the sweep runs 29 productive levels + 1.
  EXPECT_EQ(multi.depth[0][29], 29);
  EXPECT_EQ(multi.depth[1][29], 4);
  EXPECT_EQ(multi.depth[1][0], -1);  // chain is directed
  EXPECT_EQ(multi.iterations, 30u);
}

TEST(MsBfs, RejectsBadSourceCounts) {
  auto const gr = make_weighted("er", 1);
  EXPECT_THROW(e::algorithms::multi_source_bfs(e::execution::par, gr,
                                               std::vector<vertex_t>{}),
               e::graph_error);
  std::vector<vertex_t> too_many(65, 0);
  EXPECT_THROW(
      e::algorithms::multi_source_bfs(e::execution::par, gr, too_many),
      e::graph_error);
}

// --- geolocation ----------------------------------------------------------------------

TEST(Geo, HaversineKnownDistances) {
  e::algorithms::geo_point const paris{48.8566, 2.3522, true};
  e::algorithms::geo_point const london{51.5074, -0.1278, true};
  double const d = e::algorithms::haversine_km(paris, london);
  EXPECT_NEAR(d, 344.0, 10.0);  // ~344 km
  EXPECT_NEAR(e::algorithms::haversine_km(paris, paris), 0.0, 1e-9);
}

TEST(Geo, UnlocatedVertexMovesToNeighborMean) {
  // Star: hub unlabeled, two spokes at known positions.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 3;
  coo.push_back(0, 1, 1.f);
  coo.push_back(0, 2, 1.f);
  coo.push_back(1, 0, 1.f);
  coo.push_back(2, 0, 1.f);
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  std::vector<e::algorithms::geo_point> seeds(3);
  seeds[1] = {10.0, 20.0, true};
  seeds[2] = {12.0, 22.0, true};
  auto const r = e::algorithms::geolocate(e::execution::par, gr, seeds);
  EXPECT_EQ(r.located, 3u);
  EXPECT_NEAR(r.positions[0].latitude, 11.0, 0.1);
  EXPECT_NEAR(r.positions[0].longitude, 21.0, 0.1);
  // Anchored vertices never move.
  EXPECT_DOUBLE_EQ(r.positions[1].latitude, 10.0);
}

TEST(Geo, PropagatesAlongChains) {
  // 0(known) - 1 - 2 - 3: everyone converges to vertex 0's position.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  for (vertex_t v = 0; v + 1 < 4; ++v) {
    coo.push_back(v, v + 1, 1.f);
    coo.push_back(v + 1, v, 1.f);
  }
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  std::vector<e::algorithms::geo_point> seeds(4);
  seeds[0] = {45.0, -120.0, true};
  auto const r = e::algorithms::geolocate(e::execution::par, gr, seeds);
  EXPECT_EQ(r.located, 4u);
  for (int v = 1; v < 4; ++v) {
    EXPECT_NEAR(r.positions[static_cast<std::size_t>(v)].latitude, 45.0, 0.5);
    EXPECT_NEAR(r.positions[static_cast<std::size_t>(v)].longitude, -120.0,
                0.5);
  }
}

TEST(Geo, DisconnectedVerticesStayUnlocated) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 3;
  coo.push_back(0, 1, 1.f);
  coo.push_back(1, 0, 1.f);
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  std::vector<e::algorithms::geo_point> seeds(3);
  seeds[0] = {1.0, 1.0, true};
  auto const r = e::algorithms::geolocate(e::execution::par, gr, seeds);
  EXPECT_TRUE(r.positions[1].located);
  EXPECT_FALSE(r.positions[2].located);
  EXPECT_EQ(r.located, 2u);
}

TEST(Geo, AntimeridianSafeAveraging) {
  // Neighbors at longitude +179 and -179: naive averaging says 0 (wrong
  // hemisphere); spherical mean says ~180.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 3;
  coo.push_back(0, 1, 1.f);
  coo.push_back(0, 2, 1.f);
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  std::vector<e::algorithms::geo_point> seeds(3);
  seeds[1] = {0.0, 179.0, true};
  seeds[2] = {0.0, -179.0, true};
  auto const r = e::algorithms::geolocate(e::execution::par, gr, seeds);
  ASSERT_TRUE(r.positions[0].located);
  EXPECT_NEAR(std::abs(r.positions[0].longitude), 180.0, 0.5);
}
