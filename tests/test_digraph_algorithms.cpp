// Tests for the directed-graph algorithm additions: strongly connected
// components (FW-BW vs Tarjan), topological sort, maximal matching and
// diameter estimation.
#include <gtest/gtest.h>

#include <set>

#include "algorithms/diameter.hpp"
#include "algorithms/matching.hpp"
#include "algorithms/scc.hpp"
#include "algorithms/topological_sort.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;
using e::vertex_t;

namespace {

g::graph_push_pull directed(g::coo_t<> coo) {
  g::remove_self_loops(coo);
  return g::from_coo<g::graph_push_pull>(std::move(coo));
}

g::graph_full undirected(g::coo_t<> coo) {
  g::remove_self_loops(coo);
  g::symmetrize(coo);
  return g::from_coo<g::graph_full>(std::move(coo));
}

/// Compare two SCC labelings as partitions (labels may differ).
template <typename V>
void expect_same_partition(std::vector<V> const& a, std::vector<V> const& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t u = 0; u < a.size(); ++u)
    for (std::size_t v = u + 1; v < a.size(); ++v)
      EXPECT_EQ(a[u] == a[v], b[u] == b[v]) << u << "," << v;
}

}  // namespace

// --- SCC ----------------------------------------------------------------------

TEST(Scc, TwoCyclesAndABridge) {
  // Cycle {0,1,2}, cycle {3,4}, bridge 2->3, hermit 5.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 6;
  coo.push_back(0, 1, 1.f);
  coo.push_back(1, 2, 1.f);
  coo.push_back(2, 0, 1.f);
  coo.push_back(3, 4, 1.f);
  coo.push_back(4, 3, 1.f);
  coo.push_back(2, 3, 1.f);
  auto const gr = directed(std::move(coo));
  auto const fwbw =
      e::algorithms::strongly_connected_components(e::execution::par, gr);
  auto const tarjan =
      e::algorithms::strongly_connected_components_serial(gr);
  EXPECT_EQ(fwbw.num_components, 3u);
  EXPECT_EQ(tarjan.num_components, 3u);
  expect_same_partition(fwbw.component, tarjan.component);
}

TEST(Scc, DagHasOnlySingletons) {
  auto const gr = directed(e::generators::chain(20));
  auto const r =
      e::algorithms::strongly_connected_components(e::execution::par, gr);
  EXPECT_EQ(r.num_components, 20u);
}

TEST(Scc, FullCycleIsOneComponent) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 12;
  for (vertex_t v = 0; v < 12; ++v)
    coo.push_back(v, (v + 1) % 12, 1.f);
  auto const gr = directed(std::move(coo));
  auto const r =
      e::algorithms::strongly_connected_components(e::execution::par, gr);
  EXPECT_EQ(r.num_components, 1u);
}

TEST(Scc, FwBwMatchesTarjanOnRandomDigraphs) {
  for (std::uint64_t seed : {1u, 4u, 9u}) {
    auto const gr = directed(e::generators::erdos_renyi(120, 360, {}, seed));
    auto const fwbw =
        e::algorithms::strongly_connected_components(e::execution::par, gr);
    auto const tarjan =
        e::algorithms::strongly_connected_components_serial(gr);
    EXPECT_EQ(fwbw.num_components, tarjan.num_components) << "seed " << seed;
    expect_same_partition(fwbw.component, tarjan.component);
  }
}

TEST(Scc, EveryVertexGetsALabel) {
  auto const gr = directed(e::generators::erdos_renyi(200, 800, {}, 7));
  auto const r =
      e::algorithms::strongly_connected_components(e::execution::par, gr);
  std::set<vertex_t> labels;
  for (auto const c : r.component) {
    EXPECT_NE(c, e::invalid_vertex<vertex_t>);
    labels.insert(c);
  }
  EXPECT_EQ(labels.size(), r.num_components);
}

// --- topological sort -------------------------------------------------------------

TEST(TopoSort, ChainOrdersLinearly) {
  auto const gr = directed(e::generators::chain(30));
  auto const r = e::algorithms::topological_sort(e::execution::par, gr);
  ASSERT_TRUE(r.is_dag);
  EXPECT_TRUE(e::algorithms::is_valid_topological_order(gr, r.order));
  EXPECT_EQ(r.levels, 30u);
}

TEST(TopoSort, DiamondDagParallelLayers) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  coo.push_back(0, 1, 1.f);
  coo.push_back(0, 2, 1.f);
  coo.push_back(1, 3, 1.f);
  coo.push_back(2, 3, 1.f);
  auto const gr = directed(std::move(coo));
  auto const r = e::algorithms::topological_sort(e::execution::par, gr);
  ASSERT_TRUE(r.is_dag);
  EXPECT_TRUE(e::algorithms::is_valid_topological_order(gr, r.order));
  EXPECT_EQ(r.levels, 3u);  // {0}, {1,2}, {3}
}

TEST(TopoSort, DetectsCycle) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 3;
  coo.push_back(0, 1, 1.f);
  coo.push_back(1, 2, 1.f);
  coo.push_back(2, 0, 1.f);
  auto const gr = directed(std::move(coo));
  auto const r = e::algorithms::topological_sort(e::execution::par, gr);
  EXPECT_FALSE(r.is_dag);
  EXPECT_TRUE(r.order.empty());
}

TEST(TopoSort, RandomDagsValidate) {
  // Random DAG: ER edges oriented low -> high are acyclic by construction.
  for (std::uint64_t seed : {2u, 6u}) {
    auto coo = e::generators::erdos_renyi(200, 1200, {}, seed);
    for (std::size_t i = 0; i < coo.row_indices.size(); ++i)
      if (coo.row_indices[i] > coo.column_indices[i])
        std::swap(coo.row_indices[i], coo.column_indices[i]);
    auto const gr = directed(std::move(coo));
    auto const r = e::algorithms::topological_sort(e::execution::par, gr);
    ASSERT_TRUE(r.is_dag) << "seed " << seed;
    EXPECT_TRUE(e::algorithms::is_valid_topological_order(gr, r.order));
  }
}

TEST(TopoSort, ValidatorRejectsBadOrders) {
  auto const gr = directed(e::generators::chain(5));
  EXPECT_FALSE(e::algorithms::is_valid_topological_order(
      gr, std::vector<vertex_t>{4, 3, 2, 1, 0}));  // reversed
  EXPECT_FALSE(e::algorithms::is_valid_topological_order(
      gr, std::vector<vertex_t>{0, 1, 2, 3}));  // wrong size
  EXPECT_FALSE(e::algorithms::is_valid_topological_order(
      gr, std::vector<vertex_t>{0, 0, 2, 3, 4}));  // duplicate
}

// --- maximal matching --------------------------------------------------------------

TEST(Matching, HandshakeIsValidMaximalMatching) {
  for (std::uint64_t seed : {1u, 3u, 8u}) {
    auto const gr = undirected(e::generators::erdos_renyi(300, 1800, {}, seed));
    auto const r = e::algorithms::maximal_matching(e::execution::par, gr, seed);
    EXPECT_TRUE(e::algorithms::is_valid_maximal_matching(gr, r.mate))
        << "seed " << seed;
  }
}

TEST(Matching, SerialGreedyIsValid) {
  auto const gr = undirected(e::generators::watts_strogatz(200, 3, 0.1, {}, 2));
  auto const r = e::algorithms::maximal_matching_serial(gr);
  EXPECT_TRUE(e::algorithms::is_valid_maximal_matching(gr, r.mate));
}

TEST(Matching, PerfectMatchingOnEvenCycle) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 10;
  for (vertex_t v = 0; v < 10; ++v)
    coo.push_back(v, (v + 1) % 10, 1.f);
  auto const gr = undirected(std::move(coo));
  auto const r = e::algorithms::maximal_matching(e::execution::par, gr);
  EXPECT_TRUE(e::algorithms::is_valid_maximal_matching(gr, r.mate));
  EXPECT_GE(r.num_matched_edges, 4u);  // maximal on C10 is 4 or 5 edges
  EXPECT_LE(r.num_matched_edges, 5u);
}

TEST(Matching, StarMatchesExactlyOneEdge) {
  auto const gr = undirected(e::generators::star(20));
  auto const r = e::algorithms::maximal_matching(e::execution::par, gr);
  EXPECT_EQ(r.num_matched_edges, 1u);  // hub can match only once
  EXPECT_TRUE(e::algorithms::is_valid_maximal_matching(gr, r.mate));
}

TEST(Matching, MatchedCountsAgreeWithMateArray) {
  auto const gr = undirected(e::generators::erdos_renyi(150, 900, {}, 5));
  auto const r = e::algorithms::maximal_matching(e::execution::par, gr);
  std::size_t mated = 0;
  for (auto const m : r.mate)
    mated += (m != e::invalid_vertex<vertex_t>);
  EXPECT_EQ(mated, 2 * r.num_matched_edges);
}

// --- diameter ------------------------------------------------------------------------

TEST(Diameter, ExactOnPathAndGrid) {
  auto const path = undirected(e::generators::chain(17));
  EXPECT_EQ(e::algorithms::diameter_exact(e::execution::par, path).diameter,
            16);
  auto const grid = undirected(e::generators::grid_2d(5, 7));
  EXPECT_EQ(e::algorithms::diameter_exact(e::execution::par, grid).diameter,
            4 + 6);
}

TEST(Diameter, DoubleSweepIsTightOnTreesAndMeshes) {
  auto const path = undirected(e::generators::chain(40));
  auto const est = e::algorithms::diameter_double_sweep(e::execution::par,
                                                        path, 20);
  EXPECT_EQ(est.diameter, 39);  // exact on trees regardless of start

  auto const grid = undirected(e::generators::grid_2d(9, 9));
  auto const grid_exact =
      e::algorithms::diameter_exact(e::execution::par, grid);
  auto const grid_est =
      e::algorithms::diameter_double_sweep(e::execution::par, grid, 40);
  EXPECT_LE(grid_est.diameter, grid_exact.diameter);
  EXPECT_GE(grid_est.diameter, grid_exact.diameter - 2);
}

TEST(Diameter, LowerBoundNeverExceedsExact) {
  for (std::uint64_t seed : {1u, 7u}) {
    auto const gr = undirected(e::generators::erdos_renyi(150, 600, {}, seed));
    auto const exact = e::algorithms::diameter_exact(e::execution::par, gr);
    auto const est =
        e::algorithms::diameter_double_sweep(e::execution::par, gr, 0, 6);
    EXPECT_LE(est.diameter, exact.diameter) << "seed " << seed;
    EXPECT_GE(est.sweeps, 1u);
  }
}
