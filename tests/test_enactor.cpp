// Tests for the loop structure, convergence conditions (including the
// composable combinators), and the telemetry trace the BSP driver emits.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/enactor.hpp"
#include "core/frontier/frontier.hpp"
#include "core/telemetry.hpp"

namespace en = essentials::enactor;
namespace fr = essentials::frontier;
namespace tel = essentials::telemetry;
using essentials::vertex_t;

TEST(BspLoop, RunsUntilFrontierEmpty) {
  // Step halves the frontier each superstep: 8 -> 4 -> 2 -> 1 -> 0.
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>(8, 0));
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) {
        return fr::sparse_frontier<vertex_t>(
            std::vector<vertex_t>(in.size() / 2, 0));
      },
      en::frontier_empty{});
  EXPECT_EQ(stats.iterations, 4u);
  EXPECT_EQ(stats.total_processed, 8u + 4 + 2 + 1);
}

TEST(BspLoop, ConvergedInitialFrontierRunsZeroSteps) {
  fr::sparse_frontier<vertex_t> f;
  bool stepped = false;
  auto const stats = en::bsp_loop(
      std::move(f),
      [&stepped](fr::sparse_frontier<vertex_t> in, std::size_t) {
        stepped = true;
        return in;
      });
  EXPECT_FALSE(stepped);
  EXPECT_EQ(stats.iterations, 0u);
}

TEST(BspLoop, MaxIterationsCapsRunawayLoop) {
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) { return in; },
      en::max_iterations{7});
  EXPECT_EQ(stats.iterations, 7u);
}

TEST(BspLoop, EitherComposesConditions) {
  // Frontier never empties; the iteration cap must fire.
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) { return in; },
      en::either{en::frontier_empty{}, en::max_iterations{3}});
  EXPECT_EQ(stats.iterations, 3u);
}

TEST(BspLoop, ValueBelowStopsOnMeasurement) {
  double residual = 100.0;
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  auto const stats = en::bsp_loop(
      std::move(f),
      [&residual](fr::sparse_frontier<vertex_t> in, std::size_t) {
        residual /= 10.0;  // 10, 1, 0.1, 0.01 ...
        return in;
      },
      en::value_below{[&residual]() { return residual; }, 0.5});
  EXPECT_EQ(stats.iterations, 3u);  // stops once residual == 0.1 < 0.5
}

TEST(BspLoop, IterationIndexIsPassedToStep) {
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  std::vector<std::size_t> seen;
  en::bsp_loop(
      std::move(f),
      [&seen](fr::sparse_frontier<vertex_t> in, std::size_t iteration) {
        seen.push_back(iteration);
        return iteration == 2 ? fr::sparse_frontier<vertex_t>{} : in;
      });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(BspLoop, EmptyFrontierAliasNamesFrontierEmpty) {
  static_assert(std::is_same_v<en::empty_frontier, en::frontier_empty>);
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>(4, 0));
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) {
        return fr::sparse_frontier<vertex_t>(
            std::vector<vertex_t>(in.size() / 2, 0));
      },
      en::empty_frontier{});
  EXPECT_EQ(stats.iterations, 3u);  // 4 -> 2 -> 1 -> 0
}

TEST(BspLoop, AnyOfComposesThreeConditions) {
  // Frontier never empties and the metric never drops: only the iteration
  // cap can fire, regardless of the other conditions in the bundle.
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) { return in; },
      en::any_of{en::frontier_empty{},
                 en::value_below{[]() { return 1.0; }, 0.5},
                 en::max_iterations{5}});
  EXPECT_EQ(stats.iterations, 5u);
}

TEST(BspLoop, AnyOfFirstHitWins) {
  // The value condition converges before the cap.
  double residual = 100.0;
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  auto const stats = en::bsp_loop(
      std::move(f),
      [&residual](fr::sparse_frontier<vertex_t> in, std::size_t) {
        residual /= 10.0;
        return in;
      },
      en::any_of{en::max_iterations{50},
                 en::value_below{[&residual]() { return residual; }, 0.5}});
  EXPECT_EQ(stats.iterations, 3u);
}

TEST(BspLoop, StatsTrackEmittedAndWallTime) {
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>(8, 0));
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) {
        return fr::sparse_frontier<vertex_t>(
            std::vector<vertex_t>(in.size() / 2, 0));
      },
      en::frontier_empty{});
  EXPECT_EQ(stats.total_processed, 8u + 4 + 2 + 1);
  EXPECT_EQ(stats.total_emitted, 4u + 2 + 1 + 0);
  EXPECT_GE(stats.millis, 0.0);
}

// --- telemetry trace invariants --------------------------------------------

TEST(BspLoopTelemetry, OneSuperstepRecordPerIteration) {
  if (!tel::compiled_in)
    GTEST_SKIP() << "telemetry compiled out";
  tel::trace t;
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>(8, 0));
  en::enact_stats stats;
  {
    tel::scoped_recording rec(t, "halving");
    stats = en::bsp_loop(
        std::move(f),
        [](fr::sparse_frontier<vertex_t> in, std::size_t) {
          return fr::sparse_frontier<vertex_t>(
              std::vector<vertex_t>(in.size() / 2, 0));
        },
        en::frontier_empty{});
  }
  EXPECT_EQ(t.algorithm, "halving");
  ASSERT_EQ(t.num_supersteps(), stats.iterations);
  // The frontier size sequence is captured exactly: in 8,4,2,1 / out 4,2,1,0,
  // and each step's output is the next step's input.
  std::size_t expect_in = 8;
  for (std::size_t i = 0; i < t.supersteps.size(); ++i) {
    auto const& s = t.supersteps[i];
    EXPECT_EQ(s.index, i);
    EXPECT_EQ(s.frontier_in, expect_in);
    EXPECT_EQ(s.frontier_out, expect_in / 2);
    EXPECT_GE(s.millis, 0.0);
    expect_in /= 2;
  }
}

TEST(BspLoopTelemetry, NoScopeRecordsNothing) {
  // Without a scoped_recording the loop must leave no trace anywhere; this
  // is the run-time null-sink path every un-instrumented caller takes.
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>(4, 0));
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) {
        return fr::sparse_frontier<vertex_t>(
            std::vector<vertex_t>(in.size() / 2, 0));
      },
      en::frontier_empty{});
  EXPECT_EQ(stats.iterations, 3u);
  EXPECT_EQ(tel::current(), nullptr);
}

TEST(BspLoopTelemetry, NestedScopesRestoreOuterRecorder) {
  if (!tel::compiled_in)
    GTEST_SKIP() << "telemetry compiled out";
  tel::trace outer, inner;
  auto const run = []() {
    fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
    en::bsp_loop(
        std::move(f),
        [](fr::sparse_frontier<vertex_t>, std::size_t) {
          return fr::sparse_frontier<vertex_t>{};
        },
        en::frontier_empty{});
  };
  {
    tel::scoped_recording a(outer, "outer");
    run();
    {
      tel::scoped_recording b(inner, "inner");
      run();
    }
    run();  // records into the restored outer scope
  }
  EXPECT_EQ(outer.num_supersteps(), 2u);
  EXPECT_EQ(inner.num_supersteps(), 1u);
}

TEST(AsyncLoopTelemetry, RecordsOneAsyncOpRecord) {
  if (!tel::compiled_in)
    GTEST_SKIP() << "telemetry compiled out";
  tel::trace t;
  {
    tel::scoped_recording rec(t, "async");
    fr::async_queue_frontier<vertex_t> f;
    for (vertex_t v = 0; v < 10; ++v)
      f.add_vertex(v);
    en::async_loop(f, 2, [](vertex_t) {});
  }
  ASSERT_EQ(t.num_supersteps(), 1u);
  ASSERT_EQ(t.supersteps[0].ops.size(), 1u);
  auto const& op = t.supersteps[0].ops[0];
  EXPECT_EQ(op.name, "async_loop");
  EXPECT_TRUE(op.async);
  EXPECT_EQ(op.items_in, 10u);
  EXPECT_EQ(op.items_out, 10u);
  EXPECT_EQ(op.pool_lanes, 2u);
}

TEST(AsyncLoop, ProcessesDynamicallyGeneratedWork) {
  fr::async_queue_frontier<vertex_t> f;
  f.add_vertex(0);
  std::atomic<int> max_seen{0};
  auto const processed = en::async_loop(f, 4, [&](vertex_t v) {
    int old = max_seen.load();
    while (v > old && !max_seen.compare_exchange_weak(old, v)) {
    }
    if (v < 100)
      f.add_vertex(v + 1);
  });
  EXPECT_EQ(processed, 101u);
  EXPECT_EQ(max_seen.load(), 100);
}

TEST(AsyncLoop, SingleWorkerDrainsSequentially) {
  fr::async_queue_frontier<vertex_t> f;
  for (vertex_t v = 0; v < 10; ++v)
    f.add_vertex(v);
  std::atomic<int> count{0};
  auto const processed =
      en::async_loop(f, 1, [&count](vertex_t) { count.fetch_add(1); });
  EXPECT_EQ(processed, 10u);
  EXPECT_EQ(count.load(), 10);
}

TEST(AsyncLoop, EmptyFrontierReturnsImmediately) {
  fr::async_queue_frontier<vertex_t> f;
  auto const processed = en::async_loop(f, 2, [](vertex_t) {});
  EXPECT_EQ(processed, 0u);
}

TEST(AsyncLoop, RejectsZeroWorkers) {
  fr::async_queue_frontier<vertex_t> f;
  EXPECT_THROW(en::async_loop(f, 0, [](vertex_t) {}),
               essentials::graph_error);
}
