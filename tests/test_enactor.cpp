// Tests for the loop structure and convergence conditions.
#include <gtest/gtest.h>

#include <atomic>

#include "core/enactor.hpp"
#include "core/frontier/frontier.hpp"

namespace en = essentials::enactor;
namespace fr = essentials::frontier;
using essentials::vertex_t;

TEST(BspLoop, RunsUntilFrontierEmpty) {
  // Step halves the frontier each superstep: 8 -> 4 -> 2 -> 1 -> 0.
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>(8, 0));
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) {
        return fr::sparse_frontier<vertex_t>(
            std::vector<vertex_t>(in.size() / 2, 0));
      },
      en::frontier_empty{});
  EXPECT_EQ(stats.iterations, 4u);
  EXPECT_EQ(stats.total_processed, 8u + 4 + 2 + 1);
}

TEST(BspLoop, ConvergedInitialFrontierRunsZeroSteps) {
  fr::sparse_frontier<vertex_t> f;
  bool stepped = false;
  auto const stats = en::bsp_loop(
      std::move(f),
      [&stepped](fr::sparse_frontier<vertex_t> in, std::size_t) {
        stepped = true;
        return in;
      });
  EXPECT_FALSE(stepped);
  EXPECT_EQ(stats.iterations, 0u);
}

TEST(BspLoop, MaxIterationsCapsRunawayLoop) {
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) { return in; },
      en::max_iterations{7});
  EXPECT_EQ(stats.iterations, 7u);
}

TEST(BspLoop, EitherComposesConditions) {
  // Frontier never empties; the iteration cap must fire.
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) { return in; },
      en::either{en::frontier_empty{}, en::max_iterations{3}});
  EXPECT_EQ(stats.iterations, 3u);
}

TEST(BspLoop, ValueBelowStopsOnMeasurement) {
  double residual = 100.0;
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  auto const stats = en::bsp_loop(
      std::move(f),
      [&residual](fr::sparse_frontier<vertex_t> in, std::size_t) {
        residual /= 10.0;  // 10, 1, 0.1, 0.01 ...
        return in;
      },
      en::value_below{[&residual]() { return residual; }, 0.5});
  EXPECT_EQ(stats.iterations, 3u);  // stops once residual == 0.1 < 0.5
}

TEST(BspLoop, IterationIndexIsPassedToStep) {
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  std::vector<std::size_t> seen;
  en::bsp_loop(
      std::move(f),
      [&seen](fr::sparse_frontier<vertex_t> in, std::size_t iteration) {
        seen.push_back(iteration);
        return iteration == 2 ? fr::sparse_frontier<vertex_t>{} : in;
      });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(AsyncLoop, ProcessesDynamicallyGeneratedWork) {
  fr::async_queue_frontier<vertex_t> f;
  f.add_vertex(0);
  std::atomic<int> max_seen{0};
  auto const processed = en::async_loop(f, 4, [&](vertex_t v) {
    int old = max_seen.load();
    while (v > old && !max_seen.compare_exchange_weak(old, v)) {
    }
    if (v < 100)
      f.add_vertex(v + 1);
  });
  EXPECT_EQ(processed, 101u);
  EXPECT_EQ(max_seen.load(), 100);
}

TEST(AsyncLoop, SingleWorkerDrainsSequentially) {
  fr::async_queue_frontier<vertex_t> f;
  for (vertex_t v = 0; v < 10; ++v)
    f.add_vertex(v);
  std::atomic<int> count{0};
  auto const processed =
      en::async_loop(f, 1, [&count](vertex_t) { count.fetch_add(1); });
  EXPECT_EQ(processed, 10u);
  EXPECT_EQ(count.load(), 10);
}

TEST(AsyncLoop, EmptyFrontierReturnsImmediately) {
  fr::async_queue_frontier<vertex_t> f;
  auto const processed = en::async_loop(f, 2, [](vertex_t) {});
  EXPECT_EQ(processed, 0u);
}

TEST(AsyncLoop, RejectsZeroWorkers) {
  fr::async_queue_frontier<vertex_t> f;
  EXPECT_THROW(en::async_loop(f, 0, [](vertex_t) {}),
               essentials::graph_error);
}
