// Tests for the loop structure, convergence conditions (including the
// composable combinators), and the telemetry trace the BSP driver emits.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/enactor.hpp"
#include "core/frontier/frontier.hpp"
#include "core/telemetry.hpp"

namespace en = essentials::enactor;
namespace fr = essentials::frontier;
namespace tel = essentials::telemetry;
using essentials::vertex_t;

TEST(BspLoop, RunsUntilFrontierEmpty) {
  // Step halves the frontier each superstep: 8 -> 4 -> 2 -> 1 -> 0.
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>(8, 0));
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) {
        return fr::sparse_frontier<vertex_t>(
            std::vector<vertex_t>(in.size() / 2, 0));
      },
      en::frontier_empty{});
  EXPECT_EQ(stats.iterations, 4u);
  EXPECT_EQ(stats.total_processed, 8u + 4 + 2 + 1);
}

TEST(BspLoop, ConvergedInitialFrontierRunsZeroSteps) {
  fr::sparse_frontier<vertex_t> f;
  bool stepped = false;
  auto const stats = en::bsp_loop(
      std::move(f),
      [&stepped](fr::sparse_frontier<vertex_t> in, std::size_t) {
        stepped = true;
        return in;
      });
  EXPECT_FALSE(stepped);
  EXPECT_EQ(stats.iterations, 0u);
}

TEST(BspLoop, MaxIterationsCapsRunawayLoop) {
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) { return in; },
      en::max_iterations{7});
  EXPECT_EQ(stats.iterations, 7u);
}

TEST(BspLoop, EitherComposesConditions) {
  // Frontier never empties; the iteration cap must fire.
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) { return in; },
      en::either{en::frontier_empty{}, en::max_iterations{3}});
  EXPECT_EQ(stats.iterations, 3u);
}

TEST(BspLoop, ValueBelowStopsOnMeasurement) {
  double residual = 100.0;
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  auto const stats = en::bsp_loop(
      std::move(f),
      [&residual](fr::sparse_frontier<vertex_t> in, std::size_t) {
        residual /= 10.0;  // 10, 1, 0.1, 0.01 ...
        return in;
      },
      en::value_below{[&residual]() { return residual; }, 0.5});
  EXPECT_EQ(stats.iterations, 3u);  // stops once residual == 0.1 < 0.5
}

TEST(BspLoop, IterationIndexIsPassedToStep) {
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  std::vector<std::size_t> seen;
  en::bsp_loop(
      std::move(f),
      [&seen](fr::sparse_frontier<vertex_t> in, std::size_t iteration) {
        seen.push_back(iteration);
        return iteration == 2 ? fr::sparse_frontier<vertex_t>{} : in;
      });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(BspLoop, EmptyFrontierAliasNamesFrontierEmpty) {
  static_assert(std::is_same_v<en::empty_frontier, en::frontier_empty>);
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>(4, 0));
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) {
        return fr::sparse_frontier<vertex_t>(
            std::vector<vertex_t>(in.size() / 2, 0));
      },
      en::empty_frontier{});
  EXPECT_EQ(stats.iterations, 3u);  // 4 -> 2 -> 1 -> 0
}

TEST(BspLoop, AnyOfComposesThreeConditions) {
  // Frontier never empties and the metric never drops: only the iteration
  // cap can fire, regardless of the other conditions in the bundle.
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) { return in; },
      en::any_of{en::frontier_empty{},
                 en::value_below{[]() { return 1.0; }, 0.5},
                 en::max_iterations{5}});
  EXPECT_EQ(stats.iterations, 5u);
}

TEST(BspLoop, AnyOfFirstHitWins) {
  // The value condition converges before the cap.
  double residual = 100.0;
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
  auto const stats = en::bsp_loop(
      std::move(f),
      [&residual](fr::sparse_frontier<vertex_t> in, std::size_t) {
        residual /= 10.0;
        return in;
      },
      en::any_of{en::max_iterations{50},
                 en::value_below{[&residual]() { return residual; }, 0.5}});
  EXPECT_EQ(stats.iterations, 3u);
}

TEST(BspLoop, StatsTrackEmittedAndWallTime) {
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>(8, 0));
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) {
        return fr::sparse_frontier<vertex_t>(
            std::vector<vertex_t>(in.size() / 2, 0));
      },
      en::frontier_empty{});
  EXPECT_EQ(stats.total_processed, 8u + 4 + 2 + 1);
  EXPECT_EQ(stats.total_emitted, 4u + 2 + 1 + 0);
  EXPECT_GE(stats.millis, 0.0);
}

// --- telemetry trace invariants --------------------------------------------

TEST(BspLoopTelemetry, OneSuperstepRecordPerIteration) {
  if (!tel::compiled_in)
    GTEST_SKIP() << "telemetry compiled out";
  tel::trace t;
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>(8, 0));
  en::enact_stats stats;
  {
    tel::scoped_recording rec(t, "halving");
    stats = en::bsp_loop(
        std::move(f),
        [](fr::sparse_frontier<vertex_t> in, std::size_t) {
          return fr::sparse_frontier<vertex_t>(
              std::vector<vertex_t>(in.size() / 2, 0));
        },
        en::frontier_empty{});
  }
  EXPECT_EQ(t.algorithm, "halving");
  ASSERT_EQ(t.num_supersteps(), stats.iterations);
  // The frontier size sequence is captured exactly: in 8,4,2,1 / out 4,2,1,0,
  // and each step's output is the next step's input.
  std::size_t expect_in = 8;
  for (std::size_t i = 0; i < t.supersteps.size(); ++i) {
    auto const& s = t.supersteps[i];
    EXPECT_EQ(s.index, i);
    EXPECT_EQ(s.frontier_in, expect_in);
    EXPECT_EQ(s.frontier_out, expect_in / 2);
    EXPECT_GE(s.millis, 0.0);
    expect_in /= 2;
  }
}

TEST(BspLoopTelemetry, NoScopeRecordsNothing) {
  // Without a scoped_recording the loop must leave no trace anywhere; this
  // is the run-time null-sink path every un-instrumented caller takes.
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>(4, 0));
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) {
        return fr::sparse_frontier<vertex_t>(
            std::vector<vertex_t>(in.size() / 2, 0));
      },
      en::frontier_empty{});
  EXPECT_EQ(stats.iterations, 3u);
  EXPECT_EQ(tel::current(), nullptr);
}

TEST(BspLoopTelemetry, NestedScopesRestoreOuterRecorder) {
  if (!tel::compiled_in)
    GTEST_SKIP() << "telemetry compiled out";
  tel::trace outer, inner;
  auto const run = []() {
    fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
    en::bsp_loop(
        std::move(f),
        [](fr::sparse_frontier<vertex_t>, std::size_t) {
          return fr::sparse_frontier<vertex_t>{};
        },
        en::frontier_empty{});
  };
  {
    tel::scoped_recording a(outer, "outer");
    run();
    {
      tel::scoped_recording b(inner, "inner");
      run();
    }
    run();  // records into the restored outer scope
  }
  EXPECT_EQ(outer.num_supersteps(), 2u);
  EXPECT_EQ(inner.num_supersteps(), 1u);
}

TEST(AsyncLoopTelemetry, RecordsOneAsyncOpRecord) {
  if (!tel::compiled_in)
    GTEST_SKIP() << "telemetry compiled out";
  tel::trace t;
  {
    tel::scoped_recording rec(t, "async");
    fr::async_queue_frontier<vertex_t> f;
    for (vertex_t v = 0; v < 10; ++v)
      f.add_vertex(v);
    en::async_loop(f, 2, [](vertex_t) {});
  }
  ASSERT_EQ(t.num_supersteps(), 1u);
  ASSERT_EQ(t.supersteps[0].ops.size(), 1u);
  auto const& op = t.supersteps[0].ops[0];
  EXPECT_EQ(op.name, "async_loop");
  EXPECT_TRUE(op.async);
  EXPECT_EQ(op.items_in, 10u);
  EXPECT_EQ(op.items_out, 10u);
  EXPECT_EQ(op.pool_lanes, 2u);
}

TEST(AsyncLoop, ProcessesDynamicallyGeneratedWork) {
  fr::async_queue_frontier<vertex_t> f;
  f.add_vertex(0);
  std::atomic<int> max_seen{0};
  auto const processed = en::async_loop(f, 4, [&](vertex_t v) {
    int old = max_seen.load();
    while (v > old && !max_seen.compare_exchange_weak(old, v)) {
    }
    if (v < 100)
      f.add_vertex(v + 1);
  });
  EXPECT_EQ(processed, 101u);
  EXPECT_EQ(max_seen.load(), 100);
}

TEST(AsyncLoop, SingleWorkerDrainsSequentially) {
  fr::async_queue_frontier<vertex_t> f;
  for (vertex_t v = 0; v < 10; ++v)
    f.add_vertex(v);
  std::atomic<int> count{0};
  auto const processed =
      en::async_loop(f, 1, [&count](vertex_t) { count.fetch_add(1); });
  EXPECT_EQ(processed, 10u);
  EXPECT_EQ(count.load(), 10);
}

TEST(AsyncLoop, EmptyFrontierReturnsImmediately) {
  fr::async_queue_frontier<vertex_t> f;
  auto const processed = en::async_loop(f, 2, [](vertex_t) {});
  EXPECT_EQ(processed, 0u);
}

TEST(AsyncLoop, RejectsZeroWorkers) {
  fr::async_queue_frontier<vertex_t> f;
  EXPECT_THROW(en::async_loop(f, 0, [](vertex_t) {}),
               essentials::graph_error);
}

// --- cancellation / deadline conditions (engine satellite) ------------------

TEST(BspLoopConditions, CancelTokenStopsLoopAtSuperstepBoundary) {
  en::cancel_token token;
  // Step keeps the frontier the same size forever; only cancellation (or
  // the iteration cap) can stop it.  Cancel after the third superstep.
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>(4, 0));
  std::size_t steps = 0;
  auto const stats = en::bsp_loop(
      std::move(f),
      [&](fr::sparse_frontier<vertex_t> in, std::size_t) {
        if (++steps == 3)
          token.request_cancel();
        return in;
      },
      en::any_of{en::frontier_empty{}, en::cancelled{token}});
  EXPECT_EQ(stats.iterations, 3u);
  EXPECT_TRUE(token.cancelled());
}

TEST(BspLoopConditions, CancelTokenCopiesShareTheFlag) {
  en::cancel_token a;
  en::cancel_token b = a;  // copy shares the flag
  EXPECT_FALSE(b.cancelled());
  a.request_cancel();
  EXPECT_TRUE(b.cancelled());
  b.reset();
  EXPECT_FALSE(a.cancelled());
}

TEST(BspLoopConditions, TimeBudgetExpiresAndStopsLoop) {
  using namespace std::chrono_literals;
  en::time_budget budget(5ms);
  EXPECT_FALSE(en::time_budget::unlimited().expired());
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>(2, 0));
  auto const stats = en::bsp_loop(
      std::move(f),
      [](fr::sparse_frontier<vertex_t> in, std::size_t) {
        std::this_thread::sleep_for(2ms);
        return in;  // never converges on its own
      },
      en::any_of{en::frontier_empty{}, budget});
  // Cooperative stop: at most one superstep of overshoot past the budget.
  EXPECT_GE(stats.iterations, 1u);
  EXPECT_LE(stats.iterations, 16u);
  EXPECT_TRUE(budget.expired());
}

TEST(BspLoopConditions, TimeBudgetUntilHonoursAbsoluteDeadline) {
  auto const deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
  auto const budget = en::time_budget::until(deadline);
  EXPECT_EQ(budget.deadline(), deadline);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(budget.expired());
}

TEST(BspLoopConditions, CancelledOrDeadlineReportsWhichFired) {
  using namespace std::chrono_literals;
  en::cancel_token token;
  en::cancelled_or_deadline both{token, en::time_budget::unlimited()};
  EXPECT_EQ(both.why(), en::cancelled_or_deadline::reason::none);
  token.request_cancel();
  EXPECT_EQ(both.why(), en::cancelled_or_deadline::reason::cancelled);

  en::cancelled_or_deadline expired{en::cancel_token{}, en::time_budget(0ms)};
  std::this_thread::sleep_for(1ms);
  EXPECT_EQ(expired.why(), en::cancelled_or_deadline::reason::deadline);

  // Deadline wins ties: both fired => classified as deadline.
  en::cancel_token t2;
  t2.request_cancel();
  en::cancelled_or_deadline tie{t2, en::time_budget(0ms)};
  std::this_thread::sleep_for(1ms);
  EXPECT_EQ(tie.why(), en::cancelled_or_deadline::reason::deadline);
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>(1, 0));
  EXPECT_TRUE(tie(f, 0));
}

TEST(AsyncLoop, StoppableVariantClosesQueueOnCancel) {
  en::cancel_token token;
  fr::async_queue_frontier<vertex_t> f;
  f.add_vertex(0);
  std::atomic<int> seen{0};
  // Self-sustaining workload: every item spawns a successor, so only the
  // stop predicate can end the loop.  Cancel after 50 items.
  auto const processed = en::async_loop(
      f, 4,
      [&](vertex_t v) {
        if (seen.fetch_add(1) + 1 == 50)
          token.request_cancel();
        f.add_vertex(v + 1);
      },
      [&token] { return token.cancelled(); });
  EXPECT_GE(processed, 50u);   // everything before the cancel was processed
  EXPECT_LE(processed, 54u);   // ...plus at most one in-flight item per lane
}

TEST(AsyncLoop, StoppableVariantRunsToQuiescenceWhenNeverStopped) {
  fr::async_queue_frontier<vertex_t> f;
  for (vertex_t v = 0; v < 25; ++v)
    f.add_vertex(v);
  std::atomic<int> count{0};
  auto const processed = en::async_loop(
      f, 3, [&count](vertex_t) { count.fetch_add(1); },
      [] { return false; });
  EXPECT_EQ(processed, 25u);
  EXPECT_EQ(count.load(), 25);
}
