// Delta-recompute subsystem tests: the edge-delta log on dynamic_graph_t,
// record compaction, the registry delta chain, the incremental (warm-start)
// enactors for SSSP / BFS / CC, and the engine's end-to-end warm path.
//
// The load-bearing suites are *differential*: every incremental enactment
// is compared field-for-field against a cold enactment on the same
// snapshot — across randomized insert streams, insert+delete streams,
// weight updates, truncated logs and crafted spurious records.  The
// Delta-prefixed suites also join the CI TSAN matrix: the epoch-stamping
// regression (seal-after-snapshot, graph/dynamic.hpp) is exercised with
// concurrent writers under publish.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/connected_components.hpp"
#include "algorithms/incremental.hpp"
#include "algorithms/sssp.hpp"
#include "core/execution.hpp"
#include "engine/engine.hpp"
#include "engine/registry.hpp"
#include "engine/warm_jobs.hpp"
#include "graph/delta.hpp"
#include "graph/dynamic.hpp"
#include "graph/graph.hpp"

namespace alg = essentials::algorithms;
namespace eng = essentials::engine;
namespace exec = essentials::execution;
namespace gr = essentials::graph;
using essentials::vertex_t;
using essentials::weight_t;

using dyn_t = gr::dynamic_graph_t<>;
using delta_t = dyn_t::delta_type;
using record_t = dyn_t::delta_record;
using engine_t = eng::analytics_engine<gr::graph_csr>;
using sssp_res = alg::sssp_result<weight_t>;
using bfs_res = alg::bfs_result<vertex_t>;
using cc_res = alg::cc_result<vertex_t>;

namespace {

/// The edge set of a CSR snapshot as ordered (src, dst, weight) triples.
std::set<std::tuple<vertex_t, vertex_t, weight_t>> edge_set(
    gr::graph_csr const& g) {
  std::set<std::tuple<vertex_t, vertex_t, weight_t>> out;
  auto const& csr = g.csr();
  for (vertex_t v = 0; v < csr.num_rows; ++v)
    for (auto e = csr.row_offsets[static_cast<std::size_t>(v)];
         e < csr.row_offsets[static_cast<std::size_t>(v) + 1]; ++e)
      out.emplace(v, csr.column_indices[static_cast<std::size_t>(e)],
                  csr.values[static_cast<std::size_t>(e)]);
  return out;
}

void expect_same_distances(sssp_res const& warm, sssp_res const& cold) {
  ASSERT_EQ(warm.distances.size(), cold.distances.size());
  for (std::size_t v = 0; v < cold.distances.size(); ++v)
    EXPECT_EQ(warm.distances[v], cold.distances[v]) << "vertex " << v;
}

void expect_same_depths(bfs_res const& warm, bfs_res const& cold) {
  ASSERT_EQ(warm.depths.size(), cold.depths.size());
  for (std::size_t v = 0; v < cold.depths.size(); ++v)
    EXPECT_EQ(warm.depths[v], cold.depths[v]) << "vertex " << v;
}

/// Parents are run-dependent; what must hold is the BFS-tree invariant:
/// depth[v] == depth[parent[v]] + 1 and the tree edge exists in g.
void expect_valid_bfs_tree(bfs_res const& r, gr::graph_csr const& g,
                           vertex_t source) {
  for (std::size_t v = 0; v < r.depths.size(); ++v) {
    if (r.depths[v] <= 0) {
      if (static_cast<vertex_t>(v) == source) {
        EXPECT_EQ(r.depths[v], 0);
      }
      continue;  // unreached (-1) or the source (0): no parent edge
    }
    vertex_t const p = r.parents[v];
    ASSERT_GE(p, 0) << "reached vertex " << v << " lacks a parent";
    EXPECT_EQ(r.depths[static_cast<std::size_t>(p)] + 1, r.depths[v]);
    bool found = false;
    auto const& csr = g.csr();
    for (auto e = csr.row_offsets[static_cast<std::size_t>(p)];
         e < csr.row_offsets[static_cast<std::size_t>(p) + 1]; ++e)
      if (csr.column_indices[static_cast<std::size_t>(e)] ==
          static_cast<vertex_t>(v))
        found = true;
    EXPECT_TRUE(found) << "parent edge " << p << "->" << v << " not in graph";
  }
}

void expect_same_labels(cc_res const& warm, cc_res const& cold) {
  ASSERT_EQ(warm.labels.size(), cold.labels.size());
  for (std::size_t v = 0; v < cold.labels.size(); ++v)
    EXPECT_EQ(warm.labels[v], cold.labels[v]) << "vertex " << v;
  EXPECT_EQ(warm.num_components, cold.num_components);
}

}  // namespace

// ---------------------------------------------------------------------------
// Compaction (graph/delta.hpp)
// ---------------------------------------------------------------------------

TEST(DeltaCompact, RemoveIsStickyAndLatestWeightWins) {
  std::vector<record_t> records{
      {0, 1, 1.0f, gr::delta_op::insert},
      {2, 3, 5.0f, gr::delta_op::insert},
      {0, 1, 0.5f, gr::delta_op::insert},  // same pair, newer weight
      {2, 3, 2.0f, gr::delta_op::remove},  // taints (2,3)
      {2, 3, 9.0f, gr::delta_op::insert},  // remove stays sticky
  };
  gr::compact(records);
  ASSERT_EQ(records.size(), 2u);
  // First-appearance order is preserved.
  EXPECT_EQ(records[0].src, 0);
  EXPECT_EQ(records[0].dst, 1);
  EXPECT_EQ(records[0].op, gr::delta_op::insert);
  EXPECT_EQ(records[0].weight, 0.5f);
  EXPECT_EQ(records[1].src, 2);
  EXPECT_EQ(records[1].op, gr::delta_op::remove);  // sticky
  EXPECT_EQ(records[1].weight, 9.0f);              // latest observation
}

TEST(DeltaCompact, InsertOnlyGate) {
  delta_t d;
  d.complete = true;
  d.records = {{0, 1, 1.0f, gr::delta_op::insert}};
  EXPECT_TRUE(d.insert_only());
  d.records.push_back({1, 2, 1.0f, gr::delta_op::remove});
  EXPECT_FALSE(d.insert_only());
}

// ---------------------------------------------------------------------------
// The delta log on dynamic_graph_t
// ---------------------------------------------------------------------------

TEST(DeltaLog, RecordsSealAndConcatenateAcrossEpochs) {
  dyn_t g(8);
  g.add_edge(0, 1, 1.0f);
  g.add_edge(1, 2, 2.0f);
  auto [s1, e1] = g.publish_epoch<gr::graph_csr>();
  EXPECT_EQ(e1, 1u);

  g.add_edge(2, 3, 3.0f);
  auto [s2, e2] = g.publish_epoch<gr::graph_csr>();
  EXPECT_EQ(e2, 2u);

  auto const d01 = g.delta_since(0);
  EXPECT_TRUE(d01.complete);
  EXPECT_EQ(d01.size(), 3u);
  EXPECT_TRUE(d01.insert_only());

  auto const d12 = g.delta_since(1);
  EXPECT_TRUE(d12.complete);
  ASSERT_EQ(d12.size(), 1u);
  EXPECT_EQ(d12.records[0].src, 2);
  EXPECT_EQ(d12.records[0].dst, 3);

  auto const d22 = g.delta_since(2);
  EXPECT_TRUE(d22.complete);
  EXPECT_TRUE(d22.empty());

  EXPECT_FALSE(g.delta_since(3).complete);  // the future is unknowable
}

TEST(DeltaLog, WeightSemanticsDecreaseInsertsIncreaseRemoves) {
  dyn_t g(4);
  g.add_edge(0, 1, 5.0f);
  g.publish_epoch<gr::graph_csr>();

  g.add_edge(0, 1, 2.0f);  // decrease: monotone improvement
  g.publish_epoch<gr::graph_csr>();
  auto const d = g.delta_since(1);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d.records[0].op, gr::delta_op::insert);
  EXPECT_EQ(d.records[0].weight, 2.0f);

  g.add_edge(0, 1, 9.0f);  // increase: breaks the upper-bound property
  g.publish_epoch<gr::graph_csr>();
  auto const d2 = g.delta_since(2);
  ASSERT_EQ(d2.size(), 1u);
  EXPECT_EQ(d2.records[0].op, gr::delta_op::remove);
  EXPECT_FALSE(d2.insert_only());
}

TEST(DeltaLog, RemoveEdgeRecordsRemove) {
  dyn_t g(4);
  g.add_edge(0, 1, 1.0f);
  g.publish_epoch<gr::graph_csr>();
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));  // second removal: no phantom record
  g.publish_epoch<gr::graph_csr>();
  auto const d = g.delta_since(1);
  EXPECT_TRUE(d.complete);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d.records[0].op, gr::delta_op::remove);
}

TEST(DeltaLog, CompactionCollapsesRepeatedUpdatesOfOnePair) {
  dyn_t g(4);
  for (int i = 0; i < 100; ++i)
    g.add_edge(0, 1, static_cast<weight_t>(100 - i));  // decreasing
  g.publish_epoch<gr::graph_csr>();
  auto const d = g.delta_since(0);
  EXPECT_TRUE(d.complete);
  ASSERT_EQ(d.size(), 1u);  // per-segment compaction collapsed them
  EXPECT_EQ(d.records[0].weight, 1.0f);
  EXPECT_EQ(d.records[0].op, gr::delta_op::insert);
}

TEST(DeltaLog, TruncationDegradesToIncompleteThenRecovers) {
  dyn_t g(64);
  g.set_delta_log_capacity(8);
  for (vertex_t v = 0; v + 1 < 32; ++v)
    g.add_edge(v, v + 1, 1.0f);  // 31 distinct pairs > capacity 8
  g.publish_epoch<gr::graph_csr>();
  EXPECT_FALSE(g.delta_since(0).complete);  // truncated: full recompute
  EXPECT_EQ(g.delta_floor(), 1u);

  // After the truncated epoch, history restarts and is usable again.
  g.add_edge(40, 41, 1.0f);
  g.publish_epoch<gr::graph_csr>();
  auto const d = g.delta_since(1);
  EXPECT_TRUE(d.complete);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_FALSE(g.delta_since(0).complete);  // pre-truncation stays lost
}

TEST(DeltaLog, OldEpochsScrollOutUnderCapacityPressure) {
  dyn_t g(256);
  g.set_delta_log_capacity(16);
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (int i = 0; i < 4; ++i)
      g.add_edge(static_cast<vertex_t>(epoch * 8 + i),
                 static_cast<vertex_t>(epoch * 8 + i + 1), 1.0f);
    g.publish_epoch<gr::graph_csr>();
  }
  // 8 epochs x 4 records > 16: the floor moved past epoch 0.
  EXPECT_GT(g.delta_floor(), 0u);
  EXPECT_FALSE(g.delta_since(0).complete);
  // Recent history is still answerable.
  auto const recent = g.delta_since(g.delta_floor());
  EXPECT_TRUE(recent.complete);
  EXPECT_FALSE(recent.empty());
}

TEST(DeltaLog, CapacityZeroDisablesLogging) {
  dyn_t g(8);
  g.set_delta_log_capacity(0);
  g.add_edge(0, 1, 1.0f);
  g.publish_epoch<gr::graph_csr>();
  EXPECT_FALSE(g.delta_since(0).complete);
  g.publish_epoch<gr::graph_csr>();
  EXPECT_FALSE(g.delta_since(1).complete);
}

TEST(DeltaLog, QuiescentPublishKeepsHistoryDense) {
  dyn_t g(8);
  g.add_edge(0, 1, 1.0f);
  g.publish_epoch<gr::graph_csr>();
  g.publish_epoch<gr::graph_csr>();  // nothing changed
  g.add_edge(1, 2, 1.0f);
  g.publish_epoch<gr::graph_csr>();
  auto const d = g.delta_since(1);  // spans the quiescent epoch 2
  EXPECT_TRUE(d.complete);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d.records[0].src, 1);
}

// ---------------------------------------------------------------------------
// Incremental enactors: differential vs cold (the tentpole's acceptance)
// ---------------------------------------------------------------------------

namespace {

/// Drives a randomized evolution of a dynamic graph and, at every epoch,
/// differentially checks all three incremental enactors (seq and par)
/// against cold enactments on the same snapshot.  `p_delete` > 0 exercises
/// the deletion-fallback path; symmetric insertion keeps CC meaningful.
void differential_stream(std::uint64_t seed, int epochs, int batch,
                         double p_delete, std::size_t log_capacity) {
  constexpr vertex_t n = 96;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vertex_t> pick(0, n - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> wdist(1, 9);

  dyn_t g(n);
  if (log_capacity != dyn_t::kDefaultDeltaCapacity)
    g.set_delta_log_capacity(log_capacity);

  // Epoch 1: a connected-ish base so warm-starts have work to do.
  for (vertex_t v = 0; v + 1 < n; ++v) {
    g.add_edge(v, v + 1, static_cast<weight_t>(1 + (v % 5)));
    g.add_edge(v + 1, v, static_cast<weight_t>(1 + (v % 5)));
  }
  auto [snap, epoch] = g.publish_epoch<gr::graph_csr>();

  vertex_t const source = 0;
  auto prev_sssp = alg::sssp(exec::seq, *snap, source);
  auto prev_bfs = alg::bfs(exec::seq, *snap, source);
  auto prev_cc = alg::connected_components(exec::seq, *snap);

  for (int round = 0; round < epochs; ++round) {
    for (int i = 0; i < batch; ++i) {
      vertex_t const a = pick(rng);
      vertex_t const b = pick(rng);
      if (a == b)
        continue;
      if (coin(rng) < p_delete) {
        g.remove_edge(a, b);
        g.remove_edge(b, a);
      } else {
        auto const w = static_cast<weight_t>(wdist(rng));
        g.add_edge(a, b, w);
        g.add_edge(b, a, w);
      }
    }
    auto [next, e] = g.publish_epoch<gr::graph_csr>();
    auto const delta = g.delta_since(e - 1);

    auto const cold_sssp = alg::sssp(exec::seq, *next, source);
    auto const cold_bfs = alg::bfs(exec::seq, *next, source);
    auto const cold_cc = alg::connected_components(exec::seq, *next);

    alg::incremental_outcome out_s, out_b, out_c;
    auto const warm_sssp = alg::sssp_incremental(exec::seq, *next, source,
                                                 prev_sssp, delta, &out_s);
    auto const warm_bfs =
        alg::bfs_incremental(exec::seq, *next, source, prev_bfs, delta, &out_b);
    auto const warm_cc = alg::connected_components_incremental(
        exec::seq, *next, prev_cc, delta, &out_c);

    expect_same_distances(warm_sssp, cold_sssp);
    expect_same_depths(warm_bfs, cold_bfs);
    expect_valid_bfs_tree(warm_bfs, *next, source);
    expect_same_labels(warm_cc, cold_cc);

    // Parallel incremental agrees too (atomic relaxations, CAS parents).
    auto const par_sssp = alg::sssp_incremental(exec::par, *next, source,
                                                prev_sssp, delta, nullptr);
    auto const par_bfs = alg::bfs_incremental(exec::par, *next, source,
                                              prev_bfs, delta, nullptr);
    auto const par_cc = alg::connected_components_incremental(
        exec::par, *next, prev_cc, delta, nullptr);
    expect_same_distances(par_sssp, cold_sssp);
    expect_same_depths(par_bfs, cold_bfs);
    expect_valid_bfs_tree(par_bfs, *next, source);
    expect_same_labels(par_cc, cold_cc);

    // Outcome classification matches the delta's character.
    bool const expect_warm = delta.complete && delta.insert_only();
    EXPECT_EQ(out_s.warm_started, expect_warm);
    EXPECT_EQ(out_b.warm_started, expect_warm);
    EXPECT_EQ(out_c.warm_started, expect_warm);

    prev_sssp = cold_sssp;  // warm next round from the verified result
    prev_bfs = cold_bfs;
    prev_cc = cold_cc;
    snap = next;
  }
}

}  // namespace

TEST(DeltaIncremental, InsertStreamsWarmEqualsCold) {
  differential_stream(/*seed=*/1, /*epochs=*/6, /*batch=*/24,
                      /*p_delete=*/0.0, dyn_t::kDefaultDeltaCapacity);
  differential_stream(/*seed=*/2, /*epochs=*/4, /*batch=*/3,
                      /*p_delete=*/0.0, dyn_t::kDefaultDeltaCapacity);
}

TEST(DeltaIncremental, InsertDeleteStreamsFallBackAndStayExact) {
  differential_stream(/*seed=*/3, /*epochs=*/6, /*batch=*/24,
                      /*p_delete=*/0.3, dyn_t::kDefaultDeltaCapacity);
}

TEST(DeltaIncremental, TruncatedLogFallsBackAndStaysExact) {
  // Capacity far below the batch size: every epoch truncates, every
  // incremental call must detect `complete == false` and run cold.
  differential_stream(/*seed=*/4, /*epochs=*/4, /*batch=*/32,
                      /*p_delete=*/0.0, /*log_capacity=*/4);
}

TEST(DeltaIncremental, WeightDecreaseRidesTheWarmPath) {
  dyn_t g(16);
  for (vertex_t v = 0; v + 1 < 16; ++v)
    g.add_edge(v, v + 1, 4.0f);
  g.add_edge(0, 15, 100.0f);  // long shortcut, initially useless
  auto [s1, e1] = g.publish_epoch<gr::graph_csr>();
  auto prev = alg::sssp(exec::seq, *s1, 0);

  g.add_edge(0, 15, 2.0f);  // in-place decrease: now the best path
  auto [s2, e2] = g.publish_epoch<gr::graph_csr>();
  auto const delta = g.delta_since(e1);
  ASSERT_TRUE(delta.complete);
  ASSERT_TRUE(delta.insert_only());

  alg::incremental_outcome out;
  auto const warm = alg::sssp_incremental(exec::seq, *s2, 0, prev, delta, &out);
  EXPECT_TRUE(out.warm_started);
  auto const cold = alg::sssp(exec::seq, *s2, 0);
  expect_same_distances(warm, cold);
  EXPECT_EQ(warm.distances[15], 2.0f);
}

TEST(DeltaIncremental, SpuriousRecordsAreHarmless) {
  // Superset semantics: records for edges that did not actually change may
  // appear; they seed extra vertices whose relaxations fail.
  dyn_t g(16);
  for (vertex_t v = 0; v + 1 < 16; ++v)
    g.add_edge(v, v + 1, 1.0f);
  auto [s1, e1] = g.publish_epoch<gr::graph_csr>();
  auto prev = alg::sssp(exec::seq, *s1, 0);

  g.add_edge(3, 9, 1.0f);
  auto [s2, e2] = g.publish_epoch<gr::graph_csr>();
  auto delta = g.delta_since(e1);
  // Craft spurious inserts: existing unchanged edges + an advisory weight
  // that deliberately lies (warm-starts must relax against the snapshot).
  delta.records.push_back({5, 6, 0.001f, gr::delta_op::insert});
  delta.records.push_back({0, 1, 0.001f, gr::delta_op::insert});

  alg::incremental_outcome out;
  auto const warm = alg::sssp_incremental(exec::seq, *s2, 0, prev, delta, &out);
  EXPECT_TRUE(out.warm_started);
  expect_same_distances(warm, alg::sssp(exec::seq, *s2, 0));
}

TEST(DeltaIncremental, SupersavedSupersteps) {
  // A long path re-published with one appended edge: the warm start should
  // converge in a handful of supersteps instead of ~n.
  constexpr vertex_t n = 512;
  dyn_t g(n);
  for (vertex_t v = 0; v + 1 < n - 1; ++v)
    g.add_edge(v, v + 1, 1.0f);
  auto [s1, e1] = g.publish_epoch<gr::graph_csr>();
  auto prev = alg::sssp(exec::seq, *s1, 0);

  g.add_edge(n - 2, n - 1, 1.0f);  // extend the path tip
  auto [s2, e2] = g.publish_epoch<gr::graph_csr>();
  auto const delta = g.delta_since(e1);

  alg::incremental_outcome out;
  auto const warm = alg::sssp_incremental(exec::seq, *s2, 0, prev, delta, &out);
  EXPECT_TRUE(out.warm_started);
  expect_same_distances(warm, alg::sssp(exec::seq, *s2, 0));
  EXPECT_LT(out.supersteps, 8u);
  EXPECT_GT(out.supersteps_saved, static_cast<std::size_t>(n) / 2);
}

// ---------------------------------------------------------------------------
// Registry delta chains
// ---------------------------------------------------------------------------

TEST(DeltaRegistry, DynPublishCarriesChainPlainPublishBreaksIt) {
  eng::graph_registry<gr::graph_csr> reg;
  dyn_t dyn(16);
  dyn.add_edge(0, 1, 1.0f);
  auto const p1 = reg.publish("g", dyn);  // non-const: delta-capable
  EXPECT_EQ(p1.epoch, 1u);

  dyn.add_edge(1, 2, 1.0f);
  auto const p2 = reg.publish("g", dyn);
  EXPECT_EQ(p2.epoch, 2u);

  auto const d12 = reg.delta_between("g", 1, 2);
  EXPECT_TRUE(d12.complete);
  ASSERT_EQ(d12.size(), 1u);
  EXPECT_EQ(d12.records[0].src, 1);
  EXPECT_EQ(d12.records[0].dst, 2);

  // Same-epoch span: empty and complete.
  EXPECT_TRUE(reg.delta_between("g", 2, 2).complete);
  // The first transition (0 -> 1) was never explained: incomplete.
  EXPECT_FALSE(reg.delta_between("g", 0, 2).complete);
  // Unknown name / future epochs: incomplete.
  EXPECT_FALSE(reg.delta_between("nope", 1, 2).complete);
  EXPECT_FALSE(reg.delta_between("g", 1, 7).complete);

  dyn.add_edge(2, 3, 1.0f);
  auto const p3 = reg.publish("g", dyn);
  EXPECT_EQ(p3.epoch, 3u);
  auto const d13 = reg.delta_between("g", 1, 3);  // spliced across 2
  EXPECT_TRUE(d13.complete);
  EXPECT_EQ(d13.size(), 2u);

  // A plain publish (no delta) breaks the chain...
  reg.publish_shared("g",
                     std::make_shared<gr::graph_csr const>(
                         dyn.snapshot<gr::graph_csr>()));
  EXPECT_FALSE(reg.delta_between("g", 3, 4).complete);
  // ...and a subsequent dyn publish cannot bridge the break either,
  // because the source continuity was interrupted.
  dyn.add_edge(3, 4, 1.0f);
  auto const p5 = reg.publish("g", dyn);
  EXPECT_EQ(p5.epoch, 5u);
  EXPECT_FALSE(reg.delta_between("g", 3, 5).complete);
}

TEST(DeltaRegistry, SwitchingSourceGraphsBreaksTheChain) {
  eng::graph_registry<gr::graph_csr> reg;
  dyn_t a(8), b(8);
  a.add_edge(0, 1, 1.0f);
  b.add_edge(0, 2, 1.0f);
  reg.publish("g", a);
  reg.publish("g", b);  // different source: transition unexplained
  EXPECT_FALSE(reg.delta_between("g", 1, 2).complete);
}

// ---------------------------------------------------------------------------
// Engine end-to-end: warm submissions
// ---------------------------------------------------------------------------

namespace {

eng::job_desc sssp_desc(std::string graph, vertex_t src,
                        bool record_trace = false) {
  eng::job_desc d;
  d.graph = std::move(graph);
  d.algorithm = "sssp";
  d.params = "src=" + std::to_string(src);
  d.record_trace = record_trace;
  return d;
}

}  // namespace

TEST(DeltaEngine, WarmSubmitIsBitIdenticalAndCounted) {
  engine_t engine({/*num_runners=*/2, /*max_queued=*/16, /*cache=*/32});
  dyn_t dyn(64);
  for (vertex_t v = 0; v + 1 < 64; ++v)
    dyn.add_edge(v, v + 1, 1.0f);
  engine.registry().publish("g", dyn);

  // Cold first run populates the cache at epoch 1.
  auto j1 = engine.run(sssp_desc("g", 0),
                       eng::sssp_cold_job<gr::graph_csr>(exec::seq, 0),
                       eng::sssp_warm_job<gr::graph_csr>(exec::seq, 0));
  ASSERT_EQ(j1->status(), eng::job_status::completed);
  EXPECT_FALSE(j1->warm_started());

  // Publish a small-delta epoch: entry demoted to warm, chain intact.
  dyn.add_edge(0, 63, 1.5f);
  engine.registry().publish("g", dyn);

  auto j2 = engine.run(sssp_desc("g", 0, /*record_trace=*/true),
                       eng::sssp_cold_job<gr::graph_csr>(exec::seq, 0),
                       eng::sssp_warm_job<gr::graph_csr>(exec::seq, 0));
  ASSERT_EQ(j2->status(), eng::job_status::completed);
  EXPECT_TRUE(j2->warm_started());
  EXPECT_GE(j2->delta_edges(), 1u);
  EXPECT_GT(j2->supersteps_saved(), 0u);

  // Bit-identical to a cold oracle on the same pinned snapshot.
  auto const pin = engine.registry().lookup("g");
  auto const oracle = alg::sssp(exec::seq, *pin.graph, 0);
  auto const served = j2->result_as<sssp_res>();
  ASSERT_NE(served, nullptr);
  expect_same_distances(*served, oracle);
  EXPECT_EQ(served->distances[63], 1.5f);  // the delta edge mattered

  // Counters + telemetry v4.
  auto const s = engine.stats();
  EXPECT_EQ(s.warm_start_hits, 1u);
  EXPECT_EQ(s.delta_fallbacks, 0u);
  EXPECT_GE(s.cache_demotions, 1u);
  EXPECT_TRUE(j2->trace().warm_start);
  EXPECT_GE(j2->trace().delta_edges, 1u);
  std::ostringstream json;
  eng::write_json(s, json);
  EXPECT_NE(json.str().find("\"warm_start_hits\":1"), std::string::npos);
  EXPECT_NE(json.str().find("\"engine_stats_version\":5"), std::string::npos);
}

TEST(DeltaEngine, DeletionForcesFallbackStillExact) {
  engine_t engine({2, 16, 32});
  dyn_t dyn(32);
  for (vertex_t v = 0; v + 1 < 32; ++v)
    dyn.add_edge(v, v + 1, 1.0f);
  dyn.add_edge(0, 31, 1.0f);
  engine.registry().publish("g", dyn);
  auto j1 = engine.run(sssp_desc("g", 0),
                       eng::sssp_cold_job<gr::graph_csr>(exec::seq, 0),
                       eng::sssp_warm_job<gr::graph_csr>(exec::seq, 0));
  ASSERT_EQ(j1->status(), eng::job_status::completed);

  dyn.remove_edge(0, 31);  // deletion: warm seed exists but can't be used
  engine.registry().publish("g", dyn);

  auto j2 = engine.run(sssp_desc("g", 0),
                       eng::sssp_cold_job<gr::graph_csr>(exec::seq, 0),
                       eng::sssp_warm_job<gr::graph_csr>(exec::seq, 0));
  ASSERT_EQ(j2->status(), eng::job_status::completed);
  EXPECT_FALSE(j2->warm_started());
  EXPECT_TRUE(j2->delta_fallback());

  auto const pin = engine.registry().lookup("g");
  auto const oracle = alg::sssp(exec::seq, *pin.graph, 0);
  expect_same_distances(*j2->result_as<sssp_res>(), oracle);
  EXPECT_EQ(oracle.distances[31], 31.0f);  // shortcut really gone

  auto const s = engine.stats();
  EXPECT_EQ(s.warm_start_hits, 0u);
  EXPECT_EQ(s.delta_fallbacks, 1u);
}

TEST(DeltaEngine, BrokenChainCountsFallbackRunsCold) {
  engine_t engine({2, 16, 32});
  dyn_t dyn(16);
  for (vertex_t v = 0; v + 1 < 16; ++v)
    dyn.add_edge(v, v + 1, 1.0f);
  engine.registry().publish("g", dyn);
  auto j1 = engine.run(sssp_desc("g", 0),
                       eng::sssp_cold_job<gr::graph_csr>(exec::seq, 0),
                       eng::sssp_warm_job<gr::graph_csr>(exec::seq, 0));
  ASSERT_EQ(j1->status(), eng::job_status::completed);

  // Plain snapshot publish: epoch bumps, no delta — chain broken.
  dyn.add_edge(0, 15, 2.0f);
  engine.registry().publish("g", dyn.snapshot<gr::graph_csr>());

  auto j2 = engine.run(sssp_desc("g", 0),
                       eng::sssp_cold_job<gr::graph_csr>(exec::seq, 0),
                       eng::sssp_warm_job<gr::graph_csr>(exec::seq, 0));
  ASSERT_EQ(j2->status(), eng::job_status::completed);
  EXPECT_FALSE(j2->warm_started());
  EXPECT_TRUE(j2->delta_fallback());
  auto const pin = engine.registry().lookup("g");
  expect_same_distances(*j2->result_as<sssp_res>(),
                        alg::sssp(exec::seq, *pin.graph, 0));
}

TEST(DeltaEngine, WarmStartsCanBeDisabled) {
  engine_t engine({2, 16, 32, /*warm_starts=*/false});
  dyn_t dyn(16);
  for (vertex_t v = 0; v + 1 < 16; ++v)
    dyn.add_edge(v, v + 1, 1.0f);
  engine.registry().publish("g", dyn);
  engine
      .run(sssp_desc("g", 0), eng::sssp_cold_job<gr::graph_csr>(exec::seq, 0),
           eng::sssp_warm_job<gr::graph_csr>(exec::seq, 0))
      ->wait();
  dyn.add_edge(0, 15, 1.0f);
  engine.registry().publish("g", dyn);
  auto j = engine.run(sssp_desc("g", 0),
                      eng::sssp_cold_job<gr::graph_csr>(exec::seq, 0),
                      eng::sssp_warm_job<gr::graph_csr>(exec::seq, 0));
  ASSERT_EQ(j->status(), eng::job_status::completed);
  EXPECT_FALSE(j->warm_started());
  EXPECT_EQ(engine.stats().warm_start_hits, 0u);
}

TEST(DeltaEngine, BfsAndCcWarmJobsAgreeWithOracles) {
  engine_t engine({2, 16, 32});
  dyn_t dyn(48);
  for (vertex_t v = 0; v + 1 < 48; ++v) {
    dyn.add_edge(v, v + 1, 1.0f);
    dyn.add_edge(v + 1, v, 1.0f);
  }
  engine.registry().publish("g", dyn);

  eng::job_desc bfs_d;
  bfs_d.graph = "g";
  bfs_d.algorithm = "bfs";
  bfs_d.params = "src=0";
  eng::job_desc cc_d;
  cc_d.graph = "g";
  cc_d.algorithm = "cc";

  engine.run(bfs_d, eng::bfs_cold_job<gr::graph_csr>(exec::seq, 0),
             eng::bfs_warm_job<gr::graph_csr>(exec::seq, 0));
  engine.run(cc_d, eng::cc_cold_job<gr::graph_csr>(exec::seq),
             eng::cc_warm_job<gr::graph_csr>(exec::seq));

  dyn.add_edge(0, 47, 1.0f);
  dyn.add_edge(47, 0, 1.0f);
  engine.registry().publish("g", dyn);

  auto jb = engine.run(bfs_d, eng::bfs_cold_job<gr::graph_csr>(exec::seq, 0),
                       eng::bfs_warm_job<gr::graph_csr>(exec::seq, 0));
  auto jc = engine.run(cc_d, eng::cc_cold_job<gr::graph_csr>(exec::seq),
                       eng::cc_warm_job<gr::graph_csr>(exec::seq));
  ASSERT_EQ(jb->status(), eng::job_status::completed);
  ASSERT_EQ(jc->status(), eng::job_status::completed);
  EXPECT_TRUE(jb->warm_started());
  EXPECT_TRUE(jc->warm_started());

  auto const pin = engine.registry().lookup("g");
  expect_same_depths(*jb->result_as<bfs_res>(),
                     alg::bfs(exec::seq, *pin.graph, 0));
  expect_valid_bfs_tree(*jb->result_as<bfs_res>(), *pin.graph, 0);
  expect_same_labels(*jc->result_as<cc_res>(),
                     alg::connected_components(exec::seq, *pin.graph));
  EXPECT_EQ(engine.stats().warm_start_hits, 2u);
}

// ---------------------------------------------------------------------------
// Concurrency: epoch stamping under concurrent writers (TSAN regression)
// ---------------------------------------------------------------------------

// The satellite bugfix's proof obligation: a mutation visible in snapshot e
// must appear in the delta chain ending at e (superset semantics allow
// extras, never omissions).  Mutating writers race publish_epoch; the
// seal-after-snapshot ordering in dynamic.hpp is what makes this pass.
TEST(DeltaTsanEpochStamping, SnapshotVisibleMutationsAreNeverDroppedFromDeltas) {
  constexpr vertex_t n = 128;
  constexpr int kWriters = 4;
  constexpr int kEpochs = 20;
  // Each writer's budget keeps the total below the delta-log capacity
  // (4 * 14'000 < 65'536 records): writers fast enough to overflow the log
  // would legitimately truncate it and mark deltas incomplete — that is
  // capacity policy, not the seal-after-snapshot race this test targets.
  constexpr int kWritesPerWriter = 14'000;
  dyn_t g(n);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&g, t, &stop] {
      std::mt19937_64 rng(0x51edull * (t + 1));
      std::uniform_int_distribution<vertex_t> pick(0, n - 1);
      for (int w = 0;
           w < kWritesPerWriter && !stop.load(std::memory_order_relaxed); ++w)
        g.add_edge(pick(rng), pick(rng),
                   static_cast<weight_t>(1 + (pick(rng) % 7)));
    });
  }

  std::vector<std::shared_ptr<gr::graph_csr const>> snaps;
  std::vector<delta_t> deltas;
  for (int i = 0; i < kEpochs; ++i) {
    auto [snap, e] = g.publish_epoch<gr::graph_csr>();
    snaps.push_back(std::move(snap));
    deltas.push_back(g.delta_since(e - 1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers)
    w.join();

  // Offline verification: every edge that differs between consecutive
  // snapshots must be covered by a record in that transition's delta.
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    ASSERT_TRUE(deltas[i].complete);
    std::set<std::pair<vertex_t, vertex_t>> recorded;
    for (auto const& r : deltas[i].records)
      recorded.emplace(r.src, r.dst);
    auto const before = edge_set(*snaps[i - 1]);
    auto const after = edge_set(*snaps[i]);
    for (auto const& e : after) {
      if (before.count(e))
        continue;  // unchanged (same weight): no record required
      EXPECT_TRUE(recorded.count({std::get<0>(e), std::get<1>(e)}))
          << "edge " << std::get<0>(e) << "->" << std::get<1>(e)
          << " changed in epoch " << i + 1 << " but is missing from its delta";
    }
  }
}

TEST(DeltaTsanLogReaders, DeltaSinceRacesMutationsAndPublishesSafely) {
  constexpr vertex_t n = 64;
  dyn_t g(n);
  std::atomic<bool> stop{false};

  std::thread writer([&g, &stop] {
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<vertex_t> pick(0, n - 1);
    while (!stop.load(std::memory_order_relaxed)) {
      g.add_edge(pick(rng), pick(rng), 1.0f);
      if ((rng() & 0xff) == 0)
        g.remove_edge(pick(rng), pick(rng));
    }
  });
  std::thread reader([&g, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto const d = g.delta_since(g.delta_floor());
      (void)d;
    }
  });
  for (int i = 0; i < 10; ++i)
    g.publish_epoch<gr::graph_csr>();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  reader.join();
  SUCCEED();  // the assertions are TSAN's
}
