// Unit tests for the message-passing substrate (in-process ranks).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mpsim/communicator.hpp"

namespace mp = essentials::mpsim;

TEST(Communicator, SendRecvPointToPoint) {
  mp::communicator::run(2, [](mp::communicator& comm, int rank) {
    if (rank == 0) {
      comm.send(0, 1, /*tag=*/7, {1, 2, 3});
    } else {
      mp::message_t msg;
      ASSERT_TRUE(comm.recv(1, 7, msg));
      EXPECT_EQ(msg.source, 0);
      EXPECT_EQ(msg.tag, 7);
      EXPECT_EQ(msg.payload, (std::vector<std::uint64_t>{1, 2, 3}));
    }
  });
}

TEST(Communicator, TagFilteringDeliversMatchingMessageFirst) {
  mp::communicator::run(2, [](mp::communicator& comm, int rank) {
    if (rank == 0) {
      comm.send(0, 1, 1, {11});
      comm.send(0, 1, 2, {22});
    } else {
      mp::message_t msg;
      // Ask for tag 2 first even though tag 1 arrived first.
      ASSERT_TRUE(comm.recv(1, 2, msg));
      EXPECT_EQ(msg.payload.front(), 22u);
      ASSERT_TRUE(comm.recv(1, 1, msg));
      EXPECT_EQ(msg.payload.front(), 11u);
    }
  });
}

TEST(Communicator, WildcardTagMatchesAnything) {
  mp::communicator::run(2, [](mp::communicator& comm, int rank) {
    if (rank == 0) {
      comm.send(0, 1, 42, {5});
    } else {
      mp::message_t msg;
      ASSERT_TRUE(comm.recv(1, -1, msg));
      EXPECT_EQ(msg.tag, 42);
    }
  });
}

TEST(Communicator, TryRecvNonBlocking) {
  mp::communicator comm(1);
  mp::message_t msg;
  EXPECT_FALSE(comm.try_recv(0, -1, msg));
  comm.send(0, 0, 3, {9});  // self-send is an ordinary message
  EXPECT_TRUE(comm.try_recv(0, 3, msg));
  EXPECT_EQ(msg.payload.front(), 9u);
}

TEST(Communicator, BarrierSynchronizesAllRanks) {
  // Phase counter: all ranks must observe every rank's phase-0 increment
  // after the barrier.
  std::atomic<int> phase0{0};
  mp::communicator::run(4, [&phase0](mp::communicator& comm, int /*rank*/) {
    phase0.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(phase0.load(), 4);
  });
}

TEST(Communicator, BarrierIsReusable) {
  std::atomic<int> counter{0};
  mp::communicator::run(3, [&counter](mp::communicator& comm, int /*rank*/) {
    for (int round = 0; round < 10; ++round) {
      counter.fetch_add(1);
      comm.barrier();
      EXPECT_EQ(counter.load() % 3, 0) << "round " << round;
      comm.barrier();
    }
  });
}

TEST(Communicator, AllReduceSumsContributions) {
  mp::communicator::run(4, [](mp::communicator& comm, int rank) {
    auto const sum = comm.all_reduce_sum(rank, static_cast<std::uint64_t>(rank + 1));
    EXPECT_EQ(sum, 10u);  // 1+2+3+4
  });
}

TEST(Communicator, AllReduceIsReusableWithFreshValues) {
  mp::communicator::run(2, [](mp::communicator& comm, int rank) {
    for (std::uint64_t round = 1; round <= 5; ++round) {
      auto const sum = comm.all_reduce_sum(rank, round);
      EXPECT_EQ(sum, 2 * round);
    }
  });
}

TEST(Communicator, ExceptionInOneRankPropagatesAndUnblocksPeers) {
  EXPECT_THROW(
      mp::communicator::run(2,
                            [](mp::communicator& comm, int rank) {
                              if (rank == 0)
                                throw std::runtime_error("rank 0 died");
                              // Rank 1 blocks on a message that never comes;
                              // shutdown must wake it.
                              mp::message_t msg;
                              EXPECT_FALSE(comm.recv(1, -1, msg));
                            }),
      std::runtime_error);
}

TEST(Communicator, MailboxSizeReflectsQueuedMessages) {
  mp::communicator comm(2);
  EXPECT_EQ(comm.mailbox_size(1), 0u);
  comm.send(0, 1, 0, {});
  comm.send(0, 1, 0, {});
  EXPECT_EQ(comm.mailbox_size(1), 2u);
}

TEST(Communicator, BadRankThrows) {
  mp::communicator comm(2);
  EXPECT_THROW(comm.send(0, 5, 0, {}), essentials::graph_error);
  mp::message_t msg;
  EXPECT_THROW((void)comm.recv(-1, 0, msg), essentials::graph_error);
}

TEST(Communicator, ManyToOneGather) {
  std::vector<std::uint64_t> gathered;
  mp::communicator::run(4, [&gathered](mp::communicator& comm, int rank) {
    if (rank != 0) {
      comm.send(rank, 0, 1, {static_cast<std::uint64_t>(rank * 100)});
    } else {
      for (int i = 0; i < 3; ++i) {
        mp::message_t msg;
        ASSERT_TRUE(comm.recv(0, 1, msg));
        gathered.push_back(msg.payload.front());
      }
    }
  });
  std::sort(gathered.begin(), gathered.end());
  EXPECT_EQ(gathered, (std::vector<std::uint64_t>{100, 200, 300}));
}
