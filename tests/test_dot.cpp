// Tests for the Graphviz DOT exporter.
#include <gtest/gtest.h>

#include <sstream>

#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;
using e::vertex_t;

TEST(Dot, DirectedWithWeights) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 3;
  coo.push_back(0, 1, 2.5f);
  coo.push_back(1, 2, 1.0f);
  std::ostringstream out;
  e::io::write_dot(out, coo);
  auto const s = out.str();
  EXPECT_NE(s.find("digraph"), std::string::npos);
  EXPECT_NE(s.find("0 -> 1"), std::string::npos);
  EXPECT_NE(s.find("label=\"2.5\""), std::string::npos);
}

TEST(Dot, UndirectedEmitsEachPairOnce) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 2;
  coo.push_back(0, 1, 1.f);
  coo.push_back(1, 0, 1.f);
  std::ostringstream out;
  e::io::dot_options opt;
  opt.undirected = true;
  opt.weight_labels = false;
  e::io::write_dot(out, coo, opt);
  auto const s = out.str();
  EXPECT_NE(s.find("graph"), std::string::npos);
  EXPECT_NE(s.find("0 -- 1"), std::string::npos);
  EXPECT_EQ(s.find("1 -- 0"), std::string::npos);
  EXPECT_EQ(s.find("label"), std::string::npos);
}

TEST(Dot, GroupsColorVertices) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  coo.push_back(0, 1, 1.f);
  std::ostringstream out;
  e::io::dot_options opt;
  opt.groups = {0, 0, 1, 1};
  e::io::write_dot(out, coo, opt);
  auto const s = out.str();
  EXPECT_NE(s.find("fillcolor=\"#8dd3c7\""), std::string::npos);
  EXPECT_NE(s.find("fillcolor=\"#ffffb3\""), std::string::npos);
}

TEST(Dot, RefusesOversizeAndBadGroups) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 10;
  e::io::dot_options tiny;
  tiny.max_vertices = 5;
  std::ostringstream out;
  EXPECT_THROW(e::io::write_dot(out, coo, tiny), e::graph_error);

  e::io::dot_options bad_groups;
  bad_groups.groups = {1, 2};  // wrong size
  EXPECT_THROW(e::io::write_dot(out, coo, bad_groups), e::graph_error);
}

TEST(Dot, PipelineWithCommunityColors) {
  // The intended use: color a graph drawing by detected community.
  auto coo = e::generators::watts_strogatz(40, 2, 0.05, {}, 3);
  e::graph::remove_self_loops(coo);
  e::graph::symmetrize(coo);
  auto const gr = g::from_coo<g::graph_full>(coo);
  auto const communities =
      e::algorithms::label_propagation_communities(e::execution::par, gr);
  e::io::dot_options opt;
  opt.undirected = true;
  opt.groups.assign(communities.labels.begin(), communities.labels.end());
  std::ostringstream out;
  e::io::write_dot(out, coo, opt);
  EXPECT_GT(out.str().size(), 100u);
}
