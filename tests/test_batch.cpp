// Tests for the engine's request batcher: dequeue-time fusion of
// compatible same-graph queries into bit-lane multi-source enactments
// (engine/batcher.hpp + engine/batch_jobs.hpp + the scheduler's fusion
// window), plus the lane-level machinery it rests on (lane masks and the
// lane-packed multi-source SSSP in algorithms/msbfs.hpp).
//
// The load-bearing property throughout: a query's result is bit-identical
// whether it ran alone or fused with up to 63 others — verified
// differentially against single-source oracles in every value-checking
// test below.  Every suite is named Batch* so the CI TSAN matrix picks up
// the whole file.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/msbfs.hpp"
#include "algorithms/sssp.hpp"
#include "core/execution.hpp"
#include "core/telemetry.hpp"
#include "engine/batch_jobs.hpp"
#include "engine/batcher.hpp"
#include "engine/engine.hpp"
#include "engine/result_cache.hpp"
#include "engine/scheduler.hpp"
#include "engine/stats.hpp"
#include "graph/build.hpp"
#include "graph/graph.hpp"

namespace eng = essentials::engine;
namespace gr = essentials::graph;
namespace alg = essentials::algorithms;
namespace exec = essentials::execution;
namespace tel = essentials::telemetry;
using essentials::vertex_t;
using essentials::weight_t;
using namespace std::chrono_literals;

using engine_t = eng::analytics_engine<gr::graph_csr>;
using bfs_lanes = eng::bfs_lanes_result<vertex_t>;
using sssp_lanes = eng::sssp_lanes_result<weight_t>;

namespace {

/// Weighted path 0 -> 1 -> ... -> n-1 (unit weights), optional shortcut
/// 0 -> n-1 — toggling the shortcut between epochs changes depth profiles.
gr::graph_csr path_graph(vertex_t n, bool shortcut = false) {
  gr::coo_t<> coo;
  coo.num_rows = coo.num_cols = n;
  for (vertex_t v = 0; v + 1 < n; ++v)
    coo.push_back(v, v + 1, 1.0f);
  if (shortcut)
    coo.push_back(0, n - 1, 1.0f);
  return gr::from_coo<gr::graph_csr>(std::move(coo));
}

/// Small pseudo-random weighted digraph (deterministic LCG).
gr::graph_csr random_graph(vertex_t n, std::size_t edges,
                           std::uint64_t seed) {
  gr::coo_t<> coo;
  coo.num_rows = coo.num_cols = n;
  std::uint64_t x = seed;
  auto next = [&x]() {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 33;
  };
  for (std::size_t e = 0; e < edges; ++e) {
    auto const u = static_cast<vertex_t>(next() % static_cast<std::uint64_t>(n));
    auto const v = static_cast<vertex_t>(next() % static_cast<std::uint64_t>(n));
    auto const w = 1.0f + static_cast<float>(next() % 8);
    coo.push_back(u, v, w);
  }
  return gr::from_coo<gr::graph_csr>(std::move(coo));
}

eng::job_desc bfs_desc(std::string graph, vertex_t src, bool trace = false) {
  eng::job_desc d;
  d.graph = std::move(graph);
  d.algorithm = "bfs";
  d.params = "src=" + std::to_string(src);
  d.record_trace = trace;
  return d;
}

eng::job_desc sssp_desc(std::string graph, vertex_t src) {
  eng::job_desc d;
  d.graph = std::move(graph);
  d.algorithm = "sssp";
  d.params = "src=" + std::to_string(src);
  return d;
}

/// Occupy the engine's (single) runner until released, so a burst
/// submitted behind it queues up and fuses deterministically.
eng::job_ptr submit_blocker(engine_t& engine, std::atomic<bool>& release) {
  eng::job_desc d;
  d.graph = "g";
  d.algorithm = "blocker";
  d.use_cache = false;
  return engine.submit(d, [&release](gr::graph_csr const&, eng::job_context&)
                              -> std::shared_ptr<void const> {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(1ms);
    return nullptr;
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Lane level: masks and the lane-packed multi-source SSSP
// ---------------------------------------------------------------------------

TEST(BatchLanes, MsBfsLaneMaskFreezesOnlyMaskedLane) {
  auto const g = path_graph(20);
  // Two lanes from the same source; lane 1 is dropped from superstep 5 on.
  auto const r = alg::multi_source_bfs(
      exec::seq, g, std::vector<vertex_t>{0, 0},
      [](std::size_t superstep) -> std::uint64_t {
        return superstep < 5 ? ~std::uint64_t{0} : std::uint64_t{1};
      });
  // Lane 0 ran to convergence.
  EXPECT_EQ(r.depth[0][19], 19);
  EXPECT_EQ(r.lane_levels[0], 19);
  // Lane 1 kept the depths it had discovered in supersteps 0..4 (levels
  // 1..5) and stopped propagating — never aborting lane 0.
  EXPECT_EQ(r.depth[1][5], 5);
  EXPECT_EQ(r.depth[1][6], -1);
  EXPECT_EQ(r.lane_levels[1], 5);
}

TEST(BatchLanes, MsSsspEachLaneMatchesSingleSourceSssp) {
  auto const g = random_graph(128, 640, 42);
  std::vector<vertex_t> sources;
  for (vertex_t s = 0; s < 10; ++s)
    sources.push_back(s * 11);
  for (auto const& policy_name : {"seq", "par"}) {
    auto const r = std::string(policy_name) == "seq"
                       ? alg::multi_source_sssp(exec::seq, g, sources)
                       : alg::multi_source_sssp(exec::par, g, sources);
    ASSERT_EQ(r.dist.size(), sources.size());
    for (std::size_t s = 0; s < sources.size(); ++s) {
      auto const oracle = alg::sssp(exec::seq, g, sources[s]);
      ASSERT_EQ(r.dist[s].size(), oracle.distances.size());
      for (std::size_t v = 0; v < oracle.distances.size(); ++v)
        EXPECT_EQ(r.dist[s][v], oracle.distances[v])
            << policy_name << " lane " << s << " vertex " << v;
    }
  }
}

TEST(BatchLanes, MsSsspLaneMaskStopsOnlyMaskedLane) {
  auto const g = path_graph(16);
  auto const r = alg::multi_source_sssp(
      exec::seq, g, std::vector<vertex_t>{0, 0},
      [](std::size_t superstep) -> std::uint64_t {
        return superstep < 3 ? ~std::uint64_t{0} : std::uint64_t{1};
      });
  EXPECT_EQ(r.dist[0][15], 15.0f);            // lane 0 converged
  EXPECT_EQ(r.dist[1][3], 3.0f);              // lane 1 got 3 supersteps in
  EXPECT_EQ(r.dist[1][4], essentials::infinity_v<weight_t>);
}

TEST(BatchLanes, MsBfsRecordsTelemetrySupersteps) {
  auto const g = path_graph(12);
  tel::trace t;
  {
    tel::scoped_recording rec(t, "msbfs");
    auto const r =
        alg::multi_source_bfs(exec::seq, g, std::vector<vertex_t>{0, 3});
    EXPECT_EQ(r.depth[0][11], 11);
  }
  if (tel::compiled_in) {
    // 11 discovering supersteps + the final empty one.
    ASSERT_GE(t.supersteps.size(), 11u);
    ASSERT_FALSE(t.supersteps[0].ops.empty());
    EXPECT_EQ(t.supersteps[0].ops[0].name, "msbfs.expand");
    EXPECT_GT(t.total_edges_inspected(), 0u);
  }
}

TEST(BatchLanes, MsSsspRecordsTelemetrySupersteps) {
  auto const g = path_graph(8);
  tel::trace t;
  {
    tel::scoped_recording rec(t, "mssssp");
    auto const r =
        alg::multi_source_sssp(exec::seq, g, std::vector<vertex_t>{0});
    EXPECT_EQ(r.dist[0][7], 7.0f);
  }
  if (tel::compiled_in) {
    ASSERT_FALSE(t.supersteps.empty());
    ASSERT_FALSE(t.supersteps[0].ops.empty());
    EXPECT_EQ(t.supersteps[0].ops[0].name, "mssssp.relax");
  }
}

// ---------------------------------------------------------------------------
// Engine: fusion window, bit-identity, per-member results
// ---------------------------------------------------------------------------

TEST(BatchEngine, BurstFusesAndEveryMemberMatchesSoloOracle) {
  engine_t engine({/*runners=*/1, /*max_queued=*/64, /*cache=*/64});
  auto const g = path_graph(48);
  engine.registry().publish("g", g);

  std::atomic<bool> release{false};
  auto blocker = submit_blocker(engine, release);

  std::vector<eng::job_ptr> jobs;
  for (vertex_t src = 0; src < 8; ++src)
    jobs.push_back(engine.submit_batch(
        bfs_desc("g", src, /*trace=*/src < 2),
        eng::bfs_batch_job<gr::graph_csr>(exec::par, src)));
  release.store(true, std::memory_order_release);
  blocker->wait();

  std::uint64_t batch_id = 0;
  for (vertex_t src = 0; src < 8; ++src) {
    auto const& j = jobs[static_cast<std::size_t>(src)];
    ASSERT_EQ(j->wait(), eng::job_status::completed) << "src=" << src;
    // Fusion attribution: all eight shared one wave, lanes in FIFO order.
    EXPECT_EQ(j->batch_size(), 8u);
    EXPECT_EQ(j->lane(), static_cast<std::uint32_t>(src));
    if (batch_id == 0)
      batch_id = j->batch_id();
    EXPECT_EQ(j->batch_id(), batch_id);
    EXPECT_NE(batch_id, 0u);
    // Bit-identity: fused lane == solo one-lane enactment.
    auto const served = j->result_as<bfs_lanes>();
    ASSERT_NE(served, nullptr);
    auto const oracle =
        alg::multi_source_bfs(exec::seq, g, std::vector<vertex_t>{src});
    EXPECT_EQ(served->depths, oracle.depth[0]);
    EXPECT_EQ(served->levels, oracle.lane_levels[0]);
  }

  // Telemetry schema v5: batch attribution on every trace-requesting
  // member; the shared superstep stream on the first of them.
  EXPECT_EQ(jobs[0]->trace().batch_size, 8u);
  EXPECT_EQ(jobs[0]->trace().lane, 0u);
  EXPECT_EQ(jobs[1]->trace().batch_size, 8u);
  EXPECT_EQ(jobs[1]->trace().lane, 1u);
  if (tel::compiled_in) {
    EXPECT_FALSE(jobs[0]->trace().supersteps.empty());
    std::ostringstream os;
    tel::write_json(jobs[0]->trace(), os);
    EXPECT_NE(os.str().find("\"batch_id\":"), std::string::npos);
    EXPECT_NE(os.str().find("\"batch_size\":8"), std::string::npos);
  }

  auto const s = engine.stats();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.batched_jobs, 8u);
  EXPECT_EQ(s.edge_passes_saved, 7u);  // one traversal served eight queries
  EXPECT_DOUBLE_EQ(s.avg_batch_size(), 8.0);
}

TEST(BatchEngine, FusedSsspMatchesUnfusedSubmission) {
  auto const g = random_graph(96, 512, 7);

  // Unfused reference: same builders, batching disabled engine-wide.
  engine_t solo({1, 64, 64, /*warm=*/true, /*batching=*/false});
  solo.registry().publish("g", g);
  std::vector<std::shared_ptr<sssp_lanes const>> expected;
  for (vertex_t src = 0; src < 6; ++src) {
    auto j = solo.submit_batch(sssp_desc("g", src),
                               eng::sssp_batch_job<gr::graph_csr>(exec::par, src));
    EXPECT_EQ(j->wait(), eng::job_status::completed);
    EXPECT_EQ(j->batch_size(), 0u);  // batching off: nothing ever fuses
    expected.push_back(j->result_as<sssp_lanes>());
  }
  EXPECT_EQ(solo.stats().batches, 0u);

  // Fused run of the same six queries.
  engine_t engine({1, 64, 64});
  engine.registry().publish("g", g);
  std::atomic<bool> release{false};
  auto blocker = submit_blocker(engine, release);
  std::vector<eng::job_ptr> jobs;
  for (vertex_t src = 0; src < 6; ++src)
    jobs.push_back(engine.submit_batch(
        sssp_desc("g", src),
        eng::sssp_batch_job<gr::graph_csr>(exec::par, src)));
  release.store(true, std::memory_order_release);

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(jobs[i]->wait(), eng::job_status::completed);
    EXPECT_EQ(jobs[i]->batch_size(), 6u);
    auto const served = jobs[i]->result_as<sssp_lanes>();
    ASSERT_NE(served, nullptr);
    ASSERT_NE(expected[i], nullptr);
    EXPECT_EQ(served->distances, expected[i]->distances) << "lane " << i;
  }
  EXPECT_EQ(engine.stats().batches, 1u);
  EXPECT_EQ(engine.stats().edge_passes_saved, 5u);
}

TEST(BatchEngine, CacheHitMembersAreFilteredBeforeLaneAssignment) {
  engine_t engine({1, 64, 64});
  engine.registry().publish("g", path_graph(24));
  auto const epoch = engine.registry().lookup("g").epoch;

  std::atomic<bool> release{false};
  auto blocker = submit_blocker(engine, release);

  // Three members queue behind the blocker; while they wait, the result
  // for src=5 lands in the cache (as if an identical earlier job just
  // completed).  At dequeue that member must retire cache_hit *before*
  // lane assignment — only the other two fuse.
  auto j5 = engine.submit_batch(bfs_desc("g", 5),
                                eng::bfs_batch_job<gr::graph_csr>(exec::par, 5));
  auto j6 = engine.submit_batch(bfs_desc("g", 6),
                                eng::bfs_batch_job<gr::graph_csr>(exec::par, 6));
  auto j7 = engine.submit_batch(bfs_desc("g", 7),
                                eng::bfs_batch_job<gr::graph_csr>(exec::par, 7));

  auto precomputed = std::make_shared<bfs_lanes const>();
  engine.cache().insert(eng::cache_key{"g", epoch, "bfs", "src=5"},
                        precomputed);
  release.store(true, std::memory_order_release);

  EXPECT_EQ(j5->wait(), eng::job_status::cache_hit);
  EXPECT_EQ(j5->result(), precomputed);  // served, not recomputed
  EXPECT_EQ(j5->batch_size(), 0u);       // never occupied a lane
  ASSERT_EQ(j6->wait(), eng::job_status::completed);
  ASSERT_EQ(j7->wait(), eng::job_status::completed);
  EXPECT_EQ(j6->batch_size(), 2u);
  EXPECT_EQ(j7->batch_size(), 2u);

  auto const s = engine.stats();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.batched_jobs, 2u);
  EXPECT_EQ(s.edge_passes_saved, 1u);
}

TEST(BatchEngine, EveryFusedMemberResultIsCachedUnderItsOwnKey) {
  engine_t engine({1, 64, 64});
  engine.registry().publish("g", path_graph(32));

  std::atomic<bool> release{false};
  auto blocker = submit_blocker(engine, release);
  std::vector<eng::job_ptr> jobs;
  for (vertex_t src = 0; src < 4; ++src)
    jobs.push_back(engine.submit_batch(
        bfs_desc("g", src),
        eng::bfs_batch_job<gr::graph_csr>(exec::par, src)));
  release.store(true, std::memory_order_release);
  for (auto const& j : jobs)
    ASSERT_EQ(j->wait(), eng::job_status::completed);

  // Resubmitting each member's exact query must hit the cache instantly —
  // with the *same* payload object the fused wave published.
  for (vertex_t src = 0; src < 4; ++src) {
    auto j = engine.submit_batch(
        bfs_desc("g", src), eng::bfs_batch_job<gr::graph_csr>(exec::par, src));
    EXPECT_EQ(j->wait(), eng::job_status::cache_hit) << "src=" << src;
    EXPECT_EQ(j->result(), jobs[static_cast<std::size_t>(src)]->result());
  }
}

TEST(BatchEngine, MemberDeadlineExpiringMidBatchMasksOnlyItsLane) {
  eng::job_scheduler sched({1, 16});
  std::atomic<bool> release{false};
  eng::job_desc bd;
  bd.algorithm = "blocker";
  auto blocker = sched.submit(bd, [&release](eng::job_context&)
                                      -> std::shared_ptr<void const> {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(1ms);
    return nullptr;
  });

  // A synthetic fused body that spins supersteps until some lane's guard
  // fires, then returns results only for surviving lanes — the shape every
  // real lane-packed enactment has, with the convergence tail made
  // explicit so the deadline deterministically fires mid-batch.
  auto fused = [](std::vector<eng::batch_lane> const& lanes)
      -> eng::fused_outcome {
    std::vector<eng::job_context*> ctxs;
    for (auto const& l : lanes)
      ctxs.push_back(l.ctx);
    eng::live_lane_mask mask{ctxs};
    std::uint64_t const full =
        (std::uint64_t{1} << lanes.size()) - 1;
    std::size_t step = 0;
    while (mask(step) == full && step < 20000) {  // 20s safety valve
      std::this_thread::sleep_for(1ms);
      ++step;
    }
    std::uint64_t const live = mask(step);
    eng::fused_outcome out;
    out.results.resize(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i)
      if ((live >> i) & 1)
        out.results[i] = std::make_shared<int const>(static_cast<int>(i));
    return out;
  };
  auto make_spec = [&fused]() {
    auto s = std::make_shared<eng::batch_spec>();
    s->key = "k";
    s->fused = fused;
    return s;
  };
  auto solo = [](eng::job_context&) -> std::shared_ptr<void const> {
    return std::make_shared<int const>(-1);
  };

  eng::job_desc da;
  da.algorithm = "spin";
  da.deadline = 250ms;  // fires while the fused body spins
  eng::job_desc db;
  db.algorithm = "spin";  // no deadline
  auto a = sched.submit(da, solo, 0, make_spec());
  auto b = sched.submit(db, solo, 0, make_spec());
  release.store(true, std::memory_order_release);

  EXPECT_EQ(a->wait(), eng::job_status::deadline_expired);
  EXPECT_EQ(a->result(), nullptr);  // truncated lanes publish nothing
  ASSERT_EQ(b->wait(), eng::job_status::completed);
  ASSERT_NE(b->result(), nullptr);  // the batch kept going for lane 1
  EXPECT_EQ(*b->result_as<int>(), 1);
  EXPECT_EQ(a->batch_size(), 2u);  // it really was fused
  EXPECT_EQ(b->batch_size(), 2u);
  blocker->wait();
}

TEST(BatchEngine, CancellingOneMemberMasksOnlyItsLane) {
  eng::job_scheduler sched({1, 16});
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  eng::job_desc bd;
  bd.algorithm = "blocker";
  auto blocker = sched.submit(bd, [&release](eng::job_context&)
                                      -> std::shared_ptr<void const> {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(1ms);
    return nullptr;
  });

  auto fused = [&entered](std::vector<eng::batch_lane> const& lanes)
      -> eng::fused_outcome {
    entered.store(true, std::memory_order_release);
    std::vector<eng::job_context*> ctxs;
    for (auto const& l : lanes)
      ctxs.push_back(l.ctx);
    eng::live_lane_mask mask{ctxs};
    std::uint64_t const full =
        (std::uint64_t{1} << lanes.size()) - 1;
    std::size_t step = 0;
    while (mask(step) == full && step < 20000) {
      std::this_thread::sleep_for(1ms);
      ++step;
    }
    std::uint64_t const live = mask(step);
    eng::fused_outcome out;
    out.results.resize(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i)
      if ((live >> i) & 1)
        out.results[i] = std::make_shared<int const>(static_cast<int>(i));
    return out;
  };
  auto make_spec = [&fused]() {
    auto s = std::make_shared<eng::batch_spec>();
    s->key = "k";
    s->fused = fused;
    return s;
  };
  auto solo = [](eng::job_context&) -> std::shared_ptr<void const> {
    return std::make_shared<int const>(-1);
  };

  eng::job_desc d;
  d.algorithm = "spin";
  auto a = sched.submit(d, solo, 0, make_spec());
  auto b = sched.submit(d, solo, 0, make_spec());
  release.store(true, std::memory_order_release);

  while (!entered.load(std::memory_order_acquire))
    std::this_thread::sleep_for(1ms);
  a->cancel();  // mid-batch: lane 0 masks out, lane 1 keeps converging

  EXPECT_EQ(a->wait(), eng::job_status::cancelled);
  EXPECT_EQ(a->result(), nullptr);
  ASSERT_EQ(b->wait(), eng::job_status::completed);
  ASSERT_NE(b->result(), nullptr);
  EXPECT_EQ(*b->result_as<int>(), 1);
  blocker->wait();
}

TEST(BatchEngine, MoreThanSixtyFourMembersSpillIntoWaves) {
  engine_t engine({/*runners=*/1, /*max_queued=*/128, /*cache=*/256});
  auto const g = path_graph(100);
  engine.registry().publish("g", g);

  std::atomic<bool> release{false};
  auto blocker = submit_blocker(engine, release);
  std::vector<eng::job_ptr> jobs;
  for (vertex_t src = 0; src < 80; ++src)
    jobs.push_back(engine.submit_batch(
        bfs_desc("g", src),
        eng::bfs_batch_job<gr::graph_csr>(exec::par, src)));
  release.store(true, std::memory_order_release);

  for (vertex_t src = 0; src < 80; ++src) {
    auto const& j = jobs[static_cast<std::size_t>(src)];
    ASSERT_EQ(j->wait(), eng::job_status::completed) << "src=" << src;
    auto const served = j->result_as<bfs_lanes>();
    ASSERT_NE(served, nullptr);
    // On the path, src reaches 99 in 99-src hops.
    EXPECT_EQ(served->depths[99], 99 - src);
    EXPECT_EQ(j->batch_size(), src < 64 ? 64u : 16u);
    EXPECT_EQ(j->lane(), static_cast<std::uint32_t>(src % 64));
  }
  EXPECT_NE(jobs[0]->batch_id(), jobs[64]->batch_id());

  auto const s = engine.stats();
  EXPECT_EQ(s.batches, 2u);            // 64-lane wave + 16-lane spill wave
  EXPECT_EQ(s.batched_jobs, 80u);
  EXPECT_EQ(s.edge_passes_saved, 78u);  // 80 queries, 2 traversals
  EXPECT_DOUBLE_EQ(s.avg_batch_size(), 40.0);
}

TEST(BatchEngine, EpochPublishSplitsTheBatch) {
  engine_t engine({1, 64, 64});
  engine.registry().publish("g", path_graph(32, /*shortcut=*/false));

  std::atomic<bool> release{false};
  auto blocker = submit_blocker(engine, release);

  // Two members pin epoch 1, then a publish bumps the epoch, then two more
  // pin epoch 2.  Same graph name + algorithm, different epoch: the fusion
  // key differs, so the window must produce two 2-member waves — a fused
  // wave can never straddle snapshots.
  auto a1 = engine.submit_batch(bfs_desc("g", 0),
                                eng::bfs_batch_job<gr::graph_csr>(exec::par, 0));
  auto a2 = engine.submit_batch(bfs_desc("g", 1),
                                eng::bfs_batch_job<gr::graph_csr>(exec::par, 1));
  engine.registry().publish("g", path_graph(32, /*shortcut=*/true));
  auto b1 = engine.submit_batch(bfs_desc("g", 0),
                                eng::bfs_batch_job<gr::graph_csr>(exec::par, 0));
  auto b2 = engine.submit_batch(bfs_desc("g", 1),
                                eng::bfs_batch_job<gr::graph_csr>(exec::par, 1));
  release.store(true, std::memory_order_release);

  for (auto const& j : {a1, a2, b1, b2})
    ASSERT_EQ(j->wait(), eng::job_status::completed);
  EXPECT_EQ(a1->graph_epoch(), 1u);
  EXPECT_EQ(b1->graph_epoch(), 2u);
  EXPECT_EQ(a1->batch_id(), a2->batch_id());
  EXPECT_EQ(b1->batch_id(), b2->batch_id());
  EXPECT_NE(a1->batch_id(), b1->batch_id());
  EXPECT_EQ(a1->batch_size(), 2u);
  EXPECT_EQ(b1->batch_size(), 2u);

  // Each wave enacted against its own pinned snapshot: the epoch-2 graph
  // has the 0 -> 31 shortcut, the epoch-1 graph does not.
  EXPECT_EQ(a1->result_as<bfs_lanes>()->depths[31], 31);
  EXPECT_EQ(b1->result_as<bfs_lanes>()->depths[31], 1);
  EXPECT_EQ(a2->result_as<bfs_lanes>()->depths[31], 30);
  EXPECT_EQ(b2->result_as<bfs_lanes>()->depths[31], 30);

  auto const s = engine.stats();
  EXPECT_EQ(s.batches, 2u);
  EXPECT_EQ(s.batched_jobs, 4u);
}

TEST(BatchEngine, IndependentModeNeverFuses) {
  engine_t engine({1, 64, 64});
  auto const g = path_graph(24);
  engine.registry().publish("g", g);

  std::atomic<bool> release{false};
  auto blocker = submit_blocker(engine, release);
  std::vector<eng::job_ptr> jobs;
  for (vertex_t src = 0; src < 4; ++src)
    jobs.push_back(engine.submit_batch(
        bfs_desc("g", src),
        eng::bfs_batch_job<gr::graph_csr>(exec::par, src,
                                          exec::batch::independent)));
  release.store(true, std::memory_order_release);

  for (vertex_t src = 0; src < 4; ++src) {
    auto const& j = jobs[static_cast<std::size_t>(src)];
    ASSERT_EQ(j->wait(), eng::job_status::completed);
    EXPECT_EQ(j->batch_size(), 0u);  // opted out: always enacts alone
    auto const oracle =
        alg::multi_source_bfs(exec::seq, g, std::vector<vertex_t>{src});
    EXPECT_EQ(j->result_as<bfs_lanes>()->depths, oracle.depth[0]);
  }
  auto const s = engine.stats();
  EXPECT_EQ(s.batches, 0u);
  EXPECT_EQ(s.batched_jobs, 0u);
  EXPECT_EQ(s.edge_passes_saved, 0u);
  EXPECT_DOUBLE_EQ(s.avg_batch_size(), 0.0);
}

TEST(BatchEngine, StatsJsonExportsV3BatchCounters) {
  eng::engine_stats stats;
  stats.on_batch(8, 7);
  stats.on_batch(4, 3);
  auto const s = stats.snapshot();
  EXPECT_EQ(s.batches, 2u);
  EXPECT_EQ(s.batched_jobs, 12u);
  EXPECT_EQ(s.edge_passes_saved, 10u);
  EXPECT_DOUBLE_EQ(s.avg_batch_size(), 6.0);
  std::ostringstream os;
  eng::write_json(s, os);
  auto const json = os.str();
  EXPECT_NE(json.find("\"engine_stats_version\":5"), std::string::npos);
  EXPECT_NE(json.find("\"batches\":2"), std::string::npos);
  EXPECT_NE(json.find("\"batched_jobs\":12"), std::string::npos);
  EXPECT_NE(json.find("\"edge_passes_saved\":10"), std::string::npos);
  EXPECT_NE(json.find("\"avg_batch_size\":6"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TSAN stress: fusion windows racing submitters, runners and publishes
// ---------------------------------------------------------------------------

TEST(BatchTsanBurst, ConcurrentSubmittersFuseSafelyAndExactly) {
  engine_t engine({/*runners=*/2, /*max_queued=*/512, /*cache=*/0});
  auto const g = path_graph(64);
  engine.registry().publish("g", g);

  // Precompute the oracle depth of the last vertex per source.
  constexpr vertex_t kSources = 32;
  constexpr int kPerThread = 24;
  constexpr int kThreads = 4;

  std::mutex mu;
  std::vector<std::pair<vertex_t, eng::job_ptr>> handles;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&engine, &mu, &handles, t] {
      std::uint64_t x = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(t + 1);
      for (int i = 0; i < kPerThread; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        auto const src = static_cast<vertex_t>((x >> 33) % kSources);
        auto d = bfs_desc("g", src);
        d.use_cache = false;  // force enactment: every job exercises fusion
        auto j = engine.submit_batch(
            std::move(d), eng::bfs_batch_job<gr::graph_csr>(exec::par, src));
        std::lock_guard<std::mutex> guard(mu);
        handles.emplace_back(src, std::move(j));
      }
    });
  }
  for (auto& t : submitters)
    t.join();

  for (auto const& [src, j] : handles) {
    ASSERT_EQ(j->wait(), eng::job_status::completed);
    auto const served = j->result_as<bfs_lanes>();
    ASSERT_NE(served, nullptr);
    EXPECT_EQ(served->depths[63], 63 - src);
  }
  // With two runners racing the submitters the exact fusion pattern is
  // nondeterministic; that at least one wave fused is overwhelmingly
  // likely with 96 jobs over 32 keys — but the assertions above (every
  // result exact) are the real contract.
  EXPECT_EQ(engine.stats().failed, 0u);
}

TEST(BatchTsanBurst, BurstsRacingEpochPublishesPinOneSnapshot) {
  engine_t engine({/*runners=*/2, /*max_queued=*/1024, /*cache=*/64});
  engine.registry().publish("g", path_graph(48, false));

  std::atomic<bool> stop{false};
  // Publisher: flip the shortcut every publish.  Epoch e has the shortcut
  // iff e is even (epoch 1 = no shortcut, 2 = shortcut, ...).
  std::thread publisher([&engine, &stop] {
    bool shortcut = true;
    while (!stop.load(std::memory_order_acquire)) {
      engine.registry().publish("g", path_graph(48, shortcut));
      shortcut = !shortcut;
      std::this_thread::sleep_for(2ms);
    }
  });

  std::mutex mu;
  std::vector<eng::job_ptr> handles;
  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&engine, &mu, &handles] {
      for (int i = 0; i < 40; ++i) {
        auto const src = static_cast<vertex_t>(i % 8);
        auto d = bfs_desc("g", src);
        d.use_cache = false;
        auto j = engine.submit_batch(
            std::move(d), eng::bfs_batch_job<gr::graph_csr>(exec::par, src));
        {
          std::lock_guard<std::mutex> guard(mu);
          handles.push_back(std::move(j));
        }
        if (i % 8 == 0)
          std::this_thread::sleep_for(1ms);
      }
    });
  }
  for (auto& t : submitters)
    t.join();
  for (auto const& j : handles)
    j->wait();
  stop.store(true, std::memory_order_release);
  publisher.join();

  // Every completed job must be self-consistent with the *single* snapshot
  // its wave pinned: depth of vertex 47 from src is either 47-src (no
  // shortcut) or, for src==0 with the shortcut, 1.  The job's epoch parity
  // tells us which graph it pinned.
  for (auto const& j : handles) {
    ASSERT_EQ(j->status(), eng::job_status::completed);
    auto const served = j->result_as<bfs_lanes>();
    ASSERT_NE(served, nullptr);
    auto const epoch = j->graph_epoch();
    ASSERT_GE(epoch, 1u);
    bool const has_shortcut = (epoch % 2) == 0;
    auto const params = j->desc().params;  // "src=N"
    auto const src = static_cast<vertex_t>(std::stoi(params.substr(4)));
    vertex_t const expect =
        (has_shortcut && src == 0) ? 1 : (47 - src);
    EXPECT_EQ(served->depths[47], expect)
        << "src=" << src << " epoch=" << epoch;
  }
  EXPECT_EQ(engine.stats().failed, 0u);
}
