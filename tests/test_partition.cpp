// Tests for the partitioning pillar: heuristics, quality metrics, and the
// partitioned graph behind the unchanged top-level API.
#include <gtest/gtest.h>

#include <set>

#include "algorithms/bfs.hpp"
#include "algorithms/sssp.hpp"
#include "core/execution.hpp"
#include "generators/generators.hpp"
#include "graph/graph.hpp"
#include "partition/partition.hpp"
#include "partition/partitioned_graph.hpp"

namespace alg = essentials::algorithms;
namespace ex = essentials::execution;
namespace g = essentials::graph;
namespace gen = essentials::generators;
namespace pt = essentials::partition;
using essentials::vertex_t;

namespace {

g::csr_t<> grid_csr() {
  auto coo = gen::grid_2d(16, 16, {0.5f, 2.0f}, 3);
  g::sort_and_deduplicate(coo);
  return g::build_csr(coo);
}

}  // namespace

// --- heuristics --------------------------------------------------------------

TEST(Partition, RandomAssignsEveryVertexAPart) {
  auto const p = pt::partition_random<vertex_t>(1000, 4, 7);
  EXPECT_EQ(p.assignment.size(), 1000u);
  std::set<int> parts(p.assignment.begin(), p.assignment.end());
  for (int const part : parts) {
    EXPECT_GE(part, 0);
    EXPECT_LT(part, 4);
  }
  EXPECT_EQ(parts.size(), 4u);  // all parts used at n=1000
}

TEST(Partition, RandomIsDeterministicPerSeed) {
  auto const a = pt::partition_random<vertex_t>(100, 3, 5);
  auto const b = pt::partition_random<vertex_t>(100, 3, 5);
  auto const c = pt::partition_random<vertex_t>(100, 3, 6);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_NE(a.assignment, c.assignment);
}

TEST(Partition, BlockIsContiguousAndBalanced) {
  auto const p = pt::partition_block<vertex_t>(100, 4);
  EXPECT_EQ(p.assignment.front(), 0);
  EXPECT_EQ(p.assignment.back(), 3);
  for (std::size_t v = 1; v < 100; ++v)
    EXPECT_GE(p.assignment[v], p.assignment[v - 1]);  // monotone
  EXPECT_LE(pt::vertex_balance(p), 1.01);
}

TEST(Partition, GreedyEdgesBalancesEdgeLoad) {
  // Star graph: the hub has all the edges; greedy must isolate it and the
  // edge balance must beat the block partitioner's.
  auto coo = gen::star(400);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  auto const greedy = pt::partition_greedy_edges(csr, 4);
  auto const block = pt::partition_block<vertex_t>(400, 4);
  EXPECT_LT(pt::edge_balance(csr, greedy), pt::edge_balance(csr, block));
}

TEST(Partition, BfsGrowCoversAllVerticesWithBoundedImbalance) {
  auto const csr = grid_csr();
  auto const p = pt::partition_bfs_grow(csr, 4, 2);
  for (int const a : p.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
  EXPECT_LE(pt::vertex_balance(p), 1.5);
}

TEST(Partition, SinglePartIsTrivial) {
  auto const csr = grid_csr();
  auto const p = pt::partition_block<vertex_t>(csr.num_rows, 1);
  EXPECT_EQ(pt::edge_cut(csr, p), 0u);
  EXPECT_DOUBLE_EQ(pt::vertex_balance(p), 1.0);
}

// --- metrics -----------------------------------------------------------------

TEST(PartitionMetrics, EdgeCutCountsCrossEdges) {
  // 4-cycle split in half: 0,1 | 2,3 -> cut edges (1,2),(2,1),(3,0),(0,3).
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  coo.push_back(0, 1, 1.f);
  coo.push_back(1, 2, 1.f);
  coo.push_back(2, 3, 1.f);
  coo.push_back(3, 0, 1.f);
  g::symmetrize(coo);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  pt::partition_t<vertex_t> p;
  p.num_parts = 2;
  p.assignment = {0, 0, 1, 1};
  EXPECT_EQ(pt::edge_cut(csr, p), 4u);
  EXPECT_DOUBLE_EQ(pt::edge_cut_fraction(csr, p), 0.5);
}

TEST(PartitionMetrics, LocalityAwareBeatsRandomOnMeshes) {
  // The paper-motivating shape: on a mesh, BFS-grown regions cut far fewer
  // edges than random assignment.
  auto const csr = grid_csr();
  auto const random = pt::partition_random<vertex_t>(csr.num_rows, 4, 1);
  auto const grown = pt::partition_bfs_grow(csr, 4, 1);
  EXPECT_LT(pt::edge_cut_fraction(csr, grown),
            0.5 * pt::edge_cut_fraction(csr, random));
}

// --- partitioned graph ----------------------------------------------------------

TEST(PartitionedGraph, SameApiSameAnswers) {
  auto const csr = grid_csr();
  g::graph_csr flat;
  flat.set_csr(csr);
  pt::partitioned_graph_t<> part(csr, pt::partition_random<vertex_t>(
                                          csr.num_rows, 4, 9));

  ASSERT_EQ(part.get_num_vertices(), flat.get_num_vertices());
  ASSERT_EQ(part.get_num_edges(), flat.get_num_edges());
  for (vertex_t v = 0; v < flat.get_num_vertices(); ++v) {
    ASSERT_EQ(part.get_out_degree(v), flat.get_out_degree(v)) << v;
    // Neighbor multiset (with weights) must match despite different edge-id
    // spaces.
    std::multiset<std::pair<vertex_t, float>> a, b;
    for (auto const e : flat.get_edges(v))
      a.emplace(flat.get_dest_vertex(e), flat.get_edge_weight(e));
    for (auto const e : part.get_edges(v))
      b.emplace(part.get_dest_vertex(e), part.get_edge_weight(e));
    EXPECT_EQ(a, b) << "vertex " << v;
  }
}

TEST(PartitionedGraph, OwnedVerticesPartitionTheVertexSet) {
  auto const csr = grid_csr();
  auto const p = pt::partition_bfs_grow(csr, 3, 4);
  pt::partitioned_graph_t<> part(csr, p);
  std::set<vertex_t> seen;
  for (int k = 0; k < part.num_parts(); ++k)
    for (vertex_t const v : part.owned_vertices(k)) {
      EXPECT_EQ(p.assignment[static_cast<std::size_t>(v)], k);
      EXPECT_TRUE(seen.insert(v).second) << "vertex owned twice: " << v;
    }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(csr.num_rows));
}

TEST(PartitionedGraph, SsspRunsUnchangedOnPartitionedGraph) {
  // The paper's §III-D punchline: algorithms written against the top-level
  // API run on the partitioned representation without modification.
  auto const csr = grid_csr();
  g::graph_csr flat;
  flat.set_csr(csr);
  pt::partitioned_graph_t<> part(
      csr, pt::partition_bfs_grow(csr, 4, 11));

  auto const want = alg::dijkstra(flat, 0).distances;
  auto const got = alg::sssp(ex::par, part, 0).distances;
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v)
    EXPECT_NEAR(got[v], want[v], 1e-3) << v;
}

TEST(PartitionedGraph, BfsRunsUnchangedOnPartitionedGraph) {
  auto const csr = grid_csr();
  g::graph_csr flat;
  flat.set_csr(csr);
  pt::partitioned_graph_t<> part(csr,
                                 pt::partition_random<vertex_t>(
                                     csr.num_rows, 5, 2));
  auto const want = alg::bfs_serial(flat, 7).depths;
  auto const got = alg::bfs(ex::par, part, 7).depths;
  EXPECT_EQ(got, want);
}

TEST(PartitionedGraph, MessagePassingSsspWithPartitionDerivedOwnership) {
  // Close the loop: the partition drives rank ownership in the
  // message-passing SSSP.
  auto const csr = grid_csr();
  g::graph_csr flat;
  flat.set_csr(csr);
  auto const p = pt::partition_bfs_grow(csr, 3, 8);
  auto const want = alg::dijkstra(flat, 0).distances;
  auto const got =
      alg::sssp_message_passing(flat, 0, 3,
                                [&p](vertex_t v) { return p.part_of(v); })
          .distances;
  for (std::size_t v = 0; v < want.size(); ++v)
    EXPECT_NEAR(got[v], want[v], 1e-3) << v;
}
