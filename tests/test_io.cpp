// Tests for the IO module: MatrixMarket, edge lists, DIMACS, binary CSR.
#include <gtest/gtest.h>

#include <sstream>

#include "generators/generators.hpp"
#include "graph/build.hpp"
#include "io/binary.hpp"
#include "io/dimacs.hpp"
#include "io/edge_list.hpp"
#include "io/matrix_market.hpp"

namespace io = essentials::io;
namespace g = essentials::graph;
namespace gen = essentials::generators;

// --- MatrixMarket -------------------------------------------------------------

TEST(MatrixMarket, ParsesGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 2 1.5\n"
      "3 1 2.5\n");
  auto const coo = io::read_matrix_market(in);
  EXPECT_EQ(coo.num_rows, 3);
  ASSERT_EQ(coo.num_edges(), 2);
  EXPECT_EQ(coo.row_indices[0], 0);  // 1-based -> 0-based
  EXPECT_EQ(coo.column_indices[0], 1);
  EXPECT_FLOAT_EQ(coo.values[0], 1.5f);
}

TEST(MatrixMarket, ExpandsSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 1.0\n"
      "3 3 9.0\n");  // diagonal entry must NOT be duplicated
  auto const coo = io::read_matrix_market(in);
  EXPECT_EQ(coo.num_edges(), 3);  // (1,0), (0,1), (2,2)
}

TEST(MatrixMarket, PatternGetsUnitWeights) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 2\n");
  auto const coo = io::read_matrix_market(in);
  ASSERT_EQ(coo.num_edges(), 1);
  EXPECT_FLOAT_EQ(coo.values[0], 1.0f);
}

TEST(MatrixMarket, RejectsMalformedInputs) {
  std::istringstream no_banner("1 1 0\n");
  EXPECT_THROW(io::read_matrix_market(no_banner), essentials::graph_error);

  std::istringstream bad_object(
      "%%MatrixMarket vector coordinate real general\n1 1 0\n");
  EXPECT_THROW(io::read_matrix_market(bad_object), essentials::graph_error);

  std::istringstream out_of_range(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n");
  EXPECT_THROW(io::read_matrix_market(out_of_range), essentials::graph_error);

  std::istringstream truncated(
      "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n");
  EXPECT_THROW(io::read_matrix_market(truncated), essentials::graph_error);
}

TEST(MatrixMarket, RoundTrip) {
  auto coo = gen::erdos_renyi(32, 100, {0.5f, 2.0f}, 5);
  g::sort_and_deduplicate(coo);
  std::stringstream buf;
  io::write_matrix_market(buf, coo);
  auto const back = io::read_matrix_market(buf);
  EXPECT_EQ(back.num_rows, coo.num_rows);
  EXPECT_EQ(back.row_indices, coo.row_indices);
  EXPECT_EQ(back.column_indices, coo.column_indices);
  for (std::size_t i = 0; i < coo.values.size(); ++i)
    EXPECT_NEAR(back.values[i], coo.values[i], 1e-4f);
}

// --- edge list -----------------------------------------------------------------

TEST(EdgeList, ParsesWithCommentsAndOptionalWeights) {
  std::istringstream in(
      "# SNAP-style comment\n"
      "% another comment\n"
      "0 1 2.5\n"
      "1 2\n"
      "\n"
      "2 0 7\n");
  auto const coo = io::read_edge_list(in);
  EXPECT_EQ(coo.num_rows, 3);
  ASSERT_EQ(coo.num_edges(), 3);
  EXPECT_FLOAT_EQ(coo.values[0], 2.5f);
  EXPECT_FLOAT_EQ(coo.values[1], 1.0f);  // default weight
}

TEST(EdgeList, ExplicitVertexCountOverridesInference) {
  std::istringstream in("0 1\n");
  io::edge_list_options opt;
  opt.num_vertices = 10;
  auto const coo = io::read_edge_list(in, opt);
  EXPECT_EQ(coo.num_rows, 10);
}

TEST(EdgeList, RejectsBadLines) {
  std::istringstream garbage("0 x\n");
  EXPECT_THROW(io::read_edge_list(garbage), essentials::graph_error);
  std::istringstream negative("-1 2\n");
  EXPECT_THROW(io::read_edge_list(negative), essentials::graph_error);
  std::istringstream in("0 5\n");
  io::edge_list_options opt;
  opt.num_vertices = 3;  // smaller than max id + 1
  EXPECT_THROW(io::read_edge_list(in, opt), essentials::graph_error);
}

TEST(EdgeList, RoundTrip) {
  auto coo = gen::grid_2d(3, 3);
  std::stringstream buf;
  io::write_edge_list(buf, coo);
  auto const back = io::read_edge_list(buf);
  EXPECT_EQ(back.row_indices, coo.row_indices);
  EXPECT_EQ(back.column_indices, coo.column_indices);
}

// --- DIMACS --------------------------------------------------------------------

TEST(Dimacs, ParsesProblemAndArcs) {
  std::istringstream in(
      "c road network fragment\n"
      "p sp 3 2\n"
      "a 1 2 10\n"
      "a 2 3 20\n");
  auto const coo = io::read_dimacs(in);
  EXPECT_EQ(coo.num_rows, 3);
  ASSERT_EQ(coo.num_edges(), 2);
  EXPECT_EQ(coo.row_indices[0], 0);
  EXPECT_FLOAT_EQ(coo.values[1], 20.0f);
}

TEST(Dimacs, RejectsMalformed) {
  std::istringstream no_problem("a 1 2 3\n");
  EXPECT_THROW(io::read_dimacs(no_problem), essentials::graph_error);
  std::istringstream bad_type("p sp 2 1\nz 1 2 3\n");
  EXPECT_THROW(io::read_dimacs(bad_type), essentials::graph_error);
  std::istringstream out_of_range("p sp 2 1\na 1 9 3\n");
  EXPECT_THROW(io::read_dimacs(out_of_range), essentials::graph_error);
  std::istringstream empty("c only comments\n");
  EXPECT_THROW(io::read_dimacs(empty), essentials::graph_error);
}

TEST(Dimacs, RoundTrip) {
  auto coo = gen::grid_2d(4, 4, {1.0f, 10.0f}, 3);
  for (auto& v : coo.values)
    v = static_cast<float>(static_cast<long long>(v));  // integral weights
  std::stringstream buf;
  io::write_dimacs(buf, coo);
  auto const back = io::read_dimacs(buf);
  EXPECT_EQ(back.row_indices, coo.row_indices);
  EXPECT_EQ(back.column_indices, coo.column_indices);
  EXPECT_EQ(back.values, coo.values);
}

// --- binary CSR ------------------------------------------------------------------

TEST(BinaryCsr, RoundTripPreservesEverything) {
  gen::rmat_options opt;
  opt.scale = 6;
  opt.edge_factor = 4;
  auto coo = gen::rmat(opt);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary_csr(buf, csr);
  auto const back = io::read_binary_csr(buf);
  EXPECT_EQ(back.num_rows, csr.num_rows);
  EXPECT_EQ(back.num_cols, csr.num_cols);
  EXPECT_EQ(back.row_offsets, csr.row_offsets);
  EXPECT_EQ(back.column_indices, csr.column_indices);
  EXPECT_EQ(back.values, csr.values);
}

TEST(BinaryCsr, RejectsBadMagicAndTruncation) {
  std::stringstream bad(std::ios::in | std::ios::out | std::ios::binary);
  bad << "definitely not a CSR file";
  EXPECT_THROW(io::read_binary_csr(bad), essentials::graph_error);

  auto coo = gen::chain(8);
  auto const csr = g::build_csr(coo);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary_csr(buf, csr);
  std::string const full = buf.str();
  std::stringstream cut(std::ios::in | std::ios::out | std::ios::binary);
  cut << full.substr(0, full.size() / 2);
  EXPECT_THROW(io::read_binary_csr(cut), essentials::graph_error);
}

TEST(BinaryCsr, FileRoundTrip) {
  auto coo = gen::star(10);
  auto const csr = g::build_csr(coo);
  std::string const path = ::testing::TempDir() + "/essentials_csr.bin";
  io::write_binary_csr_file(path, csr);
  auto const back = io::read_binary_csr_file(path);
  EXPECT_EQ(back.column_indices, csr.column_indices);
  EXPECT_THROW(io::read_binary_csr_file("/nonexistent/nope.bin"),
               essentials::graph_error);
}
