// Torture tests for the work-stealing execution substrate: the Chase–Lev
// deque (steal-vs-pop races, growth under fire), the tree barrier and
// striped completion latch (reuse across thousands of generations), and the
// stealing thread pool (ops-conservation storms, re-entrancy, the
// "queue empty != pool idle" regression).  All suites here run under the
// CI TSAN matrix — every assertion doubles as a race detector payload.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/barrier.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_deque.hpp"

namespace p = essentials::parallel;

// --- work_deque --------------------------------------------------------------

TEST(WorkDeque, OwnerIsLifoThiefIsFifo) {
  p::work_deque<int> dq;
  dq.push(1);
  dq.push(2);
  dq.push(3);
  EXPECT_EQ(dq.size(), 3u);
  auto popped = dq.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 3);  // owner takes the newest
  auto stolen = dq.steal();
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(*stolen, 1);  // thief takes the oldest
  popped = dq.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 2);
  EXPECT_TRUE(dq.empty());
}

TEST(WorkDeque, EmptyDequeYieldsNothingForBothEnds) {
  p::work_deque<int> dq;
  EXPECT_FALSE(dq.pop().has_value());
  EXPECT_FALSE(dq.steal().has_value());
  // The failed pop/steal must not corrupt the indices: the deque still works.
  dq.push(7);
  auto got = dq.pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
  EXPECT_FALSE(dq.steal().has_value());
}

TEST(WorkDeque, GrowthPreservesContentsAndOrder) {
  p::work_deque<int> dq(2);  // force growth immediately
  EXPECT_EQ(dq.capacity(), 2u);
  for (int i = 0; i < 10'000; ++i)
    dq.push(i);
  EXPECT_GE(dq.capacity(), 10'000u);
  EXPECT_EQ(dq.size(), 10'000u);
  for (int i = 9'999; i >= 0; --i) {
    auto got = dq.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, i);  // LIFO order survived every ring doubling
  }
  EXPECT_TRUE(dq.empty());
}

// The boundary race: owner and thief fight over a deque holding exactly one
// element, over and over.  The single element must go to exactly one of
// them, every round.
TEST(WorkDeque, StealVsPopRaceAtSizeOne) {
  p::work_deque<int> dq;
  constexpr int rounds = 20'000;
  std::atomic<int> round{-1};
  std::atomic<int> owner_wins{0};
  std::atomic<int> thief_wins{0};
  std::atomic<int> acks{0};

  std::thread thief([&] {
    int last_seen = -1;
    while (last_seen < rounds - 1) {
      int const r = round.load(std::memory_order_acquire);
      if (r == last_seen) {
        std::this_thread::yield();
        continue;
      }
      last_seen = r;
      if (dq.steal().has_value())
        thief_wins.fetch_add(1);
      acks.fetch_add(1, std::memory_order_release);
    }
  });

  for (int r = 0; r < rounds; ++r) {
    dq.push(r);
    round.store(r, std::memory_order_release);
    if (dq.pop().has_value())
      owner_wins.fetch_add(1);
    // Wait for the thief's attempt before mopping up, so a thief that lost
    // the CAS cannot poach the *next* round's element.
    while (acks.load(std::memory_order_acquire) != r + 1)
      std::this_thread::yield();
    // A failed pop means the thief claimed it; either way the element is
    // gone — except when both failed spuriously, which must not happen for
    // a one-element deque with one thief.
    while (auto leftover = dq.pop())
      owner_wins.fetch_add(1);
  }
  thief.join();
  EXPECT_EQ(owner_wins.load() + thief_wins.load(), rounds);
  EXPECT_TRUE(dq.empty());
}

// Ops-conservation storm: one owner interleaving push/pop, seven thieves.
// Every pushed value must be claimed by exactly one party.
TEST(WorkDeque, EightThreadStealStormConservesEveryTask) {
  constexpr int n = 20'000;
  constexpr int num_thieves = 7;
  p::work_deque<int> dq;
  std::vector<std::atomic<int>> claims(n);
  std::atomic<int> claimed_total{0};

  auto claim = [&](int v) {
    claims[static_cast<std::size_t>(v)].fetch_add(1);
    claimed_total.fetch_add(1);
  };

  std::vector<std::thread> thieves;
  for (int t = 0; t < num_thieves; ++t)
    thieves.emplace_back([&] {
      while (claimed_total.load(std::memory_order_acquire) < n) {
        if (auto v = dq.steal())
          claim(*v);
        else
          std::this_thread::yield();
      }
    });

  for (int i = 0; i < n; ++i) {
    dq.push(i);
    if (i % 3 == 0)  // owner competes with the thieves at the other end
      if (auto v = dq.pop())
        claim(*v);
  }
  while (auto v = dq.pop())
    claim(*v);
  // Whatever the owner missed, the thieves are still draining.
  while (claimed_total.load(std::memory_order_acquire) < n)
    std::this_thread::yield();
  for (auto& t : thieves)
    t.join();

  EXPECT_EQ(claimed_total.load(), n);
  for (int i = 0; i < n; ++i)
    ASSERT_EQ(claims[static_cast<std::size_t>(i)].load(), 1) << "value " << i;
}

// Growth under fire: a tiny initial ring doubles many times while thieves
// are mid-steal on the retired rings.  Conservation must still hold.
TEST(WorkDeque, GrowthUnderConcurrentStealsConservesTasks) {
  constexpr int n = 10'000;
  constexpr int num_thieves = 3;
  p::work_deque<int> dq(2);
  std::vector<std::atomic<int>> claims(n);
  std::atomic<int> claimed_total{0};

  auto claim = [&](int v) {
    claims[static_cast<std::size_t>(v)].fetch_add(1);
    claimed_total.fetch_add(1);
  };

  std::vector<std::thread> thieves;
  for (int t = 0; t < num_thieves; ++t)
    thieves.emplace_back([&] {
      while (claimed_total.load(std::memory_order_acquire) < n) {
        if (auto v = dq.steal())
          claim(*v);
      }
    });

  for (int i = 0; i < n; ++i)
    dq.push(i);  // bursts straight through many ring doublings
  while (auto v = dq.pop())
    claim(*v);
  while (claimed_total.load(std::memory_order_acquire) < n)
    std::this_thread::yield();
  for (auto& t : thieves)
    t.join();

  EXPECT_EQ(claimed_total.load(), n);
  for (int i = 0; i < n; ++i)
    ASSERT_EQ(claims[static_cast<std::size_t>(i)].load(), 1) << "value " << i;
}

// --- tree_barrier ------------------------------------------------------------

namespace {

// Drive `rounds` supersteps through one barrier with `participants` threads.
// Oracle per round: a shared counter incremented once per thread before the
// barrier must read exactly participants * (round + 1) after it; a second
// barrier keeps fast threads from incrementing ahead of the check.
void drive_barrier(std::size_t participants, int rounds,
                   bool slow_participant = false) {
  p::tree_barrier barrier(participants);
  std::atomic<long long> sum{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t id = 0; id < participants; ++id)
    threads.emplace_back([&, id] {
      for (int r = 0; r < rounds; ++r) {
        if (slow_participant && id == 0 && r % 8 == 0)
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        sum.fetch_add(1);
        barrier.arrive_and_wait(id);
        long long const expected =
            static_cast<long long>(participants) * (r + 1);
        if (sum.load() != expected)
          failures.fetch_add(1);
        barrier.arrive_and_wait(id);
      }
    });
  for (auto& t : threads)
    t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(sum.load(),
            static_cast<long long>(participants) * rounds);
  EXPECT_EQ(barrier.generation(), static_cast<std::uint64_t>(2 * rounds));
}

}  // namespace

TEST(TreeBarrier, ReusableAcrossTenThousandSupersteps) {
  drive_barrier(4, 10'000);
}

TEST(TreeBarrier, MixedFastAndSlowParticipantsFlipSenseCorrectly) {
  // The slow participant overruns every fast thread's spin budget, forcing
  // the futex-park path; the sum oracle proves no generation tears.
  drive_barrier(4, 256, /*slow_participant=*/true);
}

TEST(TreeBarrier, EveryParticipantCountAcrossFanInBoundaries) {
  // 1..9 participants crosses the fan-in-4 tree shapes: single node, one
  // full leaf, leaf+remainder, and a two-level tree.
  for (std::size_t participants = 1; participants <= 9; ++participants)
    drive_barrier(participants, 200);
}

TEST(TreeBarrier, SingleParticipantNeverBlocks) {
  p::tree_barrier barrier(1);
  for (int r = 0; r < 1000; ++r)
    barrier.arrive_and_wait(0);
  EXPECT_EQ(barrier.generation(), 1000u);
}

TEST(TreeBarrier, ZeroParticipantsNormalizedToOne) {
  p::tree_barrier barrier(0);
  EXPECT_EQ(barrier.participants(), 1u);
  barrier.arrive_and_wait(0);  // must not hang
  EXPECT_EQ(barrier.generation(), 1u);
}

// --- completion_latch --------------------------------------------------------

TEST(CompletionLatch, ZeroCountIsImmediatelyDone) {
  p::completion_latch latch(0);
  EXPECT_TRUE(latch.done());
  latch.wait();  // must not hang
}

TEST(CompletionLatch, OpensOnlyAfterEveryIndexRetired) {
  p::completion_latch latch(20);
  for (std::size_t i = 0; i < 19; ++i) {
    latch.count_down(i);
    EXPECT_FALSE(latch.done()) << "opened early at index " << i;
  }
  latch.count_down(19);
  EXPECT_TRUE(latch.done());
}

TEST(CompletionLatch, ReusableViaReset) {
  p::completion_latch latch;
  for (int round = 0; round < 100; ++round) {
    std::size_t const count = 1 + static_cast<std::size_t>(round) % 17;
    latch.reset(count);
    EXPECT_FALSE(latch.done());
    for (std::size_t i = 0; i < count; ++i)
      latch.count_down(i);
    EXPECT_TRUE(latch.done());
    latch.wait();
  }
}

TEST(CompletionLatch, MultithreadedCountdownReleasesWaiter) {
  constexpr std::size_t count = 64;
  constexpr int threads = 8;
  p::completion_latch latch(count);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t)
    workers.emplace_back([&, t] {
      // Worker t retires indices congruent to t mod threads — chunk ids
      // land on arbitrary stripes, exactly like stolen chunks would.
      for (std::size_t i = static_cast<std::size_t>(t); i < count;
           i += threads) {
        std::this_thread::yield();
        latch.count_down(i);
      }
    });
  latch.wait();
  EXPECT_TRUE(latch.done());
  for (auto& w : workers)
    w.join();
}

// --- stealing thread pool ----------------------------------------------------

TEST(WorkStealing, ModeKnobsSelectSubstrate) {
  p::thread_pool stealing(2, p::queue_mode::stealing);
  p::thread_pool central(2, p::queue_mode::central);
  EXPECT_EQ(stealing.mode(), p::queue_mode::stealing);
  EXPECT_EQ(central.mode(), p::queue_mode::central);
  EXPECT_GT(stealing.max_lanes(), stealing.size());
  EXPECT_EQ(central.max_lanes(), central.size() + 1);
  // Lane identity is a stealing-substrate concept.
  EXPECT_EQ(central.lane_id(), p::thread_pool::no_lane);
  EXPECT_EQ(central.register_external_lane(), p::thread_pool::no_lane);
}

TEST(WorkStealing, ExternalLaneRegistrationIsStable) {
  p::thread_pool pool(2, p::queue_mode::stealing);
  std::size_t const lane = pool.register_external_lane();
  ASSERT_NE(lane, p::thread_pool::no_lane);
  EXPECT_GE(lane, pool.size());       // external slots live above the workers
  EXPECT_LT(lane, pool.max_lanes());
  EXPECT_EQ(pool.lane_id(), lane);
  EXPECT_EQ(pool.register_external_lane(), lane);  // idempotent per thread
  // A different thread claims a *different* slot.
  std::size_t other = p::thread_pool::no_lane;
  std::thread t([&] { other = pool.register_external_lane(); });
  t.join();
  ASSERT_NE(other, p::thread_pool::no_lane);
  EXPECT_NE(other, lane);
}

TEST(WorkStealing, ZeroThreadsNormalizedToOneInBothModes) {
  for (auto mode : {p::queue_mode::stealing, p::queue_mode::central}) {
    p::thread_pool pool(0, mode);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> ran{0};
    pool.run_blocked(10, [&ran](std::size_t lo, std::size_t hi) {
      ran.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(ran.load(), 10);
  }
}

// Ops-conservation storm at the pool level: tasks submitted from outside
// (injector path) and from inside workers (own-deque path, stolen by
// peers).  Every task must run exactly once.
TEST(WorkStealing, SubmitStormConservesEveryTask) {
  constexpr int roots = 500;
  constexpr int children_per_root = 7;
  constexpr int total = roots * (1 + children_per_root);
  p::thread_pool pool(8, p::queue_mode::stealing);
  std::vector<std::atomic<int>> hits(total);
  for (int r = 0; r < roots; ++r)
    pool.submit([&, r] {
      hits[static_cast<std::size_t>(r)].fetch_add(1);
      for (int c = 0; c < children_per_root; ++c) {
        int const slot = roots + r * children_per_root + c;
        pool.submit([&hits, slot] {
          hits[static_cast<std::size_t>(slot)].fetch_add(1);
        });
      }
    });
  pool.wait_idle();
  for (int i = 0; i < total; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
}

TEST(WorkStealing, BurstSubmitFromSingleWorkerGrowsItsDeque) {
  // One worker burst-submits far past the deque's initial capacity from
  // inside a task, forcing the owner-side growth path while seven peers
  // steal from the same ring.
  p::thread_pool pool(8, p::queue_mode::stealing);
  constexpr int burst = 5'000;
  std::vector<std::atomic<int>> hits(burst);
  std::atomic<int> done{0};
  pool.submit([&] {
    for (int i = 0; i < burst; ++i)
      pool.submit([&hits, &done, i] {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
        done.fetch_add(1);
      });
  });
  pool.wait_idle();
  EXPECT_EQ(done.load(), burst);
  for (int i = 0; i < burst; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
}

TEST(WorkStealing, RunBlockedFromWorkerReentrancy) {
  // run_blocked nested two deep, launched from worker tasks: the inner
  // call must push to the worker's own lane and help drain it — a central
  // dependency of the enactor (operators call run_blocked from jobs).
  p::thread_pool pool(4, p::queue_mode::stealing);
  constexpr int jobs = 16;
  constexpr std::size_t n = 512;
  std::vector<std::atomic<int>> hits(jobs * n);
  std::atomic<int> jobs_done{0};
  for (int j = 0; j < jobs; ++j)
    pool.submit([&, j] {
      pool.run_blocked(n, [&, j](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          // Innermost level: another run_blocked from whatever thread runs
          // this chunk (owner or thief).
          if (i == lo)
            pool.run_blocked(4, [](std::size_t, std::size_t) {});
          hits[static_cast<std::size_t>(j) * n + i].fetch_add(1);
        }
      });
      jobs_done.fetch_add(1);
    });
  pool.wait_idle();
  EXPECT_EQ(jobs_done.load(), jobs);
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkStealing, ConcurrentExternalRunBlockedCallers) {
  // Four external threads each claim a lane and drive supersteps on the
  // same pool concurrently — the engine-runner topology.
  p::thread_pool pool(4, p::queue_mode::stealing);
  constexpr int callers = 4;
  constexpr int rounds = 100;
  constexpr std::size_t n = 777;
  std::atomic<long long> grand_total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < callers; ++t)
    threads.emplace_back([&] {
      pool.register_external_lane();
      for (int r = 0; r < rounds; ++r) {
        std::atomic<long long> local{0};
        pool.run_blocked(n, [&local](std::size_t lo, std::size_t hi) {
          local.fetch_add(static_cast<long long>(hi - lo));
        });
        ASSERT_EQ(local.load(), static_cast<long long>(n));
        grand_total.fetch_add(local.load());
      }
    });
  for (auto& t : threads)
    t.join();
  EXPECT_EQ(grand_total.load(),
            static_cast<long long>(callers) * rounds * n);
}

// The classic "queue empty != pool idle" regression: a task has been taken
// off every queue and is *running*; wait_idle must not return until it
// finished and its captured state was destroyed.
TEST(WorkStealing, WaitIdleCannotReturnWhileStolenTaskStillRuns) {
  p::thread_pool pool(2, p::queue_mode::stealing);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<bool> body_finished{false};
  std::atomic<bool> state_destroyed{false};

  struct canary {
    std::atomic<bool>* flag;
    ~canary() { flag->store(true); }
  };
  auto guard = std::make_shared<canary>(canary{&state_destroyed});
  pool.submit([&, guard] {
    started.store(true);
    while (!release.load())
      std::this_thread::yield();
    body_finished.store(true);
  });
  guard.reset();  // the task now holds the only reference

  while (!started.load())
    std::this_thread::yield();
  // Every queue and deque is empty now; the task is in flight.
  std::atomic<bool> wait_idle_ok{false};
  std::thread waiter([&] {
    pool.wait_idle();
    // Both must already be true from the waiter's point of view.
    wait_idle_ok.store(body_finished.load() && state_destroyed.load());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(wait_idle_ok.load());  // cannot have returned yet
  release.store(true);
  waiter.join();
  EXPECT_TRUE(wait_idle_ok.load());
}

TEST(WorkStealing, UrgentClassJumpsWorkerDequesAndInjector) {
  // Mirror of ThreadPool.UrgentTasksJumpTheQueue, pinned to the stealing
  // substrate: urgency must survive decentralized queues.
  p::thread_pool pool(1, p::queue_mode::stealing);
  std::mutex m;
  std::vector<int> order;
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load())
      std::this_thread::yield();
  });
  for (int i = 0; i < 3; ++i)
    pool.submit([&, i] {
      std::lock_guard<std::mutex> g(m);
      order.push_back(i);
    });
  pool.submit_urgent([&] {
    std::lock_guard<std::mutex> g(m);
    order.push_back(99);
  });
  release.store(true);
  pool.wait_idle();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 99);
  EXPECT_EQ((std::vector<int>{order[1], order[2], order[3]}),
            (std::vector<int>{0, 1, 2}));
}

TEST(WorkStealing, DiscardPendingDrainsWorkerDeques) {
  // Children submitted from inside the (single) worker sit in that
  // worker's own deque — discard_pending must reach in and drain them.
  p::thread_pool pool(1, p::queue_mode::stealing);
  std::atomic<bool> queued{false};
  std::atomic<bool> release{false};
  std::atomic<int> children_ran{0};
  pool.submit([&] {
    for (int i = 0; i < 8; ++i)
      pool.submit([&] { children_ran.fetch_add(1); });
    queued.store(true);
    while (!release.load())
      std::this_thread::yield();
  });
  while (!queued.load())
    std::this_thread::yield();
  std::size_t const discarded = pool.discard_pending();
  release.store(true);
  pool.wait_idle();  // must not wedge: discarded slots were released
  EXPECT_EQ(discarded, 8u);
  EXPECT_EQ(children_ran.load(), 0);
}

TEST(WorkStealing, RunBlockedMatchesCentralChunking) {
  // The deterministic chunking contract, cross-substrate: identical chunk
  // boundaries for identical (n, grain, size()), and bulk_step agrees.
  p::thread_pool stealing(3, p::queue_mode::stealing);
  p::thread_pool central(3, p::queue_mode::central);
  for (std::size_t n : {1u, 7u, 100u, 1777u, 65536u}) {
    for (std::size_t grain : {1u, 16u, 256u}) {
      ASSERT_EQ(stealing.bulk_step(n, grain), central.bulk_step(n, grain));
      auto collect = [n, grain](p::thread_pool& pool) {
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        std::mutex m;
        pool.run_blocked(
            n,
            [&](std::size_t lo, std::size_t hi) {
              std::lock_guard<std::mutex> g(m);
              chunks.emplace_back(lo, hi);
            },
            grain);
        std::sort(chunks.begin(), chunks.end());
        return chunks;
      };
      ASSERT_EQ(collect(stealing), collect(central))
          << "n=" << n << " grain=" << grain;
    }
  }
}

// --- tiered (topology-aware) steal order -------------------------------------

// The conservation storm, pinned to the tiered sweep: same-core, then
// same-socket, then remote victims.  On flat hardware the tiers collapse,
// but the sweep code path is still the one exercised.
TEST(WorkStealing, TieredSubmitStormConservesEveryTask) {
  constexpr int roots = 500;
  constexpr int children_per_root = 7;
  constexpr int total = roots * (1 + children_per_root);
  p::thread_pool pool(8, p::queue_mode::stealing, p::steal_order::tiered);
  ASSERT_EQ(pool.order(), p::steal_order::tiered);
  std::vector<std::atomic<int>> hits(total);
  for (int r = 0; r < roots; ++r)
    pool.submit([&, r] {
      hits[static_cast<std::size_t>(r)].fetch_add(1);
      for (int c = 0; c < children_per_root; ++c) {
        int const slot = roots + r * children_per_root + c;
        pool.submit([&hits, slot] {
          hits[static_cast<std::size_t>(slot)].fetch_add(1);
        });
      }
    });
  pool.wait_idle();
  for (int i = 0; i < total; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
}

TEST(WorkStealing, TieredRunBlockedFromWorkerReentrancy) {
  p::thread_pool pool(4, p::queue_mode::stealing, p::steal_order::tiered);
  constexpr int jobs = 16;
  constexpr std::size_t n = 512;
  std::vector<std::atomic<int>> hits(jobs * n);
  std::atomic<int> jobs_done{0};
  for (int j = 0; j < jobs; ++j)
    pool.submit([&, j] {
      pool.run_blocked(n, [&, j](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          if (i == lo)
            pool.run_blocked(4, [](std::size_t, std::size_t) {});
          hits[static_cast<std::size_t>(j) * n + i].fetch_add(1);
        }
      });
      jobs_done.fetch_add(1);
    });
  pool.wait_idle();
  EXPECT_EQ(jobs_done.load(), jobs);
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkStealing, TieredExternalLaneCallersDriveSuperstepsConcurrently) {
  p::thread_pool pool(4, p::queue_mode::stealing, p::steal_order::tiered);
  constexpr int callers = 4;
  constexpr int rounds = 100;
  constexpr std::size_t n = 777;
  std::atomic<long long> grand_total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < callers; ++t)
    threads.emplace_back([&] {
      pool.register_external_lane();
      for (int r = 0; r < rounds; ++r) {
        std::atomic<long long> local{0};
        pool.run_blocked(n, [&local](std::size_t lo, std::size_t hi) {
          local.fetch_add(static_cast<long long>(hi - lo));
        });
        ASSERT_EQ(local.load(), static_cast<long long>(n));
        grand_total.fetch_add(local.load());
      }
    });
  for (auto& t : threads)
    t.join();
  EXPECT_EQ(grand_total.load(),
            static_cast<long long>(callers) * rounds * n);
}

TEST(WorkStealing, TieredChunkingMatchesFlatChunking) {
  // The deterministic chunking contract holds across steal orders too —
  // the basis of the NUMA-on == NUMA-off differential suite.
  p::thread_pool tiered(3, p::queue_mode::stealing, p::steal_order::tiered);
  p::thread_pool flat(3, p::queue_mode::stealing, p::steal_order::flat);
  for (std::size_t n : {1u, 7u, 100u, 1777u, 65536u}) {
    for (std::size_t grain : {1u, 16u, 256u}) {
      ASSERT_EQ(tiered.bulk_step(n, grain), flat.bulk_step(n, grain));
      auto collect = [n, grain](p::thread_pool& pool) {
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        std::mutex m;
        pool.run_blocked(
            n,
            [&](std::size_t lo, std::size_t hi) {
              std::lock_guard<std::mutex> g(m);
              chunks.emplace_back(lo, hi);
            },
            grain);
        std::sort(chunks.begin(), chunks.end());
        return chunks;
      };
      ASSERT_EQ(collect(tiered), collect(flat))
          << "n=" << n << " grain=" << grain;
    }
  }
}

// --- steal-order seeding (ESSENTIALS_STEAL_SEED) -----------------------------

TEST(WorkStealing, StealSeedIsReadPerCall) {
  // Unset -> nullopt; set -> the parsed value; garbage -> nullopt.  Read
  // per call (not cached) so a test can set it right before building the
  // pool whose interleaving it wants to reproduce.
  unsetenv("ESSENTIALS_STEAL_SEED");
  EXPECT_FALSE(p::steal_seed().has_value());
  setenv("ESSENTIALS_STEAL_SEED", "12345", 1);
  ASSERT_TRUE(p::steal_seed().has_value());
  EXPECT_EQ(*p::steal_seed(), 12345u);
  setenv("ESSENTIALS_STEAL_SEED", "not-a-number", 1);
  EXPECT_FALSE(p::steal_seed().has_value());
  unsetenv("ESSENTIALS_STEAL_SEED");
}

TEST(WorkStealing, SeededPoolStillConservesTasks) {
  // A fixed seed reproduces the victim sweep; conservation and results are
  // unchanged — the knob only pins the interleaving.
  setenv("ESSENTIALS_STEAL_SEED", "42", 1);
  {
    p::thread_pool pool(4, p::queue_mode::stealing, p::steal_order::tiered);
    constexpr int total = 2000;
    std::vector<std::atomic<int>> hits(total);
    for (int i = 0; i < total; ++i)
      pool.submit([&hits, i] {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      });
    pool.wait_idle();
    for (int i = 0; i < total; ++i)
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
  unsetenv("ESSENTIALS_STEAL_SEED");
}

TEST(WorkStealing, PoolChurnShutsDownCleanly) {
  // Create/destroy many pools with in-flight work: the destructor must run
  // the backlog to completion and never strand a heap task.
  for (int round = 0; round < 40; ++round) {
    p::thread_pool pool(2, p::queue_mode::stealing);
    std::atomic<int> ran{0};
    for (int i = 0; i < 32; ++i)
      pool.submit([&ran] { ran.fetch_add(1); });
    pool.run_blocked(64, [](std::size_t, std::size_t) {});
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 32);
  }
}
