// BFS property suite: push, pull, direction-optimizing, async and
// message-passing variants against the serial oracle; parent-tree validity.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "algorithms/bfs.hpp"
#include "core/execution.hpp"
#include "generators/generators.hpp"
#include "graph/graph.hpp"

namespace alg = essentials::algorithms;
namespace ex = essentials::execution;
namespace g = essentials::graph;
namespace gen = essentials::generators;
using essentials::vertex_t;

namespace {

g::graph_push_pull make_graph(std::string const& family, std::uint64_t seed) {
  g::coo_t<> coo;
  if (family == "rmat") {
    gen::rmat_options opt;
    opt.scale = 8;
    opt.edge_factor = 8;
    opt.seed = seed;
    coo = gen::rmat(opt);
  } else if (family == "er") {
    coo = gen::erdos_renyi(500, 4000, {}, seed);
  } else if (family == "grid") {
    coo = gen::grid_2d(20, 20, {}, seed);
  } else {
    coo = gen::star(300, {}, seed);
  }
  g::remove_self_loops(coo);
  return g::from_coo<g::graph_push_pull>(std::move(coo));
}

/// A parent tree is valid iff every reached non-source vertex has a reached
/// parent exactly one level shallower, connected by a real edge.
template <typename G>
void expect_valid_parents(G const& graph, alg::bfs_result<> const& r,
                          vertex_t source) {
  for (vertex_t v = 0; v < graph.get_num_vertices(); ++v) {
    if (v == source || r.depths[static_cast<std::size_t>(v)] == -1)
      continue;
    vertex_t const p = r.parents[static_cast<std::size_t>(v)];
    ASSERT_NE(p, -1) << "reached vertex " << v << " has no parent";
    EXPECT_EQ(r.depths[static_cast<std::size_t>(p)] + 1,
              r.depths[static_cast<std::size_t>(v)]);
    bool edge_exists = false;
    for (auto const e : graph.get_edges(p))
      edge_exists |= (graph.get_dest_vertex(e) == v);
    EXPECT_TRUE(edge_exists) << "no edge " << p << " -> " << v;
  }
}

}  // namespace

using BfsParam = std::tuple<std::string, std::uint64_t>;
class BfsAllVariants : public ::testing::TestWithParam<BfsParam> {};

TEST_P(BfsAllVariants, EveryVariantMatchesSerialDepths) {
  auto const& [family, seed] = GetParam();
  auto const graph = make_graph(family, seed);
  vertex_t const source = 0;
  auto const oracle = alg::bfs_serial(graph, source);

  auto const push_seq = alg::bfs(ex::seq, graph, source);
  auto const push_par = alg::bfs(ex::par, graph, source);
  auto const pull = alg::bfs_pull(ex::par, graph, source);
  auto const dobfs = alg::bfs_direction_optimizing(ex::par, graph, source);
  auto const async = alg::bfs_async(graph, source, 4);

  EXPECT_EQ(push_seq.depths, oracle.depths) << family << "/push-seq";
  EXPECT_EQ(push_par.depths, oracle.depths) << family << "/push-par";
  EXPECT_EQ(pull.depths, oracle.depths) << family << "/pull";
  EXPECT_EQ(dobfs.depths, oracle.depths) << family << "/direction-optimizing";
  EXPECT_EQ(async.depths, oracle.depths) << family << "/async";

  expect_valid_parents(graph, push_par, source);
  expect_valid_parents(graph, pull, source);
  expect_valid_parents(graph, dobfs, source);
}

INSTANTIATE_TEST_SUITE_P(
    Families, BfsAllVariants,
    ::testing::Combine(::testing::Values("rmat", "er", "grid", "star"),
                       ::testing::Values(1u, 13u)),
    [](auto const& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Bfs, MessagePassingMatchesSerial) {
  for (auto const family : {"er", "grid"}) {
    auto const graph = make_graph(family, 3);
    auto const oracle = alg::bfs_serial(graph, 0);
    for (int ranks : {1, 2, 4}) {
      auto const mp = alg::bfs_message_passing(graph, 0, ranks);
      EXPECT_EQ(mp.depths, oracle.depths)
          << family << " ranks=" << ranks;
    }
  }
}

TEST(Bfs, DisconnectedComponentUnreached) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 5;
  coo.push_back(0, 1, 1.f);
  coo.push_back(1, 2, 1.f);
  coo.push_back(3, 4, 1.f);
  auto const graph = g::from_coo<g::graph_push_pull>(std::move(coo));
  auto const r = alg::bfs(ex::par, graph, 0);
  EXPECT_EQ(r.depths[2], 2);
  EXPECT_EQ(r.depths[3], -1);
  EXPECT_EQ(r.depths[4], -1);
}

TEST(Bfs, IterationCountEqualsEccentricity) {
  auto coo = gen::chain(64);
  auto const graph = g::from_coo<g::graph_push_pull>(std::move(coo));
  auto const r = alg::bfs(ex::par, graph, 0);
  EXPECT_EQ(r.depths[63], 63);
  EXPECT_EQ(r.iterations, 64u);  // 63 productive + 1 draining superstep
}

TEST(Bfs, DirectionOptimizingSwitchesOnDenseGraph) {
  // A complete-ish graph saturates in one hop; DOBFS must still be exact.
  auto coo = gen::complete(100);
  auto const graph = g::from_coo<g::graph_push_pull>(std::move(coo));
  auto const oracle = alg::bfs_serial(graph, 0);
  auto const dobfs = alg::bfs_direction_optimizing(ex::par, graph, 0);
  EXPECT_EQ(dobfs.depths, oracle.depths);
}

TEST(Bfs, SelfSourceDepthZero) {
  auto const graph = make_graph("er", 9);
  auto const r = alg::bfs(ex::par, graph, 42);
  EXPECT_EQ(r.depths[42], 0);
  EXPECT_EQ(r.parents[42], -1);
}

TEST(Bfs, InvalidSourceThrows) {
  auto const graph = make_graph("grid", 1);
  EXPECT_THROW(alg::bfs(ex::par, graph, -1), essentials::graph_error);
  EXPECT_THROW(alg::bfs_pull(ex::par, graph, 100000),
               essentials::graph_error);
}
