// Differential equivalence suite for the operator matrix (paper §III-C):
// every overload of advance — push seq/par/par_nosync, the Listing 3
// baseline, sparse->dense push, and pull — must compute the same function
// on the same input, across seeded random graphs and the pathological
// shapes (star, chain, self loops, isolated vertices) that historically
// expose frontier-invariant bugs.
//
// Beyond output equality, the suite cross-checks the telemetry layer:
// edges_inspected / edges_relaxed must agree across execution policies of
// one direction, and — for a pure condition without early exit — across
// *directions*, which is the comparability contract core/telemetry.hpp
// documents.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/operators/advance_balanced.hpp"
#include "core/operators/filter.hpp"
#include "core/operators/neighbor_reduce.hpp"
#include "core/telemetry.hpp"
#include "generators/generators.hpp"
#include "graph/compressed.hpp"
#include "graph/graph.hpp"
#include "parallel/thread_pool.hpp"

namespace ex = essentials::execution;
namespace op = essentials::operators;
namespace fr = essentials::frontier;
namespace g = essentials::graph;
namespace gen = essentials::generators;
namespace tel = essentials::telemetry;
using essentials::vertex_t;
using essentials::edge_t;
using essentials::weight_t;

namespace {

std::vector<vertex_t> sorted(std::vector<vertex_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<vertex_t> deduped(std::vector<vertex_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

// --- the graph family -------------------------------------------------------

g::graph_push_pull random_graph(std::uint64_t seed) {
  auto coo = gen::erdos_renyi(/*n=*/200, /*m=*/1500, {}, seed);
  return g::from_coo<g::graph_push_pull>(std::move(coo));
}

g::graph_push_pull star_graph() {
  return g::from_coo<g::graph_push_pull>(gen::star(64));
}

g::graph_push_pull chain_graph() {
  return g::from_coo<g::graph_push_pull>(gen::chain(32));
}

/// Self loops on every vertex plus a cycle — push must emit the loop
/// endpoint, pull must see the loop edge as an active in-edge.
g::graph_push_pull self_loop_graph() {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 6;
  for (vertex_t v = 0; v < 6; ++v) {
    coo.push_back(v, v, 1.f);                          // self loop
    coo.push_back(v, static_cast<vertex_t>((v + 1) % 6), 1.f);  // cycle
  }
  return g::from_coo<g::graph_push_pull>(std::move(coo));
}

/// Vertices 8..11 have no edges at all; the frontier may still contain
/// them (push expands nothing, pull never activates them).
g::graph_push_pull isolated_graph() {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 12;
  coo.push_back(0, 1, 1.f);
  coo.push_back(1, 2, 1.f);
  coo.push_back(2, 3, 1.f);
  coo.push_back(3, 0, 1.f);
  coo.push_back(1, 3, 1.f);
  return g::from_coo<g::graph_push_pull>(std::move(coo));
}

// --- conditions -------------------------------------------------------------

auto const always = [](vertex_t, vertex_t, edge_t, weight_t) { return true; };

/// Pure (side-effect-free, deterministic in the edge endpoints) condition
/// that accepts roughly two thirds of the edges — the shape for which push
/// and pull must agree edge-for-edge.
auto const pure_mod = [](vertex_t s, vertex_t d, edge_t, weight_t) {
  return (static_cast<std::size_t>(s) * 7 + static_cast<std::size_t>(d) * 13) %
             3 !=
         0;
};

// --- the differential harness -----------------------------------------------

/// Run every advance variant on (graph, seeds, cond); assert the outputs
/// agree (as multisets where the representation preserves duplicates, as
/// sets where it deduplicates) and the recorded edge counts match.
template <typename Cond>
void expect_variants_agree(g::graph_push_pull const& graph,
                           std::vector<vertex_t> seeds, Cond cond) {
  std::size_t const n = static_cast<std::size_t>(graph.get_num_vertices());
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));

  tel::trace t_seq, t_par, t_nosync, t_l3, t_balanced, t_dense, t_pull;
  tel::trace t_bulk, t_gen_l3, t_dedup;

  // Sequential push: the reference semantics.
  std::vector<vertex_t> ref_multiset;
  {
    tel::scoped_recording rec(t_seq, "advance.seq");
    ref_multiset = sorted(op::advance_push(ex::seq, graph, in, cond).to_vector());
  }
  std::vector<vertex_t> const ref_set = deduped(ref_multiset);

  {
    tel::scoped_recording rec(t_par, "advance.par");
    auto const out = op::advance_push(ex::par, graph, in, cond);
    EXPECT_EQ(sorted(out.to_vector()), ref_multiset);
  }
  {
    tel::scoped_recording rec(t_nosync, "advance.par_nosync");
    fr::sparse_frontier<vertex_t> out;
    op::advance_push(ex::par_nosync, graph, in, cond, out);
    ex::par_nosync.pool().wait_idle();  // scope outlives the barrier
    EXPECT_EQ(sorted(out.to_vector()), ref_multiset);
  }
  {
    tel::scoped_recording rec(t_l3, "listing3");
    auto const out = op::neighbors_expand_listing3(ex::par, graph, in, cond);
    EXPECT_EQ(sorted(out.to_vector()), ref_multiset);
  }
  // The frontier-generation axis: every strategy computes the same multiset
  // through one advance_push overload — only the publication path differs.
  {
    tel::scoped_recording rec(t_bulk, "advance.par.bulk");
    auto const out = op::advance_push(
        ex::par.with_frontier(ex::frontier_gen::bulk), graph, in, cond);
    EXPECT_EQ(sorted(out.to_vector()), ref_multiset);
  }
  {
    tel::scoped_recording rec(t_gen_l3, "advance.par.listing3");
    auto const out = op::advance_push(
        ex::par.with_frontier(ex::frontier_gen::listing3), graph, in, cond);
    EXPECT_EQ(sorted(out.to_vector()), ref_multiset);
  }
  // Dedup turns the sparse multiset into a set (when the input frontier is
  // itself duplicate-free, which every caller of this harness guarantees).
  {
    tel::scoped_recording rec(t_dedup, "advance.par.dedup");
    auto const out = op::advance_push(ex::par.with_dedup(), graph, in, cond);
    EXPECT_EQ(deduped(out.to_vector()), ref_set);
    EXPECT_EQ(out.size(), ref_set.size());  // already a set: dedup worked
  }
  for (auto mode : {ex::frontier_gen::bulk, ex::frontier_gen::listing3}) {
    auto const o2 = op::advance_push(
        ex::par.with_dedup().with_frontier(mode), graph, in, cond);
    EXPECT_EQ(o2.size(), ref_set.size());
    EXPECT_EQ(deduped(o2.to_vector()), ref_set);
  }
  // The scan path's output order is deterministic for a fixed pool and
  // grain: two identical runs must produce bit-identical vectors (the
  // locked paths promise only multiset equality).
  {
    auto const a = op::advance_push(ex::par, graph, in, cond);
    auto const b = op::advance_push(ex::par, graph, in, cond);
    EXPECT_EQ(a.to_vector(), b.to_vector());
  }
  {
    tel::scoped_recording rec(t_balanced, "advance.balanced");
    auto const out = op::advance_push_edge_balanced(ex::par, graph, in, cond);
    EXPECT_EQ(sorted(out.to_vector()), ref_multiset);
  }
  {
    tel::scoped_recording rec(t_dense, "advance.to_dense");
    auto const out = op::advance_push_to_dense(ex::par, graph, in, cond);
    EXPECT_EQ(out.to_vector(), ref_set);  // bitmap deduplicates
  }
  {
    tel::scoped_recording rec(t_pull, "advance.pull");
    auto const din = fr::to_dense(in, n);
    auto const out = op::advance_pull<false>(ex::par, graph, din, cond);
    EXPECT_EQ(out.to_vector(), ref_set);
  }

  if (tel::compiled_in) {
    // Work counts are invariant across execution policies of one direction…
    auto const insp = t_seq.total_edges_inspected();
    auto const relx = t_seq.total_edges_relaxed();
    EXPECT_EQ(relx, ref_multiset.size());
    EXPECT_EQ(t_par.total_edges_inspected(), insp);
    EXPECT_EQ(t_par.total_edges_relaxed(), relx);
    EXPECT_EQ(t_nosync.total_edges_inspected(), insp);
    EXPECT_EQ(t_nosync.total_edges_relaxed(), relx);
    EXPECT_EQ(t_l3.total_edges_inspected(), insp);
    EXPECT_EQ(t_l3.total_edges_relaxed(), relx);
    EXPECT_EQ(t_balanced.total_edges_inspected(), insp);
    EXPECT_EQ(t_balanced.total_edges_relaxed(), relx);
    EXPECT_EQ(t_dense.total_edges_inspected(), insp);
    EXPECT_EQ(t_dense.total_edges_relaxed(), relx);
    EXPECT_EQ(t_bulk.total_edges_inspected(), insp);
    EXPECT_EQ(t_bulk.total_edges_relaxed(), relx);
    EXPECT_EQ(t_gen_l3.total_edges_inspected(), insp);
    EXPECT_EQ(t_gen_l3.total_edges_relaxed(), relx);
    // …and across *directions* for a pure condition without early exit
    // (the input frontier holds unique ids, so CSR-side and CSC-side
    // traversals see the same edge set).
    EXPECT_EQ(t_pull.total_edges_inspected(), insp);
    EXPECT_EQ(t_pull.total_edges_relaxed(), relx);

    // Emit accounting: scan publishes lock-free, bulk/listing3 publish
    // under locks, and every relaxation is exactly one emit (no dedup).
    EXPECT_EQ(t_par.total_emits_scan(), relx);
    EXPECT_EQ(t_par.total_emits_lock(), 0u);
    EXPECT_EQ(t_bulk.total_emits_lock(), relx);
    EXPECT_EQ(t_bulk.total_emits_scan(), 0u);
    EXPECT_EQ(t_gen_l3.total_emits_lock(), relx);
    EXPECT_EQ(t_gen_l3.total_emits_scan(), 0u);
    EXPECT_EQ(t_par.total_dedup_hits(), 0u);
    // With dedup on, emitted + suppressed == relaxed.
    EXPECT_EQ(t_dedup.total_emits_scan() + t_dedup.total_dedup_hits(), relx);
    EXPECT_EQ(t_dedup.total_emits_scan(), ref_set.size());
  }
}

}  // namespace

// --- seeded random graphs ---------------------------------------------------

TEST(Differential, RandomGraphsAllVariantsAgree) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    auto const graph = random_graph(seed);
    std::vector<vertex_t> seeds;
    for (vertex_t v = 0; v < 50; v += 3)
      seeds.push_back(v);
    expect_variants_agree(graph, seeds, always);
    expect_variants_agree(graph, seeds, pure_mod);
  }
}

TEST(Differential, FullFrontierOnRandomGraph) {
  auto const graph = random_graph(99);
  std::vector<vertex_t> seeds(static_cast<std::size_t>(graph.get_num_vertices()));
  for (std::size_t i = 0; i < seeds.size(); ++i)
    seeds[i] = static_cast<vertex_t>(i);
  expect_variants_agree(graph, seeds, pure_mod);
}

// --- pathological shapes ----------------------------------------------------

TEST(Differential, StarHubFrontier) {
  auto const graph = star_graph();
  expect_variants_agree(graph, {0}, always);       // hub: 63-way fan-out
  expect_variants_agree(graph, {0}, pure_mod);
}

TEST(Differential, StarSpokeFrontier) {
  auto const graph = star_graph();
  std::vector<vertex_t> spokes;
  for (vertex_t v = 1; v < 64; ++v)
    spokes.push_back(v);  // all spokes point at the hub: max duplication
  expect_variants_agree(graph, spokes, always);
  expect_variants_agree(graph, spokes, pure_mod);
}

TEST(Differential, ChainSingleAndMulti) {
  auto const graph = chain_graph();
  expect_variants_agree(graph, {0}, always);
  expect_variants_agree(graph, {0, 5, 10, 31}, pure_mod);  // 31 has no out-edge
}

TEST(Differential, SelfLoops) {
  auto const graph = self_loop_graph();
  expect_variants_agree(graph, {0, 2, 4}, always);
  expect_variants_agree(graph, {0, 1, 2, 3, 4, 5}, pure_mod);
}

TEST(Differential, IsolatedVerticesInFrontier) {
  auto const graph = isolated_graph();
  expect_variants_agree(graph, {0, 8, 10, 11}, always);  // 8/10/11 are isolated
  expect_variants_agree(graph, {1, 9}, pure_mod);
}

// --- frontier-invariant regressions ----------------------------------------

// A vertex with several relaxing in-edges joins the pull output exactly
// once, while the condition is still evaluated (and counted) for every
// active in-edge when early_exit is false.
TEST(Differential, PullActivatesSharedNeighborOnce) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  coo.push_back(0, 2, 1.f);
  coo.push_back(1, 2, 1.f);
  coo.push_back(0, 3, 1.f);
  auto const graph = g::from_coo<g::graph_push_pull>(std::move(coo));

  auto const in =
      fr::to_dense(fr::sparse_frontier<vertex_t>(std::vector<vertex_t>{0, 1}), 4);

  std::atomic<std::size_t> evaluated{0};
  auto const counting = [&evaluated](vertex_t, vertex_t, edge_t, weight_t) {
    evaluated.fetch_add(1, std::memory_order_relaxed);
    return true;
  };

  tel::trace t;
  {
    tel::scoped_recording rec(t, "pull.shared");
    auto const out = op::advance_pull<false>(ex::seq, graph, in, counting);
    EXPECT_EQ(out.to_vector(), (std::vector<vertex_t>{2, 3}));
    EXPECT_EQ(out.size(), 2u);
  }
  // Both in-edges of 2 and the single in-edge of 3 were evaluated — no
  // early-out just because the vertex was already activated.
  EXPECT_EQ(evaluated.load(), 3u);
  if (tel::compiled_in) {
    EXPECT_EQ(t.total_edges_inspected(), 3u);
    EXPECT_EQ(t.total_edges_relaxed(), 3u);
  }
}

// early_exit=true is the BFS-shaped "any parent" query: scanning stops at
// the first relaxing in-edge, so at most one relaxation per output vertex
// is recorded.
TEST(Differential, PullEarlyExitStopsAtFirstHit) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  coo.push_back(0, 2, 1.f);
  coo.push_back(1, 2, 1.f);
  coo.push_back(0, 3, 1.f);
  auto const graph = g::from_coo<g::graph_push_pull>(std::move(coo));

  auto const in =
      fr::to_dense(fr::sparse_frontier<vertex_t>(std::vector<vertex_t>{0, 1}), 4);

  tel::trace t;
  {
    tel::scoped_recording rec(t, "pull.early_exit");
    auto const out = op::advance_pull<true>(ex::seq, graph, in, always);
    EXPECT_EQ(out.to_vector(), (std::vector<vertex_t>{2, 3}));
  }
  if (tel::compiled_in) {
    EXPECT_EQ(t.total_edges_relaxed(), 2u);      // one hit per output vertex
    EXPECT_LE(t.total_edges_inspected(), 3u);    // 2's scan stopped early
    EXPECT_GE(t.total_edges_inspected(), 2u);
  }
}

// The Listing 3 baseline must preserve duplicates exactly like the
// sequential reference: its per-element serialization now routes through
// sparse_frontier::add_vertex (the public API), not a raw push_back into
// the active vector.
TEST(Differential, Listing3PreservesDuplicateMultiset) {
  auto const graph = star_graph();
  std::vector<vertex_t> spokes;
  for (vertex_t v = 1; v < 64; ++v)
    spokes.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(spokes));

  auto const s = op::advance_push(ex::seq, graph, in, always);
  auto const l3 = op::neighbors_expand_listing3(ex::par, graph, in, always);
  EXPECT_EQ(sorted(l3.to_vector()), sorted(s.to_vector()));
  EXPECT_EQ(l3.size(), 63u);  // every spoke contributes the hub once
}

// Dense push output deduplicates by construction; its telemetry still
// reports every relaxation.
TEST(Differential, DensePushCountsAllRelaxationsDespiteDedup) {
  auto const graph = star_graph();
  std::vector<vertex_t> spokes;
  for (vertex_t v = 1; v < 64; ++v)
    spokes.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(spokes));

  tel::trace t;
  {
    tel::scoped_recording rec(t, "to_dense.star");
    auto const out = op::advance_push_to_dense(ex::par, graph, in, always);
    EXPECT_EQ(out.to_vector(), (std::vector<vertex_t>{0}));  // just the hub
  }
  if (tel::compiled_in) {
    EXPECT_EQ(t.total_edges_relaxed(), 63u);
    EXPECT_EQ(t.total_edges_inspected(), 63u);
  }
}

// --- frontier-generation strategies across the rest of the wired matrix ----

// The edge-balanced advance honors the same generation axis as the plain
// push: all three strategies (and dedup) agree with the sequential
// reference on a skewed frontier.
TEST(Differential, EdgeBalancedHonorsGenerationStrategies) {
  auto const graph = random_graph(17);
  std::vector<vertex_t> seeds;
  for (vertex_t v = 0; v < 200; v += 2)
    seeds.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));

  auto const ref =
      sorted(op::advance_push(ex::seq, graph, in, pure_mod).to_vector());
  auto const ref_set = deduped(ref);

  for (auto mode : {ex::frontier_gen::scan, ex::frontier_gen::bulk,
                    ex::frontier_gen::listing3}) {
    auto const out = op::advance_push_edge_balanced(
        ex::par.with_frontier(mode), graph, in, pure_mod);
    EXPECT_EQ(sorted(out.to_vector()), ref);
    auto const dd = op::advance_push_edge_balanced(
        ex::par.with_frontier(mode).with_dedup(), graph, in, pure_mod);
    EXPECT_EQ(dd.size(), ref_set.size());
    EXPECT_EQ(deduped(dd.to_vector()), ref_set);
  }
}

// The edge-centric pipeline (expand_to_edges -> advance_edges) matches the
// vertex-centric push under every generation strategy.
TEST(Differential, EdgeCentricPipelineHonorsGenerationStrategies) {
  auto const graph = random_graph(23);
  std::vector<vertex_t> seeds;
  for (vertex_t v = 0; v < 200; v += 5)
    seeds.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));

  auto const ref =
      sorted(op::advance_push(ex::seq, graph, in, pure_mod).to_vector());

  for (auto mode : {ex::frontier_gen::scan, ex::frontier_gen::bulk,
                    ex::frontier_gen::listing3}) {
    auto const policy = ex::par.with_frontier(mode);
    auto const edges = op::expand_to_edges(policy, graph, in);
    auto const out = op::advance_edges(policy, graph, edges, pure_mod);
    EXPECT_EQ(sorted(out.to_vector()), ref);
  }
}

// filter produces the same set under every strategy; the scan path is
// additionally deterministic and preserves input order.
TEST(Differential, FilterStrategiesAgree) {
  std::vector<vertex_t> ids;
  for (vertex_t v = 0; v < 10000; ++v)
    ids.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(ids));
  auto const pred = [](vertex_t v) { return v % 3 == 0; };

  auto const ref = op::filter(ex::seq, in, pred).to_vector();  // input order
  auto const scan_out = op::filter(ex::par, in, pred);
  EXPECT_EQ(scan_out.to_vector(), ref);  // deterministic AND order-preserving
  for (auto mode : {ex::frontier_gen::bulk, ex::frontier_gen::listing3}) {
    auto const out = op::filter(ex::par.with_frontier(mode), in, pred);
    EXPECT_EQ(sorted(out.to_vector()), ref);  // ref is already sorted
  }
}

// uniquify's claim bitmap rides the generation path's dedup hook: all
// strategies agree with the sequential sort+unique on the surviving set.
TEST(Differential, UniquifyStrategiesProduceTheSameSet) {
  std::vector<vertex_t> dups;
  for (vertex_t v = 0; v < 512; ++v) {
    dups.push_back(v % 97);
    dups.push_back(v % 31);
  }
  auto const ref = deduped(dups);

  fr::sparse_frontier<vertex_t> f_seq{dups};
  op::uniquify(ex::seq, f_seq);
  EXPECT_EQ(f_seq.to_vector(), ref);

  for (auto mode : {ex::frontier_gen::scan, ex::frontier_gen::bulk,
                    ex::frontier_gen::listing3}) {
    fr::sparse_frontier<vertex_t> f{dups};
    tel::trace t;
    {
      tel::scoped_recording rec(t, "uniquify");
      op::uniquify(ex::par.with_frontier(mode), f, /*universe=*/97);
    }
    EXPECT_EQ(deduped(f.to_vector()), ref);
    EXPECT_EQ(f.size(), ref.size());
    if (tel::compiled_in) {
      EXPECT_EQ(t.total_dedup_hits(), dups.size() - ref.size());
      if (mode == ex::frontier_gen::scan) {
        EXPECT_EQ(t.total_emits_scan(), ref.size());
        EXPECT_EQ(t.total_emits_lock(), 0u);
      } else {
        EXPECT_EQ(t.total_emits_lock(), ref.size());
        EXPECT_EQ(t.total_emits_scan(), 0u);
      }
    }
  }
}

// --- cross-substrate matrix: stealing pool vs central-queue fallback -------

// The ESSENTIALS_CENTRAL_QUEUE knob exists exactly for this: pin one pool
// to each substrate and assert the full operator x generation-strategy
// matrix computes the same function.  The scan path must be *bit-identical*
// (its output order is a function of the deterministic chunking contract,
// which both substrates share); the locked paths (bulk/listing3) promise
// multiset equality.
TEST(Differential, AdvanceMatrixAgreesAcrossQueueSubstrates) {
  essentials::parallel::thread_pool stealing(
      8, essentials::parallel::queue_mode::stealing);
  essentials::parallel::thread_pool central(
      8, essentials::parallel::queue_mode::central);
  ex::parallel_policy const on_stealing(stealing);
  ex::parallel_policy const on_central(central);

  for (std::uint64_t seed : {3u, 11u}) {
    auto const graph = random_graph(seed);
    std::vector<vertex_t> seeds;
    for (vertex_t v = 0; v < 200; v += 2)
      seeds.push_back(v);
    fr::sparse_frontier<vertex_t> const in(std::move(seeds));

    for (auto mode : {ex::frontier_gen::scan, ex::frontier_gen::bulk,
                      ex::frontier_gen::listing3}) {
      auto const a = op::advance_push(on_stealing.with_frontier(mode), graph,
                                      in, pure_mod);
      auto const b = op::advance_push(on_central.with_frontier(mode), graph,
                                      in, pure_mod);
      if (mode == ex::frontier_gen::scan)
        EXPECT_EQ(a.to_vector(), b.to_vector()) << "scan must be bit-identical";
      else
        EXPECT_EQ(sorted(a.to_vector()), sorted(b.to_vector()));
    }
  }
}

TEST(Differential, FilterMatrixAgreesAcrossQueueSubstrates) {
  essentials::parallel::thread_pool stealing(
      8, essentials::parallel::queue_mode::stealing);
  essentials::parallel::thread_pool central(
      8, essentials::parallel::queue_mode::central);
  ex::parallel_policy const on_stealing(stealing);
  ex::parallel_policy const on_central(central);

  std::vector<vertex_t> ids;
  for (vertex_t v = 0; v < 10'000; ++v)
    ids.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(ids));
  auto const pred = [](vertex_t v) { return v % 7 != 2; };

  for (auto mode : {ex::frontier_gen::scan, ex::frontier_gen::bulk,
                    ex::frontier_gen::listing3}) {
    auto const a = op::filter(on_stealing.with_frontier(mode), in, pred);
    auto const b = op::filter(on_central.with_frontier(mode), in, pred);
    if (mode == ex::frontier_gen::scan)
      EXPECT_EQ(a.to_vector(), b.to_vector());  // deterministic input order
    else
      EXPECT_EQ(sorted(a.to_vector()), sorted(b.to_vector()));
  }
}

TEST(Differential, NeighborReduceMatrixAgreesAcrossQueueSubstrates) {
  essentials::parallel::thread_pool stealing(
      8, essentials::parallel::queue_mode::stealing);
  essentials::parallel::thread_pool central(
      8, essentials::parallel::queue_mode::central);
  ex::parallel_policy const on_stealing(stealing);
  ex::parallel_policy const on_central(central);

  auto const graph = random_graph(31);
  std::size_t const n = static_cast<std::size_t>(graph.get_num_vertices());
  std::vector<vertex_t> seeds;
  for (vertex_t v = 0; v < 200; v += 3)
    seeds.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));

  auto const map_w = [](vertex_t, vertex_t d, edge_t, weight_t w) {
    return static_cast<double>(w) + static_cast<double>(d);
  };
  auto const combine = [](double a, double b) { return a + b; };
  auto const activate = [](vertex_t, double acc) { return acc > 8.0; };

  for (auto mode : {ex::frontier_gen::scan, ex::frontier_gen::bulk,
                    ex::frontier_gen::listing3}) {
    std::vector<double> out_a(n, -1.0), out_b(n, -1.0);
    auto const fa = op::neighbor_reduce_activate(
        on_stealing.with_frontier(mode), graph, in, 0.0, map_w, combine,
        activate, out_a.data());
    auto const fb = op::neighbor_reduce_activate(
        on_central.with_frontier(mode), graph, in, 0.0, map_w, combine,
        activate, out_b.data());
    // out[v] is written once per active v regardless of scheduling: exact
    // equality holds for every strategy on both substrates.
    EXPECT_EQ(out_a, out_b);
    if (mode == ex::frontier_gen::scan)
      EXPECT_EQ(fa.to_vector(), fb.to_vector());
    else
      EXPECT_EQ(sorted(fa.to_vector()), sorted(fb.to_vector()));
  }
}

// Dense->dense push agrees with the sparse->dense path on the same input
// set.
TEST(Differential, DenseToDenseMatchesSparseToDense) {
  auto const graph = random_graph(5);
  std::vector<vertex_t> seeds;
  for (vertex_t v = 0; v < 200; v += 7)
    seeds.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));
  auto const din = fr::to_dense(in, 200);

  auto const a = op::advance_push_to_dense(ex::par, graph, in, pure_mod);
  auto const b = op::advance_push(ex::par, graph, din, pure_mod);
  EXPECT_EQ(a.to_vector(), b.to_vector());

  auto const a_seq = op::advance_push_to_dense(ex::seq, graph, in, pure_mod);
  auto const b_seq = op::advance_push(ex::seq, graph, din, pure_mod);
  EXPECT_EQ(a_seq.to_vector(), a.to_vector());
  EXPECT_EQ(b_seq.to_vector(), b.to_vector());
}

// --- load-balance strategy matrix (execution::load_balance) ----------------

// Every work-decomposition strategy — thread_mapped, edge_balanced,
// degree_class, and auto_select resolving among them — computes the same
// function as the sequential reference, across frontier-generation
// strategies and dedup, on skewed (star, celebrity hub, rmat) and uniform
// (Erdos-Renyi) graphs.  Only the decomposition changes; the multiset of
// discovered neighbors must not.

namespace {

std::vector<ex::load_balance> const all_strategies{
    ex::load_balance::thread_mapped, ex::load_balance::edge_balanced,
    ex::load_balance::degree_class, ex::load_balance::auto_select};

g::graph_push_pull skewed_rmat_graph(std::uint64_t seed = 5) {
  gen::rmat_options opt;
  opt.scale = 9;
  opt.edge_factor = 8;
  opt.seed = seed;
  auto coo = gen::rmat(opt);
  g::remove_self_loops(coo);
  return g::from_coo<g::graph_push_pull>(std::move(coo),
                                         g::duplicate_policy::keep_min);
}

/// A hub crossing the degree-class *huge* cutoff (4096): star(5000)'s
/// center has out-degree 4999, so degree_class takes the cooperative
/// expansion path, not just the medium bucket.
g::graph_push_pull celebrity_graph() {
  return g::from_coo<g::graph_push_pull>(gen::star(5000));
}

template <typename Cond>
void expect_strategies_agree(g::graph_push_pull const& graph,
                             std::vector<vertex_t> seeds, Cond cond) {
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));
  auto const ref =
      sorted(op::advance_push(ex::seq, graph, in, cond).to_vector());
  auto const ref_set = deduped(ref);

  for (auto const lb : all_strategies) {
    for (auto const mode : {ex::frontier_gen::scan, ex::frontier_gen::bulk,
                            ex::frontier_gen::listing3}) {
      auto const policy = ex::par.with_load_balance(lb).with_frontier(mode);
      auto const out = op::advance_balanced(policy, graph, in, cond);
      EXPECT_EQ(sorted(out.to_vector()), ref)
          << "strategy=" << ex::to_string(lb) << " mode=" << static_cast<int>(mode);
      auto const dd = op::advance_balanced(policy.with_dedup(), graph, in, cond);
      EXPECT_EQ(dd.size(), ref_set.size())
          << "strategy=" << ex::to_string(lb);
      EXPECT_EQ(deduped(dd.to_vector()), ref_set);
    }
    // Sequential policies take the reference path regardless of strategy
    // (the balance axis lives on parallel_policy only).
    auto const s = op::advance_balanced(ex::seq, graph, in, cond);
    EXPECT_EQ(sorted(s.to_vector()), ref);
  }
}

}  // namespace

TEST(LoadBalanceDifferential, StarHubAndSpokes) {
  auto const graph = star_graph();
  expect_strategies_agree(graph, {0}, always);  // hub fan-out (medium class)
  std::vector<vertex_t> spokes;
  for (vertex_t v = 1; v < 64; ++v)
    spokes.push_back(v);
  expect_strategies_agree(graph, spokes, pure_mod);  // max duplication
}

TEST(LoadBalanceDifferential, CelebrityHubCrossesHugeCutoff) {
  auto const graph = celebrity_graph();
  expect_strategies_agree(graph, {0}, always);  // 4999-way cooperative expand
  expect_strategies_agree(graph, {0}, pure_mod);
}

TEST(LoadBalanceDifferential, SkewedRmatFrontiers) {
  auto const graph = skewed_rmat_graph();
  std::vector<vertex_t> seeds;
  for (vertex_t v = 0; v < 512; v += 3)
    seeds.push_back(v);
  expect_strategies_agree(graph, seeds, pure_mod);
  // Full frontier: every degree class is populated at once.
  std::vector<vertex_t> all(512);
  for (std::size_t i = 0; i < all.size(); ++i)
    all[i] = static_cast<vertex_t>(i);
  expect_strategies_agree(graph, all, always);
}

TEST(LoadBalanceDifferential, UniformRandomFrontiers) {
  auto const graph = random_graph(13);
  std::vector<vertex_t> seeds;
  for (vertex_t v = 0; v < 200; v += 2)
    seeds.push_back(v);
  expect_strategies_agree(graph, seeds, always);
  expect_strategies_agree(graph, seeds, pure_mod);
}

// Under frontier_gen::scan (no dedup) each strategy's output order is a
// deterministic function of the chunking contract, which both queue
// substrates share: stealing vs central must be *bit-identical*, and two
// runs on one pool must reproduce the same vector.
TEST(LoadBalanceDifferential, BitIdenticalAcrossSubstratesPerStrategy) {
  essentials::parallel::thread_pool stealing(
      8, essentials::parallel::queue_mode::stealing);
  essentials::parallel::thread_pool central(
      8, essentials::parallel::queue_mode::central);
  ex::parallel_policy const on_stealing(stealing);
  ex::parallel_policy const on_central(central);

  for (auto const& graph : {skewed_rmat_graph(7), celebrity_graph()}) {
    std::size_t const n = static_cast<std::size_t>(graph.get_num_vertices());
    std::vector<vertex_t> seeds;
    for (std::size_t v = 0; v < n; v += 2)
      seeds.push_back(static_cast<vertex_t>(v));
    fr::sparse_frontier<vertex_t> const in(std::move(seeds));

    for (auto const lb : all_strategies) {
      auto const a = op::advance_balanced(on_stealing.with_load_balance(lb),
                                          graph, in, pure_mod);
      auto const b = op::advance_balanced(on_central.with_load_balance(lb),
                                          graph, in, pure_mod);
      EXPECT_EQ(a.to_vector(), b.to_vector())
          << "strategy=" << ex::to_string(lb) << " must be bit-identical";
      auto const a2 = op::advance_balanced(on_stealing.with_load_balance(lb),
                                           graph, in, pure_mod);
      EXPECT_EQ(a.to_vector(), a2.to_vector()) << "two-run determinism";
    }
  }
}

// auto_select records its per-superstep decision in telemetry (schema v7):
// the advance_balanced op record carries the resolved strategy name and
// lb_auto == true; fixed strategies record lb_auto == false.
TEST(LoadBalanceDifferential, AutoDecisionLandsInTelemetry) {
  auto const graph = skewed_rmat_graph(3);
  std::vector<vertex_t> seeds(256);
  for (std::size_t i = 0; i < seeds.size(); ++i)
    seeds[i] = static_cast<vertex_t>(i * 2);
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));

  tel::trace t_auto, t_fixed;
  {
    tel::scoped_recording rec(t_auto, "auto");
    op::advance_balanced(ex::par.with_load_balance(ex::load_balance::auto_select),
                         graph, in, always);
  }
  {
    tel::scoped_recording rec(t_fixed, "fixed");
    op::advance_balanced(
        ex::par.with_load_balance(ex::load_balance::edge_balanced), graph, in,
        always);
  }
  if (tel::compiled_in) {
    bool saw_auto = false, saw_fixed = false;
    for (auto const& s : t_auto.supersteps)
      for (auto const& o : s.ops)
        if (o.name == "advance_balanced" && !o.load_balance.empty()) {
          saw_auto = true;
          EXPECT_TRUE(o.lb_auto);
          EXPECT_NE(o.load_balance, "auto_select");  // resolved, not echoed
        }
    for (auto const& s : t_fixed.supersteps)
      for (auto const& o : s.ops)
        if (o.name == "advance_balanced" && !o.load_balance.empty()) {
          saw_fixed = true;
          EXPECT_FALSE(o.lb_auto);
          EXPECT_EQ(o.load_balance, "edge_balanced");
        }
    EXPECT_TRUE(saw_auto);
    EXPECT_TRUE(saw_fixed);
  }
}

// The strategy matrix holds on compressed (block-coded) adjacency too:
// same multiset as flat CSR, bit-identical between flat and compressed
// under scan (both decode edges in CSR order).
TEST(LoadBalanceDifferential, CompressedGraphStrategiesAgree) {
  gen::rmat_options opt;
  opt.scale = 9;
  opt.edge_factor = 8;
  opt.seed = 29;
  auto coo = gen::rmat(opt);
  g::remove_self_loops(coo);
  g::sort_and_deduplicate(coo, g::duplicate_policy::keep_min);
  auto const csr = g::build_csr(coo);
  g::graph_csr flat;
  flat.set_csr(csr);
  g::compressed_graph<> cg(csr);

  std::vector<vertex_t> seeds;
  for (vertex_t v = 0; v < 512; v += 2)
    seeds.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));

  auto const ref =
      sorted(op::advance_push(ex::seq, flat, in, pure_mod).to_vector());
  for (auto const lb : all_strategies) {
    auto const a = op::advance_balanced(ex::par.with_load_balance(lb), flat,
                                        in, pure_mod);
    auto const b = op::advance_balanced(ex::par.with_load_balance(lb), cg, in,
                                        pure_mod);
    EXPECT_EQ(sorted(a.to_vector()), ref) << ex::to_string(lb);
    EXPECT_EQ(a.to_vector(), b.to_vector())
        << "flat vs compressed, strategy=" << ex::to_string(lb);
  }
}

// neighbor_reduce_activate under degree_class folds hub neighborhoods
// cooperatively; with an integer-valued map/combine the folded values and
// the surviving frontier must match the thread-mapped path exactly.
TEST(LoadBalanceDifferential, NeighborReduceDegreeClassMatchesThreadMapped) {
  auto const graph = celebrity_graph();
  std::size_t const n = static_cast<std::size_t>(graph.get_num_vertices());
  std::vector<vertex_t> seeds{0};  // the hub
  for (vertex_t v = 1; v < 100; v += 2)
    seeds.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));

  auto const map_i = [](vertex_t, vertex_t d, edge_t, weight_t) {
    return static_cast<double>(d % 17);  // integer-valued: exact under any
  };                                     // association
  auto const combine = [](double a, double b) { return a + b; };
  auto const activate = [](vertex_t, double acc) { return acc > 4.0; };

  std::vector<double> out_tm(n, -1.0), out_dc(n, -1.0), out_auto(n, -1.0);
  auto const f_tm = op::neighbor_reduce_activate(
      ex::par, graph, in, 0.0, map_i, combine, activate, out_tm.data());
  auto const f_dc = op::neighbor_reduce_activate(
      ex::par.with_load_balance(ex::load_balance::degree_class), graph, in,
      0.0, map_i, combine, activate, out_dc.data());
  auto const f_auto = op::neighbor_reduce_activate(
      ex::par.with_load_balance(ex::load_balance::auto_select), graph, in,
      0.0, map_i, combine, activate, out_auto.data());

  EXPECT_EQ(out_tm, out_dc);
  EXPECT_EQ(out_tm, out_auto);
  EXPECT_EQ(sorted(f_tm.to_vector()), sorted(f_dc.to_vector()));
  EXPECT_EQ(sorted(f_tm.to_vector()), sorted(f_auto.to_vector()));

  // Determinism of the cooperative path itself.
  std::vector<double> out_dc2(n, -1.0);
  auto const f_dc2 = op::neighbor_reduce_activate(
      ex::par.with_load_balance(ex::load_balance::degree_class), graph, in,
      0.0, map_i, combine, activate, out_dc2.data());
  EXPECT_EQ(out_dc, out_dc2);
  EXPECT_EQ(f_dc.to_vector(), f_dc2.to_vector());
}
