// Tests for the synthetic graph generators: structural invariants,
// determinism, and the degree-distribution regimes DESIGN.md promises.
#include <gtest/gtest.h>

#include "generators/generators.hpp"
#include "generators/random.hpp"
#include "graph/build.hpp"
#include "graph/properties.hpp"

namespace gen = essentials::generators;
namespace g = essentials::graph;
using essentials::vertex_t;

// --- rng ----------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  gen::rng_t a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  gen::rng_t a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  gen::rng_t rng(7);
  for (int i = 0; i < 10'000; ++i)
    EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  gen::rng_t rng(9);
  for (int i = 0; i < 10'000; ++i) {
    double const d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  gen::rng_t rng(3);
  std::vector<int> buckets(10, 0);
  int const draws = 100'000;
  for (int i = 0; i < draws; ++i)
    ++buckets[rng.next_below(10)];
  for (int const b : buckets) {
    EXPECT_GT(b, draws / 10 - draws / 50);
    EXPECT_LT(b, draws / 10 + draws / 50);
  }
}

// --- generators ------------------------------------------------------------------

TEST(Generators, RmatShapeAndDeterminism) {
  gen::rmat_options opt;
  opt.scale = 8;
  opt.edge_factor = 8;
  opt.seed = 5;
  auto const a = gen::rmat(opt);
  auto const b = gen::rmat(opt);
  EXPECT_EQ(a.num_rows, 256);
  EXPECT_EQ(a.num_edges(), 8 * 256);
  EXPECT_EQ(a.row_indices, b.row_indices);
  EXPECT_EQ(a.column_indices, b.column_indices);
  for (std::size_t i = 0; i < a.row_indices.size(); ++i) {
    EXPECT_GE(a.row_indices[i], 0);
    EXPECT_LT(a.row_indices[i], 256);
    EXPECT_GE(a.column_indices[i], 0);
    EXPECT_LT(a.column_indices[i], 256);
  }
}

TEST(Generators, RmatIsSkewed) {
  // Power-law-ish degree distribution: max degree far above the mean.
  gen::rmat_options opt;
  opt.scale = 10;
  opt.edge_factor = 16;
  auto coo = gen::rmat(opt);
  auto const csr = g::build_csr(coo);
  auto const s = g::out_degree_stats(csr);
  EXPECT_GT(static_cast<double>(s.max_degree), 5.0 * s.mean_degree);
}

TEST(Generators, RmatRejectsBadParameters) {
  gen::rmat_options opt;
  opt.scale = 0;
  EXPECT_THROW(gen::rmat(opt), essentials::graph_error);
  opt.scale = 4;
  opt.a = 0.9;
  opt.b = 0.2;  // a+b+c > 1
  EXPECT_THROW(gen::rmat(opt), essentials::graph_error);
}

TEST(Generators, ErdosRenyiIsNotSkewed) {
  auto coo = gen::erdos_renyi(1024, 1024 * 16, {}, 3);
  EXPECT_EQ(coo.num_edges(), 1024 * 16);
  auto const csr = g::build_csr(coo);
  auto const s = g::out_degree_stats(csr);
  // Uniform graphs: max degree within a small multiple of the mean.
  EXPECT_LT(static_cast<double>(s.max_degree), 4.0 * s.mean_degree);
}

TEST(Generators, WattsStrogatzSymmetricAndDegreeBound) {
  auto coo = gen::watts_strogatz(200, 3, 0.1, {}, 11);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  EXPECT_TRUE(g::is_symmetric(csr));
}

TEST(Generators, Grid2dStructure) {
  auto coo = gen::grid_2d(4, 5);
  EXPECT_EQ(coo.num_rows, 20);
  // 2 * (rows*(cols-1) + (rows-1)*cols) directed edges
  EXPECT_EQ(static_cast<int>(coo.num_edges()), 2 * (4 * 4 + 3 * 5));
  auto const csr = g::build_csr(coo);
  EXPECT_TRUE(g::is_symmetric(csr));
  auto const s = g::out_degree_stats(csr);
  EXPECT_EQ(s.min_degree, 2u);  // corners
  EXPECT_EQ(s.max_degree, 4u);  // interior
}

TEST(Generators, ChainStructure) {
  auto coo = gen::chain(10);
  EXPECT_EQ(coo.num_edges(), 9);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(coo.row_indices[i], static_cast<vertex_t>(i));
    EXPECT_EQ(coo.column_indices[i], static_cast<vertex_t>(i + 1));
  }
}

TEST(Generators, StarStructure) {
  auto coo = gen::star(6);
  auto const csr = g::build_csr(coo);
  auto const s = g::out_degree_stats(csr);
  EXPECT_EQ(s.max_degree, 5u);  // hub
  EXPECT_EQ(s.min_degree, 1u);  // spokes
  EXPECT_TRUE(g::is_symmetric(csr));
}

TEST(Generators, CompleteStructure) {
  auto coo = gen::complete(5);
  EXPECT_EQ(static_cast<int>(coo.num_edges()), 5 * 4);
  auto const csr = g::build_csr(coo);
  EXPECT_TRUE(g::has_no_self_loops(csr));
  auto const s = g::out_degree_stats(csr);
  EXPECT_EQ(s.min_degree, 4u);
  EXPECT_EQ(s.max_degree, 4u);
}

TEST(Generators, WeightRangesRespected) {
  gen::weight_options w{2.0f, 7.0f};
  auto coo = gen::erdos_renyi(64, 1000, w, 13);
  for (float const v : coo.values) {
    EXPECT_GE(v, 2.0f);
    EXPECT_LT(v, 7.0f);
  }
  gen::weight_options unit{1.0f, 1.0f};
  auto coo2 = gen::chain(16, unit);
  for (float const v : coo2.values)
    EXPECT_FLOAT_EQ(v, 1.0f);
}

// Property sweep: every generator family produces a structurally valid CSR
// after canonical cleanup, across several seeds.
class GeneratorValidity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorValidity, AllFamiliesBuildValidCsr) {
  auto const seed = GetParam();
  std::vector<g::coo_t<>> coos;
  gen::rmat_options ro;
  ro.scale = 7;
  ro.edge_factor = 4;
  ro.seed = seed;
  coos.push_back(gen::rmat(ro));
  coos.push_back(gen::erdos_renyi(128, 1000, {}, seed));
  coos.push_back(gen::watts_strogatz(100, 2, 0.2, {}, seed));
  coos.push_back(gen::grid_2d(8, 9, {}, seed));
  coos.push_back(gen::chain(50, {}, seed));
  coos.push_back(gen::star(30, {}, seed));
  coos.push_back(gen::complete(12, {}, seed));
  for (auto& coo : coos) {
    g::sort_and_deduplicate(coo);
    g::remove_self_loops(coo);
    auto const csr = g::build_csr(coo);
    EXPECT_TRUE(g::is_valid_csr(csr));
    EXPECT_TRUE(g::has_no_duplicate_edges(csr));
    EXPECT_TRUE(g::has_no_self_loops(csr));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorValidity,
                         ::testing::Values(1, 2, 3, 17, 99));
