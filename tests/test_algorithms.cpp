// Tests for the wider algorithm suite: PageRank, HITS, connected
// components, triangle counting, k-core, coloring, betweenness, SpMV —
// each parallel variant against its serial oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "algorithms/betweenness.hpp"
#include "algorithms/coloring.hpp"
#include "algorithms/connected_components.hpp"
#include "algorithms/hits.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/spmv.hpp"
#include "algorithms/triangle_counting.hpp"
#include "core/execution.hpp"
#include "generators/generators.hpp"
#include "graph/graph.hpp"

namespace alg = essentials::algorithms;
namespace ex = essentials::execution;
namespace g = essentials::graph;
namespace gen = essentials::generators;
using essentials::vertex_t;

namespace {

/// Symmetrized, deduplicated, loop-free graph — what the undirected
/// algorithms require.
g::graph_full undirected(g::coo_t<> coo) {
  g::remove_self_loops(coo);
  g::symmetrize(coo);
  return g::from_coo<g::graph_full>(std::move(coo));
}

g::graph_full directed(g::coo_t<> coo) {
  g::remove_self_loops(coo);
  return g::from_coo<g::graph_full>(std::move(coo));
}

}  // namespace

// --- PageRank --------------------------------------------------------------

TEST(PageRank, RanksSumToOne) {
  auto const graph = directed(gen::erdos_renyi(300, 2400, {}, 3));
  auto const r = alg::pagerank(ex::par, graph);
  double const sum =
      std::accumulate(r.ranks.begin(), r.ranks.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRank, ParMatchesSerial) {
  auto const graph = directed(gen::erdos_renyi(200, 1500, {}, 7));
  auto const serial = alg::pagerank_serial(graph);
  auto const par = alg::pagerank(ex::par, graph);
  ASSERT_EQ(serial.ranks.size(), par.ranks.size());
  for (std::size_t v = 0; v < par.ranks.size(); ++v)
    EXPECT_NEAR(par.ranks[v], serial.ranks[v], 1e-9) << v;
}

TEST(PageRank, PushMatchesPull) {
  gen::rmat_options opt;
  opt.scale = 7;
  opt.edge_factor = 6;
  auto const graph = directed(gen::rmat(opt));
  auto const pull = alg::pagerank(ex::par, graph);
  auto const push = alg::pagerank_push(ex::par, graph);
  for (std::size_t v = 0; v < pull.ranks.size(); ++v)
    EXPECT_NEAR(push.ranks[v], pull.ranks[v], 1e-7) << v;
}

TEST(PageRank, StarHubDominates) {
  auto const graph = undirected(gen::star(50));
  auto const r = alg::pagerank(ex::par, graph);
  for (std::size_t v = 1; v < r.ranks.size(); ++v)
    EXPECT_GT(r.ranks[0], r.ranks[v]);
}

TEST(PageRank, DanglingMassConserved) {
  // A graph where every edge points at vertex 0, which has no out-edges.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 5;
  for (vertex_t v = 1; v < 5; ++v)
    coo.push_back(v, 0, 1.f);
  auto const graph = g::from_coo<g::graph_full>(std::move(coo));
  auto const r = alg::pagerank(ex::par, graph);
  double const sum = std::accumulate(r.ranks.begin(), r.ranks.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(r.ranks[0], r.ranks[1]);
}

TEST(PageRank, ConvergesWithinIterationCap) {
  auto const graph = directed(gen::erdos_renyi(100, 600, {}, 2));
  alg::pagerank_options opt;
  opt.tolerance = 1e-8;
  auto const r = alg::pagerank(ex::par, graph, opt);
  EXPECT_LT(r.iterations, opt.max_iterations);
  EXPECT_LT(r.final_delta, opt.tolerance);
}

// --- HITS --------------------------------------------------------------------

TEST(Hits, HubAndAuthoritySeparation) {
  // Bipartite-ish: 0,1 point at 8,9 — hubs {0,1}, authorities {8,9}.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 10;
  for (vertex_t h : {0, 1})
    for (vertex_t a : {8, 9})
      coo.push_back(h, a, 1.f);
  auto const graph = g::from_coo<g::graph_full>(std::move(coo));
  auto const r = alg::hits(ex::par, graph);
  EXPECT_GT(r.hubs[0], r.hubs[8]);
  EXPECT_GT(r.authorities[8], r.authorities[0]);
}

TEST(Hits, SeqMatchesPar) {
  auto const graph = directed(gen::erdos_renyi(150, 900, {}, 11));
  auto const s = alg::hits(ex::seq, graph);
  auto const p = alg::hits(ex::par, graph);
  for (std::size_t v = 0; v < s.hubs.size(); ++v) {
    EXPECT_NEAR(s.hubs[v], p.hubs[v], 1e-9);
    EXPECT_NEAR(s.authorities[v], p.authorities[v], 1e-9);
  }
}

// --- connected components -------------------------------------------------------

TEST(ConnectedComponents, LabelPropagationMatchesUnionFind) {
  auto const graph = undirected(gen::erdos_renyi(300, 500, {}, 5));
  auto const oracle = alg::connected_components_serial(graph);
  auto const lp = alg::connected_components(ex::par, graph);
  EXPECT_EQ(lp.num_components, oracle.num_components);
  // Same partition: labels agree up to renaming — min-label propagation and
  // min-union-find both canonicalize to the component minimum.
  EXPECT_EQ(lp.labels, oracle.labels);
}

TEST(ConnectedComponents, HookMatchesUnionFind) {
  auto const graph = undirected(gen::erdos_renyi(300, 500, {}, 6));
  auto const oracle = alg::connected_components_serial(graph);
  auto const hook = alg::connected_components_hook(ex::par, graph);
  EXPECT_EQ(hook.num_components, oracle.num_components);
  // Hook labels are roots, not necessarily minima; compare partitions.
  for (vertex_t u = 0; u < graph.get_num_vertices(); ++u) {
    for (vertex_t v = u + 1; v < graph.get_num_vertices(); ++v) {
      EXPECT_EQ(oracle.labels[u] == oracle.labels[v],
                hook.labels[u] == hook.labels[v])
          << u << "," << v;
    }
  }
}

TEST(ConnectedComponents, CountsIslandsAndClusters) {
  // Three known components: a triangle, an edge, an isolated vertex.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 6;
  coo.push_back(0, 1, 1.f);
  coo.push_back(1, 2, 1.f);
  coo.push_back(2, 0, 1.f);
  coo.push_back(3, 4, 1.f);
  auto const graph = undirected(std::move(coo));
  auto const r = alg::connected_components(ex::par, graph);
  EXPECT_EQ(r.num_components, 3u);
  EXPECT_EQ(r.labels[0], r.labels[2]);
  EXPECT_EQ(r.labels[3], r.labels[4]);
  EXPECT_NE(r.labels[0], r.labels[3]);
  EXPECT_EQ(r.labels[5], 5);
}

// --- triangle counting ------------------------------------------------------------

TEST(TriangleCounting, KnownCounts) {
  // A 4-clique has C(4,3) = 4 triangles.
  auto const clique = undirected(gen::complete(4));
  EXPECT_EQ(alg::triangle_count(ex::par, clique), 4u);
  // A 4-cycle has none.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  coo.push_back(0, 1, 1.f);
  coo.push_back(1, 2, 1.f);
  coo.push_back(2, 3, 1.f);
  coo.push_back(3, 0, 1.f);
  auto const cycle = undirected(std::move(coo));
  EXPECT_EQ(alg::triangle_count(ex::par, cycle), 0u);
}

TEST(TriangleCounting, ParMatchesSerialOracle) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto const graph = undirected(gen::erdos_renyi(120, 1200, {}, seed));
    EXPECT_EQ(alg::triangle_count(ex::par, graph),
              alg::triangle_count_serial(graph))
        << "seed " << seed;
  }
}

TEST(TriangleCounting, CompleteGraphFormula) {
  auto const graph = undirected(gen::complete(10));
  // C(10,3) = 120
  EXPECT_EQ(alg::triangle_count(ex::par, graph), 120u);
}

// --- k-core ------------------------------------------------------------------------

TEST(KCore, CliqueCoreness) {
  auto const graph = undirected(gen::complete(6));
  auto const r = alg::kcore(ex::par, graph);
  for (auto const c : r.coreness)
    EXPECT_EQ(c, 5);
  EXPECT_EQ(r.max_core, 5);
}

TEST(KCore, ChainCorenessIsOne) {
  auto coo = gen::chain(20);
  auto const graph = undirected(std::move(coo));
  auto const r = alg::kcore(ex::par, graph);
  for (auto const c : r.coreness)
    EXPECT_EQ(c, 1);
}

TEST(KCore, ParMatchesSerial) {
  for (std::uint64_t seed : {4u, 9u}) {
    auto const graph = undirected(gen::erdos_renyi(200, 1600, {}, seed));
    auto const par = alg::kcore(ex::par, graph);
    auto const ser = alg::kcore_serial(graph);
    EXPECT_EQ(par.coreness, ser.coreness) << "seed " << seed;
    EXPECT_EQ(par.max_core, ser.max_core);
  }
}

// --- coloring -----------------------------------------------------------------------

TEST(Coloring, JonesPlassmannProducesValidColoring) {
  for (std::uint64_t seed : {1u, 5u}) {
    auto const graph = undirected(gen::erdos_renyi(250, 2000, {}, seed));
    auto const r = alg::color_jones_plassmann(ex::par, graph, seed);
    EXPECT_TRUE(alg::is_valid_coloring(graph, r.colors)) << "seed " << seed;
    EXPECT_GE(r.num_colors, 1);
  }
}

TEST(Coloring, SerialFirstFitValid) {
  auto const graph = undirected(gen::watts_strogatz(150, 3, 0.3, {}, 2));
  auto const r = alg::color_serial(graph);
  EXPECT_TRUE(alg::is_valid_coloring(graph, r.colors));
}

TEST(Coloring, BipartiteNeedsTwoColors) {
  // Star graphs are bipartite: hub one color, spokes another.
  auto const graph = undirected(gen::star(40));
  auto const jp = alg::color_jones_plassmann(ex::par, graph);
  EXPECT_TRUE(alg::is_valid_coloring(graph, jp.colors));
  EXPECT_LE(jp.num_colors, 2);
}

TEST(Coloring, CliqueNeedsNColors) {
  auto const graph = undirected(gen::complete(7));
  auto const jp = alg::color_jones_plassmann(ex::par, graph);
  EXPECT_TRUE(alg::is_valid_coloring(graph, jp.colors));
  EXPECT_EQ(jp.num_colors, 7);
}

// --- betweenness ---------------------------------------------------------------------

TEST(Betweenness, ParallelMatchesBrandesOracle) {
  auto const graph = undirected(gen::erdos_renyi(80, 500, {}, 8));
  auto const oracle = alg::betweenness_serial(graph);
  auto const par = alg::betweenness(ex::par, graph);
  ASSERT_EQ(par.centrality.size(), oracle.centrality.size());
  for (std::size_t v = 0; v < oracle.centrality.size(); ++v)
    EXPECT_NEAR(par.centrality[v], oracle.centrality[v], 1e-6) << v;
}

TEST(Betweenness, PathCenterHasHighestCentrality) {
  auto coo = gen::chain(9);
  auto const graph = undirected(std::move(coo));
  auto const r = alg::betweenness(ex::par, graph);
  // Middle of a path mediates the most shortest paths.
  for (std::size_t v = 0; v < 9; ++v) {
    if (v != 4) {
      EXPECT_GE(r.centrality[4], r.centrality[v]);
    }
  }
  EXPECT_DOUBLE_EQ(r.centrality[0], 0.0);
}

TEST(Betweenness, StarHubTakesAll) {
  auto const graph = undirected(gen::star(10));
  auto const r = alg::betweenness(ex::par, graph);
  // Every spoke-to-spoke shortest path routes through the hub: 9*8 ordered
  // pairs.
  EXPECT_NEAR(r.centrality[0], 72.0, 1e-9);
  for (std::size_t v = 1; v < 10; ++v)
    EXPECT_NEAR(r.centrality[v], 0.0, 1e-12);
}

TEST(Betweenness, SampledSourcesSubsetOfExact) {
  auto const graph = undirected(gen::erdos_renyi(60, 400, {}, 4));
  auto const sampled = alg::betweenness(ex::par, graph, 10);
  auto const oracle = alg::betweenness_serial(graph, 10);
  for (std::size_t v = 0; v < oracle.centrality.size(); ++v)
    EXPECT_NEAR(sampled.centrality[v], oracle.centrality[v], 1e-6);
}

// --- SpMV ---------------------------------------------------------------------------

TEST(Spmv, MatchesManualComputation) {
  // 2x2: A = [[0, 2], [3, 0]] as a graph: 0->1 w2, 1->0 w3.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 2;
  coo.push_back(0, 1, 2.f);
  coo.push_back(1, 0, 3.f);
  auto const graph = g::from_coo<g::graph_full>(std::move(coo));
  std::vector<double> x{10.0, 100.0};
  auto const y = alg::spmv(ex::par, graph, x);
  EXPECT_DOUBLE_EQ(y[0], 200.0);  // 2 * x[1]
  EXPECT_DOUBLE_EQ(y[1], 30.0);   // 3 * x[0]
}

TEST(Spmv, TransposeMatchesTransposedGraph) {
  auto coo = gen::erdos_renyi(100, 900, {0.1f, 2.0f}, 6);
  g::sort_and_deduplicate(coo);
  auto const graph = g::from_coo<g::graph_full>(coo);
  g::transpose(coo);
  auto const graph_t = g::from_coo<g::graph_full>(std::move(coo));

  std::vector<double> x(100);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<double>(i % 13) * 0.5;

  auto const scatter = alg::spmv_transpose(ex::par, graph, x);
  auto const gather = alg::spmv(ex::par, graph_t, x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(scatter[i], gather[i], 1e-9) << i;
}

TEST(Spmv, ParMatchesSerial) {
  auto const graph = directed(gen::erdos_renyi(200, 2000, {0.5f, 1.5f}, 9));
  std::vector<double> x(200, 1.0);
  auto const s = alg::spmv_serial(graph, x);
  auto const p = alg::spmv(ex::par, graph, x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(s[i], p[i], 1e-12);
}

TEST(Spmv, DimensionMismatchThrows) {
  auto const graph = directed(gen::chain(5));
  std::vector<double> wrong(3, 1.0);
  EXPECT_THROW(alg::spmv(ex::par, graph, wrong), essentials::graph_error);
}
