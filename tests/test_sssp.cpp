// SSSP property suite: every parallel/async/distributed variant must match
// the Dijkstra oracle on every generator family, across seeds and sources.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "algorithms/sssp.hpp"
#include "algorithms/sssp_async_mp.hpp"
#include "algorithms/sssp_delta.hpp"
#include "algorithms/sssp_hybrid.hpp"
#include "core/execution.hpp"
#include "generators/generators.hpp"
#include "graph/graph.hpp"

namespace alg = essentials::algorithms;
namespace ex = essentials::execution;
namespace g = essentials::graph;
namespace gen = essentials::generators;
using essentials::vertex_t;
using essentials::weight_t;
using essentials::infinity_v;

namespace {

g::graph_push_pull make_graph(std::string const& family, std::uint64_t seed) {
  gen::weight_options w{0.5f, 4.0f};
  g::coo_t<> coo;
  if (family == "rmat") {
    gen::rmat_options opt;
    opt.scale = 8;
    opt.edge_factor = 8;
    opt.seed = seed;
    opt.weights = w;
    coo = gen::rmat(opt);
  } else if (family == "er") {
    coo = gen::erdos_renyi(400, 3200, w, seed);
  } else if (family == "grid") {
    coo = gen::grid_2d(18, 20, w, seed);
  } else if (family == "chain") {
    coo = gen::chain(300, w, seed);
  } else if (family == "star") {
    coo = gen::star(200, w, seed);
  } else {
    coo = gen::watts_strogatz(250, 3, 0.2, w, seed);
  }
  g::remove_self_loops(coo);
  return g::from_coo<g::graph_push_pull>(std::move(coo),
                                         g::duplicate_policy::keep_min);
}

void expect_distances_equal(std::vector<weight_t> const& got,
                            std::vector<weight_t> const& want,
                            std::string const& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t v = 0; v < want.size(); ++v) {
    if (want[v] == infinity_v<weight_t>) {
      EXPECT_EQ(got[v], infinity_v<weight_t>) << label << " vertex " << v;
    } else {
      // Float relaxations may associate differently; tolerance covers it.
      EXPECT_NEAR(got[v], want[v], 1e-3f) << label << " vertex " << v;
    }
  }
}

}  // namespace

using SsspParam = std::tuple<std::string, std::uint64_t>;

class SsspAllVariants : public ::testing::TestWithParam<SsspParam> {};

TEST_P(SsspAllVariants, EveryVariantMatchesDijkstra) {
  auto const& [family, seed] = GetParam();
  auto const graph = make_graph(family, seed);
  vertex_t const source = 0;

  auto const oracle = alg::dijkstra(graph, source);

  expect_distances_equal(alg::sssp(ex::seq, graph, source).distances,
                         oracle.distances, family + "/push-seq");
  expect_distances_equal(alg::sssp(ex::par, graph, source).distances,
                         oracle.distances, family + "/push-par");
  expect_distances_equal(alg::sssp_pull(ex::par, graph, source).distances,
                         oracle.distances, family + "/pull-par");
  expect_distances_equal(alg::sssp_async(graph, source, 4).distances,
                         oracle.distances, family + "/async");
  expect_distances_equal(
      alg::sssp_message_passing(graph, source, 3).distances,
      oracle.distances, family + "/message-passing");
  expect_distances_equal(
      alg::sssp_async_message_passing(graph, source, 3).distances,
      oracle.distances, family + "/async-message-passing");
  expect_distances_equal(
      alg::sssp_delta_stepping(ex::par, graph, source).distances,
      oracle.distances, family + "/delta-stepping");
  expect_distances_equal(alg::sssp_hybrid(graph, source, 2, 2).distances,
                         oracle.distances, family + "/hybrid");
  expect_distances_equal(alg::bellman_ford(graph, source).distances,
                         oracle.distances, family + "/bellman-ford");
}

INSTANTIATE_TEST_SUITE_P(
    Families, SsspAllVariants,
    ::testing::Combine(::testing::Values("rmat", "er", "grid", "chain",
                                         "star", "ws"),
                       ::testing::Values(1u, 7u)),
    [](auto const& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- targeted edge cases -------------------------------------------------------

TEST(Sssp, SourceOnlyGraph) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 1;
  auto const graph = g::from_coo<g::graph_push_pull>(std::move(coo));
  auto const r = alg::sssp(ex::par, graph, 0);
  ASSERT_EQ(r.distances.size(), 1u);
  EXPECT_FLOAT_EQ(r.distances[0], 0.0f);
  EXPECT_EQ(r.iterations, 1u);  // one superstep that expands nothing... and drains
}

TEST(Sssp, UnreachableVerticesStayInfinite) {
  // Two disconnected components: 0->1 and 2->3.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  coo.push_back(0, 1, 1.f);
  coo.push_back(2, 3, 1.f);
  auto const graph = g::from_coo<g::graph_push_pull>(std::move(coo));
  auto const r = alg::sssp(ex::par, graph, 0);
  EXPECT_FLOAT_EQ(r.distances[1], 1.0f);
  EXPECT_EQ(r.distances[2], infinity_v<weight_t>);
  EXPECT_EQ(r.distances[3], infinity_v<weight_t>);
}

TEST(Sssp, PicksShorterOfTwoPaths) {
  // Listing 4's behaviour on the classic diamond with unequal arms.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  coo.push_back(0, 1, 1.f);
  coo.push_back(0, 2, 10.f);
  coo.push_back(1, 3, 1.f);
  coo.push_back(2, 3, 1.f);
  auto const graph = g::from_coo<g::graph_push_pull>(std::move(coo));
  for (auto const& dist :
       {alg::sssp(ex::par, graph, 0).distances,
        alg::sssp_pull(ex::par, graph, 0).distances,
        alg::sssp_async(graph, 0, 2).distances}) {
    EXPECT_FLOAT_EQ(dist[3], 2.0f);
    EXPECT_FLOAT_EQ(dist[2], 10.0f);  // still reached, via the long arm
  }
}

TEST(Sssp, InvalidSourceThrows) {
  auto const graph = make_graph("chain", 1);
  EXPECT_THROW(alg::sssp(ex::par, graph, -1), essentials::graph_error);
  EXPECT_THROW(alg::sssp(ex::par, graph, graph.get_num_vertices()),
               essentials::graph_error);
  EXPECT_THROW(alg::dijkstra(graph, -5), essentials::graph_error);
}

TEST(Sssp, ZeroWeightEdgesAreHandled) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 3;
  coo.push_back(0, 1, 0.f);
  coo.push_back(1, 2, 0.f);
  auto const graph = g::from_coo<g::graph_push_pull>(std::move(coo));
  auto const r = alg::sssp(ex::par, graph, 0);
  EXPECT_FLOAT_EQ(r.distances[2], 0.0f);
}

TEST(Sssp, BspIterationCountIsGraphDiameterish) {
  // On a chain with unit weights, BSP SSSP needs exactly n-1 expansions
  // plus the final empty check.
  auto coo = gen::chain(50, {1.0f, 1.0f});
  auto const graph = g::from_coo<g::graph_push_pull>(std::move(coo));
  auto const r = alg::sssp(ex::par, graph, 0);
  EXPECT_EQ(r.iterations, 50u);  // 49 productive supersteps + 1 draining
}

TEST(Sssp, MessagePassingAgreesAcrossRankCounts) {
  auto const graph = make_graph("er", 3);
  auto const oracle = alg::dijkstra(graph, 0);
  for (int ranks : {1, 2, 5}) {
    expect_distances_equal(
        alg::sssp_message_passing(graph, 0, ranks).distances,
        oracle.distances, "ranks=" + std::to_string(ranks));
  }
}

TEST(Sssp, AsyncAgreesAcrossWorkerCounts) {
  auto const graph = make_graph("rmat", 5);
  auto const oracle = alg::dijkstra(graph, 0);
  for (std::size_t workers : {1u, 2u, 8u}) {
    expect_distances_equal(alg::sssp_async(graph, 0, workers).distances,
                           oracle.distances,
                           "workers=" + std::to_string(workers));
  }
}

TEST(Sssp, DifferentSourcesOnSameGraph) {
  auto const graph = make_graph("grid", 2);
  for (vertex_t source : {0, 17, 359}) {
    auto const oracle = alg::dijkstra(graph, source);
    expect_distances_equal(alg::sssp(ex::par, graph, source).distances,
                           oracle.distances,
                           "source=" + std::to_string(source));
  }
}
