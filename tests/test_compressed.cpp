// Tests for the varint-delta compressed CSR representation.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/compressed.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;
using e::vertex_t;

namespace {

g::csr_t<> canonical(g::coo_t<> coo) {
  g::remove_self_loops(coo);
  g::sort_and_deduplicate(coo, g::duplicate_policy::keep_min);
  return g::build_csr(coo);
}

}  // namespace

TEST(Varint, EncodeDecodeRoundTrip) {
  std::vector<std::uint8_t> buf;
  std::vector<std::uint64_t> const values{0, 1, 127, 128, 300, 1u << 20,
                                          ~std::uint64_t{0} >> 1};
  for (auto const v : values)
    g::varint::encode(buf, v);
  std::size_t pos = 0;
  for (auto const v : values)
    EXPECT_EQ(g::varint::decode(buf.data(), pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, ZigZagRoundTrip) {
  for (std::int64_t v : {0LL, 1LL, -1LL, 63LL, -64LL, 1LL << 40, -(1LL << 40)})
    EXPECT_EQ(g::varint::unzigzag(g::varint::zigzag(v)), v);
  // Small magnitudes stay small (1 byte after zig-zag).
  EXPECT_LT(g::varint::zigzag(-3), 16u);
}

TEST(CompressedGraph, NeighborsMatchCsrExactly) {
  auto const csr = canonical(e::generators::erdos_renyi(300, 3000,
                                                        {0.5f, 2.0f}, 4));
  g::compressed_graph<> cg(csr);
  EXPECT_EQ(cg.get_num_vertices(), csr.num_rows);
  EXPECT_EQ(cg.get_num_edges(), csr.num_edges());
  for (vertex_t v = 0; v < csr.num_rows; ++v) {
    std::vector<std::pair<vertex_t, float>> want, got;
    for (e::edge_t ed = csr.row_offsets[static_cast<std::size_t>(v)];
         ed < csr.row_offsets[static_cast<std::size_t>(v) + 1]; ++ed)
      want.emplace_back(csr.column_indices[static_cast<std::size_t>(ed)],
                        csr.values[static_cast<std::size_t>(ed)]);
    cg.for_each_neighbor(
        v, [&got](vertex_t nb, float w) { got.emplace_back(nb, w); });
    EXPECT_EQ(got, want) << "vertex " << v;
    EXPECT_EQ(cg.get_out_degree(v),
              static_cast<e::edge_t>(want.size()));
  }
}

TEST(CompressedGraph, CompressesLocalGraphsWell) {
  // Mesh adjacency deltas are tiny: expect > 2x over 4-byte ids.
  auto coo = e::generators::grid_2d(64, 64);
  auto const csr = canonical(std::move(coo));
  g::compressed_graph<> cg(csr);
  EXPECT_GT(cg.compression_ratio(), 2.0);
  EXPECT_LT(cg.adjacency_bytes(), cg.uncompressed_adjacency_bytes());
}

TEST(CompressedGraph, HandlesSkewAndEmptyRows) {
  auto const csr = canonical(e::generators::star(1000));
  g::compressed_graph<> cg(csr);
  // Hub decode covers all 999 spokes.
  int count = 0;
  cg.for_each_neighbor(0, [&count](vertex_t, float) { ++count; });
  EXPECT_EQ(count, 999);
  // A spoke has exactly the hub.
  cg.for_each_neighbor(5, [](vertex_t nb, float) { EXPECT_EQ(nb, 0); });

  g::coo_t<> lonely;
  lonely.num_rows = lonely.num_cols = 3;
  g::compressed_graph<> empty(canonical(std::move(lonely)));
  empty.for_each_neighbor(1, [](vertex_t, float) { FAIL(); });
}

TEST(CompressedGraph, SsspOnCompressedMatchesDijkstra) {
  auto const csr = canonical(e::generators::erdos_renyi(400, 3200,
                                                        {0.5f, 4.0f}, 7));
  g::compressed_graph<> cg(csr);
  g::graph_csr flat;
  flat.set_csr(csr);
  auto const want = e::algorithms::dijkstra(flat, 0).distances;
  auto const got = e::algorithms::sssp_compressed(cg, vertex_t{0});
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    if (want[v] == e::infinity_v<float>)
      EXPECT_EQ(got[v], want[v]) << v;
    else
      EXPECT_NEAR(got[v], want[v], 1e-3f) << v;
  }
}

TEST(CompressedGraph, ReorderingImprovesCompression) {
  // BFS relabeling shrinks deltas on a scrambled mesh -> better ratio.
  auto coo = e::generators::grid_2d(40, 40);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  std::size_t const n = static_cast<std::size_t>(csr.num_rows);
  g::permutation_t<vertex_t> scrambled(n);
  for (std::size_t v = 0; v < n; ++v)
    scrambled[v] = static_cast<vertex_t>((v * 421) % n);
  auto scoo = g::apply_permutation(coo, scrambled);
  g::sort_and_deduplicate(scoo);
  auto const scrambled_csr = g::build_csr(scoo);

  auto const perm = g::order_by_bfs(scrambled_csr, 0);
  auto rcoo = g::apply_permutation(scoo, perm);
  g::sort_and_deduplicate(rcoo);
  auto const reordered_csr = g::build_csr(rcoo);

  g::compressed_graph<> bad(scrambled_csr), good(reordered_csr);
  EXPECT_GT(good.compression_ratio(), bad.compression_ratio());
}
