// Tests for the varint-delta compressed CSR representation.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/compressed.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;
using e::vertex_t;

namespace {

g::csr_t<> canonical(g::coo_t<> coo) {
  g::remove_self_loops(coo);
  g::sort_and_deduplicate(coo, g::duplicate_policy::keep_min);
  return g::build_csr(coo);
}

}  // namespace

TEST(Varint, EncodeDecodeRoundTrip) {
  std::vector<std::uint8_t> buf;
  std::vector<std::uint64_t> const values{0, 1, 127, 128, 300, 1u << 20,
                                          ~std::uint64_t{0} >> 1};
  for (auto const v : values)
    g::varint::encode(buf, v);
  std::size_t pos = 0;
  for (auto const v : values)
    EXPECT_EQ(g::varint::decode(buf.data(), pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, ZigZagRoundTrip) {
  for (std::int64_t v : {0LL, 1LL, -1LL, 63LL, -64LL, 1LL << 40, -(1LL << 40)})
    EXPECT_EQ(g::varint::unzigzag(g::varint::zigzag(v)), v);
  // Small magnitudes stay small (1 byte after zig-zag).
  EXPECT_LT(g::varint::zigzag(-3), 16u);
}

TEST(CompressedGraph, NeighborsMatchCsrExactly) {
  auto const csr = canonical(e::generators::erdos_renyi(300, 3000,
                                                        {0.5f, 2.0f}, 4));
  g::compressed_graph<> cg(csr);
  EXPECT_EQ(cg.get_num_vertices(), csr.num_rows);
  EXPECT_EQ(cg.get_num_edges(), csr.num_edges());
  for (vertex_t v = 0; v < csr.num_rows; ++v) {
    std::vector<std::pair<vertex_t, float>> want, got;
    for (e::edge_t ed = csr.row_offsets[static_cast<std::size_t>(v)];
         ed < csr.row_offsets[static_cast<std::size_t>(v) + 1]; ++ed)
      want.emplace_back(csr.column_indices[static_cast<std::size_t>(ed)],
                        csr.values[static_cast<std::size_t>(ed)]);
    cg.for_each_neighbor(
        v, [&got](vertex_t nb, float w) { got.emplace_back(nb, w); });
    EXPECT_EQ(got, want) << "vertex " << v;
    EXPECT_EQ(cg.get_out_degree(v),
              static_cast<e::edge_t>(want.size()));
  }
}

TEST(CompressedGraph, CompressesLocalGraphsWell) {
  // Mesh adjacency deltas are tiny: expect > 2x over 4-byte ids.
  auto coo = e::generators::grid_2d(64, 64);
  auto const csr = canonical(std::move(coo));
  g::compressed_graph<> cg(csr);
  EXPECT_GT(cg.compression_ratio(), 2.0);
  EXPECT_LT(cg.adjacency_bytes(), cg.uncompressed_adjacency_bytes());
}

TEST(CompressedGraph, HandlesSkewAndEmptyRows) {
  auto const csr = canonical(e::generators::star(1000));
  g::compressed_graph<> cg(csr);
  // Hub decode covers all 999 spokes.
  int count = 0;
  cg.for_each_neighbor(0, [&count](vertex_t, float) { ++count; });
  EXPECT_EQ(count, 999);
  // A spoke has exactly the hub.
  cg.for_each_neighbor(5, [](vertex_t nb, float) { EXPECT_EQ(nb, 0); });

  g::coo_t<> lonely;
  lonely.num_rows = lonely.num_cols = 3;
  g::compressed_graph<> empty(canonical(std::move(lonely)));
  empty.for_each_neighbor(1, [](vertex_t, float) { FAIL(); });
}

TEST(CompressedGraph, SsspOnCompressedMatchesDijkstra) {
  auto const csr = canonical(e::generators::erdos_renyi(400, 3200,
                                                        {0.5f, 4.0f}, 7));
  g::compressed_graph<> cg(csr);
  g::graph_csr flat;
  flat.set_csr(csr);
  auto const want = e::algorithms::dijkstra(flat, 0).distances;
  auto const got = e::algorithms::sssp_compressed(cg, vertex_t{0});
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    if (want[v] == e::infinity_v<float>)
      EXPECT_EQ(got[v], want[v]) << v;
    else
      EXPECT_NEAR(got[v], want[v], 1e-3f) << v;
  }
}

TEST(CompressedGraph, ReorderingImprovesCompression) {
  // BFS relabeling shrinks deltas on a scrambled mesh -> better ratio.
  auto coo = e::generators::grid_2d(40, 40);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  std::size_t const n = static_cast<std::size_t>(csr.num_rows);
  g::permutation_t<vertex_t> scrambled(n);
  for (std::size_t v = 0; v < n; ++v)
    scrambled[v] = static_cast<vertex_t>((v * 421) % n);
  auto scoo = g::apply_permutation(coo, scrambled);
  g::sort_and_deduplicate(scoo);
  auto const scrambled_csr = g::build_csr(scoo);

  auto const perm = g::order_by_bfs(scrambled_csr, 0);
  auto rcoo = g::apply_permutation(scoo, perm);
  g::sort_and_deduplicate(rcoo);
  auto const reordered_csr = g::build_csr(rcoo);

  g::compressed_graph<> bad(scrambled_csr), good(reordered_csr);
  EXPECT_GT(good.compression_ratio(), bad.compression_ratio());
}

// ---------------------------------------------------------------------------
// Block codec (PR 9): the operators' compressed tier.  Suite names carry
// the `Compressed` prefix so the CI TSAN leg picks them up.
// ---------------------------------------------------------------------------

#include <random>

#include "core/execution.hpp"
#include "core/operators/advance.hpp"
#include "core/operators/filter.hpp"
#include "core/operators/neighbor_reduce.hpp"
#include "io/mapped.hpp"

namespace ex = e::execution;
namespace op = e::operators;
namespace fr = e::frontier;
using e::edge_t;
using e::weight_t;

namespace {

std::vector<vertex_t> sorted_copy(std::vector<vertex_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

g::csr_t<> rmat_like(int n, int m, unsigned seed) {
  return canonical(e::generators::erdos_renyi(n, m, {0.5f, 2.0f}, seed));
}

}  // namespace

TEST(Compressed, BlockCodecRoundTripAllLengths) {
  std::mt19937 rng(7);
  std::size_t const B = g::blockcodec::block_edges;
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{4}, std::size_t{5}, B - 1, B, B + 1,
                          3 * B + 17}) {
    std::vector<vertex_t> vals(len);
    for (auto& v : vals)
      v = static_cast<vertex_t>(rng() % 2000000);  // arbitrary order: zig-zag
    auto const enc = g::blockcodec::encode_adjacency(vals.data(), len);
    ASSERT_EQ(enc.num_blocks(), (len + B - 1) / B) << len;
    std::vector<vertex_t> out(enc.num_blocks() * B, -1);
    std::size_t decoded = 0;
    for (std::uint64_t b = 0; b < enc.num_blocks(); ++b)
      decoded += g::blockcodec::decode_block(enc.bytes.data(),
                                             enc.block_offsets.data(), b,
                                             out.data() + b * B);
    ASSERT_EQ(decoded, len) << len;
    for (std::size_t i = 0; i < len; ++i)
      ASSERT_EQ(out[i], vals[i]) << "len " << len << " index " << i;
  }
}

TEST(Compressed, BlockLayoutIsWordAlignedAndBounded) {
  auto const csr = rmat_like(500, 6000, 11);
  g::compressed_graph<> cg(csr);
  ASSERT_GT(cg.num_blocks(), 1u);
  for (std::uint64_t b = 0; b <= cg.num_blocks(); ++b)
    EXPECT_EQ(cg.block_offsets_data()[b] % 4, 0u) << b;
  // Sorted adjacency should land well under the raw 4 bytes/edge.
  EXPECT_LT(cg.bytes_per_edge(), 4.0);
  EXPECT_EQ(cg.adjacency_bytes(),
            cg.block_offsets_data()[cg.num_blocks()]);
}

TEST(Compressed, RandomEdgeAccessMatchesCsr) {
  auto const csr = rmat_like(400, 5000, 3);
  g::compressed_graph<> cg(csr);
  std::mt19937 rng(13);
  std::size_t const m = csr.column_indices.size();
  // Random-order single-edge probes (worst case for the block cache).
  for (int i = 0; i < 2000; ++i) {
    auto const ed = static_cast<edge_t>(rng() % m);
    EXPECT_EQ(cg.get_dest_vertex(ed),
              csr.column_indices[static_cast<std::size_t>(ed)]);
    EXPECT_EQ(cg.get_edge_weight(ed),
              csr.values[static_cast<std::size_t>(ed)]);
  }
  // get_source_vertex agrees with the row-offsets contract.
  for (int i = 0; i < 500; ++i) {
    auto const ed = static_cast<edge_t>(rng() % m);
    auto const src = cg.get_source_vertex(ed);
    EXPECT_LE(csr.row_offsets[static_cast<std::size_t>(src)], ed);
    EXPECT_LT(ed, csr.row_offsets[static_cast<std::size_t>(src) + 1]);
  }
}

TEST(Compressed, ThreadLocalCacheSurvivesGraphInterleaving) {
  // Two graphs probed alternately on one thread: the cookie-keyed scratch
  // must never serve one graph's decoded block for the other.
  auto const csr_a = rmat_like(300, 4000, 5);
  auto const csr_b = rmat_like(300, 4000, 6);
  g::compressed_graph<> a(csr_a), b(csr_b);
  for (edge_t ed = 0; ed < 3000; ++ed) {
    ASSERT_EQ(a.get_dest_vertex(ed),
              csr_a.column_indices[static_cast<std::size_t>(ed)]);
    ASSERT_EQ(b.get_dest_vertex(ed),
              csr_b.column_indices[static_cast<std::size_t>(ed)]);
  }
}

TEST(Compressed, OperatorDifferentialAcrossPoliciesAndSubstrates) {
  // The tentpole contract: advance on compressed CSR is bit-identical to
  // advance on plain CSR across frontier strategies and both pool
  // substrates.  "Bit-identical" follows the repo's differential
  // convention: exact equality where the path is deterministic (seq, par
  // scan), multiset equality where publication order is racy (bulk /
  // listing3) — the same bar test_differential.cpp holds flat CSR to.
  auto const csr = rmat_like(400, 6000, 21);
  g::graph_csr flat;
  flat.set_csr(csr);
  g::compressed_graph<> cg(csr);

  std::vector<vertex_t> seeds;
  for (vertex_t v = 0; v < 400; v += 7)
    seeds.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));
  auto const cond = [](vertex_t s, vertex_t d, edge_t, weight_t) {
    return (static_cast<std::size_t>(s) + 2 * static_cast<std::size_t>(d)) %
               3 !=
           0;
  };

  auto const ref = op::advance_push(ex::seq, flat, in, cond).to_vector();
  EXPECT_EQ(op::advance_push(ex::seq, cg, in, cond).to_vector(), ref);
  auto const ref_sorted = sorted_copy(ref);

  for (auto const mode : {e::parallel::queue_mode::stealing,
                          e::parallel::queue_mode::central}) {
    e::parallel::thread_pool pool(4, mode);
    ex::parallel_policy const par_on_pool{pool};
    for (auto const fg : {ex::frontier_gen::scan, ex::frontier_gen::bulk,
                          ex::frontier_gen::listing3}) {
      auto const policy = par_on_pool.with_frontier(fg);
      auto const flat_out =
          op::advance_push(policy, flat, in, cond).to_vector();
      auto const comp_out = op::advance_push(policy, cg, in, cond).to_vector();
      if (fg == ex::frontier_gen::scan) {
        EXPECT_EQ(comp_out, flat_out) << "scan must match exactly";
      }
      EXPECT_EQ(sorted_copy(comp_out), ref_sorted)
          << "substrate " << static_cast<int>(mode) << " frontier "
          << static_cast<int>(fg);
      // Dedup'd variants agree as sets.
      auto const dd =
          op::advance_push(policy.with_dedup(), cg, in, cond).to_vector();
      auto dd_want = ref_sorted;
      dd_want.erase(std::unique(dd_want.begin(), dd_want.end()),
                    dd_want.end());
      EXPECT_EQ(sorted_copy(dd), dd_want);
    }
  }
}

TEST(Compressed, NeighborReduceAndFilterDifferential) {
  auto const csr = rmat_like(350, 4500, 31);
  g::graph_csr flat;
  flat.set_csr(csr);
  g::compressed_graph<> cg(csr);
  auto const n = static_cast<std::size_t>(csr.num_rows);

  // Whole-graph neighbor_reduce: weighted degree sums must match exactly.
  auto const map = [](vertex_t, vertex_t d, edge_t, weight_t w) {
    return static_cast<double>(d) + static_cast<double>(w);
  };
  auto const combine = [](double a, double b) { return a + b; };
  std::vector<double> want(n, -1.0), got(n, -1.0);
  op::neighbor_reduce(ex::seq, flat, 0.0, map, combine, want.data());
  op::neighbor_reduce(ex::par, cg, 0.0, map, combine, got.data());
  EXPECT_EQ(got, want);

  // Frontier-restricted activate variant across generation strategies.
  std::vector<vertex_t> seeds;
  for (vertex_t v = 0; v < 350; v += 5)
    seeds.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));
  auto const activate = [](vertex_t, double acc) { return acc > 40.0; };
  std::vector<double> out_ref(n, 0.0);
  auto const act_ref = sorted_copy(
      op::neighbor_reduce_activate(ex::seq, flat, in, 0.0, map, combine,
                                   activate, out_ref.data())
          .to_vector());
  for (auto const fg : {ex::frontier_gen::scan, ex::frontier_gen::bulk,
                        ex::frontier_gen::listing3}) {
    std::vector<double> out_c(n, 0.0);
    auto const act = sorted_copy(
        op::neighbor_reduce_activate(ex::par.with_frontier(fg), cg, in, 0.0,
                                     map, combine, activate, out_c.data())
            .to_vector());
    EXPECT_EQ(act, act_ref) << static_cast<int>(fg);
    EXPECT_EQ(out_c, out_ref) << static_cast<int>(fg);
  }

  // filter is graph-independent but rides the same policy matrix the
  // compressed outputs feed; sanity-check it over an advance result.
  auto const fresh =
      op::advance_push(ex::par, cg, in,
                       [](vertex_t, vertex_t, edge_t, weight_t) { return true; });
  auto const keep = [](vertex_t v) { return v % 2 == 0; };
  auto const f_ref = sorted_copy(op::filter(ex::seq, fresh, keep).to_vector());
  EXPECT_EQ(sorted_copy(op::filter(ex::par, fresh, keep).to_vector()), f_ref);
}

TEST(Compressed, BfsAndSsspMatchPlainCsr) {
  auto const csr = rmat_like(600, 7000, 42);
  g::graph_csr flat;
  flat.set_csr(csr);
  g::compressed_graph<> cg(csr);
  auto const bw = e::algorithms::bfs(ex::par, flat, vertex_t{0});
  auto const bg = e::algorithms::bfs(ex::par, cg, vertex_t{0});
  EXPECT_EQ(bg.depths, bw.depths);
  auto const sw = e::algorithms::sssp(ex::par, flat, vertex_t{0});
  auto const sg = e::algorithms::sssp(ex::par, cg, vertex_t{0});
  EXPECT_EQ(sg.distances, sw.distances);
}

TEST(Compressed, WideEdgeTypeForHugeGraphs) {
  // >2^31-edge readiness (satellite): offsets and byte cursors are u64
  // regardless of E, and a 64-bit E instantiation round-trips.  The codec
  // itself is compile-time guaranteed not to narrow.
  static_assert(sizeof(*g::compressed_graph<>{}.row_offsets_data()) == 8,
                "row offsets must be 64-bit");
  static_assert(sizeof(*g::compressed_graph<>{}.block_offsets_data()) == 8,
                "block offsets must be 64-bit");
  auto const csr32 = rmat_like(300, 4000, 9);
  g::csr_t<vertex_t, std::int64_t, weight_t> csr64;
  csr64.num_rows = csr32.num_rows;
  csr64.num_cols = csr32.num_cols;
  csr64.row_offsets.assign(csr32.row_offsets.begin(), csr32.row_offsets.end());
  csr64.column_indices.assign(csr32.column_indices.begin(),
                              csr32.column_indices.end());
  csr64.values.assign(csr32.values.begin(), csr32.values.end());
  g::compressed_graph<vertex_t, std::int64_t, weight_t> wide(csr64);
  EXPECT_EQ(wide.get_num_edges(),
            static_cast<std::int64_t>(csr32.column_indices.size()));
  for (std::int64_t ed = 0; ed < wide.get_num_edges(); ++ed)
    ASSERT_EQ(wide.get_dest_vertex(ed),
              csr32.column_indices[static_cast<std::size_t>(ed)]);
  // The overflow guard itself: an edge count that does not fit E throws.
  // (Exercised symbolically — building 2^31 real edges is not a unit test.)
  SUCCEED();
}

TEST(Compressed, VarintBaselineStillMatchesCsr) {
  // The scalar LEB128 baseline bench_compressed compares against must
  // remain a faithful decoder.
  auto const csr = rmat_like(250, 3000, 17);
  g::varint_graph<> vg(csr);
  EXPECT_EQ(vg.get_num_vertices(), csr.num_rows);
  for (vertex_t v = 0; v < csr.num_rows; ++v) {
    std::vector<vertex_t> want, got;
    for (edge_t ed = csr.row_offsets[static_cast<std::size_t>(v)];
         ed < csr.row_offsets[static_cast<std::size_t>(v) + 1]; ++ed)
      want.push_back(csr.column_indices[static_cast<std::size_t>(ed)]);
    vg.for_each_neighbor(v, [&got](vertex_t nb, float) { got.push_back(nb); });
    ASSERT_EQ(got, want) << v;
  }
  EXPECT_LT(vg.adjacency_bytes(), vg.uncompressed_adjacency_bytes());
}
