// Tests for the query-style algorithms: A* point-to-point, personalized
// PageRank (forward push), clustering coefficients — and the METIS reader
// that feeds the partitioner family.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "algorithms/astar.hpp"
#include "algorithms/clustering.hpp"
#include "algorithms/personalized_pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;
using e::vertex_t;

namespace {

g::graph_csr weighted_grid(vertex_t rows, vertex_t cols, std::uint64_t seed) {
  auto coo = e::generators::grid_2d(rows, cols, {1.0f, 5.0f}, seed);
  return g::from_coo<g::graph_csr>(std::move(coo));
}

g::graph_full undirected(g::coo_t<> coo) {
  g::remove_self_loops(coo);
  g::symmetrize(coo);
  return g::from_coo<g::graph_full>(std::move(coo));
}

}  // namespace

// --- A* ---------------------------------------------------------------------

TEST(AStar, FindsOptimalDistanceOnGrid) {
  auto const gr = weighted_grid(12, 12, 3);
  vertex_t const target = 143;
  auto const full = e::algorithms::dijkstra(gr, 0);
  auto const h = e::algorithms::manhattan_heuristic<vertex_t, float>(
      12, target, 1.0f);
  auto const r = e::algorithms::astar(gr, 0, target, h);
  EXPECT_NEAR(r.distance, full.distances[target], 1e-4f);
}

TEST(AStar, PathIsContiguousAndCostMatches) {
  auto const gr = weighted_grid(8, 8, 7);
  vertex_t const target = 63;
  auto const h =
      e::algorithms::manhattan_heuristic<vertex_t, float>(8, target, 1.0f);
  auto const r = e::algorithms::astar(gr, 0, target, h);
  ASSERT_GE(r.path.size(), 2u);
  EXPECT_EQ(r.path.front(), 0);
  EXPECT_EQ(r.path.back(), target);
  float cost = 0.0f;
  for (std::size_t i = 1; i < r.path.size(); ++i) {
    bool found = false;
    for (auto const e2 : gr.get_edges(r.path[i - 1])) {
      if (gr.get_dest_vertex(e2) == r.path[i]) {
        cost += gr.get_edge_weight(e2);
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "hop " << i << " is not an edge";
  }
  EXPECT_NEAR(cost, r.distance, 1e-4f);
}

TEST(AStar, HeuristicReducesSettledVertices) {
  auto const gr = weighted_grid(40, 40, 1);
  vertex_t const target = 40 * 40 - 1;
  auto const blind = e::algorithms::dijkstra_point_to_point(gr, 0, target);
  auto const informed = e::algorithms::astar(
      gr, 0, target,
      e::algorithms::manhattan_heuristic<vertex_t, float>(40, target, 1.0f));
  EXPECT_NEAR(informed.distance, blind.distance, 1e-3f);
  EXPECT_LT(informed.settled, blind.settled);
}

TEST(AStar, UnreachableTargetReportsInfinity) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 3;
  coo.push_back(0, 1, 1.f);  // 2 unreachable
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  auto const r = e::algorithms::dijkstra_point_to_point(gr, 0, 2);
  EXPECT_EQ(r.distance, e::infinity_v<float>);
  EXPECT_TRUE(r.path.empty());
}

TEST(AStar, SourceEqualsTarget) {
  auto const gr = weighted_grid(4, 4, 2);
  auto const r = e::algorithms::dijkstra_point_to_point(gr, 5, 5);
  EXPECT_FLOAT_EQ(r.distance, 0.0f);
  EXPECT_EQ(r.path, (std::vector<vertex_t>{5}));
}

// --- personalized PageRank -----------------------------------------------------

TEST(Ppr, MassIsConserved) {
  auto coo = e::generators::erdos_renyi(300, 2400, {}, 5);
  g::remove_self_loops(coo);
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  auto const r = e::algorithms::personalized_pagerank(gr, 0);
  double const mass =
      std::accumulate(r.estimate.begin(), r.estimate.end(), 0.0) +
      std::accumulate(r.residual.begin(), r.residual.end(), 0.0);
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(Ppr, ResidualsRespectThreshold) {
  auto coo = e::generators::erdos_renyi(300, 2400, {}, 6);
  g::remove_self_loops(coo);
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  e::algorithms::ppr_options opt;
  opt.epsilon = 1e-5;
  auto const r = e::algorithms::personalized_pagerank(gr, 0, opt);
  for (vertex_t v = 0; v < gr.get_num_vertices(); ++v) {
    double const bound =
        opt.epsilon *
        std::max<double>(1.0, static_cast<double>(gr.get_out_degree(v)));
    EXPECT_LE(r.residual[static_cast<std::size_t>(v)], bound + 1e-12) << v;
  }
}

TEST(Ppr, LocalityAroundSource) {
  // On a long chain, PPR mass must decay with distance from the source.
  auto coo = e::generators::chain(50);
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  auto const r = e::algorithms::personalized_pagerank(gr, 10);
  EXPECT_GT(r.estimate[10], r.estimate[12]);
  EXPECT_GT(r.estimate[12], r.estimate[20]);
  EXPECT_NEAR(r.estimate[5], 0.0, 1e-12);  // behind the source on a chain
}

TEST(Ppr, ApproximatesGlobalPagerankWhenSourceIsEveryone) {
  // Sanity against the power-iteration PageRank: the top-1 vertex of a
  // star graph's PPR from a spoke is the hub.
  auto coo = e::generators::star(30);
  auto const gr = undirected(std::move(coo));
  auto const r = e::algorithms::personalized_pagerank(gr, 7);
  vertex_t best = 0;
  for (vertex_t v = 1; v < 30; ++v)
    if (r.estimate[static_cast<std::size_t>(v)] >
        r.estimate[static_cast<std::size_t>(best)])
      best = v;
  // Source keeps the most mass; hub is the runner-up above all other spokes.
  EXPECT_TRUE(best == 7 || best == 0);
  for (vertex_t v = 1; v < 30; ++v) {
    if (v != 7) {
      EXPECT_GE(r.estimate[0], r.estimate[static_cast<std::size_t>(v)]);
    }
  }
}

// --- clustering ------------------------------------------------------------------

TEST(Clustering, CompleteGraphIsFullyClustered) {
  auto const gr = undirected(e::generators::complete(8));
  auto const r = e::algorithms::clustering_coefficients(e::execution::par, gr);
  EXPECT_NEAR(r.global, 1.0, 1e-12);
  EXPECT_NEAR(r.average_local, 1.0, 1e-12);
  for (double const c : r.local)
    EXPECT_NEAR(c, 1.0, 1e-12);
}

TEST(Clustering, TreeHasZeroClustering) {
  auto const gr = undirected(e::generators::star(20));
  auto const r = e::algorithms::clustering_coefficients(e::execution::par, gr);
  EXPECT_NEAR(r.global, 0.0, 1e-12);
  EXPECT_NEAR(r.average_local, 0.0, 1e-12);
}

TEST(Clustering, TriangleWithTailKnownValues) {
  // Triangle {0,1,2} plus pendant 3 attached to 2.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  coo.push_back(0, 1, 1.f);
  coo.push_back(1, 2, 1.f);
  coo.push_back(2, 0, 1.f);
  coo.push_back(2, 3, 1.f);
  auto const gr = undirected(std::move(coo));
  auto const r = e::algorithms::clustering_coefficients(e::execution::par, gr);
  EXPECT_NEAR(r.local[0], 1.0, 1e-12);  // deg 2, 1 triangle
  EXPECT_NEAR(r.local[1], 1.0, 1e-12);
  EXPECT_NEAR(r.local[2], 1.0 / 3.0, 1e-12);  // deg 3, 1 of 3 wedges closed
  EXPECT_NEAR(r.local[3], 0.0, 1e-12);
  // Global: closed wedge-ends 3 over total wedges 1 + 1 + 3 = 5.
  EXPECT_NEAR(r.global, 3.0 / 5.0, 1e-12);
}

TEST(Clustering, MembershipMatchesTriangleCountTimesThree) {
  auto const gr = undirected(e::generators::erdos_renyi(150, 1500, {}, 8));
  auto const membership =
      e::algorithms::triangles_per_vertex(e::execution::par, gr);
  std::uint64_t total = 0;
  for (auto const m : membership)
    total += m;
  EXPECT_EQ(total, 3 * e::algorithms::triangle_count(e::execution::par, gr));
}

TEST(Clustering, WattsStrogatzBeatsRandomGraph) {
  // The defining small-world property: WS clustering >> ER clustering at
  // equal density.
  auto const ws = undirected(e::generators::watts_strogatz(500, 4, 0.05, {}, 4));
  auto const er = undirected(e::generators::erdos_renyi(500, 2000, {}, 4));
  auto const cw = e::algorithms::clustering_coefficients(e::execution::par, ws);
  auto const ce = e::algorithms::clustering_coefficients(e::execution::par, er);
  EXPECT_GT(cw.average_local, 3.0 * ce.average_local);
}

// --- METIS IO ---------------------------------------------------------------------

TEST(Metis, ParsesPlainFormat) {
  std::istringstream in(
      "% tiny triangle plus pendant\n"
      "4 4\n"
      "2 3\n"
      "1 3\n"
      "1 2 4\n"
      "3\n");
  auto const coo = e::io::read_metis(in);
  EXPECT_EQ(coo.num_rows, 4);
  EXPECT_EQ(coo.num_edges(), 8);  // both directions
  auto const csr = g::build_csr(coo);
  EXPECT_TRUE(g::is_symmetric(csr));
}

TEST(Metis, ParsesEdgeWeights) {
  std::istringstream in(
      "2 1 1\n"
      "2 7.5\n"
      "1 7.5\n");
  auto const coo = e::io::read_metis(in);
  ASSERT_EQ(coo.num_edges(), 2);
  EXPECT_FLOAT_EQ(coo.values[0], 7.5f);
}

TEST(Metis, RejectsMalformed) {
  std::istringstream bad_header("x y\n");
  EXPECT_THROW(e::io::read_metis(bad_header), e::graph_error);
  std::istringstream out_of_range("2 1\n5\n1\n");
  EXPECT_THROW(e::io::read_metis(out_of_range), e::graph_error);
  std::istringstream truncated("3 2\n2\n1\n");
  EXPECT_THROW(e::io::read_metis(truncated), e::graph_error);
  std::istringstream wrong_count("2 5\n2\n1\n");
  EXPECT_THROW(e::io::read_metis(wrong_count), e::graph_error);
}

TEST(Metis, RoundTrip) {
  auto coo = e::generators::watts_strogatz(60, 2, 0.1, {1.0f, 3.0f}, 9);
  g::remove_self_loops(coo);
  g::sort_and_deduplicate(coo);
  // Make perfectly symmetric with matching weights for a clean round trip.
  g::symmetrize(coo);
  g::sort_and_deduplicate(coo, g::duplicate_policy::keep_min);

  std::stringstream buf;
  e::io::write_metis(buf, coo);
  auto back = e::io::read_metis(buf);
  g::sort_and_deduplicate(back);
  EXPECT_EQ(back.row_indices, coo.row_indices);
  EXPECT_EQ(back.column_indices, coo.column_indices);
  for (std::size_t i = 0; i < coo.values.size(); ++i)
    EXPECT_NEAR(back.values[i], coo.values[i], 1e-4f);
}

TEST(Metis, FeedsThePartitioner) {
  // The pipeline the format exists for: read METIS graph -> partition ->
  // measure cut.
  auto grid = e::generators::grid_2d(12, 12);
  g::sort_and_deduplicate(grid);
  std::stringstream buf;
  e::io::write_metis(buf, grid);
  auto const coo = e::io::read_metis(buf);
  auto const csr = g::build_csr(coo);
  auto const p = e::partition::partition_bfs_grow(csr, 4, 1);
  EXPECT_LT(e::partition::edge_cut_fraction(csr, p), 0.3);
}
