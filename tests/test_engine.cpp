// Tests for the concurrent analytics job engine: graph registry (epoch
// pinning), deadline-aware scheduler (cooperative cancellation, admission
// control), result cache (hit/invalidate protocol) and engine metrics —
// plus the snapshot-under-mutation stress the epoch publication contract
// rests on.  Every suite here is named Engine* so the CI TSAN matrix picks
// up the whole file.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/sssp.hpp"
#include "core/enactor.hpp"
#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "engine/engine.hpp"
#include "engine/registry.hpp"
#include "engine/result_cache.hpp"
#include "engine/scheduler.hpp"
#include "engine/stats.hpp"
#include "graph/dynamic.hpp"
#include "graph/graph.hpp"

namespace eng = essentials::engine;
namespace en = essentials::enactor;
namespace fr = essentials::frontier;
namespace gr = essentials::graph;
namespace alg = essentials::algorithms;
namespace exec = essentials::execution;
using essentials::vertex_t;
using essentials::weight_t;
using namespace std::chrono_literals;

using engine_t = eng::analytics_engine<gr::graph_csr>;
using sssp_res = alg::sssp_result<weight_t>;

namespace {

/// Weighted path 0 -> 1 -> ... -> n-1 with unit weights, plus an optional
/// shortcut edge 0 -> n-1 (changes the distance profile between epochs).
gr::graph_csr path_graph(vertex_t n, bool shortcut = false,
                         weight_t shortcut_w = 1.0f) {
  gr::coo_t<> coo;
  coo.num_rows = coo.num_cols = n;
  for (vertex_t v = 0; v + 1 < n; ++v)
    coo.push_back(v, v + 1, 1.0f);
  if (shortcut)
    coo.push_back(0, n - 1, shortcut_w);
  return gr::from_coo<gr::graph_csr>(std::move(coo));
}

/// Typed SSSP job body for the engine: pins nothing itself — the engine
/// hands it the snapshot.
engine_t::typed_job_fn sssp_job(vertex_t src) {
  return [src](gr::graph_csr const& g,
               eng::job_context& /*ctx*/) -> std::shared_ptr<void const> {
    return std::make_shared<sssp_res const>(alg::sssp(exec::seq, g, src));
  };
}

eng::job_desc sssp_desc(std::string graph, vertex_t src) {
  eng::job_desc d;
  d.graph = std::move(graph);
  d.algorithm = "sssp";
  d.params = "src=" + std::to_string(src);
  return d;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(EngineRegistry, PublishLookupBumpsEpochs) {
  eng::graph_registry<gr::graph_csr> reg;
  EXPECT_FALSE(reg.lookup("g"));
  EXPECT_EQ(reg.epoch("g"), 0u);

  auto const p1 = reg.publish("g", path_graph(8));
  EXPECT_TRUE(p1);
  EXPECT_EQ(p1.epoch, 1u);
  auto const p2 = reg.publish("g", path_graph(9));
  EXPECT_EQ(p2.epoch, 2u);
  EXPECT_EQ(reg.epoch("g"), 2u);
  EXPECT_EQ(reg.lookup("g").graph->get_num_vertices(), 9);
}

TEST(EngineRegistry, PinnedSnapshotSurvivesLaterPublishes) {
  eng::graph_registry<gr::graph_csr> reg;
  reg.publish("g", path_graph(8));
  auto const pin = reg.lookup("g");  // pin epoch 1
  reg.publish("g", path_graph(20));
  // The pin still reads the epoch-1 graph; new lookups see epoch 2.
  EXPECT_EQ(pin.graph->get_num_vertices(), 8);
  EXPECT_EQ(pin.epoch, 1u);
  EXPECT_EQ(reg.lookup("g").graph->get_num_vertices(), 20);
}

TEST(EngineRegistry, SubscribersFirePerPublishWithNameAndEpoch) {
  eng::graph_registry<gr::graph_csr> reg;
  std::vector<std::pair<std::string, std::uint64_t>> events;
  reg.subscribe([&events](std::string const& name, std::uint64_t epoch) {
    events.emplace_back(name, epoch);
  });
  reg.publish("a", path_graph(4));
  reg.publish("b", path_graph(4));
  reg.publish("a", path_graph(5));
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], (std::pair<std::string, std::uint64_t>{"a", 1}));
  EXPECT_EQ(events[1], (std::pair<std::string, std::uint64_t>{"b", 1}));
  EXPECT_EQ(events[2], (std::pair<std::string, std::uint64_t>{"a", 2}));
}

TEST(EngineRegistry, PublishFromDynamicGraph) {
  gr::dynamic_graph_t<> dyn(6);
  dyn.add_edge(0, 1, 1.0f);
  dyn.add_edge(1, 2, 1.0f);
  eng::graph_registry<gr::graph_csr> reg;
  auto const pin = reg.publish("ingest", dyn);
  EXPECT_EQ(pin.epoch, 1u);
  EXPECT_EQ(pin.graph->get_num_edges(), 2);
}

TEST(EngineRegistry, DynamicPublishEpochHookFires) {
  gr::dynamic_graph_t<> dyn(4);
  dyn.add_edge(0, 1, 1.0f);
  std::vector<std::uint64_t> published;
  dyn.on_publish([&published](std::uint64_t e) { published.push_back(e); });
  auto const [snap1, e1] = dyn.publish_epoch<gr::graph_csr>();
  dyn.add_edge(1, 2, 1.0f);
  auto const [snap2, e2] = dyn.publish_epoch<gr::graph_csr>();
  EXPECT_EQ(e1, 1u);
  EXPECT_EQ(e2, 2u);
  EXPECT_EQ(dyn.epoch(), 2u);
  EXPECT_EQ(snap1->get_num_edges(), 1);
  EXPECT_EQ(snap2->get_num_edges(), 2);
  EXPECT_EQ(published, (std::vector<std::uint64_t>{1, 2}));
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

TEST(EngineCache, LookupInsertAndLruEviction) {
  eng::engine_stats stats;
  eng::result_cache cache(2, &stats);
  auto const key = [](std::string g, std::uint64_t e, std::string p) {
    return eng::cache_key{std::move(g), e, "algo", std::move(p)};
  };
  auto v1 = std::make_shared<int const>(1);
  auto v2 = std::make_shared<int const>(2);
  auto v3 = std::make_shared<int const>(3);
  cache.insert(key("g", 1, "a"), v1);
  cache.insert(key("g", 1, "b"), v2);
  EXPECT_EQ(cache.lookup(key("g", 1, "a")), v1);  // promotes "a"
  cache.insert(key("g", 1, "c"), v3);             // evicts LRU == "b"
  EXPECT_EQ(cache.lookup(key("g", 1, "b")), nullptr);
  EXPECT_EQ(cache.lookup(key("g", 1, "a")), v1);
  EXPECT_EQ(cache.lookup(key("g", 1, "c")), v3);
  auto const s = stats.snapshot();
  EXPECT_EQ(s.cache_evictions, 1u);
  EXPECT_EQ(s.cache_hits, 3u);
  EXPECT_EQ(s.cache_misses, 1u);
}

TEST(EngineCache, EpochIsPartOfTheKey) {
  eng::result_cache cache(8);
  auto v = std::make_shared<int const>(42);
  cache.insert({"g", 1, "a", "p"}, v);
  EXPECT_EQ(cache.lookup({"g", 1, "a", "p"}), v);
  EXPECT_EQ(cache.lookup({"g", 2, "a", "p"}), nullptr);  // new epoch: miss
}

// PR 4 contract: invalidation *demotes* the newest entry per query
// identity to a warm-start seed (still exactly addressable under its
// old-epoch key) and evicts older duplicates; other graphs are untouched.
TEST(EngineCache, InvalidateGraphDemotesNewestAndDropsOlder) {
  eng::result_cache cache(8);
  cache.insert({"a", 1, "x", ""}, std::make_shared<int const>(1));
  cache.insert({"a", 2, "x", ""}, std::make_shared<int const>(2));
  cache.insert({"a", 1, "y", ""}, std::make_shared<int const>(3));
  cache.insert({"b", 1, "x", ""}, std::make_shared<int const>(4));
  auto const counts = cache.invalidate_graph("a");
  EXPECT_EQ(counts.evicted, 1u);  // ("a",1,"x"): older duplicate of identity x
  EXPECT_EQ(counts.demoted, 2u);  // ("a",2,"x") and ("a",1,"y")
  EXPECT_EQ(counts.total(), 3u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.warm_size(), 2u);
  EXPECT_EQ(cache.lookup({"a", 1, "x", ""}), nullptr);  // evicted
  EXPECT_NE(cache.lookup({"a", 2, "x", ""}), nullptr);  // demoted: exact hit
  EXPECT_NE(cache.lookup({"b", 1, "x", ""}), nullptr);  // other graph survives

  // A newer-epoch query discovers the demoted seed through lookup_warm...
  auto const seed = cache.lookup_warm({"a", 3, "x", ""});
  ASSERT_TRUE(seed);
  EXPECT_EQ(seed.epoch, 2u);
  // ...but a query at (or below) the seed's own epoch cannot warm from it.
  EXPECT_FALSE(cache.lookup_warm({"a", 2, "x", ""}));

  // A fresh insert at the new epoch supersedes the warm seed.
  cache.insert({"a", 3, "x", ""}, std::make_shared<int const>(5));
  EXPECT_EQ(cache.warm_size(), 1u);  // only identity y's seed remains
  EXPECT_FALSE(cache.lookup_warm({"a", 4, "x", ""}));
}

// ---------------------------------------------------------------------------
// Scheduler: deadlines, cancellation, priorities, admission control
// ---------------------------------------------------------------------------

// Acceptance (a): a job past its deadline stops *cooperatively*
// mid-enactment — through the composable convergence condition, not a
// killed thread — and reports deadline_expired.
TEST(EngineScheduler, DeadlineStopsJobMidEnactmentCooperatively) {
  eng::job_scheduler sched({/*num_runners=*/1, /*max_queued=*/4});
  std::atomic<std::size_t> supersteps{0};

  eng::job_desc d;
  d.algorithm = "spin";
  d.deadline = 50ms;
  auto j = sched.submit(d, [&supersteps](eng::job_context& ctx)
                               -> std::shared_ptr<void const> {
    // A BSP enactment that never converges on its own: the deadline
    // condition composed via any_of is the only way out.
    fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
    en::bsp_loop(
        std::move(f),
        [&supersteps](fr::sparse_frontier<vertex_t> in, std::size_t) {
          ++supersteps;
          std::this_thread::sleep_for(2ms);
          return in;
        },
        en::any_of{en::frontier_empty{}, ctx.stop_condition()});
    return std::make_shared<int const>(7);
  });

  EXPECT_EQ(j->wait(), eng::job_status::deadline_expired);
  EXPECT_GE(supersteps.load(), 1u);   // it really ran...
  EXPECT_LT(supersteps.load(), 500u); // ...and really stopped
  EXPECT_EQ(j->result(), nullptr);    // truncated enactments publish nothing
}

TEST(EngineScheduler, DeadlineElapsedWhileQueuedNeverEnacts) {
  eng::job_scheduler sched({1, 8});
  std::atomic<bool> release{false};
  eng::job_desc blocker;
  blocker.algorithm = "blocker";
  auto b = sched.submit(blocker, [&release](eng::job_context&)
                                     -> std::shared_ptr<void const> {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(1ms);
    return nullptr;
  });

  eng::job_desc d;
  d.algorithm = "late";
  d.deadline = 20ms;
  std::atomic<bool> ran{false};
  auto j = sched.submit(d, [&ran](eng::job_context&)
                               -> std::shared_ptr<void const> {
    ran.store(true);
    return nullptr;
  });
  std::this_thread::sleep_for(60ms);  // let the deadline lapse in-queue
  release.store(true, std::memory_order_release);
  EXPECT_EQ(j->wait(), eng::job_status::deadline_expired);
  EXPECT_FALSE(ran.load());
  b->wait();
}

TEST(EngineScheduler, CancelStopsRunningJobAndDropsQueuedJob) {
  eng::job_scheduler sched({1, 8});
  std::atomic<bool> entered{false};
  eng::job_desc d;
  d.algorithm = "cancellable";
  auto running = sched.submit(d, [&entered](eng::job_context& ctx)
                                     -> std::shared_ptr<void const> {
    entered.store(true, std::memory_order_release);
    fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
    en::bsp_loop(
        std::move(f),
        [](fr::sparse_frontier<vertex_t> in, std::size_t) {
          std::this_thread::sleep_for(1ms);
          return in;
        },
        en::any_of{en::frontier_empty{}, ctx.stop_condition()});
    return std::make_shared<int const>(1);
  });
  std::atomic<bool> ran{false};
  auto queued = sched.submit(d, [&ran](eng::job_context&)
                                    -> std::shared_ptr<void const> {
    ran.store(true);
    return nullptr;
  });

  while (!entered.load(std::memory_order_acquire))
    std::this_thread::sleep_for(1ms);
  queued->cancel();   // still queued behind `running`
  running->cancel();  // mid-enactment
  EXPECT_EQ(running->wait(), eng::job_status::cancelled);
  EXPECT_EQ(queued->wait(), eng::job_status::cancelled);
  EXPECT_FALSE(ran.load());
}

// Substrate smoke: deadline and cancel must survive the work-stealing pool
// exactly as they did on the central queue.  The job body drives real
// run_blocked supersteps through an explicitly-pinned pool of each
// queue_mode, so a cooperative stop has to land *between* supersteps while
// chunks are being stolen and helped across lanes.
TEST(EngineScheduler, DeadlineAndCancelSurviveBothQueueSubstrates) {
  for (auto mode : {essentials::parallel::queue_mode::stealing,
                    essentials::parallel::queue_mode::central}) {
    essentials::parallel::thread_pool pool(4, mode);
    exec::parallel_policy const on_pool(pool);
    eng::job_scheduler sched({/*num_runners=*/1, /*max_queued=*/4});

    // Deadline: a never-converging BSP loop whose step is pool-parallel.
    std::atomic<std::size_t> supersteps{0};
    eng::job_desc d;
    d.algorithm = "spin";
    d.deadline = 50ms;
    auto timed = sched.submit(
        d, [&](eng::job_context& ctx) -> std::shared_ptr<void const> {
          fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
          en::bsp_loop(
              std::move(f),
              [&](fr::sparse_frontier<vertex_t> in, std::size_t) {
                ++supersteps;
                std::atomic<long long> sum{0};
                pool.run_blocked(4096, [&sum](std::size_t lo, std::size_t hi) {
                  sum.fetch_add(static_cast<long long>(hi - lo));
                });
                EXPECT_EQ(sum.load(), 4096);
                std::this_thread::sleep_for(1ms);
                return in;
              },
              en::any_of{en::frontier_empty{}, ctx.stop_condition()});
          return std::make_shared<int const>(7);
        });
    EXPECT_EQ(timed->wait(), eng::job_status::deadline_expired)
        << "mode " << static_cast<int>(mode);
    EXPECT_GE(supersteps.load(), 1u);
    EXPECT_EQ(timed->result(), nullptr);

    // Cancel: same shape, stopped from outside mid-enactment.
    std::atomic<bool> entered{false};
    eng::job_desc c;
    c.algorithm = "cancellable";
    auto running = sched.submit(
        c, [&](eng::job_context& ctx) -> std::shared_ptr<void const> {
          entered.store(true, std::memory_order_release);
          fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
          en::bsp_loop(
              std::move(f),
              [&](fr::sparse_frontier<vertex_t> in, std::size_t) {
                pool.run_blocked(1024, [](std::size_t, std::size_t) {});
                std::this_thread::sleep_for(1ms);
                return in;
              },
              en::any_of{en::frontier_empty{}, ctx.stop_condition()});
          return std::make_shared<int const>(1);
        });
    while (!entered.load(std::memory_order_acquire))
      std::this_thread::sleep_for(1ms);
    running->cancel();
    EXPECT_EQ(running->wait(), eng::job_status::cancelled)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(EngineScheduler, HigherPriorityRunsFirst) {
  eng::job_scheduler sched({1, 8});
  std::atomic<bool> release{false};
  std::mutex order_mutex;
  std::vector<std::string> order;
  auto record = [&order_mutex, &order](std::string tag) {
    return [&order_mutex, &order,
            tag = std::move(tag)](eng::job_context&)
               -> std::shared_ptr<void const> {
      std::lock_guard<std::mutex> guard(order_mutex);
      order.push_back(tag);
      return nullptr;
    };
  };
  eng::job_desc blocker;
  blocker.algorithm = "blocker";
  auto b = sched.submit(blocker, [&release](eng::job_context&)
                                     -> std::shared_ptr<void const> {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(1ms);
    return nullptr;
  });
  eng::job_desc low;
  low.algorithm = "low";
  low.priority = 0;
  eng::job_desc high;
  high.algorithm = "high";
  high.priority = 5;
  auto jl = sched.submit(low, record("low"));
  auto jh = sched.submit(high, record("high"));  // submitted later, runs first
  release.store(true, std::memory_order_release);
  jl->wait();
  jh->wait();
  b->wait();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "low");
}

// Acceptance (d): admission control rejects beyond the bound instead of
// blocking or deadlocking; accepted jobs still complete.
TEST(EngineScheduler, AdmissionControlRejectsBeyondBound) {
  eng::engine_stats stats;
  eng::job_scheduler sched({/*num_runners=*/1, /*max_queued=*/2}, &stats);
  std::atomic<bool> release{false};
  std::atomic<int> completed_bodies{0};

  eng::job_desc blocker;
  blocker.algorithm = "blocker";
  auto b = sched.submit(blocker, [&release, &completed_bodies](
                                     eng::job_context&)
                                     -> std::shared_ptr<void const> {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(1ms);
    ++completed_bodies;
    return nullptr;
  });
  // The blocker may occupy the single runner or still sit in the queue;
  // either way at most max_queued jobs wait.  Saturate deterministically:
  std::vector<eng::job_ptr> accepted{b};
  std::vector<eng::job_ptr> rejected;
  eng::job_desc d;
  d.algorithm = "filler";
  for (int i = 0; i < 6; ++i) {
    auto j = sched.submit(d, [&completed_bodies](eng::job_context&)
                                 -> std::shared_ptr<void const> {
      ++completed_bodies;
      return nullptr;
    });
    if (j->status() == eng::job_status::rejected)
      rejected.push_back(j);
    else
      accepted.push_back(j);
  }
  EXPECT_GE(rejected.size(), 3u);  // 6 fillers, ≤ 2 queue slots (+1 maybe running)
  for (auto const& j : rejected) {
    EXPECT_EQ(j->status(), eng::job_status::rejected);
    EXPECT_NE(j->error().find("admission"), std::string::npos);
  }
  release.store(true, std::memory_order_release);
  for (auto const& j : accepted)
    EXPECT_NE(j->wait(), eng::job_status::rejected);
  EXPECT_EQ(completed_bodies.load(), static_cast<int>(accepted.size()));
  auto const s = stats.snapshot();
  EXPECT_EQ(s.rejected, rejected.size());
  EXPECT_EQ(s.submitted, accepted.size());
}

TEST(EngineScheduler, ShutdownRetiresQueuedJobsAsCancelled) {
  std::atomic<bool> release{false};
  eng::job_ptr queued;
  {
    eng::job_scheduler sched({1, 8});
    eng::job_desc blocker;
    blocker.algorithm = "blocker";
    auto b = sched.submit(blocker, [&release](eng::job_context&)
                                       -> std::shared_ptr<void const> {
      while (!release.load(std::memory_order_acquire))
        std::this_thread::sleep_for(1ms);
      return nullptr;
    });
    eng::job_desc d;
    d.algorithm = "never-runs";
    queued = sched.submit(d, [](eng::job_context&)
                                 -> std::shared_ptr<void const> {
      return nullptr;
    });
    release.store(true, std::memory_order_release);
    sched.shutdown(/*run_queued=*/false);
    // Queued job retired as cancelled, not lost; submit-after-shutdown
    // rejects.
    EXPECT_EQ(queued->status(), eng::job_status::cancelled);
    auto late = sched.submit(d, [](eng::job_context&)
                                    -> std::shared_ptr<void const> {
      return nullptr;
    });
    EXPECT_EQ(late->status(), eng::job_status::rejected);
    b->wait();
  }
}

TEST(EngineScheduler, FailedJobReportsError) {
  eng::job_scheduler sched({1, 4});
  eng::job_desc d;
  d.algorithm = "thrower";
  auto j = sched.submit(d, [](eng::job_context&)
                               -> std::shared_ptr<void const> {
    throw std::runtime_error("boom");
  });
  EXPECT_EQ(j->wait(), eng::job_status::failed);
  EXPECT_EQ(j->error(), "boom");
}

// ---------------------------------------------------------------------------
// Engine facade: cache protocol, epoch invalidation, concurrency
// ---------------------------------------------------------------------------

// Acceptance (b): a repeated (graph, epoch, algo, params) query is served
// from the cache without re-enacting, bit-identical, and the engine
// counters prove no second enactment happened.
TEST(Engine, RepeatedQueryHitsCacheBitIdentical) {
  engine_t engine({/*num_runners=*/2, /*max_queued=*/16, /*cache=*/32});
  engine.registry().publish("path", path_graph(64));

  auto j1 = engine.run(sssp_desc("path", 0), sssp_job(0));
  ASSERT_EQ(j1->status(), eng::job_status::completed);
  auto j2 = engine.run(sssp_desc("path", 0), sssp_job(0));
  ASSERT_EQ(j2->status(), eng::job_status::cache_hit);

  auto const r1 = j1->result_as<sssp_res>();
  auto const r2 = j2->result_as<sssp_res>();
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r1.get(), r2.get());  // the same immutable object...
  EXPECT_EQ(r1->distances, r2->distances);  // ...hence bit-identical

  auto const s = engine.stats();
  EXPECT_EQ(s.jobs_enacted, 1u);  // the second query never enacted
  EXPECT_EQ(s.cache_hits, 1u);
  // Two counted misses for one enactment: the submit-time probe and the
  // dequeue-time duplicate-suppression re-check both missed for j1.
  EXPECT_EQ(s.cache_misses, 2u);
  EXPECT_EQ(s.completed, 1u);

  // Different params = different cache line.
  auto j3 = engine.run(sssp_desc("path", 1), sssp_job(1));
  EXPECT_EQ(j3->status(), eng::job_status::completed);
  EXPECT_EQ(engine.stats().jobs_enacted, 2u);
}

// Acceptance (c): publishing a new epoch invalidates that graph's cache
// entries only; in-flight jobs pinned to the old epoch finish correctly.
TEST(Engine, EpochPublishInvalidatesOnlyThatGraph) {
  engine_t engine({2, 16, 32});
  engine.registry().publish("a", path_graph(16));
  engine.registry().publish("b", path_graph(16));

  auto a1 = engine.run(sssp_desc("a", 0), sssp_job(0));
  auto b1 = engine.run(sssp_desc("b", 0), sssp_job(0));
  ASSERT_EQ(a1->status(), eng::job_status::completed);
  ASSERT_EQ(b1->status(), eng::job_status::completed);
  EXPECT_EQ(a1->graph_epoch(), 1u);

  // New epoch of "a": shortcut edge 0 -> 15 makes dist(15) == 1.
  engine.registry().publish("a", path_graph(16, /*shortcut=*/true));

  auto b2 = engine.run(sssp_desc("b", 0), sssp_job(0));
  EXPECT_EQ(b2->status(), eng::job_status::cache_hit);  // untouched graph

  auto a2 = engine.run(sssp_desc("a", 0), sssp_job(0));
  EXPECT_EQ(a2->status(), eng::job_status::completed);  // re-enacted
  EXPECT_EQ(a2->graph_epoch(), 2u);
  auto const old_d = a1->result_as<sssp_res>();
  auto const new_d = a2->result_as<sssp_res>();
  EXPECT_EQ(old_d->distances[15], 15.0f);  // epoch-1 path distance
  EXPECT_EQ(new_d->distances[15], 1.0f);   // epoch-2 shortcut distance

  auto const s = engine.stats();
  EXPECT_GE(s.cache_invalidations, 1u);
}

TEST(Engine, InFlightJobOnOldEpochFinishesCorrectly) {
  engine_t engine({2, 16, 32});
  engine.registry().publish("g", path_graph(16));

  std::atomic<bool> started{false};
  std::atomic<bool> proceed{false};
  // A job that pins epoch 1, then parks until we publish epoch 2 under it.
  auto slow = engine.submit(
      sssp_desc("g", 0),
      [&started, &proceed](gr::graph_csr const& g, eng::job_context&)
          -> std::shared_ptr<void const> {
        started.store(true, std::memory_order_release);
        while (!proceed.load(std::memory_order_acquire))
          std::this_thread::sleep_for(1ms);
        return std::make_shared<sssp_res const>(alg::sssp(exec::seq, g, 0));
      });
  while (!started.load(std::memory_order_acquire))
    std::this_thread::sleep_for(1ms);

  engine.registry().publish("g", path_graph(16, /*shortcut=*/true));
  proceed.store(true, std::memory_order_release);

  ASSERT_EQ(slow->wait(), eng::job_status::completed);
  EXPECT_EQ(slow->graph_epoch(), 1u);
  // Ran against the *pinned* epoch-1 snapshot: no shortcut.
  EXPECT_EQ(slow->result_as<sssp_res>()->distances[15], 15.0f);

  // Its late cache insert carries epoch 1 in the key, so an epoch-2 query
  // cannot be served by it.
  auto fresh = engine.run(sssp_desc("g", 0), sssp_job(0));
  ASSERT_EQ(fresh->status(), eng::job_status::completed);
  EXPECT_EQ(fresh->result_as<sssp_res>()->distances[15], 1.0f);
}

TEST(Engine, UnknownGraphRejectsWithReason) {
  engine_t engine({1, 4, 8});
  auto j = engine.submit(sssp_desc("nope", 0), sssp_job(0));
  EXPECT_EQ(j->status(), eng::job_status::rejected);
  EXPECT_NE(j->error().find("unknown graph"), std::string::npos);
  EXPECT_EQ(engine.stats().rejected, 1u);
}

TEST(Engine, DeadlineTruncatedResultIsNeverCached) {
  engine_t engine({1, 4, 8});
  engine.registry().publish("g", path_graph(8));
  auto d = sssp_desc("g", 0);
  d.algorithm = "spin";
  d.deadline = 30ms;
  auto j = engine.run(d, [](gr::graph_csr const&, eng::job_context& ctx)
                             -> std::shared_ptr<void const> {
    fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{0});
    en::bsp_loop(
        std::move(f),
        [](fr::sparse_frontier<vertex_t> in, std::size_t) {
          std::this_thread::sleep_for(2ms);
          return in;
        },
        en::any_of{en::frontier_empty{}, ctx.stop_condition()});
    return std::make_shared<int const>(1);  // partial answer
  });
  EXPECT_EQ(j->status(), eng::job_status::deadline_expired);
  EXPECT_EQ(engine.cache().size(), 0u);

  // The same key re-enacts (no stale partial result in the cache).
  auto again = engine.run(d, [](gr::graph_csr const&, eng::job_context&)
                                 -> std::shared_ptr<void const> {
    return std::make_shared<int const>(2);
  });
  EXPECT_EQ(again->status(), eng::job_status::completed);
}

TEST(Engine, ConcurrentMixedTrafficAllRetireDeterministically) {
  engine_t engine({4, 128, 64});
  engine.registry().publish("g", path_graph(128));
  gr::graph_csr const oracle_graph = path_graph(128);

  std::vector<eng::job_ptr> jobs;
  for (int round = 0; round < 3; ++round) {
    for (vertex_t src = 0; src < 16; ++src) {
      jobs.push_back(engine.submit(sssp_desc("g", src), sssp_job(src)));
      eng::job_desc bd = sssp_desc("g", src);
      bd.algorithm = "bfs";
      jobs.push_back(engine.submit(
          bd, [src](gr::graph_csr const& g, eng::job_context&)
                  -> std::shared_ptr<void const> {
            return std::make_shared<alg::bfs_result<vertex_t> const>(
                alg::bfs_serial(g, src));
          }));
    }
  }
  for (auto const& j : jobs) {
    auto const s = j->wait();
    ASSERT_TRUE(s == eng::job_status::completed ||
                s == eng::job_status::cache_hit)
        << eng::to_string(s);
  }
  // Spot-check determinism across cache/enactment paths.
  auto const d0 = jobs[0]->result_as<sssp_res>();
  auto const oracle = alg::dijkstra(oracle_graph, 0);
  EXPECT_EQ(d0->distances, oracle.distances);
  auto const s = engine.stats();
  // 32 distinct (algo, src) keys over 3 rounds: at most 32 enactments
  // (racing duplicates of round 1 may both enact; later rounds must hit).
  EXPECT_GE(s.cache_hits, 32u);
  EXPECT_EQ(s.failed, 0u);
}

TEST(Engine, RecordTraceTagsJobScope) {
  engine_t engine({1, 4, 8});
  engine.registry().publish("g", path_graph(32));
  auto d = sssp_desc("g", 5);
  d.record_trace = true;
  d.use_cache = false;
  auto j = engine.run(d, [](gr::graph_csr const& g, eng::job_context&)
                             -> std::shared_ptr<void const> {
    return std::make_shared<sssp_res const>(
        alg::sssp(exec::seq, g, 5));
  });
  ASSERT_EQ(j->status(), eng::job_status::completed);
  if (essentials::telemetry::compiled_in) {
    EXPECT_EQ(j->trace().job_id, j->id());
    EXPECT_EQ(j->trace().job_tag, "sssp(src=5)");
    EXPECT_EQ(j->trace().graph_epoch, 1u);
    EXPECT_GT(j->trace().num_supersteps(), 0u);
    std::ostringstream os;
    essentials::telemetry::write_json(j->trace(), os);
    EXPECT_NE(os.str().find("\"job_id\":"), std::string::npos);
    EXPECT_NE(os.str().find("\"job_tag\":\"sssp(src=5)\""),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Engine metrics JSON
// ---------------------------------------------------------------------------

TEST(EngineStats, JsonExportContainsEveryCounter) {
  eng::engine_stats stats;
  stats.on_submitted();
  stats.on_completed();
  stats.on_cache_hit();
  stats.on_cache_miss();
  stats.add_queue_wait_ms(1.5);
  stats.add_run_ms(2.5);
  auto const s = stats.snapshot();
  EXPECT_EQ(s.retired(), 1u);
  EXPECT_DOUBLE_EQ(s.hit_ratio(), 0.5);
  std::ostringstream os;
  eng::write_json(s, os);
  auto const json = os.str();
  for (char const* field :
       {"\"engine_stats_version\":", "\"submitted\":1", "\"completed\":1",
        "\"cache_hits\":1", "\"cache_misses\":1", "\"hit_ratio\":0.5",
        "\"queue_ms_total\":", "\"run_ms_total\":", "\"rejected\":0",
        "\"deadline_expired\":0", "\"cancelled\":0"})
    EXPECT_NE(json.find(field), std::string::npos) << field;
}

// ---------------------------------------------------------------------------
// Snapshot under concurrent mutation (the epoch publication contract)
// ---------------------------------------------------------------------------

// Satellite: snapshot-while-inserting stress.  Writers insert edges whose
// weight encodes (src, dst); concurrent publishers snapshot epochs.  Every
// published epoch must be internally consistent: valid vertex ids, every
// edge's weight matching its endpoints (no torn bucket reads), epochs
// strictly increasing.  Runs under TSAN in CI.
TEST(EngineDynamicSnapshot, SnapshotWhileInsertingIsConsistent) {
  constexpr vertex_t kN = 128;
  constexpr int kWriters = 4;
  constexpr int kEdgesPerWriter = 600;
  gr::dynamic_graph_t<> dyn(kN);

  auto const encode = [](vertex_t s, vertex_t d) {
    return static_cast<weight_t>(s * kN + d);
  };

  std::atomic<bool> writers_done{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&dyn, &encode, w] {
      std::uint64_t state = 0x9e3779b97f4a7c15ull * (w + 1);
      for (int i = 0; i < kEdgesPerWriter; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        auto const s = static_cast<vertex_t>((state >> 33) % kN);
        auto const d = static_cast<vertex_t>((state >> 13) % kN);
        dyn.add_edge(s, d, encode(s, d));
      }
    });
  }

  std::vector<std::pair<std::shared_ptr<gr::graph_csr const>, std::uint64_t>>
      epochs;
  std::thread publisher([&dyn, &writers_done, &epochs] {
    // do-while: under a sanitizer's thread-start skew the writers can all
    // finish before this thread's first check — publish at least once so
    // the test always exercises a mid-ingest epoch.
    do {
      epochs.push_back(dyn.publish_epoch<gr::graph_csr>());
      std::this_thread::sleep_for(1ms);
    } while (!writers_done.load(std::memory_order_acquire));
  });

  for (auto& t : writers)
    t.join();
  writers_done.store(true, std::memory_order_release);
  publisher.join();
  epochs.push_back(dyn.publish_epoch<gr::graph_csr>());  // final epoch

  ASSERT_GE(epochs.size(), 2u);
  std::uint64_t last_epoch = 0;
  std::size_t last_edges = 0;
  for (auto const& [snap, epoch] : epochs) {
    EXPECT_GT(epoch, last_epoch);  // strictly increasing
    last_epoch = epoch;
    EXPECT_EQ(snap->get_num_vertices(), kN);
    // Internal consistency: every edge's weight encodes its endpoints —
    // a torn bucket read would break this.
    for (vertex_t v = 0; v < snap->get_num_vertices(); ++v) {
      for (auto const e : snap->get_edges(v)) {
        auto const dst = snap->get_dest_vertex(e);
        ASSERT_GE(dst, 0);
        ASSERT_LT(dst, kN);
        EXPECT_EQ(snap->get_edge_weight(e), encode(v, dst));
      }
    }
    last_edges = static_cast<std::size_t>(snap->get_num_edges());
  }
  // The final (quiescent) epoch holds exactly the surviving edge set.
  EXPECT_EQ(last_edges, dyn.num_edges());
}

// The engine end-to-end under churn: ingest publishes epochs through the
// registry while query traffic runs — the "serving counterpart" scenario.
TEST(EngineDynamicSnapshot, QueriesDuringIngestAlwaysSeeConsistentEpochs) {
  constexpr vertex_t kN = 64;
  engine_t engine({2, 64, 16});
  gr::dynamic_graph_t<> dyn(kN);
  for (vertex_t v = 0; v + 1 < kN; ++v)
    dyn.add_edge(v, v + 1, 1.0f);
  engine.registry().publish("stream", dyn);

  std::atomic<bool> stop{false};
  std::thread ingest([&dyn, &engine, &stop] {
    std::uint64_t state = 42;
    while (!stop.load(std::memory_order_acquire)) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      auto const s = static_cast<vertex_t>((state >> 33) % kN);
      auto const d = static_cast<vertex_t>((state >> 13) % kN);
      dyn.add_edge(s, d, 1.0f);
      engine.registry().publish("stream", dyn);
      std::this_thread::sleep_for(2ms);
    }
  });

  std::vector<eng::job_ptr> jobs;
  for (int i = 0; i < 40; ++i) {
    jobs.push_back(
        engine.submit(sssp_desc("stream", 0), sssp_job(0)));
    std::this_thread::sleep_for(1ms);
  }
  for (auto const& j : jobs) {
    auto const s = j->wait();
    ASSERT_TRUE(s == eng::job_status::completed ||
                s == eng::job_status::cache_hit)
        << eng::to_string(s);
    // The path spine guarantees reachability in every epoch.
    EXPECT_EQ(j->result_as<sssp_res>()->distances[kN - 1] <= kN - 1, true);
  }
  stop.store(true, std::memory_order_release);
  ingest.join();
  EXPECT_EQ(engine.stats().failed, 0u);
}

// ---------------------------------------------------------------------------
// Engine-stats JSON schema golden test
// ---------------------------------------------------------------------------

// Pins every key of the engine_stats export, in order.  The export is a
// monitoring contract (docs/API.md "Engine metrics"): adding a field means
// bumping engine_stats_version AND updating this list deliberately —
// accidental schema drift fails here first.
TEST(EngineStatsSchema, GoldenKeyListAndVersion) {
  eng::engine_stats stats;
  std::ostringstream os;
  eng::write_json(stats.snapshot(), os);
  std::string const json = os.str();

  char const* const expected[] = {
      // v1-v2 core lifecycle + cache:
      "engine_stats_version", "submitted", "rejected", "completed", "failed",
      "cancelled", "deadline_expired", "cache_hits", "cache_misses",
      "cache_evictions", "cache_invalidations", "cache_demotions",
      "warm_start_hits", "delta_fallbacks", "jobs_enacted",
      // v3 batching:
      "batches", "batched_jobs", "edge_passes_saved",
      // v4 residual engine:
      "standing_queries", "residual_injections", "residual_reconverges",
      "residual_fallbacks", "residual_edges_touched",
      "residual_edges_cold_estimate",
      // v5 storage tier:
      "tier_demotions", "tier_promotions", "tier_resident_bytes",
      "tier_spilled_bytes",
      "residual_pass_ratio",
      // derived + totals:
      "avg_batch_size", "hit_ratio", "warm_ratio", "queue_ms_total",
      "run_ms_total",
  };
  std::size_t pos = 0;
  for (char const* key : expected) {
    auto const at = json.find("\"" + std::string(key) + "\":", pos);
    ASSERT_NE(at, std::string::npos) << "missing or out-of-order key: " << key;
    pos = at + 1;
  }
  EXPECT_NE(json.find("\"engine_stats_version\":5"), std::string::npos);

  // Exactly the pinned keys — a new field must join the golden list.
  std::size_t keys = 0;
  for (std::size_t i = json.find("\":", 0); i != std::string::npos;
       i = json.find("\":", i + 1))
    ++keys;
  EXPECT_EQ(keys, sizeof(expected) / sizeof(expected[0]));
}

TEST(EngineStatsSchema, ResidualCountersRollUp) {
  eng::engine_stats stats;
  stats.on_standing_query();
  stats.on_residual_injection(3);
  stats.on_residual_injection(2);
  stats.on_residual_reconverge(/*edges_touched=*/10, /*edges_cold=*/1000);
  stats.on_residual_fallback();
  auto const s = stats.snapshot();
  EXPECT_EQ(s.standing_queries, 1u);
  EXPECT_EQ(s.residual_injections, 5u);
  EXPECT_EQ(s.residual_reconverges, 1u);
  EXPECT_EQ(s.residual_fallbacks, 1u);
  EXPECT_EQ(s.residual_edges_touched, 10u);
  EXPECT_EQ(s.residual_edges_cold_estimate, 1000u);
  EXPECT_DOUBLE_EQ(s.residual_pass_ratio(), 0.01);
}
