// Tests for the asynchronous message-passing SSSP (Safra termination
// detection) — the joint "asynchronous ∧ message passing" Table I cell.
#include <gtest/gtest.h>

#include "algorithms/sssp_async_mp.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;
using e::vertex_t;

namespace {

g::graph_csr make(std::string const& family, std::uint64_t seed) {
  e::generators::weight_options w{0.5f, 4.0f};
  g::coo_t<> coo;
  if (family == "rmat") {
    e::generators::rmat_options opt;
    opt.scale = 9;
    opt.edge_factor = 8;
    opt.seed = seed;
    opt.weights = w;
    coo = e::generators::rmat(opt);
  } else if (family == "grid") {
    coo = e::generators::grid_2d(14, 15, w, seed);
  } else if (family == "chain") {
    coo = e::generators::chain(200, w, seed);
  } else {
    coo = e::generators::erdos_renyi(300, 2400, w, seed);
  }
  g::remove_self_loops(coo);
  return g::from_coo<g::graph_csr>(std::move(coo),
                                   g::duplicate_policy::keep_min);
}

void expect_matches_dijkstra(g::graph_csr const& gr, vertex_t source,
                             int ranks, std::string const& label) {
  auto const want = e::algorithms::dijkstra(gr, source).distances;
  auto const got =
      e::algorithms::sssp_async_message_passing(gr, source, ranks).distances;
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t v = 0; v < want.size(); ++v) {
    if (want[v] == e::infinity_v<float>)
      EXPECT_EQ(got[v], want[v]) << label << " v" << v;
    else
      EXPECT_NEAR(got[v], want[v], 1e-3f) << label << " v" << v;
  }
}

}  // namespace

TEST(AsyncMpSssp, MatchesDijkstraAcrossFamilies) {
  for (auto const family : {"rmat", "grid", "chain", "er"})
    expect_matches_dijkstra(make(family, 3), 0, 3, family);
}

TEST(AsyncMpSssp, VariousRankCounts) {
  auto const gr = make("er", 11);
  for (int ranks : {1, 2, 4, 6})
    expect_matches_dijkstra(gr, 0, ranks, "ranks=" + std::to_string(ranks));
}

TEST(AsyncMpSssp, TerminatesWhenSourceIsIsolated) {
  // The hardest termination case: no work at all beyond the seed.  Safra
  // must still conclude quiescence promptly on every rank count.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 8;
  coo.push_back(3, 4, 1.f);  // source 0 is isolated
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  for (int ranks : {1, 2, 5}) {
    auto const got =
        e::algorithms::sssp_async_message_passing(gr, 0, ranks).distances;
    EXPECT_FLOAT_EQ(got[0], 0.0f);
    for (std::size_t v = 1; v < 8; ++v)
      EXPECT_EQ(got[v], e::infinity_v<float>) << v;
  }
}

TEST(AsyncMpSssp, HighReRelaxationPressure) {
  // Descending weights along many paths force repeated improvements —
  // exactly the in-flight-message pattern Safra's counting must survive.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 40;
  for (vertex_t u = 0; u < 39; ++u)
    for (vertex_t v = u + 1; v < std::min<vertex_t>(u + 5, 40); ++v)
      coo.push_back(u, v, static_cast<float>(40 - u));
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  expect_matches_dijkstra(gr, 0, 4, "re-relaxation");
}

TEST(AsyncMpSssp, RepeatedRunsAreStable) {
  // Nondeterministic interleavings, deterministic fixed point.
  auto const gr = make("rmat", 7);
  auto const first =
      e::algorithms::sssp_async_message_passing(gr, 0, 4).distances;
  for (int run = 0; run < 3; ++run) {
    auto const again =
        e::algorithms::sssp_async_message_passing(gr, 0, 4).distances;
    for (std::size_t v = 0; v < first.size(); ++v) {
      if (first[v] == e::infinity_v<float>)
        EXPECT_EQ(again[v], first[v]) << v;
      else
        EXPECT_NEAR(again[v], first[v], 1e-3f) << v;
    }
  }
}

TEST(AsyncMpSssp, PartitionDerivedOwnership) {
  auto const gr = make("grid", 5);
  auto const p = e::partition::partition_bfs_grow(gr.csr(), 3, 2);
  auto const want = e::algorithms::dijkstra(gr, 0).distances;
  auto const got = e::algorithms::sssp_async_message_passing(
                       gr, 0, 3, [&p](vertex_t v) { return p.part_of(v); })
                       .distances;
  for (std::size_t v = 0; v < want.size(); ++v)
    EXPECT_NEAR(got[v], want[v], 1e-3f) << v;
}
