// Stress tests: larger workloads and heavier contention than the unit
// suites — each still bounded to a couple of seconds so CI stays fast.
// These exist to shake out races and termination bugs that small inputs
// cannot expose (queue quiescence under churn, frontier appends under
// contention, async SSSP on a graph with millions of relaxations).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "algorithms/bfs.hpp"
#include "algorithms/sssp.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;
using e::vertex_t;

TEST(Stress, AsyncSsspOnLargeRmatMatchesDijkstra) {
  e::generators::rmat_options opt;
  opt.scale = 13;
  opt.edge_factor = 16;
  opt.weights = {0.5f, 4.0f};
  auto coo = e::generators::rmat(opt);
  g::remove_self_loops(coo);
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo),
                                            g::duplicate_policy::keep_min);
  auto const want = e::algorithms::dijkstra(gr, 0).distances;
  auto const got = e::algorithms::sssp_async(gr, 0, 8).distances;
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    if (want[v] == e::infinity_v<float>)
      EXPECT_EQ(got[v], want[v]) << v;
    else
      EXPECT_NEAR(got[v], want[v], 1e-2f) << v;
  }
}

TEST(Stress, MpmcQueueHeavyChurn) {
  // 8 consumers, work items that fan out 3 ways down to a depth cap —
  // ~3^9 ≈ 20k items with constant push/pop churn.
  e::parallel::mpmc_queue<int> q;
  q.push(0);
  std::atomic<long long> processed{0};
  auto const consumer = [&] {
    int depth;
    while (q.pop(depth)) {
      if (depth < 9) {
        q.push(depth + 1);
        q.push(depth + 1);
        q.push(depth + 1);
      }
      q.done_processing();
      processed.fetch_add(1);
    }
  };
  std::vector<std::thread> crew;
  for (int i = 0; i < 8; ++i)
    crew.emplace_back(consumer);
  for (auto& t : crew)
    t.join();
  // Total nodes of a full ternary tree of depth 9: (3^10 - 1) / 2 = 29524.
  EXPECT_EQ(processed.load(), (59049LL - 1) / 2);
  EXPECT_TRUE(q.is_quiescent());
}

TEST(Stress, SparseFrontierContendedAppends) {
  e::frontier::sparse_frontier<vertex_t> f;
  e::parallel::thread_pool pool(8);
  constexpr std::size_t kPerLane = 50'000;
  pool.run_blocked(8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t lane = lo; lane < hi; ++lane) {
      std::vector<vertex_t> local;
      for (std::size_t i = 0; i < kPerLane; ++i) {
        if (i % 64 == 0) {
          f.append_bulk(local.data(), local.size());
          local.clear();
        }
        local.push_back(static_cast<vertex_t>(lane * kPerLane + i));
      }
      f.append_bulk(local.data(), local.size());
    }
  }, 1);
  EXPECT_EQ(f.size(), 8 * kPerLane);
  auto v = f.to_vector();
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  EXPECT_EQ(v.size(), 8 * kPerLane);  // no element lost or duplicated
}

TEST(Stress, DenseFrontierSaturation) {
  constexpr std::size_t kUniverse = 1u << 20;
  e::frontier::dense_frontier<vertex_t> f(kUniverse);
  e::parallel::thread_pool pool(8);
  // Every lane sets every bit: idempotence under maximal contention.
  pool.run_blocked(8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t lane = lo; lane < hi; ++lane)
      for (std::size_t v = lane; v < kUniverse; v += 1)
        f.add_vertex(static_cast<vertex_t>(v));
  }, 1);
  EXPECT_EQ(f.size(), kUniverse);
}

TEST(Stress, BspAndAsyncBfsAgreeOnDeepGraph) {
  // 40k-vertex chain with shortcut chords: deep BFS tree + re-relaxation
  // pressure on the async variant.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 40'000;
  for (vertex_t v = 0; v + 1 < 40'000; ++v)
    coo.push_back(v, v + 1, 1.f);
  for (vertex_t v = 0; v + 100 < 40'000; v += 97)
    coo.push_back(v, v + 100, 1.f);
  auto const gr = g::from_coo<g::graph_push_pull>(std::move(coo));
  auto const serial = e::algorithms::bfs_serial(gr, 0).depths;
  EXPECT_EQ(e::algorithms::bfs(e::execution::par, gr, 0).depths, serial);
  EXPECT_EQ(e::algorithms::bfs_async(gr, 0, 8).depths, serial);
}

TEST(Stress, ManyConcurrentCommunicatorWorlds) {
  // Several communicator worlds running collectives simultaneously must
  // not interfere (no shared globals).
  std::vector<std::thread> worlds;
  std::atomic<int> failures{0};
  for (int w = 0; w < 4; ++w) {
    worlds.emplace_back([w, &failures] {
      e::mpsim::communicator::run(3, [&](e::mpsim::communicator& comm,
                                         int rank) {
        for (int round = 0; round < 50; ++round) {
          auto const sum = comm.all_reduce_sum(
              rank, static_cast<std::uint64_t>(w + 1));
          if (sum != 3u * static_cast<std::uint64_t>(w + 1))
            failures.fetch_add(1);
          comm.barrier();
        }
      });
    });
  }
  for (auto& t : worlds)
    t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Stress, RepeatedPoolConstructionIsCheapEnough) {
  // Guards against descriptor/thread leaks in pool lifecycle.
  for (int i = 0; i < 50; ++i) {
    e::parallel::thread_pool pool(4);
    std::atomic<int> n{0};
    pool.run_blocked(100, [&n](std::size_t lo, std::size_t hi) {
      n.fetch_add(static_cast<int>(hi - lo));
    });
    ASSERT_EQ(n.load(), 100);
  }
}
