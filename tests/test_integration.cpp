// Integration tests: multi-module pipelines that mirror how a downstream
// user strings the framework together — IO -> build -> views -> operators
// -> enactor -> algorithm -> verify; plus the Table I cells as assertions
// (the bench prints them, these tests gate them).
#include <gtest/gtest.h>

#include <sstream>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "essentials.hpp"

namespace e = essentials;
using e::vertex_t;

namespace {

bool near(std::vector<float> const& a, std::vector<float> const& b,
          float tol = 1e-3f) {
  if (a.size() != b.size())
    return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == e::infinity_v<float> || b[i] == e::infinity_v<float>) {
      if (a[i] != b[i])
        return false;
    } else if (std::abs(a[i] - b[i]) > tol) {
      return false;
    }
  }
  return true;
}

}  // namespace

// --- end-to-end pipelines -----------------------------------------------------

TEST(Integration, MatrixMarketToSsspPipeline) {
  // Generate -> serialize to .mtx -> parse back -> build graph -> SSSP.
  auto coo = e::generators::erdos_renyi(200, 1600, {1.0f, 3.0f}, 4);
  e::graph::remove_self_loops(coo);
  e::graph::sort_and_deduplicate(coo, e::graph::duplicate_policy::keep_min);

  std::stringstream mtx;
  e::io::write_matrix_market(mtx, coo);
  auto const parsed = e::io::read_matrix_market(mtx);
  auto const g = e::graph::from_coo<e::graph::graph_csr>(
      parsed, e::graph::duplicate_policy::keep_min);

  auto const got = e::algorithms::sssp(e::execution::par, g, 0).distances;
  auto const want = e::algorithms::dijkstra(g, 0).distances;
  EXPECT_TRUE(near(got, want));
}

TEST(Integration, DimacsRoadPipeline) {
  // DIMACS .gr road snippet -> SSSP -> route distances.
  auto grid = e::generators::grid_2d(10, 10, {1.0f, 9.0f}, 8);
  for (auto& w : grid.values)
    w = static_cast<float>(static_cast<long long>(w));
  std::stringstream gr;
  e::io::write_dimacs(gr, grid);
  auto const parsed = e::io::read_dimacs(gr);
  auto const g = e::graph::from_coo<e::graph::graph_csr>(parsed);
  auto const r = e::algorithms::sssp(e::execution::par, g, 0);
  auto const oracle = e::algorithms::dijkstra(g, 0);
  EXPECT_TRUE(near(r.distances, oracle.distances));
}

TEST(Integration, BinarySnapshotPreservesAlgorithmResults) {
  e::generators::rmat_options opt;
  opt.scale = 8;
  opt.edge_factor = 8;
  opt.weights = {1.0f, 2.0f};
  auto coo = e::generators::rmat(opt);
  e::graph::remove_self_loops(coo);
  e::graph::sort_and_deduplicate(coo, e::graph::duplicate_policy::keep_min);
  auto const csr = e::graph::build_csr(coo);

  std::stringstream bin(std::ios::in | std::ios::out | std::ios::binary);
  e::io::write_binary_csr(bin, csr);
  auto const reloaded = e::io::read_binary_csr(bin);

  e::graph::graph_csr a, b;
  a.set_csr(csr);
  b.set_csr(reloaded);
  EXPECT_TRUE(near(e::algorithms::sssp(e::execution::par, a, 0).distances,
                   e::algorithms::sssp(e::execution::par, b, 0).distances,
                   0.0f));
}

TEST(Integration, HandWrittenOperatorPipeline) {
  // A user-composed traversal: advance -> filter -> compute, inside a
  // bsp_loop with a composed convergence condition.  Computes the set of
  // vertices within 3 hops of the source having even ids.
  auto coo = e::generators::watts_strogatz(300, 3, 0.1, {}, 6);
  e::graph::remove_self_loops(coo);
  auto const g = e::graph::from_coo<e::graph::graph_csr>(std::move(coo));

  std::vector<char> seen(static_cast<std::size_t>(g.get_num_vertices()), 0);
  seen[0] = 1;
  std::vector<char> out_flags(seen.size(), 0);
  char* const seen_p = seen.data();

  e::frontier::sparse_frontier<vertex_t> f;
  f.add_vertex(0);
  auto const stats = e::enactor::bsp_loop(
      std::move(f),
      [&](e::frontier::sparse_frontier<vertex_t> in, std::size_t) {
        auto next = e::operators::neighbors_expand(
            e::execution::par, g, in,
            [seen_p](vertex_t, vertex_t dst, e::edge_t, e::weight_t) {
              return e::atomic::exchange(&seen_p[dst], char{1}) == 0;
            });
        auto const evens = e::operators::filter(
            e::execution::par, next, [](vertex_t v) { return v % 2 == 0; });
        e::operators::compute(e::execution::par, evens, [&out_flags](vertex_t v) {
          out_flags[static_cast<std::size_t>(v)] = 1;
        });
        return next;
      },
      e::enactor::either{e::enactor::frontier_empty{},
                         e::enactor::max_iterations{3}});
  EXPECT_LE(stats.iterations, 3u);

  // Oracle: serial BFS to depth 3.
  auto const depths = e::algorithms::bfs_serial(g, 0).depths;
  for (vertex_t v = 1; v < g.get_num_vertices(); ++v) {
    bool const expected =
        depths[static_cast<std::size_t>(v)] != -1 &&
        depths[static_cast<std::size_t>(v)] <= 3 && v % 2 == 0;
    EXPECT_EQ(out_flags[static_cast<std::size_t>(v)] != 0, expected)
        << "vertex " << v << " depth " << depths[static_cast<std::size_t>(v)];
  }
}

// --- Table I cells as assertions -------------------------------------------------

class TableOneCells : public ::testing::Test {
 protected:
  static e::graph::graph_push_pull const& graph() {
    static auto const g = [] {
      e::generators::rmat_options opt;
      opt.scale = 9;
      opt.edge_factor = 8;
      opt.weights = {1.0f, 4.0f};
      auto coo = e::generators::rmat(opt);
      e::graph::remove_self_loops(coo);
      return e::graph::from_coo<e::graph::graph_push_pull>(
          std::move(coo), e::graph::duplicate_policy::keep_min);
    }();
    return g;
  }
  static std::vector<float> const& oracle() {
    static auto const d = e::algorithms::dijkstra(graph(), 0).distances;
    return d;
  }
};

TEST_F(TableOneCells, TimingBulkSynchronous) {
  EXPECT_TRUE(near(
      e::algorithms::sssp(e::execution::par, graph(), 0).distances, oracle()));
}

TEST_F(TableOneCells, TimingAsynchronous) {
  EXPECT_TRUE(near(e::algorithms::sssp_async(graph(), 0, 4).distances,
                   oracle()));
}

TEST_F(TableOneCells, CommunicationSharedMemory) {
  EXPECT_TRUE(near(
      e::algorithms::sssp_pull(e::execution::par, graph(), 0).distances,
      oracle()));
}

TEST_F(TableOneCells, CommunicationMessagePassing) {
  EXPECT_TRUE(near(
      e::algorithms::sssp_message_passing(graph(), 0, 4).distances, oracle()));
}

TEST_F(TableOneCells, ExecutionPushVsPull) {
  auto const serial = e::algorithms::bfs_serial(graph(), 0).depths;
  EXPECT_EQ(e::algorithms::bfs(e::execution::par, graph(), 0).depths, serial);
  EXPECT_EQ(e::algorithms::bfs_pull(e::execution::par, graph(), 0).depths,
            serial);
}

TEST_F(TableOneCells, PartitioningRandomAndMetisLike) {
  for (bool metis_like : {false, true}) {
    auto const p =
        metis_like
            ? e::partition::partition_bfs_grow(graph().csr(), 4, 1)
            : e::partition::partition_random<vertex_t>(
                  graph().get_num_vertices(), 4, 1);
    e::partition::partitioned_graph_t<> pg(graph().csr(), p);
    EXPECT_TRUE(near(
        e::algorithms::sssp(e::execution::par, pg, 0).distances, oracle()))
        << (metis_like ? "bfs-grow" : "random");
  }
}

// --- cross-module consistency ------------------------------------------------------

TEST(Integration, PagerankOrderIsDegreeCorrelatedOnStar) {
  // Sanity across generators + algorithms + operators: on a star the hub
  // must come first under PageRank and under plain degree.
  auto coo = e::generators::star(100);
  auto const g = e::graph::from_coo<e::graph::graph_full>(std::move(coo));
  auto const pr = e::algorithms::pagerank(e::execution::par, g);
  auto const max_rank_vertex = static_cast<vertex_t>(
      std::max_element(pr.ranks.begin(), pr.ranks.end()) - pr.ranks.begin());
  EXPECT_EQ(max_rank_vertex, 0);
}

TEST(Integration, AllFrontierRepresentationsDriveTheSameBfs) {
  // The §III-B punchline: swap the frontier representation, keep the
  // algorithm.  Sparse drives push BFS, dense drives pull BFS, the queue
  // drives async BFS; all agree with the serial oracle.
  auto coo = e::generators::erdos_renyi(400, 3200, {}, 12);
  e::graph::remove_self_loops(coo);
  auto const g = e::graph::from_coo<e::graph::graph_push_pull>(std::move(coo));
  auto const want = e::algorithms::bfs_serial(g, 0).depths;
  EXPECT_EQ(e::algorithms::bfs(e::execution::par, g, 0).depths, want);
  EXPECT_EQ(e::algorithms::bfs_pull(e::execution::par, g, 0).depths, want);
  EXPECT_EQ(e::algorithms::bfs_async(g, 0, 4).depths, want);
  EXPECT_EQ(e::algorithms::bfs_message_passing(g, 0, 3).depths, want);
}
