// Tests for the structural extensions: parallel sort, vertex reordering,
// subgraph extraction, the dynamic (mutable) graph, and random walks.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algorithms/random_walk.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;
using e::vertex_t;

// --- parallel sort -------------------------------------------------------------

TEST(ParallelSort, MatchesStdSortOnRandomData) {
  e::parallel::thread_pool pool(4);
  for (std::size_t n : {0u, 1u, 100u, 4096u, 100'000u}) {
    std::vector<int> data(n);
    e::generators::rng_t rng(n + 1);
    for (auto& d : data)
      d = static_cast<int>(rng.next_below(1'000'000));
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    e::parallel::sort(pool, data);
    EXPECT_EQ(data, expected) << "n=" << n;
  }
}

TEST(ParallelSort, CustomComparator) {
  e::parallel::thread_pool pool(3);
  std::vector<int> data(50'000);
  e::generators::rng_t rng(9);
  for (auto& d : data)
    d = static_cast<int>(rng.next_below(1000));
  e::parallel::sort(pool, data, std::greater<int>{});
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end(), std::greater<int>{}));
}

TEST(ParallelSort, AlreadySortedAndReversed) {
  e::parallel::thread_pool pool(4);
  std::vector<int> inc(50'000);
  std::iota(inc.begin(), inc.end(), 0);
  auto dec = inc;
  std::reverse(dec.begin(), dec.end());
  auto const want = inc;
  e::parallel::sort(pool, inc);
  e::parallel::sort(pool, dec);
  EXPECT_EQ(inc, want);
  EXPECT_EQ(dec, want);
}

TEST(ParallelSort, PairsSortLexicographically) {
  e::parallel::thread_pool pool(4);
  std::vector<std::pair<int, int>> data(30'000);
  e::generators::rng_t rng(2);
  for (auto& d : data)
    d = {static_cast<int>(rng.next_below(100)),
         static_cast<int>(rng.next_below(100))};
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  e::parallel::sort(pool, data);
  EXPECT_EQ(data, expected);
}

// --- reorder ---------------------------------------------------------------------

TEST(Reorder, DegreeOrderPutsHubFirst) {
  auto coo = e::generators::star(100);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  auto const perm = g::order_by_degree(csr);
  EXPECT_EQ(perm[0], 0);  // hub keeps position 0 (it has max degree)
}

TEST(Reorder, PermutationIsABijection) {
  e::generators::rmat_options opt;
  opt.scale = 8;
  opt.edge_factor = 4;
  auto coo = e::generators::rmat(opt);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  for (auto const& perm : {g::order_by_degree(csr), g::order_by_bfs(csr, 0)}) {
    std::set<vertex_t> ids(perm.begin(), perm.end());
    EXPECT_EQ(ids.size(), perm.size());
    EXPECT_EQ(*ids.begin(), 0);
    EXPECT_EQ(*ids.rbegin(), static_cast<vertex_t>(perm.size() - 1));
  }
}

TEST(Reorder, InverseRoundTrips) {
  auto coo = e::generators::grid_2d(8, 8);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  auto const perm = g::order_by_bfs(csr, 5);
  auto const inv = g::permutation_inverse(perm);
  for (std::size_t v = 0; v < perm.size(); ++v)
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[v])],
              static_cast<vertex_t>(v));
}

TEST(Reorder, RelabeledGraphIsIsomorphic) {
  // SSSP distances on the reordered graph, mapped back through the
  // permutation, must equal distances on the original.
  auto coo = e::generators::erdos_renyi(200, 1600, {1.0f, 3.0f}, 7);
  g::remove_self_loops(coo);
  g::sort_and_deduplicate(coo, g::duplicate_policy::keep_min);
  auto const csr = g::build_csr(coo);
  auto const perm = g::order_by_degree(csr);

  auto relabeled = g::apply_permutation(coo, perm);
  auto const orig = g::from_coo<g::graph_csr>(std::move(coo),
                                              g::duplicate_policy::keep_min);
  auto const relab = g::from_coo<g::graph_csr>(std::move(relabeled),
                                               g::duplicate_policy::keep_min);

  auto const d_orig = e::algorithms::dijkstra(orig, 0).distances;
  auto const d_relab = e::algorithms::dijkstra(relab, perm[0]).distances;
  for (std::size_t v = 0; v < d_orig.size(); ++v)
    EXPECT_FLOAT_EQ(d_relab[static_cast<std::size_t>(perm[v])], d_orig[v])
        << v;
}

TEST(Reorder, BfsOrderImprovesEdgeSpanOnMeshes) {
  // Shuffle a grid's ids, then show BFS ordering restores locality.
  auto coo = e::generators::grid_2d(32, 32);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);

  // "Random" permutation via degree order on a shuffled key: emulate by
  // multiplying ids by a co-prime constant mod n.
  std::size_t const n = static_cast<std::size_t>(csr.num_rows);
  g::permutation_t<vertex_t> scrambled(n);
  for (std::size_t v = 0; v < n; ++v)
    scrambled[v] = static_cast<vertex_t>((v * 421) % n);  // 421 coprime to 1024
  auto scrambled_coo = g::apply_permutation(coo, scrambled);
  g::sort_and_deduplicate(scrambled_coo);
  auto const scrambled_csr = g::build_csr(scrambled_coo);

  g::permutation_t<vertex_t> identity(n);
  std::iota(identity.begin(), identity.end(), 0);
  auto const bfs_perm = g::order_by_bfs(scrambled_csr, 0);
  EXPECT_LT(g::average_edge_span(scrambled_csr, bfs_perm),
            g::average_edge_span(scrambled_csr, identity));
}

// --- subgraph ---------------------------------------------------------------------

TEST(Subgraph, InducedKeepsOnlyInternalEdges) {
  // Path 0-1-2-3-4 (directed chain); keep {1, 2, 3}.
  auto coo = e::generators::chain(5);
  auto const csr = g::build_csr(coo);
  std::vector<bool> keep{false, true, true, true, false};
  auto const sub = g::induced_subgraph(csr, keep);
  EXPECT_EQ(sub.to_global, (std::vector<vertex_t>{1, 2, 3}));
  EXPECT_EQ(sub.edges.num_edges(), 2);  // 1->2, 2->3 survive
  EXPECT_EQ(sub.to_local[0], e::invalid_vertex<vertex_t>);
  EXPECT_EQ(sub.to_local[2], 1);
}

TEST(Subgraph, EgoNetworkRadius) {
  auto coo = e::generators::chain(10);
  auto const csr = g::build_csr(coo);
  auto const ego = g::ego_network(csr, vertex_t{2}, 3);
  // Directed chain: 2 reaches 3, 4, 5 within 3 hops (plus itself).
  EXPECT_EQ(ego.to_global, (std::vector<vertex_t>{2, 3, 4, 5}));
  EXPECT_EQ(ego.edges.num_edges(), 3);
}

TEST(Subgraph, EgoZeroHopsIsJustTheCenter) {
  auto coo = e::generators::star(10);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  auto const ego = g::ego_network(csr, vertex_t{0}, 0);
  EXPECT_EQ(ego.to_global, (std::vector<vertex_t>{0}));
  EXPECT_EQ(ego.edges.num_edges(), 0);
}

TEST(Subgraph, AlgorithmsRunOnExtractedSubgraph) {
  // Extract the 2-hop ego net of a hub and run CC on it — the pipeline an
  // analyst actually runs.
  e::generators::rmat_options opt;
  opt.scale = 9;
  opt.edge_factor = 8;
  auto coo = e::generators::rmat(opt);
  g::remove_self_loops(coo);
  g::symmetrize(coo);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  auto const ego = g::ego_network(csr, vertex_t{0}, 2);
  ASSERT_GT(ego.to_global.size(), 1u);
  auto const sub_graph = g::from_coo<g::graph_full>(ego.edges);
  auto const cc = e::algorithms::connected_components(e::execution::par,
                                                      sub_graph);
  // An ego network grown along symmetric edges is connected.
  EXPECT_EQ(cc.num_components, 1u);
}

// --- dynamic graph ------------------------------------------------------------------

TEST(DynamicGraph, InsertQueryRemove) {
  g::dynamic_graph_t<> dyn(4);
  EXPECT_EQ(dyn.num_edges(), 0u);
  dyn.add_edge(0, 1, 2.0f);
  dyn.add_edge(0, 2, 3.0f);
  EXPECT_TRUE(dyn.has_edge(0, 1));
  EXPECT_FALSE(dyn.has_edge(1, 0));
  EXPECT_EQ(dyn.out_degree(0), 2);
  EXPECT_TRUE(dyn.remove_edge(0, 1));
  EXPECT_FALSE(dyn.remove_edge(0, 1));
  EXPECT_FALSE(dyn.has_edge(0, 1));
  EXPECT_EQ(dyn.num_edges(), 1u);
}

TEST(DynamicGraph, DuplicateInsertUpdatesWeight) {
  g::dynamic_graph_t<> dyn(2);
  dyn.add_edge(0, 1, 1.0f);
  dyn.add_edge(0, 1, 9.0f);
  EXPECT_EQ(dyn.num_edges(), 1u);
  auto const coo = dyn.to_coo();
  EXPECT_FLOAT_EQ(coo.values[0], 9.0f);
}

TEST(DynamicGraph, ConcurrentIngestLosesNothing) {
  g::dynamic_graph_t<> dyn(1000);
  e::parallel::thread_pool pool(4);
  pool.run_blocked(999, [&dyn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      dyn.add_edge(static_cast<vertex_t>(i), static_cast<vertex_t>(i + 1),
                   1.0f);
  });
  EXPECT_EQ(dyn.num_edges(), 999u);
}

TEST(DynamicGraph, SnapshotFeedsAnalytics) {
  // Streaming ingest -> snapshot -> SSSP epoch, twice, with an edge update
  // between epochs changing the answer.
  g::dynamic_graph_t<> dyn(3);
  dyn.add_edge(0, 1, 1.0f);
  dyn.add_edge(1, 2, 1.0f);
  dyn.add_edge(0, 2, 5.0f);
  auto const g1 = dyn.snapshot<g::graph_csr>();
  EXPECT_FLOAT_EQ(e::algorithms::sssp(e::execution::par, g1, 0).distances[2],
                  2.0f);
  dyn.add_edge(0, 2, 0.5f);  // direct shortcut gets cheap
  auto const g2 = dyn.snapshot<g::graph_csr>();
  EXPECT_FLOAT_EQ(e::algorithms::sssp(e::execution::par, g2, 0).distances[2],
                  0.5f);
}

TEST(DynamicGraph, OutOfRangeThrows) {
  g::dynamic_graph_t<> dyn(2);
  EXPECT_THROW(dyn.add_edge(0, 5, 1.0f), e::graph_error);
  EXPECT_THROW(dyn.add_edge(-1, 0, 1.0f), e::graph_error);
}

// --- random walks --------------------------------------------------------------------

TEST(RandomWalks, WalksFollowEdges) {
  e::generators::rmat_options opt;
  opt.scale = 7;
  opt.edge_factor = 8;
  auto coo = e::generators::rmat(opt);
  g::remove_self_loops(coo);
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  auto const r = e::algorithms::random_walks(
      e::execution::par, gr, {0, 1, 2}, {.num_walks = 4, .walk_length = 6});
  ASSERT_EQ(r.walks.size(), 12u);
  for (auto const& walk : r.walks) {
    ASSERT_GE(walk.size(), 1u);
    for (std::size_t i = 1; i < walk.size(); ++i) {
      bool edge_exists = false;
      for (auto const e2 : gr.get_edges(walk[i - 1]))
        edge_exists |= (gr.get_dest_vertex(e2) == walk[i]);
      EXPECT_TRUE(edge_exists)
          << walk[i - 1] << " -> " << walk[i] << " is not an edge";
    }
  }
}

TEST(RandomWalks, DeterministicAcrossPolicies) {
  auto coo = e::generators::erdos_renyi(100, 1000, {}, 3);
  g::remove_self_loops(coo);
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  std::vector<vertex_t> starts{0, 5, 9};
  e::algorithms::random_walk_options opt{.num_walks = 8, .walk_length = 10,
                                         .weighted = false, .seed = 42};
  auto const seq = e::algorithms::random_walks(e::execution::seq, gr, starts, opt);
  auto const par = e::algorithms::random_walks(e::execution::par, gr, starts, opt);
  ASSERT_EQ(seq.walks.size(), par.walks.size());
  for (std::size_t w = 0; w < seq.walks.size(); ++w)
    EXPECT_EQ(seq.walks[w], par.walks[w]) << "walk " << w;
}

TEST(RandomWalks, SinkStopsWalk) {
  auto coo = e::generators::chain(3);  // 0 -> 1 -> 2 (2 is a sink)
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  auto const r = e::algorithms::random_walks(
      e::execution::seq, gr, {0}, {.num_walks = 1, .walk_length = 10});
  EXPECT_EQ(r.walks[0], (std::vector<vertex_t>{0, 1, 2}));
}

TEST(RandomWalks, WeightedSamplingPrefersHeavyEdges) {
  // 0 -> 1 (weight 99), 0 -> 2 (weight 1): walks overwhelmingly pick 1.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 3;
  coo.push_back(0, 1, 99.0f);
  coo.push_back(0, 2, 1.0f);
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  auto const r = e::algorithms::random_walks(
      e::execution::seq, gr, {0},
      {.num_walks = 200, .walk_length = 1, .weighted = true, .seed = 7});
  int to_heavy = 0;
  for (auto const& walk : r.walks)
    to_heavy += (walk.size() > 1 && walk[1] == 1);
  EXPECT_GT(to_heavy, 170);
}

TEST(RandomWalks, VisitFrequenciesSumToOne) {
  auto coo = e::generators::grid_2d(6, 6);
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  auto const r = e::algorithms::random_walks(
      e::execution::par, gr, {0, 18, 35}, {.num_walks = 10, .walk_length = 12});
  auto const freq = e::algorithms::visit_frequencies(
      r, static_cast<std::size_t>(gr.get_num_vertices()));
  double sum = 0.0;
  for (double const f : freq)
    sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}
