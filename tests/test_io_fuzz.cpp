// Robustness fuzzing (deterministic): every reader fed random garbage,
// truncations and boundary inputs must either parse or throw graph_error —
// never crash, hang, or return an inconsistent structure.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;

namespace {

std::string random_bytes(std::size_t len, std::uint64_t seed) {
  e::generators::rng_t rng(seed);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    s.push_back(static_cast<char>(rng.next_below(256)));
  return s;
}

std::string random_ascii(std::size_t len, std::uint64_t seed) {
  e::generators::rng_t rng(seed);
  std::string const alphabet = "0123456789 \t\n.-%#aepz";
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    s.push_back(alphabet[rng.next_below(alphabet.size())]);
  return s;
}

template <typename Reader>
void expect_parse_or_throw(Reader&& reader, std::string const& payload,
                           std::string const& label) {
  std::istringstream in(payload);
  try {
    auto const coo = reader(in);
    // If it parsed, the result must be structurally sound.
    EXPECT_GE(coo.num_rows, 0) << label;
    for (std::size_t i = 0; i < coo.row_indices.size(); ++i) {
      EXPECT_GE(coo.row_indices[i], 0) << label;
      EXPECT_LT(coo.row_indices[i], coo.num_rows) << label;
      EXPECT_GE(coo.column_indices[i], 0) << label;
      EXPECT_LT(coo.column_indices[i], coo.num_cols) << label;
    }
  } catch (e::graph_error const&) {
    // expected failure mode
  }
}

}  // namespace

class IoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoFuzz, MatrixMarketSurvivesGarbage) {
  auto const seed = GetParam();
  expect_parse_or_throw([](std::istream& in) { return e::io::read_matrix_market(in); },
                        random_bytes(512, seed), "mtx/binary");
  expect_parse_or_throw([](std::istream& in) { return e::io::read_matrix_market(in); },
                        random_ascii(512, seed), "mtx/ascii");
  expect_parse_or_throw(
      [](std::istream& in) { return e::io::read_matrix_market(in); },
      "%%MatrixMarket matrix coordinate real general\n" +
          random_ascii(256, seed),
      "mtx/banner+garbage");
}

TEST_P(IoFuzz, EdgeListSurvivesGarbage) {
  auto const seed = GetParam();
  expect_parse_or_throw([](std::istream& in) { return e::io::read_edge_list(in); },
                        random_ascii(512, seed), "el/ascii");
  expect_parse_or_throw([](std::istream& in) { return e::io::read_edge_list(in); },
                        random_bytes(512, seed), "el/binary");
}

TEST_P(IoFuzz, DimacsSurvivesGarbage) {
  auto const seed = GetParam();
  expect_parse_or_throw([](std::istream& in) { return e::io::read_dimacs(in); },
                        random_ascii(512, seed), "gr/ascii");
  expect_parse_or_throw(
      [](std::istream& in) { return e::io::read_dimacs(in); },
      "p sp 5 3\n" + random_ascii(256, seed), "gr/header+garbage");
}

TEST_P(IoFuzz, MetisSurvivesGarbage) {
  auto const seed = GetParam();
  expect_parse_or_throw([](std::istream& in) { return e::io::read_metis(in); },
                        random_ascii(512, seed), "metis/ascii");
}

TEST_P(IoFuzz, BinaryCsrSurvivesGarbageAndTruncation) {
  auto const seed = GetParam();
  {
    std::istringstream in(random_bytes(256, seed));
    EXPECT_THROW((void)e::io::read_binary_csr(in), e::graph_error);
  }
  // Valid prefix, truncated at every eighth byte boundary.
  auto coo = e::generators::erdos_renyi(16, 60, {}, seed);
  g::sort_and_deduplicate(coo);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  e::io::write_binary_csr(buf, g::build_csr(coo));
  std::string const full = buf.str();
  for (std::size_t cut = 8; cut + 8 < full.size(); cut += full.size() / 7) {
    std::istringstream in(full.substr(0, cut));
    EXPECT_THROW((void)e::io::read_binary_csr(in), e::graph_error)
        << "cut at " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------------
// Mapped block files (PR 9): the mmap reader must throw graph_error on any
// malformed file — truncation, header garbage, endianness mismatch — and
// corrupted *payload* bytes must decode to garbage values without ever
// leaving the mapping (exercised under ASan in CI).
// ---------------------------------------------------------------------------

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "io/mapped.hpp"

namespace {

std::filesystem::path fuzz_dir() {
  auto const d = std::filesystem::temp_directory_path() / "essentials-io-fuzz";
  std::filesystem::create_directories(d);
  return d;
}

std::string read_file(std::filesystem::path const& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::filesystem::path write_file(std::string const& name,
                                 std::string const& bytes) {
  auto const p = fuzz_dir() / name;
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return p;
}

/// A small valid mapped file's bytes (deterministic per seed).
std::string valid_mapped_bytes(std::uint64_t seed) {
  auto coo = e::generators::erdos_renyi(64, 700, {0.5f, 2.0f}, seed);
  g::sort_and_deduplicate(coo);
  auto const p = fuzz_dir() / ("valid-" + std::to_string(seed) + ".blk");
  e::io::write_mapped_graph(p.string(), g::build_csr(coo));
  auto bytes = read_file(p);
  std::filesystem::remove(p);
  return bytes;
}

}  // namespace

TEST_P(IoFuzz, MappedFileRejectsPureGarbage) {
  auto const seed = GetParam();
  for (std::size_t len : {std::size_t{0}, std::size_t{7}, std::size_t{64},
                          std::size_t{4096}, std::size_t{9000}}) {
    auto const p = write_file("garbage.blk", random_bytes(len, seed + len));
    EXPECT_THROW((void)e::io::mapped_graph<>(p.string()), e::graph_error)
        << "len " << len;
    std::filesystem::remove(p);
  }
}

TEST_P(IoFuzz, MappedFileRejectsTruncation) {
  auto const seed = GetParam();
  auto const full = valid_mapped_bytes(seed);
  // Truncate at uneven points across the whole layout: header, each
  // section boundary neighborhood, and mid-adjacency.
  for (std::size_t cut = 13; cut < full.size(); cut += full.size() / 11) {
    auto const p = write_file("trunc.blk", full.substr(0, cut));
    EXPECT_THROW((void)e::io::mapped_graph<>(p.string()), e::graph_error)
        << "cut at " << cut << " of " << full.size();
    std::filesystem::remove(p);
  }
  // The untouched file still loads (the fixture itself is valid).
  auto const p = write_file("whole.blk", full);
  EXPECT_NO_THROW((void)e::io::mapped_graph<>(p.string()));
  std::filesystem::remove(p);
}

TEST_P(IoFuzz, MappedFileSurvivesHeaderGarbage) {
  auto const seed = GetParam();
  auto const full = valid_mapped_bytes(seed);
  e::generators::rng_t rng(seed * 977 + 5);
  // Flip bytes across the header page: every mutation either fails header
  // validation with graph_error or yields a graph whose traversal stays in
  // bounds (garbage page-0 padding is ignored by design).
  for (int trial = 0; trial < 64; ++trial) {
    auto bytes = full;
    auto const off = rng.next_below(e::io::kMappedPage);
    bytes[off] = static_cast<char>(bytes[off] ^
                                   static_cast<char>(1 + rng.next_below(255)));
    auto const p = write_file("hdr.blk", bytes);
    try {
      e::io::mapped_graph<> mg(p.string());
      std::uint64_t sink = 0;
      for (e::vertex_t v = 0; v < mg.get_num_vertices(); ++v)
        mg.for_each_neighbor(v, [&sink](e::vertex_t nb, float) {
          sink += static_cast<std::uint64_t>(nb);
        });
      (void)sink;
    } catch (e::graph_error const&) {
      // expected failure mode
    }
    std::filesystem::remove(p);
  }
}

TEST_P(IoFuzz, MappedFileRejectsForeignEndianness) {
  auto const seed = GetParam();
  auto bytes = valid_mapped_bytes(seed);
  // The endian tag sits right after magic (u64) + version (u32).  A
  // byte-swapped tag is what this file would look like written on an
  // opposite-endian host.
  std::size_t const off = sizeof(std::uint64_t) + sizeof(std::uint32_t);
  std::swap(bytes[off], bytes[off + 3]);
  std::swap(bytes[off + 1], bytes[off + 2]);
  auto const p = write_file("endian.blk", bytes);
  EXPECT_THROW((void)e::io::mapped_graph<>(p.string()), e::graph_error);
  std::filesystem::remove(p);
}

TEST_P(IoFuzz, MappedPayloadGarbageDecodesInBounds) {
  auto const seed = GetParam();
  auto full = valid_mapped_bytes(seed);
  // Locate the adjacency section from the (valid) header and corrupt
  // payload bytes only — the header and both index sections stay intact,
  // so validation passes and decode must absorb the damage: garbage
  // *values*, never out-of-bounds reads (ASan-checked in CI).
  e::io::mapped_header h{};
  std::memcpy(&h, full.data(), sizeof h);
  ASSERT_GT(h.len_adj, e::graph::blockcodec::stream_slop);
  e::generators::rng_t rng(seed * 31 + 7);
  std::size_t const payload =
      static_cast<std::size_t>(h.len_adj - e::graph::blockcodec::stream_slop);
  for (int i = 0; i < 200; ++i) {
    auto const off =
        static_cast<std::size_t>(h.off_adj) + rng.next_below(payload);
    full[off] = static_cast<char>(rng.next_below(256));
  }
  auto const p = write_file("payload.blk", full);
  try {
    e::io::mapped_graph<> mg(p.string());
    std::uint64_t sink = 0;
    for (e::vertex_t v = 0; v < mg.get_num_vertices(); ++v)
      mg.for_each_neighbor(v, [&sink](e::vertex_t nb, float) {
        sink += static_cast<std::uint64_t>(nb);
      });
    (void)sink;  // values may be garbage; the walk must terminate in bounds
  } catch (e::graph_error const&) {
    // also acceptable: corruption detected up front
  }
  std::filesystem::remove(p);
}
