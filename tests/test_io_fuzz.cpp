// Robustness fuzzing (deterministic): every reader fed random garbage,
// truncations and boundary inputs must either parse or throw graph_error —
// never crash, hang, or return an inconsistent structure.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;

namespace {

std::string random_bytes(std::size_t len, std::uint64_t seed) {
  e::generators::rng_t rng(seed);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    s.push_back(static_cast<char>(rng.next_below(256)));
  return s;
}

std::string random_ascii(std::size_t len, std::uint64_t seed) {
  e::generators::rng_t rng(seed);
  std::string const alphabet = "0123456789 \t\n.-%#aepz";
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    s.push_back(alphabet[rng.next_below(alphabet.size())]);
  return s;
}

template <typename Reader>
void expect_parse_or_throw(Reader&& reader, std::string const& payload,
                           std::string const& label) {
  std::istringstream in(payload);
  try {
    auto const coo = reader(in);
    // If it parsed, the result must be structurally sound.
    EXPECT_GE(coo.num_rows, 0) << label;
    for (std::size_t i = 0; i < coo.row_indices.size(); ++i) {
      EXPECT_GE(coo.row_indices[i], 0) << label;
      EXPECT_LT(coo.row_indices[i], coo.num_rows) << label;
      EXPECT_GE(coo.column_indices[i], 0) << label;
      EXPECT_LT(coo.column_indices[i], coo.num_cols) << label;
    }
  } catch (e::graph_error const&) {
    // expected failure mode
  }
}

}  // namespace

class IoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoFuzz, MatrixMarketSurvivesGarbage) {
  auto const seed = GetParam();
  expect_parse_or_throw([](std::istream& in) { return e::io::read_matrix_market(in); },
                        random_bytes(512, seed), "mtx/binary");
  expect_parse_or_throw([](std::istream& in) { return e::io::read_matrix_market(in); },
                        random_ascii(512, seed), "mtx/ascii");
  expect_parse_or_throw(
      [](std::istream& in) { return e::io::read_matrix_market(in); },
      "%%MatrixMarket matrix coordinate real general\n" +
          random_ascii(256, seed),
      "mtx/banner+garbage");
}

TEST_P(IoFuzz, EdgeListSurvivesGarbage) {
  auto const seed = GetParam();
  expect_parse_or_throw([](std::istream& in) { return e::io::read_edge_list(in); },
                        random_ascii(512, seed), "el/ascii");
  expect_parse_or_throw([](std::istream& in) { return e::io::read_edge_list(in); },
                        random_bytes(512, seed), "el/binary");
}

TEST_P(IoFuzz, DimacsSurvivesGarbage) {
  auto const seed = GetParam();
  expect_parse_or_throw([](std::istream& in) { return e::io::read_dimacs(in); },
                        random_ascii(512, seed), "gr/ascii");
  expect_parse_or_throw(
      [](std::istream& in) { return e::io::read_dimacs(in); },
      "p sp 5 3\n" + random_ascii(256, seed), "gr/header+garbage");
}

TEST_P(IoFuzz, MetisSurvivesGarbage) {
  auto const seed = GetParam();
  expect_parse_or_throw([](std::istream& in) { return e::io::read_metis(in); },
                        random_ascii(512, seed), "metis/ascii");
}

TEST_P(IoFuzz, BinaryCsrSurvivesGarbageAndTruncation) {
  auto const seed = GetParam();
  {
    std::istringstream in(random_bytes(256, seed));
    EXPECT_THROW((void)e::io::read_binary_csr(in), e::graph_error);
  }
  // Valid prefix, truncated at every eighth byte boundary.
  auto coo = e::generators::erdos_renyi(16, 60, {}, seed);
  g::sort_and_deduplicate(coo);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  e::io::write_binary_csr(buf, g::build_csr(coo));
  std::string const full = buf.str();
  for (std::size_t cut = 8; cut + 8 < full.size(); cut += full.size() / 7) {
    std::istringstream in(full.substr(0, cut));
    EXPECT_THROW((void)e::io::read_binary_csr(in), e::graph_error)
        << "cut at " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));
