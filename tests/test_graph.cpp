// Unit tests for graph formats, builders/transformations, the variadic
// graph_t views, and structural property checks.
#include <gtest/gtest.h>

#include <vector>

#include "graph/build.hpp"
#include "graph/formats.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"

namespace g = essentials::graph;
using essentials::vertex_t;
using essentials::edge_t;
using essentials::weight_t;

namespace {

g::coo_t<> diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3 (weights = dst for checking)
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  coo.push_back(0, 1, 1.0f);
  coo.push_back(0, 2, 2.0f);
  coo.push_back(1, 3, 3.0f);
  coo.push_back(2, 3, 3.0f);
  return coo;
}

}  // namespace

// --- builders ----------------------------------------------------------------

TEST(Build, CsrFromCooHasCorrectStructure) {
  auto const csr = g::build_csr(diamond());
  EXPECT_TRUE(g::is_valid_csr(csr));
  EXPECT_EQ(csr.num_rows, 4);
  EXPECT_EQ(csr.num_edges(), 4);
  EXPECT_EQ(std::vector<edge_t>(csr.row_offsets.begin(),
                                csr.row_offsets.end()),
            (std::vector<edge_t>{0, 2, 3, 4, 4}));
  EXPECT_EQ(std::vector<vertex_t>(csr.column_indices.begin(),
                                  csr.column_indices.end()),
            (std::vector<vertex_t>{1, 2, 3, 3}));
}

TEST(Build, CsrRejectsOutOfRangeIndices) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 2;
  coo.push_back(0, 5, 1.0f);
  EXPECT_THROW(g::build_csr(coo), essentials::graph_error);
}

TEST(Build, CscMirrorsInEdges) {
  auto const csc = g::build_csc(diamond());
  // Vertex 3 has two in-edges (from 1 and 2); vertex 0 has none.
  EXPECT_EQ(csc.column_offsets[4] - csc.column_offsets[3], 2);
  EXPECT_EQ(csc.column_offsets[1] - csc.column_offsets[0], 0);
}

TEST(Build, TransposeToCscAgreesWithBuildCsc) {
  auto coo = diamond();
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  auto const a = g::build_csc(coo);
  auto const b = g::transpose_to_csc(csr);
  EXPECT_EQ(a.column_offsets, b.column_offsets);
  EXPECT_EQ(a.row_indices, b.row_indices);
  EXPECT_EQ(a.values, b.values);
}

TEST(Build, SortAndDeduplicateKeepFirst) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 2;
  coo.push_back(0, 1, 5.0f);
  coo.push_back(0, 1, 3.0f);
  g::sort_and_deduplicate(coo, g::duplicate_policy::keep_first);
  ASSERT_EQ(coo.num_edges(), 1);
  EXPECT_FLOAT_EQ(coo.values[0], 5.0f);
}

TEST(Build, SortAndDeduplicateKeepMin) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 2;
  coo.push_back(0, 1, 5.0f);
  coo.push_back(0, 1, 3.0f);
  coo.push_back(0, 1, 9.0f);
  g::sort_and_deduplicate(coo, g::duplicate_policy::keep_min);
  ASSERT_EQ(coo.num_edges(), 1);
  EXPECT_FLOAT_EQ(coo.values[0], 3.0f);
}

TEST(Build, SortAndDeduplicateSum) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 2;
  coo.push_back(1, 0, 1.0f);
  coo.push_back(1, 0, 2.0f);
  coo.push_back(0, 1, 4.0f);
  g::sort_and_deduplicate(coo, g::duplicate_policy::sum);
  ASSERT_EQ(coo.num_edges(), 2);
  EXPECT_FLOAT_EQ(coo.values[0], 4.0f);  // (0,1)
  EXPECT_FLOAT_EQ(coo.values[1], 3.0f);  // (1,0) summed
}

TEST(Build, RemoveSelfLoops) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 3;
  coo.push_back(0, 0, 1.0f);
  coo.push_back(0, 1, 1.0f);
  coo.push_back(2, 2, 1.0f);
  g::remove_self_loops(coo);
  EXPECT_EQ(coo.num_edges(), 1);
  EXPECT_EQ(coo.row_indices[0], 0);
  EXPECT_EQ(coo.column_indices[0], 1);
}

TEST(Build, SymmetrizeMakesSymmetric) {
  auto coo = diamond();
  g::symmetrize(coo);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  EXPECT_TRUE(g::is_symmetric(csr));
}

TEST(Build, TransposeSwapsEndpoints) {
  auto coo = diamond();
  g::transpose(coo);
  EXPECT_EQ(coo.row_indices[0], 1);
  EXPECT_EQ(coo.column_indices[0], 0);
}

TEST(Build, AdjacencyListRoundTrip) {
  auto coo = diamond();
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  auto const adj = g::to_adjacency_list(csr);
  EXPECT_EQ(adj.num_vertices(), 4);
  EXPECT_EQ(adj.num_edges(), 4u);
  auto coo2 = g::to_coo(adj);
  g::sort_and_deduplicate(coo2);
  auto const csr2 = g::build_csr(coo2);
  EXPECT_EQ(csr.row_offsets, csr2.row_offsets);
  EXPECT_EQ(csr.column_indices, csr2.column_indices);
  EXPECT_EQ(csr.values, csr2.values);
}

// --- graph_t ------------------------------------------------------------------

TEST(GraphT, CsrViewAnswersListing1Queries) {
  auto const graph = g::from_coo<g::graph_csr>(diamond());
  EXPECT_EQ(graph.get_num_vertices(), 4);
  EXPECT_EQ(graph.get_num_edges(), 4);
  EXPECT_EQ(graph.get_out_degree(0), 2);
  EXPECT_EQ(graph.get_out_degree(3), 0);

  std::vector<vertex_t> dsts;
  for (auto const e : graph.get_edges(0))
    dsts.push_back(graph.get_dest_vertex(e));
  EXPECT_EQ(dsts, (std::vector<vertex_t>{1, 2}));
  EXPECT_FLOAT_EQ(graph.get_edge_weight(0), 1.0f);
}

TEST(GraphT, SourceVertexBinarySearch) {
  auto const graph = g::from_coo<g::graph_csr>(diamond());
  for (vertex_t v = 0; v < graph.get_num_vertices(); ++v)
    for (auto const e : graph.get_edges(v))
      EXPECT_EQ(graph.get_source_vertex(e), v) << "edge " << e;
}

TEST(GraphT, PushPullViewsAgreeOnEdgeMultiset) {
  auto const graph = g::from_coo<g::graph_push_pull>(diamond());
  // Every out-edge (u, v) must appear as an in-edge of v from u.
  std::vector<std::pair<vertex_t, vertex_t>> push, pull;
  for (vertex_t u = 0; u < graph.get_num_vertices(); ++u)
    for (auto const e : graph.get_edges(u))
      push.emplace_back(u, graph.get_dest_vertex(e));
  for (vertex_t v = 0; v < graph.get_num_vertices(); ++v)
    for (auto const e : graph.get_in_edges(v))
      pull.emplace_back(graph.get_in_source_vertex(e), v);
  std::sort(push.begin(), push.end());
  std::sort(pull.begin(), pull.end());
  EXPECT_EQ(push, pull);
}

TEST(GraphT, InDegreeMatchesTransposedOutDegree) {
  auto const graph = g::from_coo<g::graph_push_pull>(diamond());
  EXPECT_EQ(graph.get_in_degree(3), 2);
  EXPECT_EQ(graph.get_in_degree(0), 0);
  EXPECT_FLOAT_EQ(graph.get_in_edge_weight(*graph.get_in_edges(3).begin()),
                  3.0f);
}

TEST(GraphT, CooViewKeepsRawEdges) {
  auto const graph = g::from_coo<g::graph_full>(diamond());
  EXPECT_EQ(graph.coo_num_edges(), 4);
  EXPECT_EQ(graph.coo_source(0), 0);
  EXPECT_EQ(graph.coo_dest(0), 1);
}

TEST(GraphT, IdRangeIterationAndSize) {
  g::id_range<edge_t> r(3, 7);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_FALSE(r.empty());
  edge_t expect = 3;
  for (auto const e : r)
    EXPECT_EQ(e, expect++);
  EXPECT_EQ(expect, 7);
  g::id_range<edge_t> empty(5, 5);
  EXPECT_TRUE(empty.empty());
}

// --- properties ----------------------------------------------------------------

TEST(Properties, DegreeStats) {
  auto const csr = g::build_csr(diamond());
  auto const s = g::out_degree_stats(csr);
  EXPECT_EQ(s.min_degree, 0u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.mean_degree, 1.0);
  EXPECT_EQ(s.isolated_vertices, 1u);  // vertex 3
}

TEST(Properties, SymmetryDetection) {
  auto const directed = g::build_csr(diamond());
  EXPECT_FALSE(g::is_symmetric(directed));
  auto coo = diamond();
  g::symmetrize(coo);
  g::sort_and_deduplicate(coo);
  EXPECT_TRUE(g::is_symmetric(g::build_csr(coo)));
}

TEST(Properties, DuplicateAndSelfLoopChecks) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 2;
  coo.push_back(0, 1, 1.0f);
  coo.push_back(0, 1, 1.0f);
  coo.push_back(1, 1, 1.0f);
  auto const dirty = g::build_csr(coo);
  EXPECT_FALSE(g::has_no_duplicate_edges(dirty));
  EXPECT_FALSE(g::has_no_self_loops(dirty));

  g::sort_and_deduplicate(coo);
  g::remove_self_loops(coo);
  auto const clean = g::build_csr(coo);
  EXPECT_TRUE(g::has_no_duplicate_edges(clean));
  EXPECT_TRUE(g::has_no_self_loops(clean));
}

TEST(Properties, ReachabilityOracle) {
  auto const csr = g::build_csr(diamond());
  auto const seen = g::reachable_from(csr, 0);
  EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
  auto const from3 = g::reachable_from(csr, 3);
  EXPECT_TRUE(from3[3]);
  EXPECT_FALSE(from3[0] || from3[1] || from3[2]);
}

TEST(Properties, EmptyGraphIsValid) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 0;
  auto const csr = g::build_csr(coo);
  EXPECT_TRUE(g::is_valid_csr(csr));
  EXPECT_EQ(csr.num_edges(), 0);
}

TEST(Properties, IsolatedVerticesOnlyGraph) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 5;
  auto const graph = g::from_coo<g::graph_csr>(std::move(coo));
  EXPECT_EQ(graph.get_num_vertices(), 5);
  EXPECT_EQ(graph.get_num_edges(), 0);
  for (vertex_t v = 0; v < 5; ++v)
    EXPECT_TRUE(graph.get_edges(v).empty());
}
