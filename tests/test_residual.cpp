// Residual engine tests (src/residual/): the accumulator algebras, the
// bucketed priority scheduler, the wave-based re-convergence loop, and
// standing queries wired through the analytics engine.
//
// The load-bearing suites are *differential*, mirroring the delta/NUMA
// pattern: every residual result is compared against the framework's
// reference enactment on the same snapshot — bit-identical for the
// min-lattices (SSSP vs dijkstra, reachability vs BFS depths), within ε
// for the weighted sums (PageRank vs power iteration, PPR vs forward
// push, spread vs a Jacobi reference computed in-test) — across the
// stealing/flat, stealing/tiered and central substrates.  The
// Residual-prefixed suites join the CI TSAN matrix; the storm test
// hammers a threaded standing query with publishes and concurrent
// snapshot readers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/personalized_pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "core/enactor.hpp"
#include "core/execution.hpp"
#include "core/telemetry.hpp"
#include "engine/engine.hpp"
#include "graph/dynamic.hpp"
#include "graph/graph.hpp"
#include "parallel/thread_pool.hpp"
#include "residual/algebras.hpp"
#include "residual/buckets.hpp"
#include "residual/standing.hpp"
#include "residual/state.hpp"
#include "residual/striped_counter.hpp"

namespace alg = essentials::algorithms;
namespace en = essentials::enactor;
namespace eng = essentials::engine;
namespace ex = essentials::execution;
namespace gr = essentials::graph;
namespace p = essentials::parallel;
namespace res = essentials::residual;
namespace tel = essentials::telemetry;
using essentials::vertex_t;
using essentials::weight_t;
using essentials::infinity_v;

using dyn_t = gr::dynamic_graph_t<>;
using engine_t = eng::analytics_engine<gr::graph_csr>;

namespace {

/// Random digraph with a guaranteed ring (every vertex has out-degree >= 1
/// — no dangling vertices, the PageRank differential precondition) plus
/// `extra` random edges.  Weights in [0.5, 2).
gr::graph_csr ring_plus_random(vertex_t n, std::size_t extra,
                               std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<vertex_t> pick(0, n - 1);
  std::uniform_real_distribution<float> w(0.5f, 2.0f);
  gr::coo_t<> coo;
  coo.num_rows = coo.num_cols = n;
  for (vertex_t v = 0; v < n; ++v)
    coo.push_back(v, (v + 1) % n, w(rng));
  for (std::size_t i = 0; i < extra; ++i) {
    vertex_t const a = pick(rng), b = pick(rng);
    if (a != b)
      coo.push_back(a, b, w(rng));
  }
  return gr::from_coo<gr::graph_csr>(std::move(coo));
}

std::vector<weight_t> residual_sssp(gr::graph_csr const& g, vertex_t source,
                                    p::thread_pool& pool,
                                    res::residual_options opt = {}) {
  res::residual_state<res::min_plus_algebra<weight_t>> st(
      static_cast<std::size_t>(g.get_num_vertices()),
      res::min_plus_algebra<weight_t>{}, opt, pool);
  res::seed_source(st, source);
  auto const stats = st.reconverge(g);
  EXPECT_TRUE(stats.converged);
  return st.values();
}

void expect_bit_identical(std::vector<weight_t> const& got,
                          std::vector<weight_t> const& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v)
    EXPECT_EQ(got[v], want[v]) << "vertex " << v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Algebra + counter basics
// ---------------------------------------------------------------------------

TEST(ResidualAlgebra, BucketOfOrdersByMagnitude) {
  std::size_t const nb = 64;
  // Monotone: larger magnitude -> lower (more urgent) bucket index.
  EXPECT_LE(res::bucket_of(1e18, nb), res::bucket_of(1e6, nb));
  EXPECT_LE(res::bucket_of(1e6, nb), res::bucket_of(1.0, nb));
  EXPECT_LE(res::bucket_of(1.0, nb), res::bucket_of(1e-6, nb));
  // The anchored top: anything >= 2^31 is maximally urgent.
  EXPECT_EQ(res::bucket_of(1e18, nb), 0u);
  EXPECT_EQ(res::bucket_of(4.0e9, nb), 0u);
  // Factor-of-two bands: same band, same bucket.
  EXPECT_EQ(res::bucket_of(1.0, nb), res::bucket_of(1.5, nb));
  EXPECT_EQ(res::bucket_of(1.0, nb) + 1, res::bucket_of(0.75, nb));
  // Non-positive magnitudes park in the least-urgent bucket.
  EXPECT_EQ(res::bucket_of(0.0, nb), nb - 1);
  EXPECT_EQ(res::bucket_of(-1.0, nb), nb - 1);
}

TEST(ResidualAlgebra, StripedCounterTracksMass) {
  res::striped_counter c;
  for (std::size_t lane = 0; lane < 40; ++lane)
    c.add(0.25, lane);
  EXPECT_NEAR(c.total(), 10.0, 1e-12);
  c.add(-10.0, 3);
  EXPECT_NEAR(c.total(), 0.0, 1e-12);
  c.reset();
  EXPECT_EQ(c.total(), 0.0);
}

TEST(ResidualAlgebra, MinPlusMagnitudeIsImprovement) {
  res::min_plus_algebra<weight_t> a;
  EXPECT_EQ(a.magnitude(5.0f, 7.0f), 0.0);  // no improvement: unschedulable
  EXPECT_EQ(a.magnitude(5.0f, 5.0f), 0.0);
  EXPECT_DOUBLE_EQ(a.magnitude(5.0f, 3.0f), 2.0);
  EXPECT_EQ(a.magnitude(infinity_v<weight_t>, 3.0f), 1e18);  // discovery
}

TEST(ResidualAlgebra, SumAlgebraRebaseClaimInvertsCombine) {
  res::ppr_algebra a{0.15};
  // combine applies claims with coefficient alpha; rebase_claim undoes it.
  double const claims = 3.7;
  double const value = a.combine(0.0, claims);
  EXPECT_NEAR(a.rebase_claim(value), claims, 1e-12);
  res::spread_algebra s{0.25};
  EXPECT_NEAR(s.rebase_claim(s.combine(0.0, claims)), claims, 1e-12);
}

// ---------------------------------------------------------------------------
// Bucketed priority queue
// ---------------------------------------------------------------------------

TEST(ResidualBuckets, TakeWaveDrainsMostUrgentFirst) {
  res::residual_buckets<vertex_t> b(8, 2);
  b.stage(5, 0, 50);
  b.stage(2, 1, 20);
  b.stage(2, 0, 21);
  b.stage(7, 0, 70);
  std::vector<vertex_t> wave;
  EXPECT_EQ(b.take_wave(wave), 2u);
  ASSERT_EQ(wave.size(), 2u);
  EXPECT_EQ(b.take_wave(wave), 5u);
  EXPECT_EQ(wave, std::vector<vertex_t>{50});
  EXPECT_EQ(b.take_wave(wave), 7u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.take_wave(wave), res::residual_buckets<vertex_t>::npos);
}

TEST(ResidualBuckets, OverflowLaneIsNeverLost) {
  res::residual_buckets<vertex_t> b(4, 2);
  // Lane ids beyond the lane array (including thread_pool::no_lane for
  // unregistered threads) must route to the shared overflow bin.
  b.stage(1, p::thread_pool::no_lane, 7);
  b.stage(1, 99, 8);
  b.stage(1, 0, 9);
  std::vector<vertex_t> wave;
  EXPECT_EQ(b.take_wave(wave), 1u);
  EXPECT_EQ(wave.size(), 3u);
}

// ---------------------------------------------------------------------------
// SSSP: bit-identical to dijkstra across substrates
// ---------------------------------------------------------------------------

TEST(ResidualSssp, MatchesDijkstraAcrossSubstrates) {
  auto const g = ring_plus_random(200, 1000, 42);
  for (vertex_t const source : {vertex_t{0}, vertex_t{57}, vertex_t{133}}) {
    auto const want = alg::dijkstra(g, source).distances;
    {
      p::thread_pool pool(4, p::queue_mode::stealing, p::steal_order::flat);
      expect_bit_identical(residual_sssp(g, source, pool), want);
    }
    {
      p::thread_pool pool(4, p::queue_mode::stealing,
                          p::steal_order::tiered);
      expect_bit_identical(residual_sssp(g, source, pool), want);
    }
    {
      p::thread_pool pool(4, p::queue_mode::central);
      expect_bit_identical(residual_sssp(g, source, pool), want);
    }
  }
}

TEST(ResidualSssp, LargeWavesTakeTheParallelPath) {
  // seq_threshold 0 forces every wave through run_blocked — exercises the
  // pool path even on waves the default would process inline.
  auto const g = ring_plus_random(300, 2000, 7);
  p::thread_pool pool(4);
  res::residual_options opt;
  opt.seq_threshold = 0;
  expect_bit_identical(residual_sssp(g, 0, pool, opt),
                       alg::dijkstra(g, 0).distances);
}

TEST(ResidualSssp, CancelledReconvergeResumesExactly) {
  auto const g = ring_plus_random(150, 600, 11);
  p::thread_pool pool(2);
  res::residual_state<res::min_plus_algebra<weight_t>> st(
      static_cast<std::size_t>(g.get_num_vertices()),
      res::min_plus_algebra<weight_t>{}, {}, pool);
  res::seed_source(st, vertex_t{0});

  en::cancelled_or_deadline stop;
  stop.token.request_cancel();  // already cancelled: zero waves run
  auto const first = st.reconverge(g, stop);
  EXPECT_FALSE(first.converged);
  EXPECT_EQ(first.stop_reason, en::cancelled_or_deadline::reason::cancelled);
  EXPECT_EQ(first.waves, 0u);

  // Staged residuals survived the interruption; a clean call finishes.
  auto const second = st.reconverge(g);
  EXPECT_TRUE(second.converged);
  expect_bit_identical(st.values(), alg::dijkstra(g, 0).distances);
}

// ---------------------------------------------------------------------------
// Reachability: depths identical to BFS
// ---------------------------------------------------------------------------

TEST(ResidualReachability, MatchesBfsDepths) {
  auto const g = ring_plus_random(180, 700, 5);
  auto const want = alg::bfs(ex::par, g, vertex_t{3}).depths;
  p::thread_pool pool(4);
  res::residual_state<res::reachability_algebra> st(
      static_cast<std::size_t>(g.get_num_vertices()),
      res::reachability_algebra{}, {}, pool);
  res::seed_source(st, vertex_t{3});
  EXPECT_TRUE(st.reconverge(g).converged);
  ASSERT_EQ(st.values().size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    std::int32_t const depth =
        st.values()[v] == infinity_v<std::int32_t> ? -1 : st.values()[v];
    EXPECT_EQ(depth, want[v]) << "vertex " << v;
  }
}

// ---------------------------------------------------------------------------
// Weighted sums: PageRank / PPR / spread within epsilon of references
// ---------------------------------------------------------------------------

TEST(ResidualPagerank, MatchesPowerIterationOnRingGraph) {
  // Ring guarantees out-degree >= 1 everywhere: the no-dangling
  // precondition under which the residual fixed point equals pagerank()'s.
  auto const g = ring_plus_random(120, 500, 9);
  alg::pagerank_options popt;
  popt.tolerance = 1e-12;
  popt.max_iterations = 500;
  auto const want = alg::pagerank_push(ex::seq, g, popt).ranks;

  p::thread_pool pool(4);
  res::residual_options opt;
  opt.epsilon = 1e-12;
  res::residual_state<res::pagerank_algebra> st(
      static_cast<std::size_t>(g.get_num_vertices()), res::pagerank_algebra{},
      opt, pool);
  res::seed_pagerank(st);
  EXPECT_TRUE(st.reconverge(g).converged);
  EXPECT_LT(st.residual_mass(), opt.epsilon);
  ASSERT_EQ(st.values().size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v)
    EXPECT_NEAR(st.values()[v], want[v], 1e-8) << "vertex " << v;
}

TEST(ResidualPpr, MatchesForwardPush) {
  auto const g = ring_plus_random(100, 400, 21);
  alg::ppr_options popt;
  popt.alpha = 0.15;
  popt.epsilon = 1e-12;
  auto const want = alg::personalized_pagerank(g, vertex_t{17}, popt);

  p::thread_pool pool(4);
  res::residual_options opt;
  opt.epsilon = 1e-12;
  res::residual_state<res::ppr_algebra> st(
      static_cast<std::size_t>(g.get_num_vertices()), res::ppr_algebra{0.15},
      opt, pool);
  res::seed_source_mass(st, vertex_t{17});
  EXPECT_TRUE(st.reconverge(g).converged);
  for (std::size_t v = 0; v < want.estimate.size(); ++v)
    EXPECT_NEAR(st.values()[v], want.estimate[v], 1e-8) << "vertex " << v;
}

TEST(ResidualSpread, MatchesJacobiReference) {
  // Weights <= 1 keep the spread operator a contraction, so the in-test
  // Jacobi solve converges to the same fixed point.
  vertex_t const n = 60;
  std::mt19937 rng(31);
  std::uniform_real_distribution<float> w(0.1f, 1.0f);
  gr::coo_t<> coo;
  coo.num_rows = coo.num_cols = n;
  for (vertex_t v = 0; v < n; ++v) {
    coo.push_back(v, (v + 1) % n, w(rng));
    coo.push_back(v, (v + 7) % n, w(rng));
  }
  auto const g = gr::from_coo<gr::graph_csr>(std::move(coo));

  double const retain = 0.25;
  vertex_t const source = 4;
  // Jacobi on the claims system: c = seed + sum_in (1-retain)*w/deg * c_u.
  std::vector<double> claims(n, 0.0);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<double> next(n, 0.0);
    next[source] = 1.0;
    for (vertex_t u = 0; u < n; ++u) {
      std::size_t const deg = static_cast<std::size_t>(g.get_out_degree(u));
      for (auto const e : g.get_edges(u))
        next[static_cast<std::size_t>(g.get_dest_vertex(e))] +=
            (1.0 - retain) * claims[static_cast<std::size_t>(u)] *
            static_cast<double>(g.get_edge_weight(e)) /
            static_cast<double>(deg);
    }
    claims.swap(next);
  }

  p::thread_pool pool(4);
  res::residual_options opt;
  opt.epsilon = 1e-12;
  res::residual_state<res::spread_algebra> st(
      static_cast<std::size_t>(n), res::spread_algebra{retain}, opt, pool);
  res::seed_source_mass(st, source);
  EXPECT_TRUE(st.reconverge(g).converged);
  for (std::size_t v = 0; v < claims.size(); ++v)
    EXPECT_NEAR(st.values()[v], retain * claims[v], 1e-8) << "vertex " << v;
}

// ---------------------------------------------------------------------------
// Standing queries: epoch injection through the engine
// ---------------------------------------------------------------------------

namespace {

res::standing_options sync_opts() {
  res::standing_options opt;
  opt.service_thread = false;  // apply inline on the publishing thread
  return opt;
}

/// dynamic_graph_t is deliberately immovable: seed the ring + random
/// chords in place.
void seed_dyn(dyn_t& dyn, vertex_t n, std::size_t edges,
              std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<vertex_t> pick(0, n - 1);
  std::uniform_real_distribution<float> w(0.5f, 2.0f);
  for (vertex_t v = 0; v < n; ++v)
    dyn.add_edge(v, (v + 1) % n, w(rng));
  for (std::size_t i = 0; i < edges; ++i) {
    vertex_t const a = pick(rng), b = pick(rng);
    if (a != b)
      dyn.add_edge(a, b, w(rng));
  }
}

}  // namespace

TEST(ResidualStanding, SsspInsertOnlyEpochsStayBitIdentical) {
  vertex_t const n = 150;
  engine_t engine;
  dyn_t dyn(n);
  seed_dyn(dyn, n, 500, 3);
  engine.registry().publish("g", dyn);

  auto q = engine.submit_standing(
      "g", res::min_plus_algebra<weight_t>{},
      [](auto& st, auto const&) { res::seed_source(st, vertex_t{0}); },
      sync_opts());
  ASSERT_NE(q, nullptr);

  std::mt19937 rng(77);
  std::uniform_int_distribution<vertex_t> pick(0, n - 1);
  float next_w = 0.45f;  // strictly below every base weight and decreasing:
                         // re-adding an existing pair is always a monotone
                         // weight *decrease*, so the delta stays insert-only
  for (int epoch = 0; epoch < 6; ++epoch) {
    // Monotone fast path: absorbed by endpoint injection, never a full
    // recompute.
    for (int i = 0; i < 8; ++i) {
      vertex_t const a = pick(rng), b = pick(rng);
      if (a != b)
        dyn.add_edge(a, b, next_w *= 0.98f);
    }
    auto const pin = engine.registry().publish("g", dyn);
    ASSERT_TRUE(pin);
    EXPECT_EQ(q->processed_epoch(), pin.epoch);  // sync: absorbed inline
    expect_bit_identical(q->values(),
                         alg::dijkstra(*pin.graph, 0).distances);
    EXPECT_FALSE(q->last_update().fallback);
  }
  auto const s = engine.stats();
  EXPECT_EQ(s.standing_queries, 1u);
  EXPECT_EQ(s.residual_reconverges, 6u);
  EXPECT_EQ(s.residual_fallbacks, 0u);
  EXPECT_GT(s.residual_injections, 0u);
  EXPECT_GT(s.residual_edges_cold_estimate, 0u);
}

TEST(ResidualStanding, RemovalFallsBackAndStaysCorrect) {
  vertex_t const n = 100;
  engine_t engine;
  dyn_t dyn(n);
  seed_dyn(dyn, n, 300, 13);
  engine.registry().publish("g", dyn);
  auto q = engine.submit_standing(
      "g", res::min_plus_algebra<weight_t>{},
      [](auto& st, auto const&) { res::seed_source(st, vertex_t{0}); },
      sync_opts());
  ASSERT_NE(q, nullptr);

  // A removal breaks the monotone upper bound: the query must fall back to
  // a full re-init and still land on the exact new fixed point.
  ASSERT_TRUE(dyn.remove_edge(2, 3));
  auto const pin = engine.registry().publish("g", dyn);
  expect_bit_identical(q->values(), alg::dijkstra(*pin.graph, 0).distances);
  EXPECT_TRUE(q->last_update().fallback);
  EXPECT_EQ(engine.stats().residual_fallbacks, 1u);
}

TEST(ResidualStanding, PagerankRebaseAbsorbsArbitraryDeltas) {
  vertex_t const n = 90;
  engine_t engine;
  dyn_t dyn(n);
  seed_dyn(dyn, n, 350, 23);
  engine.registry().publish("g", dyn);

  res::pagerank_algebra const a{};
  double const base = (1.0 - a.damping) / static_cast<double>(n);
  auto q = engine.submit_standing(
      "g", a, [](auto& st, auto const&) { res::seed_pagerank(st); },
      sync_opts(), [base](vertex_t) { return base; });
  ASSERT_NE(q, nullptr);

  // Removals included: the sum-algebra rebase is exact for arbitrary
  // deltas, so no epoch may fall back.  Removals only target chord edges
  // added by a *previous* epoch — the ring edges stay, keeping every
  // vertex at out-degree >= 1 (the no-dangling differential precondition).
  std::mt19937 rng(41);
  std::uniform_int_distribution<vertex_t> pick(0, n - 1);
  std::vector<std::pair<vertex_t, vertex_t>> added;
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (int i = 0; i < 5; ++i) {
      vertex_t const v = pick(rng);
      dyn.add_edge(v, (v + 3) % n, 1.0f);
      added.emplace_back(v, (v + 3) % n);
    }
    if (epoch > 0) {
      auto const [src, dst] = added.front();
      added.erase(added.begin());
      ASSERT_TRUE(dyn.remove_edge(src, dst));
    }
    auto const pin = engine.registry().publish("g", dyn);
    ASSERT_TRUE(pin);
    alg::pagerank_options popt;
    popt.tolerance = 1e-12;
    popt.max_iterations = 500;
    auto const want = alg::pagerank_push(ex::seq, *pin.graph, popt).ranks;
    ASSERT_EQ(q->values().size(), want.size());
    for (std::size_t v = 0; v < want.size(); ++v)
      EXPECT_NEAR(q->values()[v], want[v], 1e-7)
          << "epoch " << epoch << " vertex " << v;
    EXPECT_FALSE(q->last_update().fallback);
  }
  EXPECT_EQ(engine.stats().residual_fallbacks, 0u);
}

TEST(ResidualStanding, DroppedHandleDeregisters) {
  engine_t engine;
  dyn_t dyn(40);
  seed_dyn(dyn, 40, 100, 51);
  engine.registry().publish("g", dyn);
  auto q = engine.submit_standing(
      "g", res::min_plus_algebra<weight_t>{},
      [](auto& st, auto const&) { res::seed_source(st, vertex_t{0}); },
      sync_opts());
  ASSERT_NE(q, nullptr);
  dyn.add_edge(5, 9, 0.1f);
  engine.registry().publish("g", dyn);
  auto const after_first = engine.stats().residual_reconverges;
  EXPECT_EQ(after_first, 1u);

  q.reset();  // engine holds only a weak reference
  dyn.add_edge(6, 9, 0.1f);
  engine.registry().publish("g", dyn);
  EXPECT_EQ(engine.stats().residual_reconverges, after_first);
}

TEST(ResidualStanding, UnknownGraphReturnsNull) {
  engine_t engine;
  auto q = engine.submit_standing(
      "nope", res::min_plus_algebra<weight_t>{},
      [](auto& st, auto const&) { res::seed_source(st, vertex_t{0}); });
  EXPECT_EQ(q, nullptr);
}

// ---------------------------------------------------------------------------
// Threaded standing queries
// ---------------------------------------------------------------------------

TEST(ResidualEngine, ThreadedQueryAbsorbsPublishesAsynchronously) {
  vertex_t const n = 120;
  engine_t engine;
  dyn_t dyn(n);
  seed_dyn(dyn, n, 400, 61);
  engine.registry().publish("g", dyn);

  auto q = engine.submit_standing(
      "g", res::min_plus_algebra<weight_t>{},
      [](auto& st, auto const&) { res::seed_source(st, vertex_t{0}); });
  ASSERT_NE(q, nullptr);

  std::uint64_t last_epoch = 0;
  for (int i = 0; i < 10; ++i) {
    dyn.add_edge((vertex_t)(i % n), (vertex_t)((i * 13 + 1) % n), 0.2f);
    last_epoch = engine.registry().publish("g", dyn).epoch;
  }
  EXPECT_EQ(q->wait_processed(last_epoch), last_epoch);

  auto const snap = q->snapshot();
  ASSERT_NE(snap, nullptr);
  auto const pin = engine.registry().lookup("g");
  expect_bit_identical(*snap, alg::dijkstra(*pin.graph, 0).distances);
}

TEST(ResidualEngine, CancelDoesNotHangShutdown) {
  engine_t engine;
  dyn_t dyn(80);
  seed_dyn(dyn, 80, 200, 71);
  engine.registry().publish("g", dyn);
  auto q = engine.submit_standing(
      "g", res::min_plus_algebra<weight_t>{},
      [](auto& st, auto const&) { res::seed_source(st, vertex_t{0}); });
  ASSERT_NE(q, nullptr);
  q->cancel();
  dyn.add_edge(1, 5, 0.1f);
  engine.registry().publish("g", dyn);
  q->shutdown();  // must not deadlock with a cancelled in-flight update
  // Engine destructor then re-runs shutdown (idempotent) on exit.
}

TEST(ResidualEngine, StatsSnapshotExposesV4Counters) {
  engine_t engine;
  dyn_t dyn(50);
  seed_dyn(dyn, 50, 120, 81);
  engine.registry().publish("g", dyn);
  auto q = engine.submit_standing(
      "g", res::min_plus_algebra<weight_t>{},
      [](auto& st, auto const&) { res::seed_source(st, vertex_t{0}); },
      sync_opts());
  ASSERT_NE(q, nullptr);
  dyn.add_edge(3, 7, 0.1f);
  engine.registry().publish("g", dyn);

  auto const s = engine.stats();
  EXPECT_EQ(s.standing_queries, 1u);
  EXPECT_EQ(s.residual_reconverges, 1u);
  EXPECT_GT(s.residual_edges_cold_estimate, 0u);
  EXPECT_GE(s.residual_pass_ratio(), 0.0);
  EXPECT_LE(s.residual_pass_ratio(), 1.0);

  std::ostringstream os;
  eng::write_json(s, os);
  std::string const json = os.str();
  EXPECT_NE(json.find("\"engine_stats_version\":5"), std::string::npos);
  EXPECT_NE(json.find("\"standing_queries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"residual_reconverges\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Telemetry: schema v6 standing traces
// ---------------------------------------------------------------------------

TEST(ResidualTelemetry, StandingTraceCarriesResidualFields) {
  engine_t engine;
  dyn_t dyn(60);
  seed_dyn(dyn, 60, 150, 91);
  engine.registry().publish("g", dyn);
  auto opt = sync_opts();
  opt.record_trace = true;
  auto q = engine.submit_standing(
      "g", res::min_plus_algebra<weight_t>{},
      [](auto& st, auto const&) { res::seed_source(st, vertex_t{0}); }, opt);
  ASSERT_NE(q, nullptr);
  dyn.add_edge(2, 9, 0.05f);
  auto const pin = engine.registry().publish("g", dyn);

  if (tel::compiled_in) {
    auto const trace = q->last_trace();
    EXPECT_TRUE(trace.standing);
    EXPECT_EQ(trace.graph_epoch, pin.epoch);
    EXPECT_GT(trace.residual_injections, 0u);
    EXPECT_EQ(trace.residual_waves, trace.supersteps.size());
    EXPECT_EQ(trace.residual_final, 0.0);  // min-lattice: mass unused

    std::ostringstream os;
    tel::write_json(trace, os);
    std::string const json = os.str();
    EXPECT_NE(json.find("\"standing\":true"), std::string::npos);
    EXPECT_NE(json.find("\"residual_waves\":"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// TSAN storm: threaded standing query under publish + reader pressure
// ---------------------------------------------------------------------------

TEST(ResidualTsanStandingStorm, PublishesRacingSnapshotReaders) {
  vertex_t const n = 200;
  engine_t engine;
  dyn_t dyn(n);
  seed_dyn(dyn, n, 600, 101);
  engine.registry().publish("g", dyn);
  auto q = engine.submit_standing(
      "g", res::min_plus_algebra<weight_t>{},
      [](auto& st, auto const&) { res::seed_source(st, vertex_t{0}); });
  ASSERT_NE(q, nullptr);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t)
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (auto snap = q->snapshot()) {
          weight_t sum = 0;
          for (weight_t const d : *snap)
            if (d != infinity_v<weight_t>)
              sum += d;
          EXPECT_GE(sum, 0.0f);
        }
        (void)q->processed_epoch();
      }
    });

  std::uint64_t last_epoch = 0;
  for (int i = 0; i < 30; ++i) {
    dyn.add_edge((vertex_t)((i * 17) % n), (vertex_t)((i * 29 + 1) % n),
                 0.25f);
    last_epoch = engine.registry().publish("g", dyn).epoch;
  }
  EXPECT_EQ(q->wait_processed(last_epoch), last_epoch);
  stop.store(true, std::memory_order_release);
  for (auto& r : readers)
    r.join();

  auto const pin = engine.registry().lookup("g");
  expect_bit_identical(*q->snapshot(), alg::dijkstra(*pin.graph, 0).distances);
}
