// Documentation honesty check: the README's quickstart snippet, compiled
// and executed as written (modulo the elided edges).  If the public API
// drifts, this file breaks before the README lies.
#include <gtest/gtest.h>

#include "essentials.hpp"

TEST(ReadmeQuickstart, CompilesAndRunsAsDocumented) {
  using namespace essentials;

  graph::coo_t<> coo;                     // edge list
  coo.num_rows = coo.num_cols = 5;
  coo.push_back(0, 1, 1.0f);              // src, dst, weight
  coo.push_back(1, 2, 1.0f);
  coo.push_back(0, 3, 4.0f);
  coo.push_back(3, 4, 1.0f);
  coo.push_back(2, 4, 1.0f);
  auto g = graph::from_coo<graph::graph_csr>(std::move(coo));

  // Parallel single-source shortest paths, exactly the paper's shape:
  // frontier seed -> neighbors_expand with a relaxation lambda ->
  // loop until the frontier drains.
  auto result = algorithms::sssp(execution::par, g, /*source=*/0);

  ASSERT_EQ(result.distances.size(), 5u);
  EXPECT_FLOAT_EQ(result.distances[4], 3.0f);  // 0-1-2-4 beats 0-3-4

  // And the documented lambda contract: atomic::min returns the old value.
  float cell = 7.0f;
  EXPECT_FLOAT_EQ(atomic::min(&cell, 3.0f), 7.0f);
  EXPECT_FLOAT_EQ(cell, 3.0f);

  // The tutorial's policy-swap claim: same call shape, sequential policy.
  auto serial = algorithms::sssp(execution::seq, g, 0);
  EXPECT_EQ(serial.distances, result.distances);
}
