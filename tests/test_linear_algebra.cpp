// Tests for the linear-algebra bridge (SpGEMM) and the minimum spanning
// forest (Borůvka vs Kruskal).
#include <gtest/gtest.h>

#include <set>

#include "algorithms/mst.hpp"
#include "algorithms/spgemm.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;
using e::vertex_t;
using e::edge_t;
using e::weight_t;

namespace {

g::csr_t<> csr_from(std::initializer_list<std::tuple<int, int, float>> entries,
                    int rows, int cols) {
  g::coo_t<> coo;
  coo.num_rows = rows;
  coo.num_cols = cols;
  for (auto const& [r, c, v] : entries)
    coo.push_back(r, c, v);
  g::sort_and_deduplicate(coo);
  return g::build_csr(coo);
}

g::graph_csr weighted_undirected(g::coo_t<> coo) {
  g::remove_self_loops(coo);
  g::symmetrize(coo);
  return g::from_coo<g::graph_csr>(std::move(coo),
                                   g::duplicate_policy::keep_min);
}

}  // namespace

// --- SpGEMM -----------------------------------------------------------------

TEST(Spgemm, IdentityIsNeutral) {
  auto const a = csr_from({{0, 1, 2.f}, {1, 2, 3.f}, {2, 0, 4.f}}, 3, 3);
  auto const identity =
      csr_from({{0, 0, 1.f}, {1, 1, 1.f}, {2, 2, 1.f}}, 3, 3);
  auto const c = e::algorithms::spgemm(e::execution::par, a, identity);
  EXPECT_EQ(c.row_offsets, a.row_offsets);
  EXPECT_EQ(c.column_indices, a.column_indices);
  EXPECT_EQ(c.values, a.values);
}

TEST(Spgemm, KnownSmallProduct) {
  // A = [[1, 2], [0, 3]], B = [[4, 0], [5, 6]] -> C = [[14, 12], [15, 18]]
  auto const a = csr_from({{0, 0, 1.f}, {0, 1, 2.f}, {1, 1, 3.f}}, 2, 2);
  auto const b = csr_from({{0, 0, 4.f}, {1, 0, 5.f}, {1, 1, 6.f}}, 2, 2);
  auto const c = e::algorithms::spgemm(e::execution::par, a, b);
  ASSERT_EQ(c.num_edges(), 4);
  EXPECT_EQ(c.column_indices, (std::vector<vertex_t>{0, 1, 0, 1}));
  EXPECT_EQ(c.values, (std::vector<weight_t>{14.f, 12.f, 15.f, 18.f}));
}

TEST(Spgemm, MatchesDenseOracleOnRandomOperands) {
  for (std::uint64_t seed : {1u, 5u}) {
    auto coo_a = e::generators::erdos_renyi(40, 200, {0.5f, 2.0f}, seed);
    auto coo_b = e::generators::erdos_renyi(40, 200, {0.5f, 2.0f}, seed + 50);
    g::sort_and_deduplicate(coo_a);
    g::sort_and_deduplicate(coo_b);
    auto const a = g::build_csr(coo_a);
    auto const b = g::build_csr(coo_b);
    auto const c = e::algorithms::spgemm(e::execution::par, a, b);
    auto const dense = e::algorithms::dense_matmul(a, b);
    // Every stored entry matches the dense product; every non-stored
    // position is zero.
    std::vector<std::vector<double>> sparse_as_dense(
        40, std::vector<double>(40, 0.0));
    for (vertex_t i = 0; i < 40; ++i)
      for (edge_t ed = c.row_offsets[static_cast<std::size_t>(i)];
           ed < c.row_offsets[static_cast<std::size_t>(i) + 1]; ++ed)
        sparse_as_dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(
            c.column_indices[static_cast<std::size_t>(ed)])] =
            static_cast<double>(c.values[static_cast<std::size_t>(ed)]);
    for (std::size_t i = 0; i < 40; ++i)
      for (std::size_t j = 0; j < 40; ++j)
        EXPECT_NEAR(sparse_as_dense[i][j], dense[i][j], 1e-4)
            << i << "," << j << " seed " << seed;
  }
}

TEST(Spgemm, SquareOfAdjacencyCountsTwoHopPaths) {
  // Path 0-1-2-3 (unit weights, directed): A^2(i, j) = #paths of length 2.
  auto const a =
      csr_from({{0, 1, 1.f}, {1, 2, 1.f}, {2, 3, 1.f}}, 4, 4);
  auto const a2 = e::algorithms::spgemm(e::execution::par, a, a);
  ASSERT_EQ(a2.num_edges(), 2);  // 0->2 and 1->3
  EXPECT_EQ(a2.column_indices, (std::vector<vertex_t>{2, 3}));
  EXPECT_EQ(a2.values, (std::vector<weight_t>{1.f, 1.f}));
}

TEST(Spgemm, RectangularOperands) {
  // (2x3) * (3x2)
  auto const a = csr_from({{0, 0, 1.f}, {0, 2, 2.f}, {1, 1, 3.f}}, 2, 3);
  auto const b = csr_from({{0, 1, 4.f}, {1, 0, 5.f}, {2, 1, 6.f}}, 3, 2);
  auto const c = e::algorithms::spgemm(e::execution::par, a, b);
  EXPECT_EQ(c.num_rows, 2);
  EXPECT_EQ(c.num_cols, 2);
  // C = [[0, 1*4 + 2*6], [3*5, 0]] = [[0, 16], [15, 0]]
  ASSERT_EQ(c.num_edges(), 2);
  EXPECT_FLOAT_EQ(c.values[0], 16.f);
  EXPECT_FLOAT_EQ(c.values[1], 15.f);
}

TEST(Spgemm, DimensionMismatchThrows) {
  auto const a = csr_from({{0, 0, 1.f}}, 2, 3);
  auto const b = csr_from({{0, 0, 1.f}}, 2, 2);
  EXPECT_THROW(e::algorithms::spgemm(e::execution::par, a, b),
               e::graph_error);
}

TEST(Spgemm, SeqMatchesPar) {
  auto coo = e::generators::erdos_renyi(60, 400, {0.5f, 1.5f}, 9);
  g::sort_and_deduplicate(coo);
  auto const a = g::build_csr(coo);
  auto const s = e::algorithms::spgemm(e::execution::seq, a, a);
  auto const p = e::algorithms::spgemm(e::execution::par, a, a);
  EXPECT_EQ(s.row_offsets, p.row_offsets);
  EXPECT_EQ(s.column_indices, p.column_indices);
  EXPECT_EQ(s.values, p.values);
}

// --- MST --------------------------------------------------------------------

TEST(Mst, KnownTriangleWithTail) {
  // Triangle 0-1 (1), 1-2 (2), 0-2 (3) plus tail 2-3 (4): MST weight
  // 1 + 2 + 4 = 7.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  coo.push_back(0, 1, 1.f);
  coo.push_back(1, 2, 2.f);
  coo.push_back(0, 2, 3.f);
  coo.push_back(2, 3, 4.f);
  auto const gr = weighted_undirected(std::move(coo));
  auto const bor = e::algorithms::boruvka_mst(e::execution::par, gr);
  auto const kru = e::algorithms::kruskal_mst(gr);
  EXPECT_DOUBLE_EQ(bor.total_weight, 7.0);
  EXPECT_DOUBLE_EQ(kru.total_weight, 7.0);
  EXPECT_EQ(bor.num_trees, 1u);
  EXPECT_EQ(bor.edges.size(), 3u);
  EXPECT_TRUE(e::algorithms::is_valid_spanning_forest(gr, bor.edges,
                                                      bor.num_trees));
}

TEST(Mst, BoruvkaMatchesKruskalOnRandomGraphs) {
  for (std::uint64_t seed : {1u, 7u, 13u}) {
    auto const gr = weighted_undirected(
        e::generators::erdos_renyi(200, 1200, {0.1f, 9.0f}, seed));
    auto const bor = e::algorithms::boruvka_mst(e::execution::par, gr);
    auto const kru = e::algorithms::kruskal_mst(gr);
    EXPECT_NEAR(bor.total_weight, kru.total_weight, 1e-3) << "seed " << seed;
    EXPECT_EQ(bor.num_trees, kru.num_trees);
    EXPECT_EQ(bor.edges.size(), kru.edges.size());
    EXPECT_TRUE(e::algorithms::is_valid_spanning_forest(gr, bor.edges,
                                                        bor.num_trees));
  }
}

TEST(Mst, ForestOnDisconnectedGraph) {
  // Two separate triangles.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 6;
  for (int base : {0, 3}) {
    coo.push_back(base, base + 1, 1.f);
    coo.push_back(base + 1, base + 2, 2.f);
    coo.push_back(base, base + 2, 3.f);
  }
  auto const gr = weighted_undirected(std::move(coo));
  auto const bor = e::algorithms::boruvka_mst(e::execution::par, gr);
  EXPECT_EQ(bor.num_trees, 2u);
  EXPECT_EQ(bor.edges.size(), 4u);
  EXPECT_DOUBLE_EQ(bor.total_weight, 6.0);  // (1+2) per triangle
}

TEST(Mst, UniformWeightsStillFormSpanningTree) {
  // All weights equal: any spanning tree is minimal; tie-break by edge id
  // keeps Borůvka cycle-free.
  auto const gr = weighted_undirected(e::generators::grid_2d(8, 8));
  auto const bor = e::algorithms::boruvka_mst(e::execution::par, gr);
  EXPECT_EQ(bor.num_trees, 1u);
  EXPECT_EQ(bor.edges.size(), 63u);
  EXPECT_TRUE(e::algorithms::is_valid_spanning_forest(gr, bor.edges,
                                                      bor.num_trees));
}

TEST(Mst, LogarithmicRounds) {
  auto const gr = weighted_undirected(
      e::generators::erdos_renyi(1000, 8000, {0.1f, 5.0f}, 3));
  auto const bor = e::algorithms::boruvka_mst(e::execution::par, gr);
  EXPECT_LE(bor.rounds, 12u);  // O(log V) + the final no-hook round
}

TEST(Mst, MstWeightLowerBoundsAnySpanningTree) {
  // The BFS parent tree is *a* spanning tree; the MST's weight must not
  // exceed its edge-weight sum.
  auto coo = e::generators::grid_2d(10, 10, {1.0f, 10.0f}, 5);
  auto const gr = g::from_coo<g::graph_csr>(std::move(coo));
  auto const mst = e::algorithms::boruvka_mst(e::execution::par, gr);
  auto const bfs = e::algorithms::bfs_serial(gr, 0);
  double bfs_tree_weight = 0.0;
  for (vertex_t v = 1; v < gr.get_num_vertices(); ++v) {
    vertex_t const p = bfs.parents[static_cast<std::size_t>(v)];
    ASSERT_NE(p, -1);
    for (auto const ed : gr.get_edges(p)) {
      if (gr.get_dest_vertex(ed) == v) {
        bfs_tree_weight += static_cast<double>(gr.get_edge_weight(ed));
        break;
      }
    }
  }
  EXPECT_EQ(mst.num_trees, 1u);
  EXPECT_LE(mst.total_weight, bfs_tree_weight + 1e-6);
}
