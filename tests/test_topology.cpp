// Tests for the topology layer (parallel/topology.hpp): the sysfs parser
// against canned fixture trees (2-socket SMT, 1-socket, SMT-off), the
// single-node fallback, the placement policies (worker packing, steal
// tiers, barrier leaf order), first-touch placement semantics, and the
// NUMA differential suite asserting the tiered steal order computes
// bit-identical results to the flat baseline across the operator matrix.
// The differential suites run under the CI TSAN matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/operators/filter.hpp"
#include "core/operators/neighbor_reduce.hpp"
#include "generators/generators.hpp"
#include "graph/build.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "parallel/barrier.hpp"
#include "parallel/first_touch.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/topology.hpp"

namespace ex = essentials::execution;
namespace fr = essentials::frontier;
namespace g = essentials::graph;
namespace gen = essentials::generators;
namespace op = essentials::operators;
namespace p = essentials::parallel;
using essentials::vertex_t;
using essentials::edge_t;
using essentials::weight_t;

namespace {

namespace fs = std::filesystem;

/// One cpu of a fixture: logical id, package id, core id, NUMA node.
struct fixture_cpu {
  int id;
  int package;
  int core;
  int node;
};

void write_file(fs::path const& path, std::string const& contents) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path);
  out << contents << "\n";
}

/// Materialize a canned sysfs tree for `cpus` under a fresh temp dir and
/// return its root.  Online list covers every cpu; one nodeK/cpulist per
/// distinct node.
fs::path make_sysfs_fixture(std::string const& name,
                            std::vector<fixture_cpu> const& cpus) {
  fs::path const root =
      fs::temp_directory_path() / ("essentials_topo_" + name);
  fs::remove_all(root);
  fs::path const cpu_root = root / "devices/system/cpu";

  std::string online;
  for (auto const& c : cpus)
    online += (online.empty() ? "" : ",") + std::to_string(c.id);
  write_file(cpu_root / "online", online);

  for (auto const& c : cpus) {
    fs::path const tdir = cpu_root / ("cpu" + std::to_string(c.id)) / "topology";
    write_file(tdir / "physical_package_id", std::to_string(c.package));
    write_file(tdir / "core_id", std::to_string(c.core));
  }

  std::set<int> nodes;
  for (auto const& c : cpus)
    nodes.insert(c.node);
  for (int node : nodes) {
    std::string cpulist;
    for (auto const& c : cpus) {
      if (c.node != node)
        continue;
      if (!cpulist.empty())
        cpulist += ',';
      cpulist += std::to_string(c.id);
    }
    write_file(root / "devices/system/node" /
                   ("node" + std::to_string(node)) / "cpulist",
               cpulist);
  }
  return root;
}

/// 2 packages x 2 cores x 2 SMT threads, one NUMA node per package.
/// Linux-style sibling numbering: cpu0-3 are first threads, cpu4-7 their
/// SMT siblings.
std::vector<fixture_cpu> two_socket_smt() {
  return {{0, 0, 0, 0}, {1, 0, 1, 0}, {2, 1, 0, 1}, {3, 1, 1, 1},
          {4, 0, 0, 0}, {5, 0, 1, 0}, {6, 1, 0, 1}, {7, 1, 1, 1}};
}

}  // namespace

// --- sysfs parser against canned fixtures -----------------------------------

TEST(Topology, TwoSocketSmtFixture) {
  auto const root = make_sysfs_fixture("2s_smt", two_socket_smt());
  auto const topo = p::machine_topology::discover(root.string());
  EXPECT_TRUE(topo.discovered);
  EXPECT_EQ(topo.num_cpus(), 8u);
  EXPECT_EQ(topo.num_packages, 2u);
  EXPECT_EQ(topo.num_nodes, 2u);
  EXPECT_EQ(topo.num_cores, 4u);
  EXPECT_TRUE(topo.smt);
  EXPECT_EQ(p::node_of_cpu(topo, 0), 0);
  EXPECT_EQ(p::node_of_cpu(topo, 3), 1);
  EXPECT_EQ(p::node_of_cpu(topo, 6), 1);
  EXPECT_EQ(p::node_of_cpu(topo, 99), 0);  // unknown cpu: the flat answer
}

TEST(Topology, SingleSocketFixture) {
  std::vector<fixture_cpu> cpus;
  for (int i = 0; i < 4; ++i)
    cpus.push_back({i, 0, i, 0});
  auto const root = make_sysfs_fixture("1s", cpus);
  auto const topo = p::machine_topology::discover(root.string());
  EXPECT_TRUE(topo.discovered);
  EXPECT_EQ(topo.num_cpus(), 4u);
  EXPECT_EQ(topo.num_packages, 1u);
  EXPECT_EQ(topo.num_nodes, 1u);
  EXPECT_EQ(topo.num_cores, 4u);
  EXPECT_FALSE(topo.smt);
}

TEST(Topology, SmtOffTwoSocketFixture) {
  // 2 packages x 2 cores, one thread per core: packages without SMT.
  std::vector<fixture_cpu> const cpus = {
      {0, 0, 0, 0}, {1, 0, 1, 0}, {2, 1, 0, 1}, {3, 1, 1, 1}};
  auto const root = make_sysfs_fixture("2s_nosmt", cpus);
  auto const topo = p::machine_topology::discover(root.string());
  EXPECT_TRUE(topo.discovered);
  EXPECT_EQ(topo.num_packages, 2u);
  EXPECT_EQ(topo.num_cores, 4u);
  EXPECT_FALSE(topo.smt);
}

TEST(Topology, MissingTreeFallsBackToFlat) {
  auto const topo =
      p::machine_topology::discover("/nonexistent-essentials-sysfs");
  EXPECT_FALSE(topo.discovered);
  EXPECT_GE(topo.num_cpus(), 1u);
  EXPECT_EQ(topo.num_packages, 1u);
  EXPECT_EQ(topo.num_nodes, 1u);
}

TEST(Topology, MissingNodeDirsDegradeToOneNode) {
  // Topology files present, no devices/system/node at all (containers).
  auto const cpus = two_socket_smt();
  auto const root = make_sysfs_fixture("no_nodes", cpus);
  fs::remove_all(root / "devices/system/node");
  auto const topo = p::machine_topology::discover(root.string());
  EXPECT_TRUE(topo.discovered);
  EXPECT_EQ(topo.num_packages, 2u);
  EXPECT_EQ(topo.num_nodes, 1u);
  EXPECT_EQ(p::node_of_cpu(topo, 7), 0);
}

TEST(Topology, FlatTopologyShape) {
  auto const topo = p::machine_topology::flat(4);
  EXPECT_FALSE(topo.discovered);
  EXPECT_EQ(topo.num_cpus(), 4u);
  EXPECT_EQ(topo.num_packages, 1u);
  EXPECT_EQ(topo.num_nodes, 1u);
  EXPECT_EQ(topo.num_cores, 4u);
  EXPECT_FALSE(topo.smt);
  EXPECT_EQ(p::machine_topology::flat(0).num_cpus(), 1u);  // normalized
}

TEST(Topology, ParseCpuListHandlesRangesAndSingles) {
  EXPECT_EQ(p::parse_cpu_list("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(p::parse_cpu_list("5"), (std::vector<int>{5}));
  EXPECT_EQ(p::parse_cpu_list("3,1,2,2"), (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(p::parse_cpu_list("").empty());
}

TEST(Topology, ParseCpuListSkipsMalformedFragments) {
  EXPECT_EQ(p::parse_cpu_list("a,2,b-c,4"), (std::vector<int>{2, 4}));
  EXPECT_TRUE(p::parse_cpu_list("garbage").empty());
  EXPECT_TRUE(p::parse_cpu_list("5-3").empty());  // reversed range
  EXPECT_TRUE(p::parse_cpu_list("-3").empty());   // negative ids dropped
}

// --- placement policies ------------------------------------------------------

TEST(Topology, AssignWorkersPacksByLocality) {
  auto const topo = p::machine_topology::discover(
      make_sysfs_fixture("assign", two_socket_smt()).string());
  auto const cpu_of = p::assign_workers(topo, 8);
  ASSERT_EQ(cpu_of.size(), 8u);
  // Locality order is (node, package, core, id): node 0 holds cpus
  // {0,4,1,5} (core 0 siblings first), node 1 holds {2,6,3,7}.
  EXPECT_EQ(cpu_of, (std::vector<int>{0, 4, 1, 5, 2, 6, 3, 7}));
  // More workers than cpus wrap round-robin through the same order.
  auto const wrapped = p::assign_workers(topo, 10);
  EXPECT_EQ(wrapped[8], 0);
  EXPECT_EQ(wrapped[9], 4);
}

TEST(Topology, TieredVictimsClassifyByDistance) {
  auto const topo = p::machine_topology::discover(
      make_sysfs_fixture("tiers", two_socket_smt()).string());
  auto const cpu_of = p::assign_workers(topo, 8);
  // Worker 0 sits on cpu0 = (package 0, core 0); its SMT sibling is worker
  // 1 (cpu4), same-package victims are workers 2,3 (cpus 1,5), remote are
  // workers 4..7.
  auto const tiers = p::tiered_victims(topo, cpu_of, 0);
  ASSERT_EQ(tiers.victims.size(), 7u);
  EXPECT_EQ(tiers.smt_end, 1u);
  EXPECT_EQ(tiers.package_end, 3u);
  EXPECT_EQ(tiers.victims[0], 1u);
  EXPECT_EQ((std::set<std::size_t>{tiers.victims[1], tiers.victims[2]}),
            (std::set<std::size_t>{2u, 3u}));
  for (std::size_t i = tiers.package_end; i < tiers.victims.size(); ++i)
    EXPECT_GE(tiers.victims[i], 4u);
  // No worker is its own victim.
  for (auto v : tiers.victims)
    EXPECT_NE(v, 0u);
}

TEST(Topology, TieredVictimsOnFlatTopologyCollapseToOneTier) {
  auto const topo = p::machine_topology::flat(4);
  auto const cpu_of = p::assign_workers(topo, 4);
  auto const tiers = p::tiered_victims(topo, cpu_of, 2);
  ASSERT_EQ(tiers.victims.size(), 3u);
  EXPECT_EQ(tiers.smt_end, 0u);                     // no SMT siblings
  EXPECT_EQ(tiers.package_end, tiers.victims.size());  // everyone local
}

TEST(Topology, LeafOrderIsASocketContiguousPermutation) {
  auto const topo = p::machine_topology::discover(
      make_sysfs_fixture("leaf", two_socket_smt()).string());
  auto const cpu_of = p::assign_workers(topo, 8);
  // 8 workers + 2 external lanes.
  auto const slot_of = p::topo_leaf_order(topo, cpu_of, 10);
  ASSERT_EQ(slot_of.size(), 10u);
  std::set<std::size_t> const slots(slot_of.begin(), slot_of.end());
  EXPECT_EQ(slots.size(), 10u);  // a permutation
  EXPECT_EQ(*slots.begin(), 0u);
  EXPECT_EQ(*slots.rbegin(), 9u);
  // Each package's workers occupy a contiguous slot range.
  std::vector<std::size_t> pkg0_slots, pkg1_slots;
  for (std::size_t w = 0; w < 8; ++w)
    (p::node_of_cpu(topo, cpu_of[w]) == 0 ? pkg0_slots : pkg1_slots)
        .push_back(slot_of[w]);
  auto const contiguous = [](std::vector<std::size_t> v) {
    std::sort(v.begin(), v.end());
    for (std::size_t i = 1; i < v.size(); ++i)
      if (v[i] != v[i - 1] + 1)
        return false;
    return true;
  };
  EXPECT_TRUE(contiguous(pkg0_slots));
  EXPECT_TRUE(contiguous(pkg1_slots));
  // External lanes sort after every worker, keeping their relative order.
  EXPECT_EQ(slot_of[8], 8u);
  EXPECT_EQ(slot_of[9], 9u);
}

TEST(Topology, SystemTopologyIsSane) {
  auto const& topo = p::system_topology();
  EXPECT_GE(topo.num_cpus(), 1u);
  EXPECT_GE(topo.num_packages, 1u);
  EXPECT_GE(topo.num_nodes, 1u);
  auto const cpu_of = p::assign_workers(topo, 4);
  EXPECT_EQ(cpu_of.size(), 4u);
}

// --- tree barrier with a topology-permuted leaf layout -----------------------

TEST(Topology, PermutedBarrierLayoutSurvivesReuse) {
  auto const topo = p::machine_topology::discover(
      make_sysfs_fixture("barrier", two_socket_smt()).string());
  auto const cpu_of = p::assign_workers(topo, 8);
  constexpr std::size_t participants = 8;
  p::tree_barrier barrier(participants,
                          p::topo_leaf_order(topo, cpu_of, participants));
  constexpr int rounds = 2000;
  std::atomic<long long> sum{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t id = 0; id < participants; ++id)
    threads.emplace_back([&, id] {
      for (int r = 0; r < rounds; ++r) {
        sum.fetch_add(1);
        barrier.arrive_and_wait(id);
        if (sum.load() != static_cast<long long>(participants) * (r + 1))
          failures.fetch_add(1);
        barrier.arrive_and_wait(id);
      }
    });
  for (auto& t : threads)
    t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(barrier.generation(), static_cast<std::uint64_t>(2 * rounds));
}

// --- first-touch placement ---------------------------------------------------

TEST(FirstTouch, ParallelAndSerialFillsAreBitIdentical) {
  p::thread_pool pool(4, p::queue_mode::stealing);
  // Big enough to cross first_touch_min_bytes so the parallel path runs.
  std::size_t const n = (std::size_t{1} << 20) / sizeof(double) + 12345;
  auto const on = p::first_touch_vector<double>(pool, n, 3.5, /*numa=*/true);
  auto const off = p::first_touch_vector<double>(pool, n, 3.5, /*numa=*/false);
  ASSERT_EQ(on.size(), off.size());
  EXPECT_TRUE(std::equal(on.begin(), on.end(), off.begin()));
}

TEST(FirstTouch, SmallArraysFillSerially) {
  p::thread_pool pool(2, p::queue_mode::stealing);
  auto const v = p::first_touch_vector<int>(pool, 100, 7, /*numa=*/true);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_TRUE(std::all_of(v.begin(), v.end(), [](int x) { return x == 7; }));
}

TEST(FirstTouch, FillOverwritesEverySlot) {
  p::thread_pool pool(4, p::queue_mode::stealing);
  std::size_t const n = (std::size_t{1} << 21) / sizeof(std::uint64_t);
  p::numa_vector<std::uint64_t> v;
  v.resize(n);  // default-init: contents unspecified
  p::first_touch_fill(pool, v.data(), n, std::uint64_t{42}, /*numa=*/true);
  EXPECT_TRUE(std::all_of(v.begin(), v.end(),
                          [](std::uint64_t x) { return x == 42; }));
}

TEST(FirstTouch, DefaultInitAllocatorStillValueConstructsWithArgs) {
  // Explicit fill construction and copies behave exactly like std::vector;
  // only no-arg resize changes (default-init instead of value-init).
  p::numa_vector<int> v(16, 9);
  EXPECT_TRUE(std::all_of(v.begin(), v.end(), [](int x) { return x == 9; }));
  p::numa_vector<int> const copy = v;
  EXPECT_TRUE(std::equal(copy.begin(), copy.end(), v.begin()));
  // Non-trivial types are still value-initialized by resize.
  std::vector<std::string, p::default_init_allocator<std::string>> s;
  s.resize(3);
  EXPECT_TRUE(s[0].empty() && s[1].empty() && s[2].empty());
}

// --- NUMA differential: tiered steal order vs flat baseline -----------------

namespace {

std::vector<vertex_t> sorted(std::vector<vertex_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

g::graph_push_pull random_graph(std::uint64_t seed) {
  auto coo = gen::erdos_renyi(/*n=*/200, /*m=*/1500, {}, seed);
  return g::from_coo<g::graph_push_pull>(std::move(coo));
}

auto const pure_mod = [](vertex_t s, vertex_t d, edge_t, weight_t) {
  return (static_cast<std::size_t>(s) * 7 + static_cast<std::size_t>(d) * 13) %
             3 !=
         0;
};

}  // namespace

TEST(NumaDifferential, StealOrderKnobSelectsOrder) {
  p::thread_pool tiered(2, p::queue_mode::stealing, p::steal_order::tiered);
  p::thread_pool flat(2, p::queue_mode::stealing, p::steal_order::flat);
  EXPECT_EQ(tiered.order(), p::steal_order::tiered);
  EXPECT_EQ(flat.order(), p::steal_order::flat);
  EXPECT_EQ(tiered.worker_cpus().size(), 2u);
  // The chunking contract is independent of steal order.
  for (std::size_t n : {7u, 1777u, 65536u})
    EXPECT_EQ(tiered.bulk_step(n, 16), flat.bulk_step(n, 16));
}

// The acceptance bar: NUMA-on (tiered) == NUMA-off (flat) bit-identical
// across advance x generation strategies.  Scan output order is a function
// of the deterministic chunking contract, which both steal orders share.
TEST(NumaDifferential, AdvanceMatrixAgreesAcrossStealOrders) {
  p::thread_pool tiered(8, p::queue_mode::stealing, p::steal_order::tiered);
  p::thread_pool flat(8, p::queue_mode::stealing, p::steal_order::flat);
  ex::parallel_policy const on_tiered(tiered);
  ex::parallel_policy const on_flat(flat);

  for (std::uint64_t seed : {3u, 11u}) {
    auto const graph = random_graph(seed);
    std::vector<vertex_t> seeds;
    for (vertex_t v = 0; v < 200; v += 2)
      seeds.push_back(v);
    fr::sparse_frontier<vertex_t> const in(std::move(seeds));

    for (auto mode : {ex::frontier_gen::scan, ex::frontier_gen::bulk,
                      ex::frontier_gen::listing3}) {
      auto const a =
          op::advance_push(on_tiered.with_frontier(mode), graph, in, pure_mod);
      auto const b =
          op::advance_push(on_flat.with_frontier(mode), graph, in, pure_mod);
      if (mode == ex::frontier_gen::scan)
        EXPECT_EQ(a.to_vector(), b.to_vector()) << "scan must be bit-identical";
      else
        EXPECT_EQ(sorted(a.to_vector()), sorted(b.to_vector()));
    }
  }
}

TEST(NumaDifferential, FilterMatrixAgreesAcrossStealOrders) {
  p::thread_pool tiered(8, p::queue_mode::stealing, p::steal_order::tiered);
  p::thread_pool flat(8, p::queue_mode::stealing, p::steal_order::flat);
  ex::parallel_policy const on_tiered(tiered);
  ex::parallel_policy const on_flat(flat);

  std::vector<vertex_t> ids;
  for (vertex_t v = 0; v < 10'000; ++v)
    ids.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(ids));
  auto const pred = [](vertex_t v) { return v % 7 != 2; };

  for (auto mode : {ex::frontier_gen::scan, ex::frontier_gen::bulk,
                    ex::frontier_gen::listing3}) {
    auto const a = op::filter(on_tiered.with_frontier(mode), in, pred);
    auto const b = op::filter(on_flat.with_frontier(mode), in, pred);
    if (mode == ex::frontier_gen::scan)
      EXPECT_EQ(a.to_vector(), b.to_vector());
    else
      EXPECT_EQ(sorted(a.to_vector()), sorted(b.to_vector()));
  }
}

TEST(NumaDifferential, NeighborReduceMatrixAgreesAcrossStealOrders) {
  p::thread_pool tiered(8, p::queue_mode::stealing, p::steal_order::tiered);
  p::thread_pool flat(8, p::queue_mode::stealing, p::steal_order::flat);
  ex::parallel_policy const on_tiered(tiered);
  ex::parallel_policy const on_flat(flat);

  auto const graph = random_graph(31);
  std::size_t const n = static_cast<std::size_t>(graph.get_num_vertices());
  std::vector<vertex_t> seeds;
  for (vertex_t v = 0; v < 200; v += 3)
    seeds.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));

  auto const map_w = [](vertex_t, vertex_t d, edge_t, weight_t w) {
    return static_cast<double>(w) + static_cast<double>(d);
  };
  auto const combine = [](double a, double b) { return a + b; };
  auto const activate = [](vertex_t, double acc) { return acc > 8.0; };

  for (auto mode : {ex::frontier_gen::scan, ex::frontier_gen::bulk,
                    ex::frontier_gen::listing3}) {
    std::vector<double> out_a(n, -1.0), out_b(n, -1.0);
    auto const fa = op::neighbor_reduce_activate(
        on_tiered.with_frontier(mode), graph, in, 0.0, map_w, combine,
        activate, out_a.data());
    auto const fb = op::neighbor_reduce_activate(
        on_flat.with_frontier(mode), graph, in, 0.0, map_w, combine, activate,
        out_b.data());
    EXPECT_EQ(out_a, out_b);
    if (mode == ex::frontier_gen::scan)
      EXPECT_EQ(fa.to_vector(), fb.to_vector());
    else
      EXPECT_EQ(sorted(fa.to_vector()), sorted(fb.to_vector()));
  }
}

// CSR construction through the first-touch path is deterministic: building
// the same COO twice (placement pre-touch on, then effectively exercised
// off via the small-array serial path) yields identical bytes, and the
// structure stays valid.
TEST(NumaDifferential, BuildCsrIsDeterministicUnderFirstTouch) {
  gen::rmat_options opt;
  opt.scale = 10;
  opt.edge_factor = 8;
  auto coo = gen::rmat(opt);
  g::remove_self_loops(coo);
  g::sort_and_deduplicate(coo);
  auto const a = g::build_csr(coo);
  auto const b = g::build_csr(coo);
  EXPECT_TRUE(g::is_valid_csr(a));
  EXPECT_EQ(a.row_offsets, b.row_offsets);
  EXPECT_EQ(a.column_indices, b.column_indices);
  EXPECT_EQ(a.values, b.values);
}
