// Unit tests for the threading substrate: thread pool, bulk primitives,
// atomics, bitset, spinlock and the MPMC work queue.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "parallel/atomic_bitset.hpp"
#include "parallel/atomics.hpp"
#include "parallel/for_each.hpp"
#include "parallel/lane_buffers.hpp"
#include "parallel/mpmc_queue.hpp"
#include "parallel/spinlock.hpp"
#include "parallel/thread_pool.hpp"

namespace p = essentials::parallel;
namespace atomic = essentials::atomic;

// --- thread_pool -----------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  p::thread_pool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, RunBlockedCoversEveryIndexExactlyOnce) {
  p::thread_pool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.run_blocked(1000, [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      hits[i].fetch_add(1);
  });
  for (auto const& h : hits)
    EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunBlockedEmptyRangeIsNoop) {
  p::thread_pool pool(2);
  bool ran = false;
  pool.run_blocked(0, [&ran](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, RunBlockedSingleElement) {
  p::thread_pool pool(2);
  int value = 0;
  pool.run_blocked(1, [&value](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 1u);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, ZeroThreadsNormalizedToOne) {
  p::thread_pool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.run_blocked(10, [&ran](std::size_t lo, std::size_t hi) {
    ran.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, WaitIdleReturnsImmediatelyWhenIdle) {
  p::thread_pool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, NestedRunBlockedFromWorkerDoesNotDeadlock) {
  p::thread_pool pool(2);
  std::atomic<int> inner{0};
  pool.run_blocked(4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      inner.fetch_add(1);
  });
  EXPECT_EQ(inner.load(), 4);
}

TEST(ThreadPool, UrgentTasksJumpTheQueue) {
  p::thread_pool pool(1);  // one lane => deterministic execution order
  std::mutex m;
  std::vector<int> order;
  std::atomic<bool> release{false};
  // Occupy the single worker so subsequent submissions queue up.
  pool.submit([&] {
    while (!release.load())
      std::this_thread::yield();
  });
  for (int i = 0; i < 3; ++i)
    pool.submit([&, i] {
      std::lock_guard<std::mutex> g(m);
      order.push_back(i);
    });
  pool.submit_urgent([&] {
    std::lock_guard<std::mutex> g(m);
    order.push_back(99);
  });
  release.store(true);
  pool.wait_idle();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 99);  // the urgent task ran before every queued task
  EXPECT_EQ((std::vector<int>{order[1], order[2], order[3]}),
            (std::vector<int>{0, 1, 2}));
}

TEST(ThreadPool, DiscardPendingDropsQueuedNotRunning) {
  p::thread_pool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  pool.submit([&] {
    started.store(true);
    while (!release.load())
      std::this_thread::yield();
    ran.fetch_add(1);
  });
  while (!started.load())  // blocker is running, not queued
    std::this_thread::yield();
  for (int i = 0; i < 8; ++i)
    pool.submit([&] { ran.fetch_add(1); });
  std::size_t const discarded = pool.discard_pending();
  release.store(true);
  pool.wait_idle();  // must not wedge: discarded tasks released their slots
  EXPECT_EQ(discarded, 8u);
  EXPECT_EQ(ran.load(), 1);  // only the already-running task completed
}

TEST(ThreadPool, DiscardPendingCountsUrgentClass) {
  // Both priority classes are queued work: a shutdown drain must count and
  // drop urgent tasks too, in both substrates.
  for (auto mode : {p::queue_mode::stealing, p::queue_mode::central}) {
    p::thread_pool pool(1, mode);
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
    std::atomic<int> ran{0};
    pool.submit([&] {
      started.store(true);
      while (!release.load())
        std::this_thread::yield();
    });
    while (!started.load())
      std::this_thread::yield();
    for (int i = 0; i < 3; ++i)
      pool.submit([&] { ran.fetch_add(1); });
    for (int i = 0; i < 5; ++i)
      pool.submit_urgent([&] { ran.fetch_add(1); });
    std::size_t const discarded = pool.discard_pending();
    release.store(true);
    pool.wait_idle();
    EXPECT_EQ(discarded, 8u) << "normal + urgent, mode "
                             << static_cast<int>(mode);
    EXPECT_EQ(ran.load(), 0);
  }
}

TEST(ThreadPool, ZeroThreadsNormalizedInExplicitModeCtor) {
  p::thread_pool pool(0, p::queue_mode::stealing);
  EXPECT_EQ(pool.size(), 1u);
  p::thread_pool central(0, p::queue_mode::central);
  EXPECT_EQ(central.size(), 1u);
}

TEST(ThreadPool, BulkStepHonorsGrainAndLaneCap) {
  p::thread_pool pool(3);  // 4 lanes -> at most 16 chunks
  // Small n with large grain: one chunk.
  EXPECT_EQ(pool.bulk_step(10, 256), 10u);
  // Large n, grain 1: capped at 4 * (size() + 1) chunks.
  std::size_t const step = pool.bulk_step(1000, 1);
  EXPECT_EQ(step, (1000 + 16 - 1) / 16);
  // Grain is a floor on chunk size.
  EXPECT_GE(pool.bulk_step(1000, 100), 100u);
  // Degenerate inputs are normalized, never zero.
  EXPECT_EQ(pool.bulk_step(0, 0), 1u);
  EXPECT_GE(pool.bulk_step(5, 0), 1u);
}

TEST(ThreadPool, DefaultPoolHasAtLeastFourLanes) {
  EXPECT_GE(p::default_lanes(), 4u);
}

// --- parallel_for / reduce / scan -------------------------------------------

TEST(ParallelFor, MatchesSerialSum) {
  p::thread_pool pool(4);
  std::vector<int> data(10'000);
  p::parallel_for(pool, 0, data.size(),
                  [&data](std::size_t i) { data[i] = static_cast<int>(i); });
  long long sum = std::accumulate(data.begin(), data.end(), 0LL);
  EXPECT_EQ(sum, 10'000LL * 9'999 / 2);
}

TEST(ParallelFor, RespectsBeginOffset) {
  p::thread_pool pool(2);
  std::vector<int> data(100, 0);
  p::parallel_for(pool, 50, 100, [&data](std::size_t i) { data[i] = 1; });
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(data[i], 0) << i;
  for (std::size_t i = 50; i < 100; ++i)
    EXPECT_EQ(data[i], 1) << i;
}

TEST(ParallelForNowait, CompletesAfterWaitIdle) {
  p::thread_pool pool(4);
  std::vector<std::atomic<int>> hits(512);
  p::parallel_for_nowait(pool, std::size_t{0}, hits.size(),
                         [&hits](std::size_t i) { hits[i].fetch_add(1); });
  pool.wait_idle();
  for (auto const& h : hits)
    EXPECT_EQ(h.load(), 1);
}

TEST(ParallelReduce, SumMatchesSerial) {
  p::thread_pool pool(4);
  auto const total = p::parallel_reduce(
      pool, std::size_t{0}, std::size_t{100'000}, 0LL,
      [](std::size_t i) { return static_cast<long long>(i); },
      [](long long a, long long b) { return a + b; });
  EXPECT_EQ(total, 100'000LL * 99'999 / 2);
}

TEST(ParallelReduce, MaxMatchesSerial) {
  p::thread_pool pool(3);
  std::vector<int> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<int>((i * 2654435761u) % 100000);
  auto const expected = *std::max_element(data.begin(), data.end());
  auto const got = p::parallel_reduce(
      pool, std::size_t{0}, data.size(), 0,
      [&data](std::size_t i) { return data[i]; },
      [](int a, int b) { return a > b ? a : b; });
  EXPECT_EQ(got, expected);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  p::thread_pool pool(2);
  auto const total = p::parallel_reduce(
      pool, std::size_t{5}, std::size_t{5}, 123,
      [](std::size_t) { return 1; }, [](int a, int b) { return a + b; });
  EXPECT_EQ(total, 123);
}

TEST(ExclusiveScan, MatchesSerialPrefixSum) {
  p::thread_pool pool(4);
  std::vector<int> in(1777);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<int>(i % 7);
  std::vector<long long> out(in.size());
  auto const total = p::exclusive_scan(pool, in.data(), in.size(), out.data());

  long long running = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], running) << "at " << i;
    running += in[i];
  }
  EXPECT_EQ(total, running);
}

TEST(ExclusiveScan, EmptyAndSingle) {
  p::thread_pool pool(2);
  std::vector<int> in;
  std::vector<int> out;
  EXPECT_EQ(p::exclusive_scan(pool, in.data(), 0, out.data()), 0);
  in = {42};
  out.resize(1);
  EXPECT_EQ(p::exclusive_scan(pool, in.data(), 1, out.data()), 42);
  EXPECT_EQ(out[0], 0);
}

// --- atomics ----------------------------------------------------------------

TEST(Atomics, MinReturnsPreviousValue) {
  float value = 10.0f;
  EXPECT_FLOAT_EQ(atomic::min(&value, 5.0f), 10.0f);
  EXPECT_FLOAT_EQ(value, 5.0f);
  // A losing min returns the (smaller) current value.
  EXPECT_FLOAT_EQ(atomic::min(&value, 7.0f), 5.0f);
  EXPECT_FLOAT_EQ(value, 5.0f);
}

TEST(Atomics, MaxReturnsPreviousValue) {
  int value = 3;
  EXPECT_EQ(atomic::max(&value, 9), 3);
  EXPECT_EQ(value, 9);
  EXPECT_EQ(atomic::max(&value, 4), 9);
  EXPECT_EQ(value, 9);
}

TEST(Atomics, ConcurrentMinConvergesToGlobalMinimum) {
  float value = 1e9f;
  p::thread_pool pool(4);
  pool.run_blocked(1000, [&value](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      atomic::min(&value, static_cast<float>(i));
  });
  EXPECT_FLOAT_EQ(value, 0.0f);
}

TEST(Atomics, AddIntegralAndFloating) {
  int i = 0;
  EXPECT_EQ(atomic::add(&i, 5), 0);
  EXPECT_EQ(i, 5);
  double d = 1.5;
  EXPECT_DOUBLE_EQ(atomic::add(&d, 2.5), 1.5);
  EXPECT_DOUBLE_EQ(d, 4.0);
}

TEST(Atomics, ConcurrentAddSumsExactly) {
  long long total = 0;
  p::thread_pool pool(4);
  pool.run_blocked(10'000, [&total](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      atomic::add(&total, 1LL);
  });
  EXPECT_EQ(total, 10'000);
}

TEST(Atomics, CasReturnsObservedValue) {
  int v = 7;
  EXPECT_EQ(atomic::cas(&v, 7, 9), 7);  // success: returns expected
  EXPECT_EQ(v, 9);
  EXPECT_EQ(atomic::cas(&v, 7, 11), 9);  // failure: returns current
  EXPECT_EQ(v, 9);
}

TEST(Atomics, ExchangeSwapsAndReturnsOld) {
  int v = 1;
  EXPECT_EQ(atomic::exchange(&v, 2), 1);
  EXPECT_EQ(v, 2);
}

// --- atomic_bitset ----------------------------------------------------------

TEST(AtomicBitset, SetTestResetCount) {
  p::atomic_bitset bits(130);
  EXPECT_EQ(bits.count(), 0u);
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(AtomicBitset, TestAndSetClaimsOnce) {
  p::atomic_bitset bits(64);
  EXPECT_TRUE(bits.test_and_set(13));
  EXPECT_FALSE(bits.test_and_set(13));
}

TEST(AtomicBitset, ConcurrentClaimsAreExclusive) {
  p::atomic_bitset bits(1);
  p::thread_pool pool(4);
  std::atomic<int> winners{0};
  pool.run_blocked(1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      if (bits.test_and_set(0))
        winners.fetch_add(1);
  });
  EXPECT_EQ(winners.load(), 1);
}

TEST(AtomicBitset, ForEachSetVisitsInOrder) {
  p::atomic_bitset bits(200);
  std::vector<std::size_t> expected{3, 63, 64, 127, 128, 199};
  for (auto const i : expected)
    bits.set(i);
  std::vector<std::size_t> got;
  bits.for_each_set([&got](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, expected);
}

TEST(AtomicBitset, ResizeClears) {
  p::atomic_bitset bits(10);
  bits.set(5);
  bits.resize_and_clear(20);
  EXPECT_EQ(bits.size(), 20u);
  EXPECT_EQ(bits.count(), 0u);
}

TEST(AtomicBitset, OutOfRangeThrows) {
  p::atomic_bitset bits(10);
  EXPECT_THROW(bits.set(10), essentials::graph_error);
  EXPECT_THROW((void)bits.test(100), essentials::graph_error);
}

// --- spinlock ----------------------------------------------------------------

TEST(Spinlock, MutualExclusionUnderContention) {
  p::spinlock lock;
  long long counter = 0;
  p::thread_pool pool(4);
  pool.run_blocked(20'000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      std::lock_guard<p::spinlock> guard(lock);
      ++counter;  // non-atomic increment protected by the lock
    }
  });
  EXPECT_EQ(counter, 20'000);
}

TEST(Spinlock, TryLockFailsWhenHeld) {
  p::spinlock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

// --- mpmc_queue ---------------------------------------------------------------

TEST(MpmcQueue, FifoSingleThread) {
  p::mpmc_queue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  q.done_processing();
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  q.done_processing();
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 3);
  q.done_processing();
  // Queue now quiescent: next pop reports termination.
  EXPECT_FALSE(q.pop(v));
}

TEST(MpmcQueue, TryPopOnEmptyReturnsNullopt) {
  p::mpmc_queue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(9);
  auto const got = q.try_pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 9);
}

TEST(MpmcQueue, TerminationAfterDynamicWork) {
  // Each consumed item < 1000 pushes one more; the pending-work counter
  // must keep consumers alive until the chain dies out.
  p::mpmc_queue<int> q;
  q.push(0);
  std::atomic<int> processed{0};
  auto const consumer = [&] {
    int v;
    while (q.pop(v)) {
      if (v < 999)
        q.push(v + 1);
      q.done_processing();
      processed.fetch_add(1);
    }
  };
  std::thread a(consumer), b(consumer), c(consumer);
  a.join();
  b.join();
  c.join();
  EXPECT_EQ(processed.load(), 1000);
  EXPECT_TRUE(q.is_quiescent());
}

TEST(MpmcQueue, CloseWakesBlockedConsumers) {
  p::mpmc_queue<int> q;
  q.push(1);  // keeps pending > 0 so consumers block instead of terminating
  int v = 0;
  ASSERT_TRUE(q.pop(v));
  std::thread blocked([&q] {
    int x;
    EXPECT_FALSE(q.pop(x));  // woken by close(), not by work
  });
  q.close();
  blocked.join();
  q.done_processing();
}

TEST(MpmcQueue, PushBatch) {
  p::mpmc_queue<int> q;
  std::vector<int> items{1, 2, 3, 4, 5};
  q.push_batch(items.begin(), items.end());
  EXPECT_EQ(q.size(), 5u);
  std::set<int> got;
  int v;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(v));
    got.insert(v);
    q.done_processing();
  }
  EXPECT_EQ(got, std::set<int>({1, 2, 3, 4, 5}));
}

TEST(MpmcQueue, PushAfterCloseIsDroppedAndReported) {
  p::mpmc_queue<int> q;
  q.push(1);
  q.close();
  // A closed queue accepts nothing: push reports the drop, batches report
  // zero accepted, and no pop may ever return a post-close item.
  EXPECT_FALSE(q.push(2));
  std::vector<int> items{3, 4, 5};
  EXPECT_EQ(q.push_batch(items.begin(), items.end()), 0u);
  int v = 0;
  EXPECT_FALSE(q.pop(v));  // closed: even pre-close items are discarded
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_TRUE(q.is_closed());
}

TEST(MpmcQueue, CloseReleasesDiscardedSlotsForQuiescence) {
  // Regression: close() used to clear the deque without decrementing the
  // pending-work counter, so a queue closed with unpopped items never
  // became quiescent again.
  p::mpmc_queue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  q.close();
  EXPECT_TRUE(q.is_quiescent());
}

TEST(MpmcQueue, DrainReturnsUnpoppedItemsLosslessly) {
  p::mpmc_queue<int> q;
  for (int i = 0; i < 5; ++i)
    q.push(i);
  int v = 0;
  ASSERT_TRUE(q.pop(v));
  q.done_processing();
  auto const rest = q.drain();
  EXPECT_EQ(rest.size(), 4u);  // every item popped exactly once or drained
  EXPECT_TRUE(q.is_closed());
  EXPECT_TRUE(q.is_quiescent());
  EXPECT_FALSE(q.pop(v));
}

TEST(MpmcQueue, ConcurrentCloseVsProducersNeverLosesAccountedItem) {
  // TSAN regression for the shutdown path: producers race close(); every
  // item is either rejected at push (return false) or popped/drained —
  // accounted exactly once, and the queue ends quiescent.
  p::mpmc_queue<int> q;
  std::atomic<int> accepted{0};
  std::atomic<int> consumed{0};
  auto const producer = [&] {
    for (int i = 0; i < 2000; ++i)
      if (q.push(i))
        accepted.fetch_add(1);
  };
  auto const consumer = [&] {
    int v;
    while (q.pop(v)) {
      consumed.fetch_add(1);
      q.done_processing();
    }
  };
  std::thread p0(producer), p1(producer);
  std::thread c0(consumer), c1(consumer);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto const leftover = q.drain();
  p0.join();
  p1.join();
  c0.join();
  c1.join();
  EXPECT_EQ(consumed.load() + static_cast<int>(leftover.size()),
            accepted.load());
  EXPECT_TRUE(q.is_quiescent());
}

// --- lane_buffers -----------------------------------------------------------

TEST(LaneBuffers, LanesAreCacheLinePadded) {
  static_assert(alignof(p::lane_buffers<int>::lane_t) >= p::cache_line_size);
  static_assert(sizeof(p::lane_buffers<int>::lane_t) % p::cache_line_size ==
                0);
  SUCCEED();
}

TEST(LaneBuffers, AcquireClearsCountsButKeepsCapacity) {
  p::lane_buffers<int> lanes;
  EXPECT_FALSE(lanes.acquire(4));  // first round: cold
  for (int i = 0; i < 100; ++i)
    lanes[1].buf.push_back(i);
  lanes[2].suppressed = 7;
  EXPECT_EQ(lanes.total(), 100u);
  EXPECT_EQ(lanes.total_suppressed(), 7u);
  auto const cap = lanes[1].buf.capacity();

  EXPECT_TRUE(lanes.acquire(4));  // warm: same lane count
  EXPECT_EQ(lanes.total(), 0u);
  EXPECT_EQ(lanes.total_suppressed(), 0u);
  EXPECT_GE(lanes[1].buf.capacity(), cap);  // capacity survived
  EXPECT_EQ(lanes.rounds(), 2u);
}

TEST(LaneBuffers, AcquireGrowsAndReportsColdStart) {
  p::lane_buffers<int> lanes;
  EXPECT_FALSE(lanes.acquire(2));
  EXPECT_EQ(lanes.num_lanes(), 2u);
  EXPECT_FALSE(lanes.acquire(8));  // growth: not (fully) reused
  EXPECT_EQ(lanes.num_lanes(), 8u);
  EXPECT_TRUE(lanes.acquire(3));  // shrink requests reuse the larger array
  EXPECT_EQ(lanes.num_lanes(), 8u);
}

TEST(LaneBuffers, SizesFeedsTheCompactionScan) {
  p::lane_buffers<int> lanes;
  lanes.acquire(3);
  lanes[0].buf = {1, 2};
  lanes[2].buf = {3, 4, 5};
  std::size_t sizes[3];
  lanes.sizes(3, sizes);
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[1], 0u);
  EXPECT_EQ(sizes[2], 3u);
  EXPECT_EQ(lanes.total(), 5u);
}

TEST(LaneBuffers, ReleaseDropsEverything) {
  p::lane_buffers<int> lanes;
  lanes.acquire(4);
  lanes[0].buf = {1, 2, 3};
  lanes.release();
  EXPECT_EQ(lanes.num_lanes(), 0u);
  EXPECT_FALSE(lanes.acquire(2));  // next round after release is cold again
}

TEST(LaneBuffers, ConcurrentLanesDoNotInterfere) {
  p::lane_buffers<int> lanes;
  p::thread_pool pool(4);
  std::size_t const n = 10000;
  std::size_t const k = 8;
  std::size_t const step = (n + k - 1) / k;
  lanes.acquire(k);
  pool.run_blocked(
      n,
      [&](std::size_t lo, std::size_t hi) {
        auto& lane = lanes[lo / step];
        for (std::size_t i = lo; i < hi; ++i)
          lane.buf.push_back(static_cast<int>(i));
      },
      step);
  EXPECT_EQ(lanes.total(), n);
  // Chunk-major, input-order within a chunk: concatenation is 0..n-1.
  std::vector<int> all;
  for (std::size_t c = 0; c * step < n; ++c)
    all.insert(all.end(), lanes[c].buf.begin(), lanes[c].buf.end());
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(all[i], static_cast<int>(i));
}

TEST(ExclusiveScan, ScanMapMatchesMaterializedScan) {
  p::thread_pool pool(4);
  std::size_t const n = 5000;
  std::vector<std::size_t> in(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = (i * 31) % 13;
  std::vector<std::size_t> out_arr(n), out_map(n);
  auto const t1 = p::exclusive_scan(pool, in.data(), n, out_arr.data());
  auto const t2 = p::exclusive_scan_map(
      pool, n, [&in](std::size_t i) { return in[i]; }, out_map.data());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(out_arr, out_map);  // bit-identical: same blocked combine
}

TEST(ExclusiveScan, ScanMapEmptyAndSingle) {
  p::thread_pool pool(2);
  std::vector<long> out(1, -1);
  EXPECT_EQ(p::exclusive_scan_map(
                pool, 0, [](std::size_t) { return 9L; }, out.data()),
            0L);
  EXPECT_EQ(p::exclusive_scan_map(
                pool, 1, [](std::size_t) { return 9L; }, out.data()),
            9L);
  EXPECT_EQ(out[0], 0L);
}

TEST(ExclusiveScan, DeterministicAcrossSubstratesForFixedWidth) {
  // The blocked scan's per-chunk combine runs in chunk order on the
  // coordinating thread: for one pool width the offsets are a pure
  // function of (n, input), whichever queue substrate runs the sweeps.
  std::size_t const n = 100000;
  std::vector<std::size_t> in(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = (i * 7 + 3) % 97;
  std::vector<std::size_t> a(n), b(n);
  p::thread_pool stealing(8, p::queue_mode::stealing);
  p::thread_pool central(8, p::queue_mode::central);
  auto const ta = p::exclusive_scan(stealing, in.data(), n, a.data());
  auto const tb = p::exclusive_scan(central, in.data(), n, b.data());
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(a, b);
}
