// Tests for the frontier family: sparse, dense, async queue, distributed —
// plus the interface concept and representation conversions.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "core/frontier/frontier.hpp"
#include "mpsim/communicator.hpp"
#include "parallel/thread_pool.hpp"

namespace f = essentials::frontier;
namespace p = essentials::parallel;
namespace mp = essentials::mpsim;
using essentials::vertex_t;

// --- sparse ------------------------------------------------------------------

TEST(SparseFrontier, Listing2Interface) {
  f::sparse_frontier<vertex_t> fr;
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_TRUE(fr.empty());
  fr.add_vertex(3);
  fr.add_vertex(7);
  EXPECT_EQ(fr.size(), 2u);
  EXPECT_EQ(fr.get_active_vertex(0), 3);
  EXPECT_EQ(fr.get_active_vertex(1), 7);
  EXPECT_THROW(fr.get_active_vertex(2), essentials::graph_error);
}

TEST(SparseFrontier, ConcurrentAddsLoseNothing) {
  f::sparse_frontier<vertex_t> fr;
  p::thread_pool pool(4);
  pool.run_blocked(5000, [&fr](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      fr.add_vertex(static_cast<vertex_t>(i));
  });
  EXPECT_EQ(fr.size(), 5000u);
  auto v = fr.to_vector();
  std::sort(v.begin(), v.end());
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(v[i], static_cast<vertex_t>(i));
}

TEST(SparseFrontier, AppendBulk) {
  f::sparse_frontier<vertex_t> fr;
  std::vector<vertex_t> chunk{1, 2, 3};
  fr.append_bulk(chunk.data(), chunk.size());
  fr.append_bulk(chunk.data(), 0);  // no-op
  EXPECT_EQ(fr.size(), 3u);
  EXPECT_TRUE(fr.contains(2));
  EXPECT_FALSE(fr.contains(9));
}

TEST(SparseFrontier, ClearAndSwap) {
  f::sparse_frontier<vertex_t> a, b;
  a.add_vertex(1);
  b.add_vertex(2);
  b.add_vertex(3);
  swap(a, b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 1u);
  a.clear();
  EXPECT_TRUE(a.empty());
}

// Regression (audited concurrency contract, run under TSAN in CI): a
// producer still draining appends while the enactor recycles the frontier
// with clear() must not corrupt the vector — clear() serializes on the
// same lock as add_vertex/append_bulk.  Publications are whole: whatever
// survives the clears, size() and iteration must agree.
TEST(SparseFrontier, ConcurrentAppendsDuringClearDoNotCorrupt) {
  for (int round = 0; round < 20; ++round) {
    f::sparse_frontier<vertex_t> fr;
    std::thread producer([&fr] {
      vertex_t chunk[8] = {1, 2, 3, 4, 5, 6, 7, 8};
      for (int i = 0; i < 300; ++i) {
        fr.add_vertex(static_cast<vertex_t>(i));
        fr.append_bulk(chunk, 8);
      }
    });
    std::thread recycler([&fr] {
      for (int i = 0; i < 50; ++i)
        fr.clear();
    });
    producer.join();
    recycler.join();
    std::size_t seen = 0;
    fr.for_each_active([&seen](vertex_t) { ++seen; });
    EXPECT_EQ(seen, fr.size());
    fr.clear();
    EXPECT_TRUE(fr.empty());
  }
}

// Regression (run under TSAN in CI): swap() takes both operands' locks in
// address order, so it can race concurrent producers on either side — and
// two concurrent swaps with opposite argument order cannot deadlock.
TEST(SparseFrontier, ConcurrentAppendsDuringSwapDoNotCorrupt) {
  for (int round = 0; round < 20; ++round) {
    f::sparse_frontier<vertex_t> a, b;
    std::thread prod_a([&a] {
      for (int i = 0; i < 500; ++i)
        a.add_vertex(static_cast<vertex_t>(i));
    });
    std::thread prod_b([&b] {
      vertex_t chunk[4] = {100, 101, 102, 103};
      for (int i = 0; i < 125; ++i)
        b.append_bulk(chunk, 4);
    });
    std::thread swapper_1([&a, &b] {
      for (int i = 0; i < 25; ++i)
        swap(a, b);
    });
    std::thread swapper_2([&a, &b] {
      for (int i = 0; i < 25; ++i)
        swap(b, a);  // opposite argument order: exercises lock ordering
    });
    prod_a.join();
    prod_b.join();
    swapper_1.join();
    swapper_2.join();
    // Nothing was lost: both frontiers together hold every publication.
    EXPECT_EQ(a.size() + b.size(), 500u + 500u);
  }
}

// --- dense -------------------------------------------------------------------

TEST(DenseFrontier, MembershipAndCount) {
  f::dense_frontier<vertex_t> fr(100);
  EXPECT_TRUE(fr.empty());
  fr.add_vertex(0);
  fr.add_vertex(63);
  fr.add_vertex(64);
  fr.add_vertex(99);
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_TRUE(fr.contains(63));
  EXPECT_FALSE(fr.contains(50));
  fr.remove_vertex(63);
  EXPECT_FALSE(fr.contains(63));
  EXPECT_EQ(fr.size(), 3u);
}

TEST(DenseFrontier, TryAddReportsFirstClaim) {
  f::dense_frontier<vertex_t> fr(10);
  EXPECT_TRUE(fr.try_add_vertex(5));
  EXPECT_FALSE(fr.try_add_vertex(5));
}

TEST(DenseFrontier, ToVectorIsSorted) {
  f::dense_frontier<vertex_t> fr(200);
  for (vertex_t v : {150, 3, 77, 64, 199})
    fr.add_vertex(v);
  EXPECT_EQ(fr.to_vector(), (std::vector<vertex_t>{3, 64, 77, 150, 199}));
}

TEST(DenseFrontier, ConcurrentAddsAreExact) {
  f::dense_frontier<vertex_t> fr(4096);
  p::thread_pool pool(4);
  pool.run_blocked(4096, [&fr](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      if (i % 3 == 0)
        fr.add_vertex(static_cast<vertex_t>(i));
  });
  EXPECT_EQ(fr.size(), (4096 + 2) / 3);
}

// --- conversions ---------------------------------------------------------------

TEST(FrontierConversions, SparseDenseRoundTrip) {
  f::sparse_frontier<vertex_t> sparse(std::vector<vertex_t>{9, 1, 5});
  auto dense = f::to_dense(sparse, 16);
  EXPECT_EQ(dense.size(), 3u);
  EXPECT_TRUE(dense.contains(9));
  auto back = f::to_sparse(dense);
  EXPECT_EQ(back.to_vector(), (std::vector<vertex_t>{1, 5, 9}));
}

TEST(FrontierConversions, DensityMeasures) {
  f::dense_frontier<vertex_t> dense(100);
  for (vertex_t v = 0; v < 25; ++v)
    dense.add_vertex(v);
  EXPECT_DOUBLE_EQ(f::density(dense), 0.25);
  f::sparse_frontier<vertex_t> sparse(std::vector<vertex_t>{1, 2});
  EXPECT_DOUBLE_EQ(f::density(sparse, 8), 0.25);
}

TEST(FrontierConversions, SeedQueueTransfersAll) {
  f::sparse_frontier<vertex_t> sparse(std::vector<vertex_t>{4, 8, 15});
  f::async_queue_frontier<vertex_t> q;
  f::seed_queue(sparse, q);
  EXPECT_EQ(q.size(), 3u);
}

// --- async queue -----------------------------------------------------------------

TEST(AsyncQueueFrontier, PopProcessFinishTerminates) {
  f::async_queue_frontier<vertex_t> fr;
  fr.add_vertex(1);
  fr.add_vertex(2);
  std::set<vertex_t> seen;
  vertex_t v;
  while (fr.pop_vertex(v)) {
    seen.insert(v);
    fr.finish_vertex();
  }
  EXPECT_EQ(seen, (std::set<vertex_t>{1, 2}));
  EXPECT_TRUE(fr.is_quiescent());
}

TEST(AsyncQueueFrontier, DynamicWorkKeepsConsumersAlive) {
  f::async_queue_frontier<vertex_t> fr;
  fr.add_vertex(0);
  std::atomic<int> processed{0};
  auto consumer = [&] {
    vertex_t x;
    while (fr.pop_vertex(x)) {
      if (x < 200)
        fr.add_vertex(x + 1);
      fr.finish_vertex();
      processed.fetch_add(1);
    }
  };
  std::thread t1(consumer), t2(consumer);
  t1.join();
  t2.join();
  EXPECT_EQ(processed.load(), 201);
}

TEST(AsyncQueueFrontier, CloseEndsEarly) {
  f::async_queue_frontier<vertex_t> fr;
  fr.add_vertex(1);
  fr.close();
  vertex_t v;
  EXPECT_FALSE(fr.pop_vertex(v));
}

// --- reuse / shutdown-drain audit (PR 8) -----------------------------------
// Separate suite name: these join the CI TSAN matrix.

TEST(AsyncQueueFrontierReuse, ClearReopensAClosedQueue) {
  f::async_queue_frontier<vertex_t> fr;
  fr.add_vertex(1);
  fr.close();
  vertex_t v;
  EXPECT_FALSE(fr.pop_vertex(v));  // closed: stale item unreachable

  fr.clear();  // reopen + discard: the queue is a fresh frontier again
  for (vertex_t i = 0; i < 5; ++i)
    fr.add_vertex(i);
  std::set<vertex_t> seen;
  while (fr.pop_vertex(v)) {
    seen.insert(v);
    fr.finish_vertex();
  }
  EXPECT_EQ(seen, (std::set<vertex_t>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(fr.is_quiescent());
}

TEST(AsyncQueueFrontierReuse, ClearDiscardsStaleWorkExactly) {
  f::async_queue_frontier<vertex_t> fr;
  for (vertex_t i = 100; i < 110; ++i)
    fr.add_vertex(i);  // a run that never consumed its work
  fr.clear();
  fr.add_vertex(7);
  fr.add_vertex(8);
  // Drain must yield exactly the post-clear items: no stale vertex, and no
  // phantom pending count wedging the quiescence detector.
  std::set<vertex_t> seen;
  vertex_t v;
  while (fr.pop_vertex(v)) {
    seen.insert(v);
    fr.finish_vertex();
  }
  EXPECT_EQ(seen, (std::set<vertex_t>{7, 8}));
  EXPECT_TRUE(fr.is_quiescent());
}

TEST(AsyncQueueFrontierReuse, ReuseAfterDrainedRunYieldsOnlyNewWork) {
  f::async_queue_frontier<vertex_t> fr;
  fr.add_vertex(1);
  vertex_t v;
  while (fr.pop_vertex(v))
    fr.finish_vertex();  // run 1 completes by quiescence, not close
  fr.clear();            // no-op semantically, must still be safe
  fr.add_vertex(42);
  ASSERT_TRUE(fr.pop_vertex(v));
  EXPECT_EQ(v, 42);
  fr.finish_vertex();
  EXPECT_TRUE(fr.is_quiescent());
}

TEST(AsyncQueueFrontierReuse, ProducerStormAcrossCloseClearCycles) {
  // The audited contract: clear() requires the previous run's *consumers*
  // to have finished popping, but producers may keep racing — a late
  // add_vertex lands in the old or the new run, never wedges the queue.
  // This is the TSAN regression for the shutdown-drain path.
  f::async_queue_frontier<vertex_t> fr;
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int t = 0; t < 3; ++t)
    producers.emplace_back([&] {
      vertex_t i = 0;
      while (!stop.load(std::memory_order_acquire))
        fr.add_vertex(i++);
    });

  std::atomic<std::size_t> consumed{0};
  for (int cycle = 0; cycle < 25; ++cycle) {
    fr.clear();  // consumers of the previous cycle joined below
    auto consumer = [&] {
      vertex_t v;
      while (fr.pop_vertex(v)) {
        consumed.fetch_add(1, std::memory_order_relaxed);
        fr.finish_vertex();
      }
    };
    std::thread c1(consumer), c2(consumer);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    fr.close();
    c1.join();
    c2.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : producers)
    t.join();
  EXPECT_GT(consumed.load(), 0u);
}

// --- concepts --------------------------------------------------------------------

TEST(FrontierConcepts, AllRepresentationsSatisfyTheInterface) {
  static_assert(f::frontier_like<f::sparse_frontier<vertex_t>>);
  static_assert(f::frontier_like<f::dense_frontier<vertex_t>>);
  static_assert(f::frontier_like<f::async_queue_frontier<vertex_t>>);
  static_assert(f::indexable_frontier<f::sparse_frontier<vertex_t>>);
  static_assert(!f::indexable_frontier<f::dense_frontier<vertex_t>>);
  static_assert(f::queryable_frontier<f::dense_frontier<vertex_t>>);
  static_assert(f::queryable_frontier<f::sparse_frontier<vertex_t>>);
  SUCCEED();
}

// --- distributed ------------------------------------------------------------------

TEST(DistributedFrontier, RoutesVerticesToOwners) {
  constexpr int P = 3;
  mp::communicator::run(P, [](mp::communicator& comm, int rank) {
    f::distributed_frontier<vertex_t> fr(
        comm, rank, [](vertex_t v) { return static_cast<int>(v % P); });
    // Every rank activates vertices 0..8; each owner must end up with its
    // residue class (with P copies each, one per activating rank).
    for (vertex_t v = 0; v < 9; ++v)
      fr.add_vertex(v);
    auto const global = fr.exchange(0);
    EXPECT_EQ(global, 27u);  // 9 activations from each of 3 ranks
    for (vertex_t const v : fr.local())
      EXPECT_EQ(static_cast<int>(v % P), rank);
    EXPECT_EQ(fr.size(), 9u);  // 3 owned vertices x 3 activating ranks
  });
}

TEST(DistributedFrontier, EmptyExchangeReportsZero) {
  mp::communicator::run(2, [](mp::communicator& comm, int rank) {
    f::distributed_frontier<vertex_t> fr(comm, rank,
                                         [](vertex_t v) { return v % 2; });
    EXPECT_EQ(fr.exchange(0), 0u);
    EXPECT_TRUE(fr.empty());
  });
}

TEST(DistributedFrontier, MultipleSuperstepsWithDistinctTags) {
  mp::communicator::run(2, [](mp::communicator& comm, int rank) {
    f::distributed_frontier<vertex_t> fr(comm, rank,
                                         [](vertex_t v) { return v % 2; });
    for (int step = 0; step < 5; ++step) {
      if (rank == 0)
        fr.add_vertex(static_cast<vertex_t>(2 * step + 1));  // owned by rank 1
      auto const global = fr.exchange(step);
      EXPECT_EQ(global, 1u) << "step " << step;
      if (rank == 1) {
        ASSERT_EQ(fr.size(), 1u);
        EXPECT_EQ(fr.local()[0], static_cast<vertex_t>(2 * step + 1));
      }
    }
  });
}
