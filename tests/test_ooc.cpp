// Tests for the out-of-core tier (PR 9): the mmap-backed block-coded
// graph (io/mapped.hpp) and the registry's cold-epoch demotion
// (engine/registry.hpp).  Suite names carry the `Mapped` / `Tier`
// prefixes so the CI TSAN leg picks them up alongside `Compressed`.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/sssp.hpp"
#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "engine/engine.hpp"
#include "engine/registry.hpp"
#include "engine/stats.hpp"
#include "graph/build.hpp"
#include "graph/dynamic.hpp"
#include "generators/generators.hpp"
#include "graph/graph.hpp"
#include "io/mapped.hpp"

namespace e = essentials;
namespace g = e::graph;
namespace io = e::io;
namespace eng = e::engine;
namespace alg = e::algorithms;
namespace ex = e::execution;
namespace op = e::operators;
namespace fr = e::frontier;
using e::edge_t;
using e::vertex_t;
using e::weight_t;

namespace {

g::csr_t<> canonical(g::coo_t<> coo) {
  g::remove_self_loops(coo);
  g::sort_and_deduplicate(coo, g::duplicate_policy::keep_min);
  return g::build_csr(coo);
}

g::csr_t<> rmat_like(int n, int m, unsigned seed) {
  return canonical(e::generators::erdos_renyi(n, m, {0.5f, 2.0f}, seed));
}

/// Weighted path 0 -> 1 -> ... -> n-1, optionally with a 0 -> n-1 shortcut
/// (the same epoch-distinguishing shape test_engine.cpp uses).
g::graph_csr path_graph(vertex_t n, bool shortcut = false) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = n;
  for (vertex_t v = 0; v + 1 < n; ++v)
    coo.push_back(v, v + 1, 1.0f);
  if (shortcut)
    coo.push_back(0, n - 1, 1.0f);
  return g::from_coo<g::graph_csr>(std::move(coo));
}

/// A per-test scratch directory under the system temp dir, wiped on entry
/// so reruns never see stale spill files.
std::string fresh_dir(std::string const& tag) {
  auto const d =
      std::filesystem::temp_directory_path() / ("essentials-ooc-" + tag);
  std::filesystem::remove_all(d);
  std::filesystem::create_directories(d);
  return d.string();
}

std::vector<vertex_t> sorted_copy(std::vector<vertex_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

void expect_same_csr(g::csr_t<> const& got, g::csr_t<> const& want) {
  ASSERT_EQ(got.num_rows, want.num_rows);
  ASSERT_EQ(got.num_cols, want.num_cols);
  ASSERT_TRUE(std::equal(got.row_offsets.begin(), got.row_offsets.end(),
                         want.row_offsets.begin(), want.row_offsets.end()));
  ASSERT_TRUE(std::equal(got.column_indices.begin(), got.column_indices.end(),
                         want.column_indices.begin(),
                         want.column_indices.end()));
  ASSERT_TRUE(std::equal(got.values.begin(), got.values.end(),
                         want.values.begin(), want.values.end()));
}

}  // namespace

// ---------------------------------------------------------------------------
// mapped_graph
// ---------------------------------------------------------------------------

TEST(Mapped, RoundTripBitIdentical) {
  auto const dir = fresh_dir("roundtrip");
  auto const path = dir + "/g.blk";
  auto const csr = rmat_like(500, 6000, 19);
  io::write_mapped_graph(path, csr);

  io::mapped_graph<> mg(path);
  EXPECT_EQ(mg.get_num_vertices(), csr.num_rows);
  EXPECT_EQ(mg.get_num_edges(),
            static_cast<edge_t>(csr.column_indices.size()));
  EXPECT_EQ(mg.header().magic, io::kMappedMagic);
  EXPECT_EQ(mg.header().off_rows % io::kMappedPage, 0u);
  EXPECT_EQ(mg.header().off_adj % io::kMappedPage, 0u);

  // Neighbor-by-neighbor identity against the source CSR.
  for (vertex_t v = 0; v < csr.num_rows; ++v) {
    std::vector<std::pair<vertex_t, weight_t>> want, got;
    for (edge_t ed = csr.row_offsets[static_cast<std::size_t>(v)];
         ed < csr.row_offsets[static_cast<std::size_t>(v) + 1]; ++ed)
      want.emplace_back(csr.column_indices[static_cast<std::size_t>(ed)],
                        csr.values[static_cast<std::size_t>(ed)]);
    mg.for_each_neighbor(
        v, [&got](vertex_t nb, weight_t w) { got.emplace_back(nb, w); });
    ASSERT_EQ(got, want) << "vertex " << v;
  }
  // Full rehydration (the registry promotion path) is bit-identical.
  expect_same_csr(mg.to_csr(), csr);
  std::filesystem::remove_all(dir);
}

TEST(Mapped, OperatorsAndAlgorithmsMatchPlainCsr) {
  auto const dir = fresh_dir("operators");
  auto const path = dir + "/g.blk";
  auto const csr = rmat_like(600, 7000, 23);
  io::write_mapped_graph(path, csr);
  io::mapped_graph<> mg(path);
  g::graph_csr flat;
  flat.set_csr(csr);

  // advance on the mapped graph, across frontier strategies.
  std::vector<vertex_t> seeds;
  for (vertex_t v = 0; v < 600; v += 9)
    seeds.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));
  auto const cond = [](vertex_t s, vertex_t d, edge_t, weight_t) {
    return (static_cast<std::size_t>(s) + static_cast<std::size_t>(d)) % 4 !=
           0;
  };
  auto const ref =
      sorted_copy(op::advance_push(ex::seq, flat, in, cond).to_vector());
  EXPECT_EQ(sorted_copy(op::advance_push(ex::seq, mg, in, cond).to_vector()),
            ref);
  for (auto const fg : {ex::frontier_gen::scan, ex::frontier_gen::bulk,
                        ex::frontier_gen::listing3})
    EXPECT_EQ(sorted_copy(op::advance_push(ex::par.with_frontier(fg), mg, in,
                                           cond)
                              .to_vector()),
              ref)
        << static_cast<int>(fg);

  // Full traversals never fully materialize the adjacency in RAM.
  EXPECT_EQ(alg::bfs(ex::par, mg, vertex_t{0}).depths,
            alg::bfs(ex::par, flat, vertex_t{0}).depths);
  EXPECT_EQ(alg::sssp(ex::par, mg, vertex_t{0}).distances,
            alg::sssp(ex::par, flat, vertex_t{0}).distances);
  std::filesystem::remove_all(dir);
}

TEST(Mapped, AdviseWindowingIsSafeAndLossless) {
  auto const dir = fresh_dir("advise");
  auto const path = dir + "/g.blk";
  auto const csr = rmat_like(400, 5000, 29);
  io::write_mapped_graph(path, csr);
  io::mapped_graph<> mg(path);

  auto const degree_sum = [&mg] {
    std::uint64_t s = 0;
    for (vertex_t v = 0; v < mg.get_num_vertices(); ++v)
      mg.for_each_neighbor(v, [&s](vertex_t nb, weight_t) {
        s += static_cast<std::uint64_t>(nb);
      });
    return s;
  };
  auto const want = degree_sum();

  // Every advice mode is best-effort and must never change what decodes.
  mg.advise_sequential();
  EXPECT_EQ(degree_sum(), want);
  mg.advise_random();
  EXPECT_EQ(degree_sum(), want);
  for (vertex_t lo = 0; lo < 400; lo += 100)
    mg.advise_window(lo, std::min<vertex_t>(lo + 100, 400));
  EXPECT_EQ(degree_sum(), want);
  mg.advise_window(0, 0);    // empty window: no-op
  mg.advise_window(17, 17);  // degenerate: no-op
  mg.advise_dontneed();      // evict, then fault everything back in
  EXPECT_EQ(degree_sum(), want);
  std::filesystem::remove_all(dir);
}

TEST(Mapped, BfsAndSsspCompleteAfterResidentEviction) {
  // The out-of-core acceptance shape at unit scale: evict the whole
  // adjacency from the resident set, then run full traversals that must
  // page every window back in through the mmap tier.  bench_compressed
  // runs the larger-than-budget version of this at bench scale.
  auto const dir = fresh_dir("ooc-traversal");
  auto const path = dir + "/g.blk";
  auto const csr = rmat_like(3000, 40000, 37);
  io::write_mapped_graph(path, csr);
  io::mapped_graph<> mg(path);
  g::graph_csr flat;
  flat.set_csr(csr);

  mg.advise_dontneed();  // cold start: nothing resident
  mg.advise_sequential();
  auto const depths = alg::bfs(ex::par, mg, vertex_t{0}).depths;
  EXPECT_EQ(depths, alg::bfs(ex::par, flat, vertex_t{0}).depths);

  mg.advise_dontneed();  // evict again between algorithms
  auto const dist = alg::sssp(ex::par, mg, vertex_t{0}).distances;
  EXPECT_EQ(dist, alg::sssp(ex::par, flat, vertex_t{0}).distances);
  std::filesystem::remove_all(dir);
}

TEST(Mapped, MoveTransfersTheMapping) {
  auto const dir = fresh_dir("move");
  auto const path = dir + "/g.blk";
  io::write_mapped_graph(path, rmat_like(100, 900, 41));
  io::mapped_graph<> a(path);
  auto const edges = a.get_num_edges();
  io::mapped_graph<> b(std::move(a));
  EXPECT_EQ(b.get_num_edges(), edges);
  io::mapped_graph<> c;
  c = std::move(b);
  EXPECT_EQ(c.get_num_edges(), edges);
  int count = 0;
  c.for_each_neighbor(0, [&count](vertex_t, weight_t) { ++count; });
  EXPECT_EQ(count, static_cast<int>(c.get_out_degree(0)));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Registry storage tier
// ---------------------------------------------------------------------------

TEST(Tier, DemoteColdEpochAndServeWarmLookupFromDisk) {
  auto const dir = fresh_dir("demote");
  eng::engine_stats stats;
  eng::graph_registry<g::graph_csr> reg;
  reg.set_stats(&stats);
  reg.enable_tier({dir, 0});  // unlimited budget: only explicit demotes
  EXPECT_TRUE(reg.tier_enabled());

  reg.publish("g", path_graph(64));  // returned pin dropped immediately
  auto const resident_before = reg.resident_bytes();
  EXPECT_GT(resident_before, 0u);

  // Demote: the epoch moves to disk, RAM accounting goes to zero.
  ASSERT_TRUE(reg.demote("g"));
  auto s = stats.snapshot();
  EXPECT_EQ(s.tier_demotions, 1u);
  EXPECT_EQ(s.tier_promotions, 0u);
  EXPECT_EQ(reg.resident_bytes(), 0u);
  EXPECT_GT(reg.spilled_bytes(), 0u);
  EXPECT_EQ(s.tier_resident_bytes, 0u);
  EXPECT_EQ(s.tier_spilled_bytes, reg.spilled_bytes());
  EXPECT_TRUE(reg.demote("g"));  // idempotent: already on disk

  // Warm lookup pages it back; the snapshot is intact.
  auto const p = reg.lookup("g");
  ASSERT_TRUE(p);
  EXPECT_EQ(p.epoch, 1u);
  EXPECT_EQ(p.graph->get_num_vertices(), 64);
  EXPECT_EQ(alg::sssp(ex::seq, *p.graph, 0).distances[63], 63.0f);
  s = stats.snapshot();
  EXPECT_EQ(s.tier_promotions, 1u);
  EXPECT_EQ(reg.resident_bytes(), resident_before);
  // The spill file stays on disk for this epoch (re-demotion is free —
  // covered by Tier.ReDemoteOfUnchangedEpochReusesSpillFile).
  EXPECT_GT(reg.spilled_bytes(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(Tier, ReDemoteOfUnchangedEpochReusesSpillFile) {
  auto const dir = fresh_dir("redemote");
  eng::engine_stats stats;
  eng::graph_registry<g::graph_csr> reg;
  reg.set_stats(&stats);
  reg.enable_tier({dir, 0});
  reg.publish("g", path_graph(64));
  ASSERT_TRUE(reg.demote("g"));
  auto const spilled = reg.spilled_bytes();
  { auto const p = reg.lookup("g"); }  // promote, then drop the pin
  EXPECT_EQ(stats.snapshot().tier_promotions, 1u);
  ASSERT_TRUE(reg.demote("g"));  // fast path: file already durable
  EXPECT_EQ(reg.spilled_bytes(), spilled);
  EXPECT_EQ(stats.snapshot().tier_demotions, 2u);
  EXPECT_EQ(reg.resident_bytes(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(Tier, PinnedEpochIsNeverDemoted) {
  auto const dir = fresh_dir("pinned");
  eng::engine_stats stats;
  eng::graph_registry<g::graph_csr> reg;
  reg.set_stats(&stats);
  reg.enable_tier({dir, 0});
  auto const pin = reg.publish("g", path_graph(32));  // reader holds epoch 1
  EXPECT_FALSE(reg.demote("g"));
  EXPECT_EQ(stats.snapshot().tier_demotions, 0u);
  EXPECT_GT(reg.resident_bytes(), 0u);
  EXPECT_EQ(reg.spilled_bytes(), 0u);
  // The pinned snapshot stays fully usable throughout.
  EXPECT_EQ(alg::sssp(ex::seq, *pin.graph, 0).distances[31], 31.0f);
  std::filesystem::remove_all(dir);
}

TEST(Tier, BudgetEvictsLeastRecentlyUsedVictim) {
  auto const dir = fresh_dir("budget");
  eng::engine_stats stats;
  eng::graph_registry<g::graph_csr> reg;
  reg.set_stats(&stats);
  reg.publish("a", path_graph(512));
  auto const per_graph = reg.resident_bytes();
  ASSERT_GT(per_graph, 0u);

  // Budget fits two graphs but not three.
  reg.enable_tier({dir, per_graph * 5 / 2});
  reg.publish("b", path_graph(512));
  EXPECT_EQ(stats.snapshot().tier_demotions, 0u);  // 2 <= 2.5: all resident

  { auto const p = reg.lookup("a"); }  // bump "a" above "b" in the LRU order
  reg.publish("c", path_graph(512));   // 3 > 2.5: evict exactly one victim
  EXPECT_EQ(stats.snapshot().tier_demotions, 1u);
  EXPECT_GT(reg.spilled_bytes(), 0u);

  // "a" was touched last: still resident (lookup does not promote).
  { auto const p = reg.lookup("a"); }
  EXPECT_EQ(stats.snapshot().tier_promotions, 0u);
  // "b" was the cold one: its lookup pages it back from disk.
  auto const pb = reg.lookup("b");
  ASSERT_TRUE(pb);
  EXPECT_EQ(pb.graph->get_num_vertices(), 512);
  EXPECT_EQ(stats.snapshot().tier_promotions, 1u);
  std::filesystem::remove_all(dir);
}

TEST(Tier, RepublishInvalidatesTheSpillFile) {
  auto const dir = fresh_dir("republish");
  eng::engine_stats stats;
  eng::graph_registry<g::graph_csr> reg;
  reg.set_stats(&stats);
  reg.enable_tier({dir, 0});
  reg.publish("g", path_graph(64));
  ASSERT_TRUE(reg.demote("g"));
  EXPECT_GT(reg.spilled_bytes(), 0u);

  // Epoch 2 supersedes the on-disk epoch 1: the stale file is deleted and
  // unaccounted, and lookups serve the new epoch from RAM.
  reg.publish("g", path_graph(64, /*shortcut=*/true));
  EXPECT_EQ(reg.spilled_bytes(), 0u);
  EXPECT_EQ(stats.snapshot().tier_spilled_bytes, 0u);
  auto const promotions = stats.snapshot().tier_promotions;
  auto const p = reg.lookup("g");
  ASSERT_TRUE(p);
  EXPECT_EQ(p.epoch, 2u);
  EXPECT_EQ(alg::sssp(ex::seq, *p.graph, 0).distances[63], 1.0f);
  EXPECT_EQ(stats.snapshot().tier_promotions, promotions);  // served resident
  // No orphaned spill files remain in the directory.
  std::size_t files = 0;
  for (auto const& entry : std::filesystem::directory_iterator(dir))
    files += entry.is_regular_file() ? 1 : 0;
  EXPECT_EQ(files, 0u);
  std::filesystem::remove_all(dir);
}

TEST(Tier, RemoveDeletesTheSpillFile) {
  auto const dir = fresh_dir("remove");
  eng::graph_registry<g::graph_csr> reg;
  reg.enable_tier({dir, 0});
  reg.publish("g", path_graph(64));
  ASSERT_TRUE(reg.demote("g"));
  EXPECT_GT(reg.spilled_bytes(), 0u);
  EXPECT_TRUE(reg.remove("g"));
  EXPECT_EQ(reg.spilled_bytes(), 0u);
  EXPECT_EQ(reg.resident_bytes(), 0u);
  for (auto const& entry : std::filesystem::directory_iterator(dir))
    FAIL() << "orphaned spill file: " << entry.path();
  EXPECT_FALSE(reg.lookup("g"));
  std::filesystem::remove_all(dir);
}

TEST(Tier, DeltaChainSurvivesDemotion) {
  auto const dir = fresh_dir("delta");
  eng::graph_registry<g::graph_csr> reg;
  reg.enable_tier({dir, 0});

  g::dynamic_graph_t<> dyn(16);
  dyn.add_edge(0, 1, 1.0f);
  reg.publish("g", dyn);  // non-const: delta-capable, epoch 1
  dyn.add_edge(1, 2, 1.0f);
  reg.publish("g", dyn);  // epoch 2, carries the delta
  ASSERT_TRUE(reg.delta_between("g", 1, 2).complete);

  // Demotion moves the snapshot, not the chain.
  ASSERT_TRUE(reg.demote("g"));
  auto const mid = reg.delta_between("g", 1, 2);
  EXPECT_TRUE(mid.complete);
  EXPECT_FALSE(mid.records.empty());

  // Promotion restores the snapshot with the chain still warm, and the
  // next dyn publish extends it across the demote/promote cycle.
  auto const p = reg.lookup("g");
  ASSERT_TRUE(p);
  EXPECT_EQ(p.epoch, 2u);
  dyn.add_edge(2, 3, 1.0f);
  reg.publish("g", dyn);  // epoch 3
  EXPECT_TRUE(reg.delta_between("g", 1, 3).complete);
  std::filesystem::remove_all(dir);
}

TEST(Tier, EngineServesJobsAcrossDemotion) {
  auto const dir = fresh_dir("engine");
  eng::engine_options opt;
  opt.num_runners = 1;
  opt.max_queued = 8;
  opt.cache_capacity = 0;  // force every job through the registry lookup
  opt.tier_spill_dir = dir;
  eng::analytics_engine<g::graph_csr> engine(opt);
  ASSERT_TRUE(engine.registry().tier_enabled());

  engine.registry().publish("g", path_graph(64));
  ASSERT_TRUE(engine.registry().demote("g"));
  EXPECT_EQ(engine.stats().tier_demotions, 1u);
  EXPECT_EQ(engine.stats().tier_resident_bytes, 0u);

  // A job submitted against the demoted graph transparently promotes it.
  eng::job_desc d;
  d.graph = "g";
  d.algorithm = "sssp";
  d.params = "src=0";
  auto j = engine.run(
      d, [](g::graph_csr const& gr,
            eng::job_context&) -> std::shared_ptr<void const> {
        return std::make_shared<alg::sssp_result<weight_t> const>(
            alg::sssp(ex::seq, gr, 0));
      });
  ASSERT_EQ(j->status(), eng::job_status::completed);
  EXPECT_EQ(j->graph_epoch(), 1u);
  EXPECT_EQ(j->result_as<alg::sssp_result<weight_t>>()->distances[63], 63.0f);
  auto const s = engine.stats();
  EXPECT_EQ(s.tier_promotions, 1u);
  EXPECT_GT(s.tier_resident_bytes, 0u);
  std::filesystem::remove_all(dir);
}

TEST(Tier, EnvConfigDrivesTheKnobs) {
  ::setenv("ESSENTIALS_OOC", "1", 1);
  ::setenv("ESSENTIALS_OOC_DIR", "/tmp/essentials-ooc-envtest", 1);
  ::setenv("ESSENTIALS_OOC_BUDGET_MB", "64", 1);
  auto const cfg = eng::tier_config_from_env();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.options.spill_dir, "/tmp/essentials-ooc-envtest");
  EXPECT_EQ(cfg.options.resident_budget_bytes, 64ull * 1024 * 1024);

  ::setenv("ESSENTIALS_OOC", "0", 1);
  EXPECT_FALSE(eng::tier_config_from_env().enabled);
  ::unsetenv("ESSENTIALS_OOC");
  ::unsetenv("ESSENTIALS_OOC_DIR");
  ::unsetenv("ESSENTIALS_OOC_BUDGET_MB");
  EXPECT_FALSE(eng::tier_config_from_env().enabled);
  // Without the env override the spill dir falls back to a temp default.
  EXPECT_FALSE(eng::tier_config_from_env().options.spill_dir.empty());
}
