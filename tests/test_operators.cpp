// Tests for the operator family: advance (push/pull/edge-centric, every
// policy), filter, uniquify, compute, reduce.  The key property throughout:
// every overload of an operator computes the same function — the paper's
// requirement that functionality be identical as execution changes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>

#include "core/execution.hpp"
#include "core/operators/advance.hpp"
#include "core/operators/advance_balanced.hpp"
#include "core/operators/compute.hpp"
#include "core/operators/filter.hpp"
#include "core/operators/neighbor_reduce.hpp"
#include "core/operators/reduce.hpp"
#include "core/telemetry.hpp"
#include "generators/generators.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"

namespace ex = essentials::execution;
namespace op = essentials::operators;
namespace fr = essentials::frontier;
namespace g = essentials::graph;
namespace gen = essentials::generators;
namespace tel = essentials::telemetry;
using essentials::vertex_t;
using essentials::edge_t;
using essentials::weight_t;

namespace {

g::graph_push_pull small_graph() {
  // 0 -> {1, 2}, 1 -> {2, 3}, 2 -> {3}, 3 -> {0}
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  coo.push_back(0, 1, 1.f);
  coo.push_back(0, 2, 1.f);
  coo.push_back(1, 2, 1.f);
  coo.push_back(1, 3, 1.f);
  coo.push_back(2, 3, 1.f);
  coo.push_back(3, 0, 1.f);
  return g::from_coo<g::graph_push_pull>(std::move(coo));
}

g::graph_push_pull rmat_graph(int scale = 8) {
  gen::rmat_options opt;
  opt.scale = scale;
  opt.edge_factor = 8;
  auto coo = gen::rmat(opt);
  g::remove_self_loops(coo);
  return g::from_coo<g::graph_push_pull>(std::move(coo));
}

auto const always = [](vertex_t, vertex_t, edge_t, weight_t) { return true; };

std::vector<vertex_t> sorted(std::vector<vertex_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

// --- push advance -----------------------------------------------------------

TEST(AdvancePush, SeqExpandsAllNeighbors) {
  auto const graph = small_graph();
  fr::sparse_frontier<vertex_t> in(std::vector<vertex_t>{0, 1});
  auto const out = op::advance_push(ex::seq, graph, in, always);
  EXPECT_EQ(sorted(out.to_vector()), (std::vector<vertex_t>{1, 2, 2, 3}));
}

TEST(AdvancePush, ParMatchesSeqAsMultiset) {
  auto const graph = rmat_graph();
  fr::sparse_frontier<vertex_t> in(std::vector<vertex_t>{0, 1, 2, 3, 4, 5});
  auto const s = op::advance_push(ex::seq, graph, in, always);
  auto const p = op::advance_push(ex::par, graph, in, always);
  EXPECT_EQ(sorted(s.to_vector()), sorted(p.to_vector()));
}

TEST(AdvancePush, ConditionFilters) {
  auto const graph = small_graph();
  fr::sparse_frontier<vertex_t> in(std::vector<vertex_t>{0, 1, 2});
  auto const out = op::advance_push(
      ex::par, graph, in,
      [](vertex_t, vertex_t dst, edge_t, weight_t) { return dst == 3; });
  EXPECT_EQ(sorted(out.to_vector()), (std::vector<vertex_t>{3, 3}));
}

TEST(AdvancePush, EmptyFrontierYieldsEmpty) {
  auto const graph = small_graph();
  fr::sparse_frontier<vertex_t> in;
  EXPECT_TRUE(op::advance_push(ex::seq, graph, in, always).empty());
  EXPECT_TRUE(op::advance_push(ex::par, graph, in, always).empty());
}

TEST(AdvancePush, NosyncCompletesAfterWaitIdle) {
  auto const graph = rmat_graph();
  fr::sparse_frontier<vertex_t> in(std::vector<vertex_t>{0, 1, 2, 3});
  auto const expected =
      sorted(op::advance_push(ex::seq, graph, in, always).to_vector());

  ex::parallel_nosync_policy nosync;
  fr::sparse_frontier<vertex_t> out;
  op::advance_push(nosync, graph, in, always, out);
  nosync.pool().wait_idle();  // the caller-owned barrier
  EXPECT_EQ(sorted(out.to_vector()), expected);
}

TEST(AdvancePush, Listing3MutexVariantMatches) {
  auto const graph = rmat_graph();
  fr::sparse_frontier<vertex_t> in(std::vector<vertex_t>{0, 1, 2, 3, 4});
  auto const fast = op::advance_push(ex::par, graph, in, always);
  auto const listing3 = op::neighbors_expand_listing3(ex::par, graph, in, always);
  EXPECT_EQ(sorted(fast.to_vector()), sorted(listing3.to_vector()));
}

TEST(AdvancePush, DenseOutputDeduplicates) {
  auto const graph = small_graph();
  fr::sparse_frontier<vertex_t> in(std::vector<vertex_t>{0, 1, 2});
  auto const dense = op::advance_push_to_dense(ex::par, graph, in, always);
  // Neighbors: {1,2} u {2,3} u {3} = {1,2,3} after bitmap dedupe.
  EXPECT_EQ(dense.to_vector(), (std::vector<vertex_t>{1, 2, 3}));
}

TEST(AdvancePush, DenseInputDenseOutput) {
  auto const graph = small_graph();
  fr::dense_frontier<vertex_t> in(4);
  in.add_vertex(0);
  in.add_vertex(3);
  auto const out = op::advance_push(ex::par, graph, in, always);
  EXPECT_EQ(out.to_vector(), (std::vector<vertex_t>{0, 1, 2}));
  auto const out_seq = op::advance_push(ex::seq, graph, in, always);
  EXPECT_EQ(out_seq.to_vector(), out.to_vector());
}

// --- pull advance ------------------------------------------------------------

TEST(AdvancePull, FindsVerticesWithActivePredecessors) {
  auto const graph = small_graph();
  fr::dense_frontier<vertex_t> in(4);
  in.add_vertex(0);  // 0 -> 1, 0 -> 2
  auto const out = op::advance_pull<false>(ex::par, graph, in, always);
  EXPECT_EQ(out.to_vector(), (std::vector<vertex_t>{1, 2}));
}

TEST(AdvancePull, MatchesPushOnRandomGraph) {
  auto const graph = rmat_graph();
  fr::dense_frontier<vertex_t> dense_in(
      static_cast<std::size_t>(graph.get_num_vertices()));
  fr::sparse_frontier<vertex_t> sparse_in;
  for (vertex_t v = 0; v < 40; ++v) {
    dense_in.add_vertex(v);
    sparse_in.add_vertex(v);
  }
  auto const pull = op::advance_pull<false>(ex::par, graph, dense_in, always);
  auto push = op::advance_push(ex::par, graph, sparse_in, always);
  op::uniquify(ex::seq, push);
  EXPECT_EQ(pull.to_vector(), push.to_vector());
}

TEST(AdvancePull, EarlyExitStillFindsEveryReachableVertex) {
  auto const graph = rmat_graph(7);
  fr::dense_frontier<vertex_t> in(
      static_cast<std::size_t>(graph.get_num_vertices()));
  for (vertex_t v = 0; v < 10; ++v)
    in.add_vertex(v);
  auto const all = op::advance_pull<false>(ex::par, graph, in, always);
  auto const first = op::advance_pull<true>(ex::par, graph, in, always);
  EXPECT_EQ(all.to_vector(), first.to_vector());
}

TEST(AdvancePull, SeqMatchesPar) {
  auto const graph = rmat_graph(7);
  fr::dense_frontier<vertex_t> in(
      static_cast<std::size_t>(graph.get_num_vertices()));
  for (vertex_t v = 0; v < graph.get_num_vertices(); v += 7)
    in.add_vertex(v);
  auto const s = op::advance_pull<false>(ex::seq, graph, in, always);
  auto const p = op::advance_pull<false>(ex::par, graph, in, always);
  EXPECT_EQ(s.to_vector(), p.to_vector());
}

// --- edge-centric ---------------------------------------------------------------

TEST(AdvanceEdges, ExpandAndConsumeEdgeFrontier) {
  auto const graph = small_graph();
  fr::sparse_frontier<vertex_t> vf(std::vector<vertex_t>{0, 1});
  auto const ef = op::expand_to_edges(ex::par, graph, vf);
  EXPECT_EQ(ef.size(), 4u);  // deg(0)=2, deg(1)=2

  // Consume the edge frontier: keep destinations of edges out of vertex 0.
  auto const vf2 = op::advance_edges(
      ex::par, graph, ef,
      [](vertex_t src, vertex_t, edge_t, weight_t) { return src == 0; });
  EXPECT_EQ(sorted(vf2.to_vector()), (std::vector<vertex_t>{1, 2}));
}

TEST(AdvanceEdges, SeqMatchesPar) {
  auto const graph = rmat_graph(7);
  fr::sparse_frontier<vertex_t> vf(std::vector<vertex_t>{1, 2, 3});
  auto const es = op::expand_to_edges(ex::seq, graph, vf);
  auto const ep = op::expand_to_edges(ex::par, graph, vf);
  auto se = es.to_vector();
  auto pe = ep.to_vector();
  std::sort(se.begin(), se.end());
  std::sort(pe.begin(), pe.end());
  EXPECT_EQ(se, pe);
}

// --- filter / uniquify ------------------------------------------------------------

TEST(Filter, SeqAndParAgree) {
  fr::sparse_frontier<vertex_t> in(
      std::vector<vertex_t>{5, 2, 9, 4, 7, 0, 3, 8, 1, 6});
  auto const keep_even = [](vertex_t v) { return v % 2 == 0; };
  auto const s = op::filter(ex::seq, in, keep_even);
  auto const p = op::filter(ex::par, in, keep_even);
  EXPECT_EQ(s.to_vector(), (std::vector<vertex_t>{2, 4, 0, 8, 6}));
  EXPECT_EQ(sorted(p.to_vector()), (std::vector<vertex_t>{0, 2, 4, 6, 8}));
}

TEST(Filter, DenseKeepsOnlyMatching) {
  fr::dense_frontier<vertex_t> in(128);
  for (vertex_t v = 0; v < 128; ++v)
    in.add_vertex(v);
  auto const out =
      op::filter(ex::par, in, [](vertex_t v) { return v % 16 == 0; });
  EXPECT_EQ(out.to_vector(),
            (std::vector<vertex_t>{0, 16, 32, 48, 64, 80, 96, 112}));
  auto const out_seq =
      op::filter(ex::seq, in, [](vertex_t v) { return v % 16 == 0; });
  EXPECT_EQ(out_seq.to_vector(), out.to_vector());
}

TEST(Uniquify, SortBasedRemovesDuplicates) {
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{3, 1, 3, 2, 1, 3});
  op::uniquify(ex::seq, f);
  EXPECT_EQ(f.to_vector(), (std::vector<vertex_t>{1, 2, 3}));
}

TEST(Uniquify, BitmapBasedMatchesSortBased) {
  fr::sparse_frontier<vertex_t> a(
      std::vector<vertex_t>{9, 9, 0, 4, 4, 4, 7, 0, 9});
  auto b = a;
  op::uniquify(ex::seq, a);
  op::uniquify(ex::par, b, 10);
  EXPECT_EQ(a.to_vector(), sorted(b.to_vector()));
}

TEST(Uniquify, EmptyFrontier) {
  fr::sparse_frontier<vertex_t> f;
  op::uniquify(ex::seq, f);
  EXPECT_TRUE(f.empty());
  op::uniquify(ex::par, f, 10);
  EXPECT_TRUE(f.empty());
}

// --- compute / reduce ---------------------------------------------------------------

TEST(Compute, AppliesToEveryActiveElement) {
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{1, 3, 5});
  std::vector<int> hits(8, 0);
  op::compute(ex::par, f, [&hits](vertex_t v) { hits[v] = 1; });
  EXPECT_EQ(hits, (std::vector<int>{0, 1, 0, 1, 0, 1, 0, 0}));
}

TEST(Compute, DenseFrontierVariant) {
  fr::dense_frontier<vertex_t> f(70);
  f.add_vertex(0);
  f.add_vertex(69);
  std::atomic<int> sum{0};
  op::compute(ex::par, f, [&sum](vertex_t v) { sum.fetch_add(v); });
  EXPECT_EQ(sum.load(), 69);
}

TEST(Compute, VerticesSweepCoversWholeGraph) {
  auto const graph = small_graph();
  std::vector<std::atomic<int>> hits(4);
  op::compute_vertices(ex::par, graph,
                       [&hits](vertex_t v) { hits[v].fetch_add(1); });
  for (auto const& h : hits)
    EXPECT_EQ(h.load(), 1);
}

TEST(Compute, NosyncVertexSweepAfterWait) {
  auto const graph = rmat_graph(7);
  std::vector<std::atomic<int>> hits(
      static_cast<std::size_t>(graph.get_num_vertices()));
  ex::parallel_nosync_policy nosync;
  op::compute_vertices(nosync, graph,
                       [&hits](vertex_t v) { hits[v].fetch_add(1); });
  nosync.pool().wait_idle();
  for (auto const& h : hits)
    EXPECT_EQ(h.load(), 1);
}

TEST(Reduce, FrontierSum) {
  fr::sparse_frontier<vertex_t> f(std::vector<vertex_t>{1, 2, 3, 4});
  auto const seq_sum = op::reduce(ex::seq, f, 0L,
                                  [](vertex_t v) { return long{v}; },
                                  [](long a, long b) { return a + b; });
  auto const par_sum = op::reduce(ex::par, f, 0L,
                                  [](vertex_t v) { return long{v}; },
                                  [](long a, long b) { return a + b; });
  EXPECT_EQ(seq_sum, 10);
  EXPECT_EQ(par_sum, 10);
}

TEST(Reduce, VertexDegreeSumEqualsEdgeCount) {
  auto const graph = rmat_graph();
  auto const total = op::reduce_vertices(
      ex::par, graph, 0LL,
      [&graph](vertex_t v) {
        return static_cast<long long>(graph.get_out_degree(v));
      },
      [](long long a, long long b) { return a + b; });
  EXPECT_EQ(total, static_cast<long long>(graph.get_num_edges()));
}

// --- policy semantics (the §III-A claim) ---------------------------------------

TEST(ExecutionPolicies, TypesAreDistinctAndTagged) {
  static_assert(ex::execution_policy<ex::sequenced_policy>);
  static_assert(ex::execution_policy<ex::parallel_policy>);
  static_assert(ex::execution_policy<ex::parallel_nosync_policy>);
  static_assert(ex::synchronous_policy<ex::sequenced_policy>);
  static_assert(ex::synchronous_policy<ex::parallel_policy>);
  static_assert(!ex::synchronous_policy<ex::parallel_nosync_policy>);
  static_assert(ex::asynchronous_policy<ex::parallel_nosync_policy>);
  static_assert(!ex::execution_policy<int>);
  SUCCEED();
}

TEST(ExecutionPolicies, PolicyCarriesItsPool) {
  essentials::parallel::thread_pool pool(2);
  ex::parallel_policy policy(pool);
  EXPECT_EQ(&policy.pool(), &pool);
  ex::parallel_policy defaulted;
  EXPECT_EQ(&defaulted.pool(), &essentials::parallel::default_pool());
}

TEST(ExecutionPolicies, BuildersComposeWithoutMutatingTheSource) {
  auto const p = ex::par.with_frontier(ex::frontier_gen::bulk)
                     .with_dedup()
                     .with_edge_grain(4)
                     .with_grain(128);
  EXPECT_EQ(p.frontier, ex::frontier_gen::bulk);
  EXPECT_TRUE(p.dedup);
  EXPECT_EQ(p.edge_grain, 4u);
  EXPECT_EQ(p.grain, 128u);
  // The shared const instance is untouched.
  EXPECT_EQ(ex::par.frontier, ex::frontier_gen::scan);
  EXPECT_FALSE(ex::par.dedup);
  EXPECT_EQ(ex::par.grain, ex::default_grain);
  EXPECT_EQ(ex::par.edge_grain, ex::default_edge_grain);

  auto const ns = ex::par_nosync.with_frontier(ex::frontier_gen::listing3)
                      .with_edge_grain(8);
  EXPECT_EQ(ns.frontier, ex::frontier_gen::listing3);
  EXPECT_EQ(ns.edge_grain, 8u);
  EXPECT_EQ(ex::par_nosync.frontier, ex::frontier_gen::scan);
}

TEST(ExecutionPolicies, AdvanceHonorsCustomEdgeGrain) {
  auto const graph = rmat_graph();
  fr::sparse_frontier<vertex_t> in(std::vector<vertex_t>{0, 1, 2, 3, 4, 5});
  auto const ref = sorted(op::advance_push(ex::seq, graph, in, always).to_vector());
  for (std::size_t grain : {1, 2, 64, 100000}) {
    auto const out =
        op::advance_push(ex::par.with_edge_grain(grain), graph, in, always);
    EXPECT_EQ(sorted(out.to_vector()), ref) << "edge_grain=" << grain;
  }
}

// --- neighbor_reduce_activate ----------------------------------------------

TEST(NeighborReduceActivate, GathersAndActivates) {
  auto const graph = small_graph();
  fr::sparse_frontier<vertex_t> in(std::vector<vertex_t>{0, 1, 2, 3});
  std::vector<float> sums(4, -1.f);
  // Gather: sum of edge weights (all 1) == out-degree.  Activate vertices
  // with at least two out-edges.
  auto const out = op::neighbor_reduce_activate(
      ex::par, graph, in, 0.f,
      [](vertex_t, vertex_t, edge_t, weight_t w) { return w; },
      [](float a, float b) { return a + b; },
      [](vertex_t, float acc) { return acc >= 2.f; }, sums.data());
  EXPECT_EQ(sorted(out.to_vector()), (std::vector<vertex_t>{0, 1}));
  EXPECT_EQ(sums, (std::vector<float>{2.f, 2.f, 1.f, 1.f}));
}

TEST(NeighborReduceActivate, SeqMatchesParAcrossStrategies) {
  auto const graph = rmat_graph();
  std::size_t const n = static_cast<std::size_t>(graph.get_num_vertices());
  std::vector<vertex_t> seeds;
  for (vertex_t v = 0; v < static_cast<vertex_t>(n); v += 3)
    seeds.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));

  auto const map = [](vertex_t, vertex_t d, edge_t, weight_t) {
    return static_cast<long>(d);
  };
  auto const combine = [](long a, long b) { return a + b; };
  auto const activate = [](vertex_t, long acc) { return acc % 2 == 1; };

  std::vector<long> ref_sums(n, 0);
  auto const ref = op::neighbor_reduce_activate(ex::seq, graph, in, 0L, map,
                                                combine, activate,
                                                ref_sums.data());
  auto const ref_sorted = sorted(ref.to_vector());

  for (auto mode : {ex::frontier_gen::scan, ex::frontier_gen::bulk,
                    ex::frontier_gen::listing3}) {
    std::vector<long> sums(n, 0);
    auto const out = op::neighbor_reduce_activate(
        ex::par.with_frontier(mode), graph, in, 0L, map, combine, activate,
        sums.data());
    EXPECT_EQ(sorted(out.to_vector()), ref_sorted);
    EXPECT_EQ(sums, ref_sums);
  }
}

TEST(NeighborReduceActivate, FrontierRestriction) {
  auto const graph = small_graph();
  fr::sparse_frontier<vertex_t> in(std::vector<vertex_t>{1});
  std::vector<int> counts(4, -7);
  auto const out = op::neighbor_reduce_activate(
      ex::par, graph, in, 0,
      [](vertex_t, vertex_t, edge_t, weight_t) { return 1; },
      [](int a, int b) { return a + b; },
      [](vertex_t, int) { return true; }, counts.data());
  EXPECT_EQ(out.to_vector(), (std::vector<vertex_t>{1}));
  // Only vertex 1's slot was written; inactive slots untouched.
  EXPECT_EQ(counts, (std::vector<int>{-7, 2, -7, -7}));
}

// --- load-balance policy axis ----------------------------------------------

TEST(LoadBalancePolicy, BuildersComposeWithoutMutatingTheSource) {
  auto const p = ex::par.with_load_balance(ex::load_balance::degree_class)
                     .with_edge_grain_floor(128);
  EXPECT_EQ(p.balance, ex::load_balance::degree_class);
  EXPECT_EQ(p.edge_grain_floor, 128u);
  // The shared const instance keeps the defaults.
  EXPECT_EQ(ex::par.balance, ex::load_balance::thread_mapped);
  EXPECT_EQ(ex::par.edge_grain_floor, ex::edge_grain_floor_from_env());
  // Without the env override the floor is the documented 64-edge default.
  if (std::getenv("ESSENTIALS_EDGE_GRAIN") == nullptr)
    EXPECT_EQ(ex::par.edge_grain_floor, ex::default_edge_grain_floor);
  EXPECT_EQ(ex::default_edge_grain_floor, 64u);
}

TEST(LoadBalancePolicy, ToStringNamesEveryStrategy) {
  EXPECT_STREQ(ex::to_string(ex::load_balance::thread_mapped),
               "thread_mapped");
  EXPECT_STREQ(ex::to_string(ex::load_balance::edge_balanced),
               "edge_balanced");
  EXPECT_STREQ(ex::to_string(ex::load_balance::degree_class), "degree_class");
  EXPECT_STREQ(ex::to_string(ex::load_balance::auto_select), "auto_select");
}

TEST(LoadBalanceHeuristic, AutoSelectCoversTheDecisionTree) {
  using lb = ex::load_balance;
  auto pick = [](std::size_t f, std::size_t maxd, double mean, double stddev) {
    essentials::graph::degree_stats_t s;
    s.max_degree = maxd;
    s.mean_degree = mean;
    s.stddev_degree = stddev;
    return op::detail::auto_select_strategy(f, s, /*lanes=*/8,
                                            /*edge_grain_floor=*/64);
  };
  // Empty frontier: nothing to decompose.
  EXPECT_EQ(pick(0, 100000, 16.0, 64.0), lb::thread_mapped);
  // A hub past the huge cutoff forces the triage no matter the size.
  EXPECT_EQ(pick(4, 5000, 16.0, 64.0), lb::degree_class);
  // Tiny estimated work: decomposition overhead cannot pay for itself.
  EXPECT_EQ(pick(4, 40, 2.0, 1.0), lb::thread_mapped);
  // Pronounced skew (max >= 16x mean) without giant hubs: degree_class.
  EXPECT_EQ(pick(100000, 200, 10.0, 5.0), lb::degree_class);
  // Broad variance without extreme skew: pay the full edge-balanced scan.
  EXPECT_EQ(pick(100000, 100, 10.0, 15.0), lb::edge_balanced);
  // Uniform degrees: thread mapping is already balanced.
  EXPECT_EQ(pick(100000, 40, 10.0, 2.0), lb::thread_mapped);
}

TEST(LoadBalanceStats, CachedDegreeStatsMatchesDirectSweep) {
  auto const graph = rmat_graph();
  auto const direct = essentials::graph::out_degree_stats(graph);
  auto const cached = essentials::graph::cached_out_degree_stats(graph);
  EXPECT_EQ(cached.min_degree, direct.min_degree);
  EXPECT_EQ(cached.max_degree, direct.max_degree);
  EXPECT_DOUBLE_EQ(cached.mean_degree, direct.mean_degree);
  EXPECT_DOUBLE_EQ(cached.stddev_degree, direct.stddev_degree);
  EXPECT_EQ(cached.isolated_vertices, direct.isolated_vertices);
  // Second lookup is served from the memo and must agree with itself.
  auto const again = essentials::graph::cached_out_degree_stats(graph);
  EXPECT_EQ(again.max_degree, cached.max_degree);
  EXPECT_DOUBLE_EQ(again.mean_degree, cached.mean_degree);
}

TEST(LoadBalanceTelemetry, OffsetsScratchReuseTicksOnWarmSuperstep) {
  auto const graph = rmat_graph();
  std::vector<vertex_t> seeds;
  for (vertex_t v = 0; v < 256; v += 2)
    seeds.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));
  auto const cond = [](vertex_t, vertex_t, edge_t, weight_t) { return true; };

  tel::trace t;
  {
    tel::scoped_recording rec(t, "edge_balanced.scratch");
    op::advance_push_edge_balanced(ex::par, graph, in, cond);  // warm up
    op::advance_push_edge_balanced(ex::par, graph, in, cond);  // reuse
  }
  if (tel::compiled_in) {
    std::vector<essentials::telemetry::op_record const*> records;
    for (auto const& s : t.supersteps)
      for (auto const& o : s.ops)
        if (o.name == "advance_push_edge_balanced")
          records.push_back(&o);
    ASSERT_EQ(records.size(), 2u);
    // The second superstep finds both the lane scratch and the pooled
    // offsets vector warm; its strategy tag is stamped either way.
    EXPECT_TRUE(records[1]->scratch_reused);
    EXPECT_EQ(records[0]->load_balance, "edge_balanced");
    EXPECT_FALSE(records[0]->lb_auto);
  }
}

TEST(NeighborReduceActivate, DegreeClassRecordsDecisionInTelemetry) {
  // star(5000): the hub's 4999 out-edges cross the huge cutoff, so the
  // cooperative fold path runs and stamps the op record.
  auto const graph = g::from_coo<g::graph_push_pull>(gen::star(5000));
  std::size_t const n = static_cast<std::size_t>(graph.get_num_vertices());
  fr::sparse_frontier<vertex_t> const in(std::vector<vertex_t>{0, 1, 2});
  std::vector<long> out(n, 0);

  tel::trace t;
  {
    tel::scoped_recording rec(t, "nra.degree_class");
    op::neighbor_reduce_activate(
        ex::par.with_load_balance(ex::load_balance::degree_class), graph, in,
        0L, [](vertex_t, vertex_t d, edge_t, weight_t) { return (long)d; },
        [](long a, long b) { return a + b; },
        [](vertex_t, long acc) { return acc > 0; }, out.data());
  }
  if (tel::compiled_in) {
    bool saw = false;
    for (auto const& s : t.supersteps)
      for (auto const& o : s.ops)
        if (o.name == "neighbor_reduce_activate") {
          saw = true;
          EXPECT_EQ(o.load_balance, "degree_class");
          EXPECT_FALSE(o.lb_auto);
        }
    EXPECT_TRUE(saw);
  }
  // The hub folded the sum of all spoke ids: n*(n-1)/2 with ids 1..4999.
  EXPECT_EQ(out[0], static_cast<long>(4999) * 5000 / 2);
}
