// Tests for closeness centrality (MS-BFS-batched vs per-source oracle),
// k-truss decomposition, and Jaccard similarity / link prediction.
#include <gtest/gtest.h>

#include "algorithms/closeness.hpp"
#include "algorithms/jaccard.hpp"
#include "algorithms/ktruss.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;
using e::vertex_t;

namespace {

g::graph_full undirected(g::coo_t<> coo) {
  g::remove_self_loops(coo);
  g::symmetrize(coo);
  return g::from_coo<g::graph_full>(std::move(coo));
}

}  // namespace

// --- closeness -----------------------------------------------------------------

TEST(Closeness, BatchedMatchesPerSourceOracle) {
  auto const gr = undirected(e::generators::erdos_renyi(150, 900, {}, 4));
  auto const batched =
      e::algorithms::closeness_centrality(e::execution::par, gr);
  auto const oracle =
      e::algorithms::closeness_centrality_serial(e::execution::par, gr);
  ASSERT_EQ(batched.size(), oracle.size());
  for (std::size_t v = 0; v < oracle.size(); ++v)
    EXPECT_NEAR(batched[v], oracle[v], 1e-9) << v;
}

TEST(Closeness, StarHubIsMostCentral) {
  auto const gr = undirected(e::generators::star(30));
  auto const c = e::algorithms::closeness_centrality(e::execution::par, gr);
  for (std::size_t v = 1; v < 30; ++v)
    EXPECT_GT(c[0], c[v]);
  // Hub: 29 neighbors at distance 1 -> closeness 29.
  EXPECT_NEAR(c[0], 29.0, 1e-9);
  // Spoke: 1 at distance 1, 28 at distance 2 -> 1 + 14.
  EXPECT_NEAR(c[1], 15.0, 1e-9);
}

TEST(Closeness, PathEndpointsLeastCentral) {
  auto const gr = undirected(e::generators::chain(11));
  auto const c = e::algorithms::closeness_centrality(e::execution::par, gr);
  for (std::size_t v = 1; v < 10; ++v)
    EXPECT_GT(c[5], c[0] - 1e-12);
  EXPECT_GT(c[5], c[0]);
  EXPECT_NEAR(c[0], c[10], 1e-9);  // symmetric path
}

TEST(Closeness, MoreThan64VerticesUsesMultipleBatches) {
  auto const gr = undirected(e::generators::watts_strogatz(200, 3, 0.1, {}, 2));
  auto const batched =
      e::algorithms::closeness_centrality(e::execution::par, gr);
  auto const oracle =
      e::algorithms::closeness_centrality_serial(e::execution::par, gr);
  for (std::size_t v = 0; v < oracle.size(); ++v)
    EXPECT_NEAR(batched[v], oracle[v], 1e-9) << v;
}

// --- k-truss -------------------------------------------------------------------

TEST(KTruss, CliqueTrussnessIsN) {
  // In K5 every edge closes 3 triangles: the 5-truss is the whole clique.
  auto const gr = undirected(e::generators::complete(5));
  auto const r = e::algorithms::ktruss(e::execution::par, gr);
  EXPECT_EQ(r.max_truss, 5);
  for (auto const& [edge, t] : r.trussness)
    EXPECT_EQ(t, 5) << edge.first << "-" << edge.second;
}

TEST(KTruss, TreeEdgesHaveTrussnessTwo) {
  auto const gr = undirected(e::generators::star(12));
  auto const r = e::algorithms::ktruss(e::execution::par, gr);
  EXPECT_EQ(r.max_truss, 2);
  for (auto const& [edge, t] : r.trussness)
    EXPECT_EQ(t, 2);
}

TEST(KTruss, TriangleWithTailSplitsLevels) {
  // Triangle {0,1,2} + tail 2-3: triangle edges trussness 3, tail 2.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  coo.push_back(0, 1, 1.f);
  coo.push_back(1, 2, 1.f);
  coo.push_back(0, 2, 1.f);
  coo.push_back(2, 3, 1.f);
  auto const gr = undirected(std::move(coo));
  auto const r = e::algorithms::ktruss(e::execution::par, gr);
  EXPECT_EQ(r.max_truss, 3);
  EXPECT_EQ((r.trussness.at({0, 1})), 3);
  EXPECT_EQ((r.trussness.at({0, 2})), 3);
  EXPECT_EQ((r.trussness.at({1, 2})), 3);
  EXPECT_EQ((r.trussness.at({2, 3})), 2);
}

TEST(KTruss, EveryLevelSatisfiesTheDefinition) {
  auto const gr = undirected(e::generators::erdos_renyi(80, 800, {}, 6));
  auto const r = e::algorithms::ktruss(e::execution::par, gr);
  for (vertex_t k = 3; k <= r.max_truss; ++k)
    EXPECT_TRUE(e::algorithms::is_valid_truss_level(r.trussness, k))
        << "k=" << k;
}

TEST(KTruss, TrussnessUpperBoundsComeFromCoreness) {
  // trussness(e) <= min(coreness(u), coreness(v)) + 1 — a standard
  // relationship; check as a cross-algorithm invariant.
  auto const gr = undirected(e::generators::watts_strogatz(100, 3, 0.2, {}, 3));
  auto const truss = e::algorithms::ktruss(e::execution::par, gr);
  auto const core = e::algorithms::kcore(e::execution::par, gr);
  for (auto const& [edge, t] : truss.trussness) {
    auto const bound =
        std::min(core.coreness[static_cast<std::size_t>(edge.first)],
                 core.coreness[static_cast<std::size_t>(edge.second)]) + 1;
    EXPECT_LE(t, bound) << edge.first << "-" << edge.second;
  }
}

// --- Jaccard -------------------------------------------------------------------

TEST(Jaccard, KnownOverlaps) {
  // 0 and 1 share neighbors {2, 3}; 0 also has 4, 1 also has 5.
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 6;
  for (vertex_t n : {2, 3, 4})
    coo.push_back(0, n, 1.f);
  for (vertex_t n : {2, 3, 5})
    coo.push_back(1, n, 1.f);
  auto const gr = undirected(std::move(coo));
  // J(0,1) = |{2,3}| / |{2,3,4,5}| = 0.5
  EXPECT_NEAR(e::algorithms::jaccard_similarity(gr, 0, 1), 0.5, 1e-12);
}

TEST(Jaccard, IdenticalNeighborhoodsScoreOne) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  coo.push_back(0, 2, 1.f);
  coo.push_back(0, 3, 1.f);
  coo.push_back(1, 2, 1.f);
  coo.push_back(1, 3, 1.f);
  auto const gr = undirected(std::move(coo));
  EXPECT_NEAR(e::algorithms::jaccard_similarity(gr, 0, 1), 1.0, 1e-12);
}

TEST(Jaccard, DisjointNeighborhoodsScoreZero) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 6;
  coo.push_back(0, 2, 1.f);
  coo.push_back(1, 3, 1.f);
  auto const gr = undirected(std::move(coo));
  EXPECT_NEAR(e::algorithms::jaccard_similarity(gr, 0, 1), 0.0, 1e-12);
}

TEST(Jaccard, EdgeScoresSeqMatchesPar) {
  auto const gr = undirected(e::generators::erdos_renyi(120, 900, {}, 8));
  auto const s = e::algorithms::jaccard_edge_scores(e::execution::seq, gr);
  auto const p = e::algorithms::jaccard_edge_scores(e::execution::par, gr);
  ASSERT_EQ(s.size(), p.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_DOUBLE_EQ(s[i], p[i]) << i;
}

TEST(Jaccard, LinkPredictionRanksTrianglesAboveRandomPairs) {
  // In a clique minus one edge, the missing edge's endpoints share every
  // other member: highest possible score.
  auto coo = e::generators::complete(6);
  // Remove edge (0, 1) both directions.
  g::coo_t<> pruned;
  pruned.num_rows = pruned.num_cols = 6;
  for (std::size_t i = 0; i < coo.row_indices.size(); ++i) {
    auto const u = coo.row_indices[i];
    auto const v = coo.column_indices[i];
    if ((u == 0 && v == 1) || (u == 1 && v == 0))
      continue;
    pruned.push_back(u, v, coo.values[i]);
  }
  auto const gr = g::from_coo<g::graph_full>(std::move(pruned));
  auto const scores = e::algorithms::jaccard_link_scores(
      e::execution::par, gr, {{0, 1}, {0, 5}});
  EXPECT_NEAR(scores[0], 1.0, 1e-12);  // perfect overlap: predict the link
  EXPECT_LT(scores[1], 1.0);           // existing-edge endpoints overlap less
}
