// Degenerate-input robustness: empty graphs, single vertices, isolated
// vertices, self-loops, and duplicate-heavy inputs, swept across the whole
// algorithm suite.  Every algorithm must return a sensible answer (never
// crash, hang, or read out of bounds) on inputs real pipelines produce at
// their boundaries.
#include <gtest/gtest.h>

#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;
using e::vertex_t;

namespace {

g::graph_full empty_graph() {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 0;
  return g::from_coo<g::graph_full>(std::move(coo));
}

g::graph_full single_vertex() {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 1;
  return g::from_coo<g::graph_full>(std::move(coo));
}

g::graph_full isolated_vertices(vertex_t n) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = n;
  return g::from_coo<g::graph_full>(std::move(coo));
}

g::graph_full self_loops_only() {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 4;
  for (vertex_t v = 0; v < 4; ++v)
    coo.push_back(v, v, 1.f);
  return g::from_coo<g::graph_full>(std::move(coo));
}

}  // namespace

TEST(EdgeCases, EmptyGraphAcrossSuite) {
  auto const gr = empty_graph();
  EXPECT_EQ(gr.get_num_vertices(), 0);
  EXPECT_EQ(e::algorithms::pagerank(e::execution::par, gr).ranks.size(), 0u);
  EXPECT_EQ(
      e::algorithms::connected_components(e::execution::par, gr).num_components,
      0u);
  EXPECT_EQ(e::algorithms::triangle_count(e::execution::par, gr), 0u);
  EXPECT_EQ(e::algorithms::kcore(e::execution::par, gr).max_core, 0);
  EXPECT_EQ(e::algorithms::boruvka_mst(e::execution::par, gr).edges.size(),
            0u);
  EXPECT_EQ(e::algorithms::maximal_independent_set(e::execution::par, gr)
                .set_size,
            0u);
  EXPECT_EQ(e::algorithms::label_propagation_communities(e::execution::par,
                                                         gr)
                .num_communities,
            0u);
  EXPECT_TRUE(
      e::algorithms::topological_sort(e::execution::par, gr).is_dag);
  EXPECT_EQ(e::algorithms::strongly_connected_components(e::execution::par,
                                                         gr)
                .num_components,
            0u);
  EXPECT_EQ(e::algorithms::diameter_exact(e::execution::par, gr).diameter, 0);
}

TEST(EdgeCases, SourcedAlgorithmsRejectEmptyGraph) {
  auto const gr = empty_graph();
  EXPECT_THROW(e::algorithms::sssp(e::execution::par, gr, 0), e::graph_error);
  EXPECT_THROW(e::algorithms::bfs(e::execution::par, gr, 0), e::graph_error);
  EXPECT_THROW(e::algorithms::dijkstra(gr, 0), e::graph_error);
  EXPECT_THROW(e::algorithms::personalized_pagerank(gr, 0), e::graph_error);
}

TEST(EdgeCases, SingleVertexAcrossSuite) {
  auto const gr = single_vertex();
  auto const sssp = e::algorithms::sssp(e::execution::par, gr, 0);
  EXPECT_FLOAT_EQ(sssp.distances[0], 0.0f);
  auto const bfs = e::algorithms::bfs(e::execution::par, gr, 0);
  EXPECT_EQ(bfs.depths[0], 0);
  auto const pr = e::algorithms::pagerank(e::execution::par, gr);
  EXPECT_NEAR(pr.ranks[0], 1.0, 1e-9);
  EXPECT_EQ(e::algorithms::connected_components(e::execution::par, gr)
                .num_components,
            1u);
  EXPECT_EQ(e::algorithms::maximal_independent_set(e::execution::par, gr)
                .set_size,
            1u);
  auto const topo = e::algorithms::topological_sort(e::execution::par, gr);
  EXPECT_TRUE(topo.is_dag);
  EXPECT_EQ(topo.order, (std::vector<vertex_t>{0}));
  auto const color = e::algorithms::color_jones_plassmann(e::execution::par,
                                                          gr);
  EXPECT_EQ(color.num_colors, 1);
}

TEST(EdgeCases, IsolatedVerticesAcrossSuite) {
  auto const gr = isolated_vertices(10);
  auto const cc = e::algorithms::connected_components(e::execution::par, gr);
  EXPECT_EQ(cc.num_components, 10u);
  auto const sssp = e::algorithms::sssp(e::execution::par, gr, 3);
  for (vertex_t v = 0; v < 10; ++v) {
    if (v == 3)
      EXPECT_FLOAT_EQ(sssp.distances[static_cast<std::size_t>(v)], 0.0f);
    else
      EXPECT_EQ(sssp.distances[static_cast<std::size_t>(v)],
                e::infinity_v<float>);
  }
  auto const mis = e::algorithms::maximal_independent_set(e::execution::par,
                                                          gr);
  EXPECT_EQ(mis.set_size, 10u);  // no edges: everyone joins
  auto const mst = e::algorithms::boruvka_mst(e::execution::par, gr);
  EXPECT_EQ(mst.num_trees, 10u);
  EXPECT_TRUE(mst.edges.empty());
  auto const match = e::algorithms::maximal_matching(e::execution::par, gr);
  EXPECT_EQ(match.num_matched_edges, 0u);
}

TEST(EdgeCases, SelfLoopsDoNotBreakTraversals) {
  auto const gr = self_loops_only();
  auto const bfs = e::algorithms::bfs(e::execution::par, gr, 0);
  EXPECT_EQ(bfs.depths[0], 0);
  EXPECT_EQ(bfs.depths[1], -1);
  auto const sssp = e::algorithms::sssp(e::execution::par, gr, 0);
  EXPECT_FLOAT_EQ(sssp.distances[0], 0.0f);
  // A self-loop is a cycle: not a DAG.
  EXPECT_FALSE(
      e::algorithms::topological_sort(e::execution::par, gr).is_dag);
  // Every vertex is its own SCC even with self loops.
  EXPECT_EQ(e::algorithms::strongly_connected_components(e::execution::par,
                                                         gr)
                .num_components,
            4u);
}

TEST(EdgeCases, DuplicateHeavyInputCollapsesCleanly) {
  g::coo_t<> coo;
  coo.num_rows = coo.num_cols = 3;
  for (int i = 0; i < 100; ++i) {
    coo.push_back(0, 1, static_cast<float>(100 - i));
    coo.push_back(1, 2, 2.f);
  }
  auto const gr = g::from_coo<g::graph_full>(std::move(coo),
                                             g::duplicate_policy::keep_min);
  EXPECT_EQ(gr.get_num_edges(), 2);
  auto const sssp = e::algorithms::sssp(e::execution::par, gr, 0);
  EXPECT_FLOAT_EQ(sssp.distances[1], 1.0f);  // min of the duplicates
  EXPECT_FLOAT_EQ(sssp.distances[2], 3.0f);
}

TEST(EdgeCases, OperatorsOnEmptyFrontiers) {
  auto const gr = isolated_vertices(5);
  e::frontier::sparse_frontier<vertex_t> empty;
  auto const out = e::operators::neighbors_expand(
      e::execution::par, gr, empty,
      [](vertex_t, vertex_t, e::edge_t, e::weight_t) { return true; });
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(e::operators::filter(e::execution::par, empty,
                                   [](vertex_t) { return true; })
                  .empty());
  auto const sum = e::operators::reduce(
      e::execution::par, empty, 0,
      [](vertex_t v) { return static_cast<int>(v); },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(sum, 0);
}

TEST(EdgeCases, GeneratorMinimumSizes) {
  EXPECT_EQ(e::generators::chain(1).num_edges(), 0);
  EXPECT_EQ(e::generators::star(2).num_edges(), 2);
  EXPECT_EQ(e::generators::complete(1).num_edges(), 0);
  EXPECT_EQ(e::generators::grid_2d(1, 1).num_edges(), 0);
  EXPECT_THROW(e::generators::chain(0), e::graph_error);
  EXPECT_THROW(e::generators::star(1), e::graph_error);
}

TEST(EdgeCases, PartitionMoreTargetsThanVertices) {
  auto const p = e::partition::partition_random<vertex_t>(3, 10, 1);
  EXPECT_EQ(p.assignment.size(), 3u);
  EXPECT_LE(e::partition::vertex_balance(p), 10.0);
  auto const b = e::partition::partition_block<vertex_t>(3, 10);
  for (int const part : b.assignment)
    EXPECT_LT(part, 10);
}
