// Genericity tests: the framework is templated over vertex/edge/weight
// types — prove it by instantiating the whole stack with 64-bit ids and
// double weights, plus the new mpsim collectives and neighbor_reduce
// operator.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "core/operators/neighbor_reduce.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;

using v64 = std::int64_t;
using e64 = std::int64_t;
using w64 = double;
using graph64 =
    g::graph_t<g::csr_view<v64, e64, w64>, g::csc_view<v64, e64, w64>>;

namespace {

graph64 wide_graph() {
  g::coo_t<v64, e64, w64> coo;
  coo.num_rows = coo.num_cols = 64;
  // Ring + chords.
  for (v64 v = 0; v < 64; ++v) {
    coo.push_back(v, (v + 1) % 64, 1.0);
    coo.push_back(v, (v + 7) % 64, 3.5);
  }
  return g::from_coo<graph64>(std::move(coo));
}

}  // namespace

// --- 64-bit instantiation ------------------------------------------------------

TEST(Genericity, GraphViewsWorkWith64BitIds) {
  auto const gr = wide_graph();
  EXPECT_EQ(gr.get_num_vertices(), 64);
  EXPECT_EQ(gr.get_num_edges(), 128);
  EXPECT_EQ(gr.get_out_degree(0), 2);
  EXPECT_EQ(gr.get_in_degree(0), 2);
  static_assert(std::is_same_v<graph64::vertex_type, std::int64_t>);
  static_assert(std::is_same_v<graph64::weight_type, double>);
}

TEST(Genericity, SsspRunsWith64BitTypes) {
  auto const gr = wide_graph();
  auto const par = e::algorithms::sssp(e::execution::par, gr, v64{0});
  auto const oracle = e::algorithms::dijkstra(gr, v64{0});
  ASSERT_EQ(par.distances.size(), 64u);
  for (std::size_t v = 0; v < 64; ++v)
    EXPECT_NEAR(par.distances[v], oracle.distances[v], 1e-9) << v;
}

TEST(Genericity, BfsAndPullRunWith64BitTypes) {
  auto const gr = wide_graph();
  auto const push = e::algorithms::bfs(e::execution::par, gr, v64{0});
  auto const pull = e::algorithms::bfs_pull(e::execution::par, gr, v64{0});
  auto const serial = e::algorithms::bfs_serial(gr, v64{0});
  EXPECT_EQ(push.depths, serial.depths);
  EXPECT_EQ(pull.depths, serial.depths);
}

TEST(Genericity, FrontiersWorkWith64BitIds) {
  e::frontier::sparse_frontier<v64> sparse;
  sparse.add_vertex(v64{1} << 40);
  EXPECT_EQ(sparse.get_active_vertex(0), v64{1} << 40);
  e::frontier::dense_frontier<v64> dense(128);
  dense.add_vertex(v64{100});
  EXPECT_TRUE(dense.contains(v64{100}));
  static_assert(e::frontier::frontier_like<e::frontier::sparse_frontier<v64>>);
}

TEST(Genericity, AtomicsWorkAcrossWidths) {
  double d = 5.0;
  EXPECT_DOUBLE_EQ(e::atomic::min(&d, 2.0), 5.0);
  std::int64_t i = 10;
  EXPECT_EQ(e::atomic::max(&i, std::int64_t{20}), 10);
  EXPECT_EQ(i, 20);
  std::uint32_t u = 1;
  EXPECT_EQ(e::atomic::add(&u, std::uint32_t{5}), 1u);
}

// --- neighbor_reduce ---------------------------------------------------------------

TEST(NeighborReduce, OutDegreeViaCountReduce) {
  auto const gr = wide_graph();
  std::vector<int> degree(64, -1);
  e::operators::neighbor_reduce(
      e::execution::par, gr, 0,
      [](v64, v64, e64, w64) { return 1; },
      [](int a, int b) { return a + b; }, degree.data());
  for (v64 v = 0; v < 64; ++v)
    EXPECT_EQ(degree[static_cast<std::size_t>(v)], 2);
}

TEST(NeighborReduce, WeightedSumMatchesManual) {
  auto const gr = wide_graph();
  std::vector<double> strength(64, 0.0);
  e::operators::neighbor_reduce(
      e::execution::par, gr, 0.0,
      [](v64, v64, e64, w64 w) { return w; },
      [](double a, double b) { return a + b; }, strength.data());
  for (v64 v = 0; v < 64; ++v)
    EXPECT_DOUBLE_EQ(strength[static_cast<std::size_t>(v)], 1.0 + 3.5);
}

TEST(NeighborReduce, InEdgesGatherMatchesOutScatter) {
  auto const gr = wide_graph();
  // Sum of in-weights == sum of out-weights on a ring+chords (regular).
  std::vector<double> in_sum(64, 0.0);
  e::operators::in_neighbor_reduce(
      e::execution::par, gr, 0.0,
      [](v64, v64, e64, w64 w) { return w; },
      [](double a, double b) { return a + b; }, in_sum.data());
  for (v64 v = 0; v < 64; ++v)
    EXPECT_DOUBLE_EQ(in_sum[static_cast<std::size_t>(v)], 4.5);
}

TEST(NeighborReduce, FrontierRestrictedTouchesOnlyActive) {
  auto const gr = wide_graph();
  e::frontier::sparse_frontier<v64> f(std::vector<v64>{3, 7});
  std::vector<int> out(64, -1);
  e::operators::neighbor_reduce(
      e::execution::par, gr, f, 0,
      [](v64, v64, e64, w64) { return 1; },
      [](int a, int b) { return a + b; }, out.data());
  for (v64 v = 0; v < 64; ++v) {
    if (v == 3 || v == 7)
      EXPECT_EQ(out[static_cast<std::size_t>(v)], 2);
    else
      EXPECT_EQ(out[static_cast<std::size_t>(v)], -1);
  }
}

TEST(NeighborReduce, MaxNeighborIdAsCombiner) {
  auto const gr = wide_graph();
  std::vector<v64> max_nb(64, -1);
  e::operators::neighbor_reduce(
      e::execution::seq, gr, v64{-1},
      [](v64, v64 dst, e64, w64) { return dst; },
      [](v64 a, v64 b) { return a > b ? a : b; }, max_nb.data());
  EXPECT_EQ(max_nb[0], 7);   // neighbors 1 and 7
  EXPECT_EQ(max_nb[60], 61); // neighbors 61 and (60+7)%64 = 3
}

// --- mpsim collectives ----------------------------------------------------------------

TEST(Collectives, AllReduceMax) {
  e::mpsim::communicator::run(4, [](e::mpsim::communicator& comm, int rank) {
    auto const m = comm.all_reduce_max(
        rank, static_cast<std::uint64_t>(rank == 2 ? 99 : rank));
    EXPECT_EQ(m, 99u);
  });
}

TEST(Collectives, BroadcastDeliversRootPayloadEverywhere) {
  e::mpsim::communicator::run(3, [](e::mpsim::communicator& comm, int rank) {
    std::vector<std::uint64_t> const payload =
        rank == 1 ? std::vector<std::uint64_t>{7, 8, 9}
                  : std::vector<std::uint64_t>{};
    auto const got = comm.broadcast(rank, /*root=*/1, /*tag=*/5, payload);
    EXPECT_EQ(got, (std::vector<std::uint64_t>{7, 8, 9})) << "rank " << rank;
  });
}

TEST(Collectives, GatherConcatenatesByRank) {
  e::mpsim::communicator::run(3, [](e::mpsim::communicator& comm, int rank) {
    auto const got = comm.gather(
        rank, /*root=*/0, /*tag=*/6,
        {static_cast<std::uint64_t>(rank * 10),
         static_cast<std::uint64_t>(rank * 10 + 1)});
    if (rank == 0)
      EXPECT_EQ(got, (std::vector<std::uint64_t>{0, 1, 10, 11, 20, 21}));
    else
      EXPECT_TRUE(got.empty());
  });
}

TEST(Collectives, RepeatedCollectivesStayInSync) {
  e::mpsim::communicator::run(2, [](e::mpsim::communicator& comm, int rank) {
    for (int round = 0; round < 5; ++round) {
      auto const s = comm.all_reduce_sum(rank, 1);
      EXPECT_EQ(s, 2u);
      auto const m =
          comm.all_reduce_max(rank, static_cast<std::uint64_t>(rank));
      EXPECT_EQ(m, 1u);
      auto const b = comm.broadcast(rank, 0, 100 + round,
                                    rank == 0
                                        ? std::vector<std::uint64_t>{42}
                                        : std::vector<std::uint64_t>{});
      EXPECT_EQ(b, (std::vector<std::uint64_t>{42}));
    }
  });
}
