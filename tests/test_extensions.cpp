// Tests for the extension features beyond the paper's minimal surface:
// edge-balanced advance (the §IV-C load-balancing optimization),
// delta-stepping SSSP, Luby MIS, and label-propagation communities.
#include <gtest/gtest.h>

#include <algorithm>

#include "algorithms/label_propagation.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/sssp_delta.hpp"
#include "core/operators/advance_balanced.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace op = e::operators;
namespace fr = e::frontier;
using e::vertex_t;

namespace {

e::graph::graph_csr skewed_graph(std::uint64_t seed = 5) {
  e::generators::rmat_options opt;
  opt.scale = 9;
  opt.edge_factor = 8;
  opt.seed = seed;
  opt.weights = {0.5f, 3.0f};
  auto coo = e::generators::rmat(opt);
  e::graph::remove_self_loops(coo);
  return e::graph::from_coo<e::graph::graph_csr>(
      std::move(coo), e::graph::duplicate_policy::keep_min);
}

e::graph::graph_full undirected(e::graph::coo_t<> coo) {
  e::graph::remove_self_loops(coo);
  e::graph::symmetrize(coo);
  return e::graph::from_coo<e::graph::graph_full>(std::move(coo));
}

auto const always = [](vertex_t, vertex_t, e::edge_t, e::weight_t) {
  return true;
};

std::vector<vertex_t> sorted(std::vector<vertex_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

// --- edge-balanced advance ---------------------------------------------------

TEST(AdvanceEdgeBalanced, MatchesThreadMappedAdvance) {
  auto const g = skewed_graph();
  fr::sparse_frontier<vertex_t> in;
  for (vertex_t v = 0; v < g.get_num_vertices(); v += 3)
    in.add_vertex(v);
  auto const plain = op::advance_push(e::execution::par, g, in, always);
  auto const balanced =
      op::advance_push_edge_balanced(e::execution::par, g, in, always);
  EXPECT_EQ(sorted(plain.to_vector()), sorted(balanced.to_vector()));
}

TEST(AdvanceEdgeBalanced, SeqMatchesPar) {
  auto const g = skewed_graph(9);
  fr::sparse_frontier<vertex_t> in(std::vector<vertex_t>{0, 1, 5, 100, 200});
  auto const s = op::advance_push_edge_balanced(e::execution::seq, g, in, always);
  auto const p = op::advance_push_edge_balanced(e::execution::par, g, in, always);
  EXPECT_EQ(sorted(s.to_vector()), sorted(p.to_vector()));
}

TEST(AdvanceEdgeBalanced, HandlesHubAndZeroDegreeMix) {
  // Star hub in the frontier next to isolated-ish spokes: the edge-work
  // split lands mid-hub, which is exactly the case the binary search
  // handles.
  auto coo = e::generators::star(2000);
  auto const g = e::graph::from_coo<e::graph::graph_csr>(std::move(coo));
  fr::sparse_frontier<vertex_t> in;
  in.add_vertex(1);    // degree 1
  in.add_vertex(0);    // degree 1999 (the hub)
  in.add_vertex(2);    // degree 1
  auto const out =
      op::advance_push_edge_balanced(e::execution::par, g, in, always);
  EXPECT_EQ(out.size(), 1999u + 2u);
}

TEST(AdvanceEdgeBalanced, ConditionSeesCorrectTuple) {
  auto const g = skewed_graph(3);
  fr::sparse_frontier<vertex_t> in;
  for (vertex_t v = 0; v < 50; ++v)
    in.add_vertex(v);
  // Verify (src, dst, e, w) coherence: the edge id's endpoints and weight
  // must match the graph's own answers.
  std::atomic<int> mismatches{0};
  op::advance_push_edge_balanced(
      e::execution::par, g, in,
      [&g, &mismatches](vertex_t src, vertex_t dst, e::edge_t edge,
                        e::weight_t w) {
        if (g.get_dest_vertex(edge) != dst || g.get_source_vertex(edge) != src ||
            g.get_edge_weight(edge) != w)
          mismatches.fetch_add(1);
        return false;
      });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(AdvanceEdgeBalanced, EmptyAndZeroWorkFrontiers) {
  auto const g = skewed_graph(4);
  fr::sparse_frontier<vertex_t> empty;
  EXPECT_TRUE(op::advance_push_edge_balanced(e::execution::par, g, empty,
                                             always)
                  .empty());
  // A frontier of sink vertices only (no out-edges).
  fr::sparse_frontier<vertex_t> sinks;
  for (vertex_t v = 0; v < g.get_num_vertices(); ++v)
    if (g.get_out_degree(v) == 0) {
      sinks.add_vertex(v);
      if (sinks.size() == 5)
        break;
    }
  if (!sinks.empty()) {
    EXPECT_TRUE(op::advance_push_edge_balanced(e::execution::par, g, sinks,
                                               always)
                    .empty());
  }
}

// --- delta-stepping -------------------------------------------------------------

TEST(DeltaStepping, MatchesDijkstraAcrossDeltas) {
  auto const g = skewed_graph(11);
  auto const oracle = e::algorithms::dijkstra(g, 0).distances;
  for (float delta : {0.0f /*auto*/, 0.25f, 1.0f, 100.0f /*~Bellman-Ford*/}) {
    auto const r =
        e::algorithms::sssp_delta_stepping(e::execution::par, g, 0, delta);
    ASSERT_EQ(r.distances.size(), oracle.size());
    for (std::size_t v = 0; v < oracle.size(); ++v) {
      if (oracle[v] == e::infinity_v<float>)
        EXPECT_EQ(r.distances[v], e::infinity_v<float>) << v;
      else
        EXPECT_NEAR(r.distances[v], oracle[v], 1e-3f)
            << "delta=" << delta << " vertex " << v;
    }
  }
}

TEST(DeltaStepping, GridRoadNetwork) {
  auto coo = e::generators::grid_2d(15, 15, {1.0f, 10.0f}, 2);
  auto const g = e::graph::from_coo<e::graph::graph_csr>(std::move(coo));
  auto const oracle = e::algorithms::dijkstra(g, 0).distances;
  auto const r = e::algorithms::sssp_delta_stepping(e::execution::par, g, 0);
  for (std::size_t v = 0; v < oracle.size(); ++v)
    EXPECT_NEAR(r.distances[v], oracle[v], 1e-3f) << v;
}

TEST(DeltaStepping, SmallDeltaDoesMoreRoundsThanLargeDelta) {
  auto const g = skewed_graph(13);
  auto const fine =
      e::algorithms::sssp_delta_stepping(e::execution::seq, g, 0, 0.1f);
  auto const coarse =
      e::algorithms::sssp_delta_stepping(e::execution::seq, g, 0, 1000.0f);
  EXPECT_GE(fine.iterations, coarse.iterations);
}

TEST(DeltaStepping, SeqMatchesPar) {
  auto const g = skewed_graph(17);
  auto const s =
      e::algorithms::sssp_delta_stepping(e::execution::seq, g, 0, 0.5f);
  auto const p =
      e::algorithms::sssp_delta_stepping(e::execution::par, g, 0, 0.5f);
  for (std::size_t v = 0; v < s.distances.size(); ++v) {
    if (s.distances[v] == e::infinity_v<float>)
      EXPECT_EQ(p.distances[v], e::infinity_v<float>);
    else
      EXPECT_NEAR(p.distances[v], s.distances[v], 1e-3f) << v;
  }
}

// --- maximal independent set ------------------------------------------------------

TEST(Mis, LubyProducesValidMisAcrossSeedsAndFamilies) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto const er = undirected(e::generators::erdos_renyi(300, 2000, {}, seed));
    auto const r = e::algorithms::maximal_independent_set(e::execution::par,
                                                          er, seed);
    EXPECT_TRUE(e::algorithms::is_valid_mis(er, r.in_set)) << "er seed " << seed;
    auto const ws =
        undirected(e::generators::watts_strogatz(200, 3, 0.2, {}, seed));
    auto const r2 = e::algorithms::maximal_independent_set(e::execution::par,
                                                           ws, seed);
    EXPECT_TRUE(e::algorithms::is_valid_mis(ws, r2.in_set)) << "ws seed " << seed;
  }
}

TEST(Mis, SerialGreedyIsValid) {
  auto const g = undirected(e::generators::erdos_renyi(250, 1500, {}, 4));
  auto const r = e::algorithms::maximal_independent_set_serial(g);
  EXPECT_TRUE(e::algorithms::is_valid_mis(g, r.in_set));
}

TEST(Mis, CliqueYieldsExactlyOne) {
  auto const g = undirected(e::generators::complete(20));
  auto const r = e::algorithms::maximal_independent_set(e::execution::par, g);
  EXPECT_EQ(r.set_size, 1u);
}

TEST(Mis, StarYieldsSpokes) {
  auto const g = undirected(e::generators::star(30));
  auto const r = e::algorithms::maximal_independent_set(e::execution::par, g);
  // Either the hub alone or all 29 spokes — both are valid MIS; Luby with
  // random priorities almost surely picks the spokes (any spoke beating the
  // hub excludes the hub).  Assert validity + the size dichotomy.
  EXPECT_TRUE(e::algorithms::is_valid_mis(g, r.in_set));
  EXPECT_TRUE(r.set_size == 1 || r.set_size == 29) << r.set_size;
}

TEST(Mis, LogarithmicRounds) {
  auto const g = undirected(e::generators::erdos_renyi(2000, 16000, {}, 8));
  auto const r = e::algorithms::maximal_independent_set(e::execution::par, g);
  EXPECT_LE(r.rounds, 30u);  // expected O(log n), generous bound
}

// --- label propagation communities ---------------------------------------------------

TEST(Lpa, DisjointCliquesAreSeparated) {
  // Three disjoint 8-cliques: LPA must find exactly 3 communities with
  // perfect modularity structure.
  e::graph::coo_t<> coo;
  coo.num_rows = coo.num_cols = 24;
  for (int c = 0; c < 3; ++c)
    for (vertex_t u = 0; u < 8; ++u)
      for (vertex_t v = 0; v < 8; ++v)
        if (u != v)
          coo.push_back(c * 8 + u, c * 8 + v, 1.f);
  auto const g = e::graph::from_coo<e::graph::graph_full>(std::move(coo));
  auto const r = e::algorithms::label_propagation_communities(
      e::execution::par, g);
  EXPECT_EQ(r.num_communities, 3u);
  for (int c = 0; c < 3; ++c)
    for (vertex_t v = 1; v < 8; ++v)
      EXPECT_EQ(r.labels[static_cast<std::size_t>(c * 8 + v)],
                r.labels[static_cast<std::size_t>(c * 8)]);
}

TEST(Lpa, PlantedCommunitiesHavePositiveModularity) {
  // Two dense blocks joined by one bridge edge.
  e::graph::coo_t<> coo;
  coo.num_rows = coo.num_cols = 40;
  e::generators::rng_t rng(5);
  for (vertex_t u = 0; u < 20; ++u)
    for (vertex_t v = 0; v < 20; ++v)
      if (u != v && rng.next_bool(0.4))
        coo.push_back(u, v, 1.f);
  for (vertex_t u = 20; u < 40; ++u)
    for (vertex_t v = 20; v < 40; ++v)
      if (u != v && rng.next_bool(0.4))
        coo.push_back(u, v, 1.f);
  coo.push_back(0, 20, 1.f);
  coo.push_back(20, 0, 1.f);
  auto const g = undirected(std::move(coo));
  auto const r = e::algorithms::label_propagation_communities(
      e::execution::par, g);
  EXPECT_GE(r.num_communities, 2u);
  EXPECT_GT(e::algorithms::modularity(g, r.labels), 0.2);
}

TEST(Lpa, ConvergesAndIsStable) {
  auto const g = undirected(e::generators::watts_strogatz(300, 4, 0.05, {}, 3));
  auto const r1 = e::algorithms::label_propagation_communities(
      e::execution::par, g);
  auto const r2 = e::algorithms::label_propagation_communities(
      e::execution::par, g);
  EXPECT_EQ(r1.labels, r2.labels);  // synchronous updates => deterministic
  EXPECT_LE(r1.rounds, 50u);
}

TEST(Lpa, SeqMatchesPar) {
  auto const g = undirected(e::generators::erdos_renyi(200, 800, {}, 9));
  auto const s =
      e::algorithms::label_propagation_communities(e::execution::seq, g);
  auto const p =
      e::algorithms::label_propagation_communities(e::execution::par, g);
  EXPECT_EQ(s.labels, p.labels);
}

TEST(Lpa, IsolatedVerticesKeepOwnLabels) {
  e::graph::coo_t<> coo;
  coo.num_rows = coo.num_cols = 5;
  coo.push_back(0, 1, 1.f);
  coo.push_back(1, 0, 1.f);
  auto const g = e::graph::from_coo<e::graph::graph_full>(std::move(coo));
  auto const r = e::algorithms::label_propagation_communities(
      e::execution::par, g);
  EXPECT_EQ(r.labels[2], 2);
  EXPECT_EQ(r.labels[3], 3);
  EXPECT_EQ(r.labels[4], 4);
  EXPECT_EQ(r.num_communities, 4u);  // {0,1}, {2}, {3}, {4}
}
