// bench_push_pull — experiment A3 (paper §III-C): push (CSR out-edge)
// versus pull (CSC in-edge) traversal as a function of frontier density,
// plus whole-algorithm push / pull / direction-optimizing BFS.
//
// Expected shape: one push advance costs O(edges out of F) — cheap when F
// is sparse, while one pull advance costs O(all in-edges scanned) — flat in
// |F| but with early-exit it wins when nearly every vertex is active
// (scan-until-first-active-parent beats touching every frontier out-edge).
// The crossover is why direction-optimizing BFS exists, and the BFS suite
// below shows it beating either fixed direction on the skewed graph.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/bfs.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace fr = e::frontier;
namespace op = e::operators;

namespace {

e::graph::graph_push_pull const& rmat_graph() {
  static auto const g = [] {
    e::generators::rmat_options opt;
    opt.scale = 13;
    opt.edge_factor = 16;
    opt.seed = 5;
    auto coo = e::generators::rmat(opt);
    e::graph::remove_self_loops(coo);
    return e::graph::from_coo<e::graph::graph_push_pull>(std::move(coo));
  }();
  return g;
}

/// Activate the given permille of vertices, evenly spread.
template <typename F>
void activate(F& f, e::vertex_t n, int permille) {
  long long const want = static_cast<long long>(n) * permille / 1000;
  if (want == 0)
    return;
  long long const stride = std::max<long long>(1, n / want);
  for (long long v = 0; v < n; v += stride)
    f.add_vertex(static_cast<e::vertex_t>(v));
}

auto const always = [](e::vertex_t, e::vertex_t, e::edge_t, e::weight_t) {
  return true;
};

void BM_AdvancePushAtDensity(benchmark::State& state) {
  auto const& g = rmat_graph();
  fr::sparse_frontier<e::vertex_t> in;
  activate(in, g.get_num_vertices(), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = op::advance_push(e::execution::par, g, in, always);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetLabel("density=" + std::to_string(state.range(0)) + "/1000");
}

void BM_AdvancePullAtDensity(benchmark::State& state) {
  auto const& g = rmat_graph();
  fr::dense_frontier<e::vertex_t> in(
      static_cast<std::size_t>(g.get_num_vertices()));
  activate(in, g.get_num_vertices(), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = op::advance_pull<true>(e::execution::par, g, in, always);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetLabel("density=" + std::to_string(state.range(0)) + "/1000");
}

void BM_BfsPush(benchmark::State& state) {
  auto const& g = rmat_graph();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::bfs(e::execution::par, g, 0).depths.data());
}

void BM_BfsPull(benchmark::State& state) {
  auto const& g = rmat_graph();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::bfs_pull(e::execution::par, g, 0).depths.data());
}

void BM_BfsDirectionOptimizing(benchmark::State& state) {
  auto const& g = rmat_graph();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::bfs_direction_optimizing(e::execution::par, g, 0)
            .depths.data());
}

void BM_PagerankPull(benchmark::State& state) {
  auto const& g = rmat_graph();
  e::algorithms::pagerank_options opt;
  opt.max_iterations = 10;
  opt.tolerance = 0.0;  // fixed sweep count for comparability
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::pagerank(e::execution::par, g, opt).ranks.data());
}

void BM_PagerankPush(benchmark::State& state) {
  auto const& g = rmat_graph();
  e::algorithms::pagerank_options opt;
  opt.max_iterations = 10;
  opt.tolerance = 0.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::pagerank_push(e::execution::par, g, opt).ranks.data());
}

// Density sweep in permille of |V|: 1 (very sparse) ... 1000 (all active).
BENCHMARK(BM_AdvancePushAtDensity)
    ->Arg(1)->Arg(10)->Arg(50)->Arg(200)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvancePullAtDensity)
    ->Arg(1)->Arg(10)->Arg(50)->Arg(200)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BfsPush)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BfsPull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BfsDirectionOptimizing)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PagerankPull)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PagerankPush)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main (replaces BENCHMARK_MAIN): after the timing run, capture one
// telemetry trace per headline workload — push/pull advance at a sparse and
// a dense operating point, plus whole-algorithm DO-BFS and PageRank — and
// write them next to the timing output.  The traces carry exactly what the
// timings cannot: edges inspected per direction and the DO-BFS direction
// decisions.  CI uploads the JSON as an artifact.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  auto const& g = rmat_graph();
  std::vector<e::telemetry::trace> traces;
  auto const record = [&traces](std::string const& name, auto&& run) {
    traces.emplace_back();
    e::telemetry::scoped_recording rec(traces.back(), name);
    run();
  };
  for (int const permille : {10, 500}) {
    fr::sparse_frontier<e::vertex_t> sp;
    activate(sp, g.get_num_vertices(), permille);
    fr::dense_frontier<e::vertex_t> dn(
        static_cast<std::size_t>(g.get_num_vertices()));
    activate(dn, g.get_num_vertices(), permille);
    record("advance_push@" + std::to_string(permille) + "permille",
           [&] { op::advance_push(e::execution::par, g, sp, always); });
    record("advance_pull@" + std::to_string(permille) + "permille",
           [&] { op::advance_pull<true>(e::execution::par, g, dn, always); });
  }
  record("bfs_direction_optimizing", [&] {
    e::algorithms::bfs_direction_optimizing(e::execution::par, g, 0);
  });
  record("pagerank.pull", [&] {
    e::algorithms::pagerank_options opt;
    opt.max_iterations = 5;
    opt.tolerance = 0.0;
    e::algorithms::pagerank(e::execution::par, g, opt);
  });

  char const* const path = "bench_push_pull.telemetry.json";
  if (!e::telemetry::write_json(traces, path)) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::printf("telemetry: wrote %s (%zu traces)\n", path, traces.size());
  return 0;
}
