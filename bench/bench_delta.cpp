// bench_delta — the warm-start experiment: what does an epoch republish
// actually cost once the delta log turns cache invalidation into a warm
// seed?  Written to BENCH_delta.json for CI.
//
// Protocol: an rmat-12 graph lives in a dynamic_graph_t.  For each delta
// size d in {1, 10, 100, 1000} we repeatedly (a) apply d monotone edge
// updates, (b) publish a new epoch, (c) time a cold SSSP enactment on the
// new snapshot against a warm enactment seeded from the previous epoch's
// converged result + the delta (algorithms/incremental.hpp — the exact
// path the engine's warm submission takes).  Medians over kReps publishes.
//
// The updates use a strictly decreasing weight sequence, so a re-touched
// edge is always a weight *decrease* — every record is a monotone insert
// and the warm fast path is eligible on each publish (the fallback paths
// are covered differentially in tests/test_delta.cpp; this experiment
// measures the fast path the paper's incremental argument is about).
//
// Acceptance bar (checked here, enforced in CI): for small republishes
// (d <= 100 changed edges) the warm enactment must be >= 5x faster than
// the cold one.  Both sides run the sequential policy so the ratio
// measures algorithmic work saved, not thread-pool wakeup noise.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "essentials.hpp"

namespace e = essentials;
namespace alg = e::algorithms;
namespace gr = e::graph;
using e::vertex_t;
using e::weight_t;

namespace {

constexpr int kScale = 12;
constexpr int kEdgeFactor = 8;
constexpr int kReps = 9;

using dyn_t = gr::dynamic_graph_t<>;

/// Seed the dynamic graph from the canonical rmat-12 used across benches.
void build_rmat(dyn_t& g) {
  auto const coo = e::generators::rmat(
      {/*scale=*/kScale, /*edge_factor=*/kEdgeFactor, 0.57, 0.19, 0.19,
       {1.0f, 4.0f}, /*seed=*/7});
  for (std::size_t i = 0; i < coo.row_indices.size(); ++i)
    g.add_edge(coo.row_indices[i], coo.column_indices[i], coo.values[i]);
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct point {
  std::size_t delta_size;
  double cold_ms;
  double warm_ms;
  double speedup;
  std::size_t delta_edges;       // compacted records actually in the delta
  std::size_t supersteps_saved;  // cold supersteps - warm supersteps (last rep)
};

/// One sweep point: kReps publishes of `d` monotone updates each, cold vs
/// warm timed on every publish, medians reported.
point run_point(std::size_t d, weight_t& next_weight) {
  // One live graph across all sweep points, like a long-running service
  // (dynamic_graph_t owns locks and is deliberately immovable).
  static dyn_t g(vertex_t{1} << kScale);
  static bool const seeded = (build_rmat(g), true);
  (void)seeded;

  vertex_t const n = g.num_vertices();
  std::mt19937_64 rng(0xde17a + d);
  std::uniform_int_distribution<vertex_t> pick(0, n - 1);

  auto [snap, epoch] = g.publish_epoch<gr::graph_csr>();
  auto prev = alg::sssp(e::execution::seq, *snap, vertex_t{0});

  std::vector<double> cold_ms, warm_ms;
  std::size_t delta_edges = 0, saved = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t i = 0; i < d; ++i) {
      vertex_t const a = pick(rng);
      vertex_t b = pick(rng);
      if (a == b)
        b = (b + 1) % n;
      // Strictly decreasing weights: a collision with an existing edge is
      // a weight decrease, so every record stays a monotone insert.
      next_weight *= 0.9999f;
      g.add_edge(a, b, next_weight);
    }
    auto [next, ep] = g.publish_epoch<gr::graph_csr>();
    auto const delta = g.delta_since(ep - 1);
    if (!delta.complete || !delta.insert_only()) {
      std::fprintf(stderr, "FAIL: delta at size %zu lost the fast path\n", d);
      std::exit(1);
    }

    auto const t0 = std::chrono::steady_clock::now();
    auto cold = alg::sssp(e::execution::seq, *next, vertex_t{0});
    auto const t1 = std::chrono::steady_clock::now();
    alg::incremental_outcome out;
    auto warm = alg::sssp_incremental(e::execution::seq, *next, vertex_t{0},
                                      prev, delta, &out);
    auto const t2 = std::chrono::steady_clock::now();

    if (!out.warm_started) {
      std::fprintf(stderr, "FAIL: warm enactment fell back at size %zu\n", d);
      std::exit(1);
    }
    for (std::size_t v = 0; v < cold.distances.size(); ++v)
      if (warm.distances[v] != cold.distances[v]) {
        std::fprintf(stderr, "FAIL: warm != cold at vertex %zu\n", v);
        std::exit(1);
      }

    cold_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    warm_ms.push_back(
        std::chrono::duration<double, std::milli>(t2 - t1).count());
    delta_edges = out.delta_edges;
    saved = out.supersteps_saved;
    prev = std::move(cold);
  }

  double const c = median(cold_ms), w = median(warm_ms);
  return {d, c, w, w > 0 ? c / w : 0.0, delta_edges, saved};
}

// Micro-benchmark riding along: the cost of appending to + sealing the
// delta log itself (the overhead every mutation pays for warm-startability).
void BM_DeltaLogAppendSeal(benchmark::State& state) {
  dyn_t g(1024);
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<vertex_t> pick(0, 1023);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i)
      g.add_edge(pick(rng), pick(rng), 1.0f);
    benchmark::DoNotOptimize(g.publish_epoch<gr::graph_csr>());
  }
}
BENCHMARK(BM_DeltaLogAppendSeal)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  weight_t next_weight = 0.9f;  // below the rmat weight range: decreases only
  std::vector<point> sweep;
  for (std::size_t d : {std::size_t{1}, std::size_t{10}, std::size_t{100},
                        std::size_t{1000}})
    sweep.push_back(run_point(d, next_weight));

  char const* const path = "BENCH_delta.json";
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"delta_warm_start\",\n"
               "  \"graph\": {\"kind\": \"rmat\", \"scale\": %d, "
               "\"edge_factor\": %d},\n"
               "  \"algorithm\": \"sssp\", \"policy\": \"seq\", "
               "\"reps\": %d, \"statistic\": \"median\",\n"
               "  \"sweep\": [\n",
               kScale, kEdgeFactor, kReps);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    auto const& p = sweep[i];
    std::fprintf(f,
                 "    {\"delta_size\": %zu, \"delta_edges\": %zu, "
                 "\"cold_ms\": %.4f, \"warm_ms\": %.4f, \"speedup\": %.2f, "
                 "\"supersteps_saved\": %zu}%s\n",
                 p.delta_size, p.delta_edges, p.cold_ms, p.warm_ms, p.speedup,
                 p.supersteps_saved, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::printf("bench: wrote %s\n", path);
  for (auto const& p : sweep)
    std::printf(
        "  delta %4zu edges: cold %8.3f ms  warm %8.3f ms  speedup %7.1fx  "
        "(supersteps saved %zu)\n",
        p.delta_size, p.cold_ms, p.warm_ms, p.speedup, p.supersteps_saved);

  // The acceptance bar: small republishes (<= 100 changed edges) must be
  // at least 5x cheaper warm than cold.
  for (auto const& p : sweep)
    if (p.delta_size <= 100 && p.speedup < 5.0) {
      std::fprintf(stderr,
                   "FAIL: warm start at delta %zu only %.2fx faster "
                   "(bar: 5x)\n",
                   p.delta_size, p.speedup);
      return 1;
    }
  return 0;
}
