// bench_partition — experiment A4 (paper §III-D / Table I partitioning
// row): the partitioning heuristics compared on edge cut, vertex balance,
// edge balance and partitioning time, across graph families and part
// counts.
//
// Expected shape: random has the worst cut everywhere (every edge crosses
// with probability (k-1)/k); BFS-grown has the best cut on meshes/roads;
// block sits between (good on meshes thanks to ordered ids, bad on R-MAT);
// greedy-edges wins edge *balance* on skewed graphs at the price of cut.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "essentials.hpp"

namespace e = essentials;
namespace pt = e::partition;

namespace {

struct row_t {
  std::string family, heuristic;
  int parts;
  double cut_fraction, vbalance, ebalance, ms;
};

template <typename F>
std::pair<pt::partition_t<e::vertex_t>, double> timed(F&& fn) {
  auto const t0 = std::chrono::steady_clock::now();
  auto p = fn();
  auto const t1 = std::chrono::steady_clock::now();
  return {std::move(p),
          std::chrono::duration<double, std::milli>(t1 - t0).count()};
}

}  // namespace

int main() {
  struct family_t {
    std::string name;
    e::graph::csr_t<> csr;
  };
  std::vector<family_t> families;
  {
    auto coo = e::generators::grid_2d(128, 128);
    e::graph::sort_and_deduplicate(coo);
    families.push_back({"grid/road", e::graph::build_csr(coo)});
  }
  {
    e::generators::rmat_options opt;
    opt.scale = 12;
    opt.edge_factor = 8;
    auto coo = e::generators::rmat(opt);
    e::graph::remove_self_loops(coo);
    e::graph::sort_and_deduplicate(coo);
    families.push_back({"rmat/social", e::graph::build_csr(coo)});
  }
  {
    auto coo = e::generators::watts_strogatz(10'000, 4, 0.1);
    e::graph::sort_and_deduplicate(coo);
    families.push_back({"small-world", e::graph::build_csr(coo)});
  }

  std::vector<row_t> rows;
  for (auto const& fam : families) {
    for (int k : {4, 16}) {
      auto [rnd, t_rnd] = timed([&] {
        return pt::partition_random<e::vertex_t>(fam.csr.num_rows, k, 1);
      });
      rows.push_back({fam.name, "random", k,
                      pt::edge_cut_fraction(fam.csr, rnd),
                      pt::vertex_balance(rnd), pt::edge_balance(fam.csr, rnd),
                      t_rnd});
      auto [blk, t_blk] = timed([&] {
        return pt::partition_block<e::vertex_t>(fam.csr.num_rows, k);
      });
      rows.push_back({fam.name, "block", k,
                      pt::edge_cut_fraction(fam.csr, blk),
                      pt::vertex_balance(blk), pt::edge_balance(fam.csr, blk),
                      t_blk});
      auto [grd, t_grd] = timed([&] {
        return pt::partition_greedy_edges(fam.csr, k);
      });
      rows.push_back({fam.name, "greedy-edges", k,
                      pt::edge_cut_fraction(fam.csr, grd),
                      pt::vertex_balance(grd), pt::edge_balance(fam.csr, grd),
                      t_grd});
      auto [bfs, t_bfs] = timed([&] {
        return pt::partition_bfs_grow(fam.csr, k, 1);
      });
      rows.push_back({fam.name, "bfs-grow (METIS-like)", k,
                      pt::edge_cut_fraction(fam.csr, bfs),
                      pt::vertex_balance(bfs), pt::edge_balance(fam.csr, bfs),
                      t_bfs});
    }
  }

  std::printf("Partitioning heuristics (A4): edge cut fraction / vertex "
              "balance / edge balance / time\n\n");
  std::printf("%-13s %-22s %6s %10s %10s %10s %10s\n", "family",
              "heuristic", "parts", "cut", "v-bal", "e-bal", "time");
  std::printf("%s\n", std::string(88, '-').c_str());
  for (auto const& r : rows)
    std::printf("%-13s %-22s %6d %9.1f%% %10.3f %10.3f %8.2fms\n",
                r.family.c_str(), r.heuristic.c_str(), r.parts,
                100.0 * r.cut_fraction, r.vbalance, r.ebalance, r.ms);

  // Sanity of the headline shape: on the mesh, BFS-grown must beat random.
  double cut_random = 1.0, cut_grown = 1.0;
  for (auto const& r : rows) {
    if (r.family == "grid/road" && r.parts == 4) {
      if (r.heuristic == "random")
        cut_random = r.cut_fraction;
      if (r.heuristic == "bfs-grow (METIS-like)")
        cut_grown = r.cut_fraction;
    }
  }
  std::printf("\nshape check (mesh, k=4): bfs-grow cut %.1f%% vs random "
              "%.1f%% -> %s\n",
              100.0 * cut_grown, 100.0 * cut_random,
              cut_grown < cut_random ? "PASS" : "FAIL");
  return cut_grown < cut_random ? 0 : 1;
}
