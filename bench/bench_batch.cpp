// bench_batch — the request-batching experiment: does dequeue-time fusion
// of concurrent same-graph BFS queries into bit-lane multi-source waves
// actually amortize edge passes?  Headline measurement, written to
// BENCH_batch.json for CI:
//
//   Bursts of N ∈ {1, 8, 64} concurrent single-source BFS queries (cold
//   cache, distinct sources) on rmat-12, enacted on a 1-runner engine.  A
//   blocker job occupies the runner while the burst queues, so every
//   member is in the fusion window when the runner pops — the wave fuses
//   deterministically into ceil(N/64) lane-packed MS-BFS traversals.  The
//   acceptance bar: aggregate throughput (queries/sec) at N=64 must be
//   ≥ 4x the N=1 baseline.  Without fusion every query pays its own edge
//   pass and throughput is flat in N; with fusion a 64-wave pays one.
//
// A micro-benchmark of the batch-key construction fast path rides along.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "essentials.hpp"

namespace e = essentials;
namespace eng = e::engine;
using e::vertex_t;

namespace {

using engine_t = eng::analytics_engine<e::graph::graph_csr>;

e::graph::graph_csr const& graph() {
  static e::graph::graph_csr const g = [] {
    auto coo = e::generators::rmat(
        {/*scale=*/12, /*edge_factor=*/8, 0.57, 0.19, 0.19, {1.0f, 4.0f},
         /*seed=*/7});
    return e::graph::from_coo<e::graph::graph_csr>(coo);
  }();
  return g;
}

eng::job_desc bfs_desc(vertex_t src) {
  eng::job_desc d;
  d.graph = "g";
  d.algorithm = "bfs";
  d.params = "src=" + std::to_string(src);
  d.use_cache = false;  // cold cache: every member must be enacted
  return d;
}

struct burst_point {
  std::size_t n;           ///< burst size (concurrent queries)
  double wall_ms;          ///< release -> all members retired
  double qps;              ///< aggregate throughput, queries per second
  std::uint64_t batches;   ///< fused waves enacted
  std::uint64_t batched;   ///< members that rode a fused wave
  std::uint64_t saved;     ///< edge passes amortized away
  double avg_batch;        ///< batched / batches
};

/// Enact a burst of `n` distinct-source cold BFS queries on a 1-runner
/// engine.  The blocker holds the runner until every member is queued, so
/// the fusion window sees the whole burst at once — the same shape a
/// request spike presents to a saturated server.
burst_point run_burst(std::size_t n) {
  engine_t engine({/*num_runners=*/1, /*max_queued=*/1024, /*cache=*/0});
  engine.registry().publish("g", graph());

  // Occupy the single runner while the burst queues behind it.
  std::atomic<bool> release{false};
  eng::job_desc blocker_desc;
  blocker_desc.graph = "g";
  blocker_desc.algorithm = "blocker";
  blocker_desc.use_cache = false;
  auto blocker = engine.submit(
      blocker_desc,
      [&release](e::graph::graph_csr const&, eng::job_context&)
          -> std::shared_ptr<void const> {
        while (!release.load(std::memory_order_acquire))
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        return nullptr;
      });

  std::vector<eng::job_ptr> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto const src = static_cast<vertex_t>(i);
    jobs.push_back(engine.submit_batch(
        bfs_desc(src),
        eng::bfs_batch_job<e::graph::graph_csr>(e::execution::par, src)));
  }

  auto const t0 = std::chrono::steady_clock::now();
  release.store(true, std::memory_order_release);
  for (auto const& j : jobs)
    j->wait();
  double const ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  blocker->wait();
  for (auto const& j : jobs)
    if (j->status() != eng::job_status::completed)
      std::fprintf(stderr, "warning: job retired %s\n",
                   eng::to_string(j->status()));

  auto const s = engine.stats();
  return {n,
          ms,
          ms > 0 ? static_cast<double>(n) * 1000.0 / ms : 0.0,
          s.batches,
          s.batched_jobs,
          s.edge_passes_saved,
          s.avg_batch_size()};
}

// Micro-benchmark: the compatibility-key construction on the submit path.
void BM_BatchKey(benchmark::State& state) {
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    auto k = eng::make_batch_key("g", ++epoch, "bfs");
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(BM_BatchKey)->Unit(benchmark::kNanosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Best-of-3 per burst size: the N=1 baseline is a single traversal and
  // jittery on a loaded CI machine; best-of smooths scheduling noise
  // without hiding the amortization (which is a >10x structural effect).
  std::vector<burst_point> bursts;
  for (std::size_t n : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
    burst_point best = run_burst(n);
    for (int rep = 1; rep < 3; ++rep) {
      auto const p = run_burst(n);
      if (p.wall_ms < best.wall_ms)
        best = p;
    }
    bursts.push_back(best);
  }
  double const qps1 = bursts.front().qps;
  double const qps64 = bursts.back().qps;
  double const speedup = qps1 > 0 ? qps64 / qps1 : 0.0;

  char const* const path = "BENCH_batch.json";
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"request_batching\",\n"
               "  \"graph\": {\"kind\": \"rmat\", \"scale\": 12, "
               "\"edge_factor\": 8, \"vertices\": %lld, \"edges\": %lld},\n"
               "  \"runners\": 1,\n  \"bursts\": [\n",
               static_cast<long long>(graph().get_num_vertices()),
               static_cast<long long>(graph().get_num_edges()));
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    auto const& p = bursts[i];
    std::fprintf(f,
                 "    {\"concurrent_queries\": %zu, \"wall_ms\": %.2f, "
                 "\"queries_per_sec\": %.1f, \"batches\": %llu, "
                 "\"batched_jobs\": %llu, \"edge_passes_saved\": %llu, "
                 "\"avg_batch_size\": %.2f}%s\n",
                 p.n, p.wall_ms, p.qps,
                 static_cast<unsigned long long>(p.batches),
                 static_cast<unsigned long long>(p.batched),
                 static_cast<unsigned long long>(p.saved), p.avg_batch,
                 i + 1 < bursts.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"throughput_speedup_64_vs_1\": %.2f,\n"
               "  \"acceptance_bar\": 4.0\n}\n",
               speedup);
  std::fclose(f);

  std::printf("bench: wrote %s\n", path);
  for (auto const& p : bursts)
    std::printf(
        "  burst %3zu: %8.2f ms  %9.1f q/s  (batches %llu, fused members "
        "%llu, edge passes saved %llu, avg batch %.1f)\n",
        p.n, p.wall_ms, p.qps, static_cast<unsigned long long>(p.batches),
        static_cast<unsigned long long>(p.batched),
        static_cast<unsigned long long>(p.saved), p.avg_batch);
  std::printf("  throughput speedup 64 vs 1: %.2fx (bar: >= 4.0x)\n",
              speedup);

  // The acceptance bar: a 64-query burst fused into one wave must deliver
  // at least 4x the aggregate throughput of one-at-a-time enactment.
  if (speedup < 4.0) {
    std::fprintf(stderr,
                 "FAIL: batching bar missed (throughput speedup %.2fx < "
                 "4.0x at burst=64)\n",
                 speedup);
    return 1;
  }
  return 0;
}
