// bench_operators — operator-level ablations of the design choices
// DESIGN.md calls out, anchored on paper Listing 3:
//
//  - per-discovery mutex (the literal Listing 3 formulation) vs lane-local
//    buffers with bulk publication (the pre-scan default) vs lock-free
//    scan compaction (the current default) — what short critical sections
//    buy, and then what eliminating the lock entirely buys on top;
//  - uniquify by sort vs by claim-bitmap — the frontier-dedup strategy
//    trade (O(F log F) comparison sort vs O(F) + O(V) bitmap);
//  - sparse-output vs dense-output advance — paying bitmap writes to get
//    dedup for free;
//  - exclusive_scan throughput — the load-balancing primitive.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "essentials.hpp"

namespace e = essentials;
namespace fr = e::frontier;
namespace op = e::operators;

namespace {

e::graph::graph_csr const& graph() {
  static auto const g = [] {
    e::generators::rmat_options opt;
    opt.scale = 12;
    opt.edge_factor = 16;
    auto coo = e::generators::rmat(opt);
    e::graph::remove_self_loops(coo);
    return e::graph::from_coo<e::graph::graph_csr>(std::move(coo));
  }();
  return g;
}

fr::sparse_frontier<e::vertex_t> frontier_of(std::size_t count) {
  fr::sparse_frontier<e::vertex_t> f;
  std::size_t const n = static_cast<std::size_t>(graph().get_num_vertices());
  std::size_t const stride = std::max<std::size_t>(1, n / count);
  for (std::size_t v = 0; v < n; v += stride)
    f.add_vertex(static_cast<e::vertex_t>(v));
  return f;
}

auto const always = [](e::vertex_t, e::vertex_t, e::edge_t, e::weight_t) {
  return true;
};

void BM_AdvanceScanCompaction(benchmark::State& state) {
  // The default: lane buffers + prefix-sum compaction, no locks on the
  // output path.
  auto const in = frontier_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::advance_push(e::execution::par, graph(), in, always).size());
}

void BM_AdvanceBulkBuffered(benchmark::State& state) {
  // Ablation: lane-local buffers published under one spinlock per chunk
  // (the pre-scan default), pinned explicitly now that `par` means scan.
  auto const in = frontier_of(static_cast<std::size_t>(state.range(0)));
  auto const policy =
      e::execution::par.with_frontier(e::execution::frontier_gen::bulk);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::advance_push(policy, graph(), in, always).size());
}

void BM_AdvanceScanDedup(benchmark::State& state) {
  // Scan + claim-bitmap dedup: the output is a set; measures the bitmap's
  // cost against BM_AdvanceScanCompaction's multiset output.
  auto const in = frontier_of(static_cast<std::size_t>(state.range(0)));
  auto const policy = e::execution::par.with_dedup();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::advance_push(policy, graph(), in, always).size());
}

void BM_AdvanceListing3Mutex(benchmark::State& state) {
  auto const in = frontier_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::neighbors_expand_listing3(e::execution::par, graph(), in, always)
            .size());
}

void BM_AdvanceDenseOutput(benchmark::State& state) {
  auto const in = frontier_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::advance_push_to_dense(e::execution::par, graph(), in, always)
            .size());
}

void BM_AdvanceEdgeBalanced(benchmark::State& state) {
  // §IV-C load balancing ablation: edges (not vertices) are the unit of
  // work, so a hub vertex no longer serializes one lane.  Compare with
  // BM_AdvanceBulkBuffered (thread-mapped) on the same skewed frontier.
  auto const in = frontier_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::advance_push_edge_balanced(e::execution::par, graph(), in, always)
            .size());
}

/// The `count` highest-out-degree vertices — the worst case for thread
/// mapping: power-law hubs sharing a frontier with low-degree vertices.
fr::sparse_frontier<e::vertex_t> hub_frontier(std::size_t count) {
  fr::sparse_frontier<e::vertex_t> in;
  std::vector<e::vertex_t> by_degree(
      static_cast<std::size_t>(graph().get_num_vertices()));
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::sort(by_degree.begin(), by_degree.end(),
            [](e::vertex_t a, e::vertex_t b) {
              return graph().get_out_degree(a) > graph().get_out_degree(b);
            });
  for (std::size_t i = 0; i < count && i < by_degree.size(); ++i)
    in.add_vertex(by_degree[i]);
  return in;
}

void BM_AdvanceThreadMappedHubFrontier(benchmark::State& state) {
  // The load-balance strategy sweep on the skewed frontier: Arg is the
  // execution::load_balance enumerator (0 thread_mapped, 1 edge_balanced,
  // 2 degree_class, 3 auto_select).
  auto const in = hub_frontier(256);
  auto const strategy =
      static_cast<e::execution::load_balance>(state.range(0));
  auto const policy = e::execution::par.with_load_balance(strategy);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::advance_balanced(policy, graph(), in, always).size());
  state.SetLabel(std::string("hub-frontier ") +
                 e::execution::to_string(strategy));
}

void BM_UniquifySort(benchmark::State& state) {
  auto const base =
      op::advance_push(e::execution::par, graph(),
                       frontier_of(static_cast<std::size_t>(state.range(0))),
                       always);
  for (auto _ : state) {
    auto f = base;
    op::uniquify(e::execution::seq, f);
    benchmark::DoNotOptimize(f.size());
  }
}

void BM_UniquifyBitmap(benchmark::State& state) {
  auto const base =
      op::advance_push(e::execution::par, graph(),
                       frontier_of(static_cast<std::size_t>(state.range(0))),
                       always);
  for (auto _ : state) {
    auto f = base;
    op::uniquify(e::execution::par, f,
                 static_cast<std::size_t>(graph().get_num_vertices()));
    benchmark::DoNotOptimize(f.size());
  }
}

void BM_CompressedVsFlatTraversal(benchmark::State& state) {
  // Varint-delta compressed adjacency vs flat CSR: decode ALU traded for
  // memory footprint.  Label reports the compression ratio.
  static auto const csr = [] {
    auto coo = e::generators::grid_2d(256, 256, {1.0f, 4.0f});
    e::graph::sort_and_deduplicate(coo);
    return e::graph::build_csr(coo);
  }();
  static e::graph::compressed_graph<> const cg(csr);
  static e::graph::graph_csr const flat = [] {
    e::graph::graph_csr g2;
    g2.set_csr(csr);
    return g2;
  }();
  bool const compressed = state.range(0) != 0;
  for (auto _ : state) {
    if (compressed) {
      benchmark::DoNotOptimize(
          e::algorithms::sssp_compressed(cg, e::vertex_t{0}).data());
    } else {
      benchmark::DoNotOptimize(
          e::algorithms::sssp(e::execution::seq, flat, 0).distances.data());
    }
  }
  state.SetLabel(compressed
                     ? "compressed (ratio " +
                           std::to_string(cg.compression_ratio()).substr(0, 4) +
                           "x)"
                     : "flat CSR");
}

void BM_ExclusiveScan(benchmark::State& state) {
  std::size_t const n = static_cast<std::size_t>(state.range(0));
  std::vector<int> in(n, 3);
  std::vector<long long> out(n);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::parallel::exclusive_scan(in.data(), n, out.data()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<long long>(n * sizeof(int)));
}

BENCHMARK(BM_AdvanceScanCompaction)->Arg(1 << 8)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvanceScanDedup)->Arg(1 << 8)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvanceBulkBuffered)->Arg(1 << 8)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvanceListing3Mutex)->Arg(1 << 8)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvanceDenseOutput)->Arg(1 << 8)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvanceEdgeBalanced)->Arg(1 << 8)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvanceThreadMappedHubFrontier)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UniquifySort)->Arg(1 << 12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UniquifyBitmap)->Arg(1 << 12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompressedVsFlatTraversal)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExclusiveScan)->Arg(1 << 16)->Arg(1 << 22);

}  // namespace

// Custom main (replaces BENCHMARK_MAIN): after the timing run, re-execute
// the headline advance workloads once under a telemetry recording and write
// the traces next to the timing output — so every benchmark run leaves a
// machine-readable record of the *work* (edges inspected/relaxed, pool
// occupancy, lock-free vs locked emits) behind the timings.  A second
// artifact, BENCH_frontier.json, reports edges/sec for the three
// frontier-generation strategies on the largest seeded frontier (timed over
// several repetitions, work counts from telemetry) — the headline
// scan-vs-lock number CI uploads.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::vector<e::telemetry::trace> traces;
  auto const record = [&traces](char const* name, auto&& run) {
    traces.emplace_back();
    e::telemetry::scoped_recording rec(traces.back(), name);
    run();
  };
  auto const in = frontier_of(1 << 12);
  record("advance_push.scan_compaction", [&] {
    op::advance_push(e::execution::par, graph(), in, always);
  });
  record("advance_push.scan_dedup", [&] {
    op::advance_push(e::execution::par.with_dedup(), graph(), in, always);
  });
  record("advance_push.bulk_buffered", [&] {
    op::advance_push(
        e::execution::par.with_frontier(e::execution::frontier_gen::bulk),
        graph(), in, always);
  });
  record("advance_push.listing3_mutex", [&] {
    op::neighbors_expand_listing3(e::execution::par, graph(), in, always);
  });
  record("advance_push.dense_output", [&] {
    op::advance_push_to_dense(e::execution::par, graph(), in, always);
  });
  record("advance_push.edge_balanced", [&] {
    op::advance_push_edge_balanced(e::execution::par, graph(), in, always);
  });

  char const* const path = "bench_operators.telemetry.json";
  if (!e::telemetry::write_json(traces, path)) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::printf("telemetry: wrote %s (%zu traces)\n", path, traces.size());

  // --- BENCH_frontier.json: edges/sec, lock vs scan, largest frontier ------
  struct strategy_result {
    char const* name;
    double edges_per_sec;
    std::size_t edges;
    std::size_t emits_scan;
    std::size_t emits_lock;
  };
  std::vector<strategy_result> results;
  auto const measure = [&](char const* name, auto&& policy) {
    constexpr int reps = 10;
    e::telemetry::trace t;
    auto const t0 = std::chrono::steady_clock::now();
    {
      e::telemetry::scoped_recording rec(t, name);
      for (int r = 0; r < reps; ++r)
        benchmark::DoNotOptimize(
            op::advance_push(policy, graph(), in, always).size());
    }
    auto const dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    results.push_back({name,
                       dt > 0 ? static_cast<double>(t.total_edges_inspected()) / dt
                              : 0.0,
                       t.total_edges_inspected() / reps,
                       t.total_emits_scan() / reps,
                       t.total_emits_lock() / reps});
  };
  namespace ex = e::execution;
  measure("scan", ex::par);
  measure("bulk", ex::par.with_frontier(ex::frontier_gen::bulk));
  measure("listing3", ex::par.with_frontier(ex::frontier_gen::listing3));

  // Representation footprint: what the same graph costs as block-coded CSR
  // (the storage tier the operators can run on directly) next to the plain
  // 4-byte-id adjacency these timings used, plus the process resident set.
  e::graph::compressed_graph<> const cg(graph().csr());
  double const bytes_per_edge = cg.bytes_per_edge();
  double const bytes_ratio =
      static_cast<double>(cg.adjacency_bytes()) /
      static_cast<double>(cg.uncompressed_adjacency_bytes());
  std::size_t const rss = e::io::detail::process_resident_bytes();

  char const* const fpath = "BENCH_frontier.json";
  if (std::FILE* f = std::fopen(fpath, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"frontier_generation\",\n"
                 "  \"graph\": {\"kind\": \"rmat\", \"scale\": 12, "
                 "\"edge_factor\": 16, \"vertices\": %lld, \"edges\": %lld},\n"
                 "  \"frontier_size\": %zu,\n  \"strategies\": [\n",
                 static_cast<long long>(graph().get_num_vertices()),
                 static_cast<long long>(graph().get_num_edges()), in.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      auto const& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"edges_per_sec\": %.0f, "
                   "\"edges_inspected\": %zu, \"emits_scan\": %zu, "
                   "\"emits_lock\": %zu}%s\n",
                   r.name, r.edges_per_sec, r.edges, r.emits_scan,
                   r.emits_lock, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"representation\": {\"plain_bytes_per_edge\": %zu, "
                 "\"compressed_bytes_per_edge\": %.3f, \"bytes_ratio\": %.3f, "
                 "\"resident_set_bytes\": %zu}\n}\n",
                 sizeof(e::vertex_t), bytes_per_edge, bytes_ratio, rss);
    std::fclose(f);
    std::printf("bench: wrote %s\n", fpath);
    for (auto const& r : results)
      std::printf("  %-9s %12.0f edges/sec\n", r.name, r.edges_per_sec);
    std::printf("  footprint: %.3f bytes/edge compressed (ratio %.3f), rss %.1f MiB\n",
                bytes_per_edge, bytes_ratio,
                static_cast<double>(rss) / (1024.0 * 1024.0));
  } else {
    std::fprintf(stderr, "failed to write %s\n", fpath);
    return 1;
  }

  // --- BENCH_loadbalance.json: the work-decomposition strategy sweep -------
  //
  // Edges/sec for every execution::load_balance strategy on the two frontier
  // shapes that bracket the decision space — the 256-hub skewed frontier
  // (where thread mapping serializes on celebrity vertices) and a uniform
  // stride-sampled frontier (where decomposition overhead is pure cost) —
  // plus the parallel-vs-serial degree-scan headline on a >= 64k-element
  // input (the pass-1 primitive edge_balanced pays every superstep).
  //
  // Three gates, all env-overridable (0 disables), armed only on hosts with
  // enough lanes for the decomposition to matter:
  //  - ESSENTIALS_LOADBALANCE_FLOOR (default 1.2, >= 8 cores):
  //    degree_class must beat thread_mapped by the floor on hub frontiers;
  //  - ESSENTIALS_AUTOLB_FLOOR (default 0.95, >= 4 cores): auto_select must
  //    stay within the floor of the best fixed strategy on hub frontiers;
  //  - ESSENTIALS_SCAN_FLOOR (default 1.0, >= 8 cores): the blocked
  //    parallel scan must beat the serial sweep at 128k elements.
  {
    namespace lbx = e::execution;
    unsigned const hw = std::thread::hardware_concurrency();
    auto const env_floor = [](char const* name, double dflt) {
      if (char const* s = std::getenv(name)) {
        char* end = nullptr;
        double const v = std::strtod(s, &end);
        if (end != s)
          return v;
      }
      return dflt;
    };
    double const lb_floor = env_floor("ESSENTIALS_LOADBALANCE_FLOOR", 1.2);
    double const auto_floor = env_floor("ESSENTIALS_AUTOLB_FLOOR", 0.95);
    double const scan_floor = env_floor("ESSENTIALS_SCAN_FLOOR", 1.0);
    bool const lb_enforced = hw >= 8 && lb_floor > 0.0;
    bool const auto_enforced = hw >= 4 && auto_floor > 0.0;
    bool const scan_enforced = hw >= 8 && scan_floor > 0.0;

    struct lb_result {
      char const* name;
      double edges_per_sec;
    };
    auto const sweep = [&](fr::sparse_frontier<e::vertex_t> const& f) {
      std::vector<lb_result> out;
      for (auto const lb :
           {lbx::load_balance::thread_mapped, lbx::load_balance::edge_balanced,
            lbx::load_balance::degree_class, lbx::load_balance::auto_select}) {
        constexpr int reps = 10;
        e::telemetry::trace t;
        auto const t0 = std::chrono::steady_clock::now();
        {
          e::telemetry::scoped_recording rec(t, "lb");
          for (int r = 0; r < reps; ++r)
            benchmark::DoNotOptimize(
                op::advance_balanced(lbx::par.with_load_balance(lb), graph(),
                                     f, always)
                    .size());
        }
        auto const dt = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        out.push_back(
            {lbx::to_string(lb),
             dt > 0
                 ? static_cast<double>(t.total_edges_inspected()) / dt
                 : 0.0});
      }
      return out;
    };
    auto const hubs = hub_frontier(256);
    auto const uniform = frontier_of(1 << 12);
    auto const hub_results = sweep(hubs);
    auto const uniform_results = sweep(uniform);

    // hub_results order mirrors the sweep order above.
    double const tm_rate = hub_results[0].edges_per_sec;
    double const dc_rate = hub_results[2].edges_per_sec;
    double const auto_rate = hub_results[3].edges_per_sec;
    double best_fixed = 0.0;
    for (std::size_t i = 0; i < 3; ++i)
      best_fixed = std::max(best_fixed, hub_results[i].edges_per_sec);
    double const dc_ratio = tm_rate > 0 ? dc_rate / tm_rate : 0.0;
    double const auto_ratio = best_fixed > 0 ? auto_rate / best_fixed : 0.0;

    // Degree-scan headline: serial sweep vs the blocked pool scan over a
    // synthetic degree array well past the parallel cutoff.
    std::size_t const scan_n = std::size_t{1} << 17;  // 128k "vertices"
    std::vector<std::size_t> degrees(scan_n);
    for (std::size_t i = 0; i < scan_n; ++i)
      degrees[i] = (i * 13 + 7) % 64;
    std::vector<std::size_t> offsets(scan_n);
    constexpr int scan_reps = 50;
    auto const s0 = std::chrono::steady_clock::now();
    for (int r = 0; r < scan_reps; ++r) {
      std::size_t acc = 0;
      for (std::size_t i = 0; i < scan_n; ++i) {
        offsets[i] = acc;
        acc += degrees[i];
      }
      benchmark::DoNotOptimize(acc);
    }
    double const serial_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - s0)
                                .count();
    auto const p0 = std::chrono::steady_clock::now();
    for (int r = 0; r < scan_reps; ++r)
      benchmark::DoNotOptimize(
          e::parallel::exclusive_scan(degrees.data(), scan_n, offsets.data()));
    double const parallel_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - p0)
                                  .count();
    double const scan_speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;

    char const* const lpath = "BENCH_loadbalance.json";
    std::FILE* const lf = std::fopen(lpath, "w");
    if (lf == nullptr) {
      std::fprintf(stderr, "failed to write %s\n", lpath);
      return 1;
    }
    std::fprintf(lf,
                 "{\n  \"bench\": \"load_balance\",\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"graph\": {\"kind\": \"rmat\", \"scale\": 12, "
                 "\"edge_factor\": 16, \"vertices\": %lld, \"edges\": %lld},\n",
                 hw, static_cast<long long>(graph().get_num_vertices()),
                 static_cast<long long>(graph().get_num_edges()));
    auto const write_sweep = [&](char const* key, std::size_t fsize,
                                 std::vector<lb_result> const& rs,
                                 char const* tail) {
      std::fprintf(lf, "  \"%s\": {\"frontier_size\": %zu, \"strategies\": [\n",
                   key, fsize);
      for (std::size_t i = 0; i < rs.size(); ++i)
        std::fprintf(lf, "    {\"name\": \"%s\", \"edges_per_sec\": %.0f}%s\n",
                     rs[i].name, rs[i].edges_per_sec,
                     i + 1 < rs.size() ? "," : "");
      std::fprintf(lf, "  ]}%s\n", tail);
    };
    write_sweep("hub_frontier", hubs.size(), hub_results, ",");
    write_sweep("uniform_frontier", uniform.size(), uniform_results, ",");
    std::fprintf(lf,
                 "  \"degree_scan\": {\"elements\": %zu, \"serial_ms\": %.3f, "
                 "\"parallel_ms\": %.3f, \"speedup\": %.3f, \"floor\": %.3f, "
                 "\"enforced\": %s},\n",
                 scan_n, serial_s * 1000.0 / scan_reps,
                 parallel_s * 1000.0 / scan_reps, scan_speedup, scan_floor,
                 scan_enforced ? "true" : "false");
    std::fprintf(lf,
                 "  \"gates\": {\n"
                 "    \"degree_class_vs_thread_mapped\": {\"ratio\": %.3f, "
                 "\"floor\": %.3f, \"enforced\": %s},\n"
                 "    \"auto_vs_best_fixed\": {\"ratio\": %.3f, "
                 "\"floor\": %.3f, \"enforced\": %s}\n  }\n}\n",
                 dc_ratio, lb_floor, lb_enforced ? "true" : "false",
                 auto_ratio, auto_floor, auto_enforced ? "true" : "false");
    std::fclose(lf);
    std::printf("bench: wrote %s\n", lpath);
    for (auto const& r : hub_results)
      std::printf("  hub %-14s %12.0f edges/sec\n", r.name, r.edges_per_sec);
    std::printf("  degree_class/thread_mapped %.2fx (floor %.2f, %s), "
                "auto/best %.2fx (floor %.2f, %s)\n",
                dc_ratio, lb_floor, lb_enforced ? "enforced" : "advisory",
                auto_ratio, auto_floor, auto_enforced ? "enforced" : "advisory");
    std::printf("  degree scan: %.2fx parallel speedup at %zu elements "
                "(floor %.2f, %s)\n",
                scan_speedup, scan_n, scan_floor,
                scan_enforced ? "enforced" : "advisory");

    bool failed = false;
    if (lb_enforced && dc_ratio < lb_floor) {
      std::fprintf(stderr,
                   "FAIL: degree_class %.2fx of thread_mapped on hub "
                   "frontiers, floor %.2f\n",
                   dc_ratio, lb_floor);
      failed = true;
    }
    if (auto_enforced && auto_ratio < auto_floor) {
      std::fprintf(stderr,
                   "FAIL: auto_select %.2fx of best fixed strategy, floor "
                   "%.2f\n",
                   auto_ratio, auto_floor);
      failed = true;
    }
    if (scan_enforced && scan_speedup < scan_floor) {
      std::fprintf(stderr,
                   "FAIL: parallel degree scan %.2fx of serial, floor %.2f\n",
                   scan_speedup, scan_floor);
      failed = true;
    }
    if (failed)
      return 1;
  }
  return 0;
}
