// bench_operators — operator-level ablations of the design choices
// DESIGN.md calls out, anchored on paper Listing 3:
//
//  - per-discovery mutex (the literal Listing 3 formulation) vs lane-local
//    buffers with bulk publication (the pre-scan default) vs lock-free
//    scan compaction (the current default) — what short critical sections
//    buy, and then what eliminating the lock entirely buys on top;
//  - uniquify by sort vs by claim-bitmap — the frontier-dedup strategy
//    trade (O(F log F) comparison sort vs O(F) + O(V) bitmap);
//  - sparse-output vs dense-output advance — paying bitmap writes to get
//    dedup for free;
//  - exclusive_scan throughput — the load-balancing primitive.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <numeric>
#include <vector>

#include "essentials.hpp"

namespace e = essentials;
namespace fr = e::frontier;
namespace op = e::operators;

namespace {

e::graph::graph_csr const& graph() {
  static auto const g = [] {
    e::generators::rmat_options opt;
    opt.scale = 12;
    opt.edge_factor = 16;
    auto coo = e::generators::rmat(opt);
    e::graph::remove_self_loops(coo);
    return e::graph::from_coo<e::graph::graph_csr>(std::move(coo));
  }();
  return g;
}

fr::sparse_frontier<e::vertex_t> frontier_of(std::size_t count) {
  fr::sparse_frontier<e::vertex_t> f;
  std::size_t const n = static_cast<std::size_t>(graph().get_num_vertices());
  std::size_t const stride = std::max<std::size_t>(1, n / count);
  for (std::size_t v = 0; v < n; v += stride)
    f.add_vertex(static_cast<e::vertex_t>(v));
  return f;
}

auto const always = [](e::vertex_t, e::vertex_t, e::edge_t, e::weight_t) {
  return true;
};

void BM_AdvanceScanCompaction(benchmark::State& state) {
  // The default: lane buffers + prefix-sum compaction, no locks on the
  // output path.
  auto const in = frontier_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::advance_push(e::execution::par, graph(), in, always).size());
}

void BM_AdvanceBulkBuffered(benchmark::State& state) {
  // Ablation: lane-local buffers published under one spinlock per chunk
  // (the pre-scan default), pinned explicitly now that `par` means scan.
  auto const in = frontier_of(static_cast<std::size_t>(state.range(0)));
  auto const policy =
      e::execution::par.with_frontier(e::execution::frontier_gen::bulk);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::advance_push(policy, graph(), in, always).size());
}

void BM_AdvanceScanDedup(benchmark::State& state) {
  // Scan + claim-bitmap dedup: the output is a set; measures the bitmap's
  // cost against BM_AdvanceScanCompaction's multiset output.
  auto const in = frontier_of(static_cast<std::size_t>(state.range(0)));
  auto const policy = e::execution::par.with_dedup();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::advance_push(policy, graph(), in, always).size());
}

void BM_AdvanceListing3Mutex(benchmark::State& state) {
  auto const in = frontier_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::neighbors_expand_listing3(e::execution::par, graph(), in, always)
            .size());
}

void BM_AdvanceDenseOutput(benchmark::State& state) {
  auto const in = frontier_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::advance_push_to_dense(e::execution::par, graph(), in, always)
            .size());
}

void BM_AdvanceEdgeBalanced(benchmark::State& state) {
  // §IV-C load balancing ablation: edges (not vertices) are the unit of
  // work, so a hub vertex no longer serializes one lane.  Compare with
  // BM_AdvanceBulkBuffered (thread-mapped) on the same skewed frontier.
  auto const in = frontier_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::advance_push_edge_balanced(e::execution::par, graph(), in, always)
            .size());
}

void BM_AdvanceThreadMappedHubFrontier(benchmark::State& state) {
  // Worst case for thread mapping: a frontier holding the hubs of the
  // power-law graph (top-degree vertices) next to low-degree vertices.
  fr::sparse_frontier<e::vertex_t> in;
  std::vector<e::vertex_t> by_degree(
      static_cast<std::size_t>(graph().get_num_vertices()));
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::sort(by_degree.begin(), by_degree.end(),
            [](e::vertex_t a, e::vertex_t b) {
              return graph().get_out_degree(a) > graph().get_out_degree(b);
            });
  for (std::size_t i = 0; i < 256 && i < by_degree.size(); ++i)
    in.add_vertex(by_degree[i]);
  bool const balanced = state.range(0) != 0;
  for (auto _ : state) {
    if (balanced)
      benchmark::DoNotOptimize(
          op::advance_push_edge_balanced(e::execution::par, graph(), in,
                                         always)
              .size());
    else
      benchmark::DoNotOptimize(
          op::advance_push(e::execution::par, graph(), in, always).size());
  }
  state.SetLabel(balanced ? "hub-frontier edge-balanced"
                          : "hub-frontier thread-mapped");
}

void BM_UniquifySort(benchmark::State& state) {
  auto const base =
      op::advance_push(e::execution::par, graph(),
                       frontier_of(static_cast<std::size_t>(state.range(0))),
                       always);
  for (auto _ : state) {
    auto f = base;
    op::uniquify(e::execution::seq, f);
    benchmark::DoNotOptimize(f.size());
  }
}

void BM_UniquifyBitmap(benchmark::State& state) {
  auto const base =
      op::advance_push(e::execution::par, graph(),
                       frontier_of(static_cast<std::size_t>(state.range(0))),
                       always);
  for (auto _ : state) {
    auto f = base;
    op::uniquify(e::execution::par, f,
                 static_cast<std::size_t>(graph().get_num_vertices()));
    benchmark::DoNotOptimize(f.size());
  }
}

void BM_CompressedVsFlatTraversal(benchmark::State& state) {
  // Varint-delta compressed adjacency vs flat CSR: decode ALU traded for
  // memory footprint.  Label reports the compression ratio.
  static auto const csr = [] {
    auto coo = e::generators::grid_2d(256, 256, {1.0f, 4.0f});
    e::graph::sort_and_deduplicate(coo);
    return e::graph::build_csr(coo);
  }();
  static e::graph::compressed_graph<> const cg(csr);
  static e::graph::graph_csr const flat = [] {
    e::graph::graph_csr g2;
    g2.set_csr(csr);
    return g2;
  }();
  bool const compressed = state.range(0) != 0;
  for (auto _ : state) {
    if (compressed) {
      benchmark::DoNotOptimize(
          e::algorithms::sssp_compressed(cg, e::vertex_t{0}).data());
    } else {
      benchmark::DoNotOptimize(
          e::algorithms::sssp(e::execution::seq, flat, 0).distances.data());
    }
  }
  state.SetLabel(compressed
                     ? "compressed (ratio " +
                           std::to_string(cg.compression_ratio()).substr(0, 4) +
                           "x)"
                     : "flat CSR");
}

void BM_ExclusiveScan(benchmark::State& state) {
  std::size_t const n = static_cast<std::size_t>(state.range(0));
  std::vector<int> in(n, 3);
  std::vector<long long> out(n);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::parallel::exclusive_scan(in.data(), n, out.data()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<long long>(n * sizeof(int)));
}

BENCHMARK(BM_AdvanceScanCompaction)->Arg(1 << 8)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvanceScanDedup)->Arg(1 << 8)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvanceBulkBuffered)->Arg(1 << 8)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvanceListing3Mutex)->Arg(1 << 8)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvanceDenseOutput)->Arg(1 << 8)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvanceEdgeBalanced)->Arg(1 << 8)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvanceThreadMappedHubFrontier)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UniquifySort)->Arg(1 << 12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UniquifyBitmap)->Arg(1 << 12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompressedVsFlatTraversal)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExclusiveScan)->Arg(1 << 16)->Arg(1 << 22);

}  // namespace

// Custom main (replaces BENCHMARK_MAIN): after the timing run, re-execute
// the headline advance workloads once under a telemetry recording and write
// the traces next to the timing output — so every benchmark run leaves a
// machine-readable record of the *work* (edges inspected/relaxed, pool
// occupancy, lock-free vs locked emits) behind the timings.  A second
// artifact, BENCH_frontier.json, reports edges/sec for the three
// frontier-generation strategies on the largest seeded frontier (timed over
// several repetitions, work counts from telemetry) — the headline
// scan-vs-lock number CI uploads.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::vector<e::telemetry::trace> traces;
  auto const record = [&traces](char const* name, auto&& run) {
    traces.emplace_back();
    e::telemetry::scoped_recording rec(traces.back(), name);
    run();
  };
  auto const in = frontier_of(1 << 12);
  record("advance_push.scan_compaction", [&] {
    op::advance_push(e::execution::par, graph(), in, always);
  });
  record("advance_push.scan_dedup", [&] {
    op::advance_push(e::execution::par.with_dedup(), graph(), in, always);
  });
  record("advance_push.bulk_buffered", [&] {
    op::advance_push(
        e::execution::par.with_frontier(e::execution::frontier_gen::bulk),
        graph(), in, always);
  });
  record("advance_push.listing3_mutex", [&] {
    op::neighbors_expand_listing3(e::execution::par, graph(), in, always);
  });
  record("advance_push.dense_output", [&] {
    op::advance_push_to_dense(e::execution::par, graph(), in, always);
  });
  record("advance_push.edge_balanced", [&] {
    op::advance_push_edge_balanced(e::execution::par, graph(), in, always);
  });

  char const* const path = "bench_operators.telemetry.json";
  if (!e::telemetry::write_json(traces, path)) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::printf("telemetry: wrote %s (%zu traces)\n", path, traces.size());

  // --- BENCH_frontier.json: edges/sec, lock vs scan, largest frontier ------
  struct strategy_result {
    char const* name;
    double edges_per_sec;
    std::size_t edges;
    std::size_t emits_scan;
    std::size_t emits_lock;
  };
  std::vector<strategy_result> results;
  auto const measure = [&](char const* name, auto&& policy) {
    constexpr int reps = 10;
    e::telemetry::trace t;
    auto const t0 = std::chrono::steady_clock::now();
    {
      e::telemetry::scoped_recording rec(t, name);
      for (int r = 0; r < reps; ++r)
        benchmark::DoNotOptimize(
            op::advance_push(policy, graph(), in, always).size());
    }
    auto const dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    results.push_back({name,
                       dt > 0 ? static_cast<double>(t.total_edges_inspected()) / dt
                              : 0.0,
                       t.total_edges_inspected() / reps,
                       t.total_emits_scan() / reps,
                       t.total_emits_lock() / reps});
  };
  namespace ex = e::execution;
  measure("scan", ex::par);
  measure("bulk", ex::par.with_frontier(ex::frontier_gen::bulk));
  measure("listing3", ex::par.with_frontier(ex::frontier_gen::listing3));

  // Representation footprint: what the same graph costs as block-coded CSR
  // (the storage tier the operators can run on directly) next to the plain
  // 4-byte-id adjacency these timings used, plus the process resident set.
  e::graph::compressed_graph<> const cg(graph().csr());
  double const bytes_per_edge = cg.bytes_per_edge();
  double const bytes_ratio =
      static_cast<double>(cg.adjacency_bytes()) /
      static_cast<double>(cg.uncompressed_adjacency_bytes());
  std::size_t const rss = e::io::detail::process_resident_bytes();

  char const* const fpath = "BENCH_frontier.json";
  if (std::FILE* f = std::fopen(fpath, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"frontier_generation\",\n"
                 "  \"graph\": {\"kind\": \"rmat\", \"scale\": 12, "
                 "\"edge_factor\": 16, \"vertices\": %lld, \"edges\": %lld},\n"
                 "  \"frontier_size\": %zu,\n  \"strategies\": [\n",
                 static_cast<long long>(graph().get_num_vertices()),
                 static_cast<long long>(graph().get_num_edges()), in.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      auto const& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"edges_per_sec\": %.0f, "
                   "\"edges_inspected\": %zu, \"emits_scan\": %zu, "
                   "\"emits_lock\": %zu}%s\n",
                   r.name, r.edges_per_sec, r.edges, r.emits_scan,
                   r.emits_lock, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"representation\": {\"plain_bytes_per_edge\": %zu, "
                 "\"compressed_bytes_per_edge\": %.3f, \"bytes_ratio\": %.3f, "
                 "\"resident_set_bytes\": %zu}\n}\n",
                 sizeof(e::vertex_t), bytes_per_edge, bytes_ratio, rss);
    std::fclose(f);
    std::printf("bench: wrote %s\n", fpath);
    for (auto const& r : results)
      std::printf("  %-9s %12.0f edges/sec\n", r.name, r.edges_per_sec);
    std::printf("  footprint: %.3f bytes/edge compressed (ratio %.3f), rss %.1f MiB\n",
                bytes_per_edge, bytes_ratio,
                static_cast<double>(rss) / (1024.0 * 1024.0));
  } else {
    std::fprintf(stderr, "failed to write %s\n", fpath);
    return 1;
  }
  return 0;
}
