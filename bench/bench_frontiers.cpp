// bench_frontiers — experiment A2 (paper §III-B): the same frontier
// interface over different underlying representations, swept over active
// set sizes.
//
// Measured: (a) build + iterate cost of sparse (vector) vs dense (bitmap)
// vs async-queue frontiers at |F| from 2^6 to 2^20 over a 2^20 universe;
// (b) one shared-memory advance step vs one message-passing exchange of
// the same active set.
//
// Expected shape: sparse wins while |F| << universe (cost ∝ |F|); the
// bitmap's O(universe/64) scan makes it competitive only once the frontier
// is a sizable fraction of the universe — and its O(1) membership is what
// pull traversal buys with it.  The queue pays per-element synchronization,
// and message passing pays per-superstep message assembly on top.
#include <benchmark/benchmark.h>

#include "core/frontier/frontier.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace fr = e::frontier;

namespace {

constexpr std::size_t kUniverse = 1u << 20;

std::vector<e::vertex_t> make_active(std::size_t count) {
  // Spread evenly over the universe so bitmap word occupancy is realistic.
  std::vector<e::vertex_t> v;
  v.reserve(count);
  std::size_t const stride = kUniverse / count;
  for (std::size_t i = 0; i < count; ++i)
    v.push_back(static_cast<e::vertex_t>(i * stride));
  return v;
}

void BM_SparseFrontierBuildIterate(benchmark::State& state) {
  auto const active = make_active(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    fr::sparse_frontier<e::vertex_t> f;
    f.reserve(active.size());
    for (auto const v : active)
      f.add_vertex(v);
    long long sum = 0;
    f.for_each_active([&sum](e::vertex_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(active.size()));
}

void BM_DenseFrontierBuildIterate(benchmark::State& state) {
  auto const active = make_active(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    fr::dense_frontier<e::vertex_t> f(kUniverse);
    for (auto const v : active)
      f.add_vertex(v);
    long long sum = 0;
    f.for_each_active([&sum](e::vertex_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(active.size()));
}

void BM_QueueFrontierProduceConsume(benchmark::State& state) {
  auto const active = make_active(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    fr::async_queue_frontier<e::vertex_t> f;
    for (auto const v : active)
      f.add_vertex(v);
    long long sum = 0;
    e::vertex_t v;
    while (f.pop_vertex(v)) {
      sum += v;
      f.finish_vertex();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(active.size()));
}

void BM_DenseMembershipQueries(benchmark::State& state) {
  // The query pull traversals hammer — dense O(1) vs sparse O(|F|).
  auto const active = make_active(static_cast<std::size_t>(state.range(0)));
  fr::dense_frontier<e::vertex_t> f(kUniverse);
  for (auto const v : active)
    f.add_vertex(v);
  for (auto _ : state) {
    long long hits = 0;
    for (e::vertex_t q = 0; q < 4096; ++q)
      hits += f.contains(q * 128);
    benchmark::DoNotOptimize(hits);
  }
}

void BM_SharedMemoryFrontierHandoff(benchmark::State& state) {
  // Shared memory: the "communication" between supersteps is a pointer
  // swap of the frontier storage.
  auto const active = make_active(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    fr::sparse_frontier<e::vertex_t> current(active), next;
    swap(current, next);
    benchmark::DoNotOptimize(next.size());
  }
}

void BM_MessagePassingFrontierExchange(benchmark::State& state) {
  // Message passing: the same active set crosses a superstep boundary as
  // mailbox messages between 4 ranks (one exchange per iteration).
  auto const active = make_active(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    e::mpsim::communicator::run(4, [&active](e::mpsim::communicator& comm,
                                             int rank) {
      fr::distributed_frontier<e::vertex_t> f(
          comm, rank, [](e::vertex_t v) { return static_cast<int>(v % 4); });
      // Rank r contributes its quarter of the active set.
      for (std::size_t i = static_cast<std::size_t>(rank);
           i < active.size(); i += 4)
        f.add_vertex(active[i]);
      benchmark::DoNotOptimize(f.exchange(0));
    });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(active.size()));
}

BENCHMARK(BM_SparseFrontierBuildIterate)->RangeMultiplier(16)->Range(64, 1 << 20);
BENCHMARK(BM_DenseFrontierBuildIterate)->RangeMultiplier(16)->Range(64, 1 << 20);
BENCHMARK(BM_QueueFrontierProduceConsume)->RangeMultiplier(16)->Range(64, 1 << 16);
BENCHMARK(BM_DenseMembershipQueries)->Arg(1 << 12)->Arg(1 << 18);
BENCHMARK(BM_SharedMemoryFrontierHandoff)->Arg(1 << 12)->Arg(1 << 16);
BENCHMARK(BM_MessagePassingFrontierExchange)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
