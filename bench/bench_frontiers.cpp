// bench_frontiers — experiment A2 (paper §III-B): the same frontier
// interface over different underlying representations, swept over active
// set sizes.
//
// Measured: (a) build + iterate cost of sparse (vector) vs dense (bitmap)
// vs async-queue frontiers at |F| from 2^6 to 2^20 over a 2^20 universe;
// (b) one shared-memory advance step vs one message-passing exchange of
// the same active set.
//
// Expected shape: sparse wins while |F| << universe (cost ∝ |F|); the
// bitmap's O(universe/64) scan makes it competitive only once the frontier
// is a sizable fraction of the universe — and its O(1) membership is what
// pull traversal buys with it.  The queue pays per-element synchronization,
// and message passing pays per-superstep message assembly on top.
//
// The frontier-generation contention sweep (BM_FrontierGeneration/*)
// additionally quantifies the publication-strategy axis: per-element
// locking (Listing 3) vs chunk-bulk locking vs lock-free scan compaction,
// at 1..8 threads.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/frontier/frontier.hpp"
#include "essentials.hpp"

namespace e = essentials;
namespace fr = e::frontier;

namespace {

constexpr std::size_t kUniverse = 1u << 20;

std::vector<e::vertex_t> make_active(std::size_t count) {
  // Spread evenly over the universe so bitmap word occupancy is realistic.
  std::vector<e::vertex_t> v;
  v.reserve(count);
  std::size_t const stride = kUniverse / count;
  for (std::size_t i = 0; i < count; ++i)
    v.push_back(static_cast<e::vertex_t>(i * stride));
  return v;
}

void BM_SparseFrontierBuildIterate(benchmark::State& state) {
  auto const active = make_active(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    fr::sparse_frontier<e::vertex_t> f;
    f.reserve(active.size());
    for (auto const v : active)
      f.add_vertex(v);
    long long sum = 0;
    f.for_each_active([&sum](e::vertex_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(active.size()));
}

void BM_DenseFrontierBuildIterate(benchmark::State& state) {
  auto const active = make_active(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    fr::dense_frontier<e::vertex_t> f(kUniverse);
    for (auto const v : active)
      f.add_vertex(v);
    long long sum = 0;
    f.for_each_active([&sum](e::vertex_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(active.size()));
}

void BM_QueueFrontierProduceConsume(benchmark::State& state) {
  auto const active = make_active(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    fr::async_queue_frontier<e::vertex_t> f;
    for (auto const v : active)
      f.add_vertex(v);
    long long sum = 0;
    e::vertex_t v;
    while (f.pop_vertex(v)) {
      sum += v;
      f.finish_vertex();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(active.size()));
}

void BM_DenseMembershipQueries(benchmark::State& state) {
  // The query pull traversals hammer — dense O(1) vs sparse O(|F|).
  auto const active = make_active(static_cast<std::size_t>(state.range(0)));
  fr::dense_frontier<e::vertex_t> f(kUniverse);
  for (auto const v : active)
    f.add_vertex(v);
  for (auto _ : state) {
    long long hits = 0;
    for (e::vertex_t q = 0; q < 4096; ++q)
      hits += f.contains(q * 128);
    benchmark::DoNotOptimize(hits);
  }
}

void BM_SharedMemoryFrontierHandoff(benchmark::State& state) {
  // Shared memory: the "communication" between supersteps is a pointer
  // swap of the frontier storage.
  auto const active = make_active(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    fr::sparse_frontier<e::vertex_t> current(active), next;
    swap(current, next);
    benchmark::DoNotOptimize(next.size());
  }
}

void BM_MessagePassingFrontierExchange(benchmark::State& state) {
  // Message passing: the same active set crosses a superstep boundary as
  // mailbox messages between 4 ranks (one exchange per iteration).
  auto const active = make_active(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    e::mpsim::communicator::run(4, [&active](e::mpsim::communicator& comm,
                                             int rank) {
      fr::distributed_frontier<e::vertex_t> f(
          comm, rank, [](e::vertex_t v) { return static_cast<int>(v % 4); });
      // Rank r contributes its quarter of the active set.
      for (std::size_t i = static_cast<std::size_t>(rank);
           i < active.size(); i += 4)
        f.add_vertex(active[i]);
      benchmark::DoNotOptimize(f.exchange(0));
    });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(active.size()));
}

// --- frontier-generation contention sweep -----------------------------------
//
// Experiment for the communication pillar's scan-compaction claim: publish
// 2^20 elements into a sparse frontier under the three generation
// strategies, at 1..8 worker threads.  The workload is emission-bound (the
// producer body does no other work), so this isolates publication cost:
//  - listing3 (per-element spinlock) should *degrade* as threads are added
//    (the lock serializes and coherence traffic grows);
//  - bulk (one lock per chunk) should stay roughly flat;
//  - scan (lane buffers + prefix-sum compaction) should scale with threads,
//    since the output path takes no locks or atomics at all.
// Throughput is items/sec — read the cross-strategy ratio at each thread
// count.

e::parallel::thread_pool& pool_with(std::size_t threads) {
  // Pool of `threads` lanes total: the coordinating thread plus
  // (threads - 1) workers, cached across benchmark iterations.
  static std::vector<std::unique_ptr<e::parallel::thread_pool>> pools(9);
  auto& slot = pools.at(threads);
  if (!slot)
    slot = std::make_unique<e::parallel::thread_pool>(threads - 1);
  return *slot;
}

template <e::execution::frontier_gen Mode>
void BM_FrontierGeneration(benchmark::State& state) {
  std::size_t const n = 1u << 20;
  std::size_t const threads = static_cast<std::size_t>(state.range(0));
  auto& pool = pool_with(threads);
  fr::sparse_frontier<e::vertex_t> out;
  for (auto _ : state) {
    fr::generate(
        Mode, pool, n, e::execution::default_grain, out,
        [](std::size_t lo, std::size_t hi, auto&& emit) {
          for (std::size_t i = lo; i < hi; ++i)
            emit(static_cast<e::vertex_t>(i));
        });
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(n));
}

void BM_FrontierGenerationScanDedup(benchmark::State& state) {
  // Scan with the claim-bitmap filter on a 50%-duplicate stream: measures
  // what dedup costs on top of lock-free publication.
  std::size_t const n = 1u << 20;
  std::size_t const threads = static_cast<std::size_t>(state.range(0));
  auto& pool = pool_with(threads);
  fr::sparse_frontier<e::vertex_t> out;
  for (auto _ : state) {
    fr::generate_scan(
        pool, n, e::execution::default_grain, out,
        [n](std::size_t lo, std::size_t hi, auto&& emit) {
          for (std::size_t i = lo; i < hi; ++i)
            emit(static_cast<e::vertex_t>(i % (n / 2)));
        },
        &fr::dedup_scratch(n));
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(n));
}

BENCHMARK(BM_FrontierGeneration<e::execution::frontier_gen::listing3>)
    ->Name("BM_FrontierGeneration/listing3")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_FrontierGeneration<e::execution::frontier_gen::bulk>)
    ->Name("BM_FrontierGeneration/bulk")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_FrontierGeneration<e::execution::frontier_gen::scan>)
    ->Name("BM_FrontierGeneration/scan")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_FrontierGenerationScanDedup)->Arg(1)->Arg(4)->Arg(8);

BENCHMARK(BM_SparseFrontierBuildIterate)->RangeMultiplier(16)->Range(64, 1 << 20);
BENCHMARK(BM_DenseFrontierBuildIterate)->RangeMultiplier(16)->Range(64, 1 << 20);
BENCHMARK(BM_QueueFrontierProduceConsume)->RangeMultiplier(16)->Range(64, 1 << 16);
BENCHMARK(BM_DenseMembershipQueries)->Arg(1 << 12)->Arg(1 << 18);
BENCHMARK(BM_SharedMemoryFrontierHandoff)->Arg(1 << 12)->Arg(1 << 16);
BENCHMARK(BM_MessagePassingFrontierExchange)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
