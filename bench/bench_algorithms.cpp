// bench_algorithms — experiment A6: the end-to-end algorithm suite (SSSP,
// BFS, PageRank, connected components, triangle counting) across the four
// generator families, parallel framework vs serial textbook baseline.
//
// Expected shape: the framework's parallel variants track their baselines'
// asymptotics per family (traversals scale with diameter on meshes, with
// edges on skewed graphs); speedups over the serial baseline require real
// cores (flat on this 1-core container — see DESIGN.md caveat).
#include <benchmark/benchmark.h>

#include "algorithms/bfs.hpp"
#include "algorithms/connected_components.hpp"
#include "algorithms/msbfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/triangle_counting.hpp"
#include "essentials.hpp"

namespace e = essentials;

namespace {

struct workload_t {
  std::string name;
  e::graph::graph_full directed;    // as generated
  e::graph::graph_full undirected;  // symmetrized (for CC/TC)
};

workload_t make(std::string name, e::graph::coo_t<> coo) {
  e::graph::remove_self_loops(coo);
  auto undirected_coo = coo;
  e::graph::symmetrize(undirected_coo);
  return {std::move(name),
          e::graph::from_coo<e::graph::graph_full>(
              std::move(coo), e::graph::duplicate_policy::keep_min),
          e::graph::from_coo<e::graph::graph_full>(
              std::move(undirected_coo), e::graph::duplicate_policy::keep_min)};
}

std::vector<workload_t> const& workloads() {
  static auto const w = [] {
    std::vector<workload_t> ws;
    e::generators::rmat_options rm;
    rm.scale = 12;
    rm.edge_factor = 8;
    rm.weights = {1.0f, 4.0f};
    ws.push_back(make("rmat", e::generators::rmat(rm)));
    ws.push_back(make("erdos", e::generators::erdos_renyi(
                                   4096, 4096 * 8, {1.0f, 4.0f}, 2)));
    ws.push_back(make("grid", e::generators::grid_2d(64, 64, {1.0f, 4.0f})));
    ws.push_back(
        make("smallworld", e::generators::watts_strogatz(4096, 4, 0.1,
                                                         {1.0f, 4.0f}, 3)));
    return ws;
  }();
  return w;
}

#define WORKLOAD_BENCH(fn)                                        \
  BENCHMARK(fn)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)

void BM_SsspFramework(benchmark::State& state) {
  auto const& w = workloads()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::sssp(e::execution::par, w.directed, 0).distances.data());
  state.SetLabel(w.name);
}

void BM_SsspDijkstraBaseline(benchmark::State& state) {
  auto const& w = workloads()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::dijkstra(w.directed, 0).distances.data());
  state.SetLabel(w.name);
}

void BM_BfsFramework(benchmark::State& state) {
  auto const& w = workloads()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::bfs(e::execution::par, w.directed, 0).depths.data());
  state.SetLabel(w.name);
}

void BM_BfsSerialBaseline(benchmark::State& state) {
  auto const& w = workloads()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::bfs_serial(w.directed, 0).depths.data());
  state.SetLabel(w.name);
}

void BM_PagerankFramework(benchmark::State& state) {
  auto const& w = workloads()[static_cast<std::size_t>(state.range(0))];
  e::algorithms::pagerank_options opt;
  opt.max_iterations = 20;
  opt.tolerance = 0.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::pagerank(e::execution::par, w.directed, opt)
            .ranks.data());
  state.SetLabel(w.name);
}

void BM_ConnectedComponentsFramework(benchmark::State& state) {
  auto const& w = workloads()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::connected_components(e::execution::par, w.undirected)
            .labels.data());
  state.SetLabel(w.name);
}

void BM_ConnectedComponentsUnionFindBaseline(benchmark::State& state) {
  auto const& w = workloads()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::connected_components_serial(w.undirected)
            .labels.data());
  state.SetLabel(w.name);
}

void BM_TriangleCountFramework(benchmark::State& state) {
  auto const& w = workloads()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::triangle_count(e::execution::par, w.undirected));
  state.SetLabel(w.name);
}

WORKLOAD_BENCH(BM_SsspFramework);
WORKLOAD_BENCH(BM_SsspDijkstraBaseline);
WORKLOAD_BENCH(BM_BfsFramework);
WORKLOAD_BENCH(BM_BfsSerialBaseline);
WORKLOAD_BENCH(BM_PagerankFramework);
WORKLOAD_BENCH(BM_ConnectedComponentsFramework);
WORKLOAD_BENCH(BM_ConnectedComponentsUnionFindBaseline);
WORKLOAD_BENCH(BM_TriangleCountFramework);

void BM_MultiSourceBfs64(benchmark::State& state) {
  // Bit-parallel 64-source BFS vs 64 sequential single-source runs — the
  // amortization ablation.
  auto const& w = workloads()[static_cast<std::size_t>(state.range(0))];
  std::vector<e::vertex_t> sources;
  for (e::vertex_t s = 0; s < 64; ++s)
    sources.push_back(s);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::multi_source_bfs(e::execution::par, w.directed,
                                        sources)
            .depth.data());
  state.SetLabel(w.name + " 64 lanes, one sweep");
}

void BM_SixtyFourSeparateBfs(benchmark::State& state) {
  auto const& w = workloads()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    for (e::vertex_t s = 0; s < 64; ++s)
      benchmark::DoNotOptimize(
          e::algorithms::bfs(e::execution::par, w.directed, s).depths.data());
  }
  state.SetLabel(w.name + " 64 separate runs");
}

WORKLOAD_BENCH(BM_MultiSourceBfs64);
WORKLOAD_BENCH(BM_SixtyFourSeparateBfs);

}  // namespace

BENCHMARK_MAIN();
