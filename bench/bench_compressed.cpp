// bench_compressed — the compressed + out-of-core tier experiment (PR 9),
// written to BENCH_compressed.json for CI.  Four questions:
//
//   decode      — how fast does the group-varint block codec turn adjacency
//                 bytes back into vertex ids, versus the scalar LEB128
//                 baseline it replaced?  Floor: >= 4x on rmat-12 (override
//                 with ESSENTIALS_DECODE_FLOOR, 0 disables).
//   parity      — what does running `advance` straight on compressed CSR
//                 cost versus plain CSR at 8 threads?  Floor: >= 0.7x of
//                 plain (ESSENTIALS_PARITY_FLOOR override; the gate only
//                 arms on hosts with >= 8 hardware threads — below that the
//                 ratio is reported, not enforced).
//   footprint   — bytes per edge and compression ratio on the sorted rmat,
//                 plus process resident set.  Floor: adjacency <= 0.5x of
//                 raw 4-byte ids (always enforced; scale-free sorted
//                 adjacency compresses far better than that in practice).
//   reordering  — ratio sensitivity to vertex ordering (original vs
//                 degree-sorted vs BFS relabeling): the bench hook
//                 graph/reorder.hpp's docs point at.
//
// A fifth boolean records the out-of-core path end to end: BFS on an
// mmap-backed mapped_graph written to a temp file must equal BFS on the
// plain CSR after the resident pages are dropped (advise_dontneed), i.e. a
// traversal served through the paging tier.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "essentials.hpp"

namespace e = essentials;
namespace alg = e::algorithms;
namespace ex = e::execution;
namespace fr = e::frontier;
namespace g = e::graph;
namespace op = e::operators;
using e::edge_t;
using e::vertex_t;
using e::weight_t;

namespace {

constexpr int kScale = 12;
constexpr int kEdgeFactor = 8;
constexpr int kReps = 9;

g::csr_t<> build_rmat() {
  auto coo = e::generators::rmat({/*scale=*/kScale, /*edge_factor=*/kEdgeFactor,
                                  0.57, 0.19, 0.19, {1.0f, 4.0f}, /*seed=*/7});
  g::remove_self_loops(coo);
  g::sort_and_deduplicate(coo, g::duplicate_policy::keep_min);
  return g::build_csr(coo);
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double env_floor(char const* name, double fallback) {
  if (char const* const s = std::getenv(name))
    return std::strtod(s, nullptr);
  return fallback;
}

/// Decode throughput of a full adjacency sweep, in decoded GB/s (output
/// bytes: 4 per edge).  `run` must consume every edge once.
template <typename F>
double sweep_gbps(std::size_t edges, F&& run) {
  std::vector<double> secs;
  for (int rep = 0; rep < kReps; ++rep) {
    auto const t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(run());
    secs.push_back(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  }
  double const s = median(std::move(secs));
  return s > 0 ? static_cast<double>(edges) * sizeof(vertex_t) / s / 1e9 : 0.0;
}

double compression_ratio_of(g::coo_t<> coo) {
  g::sort_and_deduplicate(coo, g::duplicate_policy::keep_min);
  return g::compressed_graph<>(g::build_csr(coo)).compression_ratio();
}

}  // namespace

// Micro-benchmark riding along (the CI smoke filter): single-block decode
// latency through the thread-local scratch.
void BM_CompressedBlockDecode(benchmark::State& state) {
  static auto const csr = build_rmat();
  static g::compressed_graph<> const cg(csr);
  std::uint64_t b = 0;
  alignas(64) vertex_t out[g::blockcodec::block_edges];
  for (auto _ : state) {
    benchmark::DoNotOptimize(cg.decode_block_into(b, out));
    b = (b + 1) % cg.num_blocks();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          g::blockcodec::block_edges * sizeof(vertex_t));
}
BENCHMARK(BM_CompressedBlockDecode)->Unit(benchmark::kNanosecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  auto const csr = build_rmat();
  std::size_t const m = csr.column_indices.size();
  g::graph_csr flat;
  flat.set_csr(csr);
  g::compressed_graph<> const cg(csr);
  g::varint_graph<> const vg(csr);

  // --- decode throughput: block codec vs scalar LEB128 baseline ------------
  double const scalar_gbps = sweep_gbps(m, [&vg, &csr] {
    std::uint64_t sink = 0;
    for (vertex_t v = 0; v < csr.num_rows; ++v)
      vg.for_each_neighbor(v, [&sink](vertex_t nb, weight_t) {
        sink += static_cast<std::uint64_t>(nb);
      });
    return sink;
  });
  double const block_gbps = sweep_gbps(m, [&cg] {
    alignas(64) vertex_t out[g::blockcodec::block_edges];
    std::uint64_t sink = 0;
    for (std::uint64_t b = 0; b < cg.num_blocks(); ++b) {
      sink += cg.decode_block_into(b, out);
      benchmark::DoNotOptimize(out);  // the stores are the product
    }
    return sink;
  });
  double const decode_speedup = scalar_gbps > 0 ? block_gbps / scalar_gbps : 0;

  // --- operator parity: advance on compressed vs plain CSR -----------------
  unsigned const hw = std::thread::hardware_concurrency();
  std::size_t const parity_threads = std::min<std::size_t>(hw ? hw : 1, 8);
  e::parallel::thread_pool pool(parity_threads);
  ex::parallel_policy const par{pool};
  std::vector<vertex_t> seeds;
  for (vertex_t v = 0; v < csr.num_rows; v += 3)
    seeds.push_back(v);
  fr::sparse_frontier<vertex_t> const in(std::move(seeds));
  auto const always = [](vertex_t, vertex_t, edge_t, weight_t) { return true; };
  auto const time_advance = [&](auto const& graph) {
    std::vector<double> secs;
    for (int rep = 0; rep < kReps; ++rep) {
      auto const t0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(op::advance_push(par, graph, in, always).size());
      secs.push_back(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
    }
    return median(std::move(secs));
  };
  double const plain_s = time_advance(flat);
  double const comp_s = time_advance(cg);
  double const parity = comp_s > 0 ? plain_s / comp_s : 0.0;

  // --- footprint ------------------------------------------------------------
  double const bytes_per_edge = cg.bytes_per_edge();
  double const bytes_ratio =
      static_cast<double>(cg.adjacency_bytes()) /
      static_cast<double>(cg.uncompressed_adjacency_bytes());
  std::size_t const rss = e::io::detail::process_resident_bytes();

  // --- reorder sensitivity (graph/reorder.hpp's bench hook) -----------------
  auto coo = e::generators::rmat({kScale, kEdgeFactor, 0.57, 0.19, 0.19,
                                  {1.0f, 4.0f}, 7});
  g::remove_self_loops(coo);
  g::sort_and_deduplicate(coo, g::duplicate_policy::keep_min);
  double const ratio_original = cg.compression_ratio();
  double const ratio_degree =
      compression_ratio_of(g::apply_permutation(coo, g::order_by_degree(csr)));
  double const ratio_bfs =
      compression_ratio_of(g::apply_permutation(coo, g::order_by_bfs(csr)));

  // --- out-of-core BFS parity through the mmap tier -------------------------
  bool mapped_bfs_ok = false;
  {
    auto const dir =
        std::filesystem::temp_directory_path() / "essentials-bench-ooc";
    std::filesystem::create_directories(dir);
    auto const path = (dir / "rmat12.blk").string();
    e::io::write_mapped_graph(path, csr);
    e::io::mapped_graph<> mg(path);
    mg.advise_dontneed();  // start cold: every window pages in on demand
    mg.advise_sequential();
    mapped_bfs_ok = alg::bfs(par, mg, vertex_t{0}).depths ==
                    alg::bfs(par, flat, vertex_t{0}).depths;
    std::filesystem::remove_all(dir);
  }

  char const* const path = "BENCH_compressed.json";
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"compressed_tier\",\n"
      "  \"graph\": {\"kind\": \"rmat\", \"scale\": %d, \"edge_factor\": %d, "
      "\"vertices\": %lld, \"edges\": %zu},\n"
      "  \"block_edges\": %zu, \"reps\": %d, \"statistic\": \"median\",\n"
      "  \"decode\": {\"scalar_varint_gbps\": %.3f, \"block_gbps\": %.3f, "
      "\"speedup\": %.2f},\n"
      "  \"parity\": {\"threads\": %zu, \"plain_advance_ms\": %.4f, "
      "\"compressed_advance_ms\": %.4f, \"ratio\": %.3f, "
      "\"gate_armed\": %s},\n"
      "  \"footprint\": {\"bytes_per_edge\": %.3f, \"bytes_ratio\": %.3f, "
      "\"adjacency_bytes\": %zu, \"resident_set_bytes\": %zu},\n"
      "  \"reorder_sensitivity\": {\"original\": %.3f, \"degree\": %.3f, "
      "\"bfs\": %.3f},\n"
      "  \"mapped_bfs_matches_plain\": %s\n}\n",
      kScale, kEdgeFactor, static_cast<long long>(csr.num_rows), m,
      g::blockcodec::block_edges, kReps, scalar_gbps, block_gbps,
      decode_speedup, parity_threads, plain_s * 1e3, comp_s * 1e3, parity,
      hw >= 8 ? "true" : "false", bytes_per_edge, bytes_ratio,
      static_cast<std::size_t>(cg.adjacency_bytes()), rss, ratio_original,
      ratio_degree, ratio_bfs, mapped_bfs_ok ? "true" : "false");
  std::fclose(f);

  std::printf("bench: wrote %s\n", path);
  std::printf("  decode: scalar %.3f GB/s  block %.3f GB/s  (%.2fx)\n",
              scalar_gbps, block_gbps, decode_speedup);
  std::printf("  advance parity @ %zu threads: %.3f  (plain %.3f ms, "
              "compressed %.3f ms)\n",
              parity_threads, parity, plain_s * 1e3, comp_s * 1e3);
  std::printf("  footprint: %.3f bytes/edge (ratio %.3f), rss %.1f MiB\n",
              bytes_per_edge, bytes_ratio,
              static_cast<double>(rss) / (1024.0 * 1024.0));
  std::printf("  reorder ratios: original %.3f  degree %.3f  bfs %.3f\n",
              ratio_original, ratio_degree, ratio_bfs);
  std::printf("  mapped BFS parity: %s\n", mapped_bfs_ok ? "ok" : "MISMATCH");

  // --- floors ---------------------------------------------------------------
  if (!mapped_bfs_ok) {
    std::fprintf(stderr, "FAIL: BFS through the mmap tier diverged\n");
    return 1;
  }
  if (bytes_ratio > 0.5) {
    std::fprintf(stderr,
                 "FAIL: compressed adjacency is %.3fx of raw (bar: <= 0.5x "
                 "on sorted rmat)\n",
                 bytes_ratio);
    return 1;
  }
  double const decode_floor = env_floor("ESSENTIALS_DECODE_FLOOR", 4.0);
  if (decode_floor > 0 && decode_speedup < decode_floor) {
    std::fprintf(stderr,
                 "FAIL: block decode only %.2fx the scalar baseline "
                 "(bar: %.1fx; override ESSENTIALS_DECODE_FLOOR)\n",
                 decode_speedup, decode_floor);
    return 1;
  }
  double const parity_floor = env_floor("ESSENTIALS_PARITY_FLOOR", 0.7);
  if (hw >= 8 && parity_floor > 0 && parity < parity_floor) {
    std::fprintf(stderr,
                 "FAIL: compressed advance at %.3fx of plain "
                 "(bar: %.2fx at >= 8 hardware threads; override "
                 "ESSENTIALS_PARITY_FLOOR)\n",
                 parity, parity_floor);
    return 1;
  }
  return 0;
}
