// bench_table1 — regenerates the paper's Table I as an *executable*
// coverage matrix: for every (TLAV pillar, captured model) cell, run the
// abstraction mechanism that captures it on a live workload, verify the
// result against an oracle, and report PASS with the measured time.
//
// Paper artifact: Table I, "Summary of what models are captured within the
// four pillars of TLAV by our abstraction."
#include <chrono>
#include <cstdio>
#include <string>

#include "algorithms/bfs.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/sssp_async_mp.hpp"
#include "essentials.hpp"

namespace e = essentials;

namespace {

struct cell_t {
  char const* pillar;
  char const* model;
  char const* mechanism;
  bool pass;
  double ms;
};

template <typename F>
std::pair<bool, double> timed(F&& fn) {
  auto const t0 = std::chrono::steady_clock::now();
  bool const ok = fn();
  auto const t1 = std::chrono::steady_clock::now();
  return {ok, std::chrono::duration<double, std::milli>(t1 - t0).count()};
}

bool near(std::vector<float> const& a, std::vector<float> const& b) {
  if (a.size() != b.size())
    return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == e::infinity_v<float> || b[i] == e::infinity_v<float>) {
      if (a[i] != b[i])
        return false;
    } else if (std::abs(a[i] - b[i]) > 1e-3f) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  // The shared workload: an R-MAT graph (the regime graph frameworks
  // target), weights in [1, 4).
  e::generators::rmat_options opt;
  opt.scale = 11;
  opt.edge_factor = 8;
  opt.weights = {1.0f, 4.0f};
  opt.seed = 3;
  auto coo = e::generators::rmat(opt);
  e::graph::remove_self_loops(coo);
  auto const g = e::graph::from_coo<e::graph::graph_push_pull>(
      std::move(coo), e::graph::duplicate_policy::keep_min);
  auto const oracle = e::algorithms::dijkstra(g, 0).distances;
  auto const bfs_oracle = e::algorithms::bfs_serial(g, 0).depths;

  std::vector<cell_t> cells;

  // --- Timing pillar ---------------------------------------------------------
  {
    auto [ok, ms] = timed([&] {
      return near(e::algorithms::sssp(e::execution::par, g, 0).distances,
                  oracle);
    });
    cells.push_back({"Timing", "Bulk-Synchronous",
                     "operators w/ execution::par + bsp_loop", ok, ms});
  }
  {
    auto [ok, ms] = timed([&] {
      return near(e::algorithms::sssp_async(g, 0, 4).distances, oracle);
    });
    cells.push_back({"Timing", "Asynchronous",
                     "async queue frontier + quiescence loop", ok, ms});
  }

  // --- Communication pillar ----------------------------------------------------
  {
    auto [ok, ms] = timed([&] {
      // Shared memory: frontier as bitmap/sparse vector in one address
      // space (the par SSSP above already used it; verify the dense/bitmap
      // path via pull SSSP).
      return near(e::algorithms::sssp_pull(e::execution::par, g, 0).distances,
                  oracle);
    });
    cells.push_back({"Communication", "Shared-Memory",
                     "sparse/bitmap frontier in shared memory", ok, ms});
  }
  {
    auto [ok, ms] = timed([&] {
      return near(e::algorithms::sssp_message_passing(g, 0, 4).distances,
                  oracle);
    });
    cells.push_back({"Communication", "Message Passing",
                     "queue/mailbox frontier over mpsim ranks", ok, ms});
  }
  {
    auto [ok, ms] = timed([&] {
      return near(
          e::algorithms::sssp_async_message_passing(g, 0, 4).distances,
          oracle);
    });
    cells.push_back({"Timing x Comm.", "Async + Message Passing",
                     "continuous relax/forward + Safra termination", ok, ms});
  }

  // --- Execution-model pillar ----------------------------------------------------
  {
    auto [ok, ms] = timed([&] {
      // Vertex program: the Listing 4 lambda over {src, dst, edge, weight}.
      return near(e::algorithms::sssp(e::execution::par, g, 0).distances,
                  oracle);
    });
    cells.push_back({"Execution Model", "Vertex Programs",
                     "lambda on {src, dst, edge, weight}", ok, ms});
  }
  {
    auto [ok, ms] = timed([&] {
      auto const push = e::algorithms::bfs(e::execution::par, g, 0).depths;
      auto const pull = e::algorithms::bfs_pull(e::execution::par, g, 0).depths;
      return push == bfs_oracle && pull == bfs_oracle;
    });
    cells.push_back({"Execution Model", "Push vs. Pull",
                     "CSR advance vs. CSC advance (same result)", ok, ms});
  }

  // --- Partitioning pillar ---------------------------------------------------------
  {
    auto [ok, ms] = timed([&] {
      auto const p = e::partition::partition_random<e::vertex_t>(
          g.get_num_vertices(), 4, 1);
      e::partition::partitioned_graph_t<> pg(g.csr(), p);
      return near(e::algorithms::sssp(e::execution::par, pg, 0).distances,
                  oracle);
    });
    cells.push_back({"Partitioning", "Random Partitioning",
                     "partitioned graph behind the same API", ok, ms});
  }
  {
    auto [ok, ms] = timed([&] {
      auto const p = e::partition::partition_bfs_grow(g.csr(), 4, 1);
      e::partition::partitioned_graph_t<> pg(g.csr(), p);
      return near(e::algorithms::sssp(e::execution::par, pg, 0).distances,
                  oracle);
    });
    cells.push_back({"Partitioning", "METIS-like (BFS-grown)",
                     "locality-aware partition, same API", ok, ms});
  }

  // --- Representation pillar --------------------------------------------------
  // Not a Table I row in the paper, but the same claim shape: a storage
  // representation (block-coded CSR, the out-of-core tier's format) slots
  // in behind the unchanged operator API.  The mechanism label carries the
  // measured footprint so the matrix doubles as the bytes-per-edge report.
  {
    static char mech[64];
    auto [ok, ms] = timed([&] {
      e::graph::compressed_graph<> const cg(g.csr());
      std::snprintf(mech, sizeof(mech),
                    "compressed CSR, same API (%.2f B/edge, rss %zu MiB)",
                    cg.bytes_per_edge(),
                    e::io::detail::process_resident_bytes() / (1024u * 1024u));
      return near(e::algorithms::sssp(e::execution::par, cg, 0).distances,
                  oracle);
    });
    cells.push_back(
        {"Representation", "Compressed / Out-of-Core", mech, ok, ms});
  }

  // --- print the matrix ---------------------------------------------------------
  std::printf("Table I coverage matrix (R-MAT scale=%d, %d vertices, %d "
              "edges; every cell verified against a serial oracle)\n\n",
              opt.scale, g.get_num_vertices(), g.get_num_edges());
  std::printf("%-17s %-26s %-44s %-6s %10s\n", "TLAV Pillar",
              "Model Captured", "Mechanism", "Check", "Time");
  std::printf("%s\n", std::string(107, '-').c_str());
  bool all_pass = true;
  for (auto const& c : cells) {
    std::printf("%-17s %-26s %-44s %-6s %8.1fms\n", c.pillar, c.model,
                c.mechanism, c.pass ? "PASS" : "FAIL", c.ms);
    all_pass &= c.pass;
  }
  std::printf("\nModels ignored (as in the paper): active messages, "
              "streaming/vertex-cut/dynamic repartitioning.\n");
  std::printf("Overall: %s\n", all_pass ? "ALL CELLS PASS" : "FAILURES");
  return all_pass ? 0 : 1;
}
