// bench_queries — experiment A9: point-to-point and local queries, the
// production counterpart of the whole-graph sweeps.  Measures (a) A* vs
// early-exit Dijkstra vs full SSSP for one route on road-like grids —
// settled-vertex counts are the hardware-independent shape; (b) forward-
// push personalized PageRank cost vs tolerance.
#include <benchmark/benchmark.h>

#include "algorithms/astar.hpp"
#include "algorithms/personalized_pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "essentials.hpp"

namespace e = essentials;

namespace {

struct road_t {
  e::vertex_t side;
  e::graph::graph_csr graph;
};

road_t const& road(int side) {
  static road_t const small{128, e::graph::from_coo<e::graph::graph_csr>(
                                     e::generators::grid_2d(128, 128,
                                                            {1.0f, 4.0f}, 7))};
  static road_t const large{256, e::graph::from_coo<e::graph::graph_csr>(
                                     e::generators::grid_2d(256, 256,
                                                            {1.0f, 4.0f}, 7))};
  return side == 128 ? small : large;
}

void BM_RouteFullSssp(benchmark::State& state) {
  auto const& r = road(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::sssp(e::execution::par, r.graph, 0).distances.data());
  state.SetLabel("computes all " + std::to_string(r.side * r.side) +
                 " distances");
}

// Route target: the grid center — the representative query (corner-to-
// corner would force every vertex to settle, hiding the pruning).
e::vertex_t center_target(road_t const& r) {
  return (r.side / 2) * r.side + r.side / 2;
}

void BM_RouteDijkstraEarlyExit(benchmark::State& state) {
  auto const& r = road(static_cast<int>(state.range(0)));
  e::vertex_t const target = center_target(r);
  std::size_t settled = 0;
  for (auto _ : state) {
    auto const res =
        e::algorithms::dijkstra_point_to_point(r.graph, 0, target);
    settled = res.settled;
    benchmark::DoNotOptimize(res.distance);
  }
  state.SetLabel("settled=" + std::to_string(settled));
}

void BM_RouteAStarManhattan(benchmark::State& state) {
  auto const& r = road(static_cast<int>(state.range(0)));
  e::vertex_t const target = center_target(r);
  auto const h = e::algorithms::manhattan_heuristic<e::vertex_t, float>(
      r.side, target, 1.0f);
  std::size_t settled = 0;
  for (auto _ : state) {
    auto const res = e::algorithms::astar(r.graph, 0, target, h);
    settled = res.settled;
    benchmark::DoNotOptimize(res.distance);
  }
  state.SetLabel("settled=" + std::to_string(settled));
}

void BM_PersonalizedPagerank(benchmark::State& state) {
  static auto const g = [] {
    e::generators::rmat_options opt;
    opt.scale = 13;
    opt.edge_factor = 16;
    auto coo = e::generators::rmat(opt);
    e::graph::remove_self_loops(coo);
    return e::graph::from_coo<e::graph::graph_csr>(std::move(coo));
  }();
  e::algorithms::ppr_options opt;
  opt.epsilon = 1.0 / static_cast<double>(state.range(0));
  std::size_t pushes = 0;
  for (auto _ : state) {
    auto const r = e::algorithms::personalized_pagerank(g, 0, opt);
    pushes = r.pushes;
    benchmark::DoNotOptimize(r.estimate.data());
  }
  state.SetLabel("eps=1/" + std::to_string(state.range(0)) +
                 " pushes=" + std::to_string(pushes));
}

BENCHMARK(BM_RouteFullSssp)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RouteDijkstraEarlyExit)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RouteAStarManhattan)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PersonalizedPagerank)->Arg(1000)->Arg(100000)->Arg(10000000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
