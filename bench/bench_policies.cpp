// bench_policies — experiment A5 (paper §III-A): the cost of each
// execution policy on identical operator invocations.  The paper's claim
// is that policies let "the operator's functionality [be] identical, even
// as its underlying execution changes" — this bench quantifies what each
// execution choice costs.
//
//  - seq vs par: parallelization overhead vs speedup per operator.
//  - par vs par_nosync: what the superstep barrier itself costs when the
//    caller can overlap, measured by launching K advances back-to-back and
//    synchronizing once vs K times.
//
// NOTE: on a 1-core container (see DESIGN.md caveat), par ~= seq plus
// scheduling overhead; the *relative* barrier cost remains visible.
#include <benchmark/benchmark.h>

#include "essentials.hpp"

namespace e = essentials;
namespace fr = e::frontier;
namespace op = e::operators;

namespace {

e::graph::graph_csr const& graph() {
  static auto const g = [] {
    e::generators::rmat_options opt;
    opt.scale = 12;
    opt.edge_factor = 16;
    auto coo = e::generators::rmat(opt);
    e::graph::remove_self_loops(coo);
    return e::graph::from_coo<e::graph::graph_csr>(std::move(coo));
  }();
  return g;
}

fr::sparse_frontier<e::vertex_t> half_frontier() {
  fr::sparse_frontier<e::vertex_t> f;
  for (e::vertex_t v = 0; v < graph().get_num_vertices(); v += 2)
    f.add_vertex(v);
  return f;
}

auto const always = [](e::vertex_t, e::vertex_t, e::edge_t, e::weight_t) {
  return true;
};

void BM_AdvanceSeq(benchmark::State& state) {
  auto const in = half_frontier();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::advance_push(e::execution::seq, graph(), in, always).size());
}

void BM_AdvancePar(benchmark::State& state) {
  auto const in = half_frontier();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        op::advance_push(e::execution::par, graph(), in, always).size());
}

void BM_ComputeSeqVsParVsNosync(benchmark::State& state) {
  // One vertex-program sweep (x[v] = f(v)) under the policy chosen by
  // range(0): 0 = seq, 1 = par, 2 = par_nosync (+ explicit wait).
  std::vector<double> x(static_cast<std::size_t>(graph().get_num_vertices()));
  for (auto _ : state) {
    auto const body = [&x](e::vertex_t v) {
      x[static_cast<std::size_t>(v)] = static_cast<double>(v) * 1.000001;
    };
    switch (state.range(0)) {
      case 0:
        op::compute_vertices(e::execution::seq, graph(), body);
        break;
      case 1:
        op::compute_vertices(e::execution::par, graph(), body);
        break;
      default: {
        e::execution::parallel_nosync_policy nosync;
        op::compute_vertices(nosync, graph(), body);
        nosync.pool().wait_idle();
        break;
      }
    }
    benchmark::DoNotOptimize(x.data());
  }
  state.SetLabel(state.range(0) == 0   ? "seq"
                 : state.range(0) == 1 ? "par (barrier per call)"
                                       : "par_nosync (+wait_idle)");
}

void BM_BatchedAdvances_BarrierPerStep(benchmark::State& state) {
  // K independent advances, synchronizing after each (BSP style).
  auto const in = half_frontier();
  int const k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < k; ++i)
      benchmark::DoNotOptimize(
          op::advance_push(e::execution::par, graph(), in, always).size());
  }
  state.SetLabel("K=" + std::to_string(k) + " barriers");
}

void BM_BatchedAdvances_SingleBarrier(benchmark::State& state) {
  // The same K independent advances launched with par_nosync and one final
  // wait — the asynchronous overlap the paper's timing pillar promises.
  auto const in = half_frontier();
  int const k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    e::execution::parallel_nosync_policy nosync;
    std::vector<fr::sparse_frontier<e::vertex_t>> outs(
        static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
      op::advance_push(nosync, graph(), in, always,
                       outs[static_cast<std::size_t>(i)]);
    nosync.pool().wait_idle();
    benchmark::DoNotOptimize(outs.data());
  }
  state.SetLabel("K=" + std::to_string(k) + " one barrier");
}

BENCHMARK(BM_AdvanceSeq)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdvancePar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ComputeSeqVsParVsNosync)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BatchedAdvances_BarrierPerStep)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BatchedAdvances_SingleBarrier)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
