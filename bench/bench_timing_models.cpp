// bench_timing_models — experiment A1 (paper §III-A): bulk-synchronous vs
// asynchronous timing on workloads with opposite superstep structure.
//
// Expected shape: the asynchronous queue wins on high-diameter graphs
// (chain, grid) whose BSP runs consist of thousands of tiny barriered
// supersteps, and loses its edge on low-diameter skewed graphs (R-MAT,
// star) where BSP amortizes one barrier over a huge frontier.
#include <benchmark/benchmark.h>

#include "algorithms/sssp.hpp"
#include "algorithms/sssp_async_mp.hpp"
#include "algorithms/sssp_hybrid.hpp"
#include "essentials.hpp"

namespace e = essentials;

namespace {

e::graph::graph_csr make_graph(std::string const& family) {
  e::generators::weight_options w{1.0f, 2.0f};
  e::graph::coo_t<> coo;
  if (family == "chain") {
    coo = e::generators::chain(50'000, w);
  } else if (family == "grid") {
    coo = e::generators::grid_2d(160, 160, w);
  } else if (family == "rmat") {
    e::generators::rmat_options opt;
    opt.scale = 13;
    opt.edge_factor = 16;
    opt.weights = w;
    coo = e::generators::rmat(opt);
    e::graph::remove_self_loops(coo);
  } else {  // star
    coo = e::generators::star(50'000, w);
  }
  return e::graph::from_coo<e::graph::graph_csr>(
      std::move(coo), e::graph::duplicate_policy::keep_min);
}

struct graphs_t {
  e::graph::graph_csr chain = make_graph("chain");
  e::graph::graph_csr grid = make_graph("grid");
  e::graph::graph_csr rmat = make_graph("rmat");
  e::graph::graph_csr star = make_graph("star");
  e::graph::graph_csr const& get(int id) const {
    switch (id) {
      case 0: return chain;
      case 1: return grid;
      case 2: return rmat;
      default: return star;
    }
  }
};

graphs_t const& graphs() {
  static graphs_t g;
  return g;
}

char const* family_name(int id) {
  switch (id) {
    case 0: return "chain";
    case 1: return "grid";
    case 2: return "rmat";
    default: return "star";
  }
}

void BM_SsspBulkSynchronous(benchmark::State& state) {
  auto const& g = graphs().get(static_cast<int>(state.range(0)));
  std::size_t supersteps = 0;
  for (auto _ : state) {
    auto const r = e::algorithms::sssp(e::execution::par, g, 0);
    supersteps = r.iterations;
    benchmark::DoNotOptimize(r.distances.data());
  }
  state.SetLabel(std::string(family_name(static_cast<int>(state.range(0)))) +
                 " supersteps=" + std::to_string(supersteps));
}

void BM_SsspAsynchronous(benchmark::State& state) {
  auto const& g = graphs().get(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto const r = e::algorithms::sssp_async(g, 0, 4);
    benchmark::DoNotOptimize(r.distances.data());
  }
  state.SetLabel(std::string(family_name(static_cast<int>(state.range(0)))) +
                 " no-barriers");
}

void BM_SsspDeltaStepping(benchmark::State& state) {
  // The bucketed middle ground between the two timing models: BSP waves
  // inside priority buckets.  Auto-tuned delta.
  auto const& g = graphs().get(static_cast<int>(state.range(0)));
  std::size_t waves = 0;
  for (auto _ : state) {
    auto const r =
        e::algorithms::sssp_delta_stepping(e::execution::par, g, 0);
    waves = r.iterations;
    benchmark::DoNotOptimize(r.distances.data());
  }
  state.SetLabel(std::string(family_name(static_cast<int>(state.range(0)))) +
                 " bucket-waves=" + std::to_string(waves));
}

void BM_SsspHybridHierarchical(benchmark::State& state) {
  // §III-B's hierarchical deployment: message passing between 2 ranks,
  // 2 shared-memory threads inside each.
  auto const& g = graphs().get(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto const r = e::algorithms::sssp_hybrid(g, 0, 2, 2);
    benchmark::DoNotOptimize(r.distances.data());
  }
  state.SetLabel(std::string(family_name(static_cast<int>(state.range(0)))) +
                 " 2 ranks x 2 threads");
}

BENCHMARK(BM_SsspBulkSynchronous)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SsspAsynchronous)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SsspDeltaStepping)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SsspHybridHierarchical)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_SsspAsyncMessagePassing(benchmark::State& state) {
  // The joint asynchronous ∧ message-passing cell: continuous relax-and-
  // forward with Safra termination detection, 4 ranks.
  auto const& g = graphs().get(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto const r = e::algorithms::sssp_async_message_passing(g, 0, 4);
    benchmark::DoNotOptimize(r.distances.data());
  }
  state.SetLabel(std::string(family_name(static_cast<int>(state.range(0)))) +
                 " safra-termination");
}
BENCHMARK(BM_SsspAsyncMessagePassing)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
