// bench_engine — the serving-layer experiment: does the analytics engine
// actually multiplex?  Two headline measurements, both written to
// BENCH_engine.json for CI:
//
//  1. *Concurrency*: the same batch of independent SSSP queries, enacted
//     back-to-back on a 1-runner engine vs concurrently on an 8-runner
//     engine.  A serving layer that serializes would show speedup ~1; the
//     acceptance bar is speedup > 1 AND >1 job observed in flight
//     simultaneously (sampled from the scheduler's running() gauge).
//
//  2. *Cache sweep*: a fixed request stream drawn from pools of different
//     cardinality (4 / 16 / 64 distinct queries over 192 requests).  The
//     result cache should convert repeat-heavy streams into high hit
//     ratios and proportionally fewer enactments.
//
// A small google-benchmark timing for the cache-hit fast path rides along.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "essentials.hpp"

namespace e = essentials;
namespace eng = e::engine;
namespace alg = e::algorithms;
using e::vertex_t;
using e::weight_t;

namespace {

using engine_t = eng::analytics_engine<e::graph::graph_csr>;
using sssp_res = alg::sssp_result<weight_t>;

e::graph::graph_csr const& graph() {
  static e::graph::graph_csr const g = [] {
    auto coo = e::generators::rmat(
        {/*scale=*/12, /*edge_factor=*/8, 0.57, 0.19, 0.19, {1.0f, 4.0f},
         /*seed=*/7});
    return e::graph::from_coo<e::graph::graph_csr>(coo);
  }();
  return g;
}

eng::job_desc sssp_desc(vertex_t src, bool use_cache) {
  eng::job_desc d;
  d.graph = "g";
  d.algorithm = "sssp";
  d.params = "src=" + std::to_string(src);
  d.use_cache = use_cache;
  return d;
}

engine_t::typed_job_fn sssp_job(vertex_t src) {
  return [src](e::graph::graph_csr const& g, eng::job_context&)
             -> std::shared_ptr<void const> {
    return std::make_shared<sssp_res const>(alg::sssp(e::execution::seq, g, src));
  };
}

/// A query with the shape of real serving traffic: a CPU phase (the SSSP
/// enactment) followed by a blocking phase (simulated result delivery /
/// downstream I/O, 2 ms).  The blocking phase is what makes the experiment
/// meaningful on any core count: multiplexing runners overlap the blocked
/// time, serial back-to-back pays it 48 times in a row — so the speedup
/// measures the *scheduler*, not how many cores the CI machine happens to
/// have.
engine_t::typed_job_fn serving_job(vertex_t src) {
  return [src](e::graph::graph_csr const& g, eng::job_context&)
             -> std::shared_ptr<void const> {
    auto r = std::make_shared<sssp_res const>(
        alg::sssp(e::execution::seq, g, src));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return r;
  };
}

/// Run `num_jobs` distinct uncached serving queries on an engine with
/// `runners` runner threads; returns {wall ms, max jobs observed running}.
std::pair<double, std::size_t> run_batch(std::size_t runners,
                                         std::size_t num_jobs) {
  engine_t engine({runners, /*max_queued=*/1024, /*cache=*/0});
  engine.registry().publish("g", graph());

  // Sample the running() gauge while the batch drains: proof that more
  // than one job is in flight at once on the multi-runner engine.
  std::atomic<bool> done{false};
  std::atomic<std::size_t> max_running{0};
  std::thread sampler([&] {
    while (!done.load(std::memory_order_relaxed)) {
      std::size_t const r = engine.scheduler().running();
      std::size_t prev = max_running.load(std::memory_order_relaxed);
      while (r > prev &&
             !max_running.compare_exchange_weak(prev, r)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  auto const t0 = std::chrono::steady_clock::now();
  std::vector<eng::job_ptr> jobs;
  jobs.reserve(num_jobs);
  for (std::size_t i = 0; i < num_jobs; ++i)
    jobs.push_back(engine.submit(
        sssp_desc(static_cast<vertex_t>(i % graph().get_num_vertices()),
                  /*use_cache=*/false),
        serving_job(static_cast<vertex_t>(i % graph().get_num_vertices()))));
  for (auto const& j : jobs)
    j->wait();
  double const ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  done.store(true);
  sampler.join();
  for (auto const& j : jobs)
    if (j->status() != eng::job_status::completed)
      std::fprintf(stderr, "warning: job retired %s\n",
                   eng::to_string(j->status()));
  return {ms, max_running.load()};
}

struct sweep_point {
  std::size_t distinct;
  std::size_t requests;
  double hit_ratio;
  std::uint64_t enacted;
};

sweep_point run_cache_sweep(std::size_t distinct, std::size_t requests) {
  engine_t engine({/*num_runners=*/4, /*max_queued=*/1024, /*cache=*/256});
  engine.registry().publish("g", graph());
  // Closed-loop client: each request waits for its answer, as an
  // interactive caller would — so repeats of a finished query hit at
  // submit time and never reach the runners (jobs_enacted == distinct).
  for (std::size_t i = 0; i < requests; ++i) {
    auto const src = static_cast<vertex_t>(i % distinct);
    engine.run(sssp_desc(src, /*use_cache=*/true), sssp_job(src));
  }
  auto const s = engine.stats();
  return {distinct, requests, s.hit_ratio(), s.jobs_enacted};
}

// Micro-benchmark: latency of the cache-hit fast path (submit -> terminal
// handle without queueing or enactment).
void BM_EngineCacheHitPath(benchmark::State& state) {
  engine_t engine({1, 64, 16});
  engine.registry().publish("g", graph());
  engine.run(sssp_desc(0, true), sssp_job(0));  // warm the cache line
  for (auto _ : state) {
    auto j = engine.submit(sssp_desc(0, true), sssp_job(0));
    benchmark::DoNotOptimize(j->status());
  }
}
BENCHMARK(BM_EngineCacheHitPath)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  constexpr std::size_t kJobs = 48;
  auto const [serial_ms, serial_max] = run_batch(1, kJobs);
  auto const [par_ms, par_max] = run_batch(8, kJobs);
  double const speedup = par_ms > 0 ? serial_ms / par_ms : 0.0;

  std::vector<sweep_point> sweep;
  sweep.push_back(run_cache_sweep(4, 192));
  sweep.push_back(run_cache_sweep(16, 192));
  sweep.push_back(run_cache_sweep(64, 192));

  char const* const path = "BENCH_engine.json";
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"analytics_engine\",\n"
               "  \"graph\": {\"kind\": \"rmat\", \"scale\": 12, "
               "\"edge_factor\": 8, \"vertices\": %lld, \"edges\": %lld},\n"
               "  \"concurrency\": {\"jobs\": %zu, \"serial_ms\": %.2f, "
               "\"parallel_ms\": %.2f, \"runners\": 8, \"speedup\": %.2f, "
               "\"max_jobs_in_flight\": %zu},\n"
               "  \"cache_sweep\": [\n",
               static_cast<long long>(graph().get_num_vertices()),
               static_cast<long long>(graph().get_num_edges()), kJobs,
               serial_ms, par_ms, speedup, par_max);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    auto const& p = sweep[i];
    std::fprintf(f,
                 "    {\"distinct_queries\": %zu, \"requests\": %zu, "
                 "\"hit_ratio\": %.4f, \"jobs_enacted\": %llu}%s\n",
                 p.distinct, p.requests, p.hit_ratio,
                 static_cast<unsigned long long>(p.enacted),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::printf("bench: wrote %s\n", path);
  std::printf("  serial (1 runner)   %8.2f ms  (max in flight %zu)\n",
              serial_ms, serial_max);
  std::printf("  parallel (8 runners)%8.2f ms  (max in flight %zu)\n",
              par_ms, par_max);
  std::printf("  speedup             %8.2fx\n", speedup);
  for (auto const& p : sweep)
    std::printf("  cache %3zu/%zu distinct: hit_ratio %.3f, enacted %llu\n",
                p.distinct, p.requests, p.hit_ratio,
                static_cast<unsigned long long>(p.enacted));

  // The acceptance bar: the 8-runner engine must beat serial back-to-back
  // and must have had more than one job in flight at some instant.
  if (speedup <= 1.0 || par_max <= 1) {
    std::fprintf(stderr,
                 "FAIL: no concurrency demonstrated (speedup %.2f, "
                 "max in flight %zu)\n",
                 speedup, par_max);
    return 1;
  }
  return 0;
}
