// bench_scaling — experiment A7: strong scaling of the framework's
// operators across thread-pool sizes.  Execution policies carry their pool,
// so the sweep is a one-line policy change per configuration — itself a
// demonstration of the §III-A abstraction.
//
// Expected shape: near-linear until the pool exceeds physical cores.  On a
// 1-core container the curve is flat-to-worse beyond 1 thread (the
// hardware, not the abstraction — DESIGN.md caveat); the bench exists so
// the same binary shows the real curve on real hardware.
//
// The custom main (replacing BENCHMARK_MAIN) writes BENCH_scaling.json for
// CI: best-of-N advance latency on rmat-12 at 1/2/4/8 threads on the
// stealing substrate, plus stealing-vs-central at 8 threads.  Two bars are
// enforced like the existing frontier/engine/delta bars:
//  - scaling-efficiency floor: >= 3.5x speedup at 8 threads over 1, gated
//    on hardware_concurrency() >= 8 (a 1-core container cannot scale);
//    ESSENTIALS_SCALING_FLOOR overrides the floor (0 disables).
//  - substrate parity: the stealing pool beats-or-matches the central
//    queue at 8 threads (>= 0.85x throughput, absorbing noise), gated on
//    hardware_concurrency() >= 4.
// The process exits nonzero when an enforced bar fails.
//
// It also writes BENCH_numa.json: the discovered machine topology, a
// per-socket scaling curve on the tiered-stealing substrate (degenerate
// single-socket curve on one-package hardware), tiered-vs-flat steal-order
// parity at 8 threads (>= 0.85x, gated on hw >= 4 — the "topology layer is
// a measured no-op on flat hardware" acceptance bar), and first-touch vs
// constructor-touch fill bandwidth for a CSR-build-sized array.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "essentials.hpp"
#include "parallel/first_touch.hpp"
#include "parallel/topology.hpp"

namespace e = essentials;
namespace op = essentials::operators;

namespace {

e::graph::graph_full const& graph() {
  static auto const g = [] {
    e::generators::rmat_options opt;
    opt.scale = 13;
    opt.edge_factor = 16;
    opt.weights = {1.0f, 4.0f};
    auto coo = e::generators::rmat(opt);
    e::graph::remove_self_loops(coo);
    return e::graph::from_coo<e::graph::graph_full>(
        std::move(coo), e::graph::duplicate_policy::keep_min);
  }();
  return g;
}

/// rmat-12 graph for the JSON artifact (matches the bench_operators scale
/// the CI bars are calibrated on).
e::graph::graph_full const& artifact_graph() {
  static auto const g = [] {
    e::generators::rmat_options opt;
    opt.scale = 12;
    opt.edge_factor = 16;
    opt.weights = {1.0f, 4.0f};
    auto coo = e::generators::rmat(opt);
    e::graph::remove_self_loops(coo);
    return e::graph::from_coo<e::graph::graph_full>(
        std::move(coo), e::graph::duplicate_policy::keep_min);
  }();
  return g;
}

void BM_SsspStrongScaling(benchmark::State& state) {
  e::parallel::thread_pool pool(static_cast<std::size_t>(state.range(0)));
  e::execution::parallel_policy policy(pool);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::sssp(policy, graph(), 0).distances.data());
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}

void BM_PagerankStrongScaling(benchmark::State& state) {
  e::parallel::thread_pool pool(static_cast<std::size_t>(state.range(0)));
  e::execution::parallel_policy policy(pool);
  e::algorithms::pagerank_options opt;
  opt.max_iterations = 10;
  opt.tolerance = 0.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::pagerank(policy, graph(), opt).ranks.data());
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}

void BM_AsyncSsspWorkerScaling(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::sssp_async(graph(), 0,
                                  static_cast<std::size_t>(state.range(0)))
            .distances.data());
  state.SetLabel("workers=" + std::to_string(state.range(0)));
}

BENCHMARK(BM_SsspStrongScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK(BM_PagerankStrongScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK(BM_AsyncSsspWorkerScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

auto const always = [](e::vertex_t, e::vertex_t, e::edge_t, e::weight_t) {
  return true;
};

/// Best-of-samples wall time (seconds) for `iters` rmat-12 advances on the
/// given pool.  Best-of absorbs scheduler noise; the first sample doubles
/// as warm-up (page faults, lane scratch, frontier capacity).
double measure_advance(e::parallel::thread_pool& pool,
                       e::frontier::sparse_frontier<e::vertex_t> const& in,
                       int iters = 6, int samples = 5) {
  e::execution::parallel_policy const policy(pool);
  double best = 1e300;
  for (int s = 0; s < samples; ++s) {
    auto const t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
      benchmark::DoNotOptimize(
          op::advance_push(policy, artifact_graph(), in, always).size());
    double const dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (dt < best)
      best = dt;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // --- BENCH_scaling.json: advance strong scaling + substrate parity ------
  std::size_t const hw = std::thread::hardware_concurrency();

  std::vector<e::vertex_t> seeds;
  for (e::vertex_t v = 0; v < (1 << 12); ++v)
    seeds.push_back(v);
  e::frontier::sparse_frontier<e::vertex_t> const in(std::move(seeds));

  struct point {
    std::size_t threads;
    double best_sec;
    double speedup;  // vs the 1-thread stealing pool
  };
  std::vector<point> curve;
  for (std::size_t t : {1u, 2u, 4u, 8u}) {
    e::parallel::thread_pool pool(t, e::parallel::queue_mode::stealing);
    curve.push_back({t, measure_advance(pool, in), 0.0});
  }
  for (auto& p : curve)
    p.speedup = p.best_sec > 0 ? curve.front().best_sec / p.best_sec : 0.0;

  double central_sec;
  {
    e::parallel::thread_pool central(8, e::parallel::queue_mode::central);
    central_sec = measure_advance(central, in);
  }
  double const stealing_sec = curve.back().best_sec;
  double const parity =
      stealing_sec > 0 ? central_sec / stealing_sec : 0.0;  // >1: stealing wins

  double floor = 3.5;
  bool floor_enforced = hw >= 8;
  if (char const* env = std::getenv("ESSENTIALS_SCALING_FLOOR")) {
    floor = std::atof(env);
    floor_enforced = floor > 0.0;
  }
  bool const parity_enforced = hw >= 4;
  constexpr double parity_bar = 0.85;

  char const* const path = "BENCH_scaling.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"scaling\",\n"
                 "  \"workload\": \"advance_push rmat-12, frontier 4096\",\n"
                 "  \"graph\": {\"kind\": \"rmat\", \"scale\": 12, "
                 "\"edge_factor\": 16, \"vertices\": %lld, \"edges\": %lld},\n"
                 "  \"hardware_concurrency\": %zu,\n"
                 "  \"floor_speedup_8t\": %.2f,\n"
                 "  \"floor_enforced\": %s,\n"
                 "  \"parity_bar\": %.2f,\n"
                 "  \"parity_enforced\": %s,\n  \"threads\": [\n",
                 static_cast<long long>(artifact_graph().get_num_vertices()),
                 static_cast<long long>(artifact_graph().get_num_edges()), hw,
                 floor, floor_enforced ? "true" : "false", parity_bar,
                 parity_enforced ? "true" : "false");
    for (std::size_t i = 0; i < curve.size(); ++i) {
      auto const& p = curve[i];
      std::fprintf(f,
                   "    {\"threads\": %zu, \"best_ms\": %.3f, "
                   "\"speedup\": %.3f}%s\n",
                   p.threads, p.best_sec * 1e3, p.speedup,
                   i + 1 < curve.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"substrates_8t\": {\"stealing_ms\": %.3f, "
                 "\"central_ms\": %.3f, \"central_over_stealing\": %.3f}\n}\n",
                 stealing_sec * 1e3, central_sec * 1e3, parity);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::printf("bench: wrote %s\n", path);
  for (auto const& p : curve)
    std::printf("  %zu threads: %8.3f ms  (%.2fx)\n", p.threads,
                p.best_sec * 1e3, p.speedup);
  std::printf("  8t substrates: stealing %.3f ms, central %.3f ms (%.2fx)\n",
              stealing_sec * 1e3, central_sec * 1e3, parity);

  // --- BENCH_numa.json: topology, per-socket curve, steal-order parity,
  // first-touch bandwidth ---------------------------------------------------
  auto const& topo = e::parallel::system_topology();
  std::size_t const sockets =
      std::max<std::size_t>(topo.num_packages, 1);
  std::size_t const cores_per_socket =
      std::max<std::size_t>(topo.num_cores / sockets, 1);

  // Per-socket strong scaling: s sockets' worth of cores on the tiered
  // substrate.  One package => one point (the degenerate curve).
  struct socket_point {
    std::size_t sockets;
    std::size_t threads;
    double best_sec;
    double speedup;  // vs the 1-socket pool
  };
  std::vector<socket_point> socket_curve;
  for (std::size_t s = 1; s <= sockets; ++s) {
    std::size_t const t = s * cores_per_socket;
    e::parallel::thread_pool pool(t, e::parallel::queue_mode::stealing,
                                  e::parallel::steal_order::tiered);
    socket_curve.push_back({s, t, measure_advance(pool, in), 0.0});
  }
  for (auto& p : socket_curve)
    p.speedup =
        p.best_sec > 0 ? socket_curve.front().best_sec / p.best_sec : 0.0;

  // Tiered vs flat steal order at 8 threads.  On single-socket hardware the
  // tiers collapse to one, so this measures the overhead of the tier walk
  // itself — the bar enforces "topology awareness costs nothing when there
  // is no topology".
  double tiered_sec, flat_sec;
  {
    e::parallel::thread_pool pool(8, e::parallel::queue_mode::stealing,
                                  e::parallel::steal_order::tiered);
    tiered_sec = measure_advance(pool, in);
  }
  {
    e::parallel::thread_pool pool(8, e::parallel::queue_mode::stealing,
                                  e::parallel::steal_order::flat);
    flat_sec = measure_advance(pool, in);
  }
  double const steal_parity =
      tiered_sec > 0 ? flat_sec / tiered_sec : 0.0;  // >1: tiered wins
  bool const steal_parity_enforced = hw >= 4;
  constexpr double steal_parity_bar = 0.85;

  // First-touch (page-parallel on the pool) vs constructor-touch (serial
  // value-init, what std::vector always did) fill bandwidth over a
  // CSR-build-sized array.  Best-of-3; first sample doubles as warm-up.
  std::size_t const fill_n = std::size_t{1} << 23;  // 64 MiB of doubles
  double ft_sec = 1e300, ct_sec = 1e300;
  {
    e::parallel::thread_pool pool(8, e::parallel::queue_mode::stealing,
                                  e::parallel::steal_order::tiered);
    for (int s = 0; s < 3; ++s) {
      auto const t0 = std::chrono::steady_clock::now();
      auto v = e::parallel::first_touch_vector<double>(pool, fill_n, 0.0,
                                                       /*numa=*/true);
      benchmark::DoNotOptimize(v.data());
      double const dt =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      ft_sec = std::min(ft_sec, dt);
    }
  }
  for (int s = 0; s < 3; ++s) {
    auto const t0 = std::chrono::steady_clock::now();
    std::vector<double> v(fill_n, 0.0);
    benchmark::DoNotOptimize(v.data());
    double const dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    ct_sec = std::min(ct_sec, dt);
  }
  double const fill_gb =
      static_cast<double>(fill_n * sizeof(double)) / 1e9;
  double const ft_gbps = ft_sec > 0 ? fill_gb / ft_sec : 0.0;
  double const ct_gbps = ct_sec > 0 ? fill_gb / ct_sec : 0.0;

  char const* const numa_path = "BENCH_numa.json";
  if (std::FILE* f = std::fopen(numa_path, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"numa\",\n"
                 "  \"workload\": \"advance_push rmat-12, frontier 4096\",\n"
                 "  \"numa_enabled\": %s,\n"
                 "  \"topology\": {\"cpus\": %zu, \"cores\": %zu, "
                 "\"packages\": %zu, \"nodes\": %zu, \"smt\": %s, "
                 "\"discovered\": %s},\n"
                 "  \"hardware_concurrency\": %zu,\n"
                 "  \"steal_parity_bar\": %.2f,\n"
                 "  \"steal_parity_enforced\": %s,\n"
                 "  \"sockets\": [\n",
                 e::parallel::numa_enabled() ? "true" : "false",
                 topo.num_cpus(), topo.num_cores, topo.num_packages,
                 topo.num_nodes, topo.smt ? "true" : "false",
                 topo.discovered ? "true" : "false", hw, steal_parity_bar,
                 steal_parity_enforced ? "true" : "false");
    for (std::size_t i = 0; i < socket_curve.size(); ++i) {
      auto const& p = socket_curve[i];
      std::fprintf(f,
                   "    {\"sockets\": %zu, \"threads\": %zu, "
                   "\"best_ms\": %.3f, \"speedup\": %.3f}%s\n",
                   p.sockets, p.threads, p.best_sec * 1e3, p.speedup,
                   i + 1 < socket_curve.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"steal_order_8t\": {\"tiered_ms\": %.3f, "
                 "\"flat_ms\": %.3f, \"flat_over_tiered\": %.3f},\n"
                 "  \"first_touch\": {\"bytes\": %zu, "
                 "\"first_touch_gbps\": %.2f, \"constructor_touch_gbps\": "
                 "%.2f}\n}\n",
                 tiered_sec * 1e3, flat_sec * 1e3, steal_parity,
                 fill_n * sizeof(double), ft_gbps, ct_gbps);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "failed to write %s\n", numa_path);
    return 1;
  }
  std::printf("bench: wrote %s\n", numa_path);
  for (auto const& p : socket_curve)
    std::printf("  %zu socket(s) / %zu threads: %8.3f ms  (%.2fx)\n",
                p.sockets, p.threads, p.best_sec * 1e3, p.speedup);
  std::printf("  8t steal order: tiered %.3f ms, flat %.3f ms (%.2fx)\n",
              tiered_sec * 1e3, flat_sec * 1e3, steal_parity);
  std::printf("  fill %zu MiB: first-touch %.2f GB/s, constructor %.2f GB/s\n",
              fill_n * sizeof(double) >> 20, ft_gbps, ct_gbps);

  int failures = 0;
  if (floor_enforced && curve.back().speedup < floor) {
    std::fprintf(stderr,
                 "FAIL: 8-thread speedup %.2fx below the %.2fx floor\n",
                 curve.back().speedup, floor);
    ++failures;
  }
  if (parity_enforced && parity < parity_bar) {
    std::fprintf(stderr,
                 "FAIL: stealing substrate at %.2fx of central throughput "
                 "(bar %.2fx)\n",
                 parity, parity_bar);
    ++failures;
  }
  if (steal_parity_enforced && steal_parity < steal_parity_bar) {
    std::fprintf(stderr,
                 "FAIL: tiered steal order at %.2fx of flat throughput "
                 "(bar %.2fx)\n",
                 steal_parity, steal_parity_bar);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
