// bench_scaling — experiment A7: strong scaling of the framework's
// operators across thread-pool sizes.  Execution policies carry their pool,
// so the sweep is a one-line policy change per configuration — itself a
// demonstration of the §III-A abstraction.
//
// Expected shape: near-linear until the pool exceeds physical cores.  On
// this 1-core container the curve is flat-to-worse beyond 1 thread (the
// hardware, not the abstraction — DESIGN.md caveat); the bench exists so
// the same binary shows the real curve on real hardware.
#include <benchmark/benchmark.h>

#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "essentials.hpp"

namespace e = essentials;

namespace {

e::graph::graph_full const& graph() {
  static auto const g = [] {
    e::generators::rmat_options opt;
    opt.scale = 13;
    opt.edge_factor = 16;
    opt.weights = {1.0f, 4.0f};
    auto coo = e::generators::rmat(opt);
    e::graph::remove_self_loops(coo);
    return e::graph::from_coo<e::graph::graph_full>(
        std::move(coo), e::graph::duplicate_policy::keep_min);
  }();
  return g;
}

void BM_SsspStrongScaling(benchmark::State& state) {
  e::parallel::thread_pool pool(static_cast<std::size_t>(state.range(0)));
  e::execution::parallel_policy policy(pool);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::sssp(policy, graph(), 0).distances.data());
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}

void BM_PagerankStrongScaling(benchmark::State& state) {
  e::parallel::thread_pool pool(static_cast<std::size_t>(state.range(0)));
  e::execution::parallel_policy policy(pool);
  e::algorithms::pagerank_options opt;
  opt.max_iterations = 10;
  opt.tolerance = 0.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::pagerank(policy, graph(), opt).ranks.data());
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}

void BM_AsyncSsspWorkerScaling(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e::algorithms::sssp_async(graph(), 0,
                                  static_cast<std::size_t>(state.range(0)))
            .distances.data());
  state.SetLabel("workers=" + std::to_string(state.range(0)));
}

BENCHMARK(BM_SsspStrongScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK(BM_PagerankStrongScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK(BM_AsyncSsspWorkerScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
