// bench_residual — the standing-query experiment: what does an epoch
// republish cost once a residual engine absorbs the delta in place,
// versus re-serving the query through the engine's PR 4 warm path, and
// versus the bare incremental/cold kernels?  Written to
// BENCH_residual.json for CI.
//
// Protocol: an rmat-12 graph lives in a dynamic_graph_t published through
// the engine registry.  A residual min-plus (SSSP) state converges once
// against the first snapshot — the standing query's registration cost —
// and is then kept converged: for each delta size d in {1, 10, 100, 1000}
// we repeatedly (a) apply d monotone edge updates, (b) publish a new
// epoch, (c) time four ways of serving the same transition:
//   cold        — full sequential SSSP kernel from scratch;
//   warm        — bare sssp_incremental kernel from the previous result +
//                 the delta (the algorithmic core of the PR 4 warm path,
//                 comparable with BENCH_delta.json);
//   warm submit — a warm-start-capable engine.run(): queue, cache lookup,
//                 result copy, incremental enact — the full request a
//                 client pays when it re-asks the engine after a publish;
//   residual    — inject_monotone_delta + reconverge on the standing
//                 state (the PR 8 path: work proportional to the affected
//                 vertices, no job, no copy).
// All four must agree bit-identically on every publish.  Medians over
// kReps.
//
// The updates use a strictly decreasing weight sequence below the graph's
// weight range, so a re-touched edge is always a weight *decrease* —
// every record is a monotone insert and the incremental paths stay
// eligible on each publish.
//
// Acceptance bar (checked here, enforced in CI): for tiny republishes
// (d <= 10 changed edges) the in-place absorb must be >= 5x faster than
// re-serving through the engine's warm path — the job the standing query
// replaces ("re-converge in place instead of rescheduling a warm job").
// The bare-kernel ratio is also reported: at this graph scale (16 KiB of
// distances) the warm kernel's O(n) copy term is only microseconds, so
// that ratio is informative, not a floor.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "essentials.hpp"

namespace e = essentials;
namespace alg = e::algorithms;
namespace eng = e::engine;
namespace gr = e::graph;
namespace res = e::residual;
namespace exec = e::execution;
using e::vertex_t;
using e::weight_t;

namespace {

constexpr int kScale = 12;
constexpr int kEdgeFactor = 8;
constexpr int kReps = 9;

using dyn_t = gr::dynamic_graph_t<>;
using engine_t = eng::analytics_engine<gr::graph_csr>;
using state_t = res::residual_state<res::min_plus_algebra<weight_t>>;
using sssp_res = alg::sssp_result<weight_t>;

void build_rmat(dyn_t& g) {
  auto const coo = e::generators::rmat(
      {/*scale=*/kScale, /*edge_factor=*/kEdgeFactor, 0.57, 0.19, 0.19,
       {1.0f, 4.0f}, /*seed=*/7});
  for (std::size_t i = 0; i < coo.row_indices.size(); ++i)
    g.add_edge(coo.row_indices[i], coo.column_indices[i], coo.values[i]);
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

eng::job_desc sssp_desc() {
  eng::job_desc d;
  d.graph = "g";
  d.algorithm = "sssp";
  d.params = "src=0";
  return d;
}

struct point {
  std::size_t delta_size;
  double cold_ms;
  double warm_ms;         // bare incremental kernel
  double warm_submit_ms;  // full engine warm request
  double residual_ms;
  double speedup_vs_warm;    // kernel ratio (informative)
  double speedup_vs_submit;  // serving ratio (the floor)
  double speedup_vs_cold;
  std::size_t edges_touched;  // residual out-edges relaxed (last rep)
};

/// One sweep point: kReps publishes of `d` monotone updates each; all four
/// serving paths timed on every publish, medians reported.  The residual
/// state and the engine's result cache persist across points — exactly how
/// a standing query and a re-asking client live across a service's whole
/// republish stream.
point run_point(std::size_t d, weight_t& next_weight, state_t& st, dyn_t& g,
                engine_t& engine) {
  vertex_t const n = g.num_vertices();
  std::mt19937_64 rng(0xe51d + d);
  std::uniform_int_distribution<vertex_t> pick(0, n - 1);

  auto prev =
      alg::sssp(exec::seq, *engine.registry().lookup("g").graph, vertex_t{0});

  std::vector<double> cold_ms, warm_ms, submit_ms, residual_ms;
  std::size_t touched = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t i = 0; i < d; ++i) {
      vertex_t const a = pick(rng);
      vertex_t b = pick(rng);
      if (a == b)
        b = (b + 1) % n;
      // Strictly decreasing weights below the rmat range: a collision with
      // an existing edge is a weight decrease, so every record stays a
      // monotone insert.
      next_weight *= 0.9999f;
      g.add_edge(a, b, next_weight);
    }
    auto const pin = engine.registry().publish("g", g);
    auto const& next = *pin.graph;
    auto const delta = g.delta_since(pin.epoch - 1);
    if (!delta.complete || !delta.insert_only()) {
      std::fprintf(stderr, "FAIL: delta at size %zu lost the fast path\n", d);
      std::exit(1);
    }

    auto const t0 = std::chrono::steady_clock::now();
    auto cold = alg::sssp(exec::seq, next, vertex_t{0});
    auto const t1 = std::chrono::steady_clock::now();
    alg::incremental_outcome out;
    auto warm = alg::sssp_incremental(exec::seq, next, vertex_t{0}, prev,
                                      delta, &out);
    auto const t2 = std::chrono::steady_clock::now();
    auto job = engine.run(sssp_desc(),
                          eng::sssp_cold_job<gr::graph_csr>(exec::seq, 0),
                          eng::sssp_warm_job<gr::graph_csr>(exec::seq, 0));
    auto const t3 = std::chrono::steady_clock::now();
    if (!res::inject_monotone_delta(st, next, delta)) {
      std::fprintf(stderr, "FAIL: residual path refused at size %zu\n", d);
      std::exit(1);
    }
    auto const rstats = st.reconverge(next);
    auto const t4 = std::chrono::steady_clock::now();

    if (!out.warm_started) {
      std::fprintf(stderr, "FAIL: warm kernel fell back at size %zu\n", d);
      std::exit(1);
    }
    if (job->status() != eng::job_status::completed || !job->warm_started()) {
      std::fprintf(stderr, "FAIL: engine warm request fell back at size %zu\n",
                   d);
      std::exit(1);
    }
    if (!rstats.converged) {
      std::fprintf(stderr, "FAIL: residual did not converge at size %zu\n",
                   d);
      std::exit(1);
    }
    auto const served = job->result_as<sssp_res>();
    for (std::size_t v = 0; v < cold.distances.size(); ++v)
      if (warm.distances[v] != cold.distances[v] ||
          served->distances[v] != cold.distances[v] ||
          st.values()[v] != cold.distances[v]) {
        std::fprintf(stderr, "FAIL: paths disagree at vertex %zu\n", v);
        std::exit(1);
      }

    cold_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    warm_ms.push_back(
        std::chrono::duration<double, std::milli>(t2 - t1).count());
    submit_ms.push_back(
        std::chrono::duration<double, std::milli>(t3 - t2).count());
    residual_ms.push_back(
        std::chrono::duration<double, std::milli>(t4 - t3).count());
    touched = rstats.edges;
    prev = std::move(cold);
  }

  double const c = median(cold_ms), w = median(warm_ms),
               s = median(submit_ms), r = median(residual_ms);
  return {d,
          c,
          w,
          s,
          r,
          r > 0 ? w / r : 0.0,
          r > 0 ? s / r : 0.0,
          r > 0 ? c / r : 0.0,
          touched};
}

// Micro-benchmark riding along (the CI smoke filter): steady-state absorb
// latency of a converged PageRank residual state when one vertex's mass is
// perturbed — the standing query's inner loop with no publish machinery.
void BM_ResidualPerturbReconverge(benchmark::State& state) {
  static dyn_t g(vertex_t{1} << 10);
  static bool const seeded = [] {
    std::mt19937_64 rng(13);
    std::uniform_int_distribution<vertex_t> pick(0, (1 << 10) - 1);
    for (vertex_t v = 0; v < (1 << 10); ++v)
      g.add_edge(v, (v + 1) % (1 << 10), 1.0f);
    for (int i = 0; i < 4096; ++i)
      g.add_edge(pick(rng), pick(rng), 1.0f);
    return true;
  }();
  (void)seeded;
  static auto const snap = g.publish_epoch<gr::graph_csr>().first;

  e::parallel::thread_pool pool(2);
  pool.register_external_lane();
  res::residual_state<res::pagerank_algebra> st(
      static_cast<std::size_t>(snap->get_num_vertices()),
      res::pagerank_algebra{}, {}, pool);
  res::seed_pagerank(st);
  st.reconverge(*snap);

  std::mt19937_64 rng(17);
  std::uniform_int_distribution<vertex_t> pick(0, (1 << 10) - 1);
  for (auto _ : state) {
    st.inject(pick(rng), 1e-6);
    benchmark::DoNotOptimize(st.reconverge(*snap).waves);
  }
}
BENCHMARK(BM_ResidualPerturbReconverge)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // One live graph, one engine (with its result cache), and one standing
  // residual state across the whole sweep, like a long-running service
  // (dynamic_graph_t is immovable by design).
  dyn_t g(vertex_t{1} << kScale);
  build_rmat(g);
  engine_t engine({/*num_runners=*/2, /*max_queued=*/16, /*cache=*/32});
  engine.registry().publish("g", g);
  // Cold engine run populates the cache — every later request is warm.
  {
    auto j = engine.run(sssp_desc(),
                        eng::sssp_cold_job<gr::graph_csr>(exec::seq, 0),
                        eng::sssp_warm_job<gr::graph_csr>(exec::seq, 0));
    if (j->status() != eng::job_status::completed) {
      std::fprintf(stderr, "FAIL: cold engine run did not complete\n");
      return 1;
    }
  }
  e::parallel::thread_pool pool(4);
  pool.register_external_lane();  // what a standing-query runner does
  state_t st(static_cast<std::size_t>(vertex_t{1} << kScale),
             res::min_plus_algebra<weight_t>{}, {}, pool);
  res::seed_source(st, vertex_t{0});
  st.reconverge(*engine.registry().lookup("g").graph);  // registration cost

  weight_t next_weight = 0.9f;  // below the rmat weight range: decreases only
  std::vector<point> sweep;
  for (std::size_t d : {std::size_t{1}, std::size_t{10}, std::size_t{100},
                        std::size_t{1000}})
    sweep.push_back(run_point(d, next_weight, st, g, engine));

  char const* const path = "BENCH_residual.json";
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"residual_standing_query\",\n"
               "  \"graph\": {\"kind\": \"rmat\", \"scale\": %d, "
               "\"edge_factor\": %d},\n"
               "  \"algorithm\": \"sssp\", \"reps\": %d, "
               "\"statistic\": \"median\",\n"
               "  \"sweep\": [\n",
               kScale, kEdgeFactor, kReps);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    auto const& p = sweep[i];
    std::fprintf(
        f,
        "    {\"delta_size\": %zu, \"cold_ms\": %.4f, \"warm_ms\": %.4f, "
        "\"warm_submit_ms\": %.4f, \"residual_ms\": %.4f, "
        "\"speedup_vs_warm\": %.2f, \"speedup_vs_submit\": %.2f, "
        "\"speedup_vs_cold\": %.2f, \"edges_touched\": %zu}%s\n",
        p.delta_size, p.cold_ms, p.warm_ms, p.warm_submit_ms, p.residual_ms,
        p.speedup_vs_warm, p.speedup_vs_submit, p.speedup_vs_cold,
        p.edges_touched, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::printf("bench: wrote %s\n", path);
  for (auto const& p : sweep)
    std::printf(
        "  delta %4zu edges: cold %8.3f ms  warm-kernel %8.3f ms  "
        "warm-submit %8.3f ms  residual %8.3f ms  vs-kernel %6.1fx  "
        "vs-submit %6.1fx  vs-cold %7.1fx  (edges touched %zu)\n",
        p.delta_size, p.cold_ms, p.warm_ms, p.warm_submit_ms, p.residual_ms,
        p.speedup_vs_warm, p.speedup_vs_submit, p.speedup_vs_cold,
        p.edges_touched);

  // The acceptance bar: for tiny republishes (<= 10 changed edges) the
  // in-place absorb must be at least 5x cheaper than re-serving the query
  // through the engine's warm path — the request it replaces.
  for (auto const& p : sweep)
    if (p.delta_size <= 10 && p.speedup_vs_submit < 5.0) {
      std::fprintf(stderr,
                   "FAIL: residual absorb at delta %zu only %.2fx faster "
                   "than the warm engine path (bar: 5x)\n",
                   p.delta_size, p.speedup_vs_submit);
      return 1;
    }
  return 0;
}
