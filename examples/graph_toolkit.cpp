// graph_toolkit — a command-line Swiss-army knife over the library's IO,
// properties, partitioning and reordering modules: the utility a
// downstream user reaches for before writing any code.
//
// Usage:
//   graph_toolkit stats     <file>             # degrees, components, clustering
//   graph_toolkit convert   <in> <out>         # between mtx/el/gr/metis/bin
//   graph_toolkit partition <file> <k> <heur>  # heur: random|block|greedy|bfs
//   graph_toolkit reorder   <in> <out> <ord>   # ord: degree|bfs
//   graph_toolkit demo                         # run all of the above on a
//                                              # generated graph in /tmp
// Formats are chosen by extension: .mtx .el .gr .graph .bin
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>

#include "essentials.hpp"

namespace e = essentials;
namespace g = e::graph;

namespace {

std::string extension(std::string const& path) {
  auto const dot = path.rfind('.');
  return dot == std::string::npos ? "" : path.substr(dot + 1);
}

g::coo_t<> load(std::string const& path) {
  auto const ext = extension(path);
  if (ext == "mtx")
    return e::io::read_matrix_market_file(path);
  if (ext == "el" || ext == "txt" || ext == "tsv")
    return e::io::read_edge_list_file(path);
  if (ext == "gr")
    return e::io::read_dimacs_file(path);
  if (ext == "graph")
    return e::io::read_metis_file(path);
  if (ext == "bin") {
    auto const csr = e::io::read_binary_csr_file(path);
    g::coo_t<> coo;
    coo.num_rows = csr.num_rows;
    coo.num_cols = csr.num_cols;
    for (e::vertex_t v = 0; v < csr.num_rows; ++v)
      for (e::edge_t ed = csr.row_offsets[static_cast<std::size_t>(v)];
           ed < csr.row_offsets[static_cast<std::size_t>(v) + 1]; ++ed)
        coo.push_back(v, csr.column_indices[static_cast<std::size_t>(ed)],
                      csr.values[static_cast<std::size_t>(ed)]);
    return coo;
  }
  throw e::graph_error("unknown input extension '" + ext + "'");
}

void save(std::string const& path, g::coo_t<> const& coo) {
  auto const ext = extension(path);
  std::ofstream out(path);
  if (!out)
    throw e::graph_error("cannot open '" + path + "' for writing");
  if (ext == "mtx")
    e::io::write_matrix_market(out, coo);
  else if (ext == "el" || ext == "txt" || ext == "tsv")
    e::io::write_edge_list(out, coo);
  else if (ext == "gr")
    e::io::write_dimacs(out, coo);
  else if (ext == "graph")
    e::io::write_metis(out, coo);
  else if (ext == "bin")
    e::io::write_binary_csr_file(path, g::build_csr(coo));
  else
    throw e::graph_error("unknown output extension '" + ext + "'");
}

int cmd_stats(std::string const& path) {
  auto coo = load(path);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  auto const s = g::out_degree_stats(csr);
  std::printf("file        : %s\n", path.c_str());
  std::printf("vertices    : %d\n", csr.num_rows);
  std::printf("edges       : %d\n", csr.num_edges());
  std::printf("degree      : min %zu / mean %.2f (+/- %.2f) / max %zu\n",
              s.min_degree, s.mean_degree, s.stddev_degree, s.max_degree);
  std::printf("isolated    : %zu\n", s.isolated_vertices);
  std::printf("symmetric   : %s\n", g::is_symmetric(csr) ? "yes" : "no");
  std::printf("self loops  : %s\n", g::has_no_self_loops(csr) ? "none" : "yes");

  auto und = coo;
  g::remove_self_loops(und);
  g::symmetrize(und);
  auto const gr = g::from_coo<g::graph_full>(std::move(und));
  auto const cc = e::algorithms::connected_components(e::execution::par, gr);
  std::printf("components  : %zu (undirected)\n", cc.num_components);
  auto const cl =
      e::algorithms::clustering_coefficients(e::execution::par, gr);
  std::printf("clustering  : global %.4f, average local %.4f\n", cl.global,
              cl.average_local);
  auto const kc = e::algorithms::kcore(e::execution::par, gr);
  std::printf("max k-core  : %d\n", kc.max_core);
  return 0;
}

int cmd_convert(std::string const& in, std::string const& out) {
  auto const coo = load(in);
  save(out, coo);
  std::printf("converted %s (%d vertices, %d edges) -> %s\n", in.c_str(),
              coo.num_rows, coo.num_edges(), out.c_str());
  return 0;
}

int cmd_partition(std::string const& path, int k, std::string const& heur) {
  auto coo = load(path);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  e::partition::partition_t<e::vertex_t> p;
  if (heur == "random")
    p = e::partition::partition_random<e::vertex_t>(csr.num_rows, k, 1);
  else if (heur == "block")
    p = e::partition::partition_block<e::vertex_t>(csr.num_rows, k);
  else if (heur == "greedy")
    p = e::partition::partition_greedy_edges(csr, k);
  else if (heur == "bfs")
    p = e::partition::partition_bfs_grow(csr, k, 1);
  else
    throw e::graph_error("unknown heuristic '" + heur + "'");
  std::printf("%s, k=%d: edge cut %.1f%%, vertex balance %.3f, edge balance "
              "%.3f\n",
              heur.c_str(), k,
              100.0 * e::partition::edge_cut_fraction(csr, p),
              e::partition::vertex_balance(p),
              e::partition::edge_balance(csr, p));
  return 0;
}

int cmd_reorder(std::string const& in, std::string const& out,
                std::string const& order) {
  auto coo = load(in);
  g::sort_and_deduplicate(coo);
  auto const csr = g::build_csr(coo);
  auto const perm = order == "degree" ? g::order_by_degree(csr)
                    : order == "bfs"  ? g::order_by_bfs(csr, 0)
                                      : throw e::graph_error(
                                            "unknown order '" + order + "'");
  g::permutation_t<e::vertex_t> identity(perm.size());
  std::iota(identity.begin(), identity.end(), 0);
  std::printf("average edge span: %.1f -> %.1f\n",
              g::average_edge_span(csr, identity),
              g::average_edge_span(csr, perm));
  save(out, g::apply_permutation(coo, perm));
  return 0;
}

int cmd_demo() {
  auto coo = e::generators::watts_strogatz(2000, 3, 0.1, {1.0f, 5.0f}, 4);
  g::sort_and_deduplicate(coo);
  std::string const base = "/tmp/essentials_demo";
  save(base + ".mtx", coo);
  std::printf("--- stats ---\n");
  cmd_stats(base + ".mtx");
  std::printf("--- convert ---\n");
  cmd_convert(base + ".mtx", base + ".graph");
  cmd_convert(base + ".graph", base + ".bin");
  std::printf("--- partition ---\n");
  for (auto const* h : {"random", "block", "greedy", "bfs"})
    cmd_partition(base + ".mtx", 4, h);
  std::printf("--- reorder ---\n");
  cmd_reorder(base + ".mtx", base + "_bfs.mtx", "bfs");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2) {
      std::string const cmd = argv[1];
      if (cmd == "stats" && argc == 3)
        return cmd_stats(argv[2]);
      if (cmd == "convert" && argc == 4)
        return cmd_convert(argv[2], argv[3]);
      if (cmd == "partition" && argc == 5)
        return cmd_partition(argv[2], std::atoi(argv[3]), argv[4]);
      if (cmd == "reorder" && argc == 5)
        return cmd_reorder(argv[2], argv[3], argv[4]);
      if (cmd == "demo")
        return cmd_demo();
    }
  } catch (std::exception const& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage: %s stats <file> | convert <in> <out> | partition "
               "<file> <k> <random|block|greedy|bfs> | reorder <in> <out> "
               "<degree|bfs> | demo\n",
               argv[0]);
  return 2;
}
