// analytics_server — the engine layer end-to-end: one process serving a
// stream of mixed analytics queries (SSSP / BFS / personalized PageRank)
// over a graph that keeps growing underneath them.
//
// The moving parts, wired exactly as docs/ARCHITECTURE.md describes:
//
//  - an *ingest* thread appends edges to a `dynamic_graph_t` and, every
//    small batch, snapshots + publishes the next epoch into the engine's
//    graph registry (old epochs stay alive for in-flight jobs).  Because
//    the batches are small, each publish carries a compact edge delta, so
//    invalidated cache entries are *demoted to warm seeds* instead of
//    evicted;
//  - a *client* loop submits queries with mixed priorities and deadlines
//    against the named graph; the scheduler runs them on a small runner
//    crew, the result cache absorbs repeats within an epoch, and SSSP
//    repeats that straddle a publish ride the incremental warm-start path
//    (engine/warm_jobs.hpp) instead of re-enacting from scratch;
//  - at the end the engine's counters — including the warm-start hit
//    ratio — are printed as JSON, the same export a monitoring endpoint
//    would scrape.
//
// The run is deterministic for a fixed seed in the serving-system sense:
// every job retires in a terminal status, none fails, and completed
// results are bit-identical to a serial re-run (asserted for a sample).
//
// A third argument `burst` switches to burst-arrival mode: the whole
// query stream (per-source BFS and closeness, the shapes that batch) is
// submitted at once with no pacing sleeps while the single runner is
// still occupied — the arrival pattern a request spike presents to a
// saturated server.  The scheduler's fusion window coalesces the queued
// burst into bit-lane multi-source waves, and the run prints the batching
// counters (`avg_batch_size`, `edge_passes_saved`) that quantify the
// amortization.
//
// Usage: analytics_server [num_jobs] [seed] [paced|burst]
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "essentials.hpp"

namespace e = essentials;
namespace eng = e::engine;
namespace alg = e::algorithms;
using e::vertex_t;
using e::weight_t;

namespace {

using engine_t = eng::analytics_engine<e::graph::graph_csr>;
using sssp_res = alg::sssp_result<weight_t>;
using bfs_res = alg::bfs_result<vertex_t>;

constexpr vertex_t kVertices = 2048;

eng::job_desc make_desc(char const* algo, vertex_t src, int priority) {
  eng::job_desc d;
  d.graph = "social";
  d.algorithm = algo;
  d.params = "src=" + std::to_string(src);
  d.priority = priority;
  return d;
}

/// Burst-arrival mode: one runner, no pacing — the spike hits a busy
/// server and the fusion window turns the backlog into lane-packed waves.
int run_burst_mode(engine_t& engine, std::size_t num_jobs,
                   std::uint64_t /*seed*/) {
  // Occupy the single runner until the whole burst is queued — the
  // serving-system equivalent of a spike arriving mid-enactment.
  std::atomic<bool> release{false};
  auto blocker = engine.submit(
      make_desc("warmup", 0, 0),
      [&release](e::graph::graph_csr const&, eng::job_context&)
          -> std::shared_ptr<void const> {
        while (!release.load(std::memory_order_acquire))
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        return nullptr;
      });

  // The burst: alternating per-source BFS-levels and harmonic-closeness
  // queries, distinct sources, submitted back-to-back with no sleeps.
  std::vector<eng::job_ptr> jobs;
  jobs.reserve(num_jobs);
  for (std::size_t i = 0; i < num_jobs; ++i) {
    auto const src = static_cast<vertex_t>((i * 17) % kVertices);
    if (i % 2 == 0)
      jobs.push_back(engine.submit_batch(
          make_desc("bfs_levels", src, 5),
          eng::bfs_batch_job<e::graph::graph_csr>(e::execution::par, src)));
    else
      jobs.push_back(engine.submit_batch(
          make_desc("closeness", src, 5),
          eng::closeness_batch_job<e::graph::graph_csr>(e::execution::par,
                                                        src)));
  }
  release.store(true, std::memory_order_release);

  std::size_t completed = 0, hits = 0, other = 0;
  for (auto const& j : jobs) {
    switch (j->wait()) {
      case eng::job_status::completed: ++completed; break;
      case eng::job_status::cache_hit: ++hits; break;
      default: ++other; break;
    }
  }
  blocker->wait();

  // Spot-check one fused answer against its shape invariant.
  for (auto const& j : jobs) {
    if (j->status() != eng::job_status::completed ||
        j->desc().algorithm != "bfs_levels")
      continue;
    auto const r = j->result_as<eng::bfs_lanes_result<vertex_t>>();
    if (r && r->depths.size() != static_cast<std::size_t>(kVertices)) {
      std::fprintf(stderr, "FAIL: fused result on wrong vertex set\n");
      return 1;
    }
    break;
  }

  auto const s = engine.stats();
  std::ostringstream json;
  eng::write_json(s, json);
  std::printf("%s\n", json.str().c_str());
  std::printf("jobs=%zu completed=%zu cache_hits=%zu other=%zu\n",
              jobs.size(), completed, hits, other);
  std::printf(
      "batching: %" PRIu64 " waves fused %" PRIu64
      " queries (avg batch %.1f), %" PRIu64 " edge passes saved\n",
      s.batches, s.batched_jobs, s.avg_batch_size(), s.edge_passes_saved);

  if (completed + hits + other != num_jobs || s.failed != 0 || other != 0) {
    std::fprintf(stderr, "FAIL: job accounting mismatch\n");
    return 1;
  }
  // The burst queued behind the blocker, so fusion is guaranteed: the
  // smoke test asserts the amortization actually happened.
  if (s.batched_jobs == 0 || s.edge_passes_saved == 0) {
    std::fprintf(stderr, "FAIL: burst did not fuse\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t const num_jobs =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 200;
  std::uint64_t const seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  bool const burst = argc > 3 && std::string_view(argv[3]) == "burst";

  // --- the mutable source of truth + the serving engine ---------------------
  e::graph::dynamic_graph_t<> live(kVertices);
  engine_t engine({/*num_runners=*/burst ? 1u : 4u, /*max_queued=*/256,
                   /*cache=*/128});

  // Seed the graph with an R-MAT edge set so epoch 1 is interesting.
  auto seed_coo = e::generators::rmat(
      {/*scale=*/11, /*edge_factor=*/8, 0.57, 0.19, 0.19, {1.0f, 4.0f}, seed});
  for (std::size_t i = 0; i < seed_coo.row_indices.size(); ++i)
    live.add_edge(seed_coo.row_indices[i], seed_coo.column_indices[i],
                  seed_coo.values[i]);
  engine.registry().publish("social", live);
  std::printf("epoch 1 published: %d vertices, %zu edges\n",
              live.num_vertices(), live.num_edges());

  // Burst-arrival mode: one pinned epoch, no pacing, fusion does the work.
  if (burst)
    return run_burst_mode(engine, num_jobs, seed);

  // --- ingest thread: keep mutating, publish an epoch every batch -----------
  std::atomic<bool> stop_ingest{false};
  std::thread ingest([&] {
    std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
    std::uniform_int_distribution<vertex_t> pick(0, kVertices - 1);
    while (!stop_ingest.load(std::memory_order_relaxed)) {
      // Small batches: each publish carries a compact, warm-startable
      // delta (a few dozen records vs re-enacting over ~64k edges).
      for (int i = 0; i < 48; ++i)
        live.add_edge(pick(rng), pick(rng),
                      1.0f + static_cast<weight_t>(pick(rng) % 8));
      engine.registry().publish("social", live);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // --- client loop: mixed traffic -------------------------------------------
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vertex_t> pick_src(0, kVertices - 1);
  std::uniform_int_distribution<int> pick_algo(0, 2);
  std::uniform_int_distribution<int> pick_prio(0, 9);

  std::vector<eng::job_ptr> jobs;
  jobs.reserve(num_jobs);
  for (std::size_t i = 0; i < num_jobs; ++i) {
    // Paced arrivals: queries straddle epoch publishes, so a repeated
    // query pins a *newer* epoch than the cached answer — the setup the
    // warm-start path exists for (a burst would pin one epoch and collapse
    // into plain cache hits instead).
    if (i % 4 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    vertex_t const src = pick_src(rng);
    int const prio = pick_prio(rng);
    switch (pick_algo(rng)) {
      case 0: {
        // SSSP sources come from a small hot pool, so the same query
        // identity recurs across epochs: first run cold-populates the
        // cache, the next publish demotes that entry to a warm seed, and
        // the repeat rides the incremental warm-start path.
        vertex_t const hot = src % 16;
        jobs.push_back(engine.submit(
            make_desc("sssp", hot, prio),
            eng::sssp_cold_job<e::graph::graph_csr>(e::execution::seq, hot),
            eng::sssp_warm_job<e::graph::graph_csr>(e::execution::seq, hot)));
        break;
      }
      case 1:
        jobs.push_back(engine.submit(
            make_desc("bfs", src, prio),
            [src](e::graph::graph_csr const& g, eng::job_context&)
                -> std::shared_ptr<void const> {
              return std::make_shared<bfs_res const>(alg::bfs_serial(g, src));
            }));
        break;
      default:
        jobs.push_back(engine.submit(
            make_desc("ppr", src, prio),
            [src](e::graph::graph_csr const& g, eng::job_context&)
                -> std::shared_ptr<void const> {
              return std::make_shared<alg::ppr_result const>(
                  alg::personalized_pagerank(g, src));
            }));
        break;
    }
  }

  // --- drain + verify -------------------------------------------------------
  std::size_t completed = 0, hits = 0, rejected = 0, other = 0;
  for (auto const& j : jobs) {
    switch (j->wait()) {
      case eng::job_status::completed:
        ++completed;
        break;
      case eng::job_status::cache_hit:
        ++hits;
        break;
      case eng::job_status::rejected:
        ++rejected;
        break;
      default:
        ++other;
        break;
    }
  }
  stop_ingest.store(true);
  ingest.join();

  // Determinism spot-check: a completed SSSP answer must equal the serial
  // oracle on the *same pinned epoch* — pick the first sssp job we find.
  for (auto const& j : jobs) {
    if (j->status() != eng::job_status::completed ||
        j->desc().algorithm != "sssp")
      continue;
    auto const dist = j->result_as<sssp_res>();
    if (!dist)
      continue;  // cooperative stop surrendered the result
    if (dist->distances.size() != static_cast<std::size_t>(kVertices)) {
      std::fprintf(stderr, "FAIL: result on wrong vertex set\n");
      return 1;
    }
    break;
  }

  auto const s = engine.stats();
  std::ostringstream json;
  eng::write_json(s, json);
  std::printf("%s\n", json.str().c_str());
  std::printf(
      "jobs=%zu completed=%zu cache_hits=%zu rejected=%zu other=%zu "
      "final_epoch=%" PRIu64 "\n",
      jobs.size(), completed, hits, rejected, other,
      engine.registry().epoch("social"));
  std::printf(
      "warm starts: %" PRIu64 " hits, %" PRIu64
      " delta fallbacks, %" PRIu64 " cache demotions, warm ratio %.3f\n",
      s.warm_start_hits, s.delta_fallbacks, s.cache_demotions,
      s.warm_ratio());

  // Serving invariants, asserted so the smoke test has teeth: every job
  // retired terminally; nothing failed; nothing vanished.
  if (completed + hits + rejected + other != num_jobs) {
    std::fprintf(stderr, "FAIL: job accounting mismatch\n");
    return 1;
  }
  if (s.failed != 0 || other != 0) {
    std::fprintf(stderr, "FAIL: unexpected failed/non-terminal jobs\n");
    return 1;
  }
  return 0;
}
