// task_scheduling — critical-path scheduling of a task DAG: topological
// layering gives the parallel schedule, a longest-path relaxation over the
// layers gives earliest start times and the critical path (the classic CPM
// analysis), and the layer widths show the available parallelism.
//
// Demonstrates the framework on a DAG workload (build systems, data
// pipelines, spreadsheets) — a different domain from the traversal-heavy
// examples.
//
// Usage: task_scheduling [num_tasks avg_deps]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "essentials.hpp"

namespace e = essentials;

int main(int argc, char** argv) {
  e::vertex_t n = 2000;
  int avg_deps = 3;
  if (argc == 3) {
    n = static_cast<e::vertex_t>(std::atoi(argv[1]));
    avg_deps = std::atoi(argv[2]);
  }

  // Random DAG: edges oriented low -> high are acyclic by construction.
  // Task durations in [1, 10) hours live on the *vertices*; we place each
  // task's duration on its out-edges so path length == completion time.
  auto coo = e::generators::erdos_renyi(
      n, static_cast<std::size_t>(n) * static_cast<std::size_t>(avg_deps),
      {}, /*seed=*/5);
  e::graph::remove_self_loops(coo);
  for (std::size_t i = 0; i < coo.row_indices.size(); ++i)
    if (coo.row_indices[i] > coo.column_indices[i])
      std::swap(coo.row_indices[i], coo.column_indices[i]);

  std::vector<float> duration(static_cast<std::size_t>(n));
  e::generators::rng_t rng(11);
  for (auto& d : duration)
    d = rng.next_float(1.0f, 10.0f);
  for (std::size_t i = 0; i < coo.row_indices.size(); ++i)
    coo.values[i] = duration[static_cast<std::size_t>(coo.row_indices[i])];

  auto const g = e::graph::from_coo<e::graph::graph_push_pull>(std::move(coo));
  std::printf("task graph: %d tasks, %d dependencies\n",
              g.get_num_vertices(), g.get_num_edges());

  auto const topo = e::algorithms::topological_sort(e::execution::par, g);
  if (!topo.is_dag) {
    std::fprintf(stderr, "dependency cycle detected — no schedule exists\n");
    return 1;
  }
  std::printf("schedule depth: %zu layers (critical-path hop length)\n",
              topo.levels);

  // Earliest start times: longest-path relaxation in topological order.
  std::vector<float> start(static_cast<std::size_t>(n), 0.0f);
  std::vector<e::vertex_t> critical_pred(static_cast<std::size_t>(n), -1);
  for (e::vertex_t const u : topo.order) {
    for (auto const ed : g.get_edges(u)) {
      auto const v = g.get_dest_vertex(ed);
      float const candidate = start[static_cast<std::size_t>(u)] +
                              g.get_edge_weight(ed);
      if (candidate > start[static_cast<std::size_t>(v)]) {
        start[static_cast<std::size_t>(v)] = candidate;
        critical_pred[static_cast<std::size_t>(v)] = u;
      }
    }
  }

  // Makespan and the critical path.
  e::vertex_t last = 0;
  float makespan = 0.0f;
  for (e::vertex_t v = 0; v < n; ++v) {
    float const finish =
        start[static_cast<std::size_t>(v)] + duration[static_cast<std::size_t>(v)];
    if (finish > makespan) {
      makespan = finish;
      last = v;
    }
  }
  std::vector<e::vertex_t> path;
  for (e::vertex_t v = last; v != -1;
       v = critical_pred[static_cast<std::size_t>(v)])
    path.push_back(v);
  std::reverse(path.begin(), path.end());

  float serial_total = 0.0f;
  for (float const d : duration)
    serial_total += d;
  std::printf("makespan with unlimited workers: %.1f h "
              "(serial execution: %.1f h -> max speedup %.1fx)\n",
              makespan, serial_total, serial_total / makespan);
  std::printf("critical path: %zu tasks; first/last:", path.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(3, path.size()); ++i)
    std::printf(" %d", path[i]);
  std::printf(" ... %d\n", path.back());
  return 0;
}
