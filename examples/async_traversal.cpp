// async_traversal — the paper's timing-model pillar (§III-A) made
// observable: the *same* SSSP relaxation runs under three execution
// regimes, and the superstep structure (or its absence) shows up directly
// in the measurements.
//
//  - BSP push (execution::par): barriers between supersteps; superstep
//    count == wavefront depth.
//  - Asynchronous queue (async_loop): no barriers; work flows as it is
//    discovered; convergence by quiescence.
//  - Message passing (mpsim ranks): shared-nothing BSP; the frontier moves
//    as messages.
//
// High-diameter graphs (chain) have thousands of tiny supersteps — the BSP
// pathology the asynchronous model removes.  Low-diameter skewed graphs
// (R-MAT) have few fat supersteps — where BSP shines.
//
// Usage: async_traversal
#include <chrono>
#include <cstdio>

#include "essentials.hpp"

namespace e = essentials;

namespace {

template <typename F>
double time_ms(F&& fn) {
  auto const t0 = std::chrono::steady_clock::now();
  fn();
  auto const t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void run_case(char const* name, e::graph::graph_csr const& g) {
  std::printf("\n=== %s: %d vertices, %d edges ===\n", name,
              g.get_num_vertices(), g.get_num_edges());

  e::algorithms::sssp_result<float> bsp, async, mp;
  double const t_bsp =
      time_ms([&] { bsp = e::algorithms::sssp(e::execution::par, g, 0); });
  double const t_async =
      time_ms([&] { async = e::algorithms::sssp_async(g, 0, 4); });
  double const t_mp = time_ms(
      [&] { mp = e::algorithms::sssp_message_passing(g, 0, 4); });

  float max_gap = 0.0f;
  for (std::size_t v = 0; v < bsp.distances.size(); ++v) {
    if (bsp.distances[v] == e::infinity_v<float>)
      continue;
    max_gap = std::max(max_gap,
                       std::abs(bsp.distances[v] - async.distances[v]));
    max_gap = std::max(max_gap, std::abs(bsp.distances[v] - mp.distances[v]));
  }

  std::printf("  %-28s %8.2f ms   (%zu supersteps)\n",
              "BSP shared-memory push", t_bsp, bsp.iterations);
  std::printf("  %-28s %8.2f ms   (no barriers, quiescence)\n",
              "asynchronous queue", t_async);
  std::printf("  %-28s %8.2f ms   (%zu supersteps, 4 ranks)\n",
              "message passing", t_mp, mp.iterations);
  std::printf("  all three agree to %.2g\n", max_gap);
}

}  // namespace

int main() {
  {
    auto coo = e::generators::chain(20'000, {1.0f, 2.0f});
    auto const g = e::graph::from_coo<e::graph::graph_csr>(std::move(coo));
    run_case("chain (high diameter — BSP pathology)", g);
  }
  {
    e::generators::rmat_options opt;
    opt.scale = 12;
    opt.edge_factor = 16;
    opt.weights = {1.0f, 2.0f};
    auto coo = e::generators::rmat(opt);
    e::graph::remove_self_loops(coo);
    auto const g = e::graph::from_coo<e::graph::graph_csr>(std::move(coo));
    run_case("R-MAT (low diameter, skewed — BSP friendly)", g);
  }
  return 0;
}
