// road_navigation — SSSP as a routing engine on a synthetic road network.
//
// Road networks are high-diameter, near-planar meshes with tiny uniform
// degree; we stand one in with a weighted 2-D grid (see DESIGN.md §2).  The
// example runs the push-BSP SSSP of Listing 4 from a depot corner, checks
// it against Dijkstra, reconstructs a driving route by walking the
// shortest-path tree backwards, and reports the superstep count — which on
// meshes is the frontier-wavefront diameter, the reason road networks are
// the worst case for bulk-synchronous traversal (paper §III-A).
//
// Usage: road_navigation [rows cols]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "essentials.hpp"

namespace e = essentials;

int main(int argc, char** argv) {
  e::vertex_t rows = 64, cols = 64;
  if (argc == 3) {
    rows = static_cast<e::vertex_t>(std::atoi(argv[1]));
    cols = static_cast<e::vertex_t>(std::atoi(argv[2]));
  }
  if (rows < 2 || cols < 2) {
    std::fprintf(stderr, "usage: %s [rows cols] (>= 2 each)\n", argv[0]);
    return 1;
  }

  // Street segments get travel times in [1, 10) minutes.
  auto coo = e::generators::grid_2d(rows, cols, {1.0f, 10.0f}, /*seed=*/42);
  auto const g = e::graph::from_coo<e::graph::graph_csr>(std::move(coo));
  auto const stats = e::graph::out_degree_stats(g.csr());
  std::printf("road network: %d intersections, %d street segments\n",
              g.get_num_vertices(), g.get_num_edges());
  std::printf("degree: min %zu, max %zu, mean %.2f (mesh regime)\n",
              stats.min_degree, stats.max_degree, stats.mean_degree);

  e::vertex_t const depot = 0;                       // top-left corner
  e::vertex_t const dest = rows * cols - 1;          // bottom-right corner

  auto const sp = e::algorithms::sssp(e::execution::par, g, depot);
  auto const oracle = e::algorithms::dijkstra(g, depot);
  float max_err = 0.0f;
  for (e::vertex_t v = 0; v < g.get_num_vertices(); ++v)
    if (oracle.distances[v] != e::infinity_v<float>)
      max_err = std::max(max_err,
                         std::abs(sp.distances[v] - oracle.distances[v]));
  std::printf("\nshortest travel time depot -> far corner: %.2f min "
              "(dijkstra agrees to %.2g)\n",
              sp.distances[dest], max_err);
  std::printf("BSP supersteps: %zu (~= wavefront diameter of the mesh)\n",
              sp.iterations);

  // Route reconstruction: from dest, repeatedly step to a predecessor u
  // with dist[u] + w(u, dest') == dist[dest'] — a textbook walk of the
  // shortest-path DAG using only the public graph API (via in-edges we
  // don't have on a CSR-only graph, so scan candidates' out-edges).
  std::vector<e::vertex_t> route{dest};
  e::vertex_t cur = dest;
  while (cur != depot && route.size() < static_cast<std::size_t>(rows) *
                                            static_cast<std::size_t>(cols)) {
    e::vertex_t next = cur;
    // A grid predecessor is one of <=4 neighbors; their out-edges include
    // the reverse edge, so scan the neighbors of cur.
    for (auto const ec : g.get_edges(cur)) {
      e::vertex_t const u = g.get_dest_vertex(ec);
      for (auto const eu : g.get_edges(u)) {
        if (g.get_dest_vertex(eu) == cur &&
            sp.distances[u] + g.get_edge_weight(eu) <=
                sp.distances[cur] + 1e-4f) {
          next = u;
          break;
        }
      }
      if (next != cur)
        break;
    }
    if (next == cur) {
      std::printf("route reconstruction stalled at %d\n", cur);
      break;
    }
    route.push_back(next);
    cur = next;
  }

  std::printf("route has %zu intersections; first hops:", route.size());
  for (std::size_t i = route.size(); i-- > 0 && i + 9 > route.size();)
    std::printf(" %d", route[i]);
  std::printf(" ...\n");
  return 0;
}
