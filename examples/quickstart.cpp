// quickstart — the paper's Listing 4, end to end.
//
// Builds a small weighted digraph, runs single-source shortest paths with
// the bulk-synchronous push traversal (sparse frontier + neighbors_expand +
// the atomic-min relaxation lambda), and prints the distances next to the
// Dijkstra oracle.
//
// Usage: quickstart
#include <cstdio>

#include "essentials.hpp"

namespace e = essentials;

int main() {
  // The graph from the paper's running discussion: a diamond with unequal
  // arms plus a tail.
  //
  //        1 --1.0--> 3 --2.0--> 4
  //       /          ^
  //  0 --1.0    2.0 /
  //       \        /
  //        2 -----+
  //         \--5.0--> 4
  e::graph::coo_t<> coo;
  coo.num_rows = coo.num_cols = 5;
  coo.push_back(0, 1, 1.0f);
  coo.push_back(0, 2, 1.0f);
  coo.push_back(1, 3, 1.0f);
  coo.push_back(2, 3, 2.0f);
  coo.push_back(2, 4, 5.0f);
  coo.push_back(3, 4, 2.0f);

  // graph_t composes underlying representations (Listing 1): CSR for push
  // traversals, CSC for pull — we only need push here.
  auto const g = e::graph::from_coo<e::graph::graph_csr>(std::move(coo));

  std::printf("graph: %d vertices, %d edges\n", g.get_num_vertices(),
              g.get_num_edges());

  // Listing 4: parallel SSSP via the essential components — frontier,
  // operator (neighbors_expand), loop structure with the frontier-empty
  // convergence condition, under the parallel synchronous policy.
  auto const result = e::algorithms::sssp(e::execution::par, g, /*source=*/0);
  auto const oracle = e::algorithms::dijkstra(g, 0);

  std::printf("\n%-8s %-12s %-12s\n", "vertex", "sssp(par)", "dijkstra");
  for (e::vertex_t v = 0; v < g.get_num_vertices(); ++v)
    std::printf("%-8d %-12.2f %-12.2f\n", v, result.distances[v],
                oracle.distances[v]);
  std::printf("\nconverged in %zu bulk-synchronous supersteps\n",
              result.iterations);
  return 0;
}
