// community_detection — structure mining on a small-world collaboration
// network: connected components (who can reach whom), triangle counting
// (clustering), k-core (cohesive groups), and a conflict-free coloring
// (e.g. meeting scheduling among collaborators).
//
// Usage: community_detection [n k beta]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "essentials.hpp"

namespace e = essentials;

int main(int argc, char** argv) {
  e::vertex_t n = 4000;
  int k = 3;
  double beta = 0.05;
  if (argc == 4) {
    n = static_cast<e::vertex_t>(std::atoi(argv[1]));
    k = std::atoi(argv[2]);
    beta = std::atof(argv[3]);
  }

  auto coo = e::generators::watts_strogatz(n, k, beta, {}, /*seed=*/11);
  e::graph::remove_self_loops(coo);
  e::graph::symmetrize(coo);
  auto const g = e::graph::from_coo<e::graph::graph_full>(std::move(coo));
  std::printf("collaboration network: %d people, %d ties (small world)\n",
              g.get_num_vertices(), g.get_num_edges());

  auto const cc = e::algorithms::connected_components(e::execution::par, g);
  std::map<e::vertex_t, std::size_t> sizes;
  for (auto const label : cc.labels)
    ++sizes[label];
  std::size_t largest = 0;
  for (auto const& [label, size] : sizes)
    largest = std::max(largest, size);
  std::printf("\ncomponents: %zu (largest holds %.1f%% of people), "
              "%zu label-propagation supersteps\n",
              cc.num_components,
              100.0 * static_cast<double>(largest) / g.get_num_vertices(),
              cc.iterations);

  auto const triangles = e::algorithms::triangle_count(e::execution::par, g);
  std::printf("triangles: %llu (closed collaborations)\n",
              static_cast<unsigned long long>(triangles));

  auto const cores = e::algorithms::kcore(e::execution::par, g);
  std::printf("max k-core: %d (the most cohesive group survives %d-degree "
              "peeling)\n",
              cores.max_core, cores.max_core);

  auto const coloring =
      e::algorithms::color_jones_plassmann(e::execution::par, g);
  std::printf("conflict-free schedule: %d time slots for %d people "
              "(%zu parallel rounds, valid: %s)\n",
              coloring.num_colors, g.get_num_vertices(), coloring.rounds,
              e::algorithms::is_valid_coloring(g, coloring.colors) ? "yes"
                                                                   : "NO");
  return 0;
}
