// geo_inference — predict user locations on a social network from a
// partially-labeled friendship graph (the "geo" application of the
// Gunrock/essentials suite).
//
// We generate a small-world friendship graph, plant ground-truth
// coordinates in clusters (cities), reveal only a fraction of them, run
// the geolocation fixed point, and report prediction error in km against
// the hidden ground truth.
//
// Usage: geo_inference [n known_fraction]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "essentials.hpp"

namespace e = essentials;

int main(int argc, char** argv) {
  e::vertex_t n = 5000;
  double known_fraction = 0.2;
  if (argc == 3) {
    n = static_cast<e::vertex_t>(std::atoi(argv[1]));
    known_fraction = std::atof(argv[2]);
  }

  // Friendship graph: small world (high clustering, short paths).
  auto coo = e::generators::watts_strogatz(n, 4, 0.02, {}, /*seed=*/9);
  e::graph::remove_self_loops(coo);
  auto const g = e::graph::from_coo<e::graph::graph_csr>(std::move(coo));

  // Ground truth: ring positions map to 8 "cities" around the globe; a
  // user's city is their ring neighborhood, so friends are usually
  // co-located — the assumption geolocation inference rests on.
  struct city_t {
    char const* name;
    double lat, lon;
  };
  std::vector<city_t> const cities{
      {"Tokyo", 35.7, 139.7},   {"Sydney", -33.9, 151.2},
      {"Mumbai", 19.1, 72.9},   {"Berlin", 52.5, 13.4},
      {"Lagos", 6.5, 3.4},      {"London", 51.5, -0.1},
      {"Sao Paulo", -23.5, -46.6}, {"Denver", 39.7, -105.0}};
  auto const city_of = [&](e::vertex_t v) {
    return cities[static_cast<std::size_t>(v) * cities.size() /
                  static_cast<std::size_t>(n)];
  };

  std::vector<e::algorithms::geo_point> truth(static_cast<std::size_t>(n));
  std::vector<e::algorithms::geo_point> seeds(static_cast<std::size_t>(n));
  e::generators::rng_t rng(4);
  std::size_t revealed = 0;
  for (e::vertex_t v = 0; v < n; ++v) {
    auto const c = city_of(v);
    // Users scatter ~0.5 degree around their city center.
    truth[static_cast<std::size_t>(v)] = {
        c.lat + rng.next_float(-0.5f, 0.5f),
        c.lon + rng.next_float(-0.5f, 0.5f), true};
    if (rng.next_bool(known_fraction)) {
      seeds[static_cast<std::size_t>(v)] = truth[static_cast<std::size_t>(v)];
      ++revealed;
    }
  }

  std::printf("friendship graph: %d users, %d ties; %zu profiles (%.0f%%) "
              "reveal a location\n",
              g.get_num_vertices(), g.get_num_edges(), revealed,
              100.0 * static_cast<double>(revealed) / n);

  auto const r = e::algorithms::geolocate(e::execution::par, g, seeds);
  std::printf("inference: %zu/%d users located after %zu sweeps\n",
              r.located, n, r.iterations);

  double total_err = 0.0, worst = 0.0;
  std::size_t predicted = 0;
  for (e::vertex_t v = 0; v < n; ++v) {
    auto const& p = r.positions[static_cast<std::size_t>(v)];
    if (!p.located || seeds[static_cast<std::size_t>(v)].located)
      continue;  // skip unlocated and the revealed anchors
    double const err =
        e::algorithms::haversine_km(p, truth[static_cast<std::size_t>(v)]);
    total_err += err;
    worst = std::max(worst, err);
    ++predicted;
  }
  if (predicted > 0)
    std::printf("prediction error over %zu hidden users: mean %.0f km, "
                "max %.0f km\n",
                predicted, total_err / static_cast<double>(predicted), worst);
  return 0;
}
