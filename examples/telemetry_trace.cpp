// telemetry_trace — record and export per-superstep traces of three
// algorithm shapes:
//
//  * direction-optimizing BFS — the trace shows the push->pull->push
//    direction decisions the Beamer heuristic makes as frontier density
//    rises and falls;
//  * SSSP (Bellman-Ford advance/filter) — frontier sizes swell and shrink
//    across relaxation waves;
//  * PageRank — a fixed-point program whose "frontier" is all of V every
//    sweep, converging by metric (L1 delta) instead of emptiness.
//
// Each run executes inside a `telemetry::scoped_recording`; afterwards the
// traces are printed as a per-superstep table and exported to
// telemetry_trace.json / telemetry_trace.csv (schema: docs/API.md).
//
// Usage: telemetry_trace [scale edge_factor [out_basename]]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "essentials.hpp"

namespace e = essentials;
namespace tel = essentials::telemetry;

namespace {

void print_trace(tel::trace const& t) {
  std::printf("\n%s: %zu supersteps, %zu edges inspected, %zu relaxed, "
              "%zu direction switch(es), %.2f ms\n",
              t.algorithm.c_str(), t.num_supersteps(),
              t.total_edges_inspected(), t.total_edges_relaxed(),
              t.direction_switches(), t.total_millis());
  std::printf("  %4s %9s %12s %12s %12s %12s %10s\n", "step", "dir",
              "frontier_in", "frontier_out", "edges_insp", "edges_relax",
              "metric");
  for (auto const& s : t.supersteps)
    std::printf("  %4zu %6s%s %12zu %12zu %12zu %12zu %10.3g\n", s.index,
                tel::to_string(s.direction), s.switched_direction ? "*" : " ",
                s.frontier_in, s.frontier_out, s.edges_inspected(),
                s.edges_relaxed(), s.metric);
}

}  // namespace

int main(int argc, char** argv) {
  e::generators::rmat_options opt;
  opt.scale = 10;
  opt.edge_factor = 16;
  opt.seed = 13;
  std::string base = "telemetry_trace";
  if (argc >= 3) {
    opt.scale = std::atoi(argv[1]);
    opt.edge_factor = static_cast<std::size_t>(std::atoi(argv[2]));
  }
  if (argc >= 4)
    base = argv[3];

  auto coo = e::generators::rmat(opt);
  e::graph::remove_self_loops(coo);
  auto const g = e::graph::from_coo<e::graph::graph_push_pull>(std::move(coo));
  std::printf("graph: %d vertices, %d edges; telemetry %s\n",
              g.get_num_vertices(), g.get_num_edges(),
              tel::compiled_in ? "compiled in" : "compiled OUT (rebuild with "
                                                 "-DESSENTIALS_TELEMETRY=ON)");

  std::vector<tel::trace> traces(3);

  {
    tel::scoped_recording rec(traces[0], "bfs_direction_optimizing");
    auto const r =
        e::algorithms::bfs_direction_optimizing(e::execution::par, g, 0);
    std::size_t reached = 0;
    for (auto const d : r.depths)
      reached += d >= 0;
    std::printf("\nDO-BFS reached %zu vertices\n", reached);
  }
  print_trace(traces[0]);

  {
    tel::scoped_recording rec(traces[1], "sssp");
    auto const r = e::algorithms::sssp(e::execution::par, g, 0);
    std::printf("\nSSSP converged in %zu iterations\n", r.iterations);
  }
  print_trace(traces[1]);

  {
    e::algorithms::pagerank_options propt;
    propt.max_iterations = 20;
    tel::scoped_recording rec(traces[2], "pagerank");
    auto const r = e::algorithms::pagerank(e::execution::par, g, propt);
    std::printf("\nPageRank: %zu sweeps, final L1 delta %.3g\n", r.iterations,
                r.final_delta);
  }
  print_trace(traces[2]);

  auto const json_path = base + ".json";
  auto const csv_path = base + ".csv";
  bool ok = tel::write_json(traces, json_path);
  ok = tel::write_csv(traces[0], csv_path) && ok;
  if (!ok) {
    std::fprintf(stderr, "failed to write %s / %s\n", json_path.c_str(),
                 csv_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (all traces) and %s (DO-BFS supersteps)\n",
              json_path.c_str(), csv_path.c_str());
  return 0;
}
