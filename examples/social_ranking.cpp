// social_ranking — influence analysis on a synthetic social network.
//
// Social graphs are power-law: a few celebrity accounts with enormous
// degree, a long tail of small ones.  R-MAT reproduces that regime.  The
// example ranks accounts with PageRank (pull/CSC gather) and HITS
// (hubs & authorities), verifies the push-PageRank scatter agrees with the
// pull gather (the §III-C duality on a non-traversal algorithm), and
// prints the top influencers alongside their degrees.
//
// Usage: social_ranking [scale edge_factor]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "essentials.hpp"

namespace e = essentials;

int main(int argc, char** argv) {
  e::generators::rmat_options opt;
  opt.scale = 12;
  opt.edge_factor = 16;
  opt.seed = 7;
  if (argc == 3) {
    opt.scale = std::atoi(argv[1]);
    opt.edge_factor = static_cast<std::size_t>(std::atoi(argv[2]));
  }

  auto coo = e::generators::rmat(opt);
  e::graph::remove_self_loops(coo);
  auto const g = e::graph::from_coo<e::graph::graph_full>(std::move(coo));
  auto const stats = e::graph::out_degree_stats(g.csr());
  std::printf("social network: %d accounts, %d follows\n",
              g.get_num_vertices(), g.get_num_edges());
  std::printf("degree skew: mean %.1f, max %zu (power-law regime)\n",
              stats.mean_degree, stats.max_degree);

  auto const pr = e::algorithms::pagerank(e::execution::par, g);
  auto const pr_push = e::algorithms::pagerank_push(e::execution::par, g);
  double push_pull_gap = 0.0;
  for (std::size_t v = 0; v < pr.ranks.size(); ++v)
    push_pull_gap = std::max(push_pull_gap,
                             std::abs(pr.ranks[v] - pr_push.ranks[v]));
  std::printf("\npagerank converged in %zu sweeps "
              "(push and pull agree to %.1e)\n",
              pr.iterations, push_pull_gap);

  auto const ht = e::algorithms::hits(e::execution::par, g);
  std::printf("hits converged in %zu sweeps\n", ht.iterations);

  std::vector<e::vertex_t> order(pr.ranks.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&pr](e::vertex_t a, e::vertex_t b) {
    return pr.ranks[a] > pr.ranks[b];
  });

  std::printf("\n%-6s %-10s %-12s %-12s %-12s %-8s\n", "rank", "account",
              "pagerank", "authority", "hub", "degree");
  for (int i = 0; i < 10 && i < static_cast<int>(order.size()); ++i) {
    auto const v = order[static_cast<std::size_t>(i)];
    std::printf("%-6d %-10d %-12.3e %-12.3e %-12.3e %-8d\n", i + 1, v,
                pr.ranks[v], ht.authorities[v], ht.hubs[v],
                g.get_out_degree(v));
  }
  return 0;
}
