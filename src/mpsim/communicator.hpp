#pragma once

/// \file mpsim/communicator.hpp
/// \brief In-process message-passing substrate: MPI-flavoured ranks,
/// mailboxes, barrier and reductions.
///
/// Substitution (DESIGN.md §2): the paper's communication pillar contrasts
/// shared-memory with message-passing, where "data is made available
/// through messages passed between processes".  We simulate processes with
/// threads that *never touch each other's algorithm state directly*: the
/// only inter-rank channel is `send`/`recv` of typed messages, plus the
/// collectives (`barrier`, `all_reduce_sum`, `all_gather_counts`).  The
/// message-passing frontier (core/frontier/distributed_frontier.hpp) is
/// built exclusively on this API, so the communication model it exercises
/// is the one the paper describes.
///
/// Payloads are flat u64 words (vertex ids, edge ids, or bit-cast weights)
/// — matching the "frontier elements as messages" use case without paying
/// for general serialization.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/types.hpp"

namespace essentials::mpsim {

/// One in-flight message.
struct message_t {
  int source = -1;
  int tag = 0;
  std::vector<std::uint64_t> payload;
};

class communicator {
 public:
  /// A world of `size` ranks.
  explicit communicator(int size);

  int size() const noexcept { return static_cast<int>(mailboxes_.size()); }

  /// Deliver `payload` to rank `to`'s mailbox.  May be called by any rank
  /// (including `to` itself — self-sends are ordinary messages).
  void send(int from, int to, int tag, std::vector<std::uint64_t> payload);

  /// Blocking receive of the next message addressed to `rank` with matching
  /// `tag` (tag < 0 matches anything).  Returns false if the communicator
  /// was shut down while waiting.
  bool recv(int rank, int tag, message_t& out);

  /// Non-blocking receive; returns false if no matching message is queued.
  bool try_recv(int rank, int tag, message_t& out);

  /// Number of queued messages for `rank` (racy snapshot).
  std::size_t mailbox_size(int rank) const;

  /// Dissemination-free central barrier: blocks until all `size()` ranks
  /// arrived.  Reusable (sense-reversing).
  void barrier();

  /// All-reduce: every rank contributes `value`; all ranks receive the sum.
  /// Internally a barrier-synchronized shared accumulator — the *collective
  /// interface* is what matters to callers, not the transport.
  std::uint64_t all_reduce_sum(int rank, std::uint64_t value);

  /// All-reduce with max combiner (e.g. "has any rank seen an error",
  /// "global maximum distance").
  std::uint64_t all_reduce_max(int rank, std::uint64_t value);

  /// One-to-all broadcast: `root`'s payload is delivered to every rank's
  /// mailbox (tag `tag`); all ranks — including root — then receive it via
  /// the returned value.  Collective: every rank must call it.
  std::vector<std::uint64_t> broadcast(int rank, int root, int tag,
                                       std::vector<std::uint64_t> payload);

  /// All-to-one gather: every rank contributes a payload, `root` receives
  /// the concatenation ordered by rank; other ranks receive empty.
  /// Collective: every rank must call it.
  std::vector<std::uint64_t> gather(int rank, int root, int tag,
                                    std::vector<std::uint64_t> payload);

  /// Wake all blocked receivers and make subsequent recv() return false.
  void shutdown();

  /// Convenience driver: spawn `size` threads, run `body(comm, rank)` on
  /// each, join all.  Exceptions in a rank propagate to the caller.
  static void run(int size,
                  std::function<void(communicator&, int)> const& body);

 private:
  struct mailbox_t {
    std::mutex mutex;
    std::condition_variable not_empty;
    std::deque<message_t> messages;
  };

  // Mailboxes are held by unique_ptr so the vector is constructible (mutex
  // is immovable).
  std::vector<std::unique_ptr<mailbox_t>> mailboxes_;
  std::atomic<bool> shutdown_{false};

  // Barrier state (central, sense-reversing).
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // all_reduce state.
  std::mutex reduce_mutex_;
  std::uint64_t reduce_accumulator_ = 0;
  std::uint64_t reduce_result_ = 0;
  int reduce_arrived_ = 0;
  std::condition_variable reduce_cv_;
  std::uint64_t reduce_generation_ = 0;
};

}  // namespace essentials::mpsim
