#include "mpsim/communicator.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <thread>

namespace essentials::mpsim {

communicator::communicator(int size) {
  expects(size >= 1, "communicator: need at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i)
    mailboxes_.push_back(std::make_unique<mailbox_t>());
}

void communicator::send(int from, int to, int tag,
                        std::vector<std::uint64_t> payload) {
  expects(to >= 0 && to < size(), "communicator::send: bad destination rank");
  expects(from >= 0 && from < size(), "communicator::send: bad source rank");
  mailbox_t& box = *mailboxes_[static_cast<std::size_t>(to)];
  {
    std::lock_guard<std::mutex> guard(box.mutex);
    box.messages.push_back(message_t{from, tag, std::move(payload)});
  }
  box.not_empty.notify_all();
}

bool communicator::recv(int rank, int tag, message_t& out) {
  expects(rank >= 0 && rank < size(), "communicator::recv: bad rank");
  mailbox_t& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    auto const it = std::find_if(
        box.messages.begin(), box.messages.end(),
        [tag](message_t const& m) { return tag < 0 || m.tag == tag; });
    if (it != box.messages.end()) {
      out = std::move(*it);
      box.messages.erase(it);
      return true;
    }
    if (shutdown_.load(std::memory_order_seq_cst))
      return false;
    box.not_empty.wait(lock);
  }
}

bool communicator::try_recv(int rank, int tag, message_t& out) {
  expects(rank >= 0 && rank < size(), "communicator::try_recv: bad rank");
  mailbox_t& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> guard(box.mutex);
  auto const it = std::find_if(
      box.messages.begin(), box.messages.end(),
      [tag](message_t const& m) { return tag < 0 || m.tag == tag; });
  if (it == box.messages.end())
    return false;
  out = std::move(*it);
  box.messages.erase(it);
  return true;
}

std::size_t communicator::mailbox_size(int rank) const {
  mailbox_t& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> guard(box.mutex);
  return box.messages.size();
}

void communicator::barrier() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  std::uint64_t const generation = barrier_generation_;
  if (++barrier_arrived_ == size()) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock,
                   [&] { return barrier_generation_ != generation; });
}

std::uint64_t communicator::all_reduce_sum(int rank, std::uint64_t value) {
  (void)rank;  // kept in the signature for API parity with MPI_Allreduce
  std::unique_lock<std::mutex> lock(reduce_mutex_);
  std::uint64_t const generation = reduce_generation_;
  reduce_accumulator_ += value;
  if (++reduce_arrived_ == size()) {
    reduce_result_ = reduce_accumulator_;
    reduce_accumulator_ = 0;
    reduce_arrived_ = 0;
    ++reduce_generation_;
    reduce_cv_.notify_all();
    return reduce_result_;
  }
  reduce_cv_.wait(lock, [&] { return reduce_generation_ != generation; });
  return reduce_result_;
}

std::uint64_t communicator::all_reduce_max(int rank, std::uint64_t value) {
  (void)rank;
  std::unique_lock<std::mutex> lock(reduce_mutex_);
  std::uint64_t const generation = reduce_generation_;
  if (reduce_arrived_ == 0)
    reduce_accumulator_ = value;
  else
    reduce_accumulator_ = std::max(reduce_accumulator_, value);
  if (++reduce_arrived_ == size()) {
    reduce_result_ = reduce_accumulator_;
    reduce_accumulator_ = 0;
    reduce_arrived_ = 0;
    ++reduce_generation_;
    reduce_cv_.notify_all();
    return reduce_result_;
  }
  reduce_cv_.wait(lock, [&] { return reduce_generation_ != generation; });
  return reduce_result_;
}

std::vector<std::uint64_t> communicator::broadcast(
    int rank, int root, int tag, std::vector<std::uint64_t> payload) {
  expects(root >= 0 && root < size(), "communicator::broadcast: bad root");
  if (rank == root) {
    for (int dst = 0; dst < size(); ++dst)
      send(root, dst, tag, payload);  // self-send too: uniform receive path
  }
  message_t msg;
  if (!recv(rank, tag, msg))
    return {};
  return std::move(msg.payload);
}

std::vector<std::uint64_t> communicator::gather(
    int rank, int root, int tag, std::vector<std::uint64_t> payload) {
  expects(root >= 0 && root < size(), "communicator::gather: bad root");
  send(rank, root, tag, std::move(payload));
  if (rank != root)
    return {};
  // Collect one message per rank; order the concatenation by source rank.
  std::vector<std::vector<std::uint64_t>> parts(
      static_cast<std::size_t>(size()));
  for (int i = 0; i < size(); ++i) {
    message_t msg;
    if (!recv(root, tag, msg))
      return {};
    parts[static_cast<std::size_t>(msg.source)] = std::move(msg.payload);
  }
  std::vector<std::uint64_t> all;
  for (auto& p : parts)
    all.insert(all.end(), p.begin(), p.end());
  return all;
}

void communicator::shutdown() {
  shutdown_.store(true, std::memory_order_seq_cst);
  for (auto& box : mailboxes_) {
    // Acquire/release each mailbox mutex so a receiver that checked the
    // flag before our store has entered wait() (releasing the mutex) by the
    // time we notify — no lost wakeup.
    { std::lock_guard<std::mutex> guard(box->mutex); }
    box->not_empty.notify_all();
  }
}

void communicator::run(int size,
                       std::function<void(communicator&, int)> const& body) {
  communicator comm(size);
  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(size));
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (int r = 0; r < size; ++r) {
    ranks.emplace_back([&, r] {
      try {
        body(comm, r);
      } catch (...) {
        {
          std::lock_guard<std::mutex> guard(error_mutex);
          if (!first_error)
            first_error = std::current_exception();
        }
        comm.shutdown();  // unblock peers so join() completes
      }
    });
  }
  for (auto& t : ranks)
    t.join();
  if (first_error)
    std::rethrow_exception(first_error);
}

}  // namespace essentials::mpsim
