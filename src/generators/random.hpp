#pragma once

/// \file generators/random.hpp
/// \brief Small, fast, deterministic PRNG used by every generator and by
/// the property-based tests.
///
/// We deliberately avoid std::mt19937 + distributions: their outputs are
/// not guaranteed identical across standard libraries, and reproducibility
/// of generated workloads across machines matters more here than
/// statistical perfection.  splitmix64 seeds a xoshiro-style core; bounded
/// ints use Lemire's multiply-shift rejection-free mapping (tiny bias,
/// irrelevant for workload generation).

#include <cstdint>

namespace essentials::generators {

/// splitmix64 — used to expand one user seed into stream seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xorshift128+ style generator; one instance per thread/stream.
class rng_t {
 public:
  explicit rng_t(std::uint64_t seed = 0x853C49E6748FEA9Bull) {
    std::uint64_t sm = seed;
    s0_ = splitmix64(sm);
    s1_ = splitmix64(sm);
    if ((s0_ | s1_) == 0)
      s1_ = 1;  // the all-zero state is a fixed point
  }

  std::uint64_t next_u64() {
    std::uint64_t x = s0_;
    std::uint64_t const y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, bound).  bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0)
      return 0;
    // Lemire multiply-shift: maps 64-bit output to [0, bound).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Bernoulli trial.
  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  std::uint64_t s0_, s1_;
};

}  // namespace essentials::generators
