#pragma once

/// \file generators/generators.hpp
/// \brief Synthetic graph generators standing in for real-world datasets.
///
/// Substitution (DESIGN.md §2): the paper's companion artifact runs on
/// downloaded SuiteSparse/SNAP graphs; offline, we generate the three
/// degree-distribution regimes that drive every design-choice crossover the
/// paper argues about:
///  - **R-MAT** (power-law, skewed): social/web graphs; stresses load
///    balance, favors pull at high frontier density and async timing.
///  - **Erdős–Rényi / Watts–Strogatz** (uniform-ish): favor BSP.
///  - **2-D grid / chain** (mesh, high diameter): road networks; many tiny
///    frontiers, stresses per-iteration overheads — where async queues and
///    sparse frontiers shine.
/// All generators are deterministic functions of their seed.

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "generators/random.hpp"
#include "graph/build.hpp"
#include "graph/formats.hpp"

namespace essentials::generators {

/// How edge weights are assigned.
struct weight_options {
  float min_weight = 1.0f;
  float max_weight = 1.0f;  ///< min == max -> constant weights
};

inline float draw_weight(rng_t& rng, weight_options const& w) {
  if (w.min_weight >= w.max_weight)
    return w.min_weight;
  return rng.next_float(w.min_weight, w.max_weight);
}

/// R-MAT (recursive matrix) generator, Chakrabarti et al. parameters.
/// Produces `num_edges` directed edges over 2^scale vertices; duplicates
/// and self-loops are possible and left to the builder's cleanup passes,
/// as in the reference implementations (Graph500).
struct rmat_options {
  int scale = 10;                ///< vertices = 2^scale
  std::size_t edge_factor = 16;  ///< edges = edge_factor * vertices
  double a = 0.57, b = 0.19, c = 0.19;  ///< d = 1 - a - b - c
  weight_options weights{1.0f, 1.0f};
  std::uint64_t seed = 1;
};

inline graph::coo_t<> rmat(rmat_options const& opt) {
  expects(opt.scale >= 1 && opt.scale < 31, "rmat: scale out of range");
  vertex_t const n = vertex_t{1} << opt.scale;
  std::size_t const m = opt.edge_factor * static_cast<std::size_t>(n);
  double const d = 1.0 - opt.a - opt.b - opt.c;
  expects(opt.a > 0 && opt.b >= 0 && opt.c >= 0 && d >= 0,
          "rmat: invalid quadrant probabilities");

  graph::coo_t<> coo;
  coo.num_rows = n;
  coo.num_cols = n;
  coo.reserve(m);
  rng_t rng(opt.seed);
  for (std::size_t i = 0; i < m; ++i) {
    vertex_t row = 0, col = 0;
    for (int bit = opt.scale - 1; bit >= 0; --bit) {
      double const r = rng.next_double();
      if (r < opt.a) {
        // top-left: nothing set
      } else if (r < opt.a + opt.b) {
        col |= vertex_t{1} << bit;
      } else if (r < opt.a + opt.b + opt.c) {
        row |= vertex_t{1} << bit;
      } else {
        row |= vertex_t{1} << bit;
        col |= vertex_t{1} << bit;
      }
    }
    coo.push_back(row, col, draw_weight(rng, opt.weights));
  }
  return coo;
}

/// Erdős–Rényi G(n, m): exactly m directed edges drawn uniformly (with
/// replacement; dedupe in the builder).
inline graph::coo_t<> erdos_renyi(vertex_t n, std::size_t m,
                                  weight_options weights = {},
                                  std::uint64_t seed = 1) {
  expects(n > 0, "erdos_renyi: need at least one vertex");
  graph::coo_t<> coo;
  coo.num_rows = n;
  coo.num_cols = n;
  coo.reserve(m);
  rng_t rng(seed);
  for (std::size_t i = 0; i < m; ++i) {
    auto const u = static_cast<vertex_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    auto const v = static_cast<vertex_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    coo.push_back(u, v, draw_weight(rng, weights));
  }
  return coo;
}

/// Watts–Strogatz small world: ring lattice with k neighbors per side,
/// each edge rewired with probability beta.  Emitted directed both ways
/// (symmetric).
inline graph::coo_t<> watts_strogatz(vertex_t n, int k, double beta,
                                     weight_options weights = {},
                                     std::uint64_t seed = 1) {
  expects(n > 2 && k >= 1 && 2 * k < n, "watts_strogatz: invalid (n, k)");
  graph::coo_t<> coo;
  coo.num_rows = n;
  coo.num_cols = n;
  coo.reserve(2 * static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  rng_t rng(seed);
  for (vertex_t u = 0; u < n; ++u) {
    for (int j = 1; j <= k; ++j) {
      vertex_t v = static_cast<vertex_t>((u + j) % n);
      if (rng.next_bool(beta)) {
        // rewire: pick a random target distinct from u
        do {
          v = static_cast<vertex_t>(rng.next_below(static_cast<std::uint64_t>(n)));
        } while (v == u);
      }
      float const w = draw_weight(rng, weights);
      coo.push_back(u, v, w);
      coo.push_back(v, u, w);
    }
  }
  return coo;
}

/// 2-D grid with 4-neighborhood, rows*cols vertices, symmetric edges —
/// the road-network stand-in (high diameter, tiny uniform degree).
inline graph::coo_t<> grid_2d(vertex_t rows, vertex_t cols,
                              weight_options weights = {},
                              std::uint64_t seed = 1) {
  expects(rows > 0 && cols > 0, "grid_2d: empty grid");
  vertex_t const n = rows * cols;
  graph::coo_t<> coo;
  coo.num_rows = n;
  coo.num_cols = n;
  coo.reserve(4 * static_cast<std::size_t>(n));
  rng_t rng(seed);
  auto const id = [cols](vertex_t r, vertex_t c) { return r * cols + c; };
  for (vertex_t r = 0; r < rows; ++r) {
    for (vertex_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        float const w = draw_weight(rng, weights);
        coo.push_back(id(r, c), id(r, c + 1), w);
        coo.push_back(id(r, c + 1), id(r, c), w);
      }
      if (r + 1 < rows) {
        float const w = draw_weight(rng, weights);
        coo.push_back(id(r, c), id(r + 1, c), w);
        coo.push_back(id(r + 1, c), id(r, c), w);
      }
    }
  }
  return coo;
}

/// Directed chain 0 -> 1 -> ... -> n-1: the worst case for BSP (one active
/// vertex per superstep) and the best case for asynchronous pipelining.
inline graph::coo_t<> chain(vertex_t n, weight_options weights = {},
                            std::uint64_t seed = 1) {
  expects(n > 0, "chain: empty");
  graph::coo_t<> coo;
  coo.num_rows = n;
  coo.num_cols = n;
  coo.reserve(static_cast<std::size_t>(n) - 1);
  rng_t rng(seed);
  for (vertex_t u = 0; u + 1 < n; ++u)
    coo.push_back(u, u + 1, draw_weight(rng, weights));
  return coo;
}

/// Star: hub 0 connected both ways to every spoke — the extreme skew case
/// for load balancing.
inline graph::coo_t<> star(vertex_t n, weight_options weights = {},
                           std::uint64_t seed = 1) {
  expects(n >= 2, "star: need a hub and one spoke");
  graph::coo_t<> coo;
  coo.num_rows = n;
  coo.num_cols = n;
  coo.reserve(2 * (static_cast<std::size_t>(n) - 1));
  rng_t rng(seed);
  for (vertex_t v = 1; v < n; ++v) {
    float const w = draw_weight(rng, weights);
    coo.push_back(0, v, w);
    coo.push_back(v, 0, w);
  }
  return coo;
}

/// Complete directed graph on n vertices (no self loops): the dense-frontier
/// extreme where pull traversal and bitmap frontiers win.
inline graph::coo_t<> complete(vertex_t n, weight_options weights = {},
                               std::uint64_t seed = 1) {
  expects(n >= 1 && n <= 4096, "complete: n too large (O(n^2) edges)");
  graph::coo_t<> coo;
  coo.num_rows = n;
  coo.num_cols = n;
  coo.reserve(static_cast<std::size_t>(n) * (static_cast<std::size_t>(n) - 1));
  rng_t rng(seed);
  for (vertex_t u = 0; u < n; ++u)
    for (vertex_t v = 0; v < n; ++v)
      if (u != v)
        coo.push_back(u, v, draw_weight(rng, weights));
  return coo;
}

}  // namespace essentials::generators
