#pragma once

/// \file parallel/for_each.hpp
/// \brief Bulk index-space primitives (for-each, reduce) on the persistent
/// thread pool.
///
/// These are the raw building blocks the core operators compile down to.
/// `parallel_for` is a BSP superstep (implicit barrier on return);
/// `parallel_for_nowait` is its fire-and-forget sibling used by the
/// `par_nosync` execution policy.  The prefix-sum primitives live in
/// parallel/scan.hpp (included here so historical `for_each.hpp` users of
/// `exclusive_scan` keep compiling).

#include <cstddef>
#include <functional>
#include <mutex>
#include <numeric>
#include <vector>

#include "parallel/scan.hpp"
#include "parallel/thread_pool.hpp"

namespace essentials::parallel {

/// Invoke `fn(i)` for every i in [begin, end) using the given pool, blocking
/// until done.  `grain` bounds scheduling overhead for cheap bodies.
template <typename F>
void parallel_for(thread_pool& pool, std::size_t begin, std::size_t end,
                  F&& fn, std::size_t grain = 256) {
  if (end <= begin)
    return;
  std::size_t const n = end - begin;
  pool.run_blocked(
      n,
      [&fn, begin](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          fn(begin + i);
      },
      grain);
}

/// parallel_for on the default pool.
template <typename F>
void parallel_for(std::size_t begin, std::size_t end, F&& fn,
                  std::size_t grain = 256) {
  parallel_for(default_pool(), begin, end, std::forward<F>(fn), grain);
}

/// Fire-and-forget bulk launch: chunks of [begin, end) are submitted to the
/// pool and the call returns immediately.  The caller is responsible for any
/// eventual synchronization (pool.wait_idle()), or for designing the
/// algorithm so that none is needed — the asynchronous timing model.
///
/// `fn` is copied into each task (CP.31: pass small state by value); capture
/// pointers/references to shared algorithm state explicitly.
template <typename F>
void parallel_for_nowait(thread_pool& pool, std::size_t begin,
                         std::size_t end, F fn, std::size_t grain = 256) {
  if (end <= begin)
    return;
  std::size_t const n = end - begin;
  std::size_t const step = pool.bulk_step(n, grain);
  for (std::size_t lo = 0; lo < n; lo += step) {
    std::size_t const hi = std::min(n, lo + step);
    pool.submit([fn, begin, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i)
        fn(begin + i);
    });
  }
}

/// Blocking reduction: each chunk folds locally with `fn`, chunk results are
/// merged into the total under a lock (one lock per chunk, not per element —
/// CP.43: the critical section is a single `combine`).  `identity` must be
/// the identity element of `combine`, and `combine` must be commutative and
/// associative since chunks complete in arbitrary order.
template <typename T, typename MapF, typename CombineF>
T parallel_reduce(thread_pool& pool, std::size_t begin, std::size_t end,
                  T identity, MapF&& fn, CombineF&& combine,
                  std::size_t grain = 256) {
  if (end <= begin)
    return identity;
  std::size_t const n = end - begin;
  T total = identity;
  std::mutex total_mutex;
  pool.run_blocked(
      n,
      [&](std::size_t lo, std::size_t hi) {
        T acc = identity;
        for (std::size_t i = lo; i < hi; ++i)
          acc = combine(acc, fn(begin + i));
        std::lock_guard<std::mutex> guard(total_mutex);
        total = combine(total, acc);
      },
      grain);
  return total;
}

/// parallel_reduce on the default pool.
template <typename T, typename MapF, typename CombineF>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, MapF&& fn,
                  CombineF&& combine, std::size_t grain = 256) {
  return parallel_reduce(default_pool(), begin, end, identity,
                         std::forward<MapF>(fn),
                         std::forward<CombineF>(combine), grain);
}

}  // namespace essentials::parallel
