#pragma once

/// \file parallel/scan.hpp
/// \brief Blocked parallel prefix-sum primitives on the persistent thread
/// pool — the load-balancing workhorse of CSR advance.
///
/// Two entry points share one three-phase structure (per-chunk upsweep,
/// serial combine of the few chunk totals, parallel downsweep):
///
///  - `exclusive_scan(pool, in, n, out)` scans a materialized input array;
///  - `exclusive_scan_map(pool, n, f, out)` scans `f(0), f(1), …, f(n-1)`
///    without materializing them — the degree-scan shape: advance passes
///    `f(i) = out_degree(active[i])` and gets per-vertex work offsets
///    directly, paying one extra evaluation of `f` per element instead of
///    an O(n) staging array.
///
/// Both are deterministic for a fixed (n, pool size): chunk boundaries come
/// from the pool's documented `bulk_step` chunking contract, per-chunk sums
/// are combined serially in chunk order, and integer accumulation is exact —
/// so every substrate (stealing or central queue, NUMA on or off) produces
/// bit-identical offsets.  frontier_gen's compaction phase and the
/// edge-balanced/degree-class advance strategies both build on these.

#include <cstddef>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace essentials::parallel {

namespace detail {

/// Shared three-phase blocked scan over the virtual sequence `get(i)`.
/// `bulk_step` is the pool's chunking contract: passing the step back in as
/// the grain makes run_blocked reproduce exactly these chunk boundaries, so
/// `lo / step` is a stable, collision-free chunk index.
template <typename OutT, typename GetF>
OutT blocked_exclusive_scan(thread_pool& pool, std::size_t n, GetF&& get,
                            OutT* out) {
  if (n == 0)
    return OutT{0};
  std::size_t const step = pool.bulk_step(n, 1);

  std::vector<OutT> chunk_total((n + step - 1) / step, OutT{0});
  pool.run_blocked(
      n,
      [&](std::size_t lo, std::size_t hi) {
        OutT acc{0};
        for (std::size_t i = lo; i < hi; ++i)
          acc += static_cast<OutT>(get(i));
        chunk_total[lo / step] = acc;
      },
      step);

  OutT running{0};
  for (auto& t : chunk_total) {
    OutT const next = running + t;
    t = running;  // becomes the chunk's base offset
    running = next;
  }

  pool.run_blocked(
      n,
      [&](std::size_t lo, std::size_t hi) {
        OutT acc = chunk_total[lo / step];
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = acc;
          acc += static_cast<OutT>(get(i));
        }
      },
      step);
  return running;
}

}  // namespace detail

/// Exclusive prefix sum of `in` into `out` (out[0] = 0); returns the grand
/// total.  Scanning out-degrees yields each lane's output offsets without
/// locks.
template <typename InT, typename OutT>
OutT exclusive_scan(thread_pool& pool, InT const* in, std::size_t n,
                    OutT* out) {
  return detail::blocked_exclusive_scan(
      pool, n, [in](std::size_t i) { return in[i]; }, out);
}

/// exclusive_scan on the default pool.
template <typename InT, typename OutT>
OutT exclusive_scan(InT const* in, std::size_t n, OutT* out) {
  return exclusive_scan(default_pool(), in, n, out);
}

/// Exclusive prefix sum of the virtual sequence `f(0) … f(n-1)` into `out`;
/// returns the grand total.  `f` must be pure (it is evaluated twice per
/// index, once per sweep) and cheap — the intended shape is an O(1) degree
/// lookup.
template <typename OutT, typename MapF>
OutT exclusive_scan_map(thread_pool& pool, std::size_t n, MapF&& f,
                        OutT* out) {
  return detail::blocked_exclusive_scan(pool, n, f, out);
}

/// exclusive_scan_map on the default pool.
template <typename OutT, typename MapF>
OutT exclusive_scan_map(std::size_t n, MapF&& f, OutT* out) {
  return exclusive_scan_map(default_pool(), n, std::forward<MapF>(f), out);
}

}  // namespace essentials::parallel
