#pragma once

/// \file parallel/first_touch.hpp
/// \brief First-touch memory placement: page-granular parallel initialization
/// so dense arrays land on the NUMA node of the threads that will stream them.
///
/// Linux places a page on the node of the thread that *first writes* it.
/// `std::vector<T>`'s value-initializing resize defeats that: the constructing
/// thread zero-writes every page, so a CSR built on the main thread parks the
/// whole graph on one node and every remote socket pays interconnect latency
/// for each edge read — the exact bandwidth wall the paper's streaming model
/// says we cannot afford.  Two pieces fix it:
///
///  1. `default_init_allocator` / `numa_vector`: a vector whose `resize`
///     *default*-initializes trivial elements — no write, no page touch.
///     Sizing a `numa_vector` claims address space but leaves physical
///     placement undecided.
///  2. `first_touch_fill(pool, ...)`: page-granular parallel fill through the
///     pool's deterministic chunking.  Each worker's first write places the
///     pages of the chunks it executes, distributing the array across the
///     nodes of the workers that will later stream it (the same chunk map
///     `run_blocked` uses for operator supersteps — placement matches use).
///
/// On single-node machines (the CI container) both pieces still run; they
/// just cannot change placement, which is what keeps the NUMA-on path a
/// measured no-op there and lets the differential suite assert bit-identical
/// results against the flat baseline.  Everything honours `numa_enabled()`:
/// with the knob off, helpers collapse to the plain serial fill.

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "parallel/topology.hpp"

namespace essentials::parallel {

/// Allocator adaptor that turns value-initialization into
/// default-initialization: `construct(p)` with no arguments becomes a no-op
/// for trivially-constructible T, so `vector::resize(n)` claims capacity
/// without writing — and therefore without touching — the new pages.
/// Everything else (copy/move construct, destroy, allocate) forwards to the
/// underlying allocator unchanged.
template <typename T, typename A = std::allocator<T>>
class default_init_allocator : public A {
  using traits = std::allocator_traits<A>;

 public:
  template <typename U>
  struct rebind {
    using other = default_init_allocator<
        U, typename traits::template rebind_alloc<U>>;
  };

  using A::A;

  /// The money shot: value-init requests with no arguments become
  /// default-init, which for trivial T emits no store at all.
  template <typename U>
  void construct(U* ptr) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }

  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    traits::construct(static_cast<A&>(*this), ptr,
                      std::forward<Args>(args)...);
  }
};

template <typename A>
inline constexpr bool is_default_init_allocator_v = false;
template <typename T, typename A>
inline constexpr bool
    is_default_init_allocator_v<default_init_allocator<T, A>> = true;

/// `std::vector<T>` and a default-init-allocated vector are distinct types,
/// so the standard allocator-homogeneous operator== does not apply.  This
/// heterogeneous overload (found by ADL through the allocator's namespace;
/// the reversed argument order comes from C++20 rewritten candidates) keeps
/// element-wise comparisons — tests, callers holding plain vectors —
/// working across the allocator boundary.  Constrained so same-allocator
/// comparisons still resolve to the standard operator.
template <typename T, typename A1, typename A2>
  requires(!is_default_init_allocator_v<A2>)
bool operator==(std::vector<T, default_init_allocator<T, A1>> const& a,
                std::vector<T, A2> const& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

/// A vector whose resize leaves new elements uninitialized (trivial T):
/// size it first, then establish page placement with `first_touch_fill`.
/// Interchangeable with `std::vector<T>` element-wise; the allocator only
/// changes *when* pages are first written, never what the bytes are after a
/// fill.  Used for the framework's big interior arrays (CSR offsets/indices,
/// lane buffers, bitset words, per-vertex scratch).
template <typename T>
using numa_vector = std::vector<T, default_init_allocator<T>>;

/// Page granularity for placement chunking.  4 KiB everywhere we run;
/// getting this wrong only blurs placement at chunk edges, never correctness.
inline constexpr std::size_t first_touch_page_bytes = 4096;

/// Arrays below this size are not worth a parallel fill: the fork-join cost
/// exceeds the fill, and small arrays live in cache anyway.
inline constexpr std::size_t first_touch_min_bytes = std::size_t{1} << 20;

/// Fill [data, data + n) with `value`, first-touching pages in parallel via
/// the pool's deterministic chunk map when `numa` is set (and the array is
/// big enough to matter); plain serial fill otherwise.  The parallel and
/// serial paths write byte-identical contents — only physical page placement
/// differs — so callers never need a differential carve-out for this.
template <typename T>
void first_touch_fill(thread_pool& pool, T* data, std::size_t n,
                      T const& value, bool numa = numa_enabled()) {
  static_assert(std::is_trivially_copyable_v<T>,
                "first_touch_fill is for trivially copyable element types");
  if (n == 0)
    return;
  std::size_t const bytes = n * sizeof(T);
  if (!numa || bytes < first_touch_min_bytes || pool.size() < 2) {
    for (std::size_t i = 0; i < n; ++i)
      data[i] = value;
    return;
  }
  // Chunk on page boundaries so no two workers share a page's first write.
  std::size_t const per_page =
      std::max<std::size_t>(first_touch_page_bytes / sizeof(T), 1);
  pool.run_blocked(
      n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          data[i] = value;
      },
      per_page);
}

/// Size + place in one call: a `numa_vector<T>` of n copies of `value`,
/// pages distributed across the pool's workers when `numa` is set.  The
/// NUMA-off path is the flat baseline: serial fill, same bytes.
template <typename T>
numa_vector<T> first_touch_vector(thread_pool& pool, std::size_t n,
                                  T const& value = T{},
                                  bool numa = numa_enabled()) {
  numa_vector<T> v;
  v.resize(n);  // default-init: address space only, no page touch
  first_touch_fill(pool, v.data(), n, value, numa);
  return v;
}

}  // namespace essentials::parallel
