#pragma once

/// \file parallel/sort.hpp
/// \brief Parallel merge sort on the thread pool — the comparison-sort
/// primitive behind graph construction (canonical edge ordering) and
/// frontier uniquify at scale.
///
/// Straightforward blocked design: sort P' chunks in parallel with
/// std::sort, then merge pairwise in parallel rounds.  O(n log n) work,
/// O(log chunks) merge rounds, one auxiliary buffer.  Stability is NOT
/// guaranteed (chunk-local std::sort is unstable); use sort_stable for the
/// builder paths that must preserve first-occurrence order.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace essentials::parallel {

/// Parallel unstable sort of [first, last) by `less`.
template <typename T, typename Less = std::less<T>>
void sort(thread_pool& pool, std::vector<T>& data, Less less = {}) {
  std::size_t const n = data.size();
  std::size_t const lanes = pool.size() + 1;
  if (n < 4096 || lanes == 1) {
    std::sort(data.begin(), data.end(), less);
    return;
  }

  // Chunk boundaries.
  std::size_t const chunks_pow2 = [&] {
    std::size_t c = 1;
    while (c < 2 * lanes)
      c <<= 1;
    return c;
  }();
  std::size_t const step = (n + chunks_pow2 - 1) / chunks_pow2;
  std::vector<std::size_t> bounds;
  for (std::size_t b = 0; b <= n; b += step)
    bounds.push_back(b);
  if (bounds.back() != n)
    bounds.push_back(n);

  // Sort each chunk in parallel.
  pool.run_blocked(
      bounds.size() - 1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c)
          std::sort(data.begin() + static_cast<std::ptrdiff_t>(bounds[c]),
                    data.begin() + static_cast<std::ptrdiff_t>(bounds[c + 1]),
                    less);
      },
      1);

  // Pairwise merge rounds, ping-ponging between data and aux.
  std::vector<T> aux(n);
  std::vector<T>* src = &data;
  std::vector<T>* dst = &aux;
  while (bounds.size() > 2) {
    std::vector<std::size_t> next_bounds;
    std::size_t const pairs = (bounds.size() - 1 + 1) / 2;
    pool.run_blocked(
        pairs,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t p = lo; p < hi; ++p) {
            std::size_t const a = bounds[2 * p];
            std::size_t const b = bounds[2 * p + 1];
            std::size_t const c =
                2 * p + 2 < bounds.size() ? bounds[2 * p + 2] : b;
            std::merge(src->begin() + static_cast<std::ptrdiff_t>(a),
                       src->begin() + static_cast<std::ptrdiff_t>(b),
                       src->begin() + static_cast<std::ptrdiff_t>(b),
                       src->begin() + static_cast<std::ptrdiff_t>(c),
                       dst->begin() + static_cast<std::ptrdiff_t>(a), less);
          }
        },
        1);
    for (std::size_t p = 0; 2 * p < bounds.size(); ++p)
      next_bounds.push_back(bounds[2 * p]);
    if (next_bounds.back() != n)
      next_bounds.push_back(n);
    bounds = std::move(next_bounds);
    std::swap(src, dst);
  }
  if (src != &data)
    data = std::move(aux);
}

/// Parallel sort on the default pool.
template <typename T, typename Less = std::less<T>>
void sort(std::vector<T>& data, Less less = {}) {
  sort(default_pool(), data, less);
}

}  // namespace essentials::parallel
