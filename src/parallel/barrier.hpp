#pragma once

/// \file parallel/barrier.hpp
/// \brief Decentralized synchronization primitives for the execution
/// substrate: a sense-reversing combining-tree barrier for fixed
/// participant sets, and a reusable striped countdown latch for bulk
/// (fork-join) completion.
///
/// Both exist to replace *flat* synchronization — a single atomic that
/// every lane hammers — with structures whose contention is spread across
/// cache lines and combined up a tree, the same shift katana makes from
/// `Barrier_Simple` to `Barrier_Topo`/`Barrier_MCS` at production core
/// counts.
///
/// ## tree_barrier
///
/// A classic sense-reversing combining tree (fan-in 4).  Participants are
/// numbered [0, P); participant i arrives at leaf i/4; the last arriver at
/// each node propagates one arrival to the parent; the last arriver at the
/// root becomes the *winner*: it resets every node for the next generation
/// and flips the global sense, releasing all waiters.  Reusable across an
/// unbounded number of generations (the regression suite drives 10k
/// supersteps through one instance).
///
/// Waiting is adaptive: a short spin (the common case when participants
/// arrive together), then `std::atomic::wait` — a futex park, so mixed
/// fast/slow participant sets do not burn cores.
///
/// ## completion_latch
///
/// The fork-join completion structure behind `thread_pool::run_blocked` in
/// stealing mode, replacing the flat `std::latch`.  `reset(count)` arms it
/// for `count` completions; `count_down(index)` retires completion
/// `index`.  Internally the count is striped over up to 8 cache-line-
/// padded counters by `index % stripes`: work-stealing means *any* lane
/// may retire any chunk, so stripes are keyed by the chunk id (whose
/// distribution is known at reset time), not by the finishing thread.  A
/// stripe reaching zero retires one arrival at the root — two levels of
/// combining, no single line written by every chunk.  Reusable: one stack
/// object serves every superstep of an enactment.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace essentials::parallel {

namespace detail {
/// Short adaptive spin before parking: cheap when the awaited flip is
/// nanoseconds away, harmless (one yield loop) when it is not.  Kept small
/// because CI containers may have fewer cores than participants.
inline constexpr int barrier_spin_iterations = 128;
}  // namespace detail

class tree_barrier {
 public:
  static constexpr std::size_t fan_in = 4;

  explicit tree_barrier(std::size_t participants)
      : tree_barrier(participants, {}) {}

  /// Topology-aware layout: `slot_of[i]` is participant i's leaf position.
  /// `parallel::topo_leaf_order` (topology.hpp) computes a permutation that
  /// places one socket's participants in contiguous slots, so their arrivals
  /// share leaf subtrees and combine *within* the socket — exactly one
  /// arrival per socket subtree crosses toward the root (the katana
  /// `Barrier_Topo` shift).  An empty `slot_of` is the identity layout; a
  /// non-empty one must be a permutation of [0, participants).
  tree_barrier(std::size_t participants, std::vector<std::size_t> slot_of)
      : participants_(participants == 0 ? 1 : participants),
        slot_of_(std::move(slot_of)) {
    // Build the combining tree level by level: level 0's node count is
    // ceil(P / fan_in); each level combines fan_in children of the one
    // below, until a single root remains.
    std::size_t width = participants_;
    std::size_t first = 0;
    while (true) {
      std::size_t const nodes = (width + fan_in - 1) / fan_in;
      for (std::size_t i = 0; i < nodes; ++i) {
        std::size_t const children =
            i + 1 < nodes ? fan_in : width - (nodes - 1) * fan_in;
        levels_.push_back({first + i, children});
      }
      level_offsets_.push_back(first);
      first += nodes;
      width = nodes;
      if (nodes == 1)
        break;
    }
    nodes_ = std::vector<node>(levels_.size());
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      nodes_[i].expected = levels_[i].expected;
      nodes_[i].remaining.store(
          static_cast<std::int64_t>(levels_[i].expected),
          std::memory_order_relaxed);
    }
  }

  tree_barrier(tree_barrier const&) = delete;
  tree_barrier& operator=(tree_barrier const&) = delete;

  std::size_t participants() const noexcept { return participants_; }

  /// Completed generations — a post-hoc observability hook for tests (the
  /// generation/sense-flip oracle), not a synchronization device.
  std::uint64_t generation() const noexcept {
    return sense_.load(std::memory_order_acquire);
  }

  /// Arrive as participant `id` (in [0, participants)) and wait until all
  /// participants of this generation arrived.  The last arriver resets the
  /// tree and releases everyone; exactly one caller per id per generation.
  void arrive_and_wait(std::size_t id) {
    std::uint64_t const my_generation = sense_.load(std::memory_order_acquire);
    // Climb: the last arriver at each node carries one arrival upward.
    // Under a topology layout the participant climbs from its *assigned*
    // leaf slot; the tree shape itself is layout-oblivious.
    std::size_t level = 0;
    std::size_t index = slot_of_.empty() ? id : slot_of_[id];
    while (true) {
      node& n = nodes_[level_offsets_[level] + index / fan_in];
      if (n.remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) {
        wait_for_flip(my_generation);
        return;
      }
      if (level_offsets_[level] + index / fan_in == nodes_.size() - 1)
        break;  // last arriver at the root: this caller is the winner
      index /= fan_in;
      ++level;
    }
    // Winner: every participant has arrived (each node reached zero), so no
    // one touches `remaining` until the sense flips — reset is race-free.
    for (std::size_t i = 0; i < nodes_.size(); ++i)
      nodes_[i].remaining.store(static_cast<std::int64_t>(nodes_[i].expected),
                                std::memory_order_relaxed);
    sense_.fetch_add(1, std::memory_order_acq_rel);
    sense_.notify_all();
  }

 private:
  struct alignas(64) node {
    std::atomic<std::int64_t> remaining{0};
    std::size_t expected = 0;
  };
  struct node_shape {
    std::size_t index;
    std::size_t expected;
  };

  void wait_for_flip(std::uint64_t my_generation) {
    for (int spin = 0; spin < detail::barrier_spin_iterations; ++spin) {
      if (sense_.load(std::memory_order_acquire) != my_generation)
        return;
      std::this_thread::yield();
    }
    while (sense_.load(std::memory_order_acquire) == my_generation)
      sense_.wait(my_generation, std::memory_order_acquire);
  }

  std::size_t participants_;
  std::vector<std::size_t> slot_of_;     // leaf permutation; empty = identity
  std::vector<node_shape> levels_;       // construction-time shape
  std::vector<std::size_t> level_offsets_;
  std::vector<node> nodes_;              // leaves first, root last
  alignas(64) std::atomic<std::uint64_t> sense_{0};
};

class completion_latch {
 public:
  static constexpr std::size_t max_stripes = 8;

  completion_latch() = default;
  explicit completion_latch(std::size_t count) { reset(count); }

  completion_latch(completion_latch const&) = delete;
  completion_latch& operator=(completion_latch const&) = delete;

  /// Arm for `count` completions with indices [0, count).  Index i retires
  /// on stripe i % S where S = min(max_stripes, count), so stripe quotas
  /// are exact by construction.  Must not race count_down/wait — the
  /// owner arms the latch *before* distributing the work that counts it
  /// down, which is the only ordering run_blocked needs.
  void reset(std::size_t count) {
    stripes_used_ =
        count < max_stripes ? (count == 0 ? 1 : count) : max_stripes;
    std::size_t open = 0;
    for (std::size_t s = 0; s < max_stripes; ++s) {
      std::size_t const quota =
          s < stripes_used_
              ? count / stripes_used_ + (s < count % stripes_used_ ? 1 : 0)
              : 0;
      stripes_[s].remaining.store(static_cast<std::int64_t>(quota),
                                  std::memory_order_relaxed);
      open += quota != 0;
    }
    open_stripes_.store(static_cast<std::int64_t>(open),
                        std::memory_order_release);
  }

  /// Retire completion `index` (any thread; once per index per arming).
  void count_down(std::size_t index) {
    stripe& s = stripes_[index % stripes_used_];
    if (s.remaining.fetch_sub(1, std::memory_order_acq_rel) != 1)
      return;
    if (open_stripes_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      open_stripes_.notify_all();
  }

  /// True once every armed completion retired (or the latch was armed with
  /// zero).  Acquire: a true result orders after every count_down.
  bool done() const noexcept {
    return open_stripes_.load(std::memory_order_acquire) <= 0;
  }

  /// Block until done: brief spin (chunks usually finish within the
  /// caller's own drain loop), then futex park.
  void wait() const {
    for (int spin = 0; spin < detail::barrier_spin_iterations; ++spin) {
      if (done())
        return;
      std::this_thread::yield();
    }
    std::int64_t observed;
    while ((observed = open_stripes_.load(std::memory_order_acquire)) > 0)
      open_stripes_.wait(observed, std::memory_order_acquire);
  }

 private:
  struct alignas(64) stripe {
    std::atomic<std::int64_t> remaining{0};
  };
  stripe stripes_[max_stripes];
  std::size_t stripes_used_ = 1;
  alignas(64) std::atomic<std::int64_t> open_stripes_{0};
};

}  // namespace essentials::parallel
