#pragma once

/// \file parallel/topology.hpp
/// \brief Hardware-topology discovery and placement policy — the NUMA half
/// of the execution substrate.
///
/// The paper frames graph analytics as memory-bandwidth-bound: operator
/// throughput is set by how fast edges stream out of DRAM.  On multi-socket
/// machines that bandwidth is *per socket*, and remote-node CSR reads cost
/// 1.5–2x a local read — so once work-stealing removed the central-queue
/// bottleneck, cross-socket traffic is the next scaling wall.  This header
/// provides the three ingredients the rest of `parallel/` threads through
/// the hot path:
///
///  1. **Discovery** (`machine_topology::discover`): a sysfs parser — no
///     hwloc dependency — that maps each online CPU to its SMT core, its
///     package (socket) and its NUMA node.  Parsing is rooted at an
///     arbitrary directory so unit tests drive it with canned fixtures
///     (1-socket, 2-socket, SMT-off); any failure collapses to a clean
///     single-socket `flat()` topology, which makes every placement policy
///     a no-op rather than an error.
///  2. **Placement policy**: `assign_workers` packs pool workers onto CPUs
///     in locality order (node-major, then package, then core, SMT
///     siblings adjacent — the katana `HWTopoLinux` packing);
///     `tiered_victims` derives each worker's steal order from that packing
///     (same-core SMT siblings, then same-socket, then remote sockets);
///     `topo_leaf_order` permutes tree-barrier participants so arrivals
///     combine within a socket before crossing the interconnect (katana's
///     `Barrier_Topo` shift).
///  3. **Knobs**: `ESSENTIALS_NUMA` gates every placement decision (default
///     on; the off path is a live differential baseline, exactly like
///     `ESSENTIALS_CENTRAL_QUEUE`), `ESSENTIALS_PIN` opts workers into
///     affinity pinning, and `ESSENTIALS_STEAL_SEED` makes the randomized
///     victim sweep reproducible for torture-suite debugging.
///
/// Everything here is observation + pure policy: no thread is created, no
/// memory is placed.  The thread pool (thread_pool.cpp) consumes the
/// policies; first-touch placement lives in parallel/first_touch.hpp.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace essentials::parallel {

/// One logical CPU and where it sits in the machine.
struct topo_cpu {
  int id = -1;       ///< logical cpu number (sysfs cpuN)
  int core = -1;     ///< core id within the package (SMT siblings share it)
  int package = -1;  ///< physical package (socket) id
  int node = -1;     ///< NUMA node id
};

/// The machine as the placement policies see it.  Counts are derived from
/// `cpus` at construction; `discovered` records whether this came from a
/// real sysfs tree (false = the flat fallback, where every placement policy
/// degenerates to the topology-oblivious behaviour).
struct machine_topology {
  std::vector<topo_cpu> cpus;  ///< online CPUs, sorted by id
  std::size_t num_packages = 1;
  std::size_t num_nodes = 1;
  std::size_t num_cores = 0;  ///< distinct (package, core) pairs
  bool smt = false;           ///< any core carries >1 hardware thread
  bool discovered = false;    ///< true iff parsed from a sysfs tree

  std::size_t num_cpus() const noexcept { return cpus.size(); }

  /// Single-socket fallback: n CPUs, each its own core, one package, one
  /// node.  The topology every policy treats as "nothing to exploit".
  static machine_topology flat(std::size_t n);

  /// Parse a sysfs tree rooted at `sysfs_root` (normally "/sys"; tests
  /// pass fixture directories).  Reads
  ///   <root>/devices/system/cpu/online
  ///   <root>/devices/system/cpu/cpuN/topology/{physical_package_id,core_id}
  ///   <root>/devices/system/node/nodeK/cpulist
  /// Missing node directories degrade to one node; a missing/unreadable
  /// cpu list degrades to `flat(hardware_concurrency)`.
  static machine_topology discover(std::string const& sysfs_root);
};

/// The cached machine topology ("/sys", discovered once per process).
machine_topology const& system_topology();

/// Parse a kernel cpu-list string ("0-3,8,10-11") into cpu ids.  Malformed
/// fragments are skipped; the result is sorted and deduplicated.  Exposed
/// for the fixture tests.
std::vector<int> parse_cpu_list(std::string const& list);

// ---------------------------------------------------------------------------
// Knobs
// ---------------------------------------------------------------------------

/// `ESSENTIALS_NUMA`: master switch for every topology-derived placement
/// decision (steal tiers, barrier layout, first-touch, pinning).  Default
/// on (or off when compiled with -DESSENTIALS_NUMA_OFF); the environment
/// variable overrides either way — truthy (`1`, `true`, `on`, `yes`)
/// enables, falsy (`0`, `false`, `off`, `no`) disables.  Read once and
/// cached, like `default_queue_mode()`: the off path is the flat
/// differential baseline CI keeps alive.
bool numa_enabled();

/// `ESSENTIALS_PIN`: opt workers into CPU-affinity pinning (default off —
/// pinning helps dedicated servers and hurts shared/oversubscribed hosts).
/// Only consulted when `numa_enabled()`; read once and cached.
bool pin_enabled();

/// Pin the calling thread to one CPU.  Returns true on success; false on
/// unsupported platforms or kernel refusal (callers treat failure as a
/// performance shrug, never an error).
bool pin_thread_to_cpu(int cpu);

/// `ESSENTIALS_STEAL_SEED`: when set, the base seed for every worker's
/// victim-selection RNG (mixed with the worker's lane id), making steal
/// sweeps — and therefore torture-suite interleavings — reproducible.
/// Read per call (not cached) so tests can set it before building a pool.
std::optional<std::uint64_t> steal_seed();

// ---------------------------------------------------------------------------
// Placement policies (pure functions of a topology)
// ---------------------------------------------------------------------------

/// Map `workers` pool workers onto CPUs in locality order: CPUs sorted by
/// (node, package, core, id) — SMT siblings adjacent, sockets contiguous —
/// assigned round-robin when workers exceed CPUs.  Returns cpu id per
/// worker.  This packed order is what makes "neighboring worker" mean
/// "topologically near worker" for the steal tiers and barrier layout.
std::vector<int> assign_workers(machine_topology const& topo,
                                std::size_t workers);

/// A worker's victims, nearest first.  `victims` holds worker indices
/// (never `self`); [0, smt_end) share self's core, [smt_end, package_end)
/// share its package, [package_end, size()) are remote packages.  The
/// stealing sweep randomizes *within* a tier but always exhausts nearer
/// tiers first, so a steal crosses the interconnect only when the whole
/// local socket is dry.
struct steal_tiers {
  std::vector<std::size_t> victims;
  std::size_t smt_end = 0;
  std::size_t package_end = 0;
};

/// Tiered steal order for worker `self` under the given worker→cpu
/// assignment.  With a flat topology the first two tiers are empty — the
/// sweep degenerates to the randomized all-victims order.
steal_tiers tiered_victims(machine_topology const& topo,
                           std::vector<int> const& cpu_of_worker,
                           std::size_t self);

/// Leaf-slot permutation for a `tree_barrier` over `participants` workers:
/// slot_of[i] is participant i's leaf position, chosen so participants of
/// one package occupy contiguous slots (= shared subtrees; arrivals combine
/// within the socket and a single arrival crosses to the root).
/// Participants beyond the assignment (external lanes) keep their natural
/// positions.  Always a valid permutation of [0, participants).
std::vector<std::size_t> topo_leaf_order(machine_topology const& topo,
                                         std::vector<int> const& cpu_of_worker,
                                         std::size_t participants);

/// NUMA node of a cpu id under `topo` (0 when unknown — the flat answer).
int node_of_cpu(machine_topology const& topo, int cpu);

}  // namespace essentials::parallel
