#include "parallel/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>

#if defined(__linux__)
#include <sched.h>
#endif

namespace essentials::parallel {

namespace {

/// First line of a file, or nullopt when unreadable.
std::optional<std::string> read_line(std::filesystem::path const& path) {
  std::ifstream in(path);
  if (!in)
    return std::nullopt;
  std::string line;
  std::getline(in, line);
  if (in.bad())
    return std::nullopt;
  return line;
}

std::optional<int> read_int(std::filesystem::path const& path) {
  auto const line = read_line(path);
  if (!line)
    return std::nullopt;
  try {
    return std::stoi(*line);
  } catch (...) {
    return std::nullopt;
  }
}

bool env_truthy(char const* name, bool fallback) {
  char const* env = std::getenv(name);
  if (env == nullptr)
    return fallback;
  std::string value(env);
  for (char& c : value)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return !(value.empty() || value == "0" || value == "false" ||
           value == "off" || value == "no");
}

/// Sort key placing a cpu in locality order: node-major, then package,
/// then core (SMT siblings adjacent), then id for determinism.
auto locality_key(topo_cpu const& c) {
  return std::tuple(c.node, c.package, c.core, c.id);
}

}  // namespace

std::vector<int> parse_cpu_list(std::string const& list) {
  std::vector<int> cpus;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty())
      continue;
    try {
      auto const dash = item.find('-');
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(item));
      } else {
        int const lo = std::stoi(item.substr(0, dash));
        int const hi = std::stoi(item.substr(dash + 1));
        for (int c = lo; c <= hi && c - lo < 65536; ++c)
          cpus.push_back(c);
      }
    } catch (...) {
      // malformed fragment: skip it, keep the rest
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  cpus.erase(std::remove_if(cpus.begin(), cpus.end(),
                            [](int c) { return c < 0; }),
             cpus.end());
  return cpus;
}

machine_topology machine_topology::flat(std::size_t n) {
  machine_topology topo;
  if (n == 0)
    n = 1;
  topo.cpus.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    topo.cpus.push_back({static_cast<int>(i), static_cast<int>(i), 0, 0});
  topo.num_packages = 1;
  topo.num_nodes = 1;
  topo.num_cores = n;
  topo.smt = false;
  topo.discovered = false;
  return topo;
}

machine_topology machine_topology::discover(std::string const& sysfs_root) {
  namespace fs = std::filesystem;
  std::size_t const hw = std::max<std::size_t>(
      std::thread::hardware_concurrency(), 1);

  fs::path const cpu_root = fs::path(sysfs_root) / "devices/system/cpu";
  auto const online = read_line(cpu_root / "online");
  if (!online)
    return flat(hw);
  std::vector<int> const ids = parse_cpu_list(*online);
  if (ids.empty())
    return flat(hw);

  machine_topology topo;
  topo.cpus.reserve(ids.size());
  for (int id : ids) {
    fs::path const tdir = cpu_root / ("cpu" + std::to_string(id)) / "topology";
    topo_cpu cpu;
    cpu.id = id;
    cpu.package = read_int(tdir / "physical_package_id").value_or(0);
    cpu.core = read_int(tdir / "core_id").value_or(id);
    cpu.node = 0;  // filled from the node cpulists below
    topo.cpus.push_back(cpu);
  }

  // NUMA nodes: nodeK/cpulist names the cpus of node K.  Missing node
  // directories (containers, non-NUMA kernels) leave every cpu on node 0.
  fs::path const node_root = fs::path(sysfs_root) / "devices/system/node";
  std::error_code ec;
  if (fs::is_directory(node_root, ec)) {
    for (auto const& entry : fs::directory_iterator(node_root, ec)) {
      std::string const name = entry.path().filename().string();
      if (name.rfind("node", 0) != 0)
        continue;
      int node_id = -1;
      try {
        node_id = std::stoi(name.substr(4));
      } catch (...) {
        continue;
      }
      auto const cpulist = read_line(entry.path() / "cpulist");
      if (!cpulist)
        continue;
      for (int id : parse_cpu_list(*cpulist))
        for (auto& cpu : topo.cpus)
          if (cpu.id == id)
            cpu.node = node_id;
    }
  }

  std::set<int> packages, nodes;
  std::set<std::pair<int, int>> cores;
  std::map<std::pair<int, int>, int> threads_per_core;
  for (auto const& cpu : topo.cpus) {
    packages.insert(cpu.package);
    nodes.insert(cpu.node);
    cores.insert({cpu.package, cpu.core});
    ++threads_per_core[{cpu.package, cpu.core}];
  }
  topo.num_packages = std::max<std::size_t>(packages.size(), 1);
  topo.num_nodes = std::max<std::size_t>(nodes.size(), 1);
  topo.num_cores = std::max<std::size_t>(cores.size(), 1);
  topo.smt = std::any_of(threads_per_core.begin(), threads_per_core.end(),
                         [](auto const& kv) { return kv.second > 1; });
  topo.discovered = true;
  return topo;
}

machine_topology const& system_topology() {
  static machine_topology const topo = [] {
    machine_topology t = machine_topology::discover("/sys");
    if (t.cpus.empty())
      t = machine_topology::flat(
          std::max<std::size_t>(std::thread::hardware_concurrency(), 1));
    return t;
  }();
  return topo;
}

bool numa_enabled() {
  static bool const enabled = [] {
#if defined(ESSENTIALS_NUMA_OFF)
    bool fallback = false;
#else
    bool fallback = true;
#endif
    return env_truthy("ESSENTIALS_NUMA", fallback);
  }();
  return enabled;
}

bool pin_enabled() {
  static bool const enabled = env_truthy("ESSENTIALS_PIN", false);
  return enabled && numa_enabled();
}

bool pin_thread_to_cpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0)
    return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

std::optional<std::uint64_t> steal_seed() {
  char const* env = std::getenv("ESSENTIALS_STEAL_SEED");
  if (env == nullptr || *env == '\0')
    return std::nullopt;
  try {
    return static_cast<std::uint64_t>(std::stoull(env));
  } catch (...) {
    return std::nullopt;
  }
}

std::vector<int> assign_workers(machine_topology const& topo,
                                std::size_t workers) {
  std::vector<topo_cpu> ordered = topo.cpus;
  if (ordered.empty())
    ordered.push_back({0, 0, 0, 0});
  std::sort(ordered.begin(), ordered.end(),
            [](topo_cpu const& a, topo_cpu const& b) {
              return locality_key(a) < locality_key(b);
            });
  std::vector<int> cpu_of(workers);
  for (std::size_t w = 0; w < workers; ++w)
    cpu_of[w] = ordered[w % ordered.size()].id;
  return cpu_of;
}

steal_tiers tiered_victims(machine_topology const& topo,
                           std::vector<int> const& cpu_of_worker,
                           std::size_t self) {
  steal_tiers tiers;
  if (self >= cpu_of_worker.size())
    return tiers;
  auto const place = [&](int cpu) -> topo_cpu {
    for (auto const& c : topo.cpus)
      if (c.id == cpu)
        return c;
    return {cpu, cpu, 0, 0};
  };
  topo_cpu const me = place(cpu_of_worker[self]);

  std::vector<std::size_t> same_core, same_package, remote;
  for (std::size_t w = 0; w < cpu_of_worker.size(); ++w) {
    if (w == self)
      continue;
    topo_cpu const other = place(cpu_of_worker[w]);
    if (other.package == me.package && other.core == me.core)
      same_core.push_back(w);
    else if (other.package == me.package)
      same_package.push_back(w);
    else
      remote.push_back(w);
  }
  tiers.victims.reserve(same_core.size() + same_package.size() +
                        remote.size());
  tiers.victims.insert(tiers.victims.end(), same_core.begin(),
                       same_core.end());
  tiers.smt_end = tiers.victims.size();
  tiers.victims.insert(tiers.victims.end(), same_package.begin(),
                       same_package.end());
  tiers.package_end = tiers.victims.size();
  tiers.victims.insert(tiers.victims.end(), remote.begin(), remote.end());
  return tiers;
}

std::vector<std::size_t> topo_leaf_order(machine_topology const& topo,
                                         std::vector<int> const& cpu_of_worker,
                                         std::size_t participants) {
  std::vector<std::size_t> by_slot(participants);
  for (std::size_t i = 0; i < participants; ++i)
    by_slot[i] = i;
  auto const key = [&](std::size_t p) {
    if (p < cpu_of_worker.size()) {
      for (auto const& c : topo.cpus)
        if (c.id == cpu_of_worker[p])
          return std::tuple(0, c.node, c.package, c.core,
                            static_cast<int>(p));
    }
    // Unassigned participants (external lanes) sort after every worker,
    // keeping their relative order.
    return std::tuple(1, 0, 0, 0, static_cast<int>(p));
  };
  std::stable_sort(by_slot.begin(), by_slot.end(),
                   [&](std::size_t a, std::size_t b) { return key(a) < key(b); });
  std::vector<std::size_t> slot_of(participants);
  for (std::size_t slot = 0; slot < participants; ++slot)
    slot_of[by_slot[slot]] = slot;
  return slot_of;
}

int node_of_cpu(machine_topology const& topo, int cpu) {
  for (auto const& c : topo.cpus)
    if (c.id == cpu)
      return c.node < 0 ? 0 : c.node;
  return 0;
}

}  // namespace essentials::parallel
