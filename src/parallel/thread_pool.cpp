#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <latch>
#include <stdexcept>
#include <string>

namespace essentials::parallel {

thread_pool::thread_pool(std::size_t num_threads) {
  if (num_threads == 0)
    num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stopping_ = true;
  }
  has_work_.notify_all();
  for (auto& w : workers_)
    w.join();
}

void thread_pool::submit(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> guard(mutex_);
    queue_.push_back(std::move(task));
  }
  has_work_.notify_one();
}

void thread_pool::submit_urgent(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> guard(mutex_);
    urgent_queue_.push_back(std::move(task));
  }
  has_work_.notify_one();
}

std::size_t thread_pool::discard_pending() {
  std::size_t discarded;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    discarded = queue_.size() + urgent_queue_.size();
    queue_.clear();
    urgent_queue_.clear();
  }
  if (discarded != 0 &&
      pending_.fetch_sub(discarded, std::memory_order_acq_rel) == discarded)
    all_idle_.notify_all();
  return discarded;
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      has_work_.wait(lock, [this] {
        return stopping_ || !queue_.empty() || !urgent_queue_.empty();
      });
      if (stopping_ && queue_.empty() && urgent_queue_.empty())
        return;
      auto& source = urgent_queue_.empty() ? queue_ : urgent_queue_;
      task = std::move(source.front());
      source.pop_front();
    }
    busy_.fetch_add(1, std::memory_order_relaxed);
    task();  // user exceptions terminate by design: a lost superstep chunk
             // would otherwise silently corrupt the algorithm's state.
    busy_.fetch_sub(1, std::memory_order_relaxed);
    // Destroy the callable *before* signaling idle: captured state (e.g. a
    // par_nosync telemetry probe, shared_ptr-owned buffers) must be released
    // by the time wait_idle() returns, or callers tearing down that state
    // right after the barrier would race with this destructor.
    task = nullptr;
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      all_idle_.notify_all();
  }
}

void thread_pool::run_blocked(
    std::size_t n,
    std::function<void(std::size_t, std::size_t)> const& fn,
    std::size_t grain) {
  if (n == 0)
    return;
  grain = std::max<std::size_t>(grain, 1);
  std::size_t const lanes = size() + 1;  // workers + calling thread
  std::size_t const max_chunks = 4 * lanes;
  std::size_t chunks = std::min(max_chunks, (n + grain - 1) / grain);
  std::size_t const step = (n + chunks - 1) / chunks;
  chunks = (n + step - 1) / step;  // recompute after rounding step up

  if (chunks == 1) {
    fn(0, n);
    return;
  }

  // The calling thread takes the first chunk itself (one fewer enqueue and
  // guarantees forward progress even if all workers are busy elsewhere).
  std::latch done(static_cast<std::ptrdiff_t>(chunks - 1));
  for (std::size_t c = 1; c < chunks; ++c) {
    std::size_t const begin = c * step;
    std::size_t const end = std::min(n, begin + step);
    submit([&fn, &done, begin, end] {
      fn(begin, end);
      done.count_down();
    });
  }
  fn(0, std::min(n, step));
  done.wait();
}

void thread_pool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

thread_pool& default_pool() {
  static thread_pool pool([] {
    if (char const* env = std::getenv("ESSENTIALS_NUM_THREADS")) {
      int const parsed = std::atoi(env);
      if (parsed > 0)
        return static_cast<std::size_t>(parsed);
    }
    std::size_t hw = std::thread::hardware_concurrency();
    return std::max<std::size_t>(hw, 4);
  }());
  return pool;
}

}  // namespace essentials::parallel
