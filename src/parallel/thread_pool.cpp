#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <latch>
#include <string>

#include "parallel/barrier.hpp"
#include "parallel/work_deque.hpp"

namespace essentials::parallel {

namespace {

/// External (non-worker) lane slots per stealing pool: enough for every
/// engine runner plus the main thread with headroom.  When exhausted,
/// run_blocked falls back to injector distribution — correct, just
/// centralized — so this is a performance bound, not a correctness one.
constexpr std::size_t external_lane_slots = 32;

/// Thread-local lane registry: which lane (if any) this thread holds in
/// each pool it has touched, keyed by a process-unique pool id so entries
/// for destroyed pools can never alias a live one.  A handful of 16-byte
/// entries per thread — linear scan beats any map.
struct lane_key {
  std::uint64_t pool_id;
  std::size_t lane;
};

std::vector<lane_key>& tls_lanes() {
  thread_local std::vector<lane_key> lanes;
  return lanes;
}

std::uint64_t next_pool_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread xorshift64 state for randomized victim selection.  Seeded
/// from the thread id; forced odd so the state can never collapse to 0.
std::uint64_t& steal_rng() {
  thread_local std::uint64_t state =
      static_cast<std::uint64_t>(
          std::hash<std::thread::id>{}(std::this_thread::get_id())) |
      1;
  return state;
}

std::size_t next_victim(std::size_t lanes) {
  std::uint64_t& s = steal_rng();
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return static_cast<std::size_t>(s % lanes);
}

}  // namespace

/// One lane of the stealing substrate: lanes [0, size()) belong to the
/// workers; the rest are claimable by external threads (engine runners, the
/// main thread) so their run_blocked chunks are deque-distributed too.
/// Tasks are heap-allocated std::functions — the deque stores trivially
/// copyable pointers; ownership transfers to whichever thread dequeues.
struct thread_pool::lane {
  work_deque<std::function<void()>*> deque;
  std::atomic<bool> claimed{false};  // meaningful for external slots only
};

steal_order default_steal_order() {
  return numa_enabled() ? steal_order::tiered : steal_order::flat;
}

queue_mode default_queue_mode() {
  static queue_mode const mode = [] {
#if defined(ESSENTIALS_CENTRAL_QUEUE)
    bool central = true;
#else
    bool central = false;
#endif
    if (char const* env = std::getenv("ESSENTIALS_CENTRAL_QUEUE")) {
      std::string value(env);
      for (char& c : value)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      central = !(value.empty() || value == "0" || value == "false" ||
                  value == "off" || value == "no");
    }
    return central ? queue_mode::central : queue_mode::stealing;
  }();
  return mode;
}

thread_pool::thread_pool(std::size_t num_threads)
    : thread_pool(num_threads, default_queue_mode(), default_steal_order()) {}

thread_pool::thread_pool(std::size_t num_threads, queue_mode mode)
    : thread_pool(num_threads, mode, default_steal_order()) {}

thread_pool::thread_pool(std::size_t num_threads, queue_mode mode,
                         steal_order order)
    : mode_(mode), order_(order), pool_id_(next_pool_id()) {
  num_workers_ = num_threads == 0 ? 1 : num_threads;
  if (mode_ == queue_mode::stealing) {
    lanes_.reserve(num_workers_ + external_lane_slots);
    for (std::size_t i = 0; i < num_workers_ + external_lane_slots; ++i)
      lanes_.push_back(std::make_unique<lane>());
    // Topology packing: worker i runs near cpu_of_worker_[i] (advisory
    // unless ESSENTIALS_PIN), and — under tiered order — steals from SMT
    // siblings, then its socket, then remote sockets.  Built before any
    // worker starts, so workers read it without synchronization.
    cpu_of_worker_ = assign_workers(system_topology(), num_workers_);
    if (order_ == steal_order::tiered) {
      tiers_.reserve(num_workers_);
      for (std::size_t i = 0; i < num_workers_; ++i)
        tiers_.push_back(tiered_victims(system_topology(), cpu_of_worker_, i));
    }
  }
  workers_.reserve(num_workers_);
  for (std::size_t i = 0; i < num_workers_; ++i) {
    if (mode_ == queue_mode::stealing)
      workers_.emplace_back([this, i] { worker_loop_stealing(i); });
    else
      workers_.emplace_back([this] { worker_loop_central(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stopping_ = true;
    ++wake_counter_;
  }
  has_work_.notify_all();
  for (auto& w : workers_)
    w.join();
  // Workers drain every visible task before exiting, and run_blocked never
  // returns with chunks still queued, so lane deques are empty here in any
  // contract-respecting program.  Sweep anyway so a violation leaks tasks,
  // not memory.
  for (auto const& l : lanes_)
    while (auto stranded = l->deque.steal())
      delete *stranded;
}

void thread_pool::submit(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  if (mode_ == queue_mode::stealing) {
    std::size_t const self = lane_id();
    if (self != no_lane && self < num_workers_) {
      // Worker origin: own deque, newest-first for the owner, oldest-first
      // for thieves — submission order is preserved across a steal.
      lanes_[self]->deque.push(new std::function<void()>(std::move(task)));
      notify_sleepers(false);
      return;
    }
    // External origin: FIFO injector, same ordering the central queue gave.
    {
      std::lock_guard<std::mutex> guard(mutex_);
      queue_.push_back(std::move(task));
      queue_size_.store(queue_.size(), std::memory_order_seq_cst);
    }
    notify_sleepers(false);
    return;
  }
  {
    std::lock_guard<std::mutex> guard(mutex_);
    queue_.push_back(std::move(task));
  }
  has_work_.notify_one();
}

void thread_pool::submit_urgent(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> guard(mutex_);
    urgent_queue_.push_back(std::move(task));
    if (mode_ == queue_mode::stealing)
      urgent_size_.store(urgent_queue_.size(), std::memory_order_seq_cst);
  }
  if (mode_ == queue_mode::stealing)
    notify_sleepers(false);
  else
    has_work_.notify_one();
}

std::size_t thread_pool::discard_pending() {
  std::size_t discarded;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    discarded = queue_.size() + urgent_queue_.size();
    queue_.clear();
    urgent_queue_.clear();
    queue_size_.store(0, std::memory_order_seq_cst);
    urgent_size_.store(0, std::memory_order_seq_cst);
  }
  // Stealing substrate: also drain every lane deque.  steal() is
  // any-thread-safe, so the drain needs no cooperation from workers; a
  // worker racing us for a task simply wins it (and runs it — "queued but
  // not yet started" is decided by that race, same as the central queue).
  for (auto const& l : lanes_)
    while (auto stranded = l->deque.steal()) {
      delete *stranded;
      ++discarded;
    }
  if (discarded != 0 &&
      pending_.fetch_sub(discarded, std::memory_order_acq_rel) == discarded) {
    // Notify under the lock: a wait_idle caller between its predicate check
    // and its wait must not miss this (same window as finish_one).
    std::lock_guard<std::mutex> guard(mutex_);
    all_idle_.notify_all();
  }
  return discarded;
}

// --- completion plumbing shared by both substrates -------------------------

void thread_pool::execute(std::function<void()>&& task) {
  busy_.fetch_add(1, std::memory_order_relaxed);
  task();  // user exceptions terminate by design: a lost superstep chunk
           // would otherwise silently corrupt the algorithm's state.
  busy_.fetch_sub(1, std::memory_order_relaxed);
  // Destroy the callable *before* signaling idle: captured state (e.g. a
  // par_nosync telemetry probe, shared_ptr-owned buffers) must be released
  // by the time wait_idle() returns, or callers tearing down that state
  // right after the barrier would race with this destructor.  This is also
  // what makes "every deque empty" insufficient for idleness: a stolen
  // task holds its pending slot until this line has run.
  task = nullptr;
  finish_one();
}

void thread_pool::finish_one() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Take the lock before notifying so a wait_idle caller that saw
    // pending != 0 is already parked (or still holds the lock) — without
    // it the notification can fall into the check-then-wait window.
    std::lock_guard<std::mutex> guard(mutex_);
    all_idle_.notify_all();
  }
}

void thread_pool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

// --- central substrate -----------------------------------------------------

void thread_pool::worker_loop_central() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      has_work_.wait(lock, [this] {
        return stopping_ || !queue_.empty() || !urgent_queue_.empty();
      });
      if (stopping_ && queue_.empty() && urgent_queue_.empty())
        return;
      auto& source = urgent_queue_.empty() ? queue_ : urgent_queue_;
      task = std::move(source.front());
      source.pop_front();
    }
    execute(std::move(task));
  }
}

void thread_pool::run_blocked_central(
    std::size_t n, std::function<void(std::size_t, std::size_t)> const& fn,
    std::size_t step, std::size_t chunks) {
  // The calling thread takes the first chunk itself (one fewer enqueue and
  // guarantees forward progress even if all workers are busy elsewhere).
  std::latch done(static_cast<std::ptrdiff_t>(chunks - 1));
  for (std::size_t c = 1; c < chunks; ++c) {
    std::size_t const begin = c * step;
    std::size_t const end = std::min(n, begin + step);
    submit([&fn, &done, begin, end] {
      fn(begin, end);
      done.count_down();
    });
  }
  fn(0, std::min(n, step));
  done.wait();
}

// --- stealing substrate ----------------------------------------------------

void thread_pool::worker_loop_stealing(std::size_t id) {
  tls_lanes().push_back({pool_id_, id});
  if (auto const seed = steal_seed()) {
    // Deterministic victim streams: splitmix64 of (seed, lane) gives each
    // worker a distinct but reproducible sweep, so a torture-suite failure
    // replays with ESSENTIALS_STEAL_SEED=<seed>.
    std::uint64_t z = *seed + 0x9e3779b97f4a7c15ull * (id + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    steal_rng() = z | 1;
  }
  if (pin_enabled() && id < cpu_of_worker_.size())
    pin_thread_to_cpu(cpu_of_worker_[id]);  // failure = performance shrug
  for (;;) {
    if (auto task = find_task(id)) {
      execute(std::move(*task));
      continue;
    }
    // Sleep protocol (store-buffer / Dekker pairing with every producer):
    //   sleeper: sleepers_ += 1 (seq_cst); re-probe all work (seq_cst reads)
    //   producer: publish work (seq_cst store); read sleepers_ (seq_cst)
    // At least one side observes the other, so work published concurrently
    // with this window either shows up in the re-probe or triggers a wake.
    std::unique_lock<std::mutex> lock(mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (visible_work()) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      continue;  // lock released; re-run the full find_task sweep
    }
    if (stopping_) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      return;  // stopping and nothing visible anywhere: backlog is drained
    }
    std::uint64_t const seen = wake_counter_;
    has_work_.wait(lock,
                   [&] { return wake_counter_ != seen || stopping_; });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::optional<std::function<void()>> thread_pool::find_task(std::size_t self) {
  // 1. The urgent class: strict priority over everything, including this
  //    worker's own deque — deadline-critical chunks must not wait behind a
  //    backlog of batch work, stolen or not.
  if (urgent_size_.load(std::memory_order_seq_cst) != 0)
    if (auto task = pop_injector(urgent_size_, urgent_queue_))
      return task;
  // 2. Own deque, newest first: fork-join chunks this worker just produced
  //    are the cache-hottest work in the system.
  if (auto ptr = lanes_[self]->deque.pop()) {
    std::unique_ptr<std::function<void()>> owned(*ptr);
    return std::move(*owned);
  }
  // 3. The injector: external fire-and-forget submissions, FIFO.
  if (queue_size_.load(std::memory_order_seq_cst) != 0)
    if (auto task = pop_injector(queue_size_, queue_))
      return task;
  // 4. Steal sweep.  Tiered order (workers only — external lanes have no
  //    topology placement): exhaust same-core SMT siblings, then the same
  //    socket, then remote sockets, then external lanes, randomizing the
  //    start *within* each tier so siblings don't convoy on one victim — a
  //    steal crosses the interconnect only when the whole local socket is
  //    dry.  Flat order: uniform-random sweep over all lanes (the PR 6
  //    baseline).  A miss either way is fine — the sleep path re-probes
  //    deterministically.
  auto const try_steal =
      [&](std::size_t victim) -> std::optional<std::function<void()>> {
    if (auto ptr = lanes_[victim]->deque.steal()) {
      std::unique_ptr<std::function<void()>> owned(*ptr);
      return std::move(*owned);
    }
    return std::nullopt;
  };
  if (order_ == steal_order::tiered && self < num_workers_) {
    auto const& tiers = tiers_[self];
    std::size_t const externals = lanes_.size() - num_workers_;
    for (std::size_t pass = 0; pass < 2; ++pass) {
      std::size_t tier_begin = 0;
      for (std::size_t const tier_end :
           {tiers.smt_end, tiers.package_end, tiers.victims.size()}) {
        std::size_t const count = tier_end - tier_begin;
        if (count != 0) {
          std::size_t const start = next_victim(count);
          for (std::size_t k = 0; k < count; ++k)
            if (auto task = try_steal(
                    tiers.victims[tier_begin + (start + k) % count]))
              return task;
        }
        tier_begin = tier_end;
      }
      if (externals != 0) {
        std::size_t const start = next_victim(externals);
        for (std::size_t k = 0; k < externals; ++k)
          if (auto task =
                  try_steal(num_workers_ + (start + k) % externals))
            return task;
      }
    }
    return std::nullopt;
  }
  std::size_t const lanes = lanes_.size();
  for (std::size_t attempt = 0; attempt < 2 * lanes; ++attempt) {
    std::size_t const victim = next_victim(lanes);
    if (victim == self)
      continue;
    if (auto task = try_steal(victim))
      return task;
  }
  return std::nullopt;
}

std::optional<std::function<void()>> thread_pool::pop_injector(
    std::atomic<std::size_t>& size_mirror,
    std::deque<std::function<void()>>& q) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (q.empty())
    return std::nullopt;
  std::function<void()> task = std::move(q.front());
  q.pop_front();
  size_mirror.store(q.size(), std::memory_order_seq_cst);
  return task;
}

bool thread_pool::visible_work() const {
  if (urgent_size_.load(std::memory_order_seq_cst) != 0 ||
      queue_size_.load(std::memory_order_seq_cst) != 0)
    return true;
  for (auto const& l : lanes_)
    if (!l->deque.empty_seq_cst())
      return true;
  return false;
}

void thread_pool::notify_sleepers(bool all) {
  // Producer side of the sleep protocol: the work was already published
  // with a seq_cst store (deque bottom or injector size mirror) before this
  // seq_cst read — a sleeper we miss here is one that will see the work.
  if (sleepers_.load(std::memory_order_seq_cst) == 0)
    return;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ++wake_counter_;
  }
  if (all)
    has_work_.notify_all();
  else
    has_work_.notify_one();
}

std::size_t thread_pool::lane_id() const {
  for (auto const& entry : tls_lanes())
    if (entry.pool_id == pool_id_)
      return entry.lane;
  return no_lane;
}

std::size_t thread_pool::max_lanes() const noexcept {
  return mode_ == queue_mode::stealing ? lanes_.size() : num_workers_ + 1;
}

std::size_t thread_pool::register_external_lane() {
  if (mode_ != queue_mode::stealing)
    return no_lane;
  std::size_t const existing = lane_id();
  if (existing != no_lane)
    return existing;
  for (std::size_t i = num_workers_; i < lanes_.size(); ++i) {
    bool expected = false;
    if (lanes_[i]->claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      tls_lanes().push_back({pool_id_, i});
      return i;
    }
  }
  return no_lane;  // all slots claimed; run_blocked falls back to injector
}

void thread_pool::run_blocked(
    std::size_t n, std::function<void(std::size_t, std::size_t)> const& fn,
    std::size_t grain) {
  if (n == 0)
    return;
  grain = std::max<std::size_t>(grain, 1);
  std::size_t const step = bulk_step(n, grain);
  std::size_t const chunks = (n + step - 1) / step;
  if (chunks == 1) {
    fn(0, n);
    return;
  }
  if (mode_ == queue_mode::central) {
    run_blocked_central(n, fn, step, chunks);
    return;
  }

  std::size_t self = lane_id();
  if (self == no_lane)
    self = register_external_lane();

  // `fn` and `done` are captured by reference: both outlive every chunk
  // because this frame blocks on the latch, and no finisher touches the
  // latch after its count_down (the striped design keeps the final
  // decrement the last access).
  pending_.fetch_add(chunks - 1, std::memory_order_acq_rel);
  completion_latch done(chunks - 1);

  if (self != no_lane) {
    auto& dq = lanes_[self]->deque;
    for (std::size_t c = 1; c < chunks; ++c) {
      std::size_t const begin = c * step;
      std::size_t const end = std::min(n, begin + step);
      dq.push(new std::function<void()>([&fn, &done, begin, end, c] {
        fn(begin, end);
        done.count_down(c - 1);
      }));
    }
    notify_sleepers(true);
    fn(0, std::min(n, step));  // chunk 0 inline: forward progress always
    // Help while the barrier is open: drain our own bottom (our newest
    // chunks — or, when run_blocked nests, the innermost level's chunks
    // first, which is exactly the completion order the nesting needs).
    // An empty pop means the rest were stolen; park on the latch.
    while (!done.done()) {
      auto ptr = dq.pop();
      if (!ptr)
        break;
      std::unique_ptr<std::function<void()>> owned(*ptr);
      execute(std::move(*owned));
    }
    done.wait();
    return;
  }

  // No lane available (external slots exhausted): distribute through the
  // injector.  Correct, just centrally queued — and we still help drain.
  {
    std::lock_guard<std::mutex> guard(mutex_);
    for (std::size_t c = 1; c < chunks; ++c) {
      std::size_t const begin = c * step;
      std::size_t const end = std::min(n, begin + step);
      queue_.emplace_back([&fn, &done, begin, end, c] {
        fn(begin, end);
        done.count_down(c - 1);
      });
    }
    queue_size_.store(queue_.size(), std::memory_order_seq_cst);
  }
  notify_sleepers(true);
  fn(0, std::min(n, step));
  while (!done.done()) {
    auto task = pop_injector(queue_size_, queue_);
    if (!task)
      break;
    execute(std::move(*task));
  }
  done.wait();
}

thread_pool& default_pool() {
  static thread_pool pool([] {
    if (char const* env = std::getenv("ESSENTIALS_NUM_THREADS")) {
      int const parsed = std::atoi(env);
      if (parsed > 0)
        return static_cast<std::size_t>(parsed);
    }
    std::size_t hw = std::thread::hardware_concurrency();
    return std::max<std::size_t>(hw, 4);
  }());
  return pool;
}

}  // namespace essentials::parallel
