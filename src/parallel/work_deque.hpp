#pragma once

/// \file parallel/work_deque.hpp
/// \brief Chase–Lev work-stealing deque: the per-worker task store of the
/// decentralized thread-pool substrate.
///
/// One deque per worker lane.  The owner treats it as a LIFO stack on the
/// *bottom* end (`push`/`pop`) — newest work first, which keeps fork-join
/// chunks cache-hot — while thieves remove the *oldest* entry from the
/// *top* end (`steal`), which is exactly the entry the owner is least
/// likely to touch soon.  Owner and thieves only ever contend on the
/// single boundary element, resolved by one CAS on `top`.
///
/// This is the Chase–Lev dynamic circular deque (SPAA'05) in the
/// standard-atomics formulation.  Two deliberate deviations from the
/// weakest-possible-fence version of Lê et al. (PPoPP'13):
///
///  - the `top`/`bottom` cross-thread races use `seq_cst` operations
///    instead of standalone `atomic_thread_fence`s.  ThreadSanitizer does
///    not model standalone fences (it would report false races on every
///    steal), and the store-buffer (Dekker) pattern between `push` and the
///    pool's sleep protocol needs seq_cst stores anyway.  On x86-64 this
///    costs one locked instruction per push — far below the mutex the
///    central queue takes per operation.
///  - slots are `std::atomic<T>` rather than plain values: a thief may
///    read a slot that the owner is concurrently recycling after an index
///    wrap; the claim CAS on `top` then fails and the value is discarded,
///    but the read itself must not be a data race.
///
/// Growth: owner-only.  A full ring is replaced by one of twice the
/// capacity; the retired ring is kept alive (chained off the new one)
/// until the deque is destroyed, because a concurrent thief may still be
/// reading a slot of the old ring.  Rings are released in the destructor —
/// bounded by log2(peak size) retired arrays per deque lifetime.
///
/// `T` must be trivially copyable (the pool stores task pointers).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>

namespace essentials::parallel {

template <typename T>
class work_deque {
  static_assert(std::is_trivially_copyable_v<T>,
                "work_deque slots are std::atomic<T>: T must be trivially "
                "copyable (store pointers to anything bigger)");

 public:
  /// `initial_capacity` is rounded up to a power of two (minimum 2).  Small
  /// capacities are legal and exercised by the growth torture tests.
  explicit work_deque(std::size_t initial_capacity = 64) {
    std::size_t cap = 2;
    while (cap < initial_capacity)
      cap *= 2;
    ring_chain_ = std::make_unique<ring>(cap);
    ring_.store(ring_chain_.get(), std::memory_order_relaxed);
  }

  work_deque(work_deque const&) = delete;
  work_deque& operator=(work_deque const&) = delete;

  /// Owner only: append `value` at the bottom.  Grows the ring when full.
  /// The publishing `bottom` store is seq_cst: it is one side of the
  /// store-buffer handshake with sleeping workers (see thread_pool.cpp) and
  /// the release edge thieves acquire the slot contents through.
  void push(T value) {
    std::int64_t const b = bottom_.load(std::memory_order_relaxed);
    std::int64_t const t = top_.load(std::memory_order_acquire);
    ring* a = ring_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(a->capacity))
      a = grow(a, t, b);
    a->put(b, value);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only: remove the newest entry (LIFO).  Returns nullopt when the
  /// deque is empty or a thief won the race for the last element.
  std::optional<T> pop() {
    std::int64_t const b = bottom_.load(std::memory_order_relaxed) - 1;
    ring* const a = ring_.load(std::memory_order_relaxed);
    // Publish the claim on slot b before inspecting top: a thief that
    // reads the old bottom afterwards targets an index we no longer own.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t <= b) {
      T value = a->get(b);
      if (t == b) {
        // Exactly one element left: arbitrate with thieves via top.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          bottom_.store(b + 1, std::memory_order_relaxed);
          return std::nullopt;  // a thief took it first
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
      return value;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);  // was empty; restore
    return std::nullopt;
  }

  /// Any thread: remove the oldest entry (FIFO from the top).  Returns
  /// nullopt when the deque looks empty *or* the claim CAS lost a race —
  /// callers treat both as "try another victim", so a failed steal never
  /// spins here.
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    std::int64_t const b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b)
      return std::nullopt;
    ring* const a = ring_.load(std::memory_order_acquire);
    T value = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return std::nullopt;  // lost to the owner's pop or another thief
    return value;
  }

  /// Approximate size (racy snapshot; monitoring and victim-selection
  /// heuristics only, never synchronization).
  std::size_t size() const noexcept {
    std::int64_t const b = bottom_.load(std::memory_order_relaxed);
    std::int64_t const t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty() const noexcept { return size() == 0; }

  /// Sequentially-consistent emptiness probe — the reader side of the
  /// store-buffer handshake between `push` (seq_cst bottom store) and a
  /// worker deciding to sleep.  A sleeper that incremented the pool's
  /// sleeper count (seq_cst) and then sees `true` here is guaranteed the
  /// pusher will observe that count and wake it.  Use `empty()` everywhere
  /// the answer is only a heuristic.
  bool empty_seq_cst() const noexcept {
    return bottom_.load(std::memory_order_seq_cst) <=
           top_.load(std::memory_order_seq_cst);
  }

  /// Current ring capacity (owner's view; tests of the growth path).
  std::size_t capacity() const noexcept {
    return ring_.load(std::memory_order_relaxed)->capacity;
  }

 private:
  struct ring {
    explicit ring(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<T>[]>(cap)) {}
    std::size_t const capacity;
    std::size_t const mask;
    std::unique_ptr<std::atomic<T>[]> slots;
    std::unique_ptr<ring> retired_predecessor;  // kept alive for thieves

    T get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      slots[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
  };

  /// Owner only: double the capacity, copying the live range [t, b).  The
  /// old ring stays allocated (a thief may be mid-read); the release store
  /// of `ring_` publishes the copied slots to thieves that acquire it.
  ring* grow(ring* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<ring>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i)
      bigger->put(i, old->get(i));
    bigger->retired_predecessor = std::move(ring_chain_);
    ring_chain_ = std::move(bigger);
    ring* const fresh = ring_chain_.get();
    ring_.store(fresh, std::memory_order_release);
    return fresh;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<ring*> ring_{nullptr};
  std::unique_ptr<ring> ring_chain_;  // owner-managed: current + retired
};

}  // namespace essentials::parallel
