#pragma once

/// \file parallel/lane_buffers.hpp
/// \brief Cache-line-padded per-lane output buffers — the scratch structure
/// behind lock-free (scan-compacted) frontier generation.
///
/// The pattern: a bulk-parallel producer phase gives every work chunk its
/// own `lane` to emit into (no sharing, no locks, no atomics), then a
/// compaction phase exclusive-scans the lane sizes and copies each lane
/// into its disjoint slice of one flat output array.  This is the
/// Ligra/Gunrock frontier-generation recipe, specialized for the thread
/// pool's deterministic chunking: with chunk index `lo / step` as the lane
/// index, the compacted output order is *deterministic* for fixed
/// (n, grain, pool size) — unlike lock-published buffers, whose order
/// depends on lock acquisition races.
///
/// Lanes are aligned to the destructive-interference size so two lanes'
/// control fields (size, capacity, suppressed-count) never share a cache
/// line — concurrent `push_back`s on neighboring lanes must not false-share.
///
/// Reuse contract: `acquire(k)` readies `k` lanes for a new round,
/// *clearing element counts but keeping heap capacity*, so steady-state
/// supersteps allocate nothing.  The structure itself is not thread-safe:
/// one coordinating thread calls `acquire`/`counts`/…, worker lanes touch
/// only their own `operator[](lane)` between those calls.

#include <cstddef>
#include <vector>

#include "parallel/first_touch.hpp"

namespace essentials::parallel {

/// Destructive-interference granularity.  A constant 64 rather than
/// std::hardware_destructive_interference_size: the latter is an ABI
/// hazard (GCC warns when it leaks into headers) and 64 is correct for
/// every deployment target (x86-64, mainstream AArch64).
inline constexpr std::size_t cache_line_size = 64;

template <typename T>
class lane_buffers {
 public:
  /// One producer lane: a private output vector plus the lane-local count
  /// of emissions a dedup filter suppressed (flushed to telemetry by the
  /// operator that ran the round).  Padded so adjacent lanes never share a
  /// cache line.
  ///
  /// The buffer is a `numa_vector`: growth claims address space without
  /// value-initializing, so pages are first touched by the lane's *owner*
  /// pushing emissions — placing each lane's backing store on its worker's
  /// NUMA node (the first-touch contract of parallel/first_touch.hpp).
  /// With the deterministic chunk→lane map, the worker that emits into a
  /// lane this superstep is the likeliest to emit into it next superstep,
  /// so warm capacity stays node-local across rounds.
  struct alignas(cache_line_size) lane_t {
    numa_vector<T> buf;
    std::size_t suppressed = 0;  ///< dedup-filtered emissions this round
  };

  lane_buffers() = default;

  /// Ready `k` lanes for a new production round.  Element counts reset;
  /// heap capacity is kept (the whole point of the scratch).  Returns true
  /// when the round reuses warm capacity from a previous round — the
  /// telemetry "scratch reuse" signal.
  bool acquire(std::size_t k) {
    bool const reused = rounds_ > 0 && lanes_.size() >= k;
    if (lanes_.size() < k)
      lanes_.resize(k);
    for (auto& l : lanes_) {
      l.buf.clear();
      l.suppressed = 0;
    }
    ++rounds_;
    return reused;
  }

  std::size_t num_lanes() const noexcept { return lanes_.size(); }
  std::size_t rounds() const noexcept { return rounds_; }

  lane_t& operator[](std::size_t i) { return lanes_[i]; }
  lane_t const& operator[](std::size_t i) const { return lanes_[i]; }

  /// Sum of lane element counts (coordinator-only, between rounds).
  std::size_t total() const noexcept {
    std::size_t n = 0;
    for (auto const& l : lanes_)
      n += l.buf.size();
    return n;
  }

  /// Sum of lane suppressed counts (coordinator-only, between rounds).
  std::size_t total_suppressed() const noexcept {
    std::size_t n = 0;
    for (auto const& l : lanes_)
      n += l.suppressed;
    return n;
  }

  /// Lane sizes of the first `k` lanes, written into `out[0..k)` — the
  /// input of the compaction prefix sum.
  void sizes(std::size_t k, std::size_t* out) const {
    for (std::size_t i = 0; i < k; ++i)
      out[i] = lanes_[i].buf.size();
  }

  /// Drop all lanes and their capacity (e.g. after a huge superstep, to
  /// return memory).
  void release() {
    lanes_.clear();
    lanes_.shrink_to_fit();
  }

 private:
  std::vector<lane_t> lanes_;
  std::size_t rounds_ = 0;
};

}  // namespace essentials::parallel
