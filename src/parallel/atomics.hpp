#pragma once

/// \file parallel/atomics.hpp
/// \brief Atomic read-modify-write helpers used by vertex programs.
///
/// The paper's SSSP lambda (Listing 4) relies on `atomic::min`, an atomic
/// minimum over a `float` distance array that *returns the previous value*
/// so the caller can decide whether its relaxation won.  The C++ standard
/// has no fetch_min for floating point, so we provide the classic
/// compare-exchange loop, plus integral fast paths and fetch_max / fetch_add
/// counterparts.  All helpers operate on plain arrays through
/// std::atomic_ref, so algorithm state can stay in ordinary std::vectors —
/// exactly how shared-memory frontier data is stored in the paper.

#include <atomic>
#include <concepts>
#include <type_traits>

namespace essentials::atomic {

/// Atomically stores min(*address, value) and returns the value observed at
/// *address immediately before this call's update took effect.  The returned
/// "old" value implements Listing 4's contract: `new_d < atomic::min(...)`
/// is true iff this thread's relaxation improved the distance.
template <typename T>
  requires std::totally_ordered<T>
T min(T* address, T value) {
  std::atomic_ref<T> ref(*address);
  T observed = ref.load(std::memory_order_relaxed);
  while (value < observed) {
    if (ref.compare_exchange_weak(observed, value, std::memory_order_acq_rel,
                                  std::memory_order_relaxed))
      return observed;  // we won; `observed` is the pre-update value
  }
  return observed;  // someone else holds an equal-or-smaller value
}

/// Atomically stores max(*address, value); returns the pre-update value.
template <typename T>
  requires std::totally_ordered<T>
T max(T* address, T value) {
  std::atomic_ref<T> ref(*address);
  T observed = ref.load(std::memory_order_relaxed);
  while (observed < value) {
    if (ref.compare_exchange_weak(observed, value, std::memory_order_acq_rel,
                                  std::memory_order_relaxed))
      return observed;
  }
  return observed;
}

/// Atomic fetch-add working for both integral and floating-point T.
template <typename T>
T add(T* address, T value) {
  std::atomic_ref<T> ref(*address);
  if constexpr (std::is_integral_v<T>) {
    return ref.fetch_add(value, std::memory_order_acq_rel);
  } else {
    T observed = ref.load(std::memory_order_relaxed);
    while (!ref.compare_exchange_weak(observed, observed + value,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
    }
    return observed;
  }
}

/// Atomic compare-and-swap; returns the pre-update value (CAS succeeded iff
/// the return value equals `expected`).  Used by hook-based connected
/// components and by claim-style filters ("first thread to see this vertex
/// wins").
template <typename T>
T cas(T* address, T expected, T desired) {
  std::atomic_ref<T> ref(*address);
  ref.compare_exchange_strong(expected, desired, std::memory_order_acq_rel,
                              std::memory_order_relaxed);
  return expected;  // compare_exchange writes the observed value on failure
}

/// Atomic exchange; returns the pre-update value.
template <typename T>
T exchange(T* address, T desired) {
  std::atomic_ref<T> ref(*address);
  return ref.exchange(desired, std::memory_order_acq_rel);
}

/// Relaxed atomic load through a plain pointer (for monitoring loops).
template <typename T>
T load(T const* address) {
  return std::atomic_ref<T const>(*address).load(std::memory_order_acquire);
}

/// Release store through a plain pointer.
template <typename T>
void store(T* address, T value) {
  std::atomic_ref<T>(*address).store(value, std::memory_order_release);
}

}  // namespace essentials::atomic
