#pragma once

/// \file parallel/thread_pool.hpp
/// \brief A persistent worker pool: the execution substrate behind the
/// framework's `par` and `par_nosync` execution policies.
///
/// Design notes (following the C++ Core Guidelines concurrency rules):
///  - CP.41 "minimize thread creation and destruction": workers are created
///    once and reused for every operator invocation.
///  - CP.4  "think in terms of tasks": the public API is task submission and
///    bulk index-space execution, never raw threads.
///  - CP.42 "don't wait without a condition": all waits are predicated
///    condition-variable waits.
///
/// The pool offers two completion models, which is exactly the distinction
/// the paper draws between bulk-synchronous and asynchronous timing:
///  - `run_blocked(n, fn)` partitions [0, n) into chunks, executes them on
///    the workers and *blocks the caller* until every chunk finished — a BSP
///    superstep with an implicit global barrier.
///  - `submit(fn)` enqueues fire-and-forget work; the caller may continue
///    and later call `wait_idle()` (or never), which is the `par_nosync`
///    behaviour of Listing 3's alternative overload.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace essentials::parallel {

class thread_pool {
 public:
  /// Creates `num_threads` persistent workers.  `num_threads == 0` is
  /// normalized to 1 (a pool that still runs everything, just serially on
  /// one worker) so callers never divide by zero when chunking.
  explicit thread_pool(std::size_t num_threads);
  ~thread_pool();

  thread_pool(thread_pool const&) = delete;
  thread_pool& operator=(thread_pool const&) = delete;

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a fire-and-forget task (asynchronous model).  The task may run
  /// on any worker at any later time; use wait_idle() for a full barrier.
  void submit(std::function<void()> task);

  /// Enqueue a task ahead of every normal-priority task (but behind other
  /// urgent tasks — urgency is a class, not a total order).  Used by layers
  /// that multiplex latency-sensitive work onto the shared pool: a
  /// deadline-critical job's operator chunks should not queue behind a
  /// backlog of batch work.  Starvation-safe by construction: `run_blocked`
  /// chunks of an already-running normal task were dequeued before the
  /// urgent submission, and the urgent class is expected to be sparse.
  void submit_urgent(std::function<void()> task);

  /// Shutdown drain: remove every *queued but not yet started* task (both
  /// priority classes) and return how many were discarded.  Running tasks
  /// are unaffected; their completion still releases pending slots.  Lets an
  /// owner tear down promptly without executing a backlog it no longer
  /// wants — the complement of the destructor, which runs the backlog to
  /// completion.  NOTE: never discard tasks whose completion someone waits
  /// on (run_blocked chunks count down a latch); this is for fire-and-forget
  /// backlogs only, which is why the engine scheduler keeps its *job* queue
  /// outside the pool and uses this only as a belt-and-braces drain.
  std::size_t discard_pending();

  /// Execute `fn(chunk_begin, chunk_end)` over a partition of [0, n) and
  /// block until all chunks completed (bulk-synchronous model).  The calling
  /// thread participates in the work, so a pool of size P uses P+1 lanes and
  /// `run_blocked` from a worker thread cannot deadlock the pool.
  ///
  /// `grain` is the minimum chunk size; chunk count never exceeds
  /// 4 * (size() + 1) to bound scheduling overhead.
  ///
  /// Chunking guarantee (relied upon by parallel/for_each.hpp's two-pass
  /// exclusive_scan): for fixed (n, grain) the partition is deterministic,
  /// every chunk's `begin` is a multiple of a single step value, and that
  /// step equals ceil(n / min(4*(size()+1), ceil(n/grain))).  Callers that
  /// pass that step back in as `grain` therefore observe chunk boundaries
  /// exactly at multiples of it.
  void run_blocked(std::size_t n,
                   std::function<void(std::size_t, std::size_t)> const& fn,
                   std::size_t grain = 1);

  /// Block until the task queue is empty and every worker is idle — the
  /// explicit barrier an asynchronous phase may (or may not) choose to end
  /// with.
  void wait_idle();

  /// Count of tasks submitted and not yet finished (approximate; intended
  /// for monitoring/termination heuristics, not synchronization).
  std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  /// Instantaneous occupancy snapshot — the observability feed for the
  /// telemetry layer (core/telemetry.hpp).  All fields are approximate
  /// (relaxed reads): use for traces and dashboards, never synchronization.
  struct occupancy {
    std::size_t threads = 0;  ///< worker count (excludes the calling thread)
    std::size_t queued = 0;   ///< tasks submitted and not yet finished
    std::size_t busy = 0;     ///< workers currently executing a task
  };
  occupancy stats() const noexcept {
    return {workers_.size(), pending_.load(std::memory_order_relaxed),
            busy_.load(std::memory_order_relaxed)};
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;         // normal priority
  std::deque<std::function<void()>> urgent_queue_;  // popped first
  mutable std::mutex mutex_;
  std::condition_variable has_work_;
  std::condition_variable all_idle_;
  std::atomic<std::size_t> pending_{0};  // queued + running tasks
  std::atomic<std::size_t> busy_{0};     // workers inside task()
  bool stopping_ = false;
};

/// The process-wide default pool used by execution policies that do not
/// carry an explicit pool reference.  Sized from the environment variable
/// `ESSENTIALS_NUM_THREADS` when set, otherwise from
/// `std::thread::hardware_concurrency()`, with a floor of 4 so that
/// parallel code paths (atomics, races, chunking) are genuinely exercised
/// even on single-core CI machines.
thread_pool& default_pool();

/// Number of lanes `run_blocked` on the default pool will use (workers plus
/// the calling thread).  Handy for sizing per-thread scratch buffers.
inline std::size_t default_lanes() {
  return default_pool().size() + 1;
}

}  // namespace essentials::parallel
