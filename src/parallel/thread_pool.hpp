#pragma once

/// \file parallel/thread_pool.hpp
/// \brief A persistent worker pool: the execution substrate behind the
/// framework's `par` and `par_nosync` execution policies.
///
/// Design notes (following the C++ Core Guidelines concurrency rules):
///  - CP.41 "minimize thread creation and destruction": workers are created
///    once and reused for every operator invocation.
///  - CP.4  "think in terms of tasks": the public API is task submission and
///    bulk index-space execution, never raw threads.
///  - CP.42 "don't wait without a condition": all waits are predicated
///    condition-variable waits or futex parks.
///
/// The pool offers two completion models, which is exactly the distinction
/// the paper draws between bulk-synchronous and asynchronous timing:
///  - `run_blocked(n, fn)` partitions [0, n) into chunks, executes them on
///    the workers and *blocks the caller* until every chunk finished — a BSP
///    superstep with an implicit global barrier.
///  - `submit(fn)` enqueues fire-and-forget work; the caller may continue
///    and later call `wait_idle()` (or never), which is the `par_nosync`
///    behaviour of Listing 3's alternative overload.
///
/// ## Execution substrates
///
/// Two substrates implement that contract (`queue_mode`):
///
///  - **stealing** (default): every worker owns a Chase–Lev deque
///    (parallel/work_deque.hpp); `run_blocked` pushes its chunks onto the
///    *caller's* lane (workers push their own deque; external threads —
///    engine runners, the main thread — claim a stable external lane slot)
///    and idle workers steal from randomized victims.  Completion uses the
///    striped `completion_latch` (parallel/barrier.hpp) instead of a flat
///    `std::latch`, and the caller drains its own deque while the barrier
///    is open, so a pool under load never strands a superstep.  External
///    fire-and-forget `submit`s go through a small injector queue (strict
///    FIFO, same-priority semantics as the central substrate).
///  - **central**: the pre-stealing substrate — one mutex-guarded MPMC
///    queue and a flat latch — kept alive as a differential-testing and
///    ablation baseline behind the `ESSENTIALS_CENTRAL_QUEUE` knob.
///
/// Both substrates share the *deterministic chunking contract* exposed as
/// `bulk_step()`: for fixed (n, grain, size()) the partition is identical
/// regardless of mode or which thread runs each chunk — the property the
/// scan-compaction frontier path (core/frontier/frontier_gen.hpp) builds
/// its lane indexing and its bit-identical differential tests on.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "parallel/topology.hpp"

namespace essentials::parallel {

/// Which execution substrate a pool instance uses.
enum class queue_mode : unsigned char {
  stealing,  ///< per-worker Chase–Lev deques, randomized-victim stealing
  central,   ///< single mutex-guarded MPMC queue (ablation / differential)
};

/// The process-wide default substrate: `queue_mode::stealing`, unless the
/// library was compiled with -DESSENTIALS_CENTRAL_QUEUE or the environment
/// variable `ESSENTIALS_CENTRAL_QUEUE` is set to a truthy value (`1`,
/// `true`, `on`, `yes`); a falsy value (`0`, `false`, `off`, `no`)
/// force-selects stealing even under the compile-time define.  Read once
/// and cached (pools constructed later in the process see the same answer).
queue_mode default_queue_mode();

/// How a stealing worker orders its victims (central substrate ignores it).
enum class steal_order : unsigned char {
  flat,    ///< uniform-random sweep over all lanes (the PR 6 behaviour)
  tiered,  ///< same-core SMT siblings → same socket → remote sockets →
           ///< external lanes; randomized within each tier
};

/// The process-wide default steal order: `tiered` when `numa_enabled()`
/// (parallel/topology.hpp), `flat` otherwise.  On single-socket machines the
/// tiers degenerate — every victim lands in the same-socket tier — so the
/// default is safe everywhere; `ESSENTIALS_NUMA=off` restores the flat sweep
/// as a live differential baseline.
steal_order default_steal_order();

class thread_pool {
 public:
  /// Creates `num_threads` persistent workers.  `num_threads == 0` is
  /// normalized to 1 (a pool that still runs everything, just serially on
  /// one worker) so callers never divide by zero when chunking.
  explicit thread_pool(std::size_t num_threads);

  /// Substrate-explicit constructor — differential tests pin one pool to
  /// `queue_mode::central` and one to `queue_mode::stealing` and assert
  /// bit-identical operator output.
  thread_pool(std::size_t num_threads, queue_mode mode);

  /// Fully explicit constructor: substrate *and* steal order.  Differential
  /// tests construct a `flat` and a `tiered` pool side by side — steal order
  /// only changes which victim a thief probes first, never the chunk map, so
  /// operator output must stay bit-identical.
  thread_pool(std::size_t num_threads, queue_mode mode, steal_order order);

  ~thread_pool();

  thread_pool(thread_pool const&) = delete;
  thread_pool& operator=(thread_pool const&) = delete;

  /// Number of worker threads.
  std::size_t size() const noexcept { return num_workers_; }

  /// The execution substrate this pool runs on.
  queue_mode mode() const noexcept { return mode_; }

  /// The victim-selection order stealing workers use.
  steal_order order() const noexcept { return order_; }

  /// The CPU each worker was assigned by the topology packing (index =
  /// worker lane id).  Advisory placement unless `ESSENTIALS_PIN` is set;
  /// exposed so callers (benchmarks, barrier layout) can reconstruct the
  /// locality map the steal tiers were derived from.
  std::vector<int> const& worker_cpus() const noexcept {
    return cpu_of_worker_;
  }

  /// Enqueue a fire-and-forget task (asynchronous model).  The task may run
  /// on any worker at any later time; use wait_idle() for a full barrier.
  /// Stealing substrate: a pool worker pushes onto its own deque (stolen by
  /// idle peers); any other thread goes through the FIFO injector.
  void submit(std::function<void()> task);

  /// Enqueue a task ahead of every normal-priority task (but behind other
  /// urgent tasks — urgency is a class, not a total order).  Used by layers
  /// that multiplex latency-sensitive work onto the shared pool: a
  /// deadline-critical job's operator chunks should not queue behind a
  /// backlog of batch work.  Starvation-safe by construction: `run_blocked`
  /// chunks of an already-running normal task were dequeued before the
  /// urgent submission, and the urgent class is expected to be sparse.
  /// Workers check the urgent class before their own deque and before any
  /// steal, so the priority survives the stealing substrate.
  void submit_urgent(std::function<void()> task);

  /// Shutdown drain: remove every *queued but not yet started* task (both
  /// priority classes, and — on the stealing substrate — every task still
  /// sitting in a worker or external lane deque) and return how many were
  /// discarded.  Running tasks are unaffected; their completion still
  /// releases pending slots.  Lets an owner tear down promptly without
  /// executing a backlog it no longer wants — the complement of the
  /// destructor, which runs the backlog to completion.  NOTE: never discard
  /// tasks whose completion someone waits on (run_blocked chunks count down
  /// a latch); this is for fire-and-forget backlogs only, which is why the
  /// engine scheduler keeps its *job* queue outside the pool and uses this
  /// only as a belt-and-braces drain.
  std::size_t discard_pending();

  /// Execute `fn(chunk_begin, chunk_end)` over a partition of [0, n) and
  /// block until all chunks completed (bulk-synchronous model).  The calling
  /// thread participates in the work, so a pool of size P uses P+1 lanes and
  /// `run_blocked` from a worker thread cannot deadlock the pool.
  ///
  /// `grain` is the minimum chunk size; chunk count never exceeds
  /// 4 * (size() + 1) to bound scheduling overhead.
  ///
  /// Chunking guarantee (relied upon by parallel/for_each.hpp's two-pass
  /// exclusive_scan and the frontier scan-compaction path): for fixed
  /// (n, grain) the partition is deterministic, identical across both queue
  /// modes, every chunk's `begin` is a multiple of `bulk_step(n, grain)`,
  /// and callers that pass that step back in as `grain` observe chunk
  /// boundaries exactly at multiples of it.
  void run_blocked(std::size_t n,
                   std::function<void(std::size_t, std::size_t)> const& fn,
                   std::size_t grain = 1);

  /// The chunking contract, reified: the step `run_blocked(n, ..., grain)`
  /// partitions with — ceil(n / min(4*(size()+1), ceil(n/grain))).  The
  /// single source of truth for every caller that mirrors the partition
  /// (for_each.hpp, frontier_gen.hpp).  Mode-independent by design: the
  /// stealing and central substrates schedule the same chunks onto
  /// different threads, which is what keeps scan-compacted frontier output
  /// bit-identical across substrates.
  std::size_t bulk_step(std::size_t n, std::size_t grain = 1) const noexcept {
    if (n == 0)
      return 1;
    grain = grain == 0 ? 1 : grain;
    std::size_t const lanes = num_workers_ + 1;
    std::size_t const chunks =
        std::min<std::size_t>(4 * lanes, (n + grain - 1) / grain);
    return (n + chunks - 1) / chunks;
  }

  /// Block until the task queue is empty and every worker is idle — the
  /// explicit barrier an asynchronous phase may (or may not) choose to end
  /// with.  Covers stolen tasks: a task popped from any deque releases its
  /// pending slot only after its body returned *and* its captured state was
  /// destroyed, so "every deque empty" alone is never treated as idle.
  void wait_idle();

  /// Count of tasks submitted and not yet finished (approximate; intended
  /// for monitoring/termination heuristics, not synchronization).
  std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  // --- lane identity (stealing substrate) ----------------------------------

  /// Sentinel for "the calling thread holds no lane in this pool".
  static constexpr std::size_t no_lane = static_cast<std::size_t>(-1);

  /// The calling thread's stable lane index in this pool: workers are lanes
  /// [0, size()); threads that ran `run_blocked` or called
  /// `register_external_lane` hold an external lane in [size(),
  /// max_lanes()).  Returns `no_lane` for unregistered threads and on the
  /// central substrate.  Stable for the thread × pool lifetime — usable as
  /// an index into per-lane scratch (parallel/lane_buffers.hpp) without any
  /// shared counter.
  std::size_t lane_id() const;

  /// Upper bound (inclusive of unclaimed external slots) on lane indices
  /// `lane_id()` can return — the size for lane-indexed scratch arrays.
  /// Central substrate: size() + 1 (workers + the calling thread).
  std::size_t max_lanes() const noexcept;

  /// Claim (or re-fetch) a stable external lane for the calling thread —
  /// the lane `run_blocked` pushes its chunks to, stealable by workers.
  /// Long-lived coordinator threads (engine runners) call this once at
  /// startup so their first superstep already runs deque-distributed.
  /// Returns the lane index, or `no_lane` when all external slots are
  /// claimed (run_blocked then falls back to the injector — correct, just
  /// centralized) or on the central substrate.
  std::size_t register_external_lane();

  /// Instantaneous occupancy snapshot — the observability feed for the
  /// telemetry layer (core/telemetry.hpp).  All fields are approximate
  /// (relaxed reads): use for traces and dashboards, never synchronization.
  struct occupancy {
    std::size_t threads = 0;  ///< worker count (excludes the calling thread)
    std::size_t queued = 0;   ///< tasks submitted and not yet finished
    std::size_t busy = 0;     ///< workers currently executing a task
  };
  occupancy stats() const noexcept {
    return {num_workers_, pending_.load(std::memory_order_relaxed),
            busy_.load(std::memory_order_relaxed)};
  }

 private:
  struct lane;  // Chase–Lev deque + claim flag; defined in thread_pool.cpp

  void worker_loop_central();
  void worker_loop_stealing(std::size_t id);
  std::optional<std::function<void()>> find_task(std::size_t self);
  std::optional<std::function<void()>> pop_injector(
      std::atomic<std::size_t>& size_mirror,
      std::deque<std::function<void()>>& q);
  void execute(std::function<void()>&& task);
  void finish_one();
  void notify_sleepers(bool all);
  bool visible_work() const;
  void run_blocked_central(
      std::size_t n, std::function<void(std::size_t, std::size_t)> const& fn,
      std::size_t step, std::size_t chunks);

  queue_mode const mode_;
  steal_order const order_;
  std::uint64_t const pool_id_;  ///< process-unique; keys thread-local lanes
  std::size_t num_workers_ = 0;  ///< set before workers start

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<lane>> lanes_;  // [0, P): workers; rest: external

  // Topology placement (stealing substrate): worker→cpu packing and the
  // per-worker tiered victim lists derived from it.  Built once in the
  // constructor before any worker starts; read-only afterwards.
  std::vector<int> cpu_of_worker_;
  std::vector<steal_tiers> tiers_;  // [0, P), used when order_ == tiered

  // Central queue (central mode) / FIFO injector (stealing mode), plus the
  // urgent class, shared by both substrates.  The atomic size mirrors let
  // stealing workers probe without the lock; their seq_cst ordering is one
  // half of the sleep handshake (the other half is the deque's seq_cst
  // bottom publication) — see worker_loop_stealing.
  std::deque<std::function<void()>> queue_;
  std::deque<std::function<void()>> urgent_queue_;
  std::atomic<std::size_t> queue_size_{0};
  std::atomic<std::size_t> urgent_size_{0};

  mutable std::mutex mutex_;
  std::condition_variable has_work_;
  std::condition_variable all_idle_;
  std::atomic<std::size_t> sleepers_{0};   // stealing-mode parked workers
  std::uint64_t wake_counter_ = 0;         // guarded by mutex_
  std::atomic<std::size_t> pending_{0};    // queued + running tasks
  std::atomic<std::size_t> busy_{0};       // lanes inside task()
  bool stopping_ = false;
};

/// The process-wide default pool used by execution policies that do not
/// carry an explicit pool reference.  Sized from the environment variable
/// `ESSENTIALS_NUM_THREADS` when set, otherwise from
/// `std::thread::hardware_concurrency()`, with a floor of 4 so that
/// parallel code paths (atomics, races, chunking) are genuinely exercised
/// even on single-core CI machines.
thread_pool& default_pool();

/// Number of lanes `run_blocked` on the default pool will use (workers plus
/// the calling thread).  Handy for sizing per-thread scratch buffers.
inline std::size_t default_lanes() {
  return default_pool().size() + 1;
}

}  // namespace essentials::parallel
