#pragma once

/// \file parallel/atomic_bitset.hpp
/// \brief A fixed-size concurrent bitmap.
///
/// This is the storage behind the paper's *dense frontier* representation
/// (§III-B: "a dense frontier can be represented as a boolean array").  A
/// dense frontier is written concurrently by every lane of an advance
/// operator, so the bits must be set atomically; `test_and_set` also gives
/// filters a linearizable "first visitor wins" primitive for free.
///
/// Storage is a `numa_vector` of 64-bit words accessed through
/// std::atomic_ref, which keeps the container copyable/resizable while the
/// mutating operations stay atomic.  The pool-aware `resize_and_clear`
/// overload zeroes the words page-parallel through the pool's deterministic
/// chunking, so a big bitmap's pages are first-touched — and therefore
/// NUMA-placed — by the workers that will hammer them, instead of all
/// landing on the constructing thread's node.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "parallel/first_touch.hpp"

namespace essentials::parallel {

class atomic_bitset {
 public:
  atomic_bitset() = default;

  /// All bits start cleared.
  explicit atomic_bitset(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  std::size_t size() const noexcept { return num_bits_; }

  /// Grow/shrink to `num_bits`; clears every bit (serial touch).
  void resize_and_clear(std::size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }

  /// Pool-aware variant: identical bits, but the zero-fill runs
  /// page-parallel on the pool (when NUMA placement is on and the bitmap is
  /// big enough to matter), so pages land on the nodes of the workers that
  /// will write them.  Callers must not race this with concurrent
  /// readers/writers — same contract as the serial overload.
  void resize_and_clear(thread_pool& pool, std::size_t num_bits) {
    num_bits_ = num_bits;
    std::size_t const num_words = (num_bits + 63) / 64;
    words_.clear();
    words_.resize(num_words);  // default-init: no page touch yet
    first_touch_fill(pool, words_.data(), num_words, std::uint64_t{0});
  }

  /// Clear all bits.  Not atomic as a whole — callers clear between
  /// supersteps, when no concurrent writers exist.
  void clear() {
    for (auto& w : words_)
      std::atomic_ref<std::uint64_t>(w).store(0, std::memory_order_relaxed);
  }

  /// Atomically set bit i.
  void set(std::size_t i) {
    std::atomic_ref<std::uint64_t>(word(i)).fetch_or(
        mask(i), std::memory_order_acq_rel);
  }

  /// Atomically clear bit i.
  void reset(std::size_t i) {
    std::atomic_ref<std::uint64_t>(word(i)).fetch_and(
        ~mask(i), std::memory_order_acq_rel);
  }

  /// Atomically set bit i; returns true iff the bit was previously clear
  /// (i.e. the caller "claimed" it).
  bool test_and_set(std::size_t i) {
    std::uint64_t const prev = std::atomic_ref<std::uint64_t>(word(i)).fetch_or(
        mask(i), std::memory_order_acq_rel);
    return (prev & mask(i)) == 0;
  }

  bool test(std::size_t i) const {
    return (std::atomic_ref<std::uint64_t const>(word(i)).load(
                std::memory_order_acquire) &
            mask(i)) != 0;
  }

  /// Population count (serial scan over words).
  std::size_t count() const {
    std::size_t total = 0;
    for (std::size_t wi = 0; wi < words_.size(); ++wi)
      total += static_cast<std::size_t>(__builtin_popcountll(load_word(wi)));
    return total;
  }

  /// Invoke fn(i) for every set bit, in increasing order (serial).
  template <typename F>
  void for_each_set(F&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t bits = load_word(wi);
      while (bits != 0) {
        unsigned const b = static_cast<unsigned>(__builtin_ctzll(bits));
        fn(wi * 64 + b);
        bits &= bits - 1;
      }
    }
  }

  /// Direct word access for chunked parallel iteration.
  std::size_t num_words() const noexcept { return words_.size(); }
  std::uint64_t load_word(std::size_t wi) const {
    return std::atomic_ref<std::uint64_t const>(words_[wi])
        .load(std::memory_order_acquire);
  }

 private:
  std::uint64_t& word(std::size_t i) {
    expects(i < num_bits_, "atomic_bitset: index out of range");
    return words_[i >> 6];
  }
  std::uint64_t const& word(std::size_t i) const {
    expects(i < num_bits_, "atomic_bitset: index out of range");
    return words_[i >> 6];
  }
  static constexpr std::uint64_t mask(std::size_t i) {
    return std::uint64_t{1} << (i & 63);
  }

  std::size_t num_bits_ = 0;
  numa_vector<std::uint64_t> words_;
};

}  // namespace essentials::parallel
