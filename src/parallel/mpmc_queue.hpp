#pragma once

/// \file parallel/mpmc_queue.hpp
/// \brief Blocking multi-producer/multi-consumer queue with cooperative
/// termination detection.
///
/// This is the substrate behind the paper's *asynchronous queue* frontier
/// (§III-B, citing Chen et al.'s Atos scheduler): work items — active
/// vertices or messages — are pushed by whichever lane discovers them and
/// popped by whichever lane is free, with no superstep barrier anywhere.
///
/// Termination of an asynchronous graph algorithm is non-trivial: an empty
/// queue does not mean the algorithm converged, because an in-flight worker
/// may be about to push new work.  We use the classic pending-work counter:
/// the count of items that are either queued or being processed.  A consumer
/// calls `pop`, processes the item (pushing any new work), then calls
/// `done_processing()`.  When the counter hits zero the queue is drained AND
/// quiescent, and every blocked `pop` returns false — the convergence
/// condition of the asynchronous timing model.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace essentials::parallel {

/// Shutdown/drain contract (audited; regression-tested under TSAN in
/// tests/test_parallel.cpp, suite MpmcQueue):
///  - After `close()` every pop — blocked or future — returns false, even if
///    items were queued at close time or a racing producer pushes later:
///    pushes after close are dropped (and do not leak pending slots).
///  - `close()` removes queued items AND releases their pending slots, so
///    `is_quiescent()` converges to true once in-flight consumers call
///    `done_processing()`; it never wedges on slots owned by discarded
///    items.
///  - `drain()` is the lossless shutdown: closes the queue and hands the
///    not-yet-popped items back to the caller, who can account for them
///    (e.g. a scheduler marking queued jobs "cancelled" instead of silently
///    dropping them).
///  - `reset()` reopens a closed (or merely dirty) queue for a fresh run:
///    queued items are discarded with their pending slots released, then
///    `closed_` is cleared.  In-flight consumers from the previous run may
///    still call `done_processing()` afterwards — their slots were *not*
///    discarded, so the counter stays exact.  A producer racing reset lands
///    its push in either the old run (discarded) or the new one (kept);
///    both are linearizations of "reset happened at some point".  The PR 8
///    audit found the pre-reset state machine was terminal: `closed_` was
///    sticky, so an async_queue_frontier could never be reused across
///    epochs without reconstructing it (and re-running first-touch).
///    Regression-tested under TSAN in tests/test_frontier.cpp, suite
///    AsyncQueueFrontierReuse.
template <typename T>
class mpmc_queue {
 public:
  mpmc_queue() = default;
  mpmc_queue(mpmc_queue const&) = delete;
  mpmc_queue& operator=(mpmc_queue const&) = delete;

  /// Push one work item.  Safe from any thread, including consumers that are
  /// mid-processing (their own pending slot keeps the queue alive).  Returns
  /// false (item dropped) when the queue was closed.
  bool push(T value) {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (closed_)
        return false;
      items_.push_back(std::move(value));
      ++pending_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Push a batch under one lock acquisition (CP.43).  Returns the number of
  /// items accepted (0 when closed).
  template <typename Iterator>
  std::size_t push_batch(Iterator first, Iterator last) {
    if (first == last)
      return 0;
    std::size_t accepted = 0;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (closed_)
        return 0;
      for (; first != last; ++first) {
        items_.push_back(*first);
        ++pending_;
        ++accepted;
      }
    }
    not_empty_.notify_all();
    return accepted;
  }

  /// Blocking pop.  Returns true with a value, or false when the algorithm
  /// has terminated (no queued items and no in-flight processing).  A true
  /// return transfers one pending slot to the caller, who MUST call
  /// done_processing() after handling the item (and after pushing any work
  /// the item generated).
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] {
      return !items_.empty() || pending_ == 0 || closed_;
    });
    if (closed_ || items_.empty())
      return false;  // terminated (quiescent) or closed
    out = std::move(items_.front());
    items_.pop_front();
    // The pending slot stays accounted to this item until done_processing().
    return true;
  }

  /// Non-blocking pop; returns nullopt when nothing is queued *right now*
  /// (the algorithm may or may not have terminated — check is_quiescent())
  /// or when the queue is closed.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> guard(mutex_);
    if (closed_ || items_.empty())
      return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Signal that one previously popped item is fully processed.  When this
  /// was the last in-flight item and the queue is empty, every blocked pop
  /// wakes up and returns false.
  void done_processing() {
    std::size_t remaining;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      remaining = --pending_;
    }
    if (remaining == 0)
      not_empty_.notify_all();
  }

  /// Force-terminate: wake all consumers; subsequent pops return false even
  /// if items remain (used for early-exit convergence conditions).  Queued
  /// items are discarded and their pending slots released — only in-flight
  /// consumers still owe a done_processing().
  void close() {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      closed_ = true;
      pending_ -= items_.size();  // discarded items release their slots
      items_.clear();
    }
    not_empty_.notify_all();
  }

  /// Lossless shutdown: close the queue and return every item that was
  /// queued but never popped, so the caller can account for each one (the
  /// scheduler marks them cancelled; losing them silently would leak
  /// promised work).  Pending slots of the drained items are released.
  std::vector<T> drain() {
    std::vector<T> remaining;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      closed_ = true;
      remaining.reserve(items_.size());
      for (auto& item : items_)
        remaining.push_back(std::move(item));
      pending_ -= items_.size();
      items_.clear();
    }
    not_empty_.notify_all();
    return remaining;
  }

  /// Reopen for a fresh run: discard queued items (releasing their pending
  /// slots), clear the closed flag, and wake any pop blocked on the old
  /// run's state.  See the shutdown/drain contract above for the exact
  /// interleaving guarantees with concurrent producers and in-flight
  /// consumers.
  void reset() {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      pending_ -= items_.size();
      items_.clear();
      closed_ = false;
    }
    not_empty_.notify_all();
  }

  /// True once close()/drain() was called.
  bool is_closed() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return closed_;
  }

  /// Items currently queued (racy snapshot — monitoring only).
  std::size_t size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return items_.size();
  }

  /// True when nothing is queued and nothing is in flight.
  bool is_quiescent() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return pending_ == 0;
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t pending_ = 0;  // queued + in-flight items
  bool closed_ = false;
};

}  // namespace essentials::parallel
