#pragma once

/// \file parallel/spinlock.hpp
/// \brief Tiny test-and-test-and-set spinlock for very short critical
/// sections (e.g. per-bucket locks in the mutex-based frontier append that
/// Listing 3 demonstrates).  Satisfies the Lockable requirements, so it
/// composes with std::lock_guard / std::scoped_lock (CP.20: RAII, never
/// plain lock/unlock).

#include <atomic>

namespace essentials::parallel {

class spinlock {
 public:
  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire))
        return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace essentials::parallel
