#pragma once

/// \file graph/properties.hpp
/// \brief Structural queries over graphs: degree statistics, symmetry,
/// reachability.  Used by tests (invariant checks), by the
/// direction-optimizing heuristic, and by the partition-quality metrics.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "graph/formats.hpp"

namespace essentials::graph {

/// Summary of a degree distribution; drives workload characterization in
/// the benches (power-law vs. uniform graphs behave very differently under
/// push/pull and frontier-representation choices).
struct degree_stats_t {
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  double stddev_degree = 0.0;
  std::size_t isolated_vertices = 0;  ///< out-degree == 0
};

template <typename V, typename E, typename W>
degree_stats_t out_degree_stats(csr_t<V, E, W> const& csr) {
  degree_stats_t s;
  std::size_t const n = static_cast<std::size_t>(csr.num_rows);
  if (n == 0)
    return s;
  s.min_degree = static_cast<std::size_t>(-1);
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t const d =
        static_cast<std::size_t>(csr.row_offsets[v + 1] - csr.row_offsets[v]);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0)
      ++s.isolated_vertices;
    sum += static_cast<double>(d);
    sum_sq += static_cast<double>(d) * static_cast<double>(d);
  }
  s.mean_degree = sum / static_cast<double>(n);
  double const var =
      sum_sq / static_cast<double>(n) - s.mean_degree * s.mean_degree;
  s.stddev_degree = var > 0.0 ? std::sqrt(var) : 0.0;
  return s;
}

/// `out_degree_stats` over the operator-facing graph concept (anything with
/// get_num_vertices / get_out_degree — plain CSR views and the block-coded
/// compressed graphs alike).  Same summary as the csr_t overload above.
template <typename G>
  requires requires(G const& g) {
    g.get_num_vertices();
    g.get_out_degree(typename G::vertex_type{});
  }
degree_stats_t out_degree_stats(G const& g) {
  using V = typename G::vertex_type;
  degree_stats_t s;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  if (n == 0)
    return s;
  s.min_degree = static_cast<std::size_t>(-1);
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t const d =
        static_cast<std::size_t>(g.get_out_degree(static_cast<V>(v)));
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0)
      ++s.isolated_vertices;
    sum += static_cast<double>(d);
    sum_sq += static_cast<double>(d) * static_cast<double>(d);
  }
  s.mean_degree = sum / static_cast<double>(n);
  double const var =
      sum_sq / static_cast<double>(n) - s.mean_degree * s.mean_degree;
  s.stddev_degree = var > 0.0 ? std::sqrt(var) : 0.0;
  return s;
}

namespace detail {

/// Identity of a graph's topology for the degree-stats memo: the address of
/// its row-offsets storage when the graph exposes one (plain CSR views via
/// csr(), block-coded graphs via row_offsets_data()), else the graph object
/// itself.  Combined with |V| and |E| into the cache key.
template <typename G>
void const* degree_stats_identity(G const& g) {
  if constexpr (requires { g.row_offsets_data(); })
    return static_cast<void const*>(g.row_offsets_data());
  else if constexpr (requires { g.csr().row_offsets.data(); })
    return static_cast<void const*>(g.csr().row_offsets.data());
  else
    return static_cast<void const*>(&g);
}

struct degree_stats_key {
  std::uintptr_t identity;
  std::size_t vertices;
  std::size_t edges;
  bool operator==(degree_stats_key const&) const = default;
};

struct degree_stats_key_hash {
  std::size_t operator()(degree_stats_key const& k) const {
    std::size_t h = static_cast<std::size_t>(k.identity);
    h = h * 0x9e3779b97f4a7c15ull ^ k.vertices;
    h = h * 0x9e3779b97f4a7c15ull ^ k.edges;
    return h;
  }
};

}  // namespace detail

/// Memoized `out_degree_stats`: the O(|V|) sweep runs once per graph and is
/// served from a process-wide cache afterwards — this is what lets
/// `load_balance::auto_select` consult the graph's degree shape on *every*
/// superstep for the cost of a hash lookup.
///
/// Keying is heuristic by design: (row-offsets address, |V|, |E|).  A graph
/// freed and replaced by another at the same address with identical counts
/// would be served the old summary — which can only skew a load-balancing
/// *choice*, never a result (every strategy computes the same function).
/// Returns by value; the cache is guarded by a mutex (lookups are rare:
/// once per advance superstep, not per edge).
template <typename G>
degree_stats_t cached_out_degree_stats(G const& g) {
  static std::mutex mu;
  static std::unordered_map<detail::degree_stats_key, degree_stats_t,
                            detail::degree_stats_key_hash>
      cache;
  detail::degree_stats_key const key{
      reinterpret_cast<std::uintptr_t>(detail::degree_stats_identity(g)),
      static_cast<std::size_t>(g.get_num_vertices()),
      static_cast<std::size_t>(g.get_num_edges())};
  {
    std::lock_guard<std::mutex> lock(mu);
    if (auto const it = cache.find(key); it != cache.end())
      return it->second;
  }
  degree_stats_t const stats = out_degree_stats(g);
  std::lock_guard<std::mutex> lock(mu);
  cache.emplace(key, stats);
  return stats;
}

/// True iff for every edge (u, v) the edge (v, u) also exists (weights are
/// not compared).  O(E log E).
template <typename V, typename E, typename W>
bool is_symmetric(csr_t<V, E, W> const& csr) {
  if (csr.num_rows != csr.num_cols)
    return false;
  std::vector<std::pair<V, V>> edges;
  edges.reserve(csr.column_indices.size());
  for (V u = 0; u < csr.num_rows; ++u)
    for (E e = csr.row_offsets[static_cast<std::size_t>(u)];
         e < csr.row_offsets[static_cast<std::size_t>(u) + 1]; ++e)
      edges.emplace_back(u, csr.column_indices[static_cast<std::size_t>(e)]);
  std::sort(edges.begin(), edges.end());
  for (auto const& [u, v] : edges) {
    if (!std::binary_search(edges.begin(), edges.end(), std::make_pair(v, u)))
      return false;
  }
  return true;
}

/// True iff the CSR has no duplicate (u, v) entries.
template <typename V, typename E, typename W>
bool has_no_duplicate_edges(csr_t<V, E, W> const& csr) {
  for (V u = 0; u < csr.num_rows; ++u) {
    E const begin = csr.row_offsets[static_cast<std::size_t>(u)];
    E const end = csr.row_offsets[static_cast<std::size_t>(u) + 1];
    for (E e = begin + 1; e < end; ++e) {
      if (csr.column_indices[static_cast<std::size_t>(e - 1)] ==
          csr.column_indices[static_cast<std::size_t>(e)])
        return false;
    }
  }
  return true;
}

/// True iff the CSR has no self loops.
template <typename V, typename E, typename W>
bool has_no_self_loops(csr_t<V, E, W> const& csr) {
  for (V u = 0; u < csr.num_rows; ++u)
    for (E e = csr.row_offsets[static_cast<std::size_t>(u)];
         e < csr.row_offsets[static_cast<std::size_t>(u) + 1]; ++e)
      if (csr.column_indices[static_cast<std::size_t>(e)] == u)
        return false;
  return true;
}

/// Structural validity: offsets monotone, indices in range, array sizes
/// consistent.  Every loader/generator result must pass this (tested as an
/// invariant property).
template <typename V, typename E, typename W>
bool is_valid_csr(csr_t<V, E, W> const& csr) {
  std::size_t const n = static_cast<std::size_t>(csr.num_rows);
  if (csr.row_offsets.size() != n + 1)
    return false;
  if (csr.row_offsets.front() != E{0})
    return false;
  if (static_cast<std::size_t>(csr.row_offsets.back()) !=
      csr.column_indices.size())
    return false;
  if (csr.values.size() != csr.column_indices.size())
    return false;
  for (std::size_t v = 0; v < n; ++v)
    if (csr.row_offsets[v] > csr.row_offsets[v + 1])
      return false;
  for (V c : csr.column_indices)
    if (c < 0 || c >= csr.num_cols)
      return false;
  return true;
}

/// Vertices reachable from `source` following out-edges (serial BFS).  The
/// ground-truth oracle for traversal tests.
template <typename V, typename E, typename W>
std::vector<bool> reachable_from(csr_t<V, E, W> const& csr, V source) {
  std::vector<bool> seen(static_cast<std::size_t>(csr.num_rows), false);
  std::vector<V> stack{source};
  seen[static_cast<std::size_t>(source)] = true;
  while (!stack.empty()) {
    V const u = stack.back();
    stack.pop_back();
    for (E e = csr.row_offsets[static_cast<std::size_t>(u)];
         e < csr.row_offsets[static_cast<std::size_t>(u) + 1]; ++e) {
      V const v = csr.column_indices[static_cast<std::size_t>(e)];
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        stack.push_back(v);
      }
    }
  }
  return seen;
}

}  // namespace essentials::graph
