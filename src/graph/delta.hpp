#pragma once

/// \file graph/delta.hpp
/// \brief Edge-delta records: the currency of incremental (warm-start)
/// recomputation between graph epochs.
///
/// A `edge_delta_t` describes how a graph changed between two published
/// epochs as a flat list of per-edge mutation records.  The consumer
/// contract is deliberately weak — it is what makes the concurrent producer
/// cheap and the monotone warm-start correct:
///
///  - **Superset semantics.**  The record list is a *superset* of the true
///    edge diff between the two snapshots: every edge that differs between
///    `from_epoch`'s snapshot and `to_epoch`'s snapshot appears, but records
///    for edges that did not actually change (mutations raced with a
///    snapshot and landed in both) may also appear.  Warm-starts only use
///    records to *seed* frontiers and then relax against the real new
///    snapshot, so spurious records cost a few wasted relaxations, never
///    correctness.
///  - **`insert` means monotone improvement** (a fresh edge, or an in-place
///    weight decrease): for the monotone algorithms (SSSP / BFS / CC) the
///    previous epoch's converged result remains a valid upper bound and the
///    fixed point can be re-reached from the delta endpoints alone.
///  - **`remove` means anything non-monotone** (an edge removal, or an
///    in-place weight *increase*).  One such record invalidates the
///    upper-bound property, and incremental enactors fall back to a full
///    recompute (`insert_only()` is the fast-path gate).
///  - **`complete == false` means the log was truncated** (capacity bound
///    hit, or the requested epoch scrolled out of the bounded history):
///    degrade gracefully to a full recompute.
///
/// Produced by `dynamic_graph_t::delta_since()` (graph/dynamic.hpp) and
/// carried per epoch-transition by the engine's graph registry
/// (engine/registry.hpp).

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace essentials::graph {

/// What a single delta record encodes.  `insert` covers fresh edges and
/// in-place weight decreases (monotone improvements); `remove` covers edge
/// removals and in-place weight increases (anything that can make a cached
/// monotone result stale as an upper bound).
enum class delta_op : unsigned char { insert, remove };

inline char const* to_string(delta_op op) {
  return op == delta_op::insert ? "insert" : "remove";
}

/// One edge mutation: (src, dst) changed; `weight` is the weight observed
/// at record time (the final weight for inserts, the pre-removal weight for
/// removals — advisory either way, warm-starts relax against the snapshot).
template <typename V = vertex_t, typename W = weight_t>
struct delta_record_t {
  V src;
  V dst;
  W weight;
  delta_op op;
};

/// The delta between two published epochs (exclusive `from_epoch`,
/// inclusive `to_epoch`).  An empty, complete delta with
/// `from_epoch == to_epoch` means "nothing changed".
template <typename V = vertex_t, typename W = weight_t>
struct edge_delta_t {
  using record_type = delta_record_t<V, W>;

  std::uint64_t from_epoch = 0;  ///< warm-start source epoch
  std::uint64_t to_epoch = 0;    ///< target epoch the delta leads to
  bool complete = false;  ///< false ⇒ log truncated; do a full recompute
  std::vector<record_type> records;

  std::size_t size() const { return records.size(); }
  bool empty() const { return records.empty(); }

  /// True iff every record is a monotone improvement — the gate for the
  /// incremental fast path.
  bool insert_only() const {
    for (auto const& r : records)
      if (r.op == delta_op::remove)
        return false;
    return true;
  }
};

namespace detail {

struct pair_hash {
  std::size_t operator()(std::pair<std::uint64_t, std::uint64_t> const& p)
      const noexcept {
    std::uint64_t h = p.first * 0x9e3779b97f4a7c15ull;
    h ^= p.second + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace detail

/// Compact a record list in place: one record per (src, dst) pair.  A pair
/// that saw any `remove` keeps op == remove (forcing the consumer onto the
/// fallback path — safe even when the pair's *net* effect was an insert,
/// e.g. remove-then-reinsert with a higher weight); otherwise the last
/// insert (latest weight) survives.  Record order of survivors follows
/// first appearance, so compaction is deterministic.
template <typename V, typename W>
void compact(std::vector<delta_record_t<V, W>>& records) {
  if (records.size() < 2)
    return;
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, std::size_t,
                     detail::pair_hash>
      index;
  index.reserve(records.size());
  std::vector<delta_record_t<V, W>> out;
  out.reserve(records.size());
  for (auto const& r : records) {
    auto const key = std::make_pair(
        static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<V>>(r.src)),
        static_cast<std::uint64_t>(
            static_cast<std::make_unsigned_t<V>>(r.dst)));
    auto const [it, inserted] = index.try_emplace(key, out.size());
    if (inserted) {
      out.push_back(r);
      continue;
    }
    auto& kept = out[it->second];
    if (r.op == delta_op::remove || kept.op == delta_op::remove) {
      kept.op = delta_op::remove;  // sticky: any remove taints the pair
    }
    kept.weight = r.weight;  // latest observation wins
  }
  records = std::move(out);
}

template <typename V, typename W>
void compact(edge_delta_t<V, W>& delta) {
  compact(delta.records);
}

}  // namespace essentials::graph
