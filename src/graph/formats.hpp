#pragma once

/// \file graph/formats.hpp
/// \brief The underlying graph representations: COO, CSR, CSC and adjacency
/// list.
///
/// Paper §IV-A: "The underlying graph data structure can be expressed using
/// common sparse matrix formats such as compressed-sparse row (CSR),
/// compressed-sparse column (CSC), or an adjacency list."  These are plain
/// aggregates — the *graph-focused* API lives in graph/graph.hpp, which
/// composes one or more of these via variadic inheritance exactly as
/// Listing 1 sketches.

#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "parallel/first_touch.hpp"

namespace essentials::graph {

/// Coordinate-list (edge list) format.  The canonical interchange format:
/// loaders and generators produce COO; builders convert it to CSR/CSC.
template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
struct coo_t {
  using vertex_type = V;
  using edge_type = E;
  using weight_type = W;

  V num_rows = 0;
  V num_cols = 0;
  std::vector<V> row_indices;     ///< source vertex of each edge
  std::vector<V> column_indices;  ///< destination vertex of each edge
  std::vector<W> values;          ///< edge weights (parallel array)

  E num_edges() const { return static_cast<E>(row_indices.size()); }

  void reserve(std::size_t n) {
    row_indices.reserve(n);
    column_indices.reserve(n);
    values.reserve(n);
  }

  void push_back(V src, V dst, W weight) {
    row_indices.push_back(src);
    column_indices.push_back(dst);
    values.push_back(weight);
  }
};

/// Compressed-sparse row: out-edges of vertex v occupy the index range
/// [row_offsets[v], row_offsets[v+1]) of column_indices/values.  This is the
/// *push* traversal structure (paper §III-C).  Mirrors Listing 1 verbatim,
/// generalized over scalar types.
template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
struct csr_t {
  using vertex_type = V;
  using edge_type = E;
  using weight_type = W;

  V num_rows = 0;
  V num_cols = 0;
  // numa_vector: resizing claims address space without touching pages, so
  // builders (graph/build.hpp) control *which thread* first writes each
  // page — the first-touch NUMA placement the streaming operators depend
  // on.  Element-wise identical to std::vector in every other respect.
  parallel::numa_vector<E> row_offsets;     ///< size num_rows + 1
  parallel::numa_vector<V> column_indices;  ///< size num_edges
  parallel::numa_vector<W> values;          ///< size num_edges

  E num_edges() const { return static_cast<E>(column_indices.size()); }
};

/// Compressed-sparse column: in-edges of vertex v occupy
/// [column_offsets[v], column_offsets[v+1]) of row_indices/values.  This is
/// the *pull* traversal structure.  Weights are duplicated from the CSR —
/// the paper explicitly accepts storing both "at the cost of memory space".
template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
struct csc_t {
  using vertex_type = V;
  using edge_type = E;
  using weight_type = W;

  V num_rows = 0;
  V num_cols = 0;
  // numa_vector for the same first-touch reasons as csr_t.
  parallel::numa_vector<E> column_offsets;  ///< size num_cols + 1
  parallel::numa_vector<V> row_indices;     ///< size num_edges
  parallel::numa_vector<W> values;          ///< size num_edges

  E num_edges() const { return static_cast<E>(row_indices.size()); }
};

/// Pointer-free adjacency list: a vector of per-vertex neighbor vectors.
/// Less cache-friendly than CSR but supports incremental mutation, which is
/// what builders and dynamic-graph experiments need.
template <typename V = vertex_t, typename W = weight_t>
struct adjacency_list_t {
  using vertex_type = V;
  using weight_type = W;

  struct neighbor_t {
    V vertex;
    W weight;
    friend bool operator==(neighbor_t const&, neighbor_t const&) = default;
  };

  std::vector<std::vector<neighbor_t>> neighbors;

  V num_vertices() const { return static_cast<V>(neighbors.size()); }

  std::size_t num_edges() const {
    std::size_t total = 0;
    for (auto const& adj : neighbors)
      total += adj.size();
    return total;
  }

  void resize(V n) { neighbors.resize(static_cast<std::size_t>(n)); }

  void add_edge(V src, V dst, W weight) {
    expects(src >= 0 && static_cast<std::size_t>(src) < neighbors.size(),
            "adjacency_list: source out of range");
    neighbors[static_cast<std::size_t>(src)].push_back({dst, weight});
  }
};

}  // namespace essentials::graph
