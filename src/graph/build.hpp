#pragma once

/// \file graph/build.hpp
/// \brief Builders and transformations between graph representations.
///
/// Everything funnels through COO: loaders/generators emit COO, the cleanup
/// passes (dedupe, self-loop removal, symmetrization) operate on COO, and
/// the conversion to CSR is a counting sort.  CSC is built by transposing
/// COO and running the same conversion — which is also exactly how the pull
/// structure relates to the push structure conceptually.
///
/// NUMA first-touch: the CSR/CSC arrays are `numa_vector`s, so sizing them
/// leaves physical page placement undecided.  When `parallel::numa_enabled()`
/// the builders pre-touch the edge arrays page-parallel on the default pool
/// (the same chunk map the operators stream with), distributing the graph
/// across the sockets that will read it; with the knob off nothing is
/// pre-touched and the serial scatter performs the single first write —
/// strictly fewer writes than a value-initializing std::vector ever did.
/// Either way every element is written before the builder returns, so the
/// resulting bytes are identical.

#include <algorithm>
#include <numeric>
#include <type_traits>
#include <vector>

#include "core/types.hpp"
#include "graph/formats.hpp"
#include "parallel/first_touch.hpp"

namespace essentials::graph::detail {

/// Pre-touch a sized-but-unplaced array page-parallel so its pages land on
/// the workers' nodes; the caller's subsequent serial scatter then writes
/// in-place without migrating anything.  A no-op when NUMA placement is off
/// (the scatter's first write is placement enough) or T is not trivially
/// fillable.
template <typename T>
void place_for_streaming(T* data, std::size_t n) {
  if constexpr (std::is_trivially_copyable_v<T> &&
                std::is_default_constructible_v<T>) {
    if (parallel::numa_enabled())
      parallel::first_touch_fill(parallel::default_pool(), data, n, T{});
  }
}

}  // namespace essentials::graph::detail

namespace essentials::graph {

/// Policy for edges that appear multiple times in the input.
enum class duplicate_policy {
  keep_first,  ///< keep the first occurrence's weight
  keep_min,    ///< keep the smallest weight (natural for shortest paths)
  sum          ///< sum the weights (natural for linear algebra)
};

/// Sort edges by (row, column) and collapse duplicates according to
/// `policy`.  Stable with respect to first occurrence for keep_first.
template <typename V, typename E, typename W>
void sort_and_deduplicate(coo_t<V, E, W>& coo,
                          duplicate_policy policy = duplicate_policy::keep_first) {
  std::size_t const m = coo.row_indices.size();
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (coo.row_indices[a] != coo.row_indices[b])
      return coo.row_indices[a] < coo.row_indices[b];
    return coo.column_indices[a] < coo.column_indices[b];
  });

  coo_t<V, E, W> out;
  out.num_rows = coo.num_rows;
  out.num_cols = coo.num_cols;
  out.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    std::size_t const i = order[k];
    V const r = coo.row_indices[i];
    V const c = coo.column_indices[i];
    W const w = coo.values[i];
    if (!out.row_indices.empty() && out.row_indices.back() == r &&
        out.column_indices.back() == c) {
      switch (policy) {
        case duplicate_policy::keep_first:
          break;
        case duplicate_policy::keep_min:
          out.values.back() = std::min(out.values.back(), w);
          break;
        case duplicate_policy::sum:
          out.values.back() += w;
          break;
      }
    } else {
      out.push_back(r, c, w);
    }
  }
  coo = std::move(out);
}

/// Drop edges whose endpoints coincide.
template <typename V, typename E, typename W>
void remove_self_loops(coo_t<V, E, W>& coo) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < coo.row_indices.size(); ++i) {
    if (coo.row_indices[i] == coo.column_indices[i])
      continue;
    coo.row_indices[kept] = coo.row_indices[i];
    coo.column_indices[kept] = coo.column_indices[i];
    coo.values[kept] = coo.values[i];
    ++kept;
  }
  coo.row_indices.resize(kept);
  coo.column_indices.resize(kept);
  coo.values.resize(kept);
}

/// Add the reverse of every edge (making the edge set symmetric).  Combine
/// with sort_and_deduplicate to obtain a canonical undirected graph.
template <typename V, typename E, typename W>
void symmetrize(coo_t<V, E, W>& coo) {
  std::size_t const m = coo.row_indices.size();
  coo.reserve(2 * m);
  for (std::size_t i = 0; i < m; ++i)
    coo.push_back(coo.column_indices[i], coo.row_indices[i], coo.values[i]);
}

/// Swap the roles of rows and columns (reverse every edge) in place.
template <typename V, typename E, typename W>
void transpose(coo_t<V, E, W>& coo) {
  std::swap(coo.num_rows, coo.num_cols);
  std::swap(coo.row_indices, coo.column_indices);
}

/// Counting-sort conversion COO -> CSR.  Input order is preserved within a
/// row (stable), so edge ids in the CSR follow the COO's column order when
/// the COO is sorted.
template <typename V, typename E, typename W>
csr_t<V, E, W> build_csr(coo_t<V, E, W> const& coo) {
  expects(coo.num_rows >= 0 && coo.num_cols >= 0,
          "build_csr: negative dimensions");
  csr_t<V, E, W> csr;
  csr.num_rows = coo.num_rows;
  csr.num_cols = coo.num_cols;
  std::size_t const n = static_cast<std::size_t>(coo.num_rows);
  std::size_t const m = coo.row_indices.size();
  // The counting sort needs zeroed offsets anyway; zero them through the
  // first-touch path so the pages land on the pool's workers.  The edge
  // arrays only need *placement* (the scatter below writes every slot), so
  // they are pre-touched solely when NUMA placement is on.
  csr.row_offsets.resize(n + 1);
  parallel::first_touch_fill(parallel::default_pool(), csr.row_offsets.data(),
                             n + 1, E{0});
  csr.column_indices.resize(m);
  csr.values.resize(m);
  detail::place_for_streaming(csr.column_indices.data(), m);
  detail::place_for_streaming(csr.values.data(), m);

  for (std::size_t i = 0; i < m; ++i) {
    V const r = coo.row_indices[i];
    expects(r >= 0 && static_cast<std::size_t>(r) < n,
            "build_csr: row index out of range");
    V const c = coo.column_indices[i];
    expects(c >= 0 && c < coo.num_cols, "build_csr: column index out of range");
    ++csr.row_offsets[static_cast<std::size_t>(r) + 1];
  }
  for (std::size_t v = 0; v < n; ++v)
    csr.row_offsets[v + 1] += csr.row_offsets[v];

  std::vector<E> cursor(csr.row_offsets.begin(), csr.row_offsets.end() - 1);
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t const r = static_cast<std::size_t>(coo.row_indices[i]);
    E const slot = cursor[r]++;
    csr.column_indices[static_cast<std::size_t>(slot)] = coo.column_indices[i];
    csr.values[static_cast<std::size_t>(slot)] = coo.values[i];
  }
  return csr;
}

/// COO -> CSC: transpose then counting-sort by (new) row, i.e. by original
/// column.
template <typename V, typename E, typename W>
csc_t<V, E, W> build_csc(coo_t<V, E, W> const& coo) {
  coo_t<V, E, W> t = coo;
  transpose(t);
  csr_t<V, E, W> csr = build_csr(t);
  csc_t<V, E, W> csc;
  csc.num_rows = coo.num_rows;
  csc.num_cols = coo.num_cols;
  csc.column_offsets = std::move(csr.row_offsets);
  csc.row_indices = std::move(csr.column_indices);
  csc.values = std::move(csr.values);
  return csc;
}

/// CSR -> CSC without materializing a COO (transpose of the sparse
/// structure).  Used to derive the pull representation from an existing
/// push representation.
template <typename V, typename E, typename W>
csc_t<V, E, W> transpose_to_csc(csr_t<V, E, W> const& csr) {
  csc_t<V, E, W> csc;
  csc.num_rows = csr.num_rows;
  csc.num_cols = csr.num_cols;
  std::size_t const cols = static_cast<std::size_t>(csr.num_cols);
  std::size_t const m = csr.column_indices.size();
  // Same first-touch scheme as build_csr.
  csc.column_offsets.resize(cols + 1);
  parallel::first_touch_fill(parallel::default_pool(),
                             csc.column_offsets.data(), cols + 1, E{0});
  csc.row_indices.resize(m);
  csc.values.resize(m);
  detail::place_for_streaming(csc.row_indices.data(), m);
  detail::place_for_streaming(csc.values.data(), m);

  for (std::size_t i = 0; i < m; ++i)
    ++csc.column_offsets[static_cast<std::size_t>(csr.column_indices[i]) + 1];
  for (std::size_t c = 0; c < cols; ++c)
    csc.column_offsets[c + 1] += csc.column_offsets[c];

  std::vector<E> cursor(csc.column_offsets.begin(),
                        csc.column_offsets.end() - 1);
  for (std::size_t r = 0; r < static_cast<std::size_t>(csr.num_rows); ++r) {
    for (E e = csr.row_offsets[r]; e < csr.row_offsets[r + 1]; ++e) {
      std::size_t const c =
          static_cast<std::size_t>(csr.column_indices[static_cast<std::size_t>(e)]);
      E const slot = cursor[c]++;
      csc.row_indices[static_cast<std::size_t>(slot)] = static_cast<V>(r);
      csc.values[static_cast<std::size_t>(slot)] =
          csr.values[static_cast<std::size_t>(e)];
    }
  }
  return csc;
}

/// CSR -> adjacency list.
template <typename V, typename E, typename W>
adjacency_list_t<V, W> to_adjacency_list(csr_t<V, E, W> const& csr) {
  adjacency_list_t<V, W> adj;
  adj.resize(csr.num_rows);
  for (V v = 0; v < csr.num_rows; ++v)
    for (E e = csr.row_offsets[static_cast<std::size_t>(v)];
         e < csr.row_offsets[static_cast<std::size_t>(v) + 1]; ++e)
      adj.add_edge(v, csr.column_indices[static_cast<std::size_t>(e)],
                   csr.values[static_cast<std::size_t>(e)]);
  return adj;
}

/// Adjacency list -> COO (for round-tripping into CSR/CSC).
template <typename V, typename W>
coo_t<V, edge_t, W> to_coo(adjacency_list_t<V, W> const& adj) {
  coo_t<V, edge_t, W> coo;
  coo.num_rows = adj.num_vertices();
  coo.num_cols = adj.num_vertices();
  coo.reserve(adj.num_edges());
  for (V v = 0; v < adj.num_vertices(); ++v)
    for (auto const& nb : adj.neighbors[static_cast<std::size_t>(v)])
      coo.push_back(v, nb.vertex, nb.weight);
  return coo;
}

}  // namespace essentials::graph
