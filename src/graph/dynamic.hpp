#pragma once

/// \file graph/dynamic.hpp
/// \brief A mutable graph: thread-safe incremental edge insertion/removal
/// over a bucketed adjacency structure, with snapshotting into the static
/// representations the analytics run on.
///
/// The paper's Table I explicitly leaves *dynamic repartitioning* out of
/// scope; what analytics systems do need is the ingest side — accumulate
/// streaming edges, then snapshot to CSR for a read-only analytics epoch.
/// That snapshot IS "another underlying representation" in the paper's
/// sense: `dynamic_graph_t::snapshot<graph_csr>()` hands back a graph_t
/// every operator/algorithm in the library accepts.
///
/// Concurrency model: per-vertex spinlocks guard each adjacency bucket, so
/// concurrent inserts to different sources never contend and inserts to the
/// same source serialize briefly (CP.43).  Snapshot requires external
/// quiescence (no concurrent writers), like every epoch-based design.

#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "graph/build.hpp"
#include "graph/formats.hpp"
#include "graph/graph.hpp"
#include "parallel/spinlock.hpp"

namespace essentials::graph {

template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
class dynamic_graph_t {
 public:
  explicit dynamic_graph_t(V num_vertices)
      : adjacency_(static_cast<std::size_t>(num_vertices)),
        locks_(static_cast<std::size_t>(num_vertices)) {}

  V num_vertices() const { return static_cast<V>(adjacency_.size()); }

  std::size_t num_edges() const {
    std::size_t total = 0;
    for (auto const& bucket : adjacency_)
      total += bucket.size();
    return total;
  }

  /// Insert edge (src, dst, w).  Duplicate (src, dst) pairs update the
  /// weight in place rather than multiplying edges.  Thread-safe across
  /// sources and within a source.
  void add_edge(V src, V dst, W weight) {
    check(src, dst);
    std::lock_guard<parallel::spinlock> guard(
        locks_[static_cast<std::size_t>(src)]);
    auto& bucket = adjacency_[static_cast<std::size_t>(src)];
    for (auto& nb : bucket) {
      if (nb.vertex == dst) {
        nb.weight = weight;
        return;
      }
    }
    bucket.push_back({dst, weight});
  }

  /// Remove edge (src, dst) if present; returns whether an edge was
  /// removed.  Thread-safe like add_edge.
  bool remove_edge(V src, V dst) {
    check(src, dst);
    std::lock_guard<parallel::spinlock> guard(
        locks_[static_cast<std::size_t>(src)]);
    auto& bucket = adjacency_[static_cast<std::size_t>(src)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i].vertex == dst) {
        bucket[i] = bucket.back();
        bucket.pop_back();
        return true;
      }
    }
    return false;
  }

  /// True iff the edge exists (single-writer or quiescent use).
  bool has_edge(V src, V dst) const {
    check(src, dst);
    for (auto const& nb : adjacency_[static_cast<std::size_t>(src)])
      if (nb.vertex == dst)
        return true;
    return false;
  }

  E out_degree(V v) const {
    return static_cast<E>(adjacency_[static_cast<std::size_t>(v)].size());
  }

  /// Materialize the current edge set as a COO (sorted canonical order).
  coo_t<V, E, W> to_coo() const {
    coo_t<V, E, W> coo;
    coo.num_rows = coo.num_cols = num_vertices();
    coo.reserve(num_edges());
    for (std::size_t v = 0; v < adjacency_.size(); ++v)
      for (auto const& nb : adjacency_[v])
        coo.push_back(static_cast<V>(v), nb.vertex, nb.weight);
    sort_and_deduplicate(coo);
    return coo;
  }

  /// Snapshot into any graph_t instantiation — the epoch boundary between
  /// ingest and analytics.
  template <typename GraphT>
  GraphT snapshot() const {
    return from_coo<GraphT>(to_coo());
  }

 private:
  struct neighbor_t {
    V vertex;
    W weight;
  };

  void check(V src, V dst) const {
    expects(src >= 0 && static_cast<std::size_t>(src) < adjacency_.size(),
            "dynamic_graph: source out of range");
    expects(dst >= 0 && static_cast<std::size_t>(dst) < adjacency_.size(),
            "dynamic_graph: destination out of range");
  }

  std::vector<std::vector<neighbor_t>> adjacency_;
  mutable std::vector<parallel::spinlock> locks_;
};

}  // namespace essentials::graph
