#pragma once

/// \file graph/dynamic.hpp
/// \brief A mutable graph: thread-safe incremental edge insertion/removal
/// over a bucketed adjacency structure, with snapshotting into the static
/// representations the analytics run on.
///
/// The paper's Table I explicitly leaves *dynamic repartitioning* out of
/// scope; what analytics systems do need is the ingest side — accumulate
/// streaming edges, then snapshot to CSR for a read-only analytics epoch.
/// That snapshot IS "another underlying representation" in the paper's
/// sense: `dynamic_graph_t::snapshot<graph_csr>()` hands back a graph_t
/// every operator/algorithm in the library accepts.
///
/// Concurrency model: per-vertex spinlocks guard each adjacency bucket, so
/// concurrent inserts to different sources never contend and inserts to the
/// same source serialize briefly (CP.43).  Snapshot acquires each bucket's
/// lock while copying it, so it may run *concurrently with writers*: the
/// result is bucket-atomic — every adjacency list in the snapshot is some
/// complete state of that bucket (never a torn read), though buckets copied
/// at different instants may straddle an in-flight batch.  This is the
/// epoch-publication contract the engine's graph registry builds on
/// (regression-tested under TSAN: snapshot-while-inserting stress in
/// tests/test_engine.cpp).
///
/// Epoch publication: `publish_epoch()` stamps a monotonically increasing
/// epoch number and invokes registered `on_publish` hooks with it — the
/// callback seam the engine layer (src/engine/registry.hpp) uses to swap
/// registry snapshots and invalidate result-cache entries while readers
/// keep old epochs alive via shared_ptr pinning.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "graph/build.hpp"
#include "graph/formats.hpp"
#include "graph/graph.hpp"
#include "parallel/spinlock.hpp"

namespace essentials::graph {

template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
class dynamic_graph_t {
 public:
  explicit dynamic_graph_t(V num_vertices)
      : adjacency_(static_cast<std::size_t>(num_vertices)),
        locks_(static_cast<std::size_t>(num_vertices)) {}

  V num_vertices() const { return static_cast<V>(adjacency_.size()); }

  std::size_t num_edges() const {
    std::size_t total = 0;
    for (std::size_t v = 0; v < adjacency_.size(); ++v) {
      std::lock_guard<parallel::spinlock> guard(locks_[v]);
      total += adjacency_[v].size();
    }
    return total;
  }

  /// Insert edge (src, dst, w).  Duplicate (src, dst) pairs update the
  /// weight in place rather than multiplying edges.  Thread-safe across
  /// sources and within a source.
  void add_edge(V src, V dst, W weight) {
    check(src, dst);
    std::lock_guard<parallel::spinlock> guard(
        locks_[static_cast<std::size_t>(src)]);
    auto& bucket = adjacency_[static_cast<std::size_t>(src)];
    for (auto& nb : bucket) {
      if (nb.vertex == dst) {
        nb.weight = weight;
        return;
      }
    }
    bucket.push_back({dst, weight});
  }

  /// Remove edge (src, dst) if present; returns whether an edge was
  /// removed.  Thread-safe like add_edge.
  bool remove_edge(V src, V dst) {
    check(src, dst);
    std::lock_guard<parallel::spinlock> guard(
        locks_[static_cast<std::size_t>(src)]);
    auto& bucket = adjacency_[static_cast<std::size_t>(src)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i].vertex == dst) {
        bucket[i] = bucket.back();
        bucket.pop_back();
        return true;
      }
    }
    return false;
  }

  /// True iff the edge exists (bucket-atomic under concurrent writers).
  bool has_edge(V src, V dst) const {
    check(src, dst);
    std::lock_guard<parallel::spinlock> guard(
        locks_[static_cast<std::size_t>(src)]);
    for (auto const& nb : adjacency_[static_cast<std::size_t>(src)])
      if (nb.vertex == dst)
        return true;
    return false;
  }

  E out_degree(V v) const {
    expects(v >= 0 && static_cast<std::size_t>(v) < adjacency_.size(),
            "dynamic_graph: vertex out of range");
    std::lock_guard<parallel::spinlock> guard(
        locks_[static_cast<std::size_t>(v)]);
    return static_cast<E>(adjacency_[static_cast<std::size_t>(v)].size());
  }

  /// Materialize the current edge set as a COO (sorted canonical order).
  /// Safe under concurrent mutation: each bucket is copied under its lock
  /// (bucket-atomic snapshot; see the header comment for the exact
  /// guarantee).
  coo_t<V, E, W> to_coo() const {
    coo_t<V, E, W> coo;
    coo.num_rows = coo.num_cols = num_vertices();
    std::vector<neighbor_t> bucket_copy;
    for (std::size_t v = 0; v < adjacency_.size(); ++v) {
      {
        std::lock_guard<parallel::spinlock> guard(locks_[v]);
        bucket_copy = adjacency_[v];
      }
      for (auto const& nb : bucket_copy)
        coo.push_back(static_cast<V>(v), nb.vertex, nb.weight);
    }
    sort_and_deduplicate(coo);
    return coo;
  }

  /// Snapshot into any graph_t instantiation — the epoch boundary between
  /// ingest and analytics.
  template <typename GraphT>
  GraphT snapshot() const {
    return from_coo<GraphT>(to_coo());
  }

  // --- Epoch publication ----------------------------------------------------

  /// Hook signature: called with the freshly assigned epoch number after a
  /// `publish_epoch()` snapshot completed.
  using publish_hook = std::function<void(std::uint64_t epoch)>;

  /// Register a hook invoked on every publish (engine registries subscribe
  /// here).  Not thread-safe versus concurrent publish — register during
  /// setup.
  void on_publish(publish_hook hook) {
    std::lock_guard<std::mutex> guard(publish_mutex_);
    hooks_.push_back(std::move(hook));
  }

  /// Epochs published so far (0 before the first publish).
  std::uint64_t epoch() const {
    std::lock_guard<std::mutex> guard(publish_mutex_);
    return epoch_;
  }

  /// Snapshot the current edge set, stamp it with the next epoch number and
  /// fire the publish hooks.  Serialized against other publishers (one
  /// publish at a time ⇒ epoch numbers are dense and hooks observe them in
  /// order); ingest threads may keep mutating concurrently — their edges
  /// land in this epoch or the next, never in a torn bucket.
  template <typename GraphT>
  std::pair<std::shared_ptr<GraphT const>, std::uint64_t> publish_epoch() {
    std::lock_guard<std::mutex> guard(publish_mutex_);
    auto snap = std::make_shared<GraphT const>(snapshot<GraphT>());
    std::uint64_t const e = ++epoch_;
    for (auto const& hook : hooks_)
      hook(e);
    return {std::move(snap), e};
  }

 private:
  struct neighbor_t {
    V vertex;
    W weight;
  };

  void check(V src, V dst) const {
    expects(src >= 0 && static_cast<std::size_t>(src) < adjacency_.size(),
            "dynamic_graph: source out of range");
    expects(dst >= 0 && static_cast<std::size_t>(dst) < adjacency_.size(),
            "dynamic_graph: destination out of range");
  }

  std::vector<std::vector<neighbor_t>> adjacency_;
  mutable std::vector<parallel::spinlock> locks_;

  mutable std::mutex publish_mutex_;  // serializes publish + hook list
  std::uint64_t epoch_ = 0;
  std::vector<publish_hook> hooks_;
};

}  // namespace essentials::graph
