#pragma once

/// \file graph/dynamic.hpp
/// \brief A mutable graph: thread-safe incremental edge insertion/removal
/// over a bucketed adjacency structure, with snapshotting into the static
/// representations the analytics run on.
///
/// The paper's Table I explicitly leaves *dynamic repartitioning* out of
/// scope; what analytics systems do need is the ingest side — accumulate
/// streaming edges, then snapshot to CSR for a read-only analytics epoch.
/// That snapshot IS "another underlying representation" in the paper's
/// sense: `dynamic_graph_t::snapshot<graph_csr>()` hands back a graph_t
/// every operator/algorithm in the library accepts.
///
/// Concurrency model: per-vertex spinlocks guard each adjacency bucket, so
/// concurrent inserts to different sources never contend and inserts to the
/// same source serialize briefly (CP.43).  Snapshot acquires each bucket's
/// lock while copying it, so it may run *concurrently with writers*: the
/// result is bucket-atomic — every adjacency list in the snapshot is some
/// complete state of that bucket (never a torn read), though buckets copied
/// at different instants may straddle an in-flight batch.  This is the
/// epoch-publication contract the engine's graph registry builds on
/// (regression-tested under TSAN: snapshot-while-inserting stress in
/// tests/test_engine.cpp).
///
/// Epoch publication: `publish_epoch()` stamps a monotonically increasing
/// epoch number and invokes registered `on_publish` hooks with it — the
/// callback seam the engine layer (src/engine/registry.hpp) uses to swap
/// registry snapshots and invalidate result-cache entries while readers
/// keep old epochs alive via shared_ptr pinning.
///
/// Edge-delta log: every mutation is additionally appended (while still
/// holding the bucket lock) to a bounded per-publish log; `publish_epoch()`
/// seals the accumulated records into a segment stamped with the new epoch,
/// and `delta_since(e)` returns the compacted concatenation of segments
/// (e, current] — the warm-start fuel of the engine's incremental
/// recompute path.  See "Epoch stamping under concurrent writers" below
/// for why the seal happens strictly *after* the snapshot.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "graph/build.hpp"
#include "graph/delta.hpp"
#include "graph/formats.hpp"
#include "graph/graph.hpp"
#include "parallel/spinlock.hpp"

namespace essentials::graph {

template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
class dynamic_graph_t {
 public:
  using delta_type = edge_delta_t<V, W>;
  using delta_record = delta_record_t<V, W>;

  /// Default bound on the total number of delta records held across all
  /// sealed segments plus the pending one; past it the log truncates and
  /// `delta_since` degrades to "incomplete" (full recompute).
  static constexpr std::size_t kDefaultDeltaCapacity = 1u << 16;

  explicit dynamic_graph_t(V num_vertices)
      : adjacency_(static_cast<std::size_t>(num_vertices)),
        locks_(static_cast<std::size_t>(num_vertices)) {}

  V num_vertices() const { return static_cast<V>(adjacency_.size()); }

  std::size_t num_edges() const {
    std::size_t total = 0;
    for (std::size_t v = 0; v < adjacency_.size(); ++v) {
      std::lock_guard<parallel::spinlock> guard(locks_[v]);
      total += adjacency_[v].size();
    }
    return total;
  }

  /// Insert edge (src, dst, w).  Duplicate (src, dst) pairs update the
  /// weight in place rather than multiplying edges.  Thread-safe across
  /// sources and within a source.  Delta log: a fresh edge or an in-place
  /// weight decrease records `insert` (monotone improvement); an in-place
  /// weight *increase* records `remove` (it can invalidate cached monotone
  /// results, exactly like a removal would).
  void add_edge(V src, V dst, W weight) {
    check(src, dst);
    std::lock_guard<parallel::spinlock> guard(
        locks_[static_cast<std::size_t>(src)]);
    auto& bucket = adjacency_[static_cast<std::size_t>(src)];
    for (auto& nb : bucket) {
      if (nb.vertex == dst) {
        bool const worsened = weight > nb.weight;
        nb.weight = weight;
        record_mutation(
            {src, dst, weight,
             worsened ? delta_op::remove : delta_op::insert});
        return;
      }
    }
    bucket.push_back({dst, weight});
    record_mutation({src, dst, weight, delta_op::insert});
  }

  /// Remove edge (src, dst) if present; returns whether an edge was
  /// removed.  Thread-safe like add_edge.
  bool remove_edge(V src, V dst) {
    check(src, dst);
    std::lock_guard<parallel::spinlock> guard(
        locks_[static_cast<std::size_t>(src)]);
    auto& bucket = adjacency_[static_cast<std::size_t>(src)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i].vertex == dst) {
        W const old_w = bucket[i].weight;
        bucket[i] = bucket.back();
        bucket.pop_back();
        record_mutation({src, dst, old_w, delta_op::remove});
        return true;
      }
    }
    return false;
  }

  /// True iff the edge exists (bucket-atomic under concurrent writers).
  bool has_edge(V src, V dst) const {
    check(src, dst);
    std::lock_guard<parallel::spinlock> guard(
        locks_[static_cast<std::size_t>(src)]);
    for (auto const& nb : adjacency_[static_cast<std::size_t>(src)])
      if (nb.vertex == dst)
        return true;
    return false;
  }

  E out_degree(V v) const {
    expects(v >= 0 && static_cast<std::size_t>(v) < adjacency_.size(),
            "dynamic_graph: vertex out of range");
    std::lock_guard<parallel::spinlock> guard(
        locks_[static_cast<std::size_t>(v)]);
    return static_cast<E>(adjacency_[static_cast<std::size_t>(v)].size());
  }

  /// Materialize the current edge set as a COO (sorted canonical order).
  /// Safe under concurrent mutation: each bucket is copied under its lock
  /// (bucket-atomic snapshot; see the header comment for the exact
  /// guarantee).
  coo_t<V, E, W> to_coo() const {
    coo_t<V, E, W> coo;
    coo.num_rows = coo.num_cols = num_vertices();
    std::vector<neighbor_t> bucket_copy;
    for (std::size_t v = 0; v < adjacency_.size(); ++v) {
      {
        std::lock_guard<parallel::spinlock> guard(locks_[v]);
        bucket_copy = adjacency_[v];
      }
      for (auto const& nb : bucket_copy)
        coo.push_back(static_cast<V>(v), nb.vertex, nb.weight);
    }
    sort_and_deduplicate(coo);
    return coo;
  }

  /// Snapshot into any graph_t instantiation — the epoch boundary between
  /// ingest and analytics.
  template <typename GraphT>
  GraphT snapshot() const {
    return from_coo<GraphT>(to_coo());
  }

  // --- Epoch publication ----------------------------------------------------

  /// Hook signature: called with the freshly assigned epoch number after a
  /// `publish_epoch()` snapshot completed.
  using publish_hook = std::function<void(std::uint64_t epoch)>;

  /// Register a hook invoked on every publish (engine registries subscribe
  /// here).  Not thread-safe versus concurrent publish — register during
  /// setup.
  void on_publish(publish_hook hook) {
    std::lock_guard<std::mutex> guard(publish_mutex_);
    hooks_.push_back(std::move(hook));
  }

  /// Epochs published so far (0 before the first publish).
  std::uint64_t epoch() const {
    std::lock_guard<std::mutex> guard(publish_mutex_);
    return epoch_;
  }

  /// Snapshot the current edge set, stamp it with the next epoch number and
  /// fire the publish hooks.  Serialized against other publishers (one
  /// publish at a time ⇒ epoch numbers are dense and hooks observe them in
  /// order); ingest threads may keep mutating concurrently — their edges
  /// land in this epoch or the next, never in a torn bucket.
  ///
  /// Epoch stamping under concurrent writers: the delta log's pending
  /// segment is sealed strictly *after* the snapshot's bucket copies, and
  /// the seal splits the pending records at a boundary *marked before the
  /// first bucket copy*:
  ///
  ///  - Records logged before the mark: their bucket mutation happened
  ///    before every bucket copy (a mutation is appended to the log while
  ///    its bucket lock is still held), so they are definitely visible in
  ///    this snapshot.  They are stamped into this epoch's segment only.
  ///  - Records logged after the mark raced the bucket copies: the
  ///    mutation may have landed in an already-copied bucket, making it
  ///    first visible only in the *next* snapshot.  These ambiguous records
  ///    are stamped into this epoch's segment AND carried over into the
  ///    pending set for the next one — a duplicate record is a permitted
  ///    spurious entry under the delta contract's superset semantics
  ///    (graph/delta.hpp), whereas a dropped record would silently corrupt
  ///    the warm-start targeting the next epoch.
  ///
  /// (The naive variants — seal first / snapshot second, stamping each
  /// record with `epoch()` read at mutation time, or sealing everything
  /// into this epoch without the carry-over — all admit a schedule where a
  /// mutation visible only in snapshot e+1 is stamped e and thereby
  /// excluded from `delta_since(e)`.)  Regression-tested under TSAN in
  /// tests/test_delta.cpp (DeltaTsanEpochStamping).
  template <typename GraphT>
  std::pair<std::shared_ptr<GraphT const>, std::uint64_t> publish_epoch() {
    std::lock_guard<std::mutex> guard(publish_mutex_);
    {
      // Mark the pending-log boundary before any bucket is copied; see
      // the stamping note above.
      std::lock_guard<parallel::spinlock> log_guard(log_lock_);
      snapshot_mark_ = pending_.size();
    }
    auto snap = std::make_shared<GraphT const>(snapshot<GraphT>());
    std::uint64_t const e = epoch_ + 1;
    seal_pending(e);  // after the snapshot — see the ordering note above
    epoch_ = e;
    for (auto const& hook : hooks_)
      hook(e);
    return {std::move(snap), e};
  }

  // --- Edge-delta log -------------------------------------------------------

  /// Bound the total records held by the log (sealed segments + pending).
  /// 0 disables logging entirely; shrinking below the current footprint
  /// truncates.  Not thread-safe versus concurrent mutation — configure
  /// during setup.
  void set_delta_log_capacity(std::size_t max_records) {
    std::lock_guard<std::mutex> publish_guard(publish_mutex_);
    std::lock_guard<parallel::spinlock> log_guard(log_lock_);
    delta_capacity_ = max_records;
    enforce_capacity();
  }

  std::size_t delta_log_capacity() const {
    std::lock_guard<parallel::spinlock> guard(log_lock_);
    return delta_capacity_;
  }

  /// Earliest epoch `delta_since` can still answer from (deltas from
  /// epochs below the floor have scrolled out of the bounded history).
  std::uint64_t delta_floor() const {
    std::lock_guard<std::mutex> publish_guard(publish_mutex_);
    std::lock_guard<parallel::spinlock> log_guard(log_lock_);
    return floor_epoch_;
  }

  /// The compacted edge delta from `from_epoch`'s snapshot to the current
  /// epoch's snapshot.  `complete == false` (truncated log, unknown epoch,
  /// or `from_epoch` ahead of the current epoch) means the caller must do a
  /// full recompute.  Superset semantics — see graph/delta.hpp.
  delta_type delta_since(std::uint64_t from_epoch) const {
    std::lock_guard<std::mutex> publish_guard(publish_mutex_);
    std::lock_guard<parallel::spinlock> log_guard(log_lock_);
    delta_type delta;
    delta.from_epoch = from_epoch;
    delta.to_epoch = epoch_;
    // Capacity zero = logging disabled: never claim completeness, even for
    // quiescent spans we could technically vouch for.
    if (delta_capacity_ == 0 || from_epoch > epoch_ ||
        from_epoch < floor_epoch_) {
      delta.complete = false;
      return delta;
    }
    delta.complete = true;
    for (auto const& seg : segments_) {
      if (seg.epoch <= from_epoch)
        continue;
      delta.records.insert(delta.records.end(), seg.records.begin(),
                           seg.records.end());
    }
    compact(delta);
    return delta;
  }

 private:
  struct neighbor_t {
    V vertex;
    W weight;
  };

  /// Mutations accumulated between two publishes, stamped at seal time with
  /// the epoch whose snapshot they lead *to*.
  struct delta_segment {
    std::uint64_t epoch = 0;
    std::vector<delta_record> records;
  };

  void check(V src, V dst) const {
    expects(src >= 0 && static_cast<std::size_t>(src) < adjacency_.size(),
            "dynamic_graph: source out of range");
    expects(dst >= 0 && static_cast<std::size_t>(dst) < adjacency_.size(),
            "dynamic_graph: destination out of range");
  }

  /// Append one mutation to the pending segment.  Called while the
  /// mutation's bucket lock is still held — that ordering is what makes the
  /// seal-after-snapshot stamping in publish_epoch() sound.  When the
  /// capacity bound is hit, older history is dropped first (fresh deltas
  /// serve warm-starts; stale ones only raise the floor); if even that
  /// cannot make room the pending segment itself truncates.
  void record_mutation(delta_record r) {
    std::lock_guard<parallel::spinlock> guard(log_lock_);
    if (delta_capacity_ == 0) {
      pending_truncated_ = true;
      return;
    }
    while (total_records_ >= delta_capacity_ && !segments_.empty()) {
      total_records_ -= segments_.front().records.size();
      floor_epoch_ = segments_.front().epoch;
      segments_.pop_front();
    }
    if (total_records_ >= delta_capacity_) {
      pending_truncated_ = true;
      return;
    }
    pending_.push_back(r);
    ++total_records_;
  }

  /// Seal the pending records into the segment for `epoch`.  Caller holds
  /// publish_mutex_ and has *finished* the snapshot (see publish_epoch).
  /// Records appended after `snapshot_mark_` raced the snapshot's bucket
  /// copies and may be visible only in the *next* snapshot — they are
  /// stamped into this segment and also carried over into the next pending
  /// set (superset semantics make the duplicate harmless; the omission
  /// would not be).
  void seal_pending(std::uint64_t epoch) {
    std::lock_guard<parallel::spinlock> guard(log_lock_);
    if (pending_truncated_) {
      // Continuity is broken: restart history at this epoch.  Warm-starts
      // from any earlier epoch degrade to full recomputes.
      segments_.clear();
      pending_.clear();
      total_records_ = 0;
      floor_epoch_ = epoch;
      pending_truncated_ = false;
      return;
    }
    if (pending_.empty())
      return;  // quiescent publish: nothing changed, history stays dense
    std::size_t const mark = std::min(snapshot_mark_, pending_.size());
    std::vector<delta_record> ambiguous(pending_.begin() +
                                            static_cast<std::ptrdiff_t>(mark),
                                        pending_.end());
    delta_segment seg{epoch, std::move(pending_)};
    pending_ = std::move(ambiguous);
    compact(seg.records);  // per-segment compaction bounds the footprint
    total_records_ = seg.records.size() + pending_.size();
    for (auto const& s : segments_)
      total_records_ += s.records.size();
    segments_.push_back(std::move(seg));
    enforce_capacity();  // the carried-over duplicates count toward the bound
  }

  /// Re-apply the capacity bound after it changed.  Caller holds both
  /// publish_mutex_ and log_lock_.
  void enforce_capacity() {
    if (delta_capacity_ == 0) {
      segments_.clear();
      pending_.clear();
      total_records_ = 0;
      pending_truncated_ = true;
      floor_epoch_ = epoch_;
      return;
    }
    while (total_records_ > delta_capacity_ && !segments_.empty()) {
      total_records_ -= segments_.front().records.size();
      floor_epoch_ = segments_.front().epoch;
      segments_.pop_front();
    }
    if (total_records_ > delta_capacity_) {
      total_records_ -= pending_.size();
      pending_.clear();
      pending_truncated_ = true;
    }
  }

  std::vector<std::vector<neighbor_t>> adjacency_;
  mutable std::vector<parallel::spinlock> locks_;

  mutable std::mutex publish_mutex_;  // serializes publish + hook list
  std::uint64_t epoch_ = 0;
  std::vector<publish_hook> hooks_;

  // Edge-delta log (guarded by log_lock_; log_lock_ is always innermost:
  // bucket-lock -> log_lock_ on the mutation path, publish_mutex_ ->
  // log_lock_ on the publish/query path — no cycles).
  mutable parallel::spinlock log_lock_;
  std::size_t delta_capacity_ = kDefaultDeltaCapacity;
  std::size_t total_records_ = 0;      // across pending_ + segments_
  std::size_t snapshot_mark_ = 0;      // pending_ size at snapshot start
  bool pending_truncated_ = false;     // capacity hit since last seal
  std::uint64_t floor_epoch_ = 0;      // earliest answerable from-epoch
  std::vector<delta_record> pending_;  // mutations since last publish
  std::deque<delta_segment> segments_;  // sealed, oldest first
};

}  // namespace essentials::graph
