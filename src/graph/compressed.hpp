#pragma once

/// \file graph/compressed.hpp
/// \brief Compressed CSR: adjacency stored as varint-encoded deltas
/// (Ligra+/WebGraph style) behind the same push-side graph API.
///
/// Large real graphs are memory-bound; since canonical CSR adjacency is
/// sorted, consecutive neighbor ids differ by small deltas that pack into
/// 1–2 bytes instead of 4.  `compressed_graph` decodes on the fly through
/// a forward iterator, so traversals trade decode ALU for memory
/// bandwidth.  It is *another underlying representation* in the paper's
/// §III-D sense: `get_edges`-style iteration works, and SSSP/BFS run on
/// it unchanged (tested) — but random edge-id access (`get_dest_vertex(e)`
/// for arbitrary e) is intentionally absent, which the type system
/// surfaces by NOT modeling the full CSR view.  Algorithms that need only
/// forward neighbor iteration accept it via the `for_each_neighbor` API.
///
/// Encoding per vertex: first neighbor as zig-zag delta from the vertex id
/// (exploits locality of reordered graphs), subsequent neighbors as plain
/// deltas minus one (strictly increasing).  Weights, when present, are
/// stored as a parallel f32 array (floats do not delta-compress well).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "graph/formats.hpp"

namespace essentials::graph {

namespace varint {

/// Append v as LEB128.
inline void encode(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decode one LEB128 value, advancing `pos`.
inline std::uint64_t decode(std::uint8_t const* data, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    std::uint8_t const byte = data[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0)
      return v;
    shift += 7;
  }
}

/// Zig-zag: signed -> unsigned with small magnitudes staying small.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace varint

/// Compressed push-side graph.
template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
class compressed_graph {
 public:
  using vertex_type = V;
  using edge_type = E;
  using weight_type = W;

  compressed_graph() = default;

  /// Compress a canonical (sorted-adjacency) CSR.
  explicit compressed_graph(csr_t<V, E, W> const& csr)
      : num_vertices_(csr.num_rows),
        num_edges_(csr.num_edges()),
        offsets_(static_cast<std::size_t>(csr.num_rows) + 1, 0),
        weights_(csr.values.begin(), csr.values.end()) {
    bytes_.reserve(csr.column_indices.size());  // >=1 byte per edge
    for (V v = 0; v < csr.num_rows; ++v) {
      offsets_[static_cast<std::size_t>(v)] = bytes_.size();
      V prev = v;  // first delta is relative to the vertex id
      bool first = true;
      for (E e = csr.row_offsets[static_cast<std::size_t>(v)];
           e < csr.row_offsets[static_cast<std::size_t>(v) + 1]; ++e) {
        V const nb = csr.column_indices[static_cast<std::size_t>(e)];
        if (first) {
          varint::encode(bytes_, varint::zigzag(static_cast<std::int64_t>(nb) -
                                                static_cast<std::int64_t>(v)));
          first = false;
        } else {
          expects(nb > prev, "compressed_graph: adjacency must be sorted "
                             "and duplicate-free");
          varint::encode(bytes_,
                         static_cast<std::uint64_t>(nb - prev) - 1);
        }
        prev = nb;
      }
      degrees_.push_back(csr.row_offsets[static_cast<std::size_t>(v) + 1] -
                         csr.row_offsets[static_cast<std::size_t>(v)]);
    }
    offsets_[static_cast<std::size_t>(csr.num_rows)] = bytes_.size();
    // Per-vertex first-weight offsets equal the CSR row offsets.
    weight_offsets_.assign(csr.row_offsets.begin(), csr.row_offsets.end());
  }

  V get_num_vertices() const { return num_vertices_; }
  E get_num_edges() const { return num_edges_; }
  E get_out_degree(V v) const {
    return degrees_[static_cast<std::size_t>(v)];
  }

  /// Bytes used by the adjacency encoding (the compression headline).
  std::size_t adjacency_bytes() const { return bytes_.size(); }
  /// What uncompressed CSR adjacency would use.
  std::size_t uncompressed_adjacency_bytes() const {
    return static_cast<std::size_t>(num_edges_) * sizeof(V);
  }
  double compression_ratio() const {
    return bytes_.empty()
               ? 1.0
               : static_cast<double>(uncompressed_adjacency_bytes()) /
                     static_cast<double>(bytes_.size());
  }

  /// Visit every out-neighbor of v: fn(dst, weight).  The decode loop is
  /// the price of compression; the interface is the same forward
  /// iteration every traversal needs.
  template <typename F>
  void for_each_neighbor(V v, F&& fn) const {
    std::size_t pos = offsets_[static_cast<std::size_t>(v)];
    E const deg = degrees_[static_cast<std::size_t>(v)];
    if (deg == 0)
      return;
    E const wbase = weight_offsets_[static_cast<std::size_t>(v)];
    V nb = static_cast<V>(
        static_cast<std::int64_t>(v) +
        varint::unzigzag(varint::decode(bytes_.data(), pos)));
    fn(nb, weights_[static_cast<std::size_t>(wbase)]);
    for (E k = 1; k < deg; ++k) {
      nb = static_cast<V>(nb + 1 +
                          static_cast<V>(varint::decode(bytes_.data(), pos)));
      fn(nb, weights_[static_cast<std::size_t>(wbase + k)]);
    }
  }

 private:
  V num_vertices_ = 0;
  E num_edges_ = 0;
  std::vector<std::size_t> offsets_;  ///< byte offset of each vertex's run
  std::vector<E> degrees_;
  std::vector<std::uint8_t> bytes_;   ///< varint-delta adjacency
  std::vector<W> weights_;            ///< parallel to logical edge order
  std::vector<E> weight_offsets_;     ///< == CSR row offsets
};

}  // namespace essentials::graph

namespace essentials::algorithms {

/// SSSP over a compressed graph (sequential reference loop + the same
/// atomic-min relaxation, driven by for_each_neighbor).  Exists to prove
/// the representation carries real algorithms, and as the memory-bound
/// baseline for the compression bench.
template <typename V, typename E, typename W>
std::vector<W> sssp_compressed(graph::compressed_graph<V, E, W> const& g,
                               V source) {
  expects(source >= 0 && source < g.get_num_vertices(),
          "sssp_compressed: source out of range");
  std::vector<W> dist(static_cast<std::size_t>(g.get_num_vertices()),
                      infinity_v<W>);
  dist[static_cast<std::size_t>(source)] = W{0};
  std::vector<V> frontier{source}, next;
  while (!frontier.empty()) {
    next.clear();
    for (V const v : frontier) {
      W const d = dist[static_cast<std::size_t>(v)];
      g.for_each_neighbor(v, [&](V nb, W w) {
        if (d + w < dist[static_cast<std::size_t>(nb)]) {
          dist[static_cast<std::size_t>(nb)] = d + w;
          next.push_back(nb);
        }
      });
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier.swap(next);
  }
  return dist;
}

}  // namespace essentials::algorithms
