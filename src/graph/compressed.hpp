#pragma once

/// \file graph/compressed.hpp
/// \brief Block-coded compressed CSR: a first-class execution tier, not a
/// demo codec.  Adjacency is stored as fixed-size neighbor *blocks*
/// (group-varint zig-zag deltas behind a word-aligned header), and the
/// graph exposes the same CSR-side API the operator matrix compiles
/// against — `get_edges(v)` / `get_dest_vertex(e)` / `get_edge_weight(e)`
/// — so advance / filter / neighbor_reduce run on compressed adjacency
/// *directly* and bit-identically to plain CSR (differentially tested).
///
/// Why blocks.  The previous representation (kept below as `varint_graph`,
/// the scalar baseline the bench compares against) decoded LEB128 bytes
/// one at a time behind a forward-only iterator: random edge access was
/// impossible, so the operators could not run on it.  Block coding fixes
/// both problems at once:
///
///  - the edge-id space [0, E) is cut into blocks of
///    `blockcodec::block_edges` (default 128) consecutive edges;
///  - each block starts 4-byte-aligned with a fixed header
///    {first_id, count, payload_bytes}; the payload is the remaining
///    count-1 column ids as zig-zag deltas from the previous id, packed
///    group-varint style (one tag byte per 4 values, 2 bits each giving
///    the byte length 1..4) and laid out streamvbyte-fashion — all tag
///    bytes first, then the packed delta bytes — so decode runs 4 values
///    at a time with unconditional loads (+ the stream's trailing slop
///    bytes) and its only loop-carried work is one cursor add per group
///    (on SSSE3 hosts a pshufb lane-expansion path is selected at
///    runtime; both paths are bit-identical);
///  - a 64-bit per-block offset index makes any block O(1) to locate, and
///    the retained per-vertex row offsets keep `get_out_degree` /
///    `get_edges` O(1) — exactly CSR's contract.
///
/// Random access decodes the containing block once into a thread-local,
/// cache-line-aligned scratch (the same padded-lane discipline as
/// parallel/lane_buffers.hpp) and serves subsequent hits from it; since
/// operators walk `get_edges(v)` in order, consecutive edge ids land in
/// the same block and the decode amortizes to O(1) per edge.  The scratch
/// is keyed by a per-graph cookie, so interleaved traversals of several
/// compressed graphs on one thread stay correct.
///
/// Zig-zag deltas (not strictly-increasing deltas) are used inside a
/// block because blocks span row boundaries, where the next column id may
/// be smaller than the previous row's last neighbor.  Sorted adjacency
/// still compresses to ~1 byte/edge; the codec merely no longer *requires*
/// sortedness.  Weights do not delta-compress (floats) and stay a parallel
/// array indexed by the edge id.
///
/// All byte cursors, block offsets and row offsets are 64-bit regardless
/// of the edge-id type `E`, so graphs beyond 2^31 edges only need a wider
/// `E` typedef — the codec itself never narrows (static_asserts below).
///
/// The same layout, read through raw pointers, backs the mmap'd on-disk
/// tier (io/mapped.hpp): `block_graph_base` is the CRTP base both the
/// in-memory `compressed_graph` and the out-of-core `mapped_graph` derive
/// their operator-facing API from.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

// SSSE3 pshufb fast path for the group-varint decoder: compiled behind a
// per-function target attribute (no global -march change) and selected at
// runtime via cpuid, so the binary still runs on baseline x86-64 and other
// architectures fall through to the scalar decoder.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ESSENTIALS_BLOCK_SIMD 1
#include <immintrin.h>
#else
#define ESSENTIALS_BLOCK_SIMD 0
#endif

#include "core/types.hpp"
#include "graph/formats.hpp"
#include "graph/graph.hpp"
#include "parallel/lane_buffers.hpp"

namespace essentials::graph {

// ---------------------------------------------------------------------------
// Scalar LEB128 varint (the PR-kept baseline codec)
// ---------------------------------------------------------------------------

namespace varint {

/// Append v as LEB128.
inline void encode(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decode one LEB128 value, advancing `pos`.
inline std::uint64_t decode(std::uint8_t const* data, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    std::uint8_t const byte = data[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0)
      return v;
    shift += 7;
  }
}

/// Zig-zag: signed -> unsigned with small magnitudes staying small.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace varint

// ---------------------------------------------------------------------------
// Block codec
// ---------------------------------------------------------------------------

namespace blockcodec {

/// Edges per block.  A compile-time knob (CONTRIBUTING.md): 128 edges keep
/// the decoded block (512 B) inside L1 next to the lane's other scratch,
/// while the 8-byte header amortizes to 0.06 bytes/edge.
#ifndef ESSENTIALS_BLOCK_EDGES
#define ESSENTIALS_BLOCK_EDGES 128
#endif
inline constexpr std::size_t block_edges = ESSENTIALS_BLOCK_EDGES;
static_assert(block_edges >= 4 && block_edges <= 8192,
              "block_edges must be in [4, 8192] (payload_bytes is u16)");

/// Trailing slop appended after the last block so the unconditional loads
/// of the group-varint decoder never read past the buffer: the scalar path
/// loads 4 bytes per value, the SIMD path loads a full 16-byte lane at the
/// start of each group (worst case 12 bytes past a minimal 4-byte group).
inline constexpr std::size_t stream_slop = 16;

/// Word-aligned block header.  `payload_bytes` covers the group-varint
/// payload only (tags + delta bytes), excluding header and alignment pad.
struct block_header {
  std::uint32_t first_id;       ///< raw first column id of the block
  std::uint16_t count;          ///< edges in this block (== block_edges except the last)
  std::uint16_t payload_bytes;  ///< group-varint payload length
};
static_assert(sizeof(block_header) == 8, "block_header must stay 8 bytes");

/// Bytes needed to store v in 1..4 bytes.
inline std::uint32_t byte_width(std::uint32_t v) {
  if (v < (1u << 8))
    return 1;
  if (v < (1u << 16))
    return 2;
  if (v < (1u << 24))
    return 3;
  return 4;
}

/// Owned result of encoding one adjacency array.
struct encoded_adjacency {
  std::vector<std::uint8_t> bytes;         ///< blocks + trailing slop
  std::vector<std::uint64_t> block_offsets;  ///< size num_blocks + 1; [i] =
                                             ///< byte offset of block i,
                                             ///< back() = end of last block
  std::uint64_t num_blocks() const { return block_offsets.size() - 1; }
  /// Encoded adjacency footprint (headers + payloads, without slop).
  std::uint64_t encoded_bytes() const { return block_offsets.back(); }
};

/// Encode `m` column ids into block-coded form.  64-bit cursors
/// throughout: `m` may exceed 2^31 (the caller's edge-id type only bounds
/// what ids it can hand the operators, not what the codec can store).
template <typename V>
encoded_adjacency encode_adjacency(V const* cols, std::uint64_t m) {
  static_assert(sizeof(V) <= 4,
                "block codec stores 32-bit column ids; wider vertex ids "
                "need a wider tag scheme");
  encoded_adjacency enc;
  std::uint64_t const blocks = (m + block_edges - 1) / block_edges;
  enc.block_offsets.reserve(static_cast<std::size_t>(blocks) + 1);
  enc.bytes.reserve(static_cast<std::size_t>(m) + 8 * blocks + stream_slop);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    std::uint64_t const lo = b * block_edges;
    std::uint64_t const hi = std::min<std::uint64_t>(lo + block_edges, m);
    enc.block_offsets.push_back(enc.bytes.size());
    std::size_t const header_at = enc.bytes.size();
    enc.bytes.resize(header_at + sizeof(block_header));
    // Payload: count-1 zig-zag deltas, group-varint packed (4 per tag),
    // laid out streamvbyte-style — ALL tag bytes first, then the packed
    // delta bytes.  Tag addresses are then independent of the
    // variable-length data, so the decoder's only loop-carried dependency
    // is one add per group (the data cursor), not a load->add chain.
    std::size_t const ngroups =
        hi > lo ? (static_cast<std::size_t>(hi - lo) - 1 + 3) / 4 : 0;
    std::size_t const tags_at = enc.bytes.size();
    enc.bytes.resize(tags_at + ngroups, 0);
    std::uint32_t prev = static_cast<std::uint32_t>(cols[lo]);
    std::size_t group = 0;
    for (std::uint64_t i = lo + 1; i < hi; i += 4, ++group) {
      std::uint8_t tag = 0;
      for (std::uint64_t k = 0; k < 4 && i + k < hi; ++k) {
        std::uint32_t const cur = static_cast<std::uint32_t>(cols[i + k]);
        std::int64_t const d = static_cast<std::int64_t>(cur) -
                               static_cast<std::int64_t>(prev);
        std::uint64_t const zz64 = varint::zigzag(d);
        expects(zz64 <= 0xFFFFFFFFull, "block codec: delta overflows u32");
        std::uint32_t const zz = static_cast<std::uint32_t>(zz64);
        std::uint32_t const len = byte_width(zz);
        tag |= static_cast<std::uint8_t>((len - 1) << (2 * k));
        std::uint8_t le[4];
        std::memcpy(le, &zz, 4);  // little-endian on every supported target
        enc.bytes.insert(enc.bytes.end(), le, le + len);
        prev = cur;
      }
      enc.bytes[tags_at + group] = tag;
    }
    // Finalize the header and pad the block to 4-byte alignment so the
    // next header's loads stay aligned.
    block_header h;
    h.first_id = hi > lo ? static_cast<std::uint32_t>(cols[lo]) : 0;
    h.count = static_cast<std::uint16_t>(hi - lo);
    h.payload_bytes = static_cast<std::uint16_t>(enc.bytes.size() -
                                                 header_at -
                                                 sizeof(block_header));
    std::memcpy(enc.bytes.data() + header_at, &h, sizeof h);
    while (enc.bytes.size() % 4 != 0)
      enc.bytes.push_back(0);
  }
  enc.block_offsets.push_back(enc.bytes.size());
  enc.bytes.resize(enc.bytes.size() + stream_slop, 0);
  return enc;
}

/// Per-tag decode plan: where each of the 4 values starts inside the
/// group payload, its extraction mask, and the group's total bytes.
/// Precomputing offsets breaks the load->advance->load dependency chain a
/// running byte cursor would impose — the four loads issue independently
/// and only the prefix-sum over `prev` stays serial.
struct tag_plan {
  std::uint8_t off[4];    ///< payload byte offset of value k
  std::uint32_t msk[4];   ///< 0xFF / 0xFFFF / 0xFFFFFF / 0xFFFFFFFF
  std::uint8_t total;     ///< payload bytes consumed by the group
};

inline tag_plan const* tag_table() {
  static tag_plan const* const table = [] {
    static tag_plan t[256];
    for (unsigned tag = 0; tag < 256; ++tag) {
      std::uint8_t off = 0;
      for (unsigned k = 0; k < 4; ++k) {
        std::uint32_t const len = ((tag >> (2 * k)) & 3u) + 1;
        t[tag].off[k] = off;
        t[tag].msk[k] = len == 4 ? 0xFFFFFFFFu : (1u << (8 * len)) - 1;
        off = static_cast<std::uint8_t>(off + len);
      }
      t[tag].total = off;
    }
    return t;
  }();
  return table;
}

#if ESSENTIALS_BLOCK_SIMD

/// Per-tag pshufb plan: a 16-byte shuffle mask expanding the packed 1..4
/// byte deltas into four zero-extended 32-bit lanes, plus the group's
/// total payload bytes.
struct simd_plan {
  std::uint8_t shuffle[16];
  std::uint8_t total;
};

inline simd_plan const* simd_table() {
  static simd_plan const* const table = [] {
    static simd_plan t[256];
    for (unsigned tag = 0; tag < 256; ++tag) {
      std::uint8_t src = 0;
      for (unsigned k = 0; k < 4; ++k) {
        std::uint32_t const len = ((tag >> (2 * k)) & 3u) + 1;
        for (unsigned j = 0; j < 4; ++j)
          t[tag].shuffle[4 * k + j] =
              j < len ? static_cast<std::uint8_t>(src + j) : 0x80;
        src = static_cast<std::uint8_t>(src + len);
      }
      t[tag].total = src;
    }
    return t;
  }();
  return table;
}

/// Vectorized payload decode (the Lemire/Stepanov group-varint scheme):
/// one 16-byte load + pshufb per group, unzigzag and the 4-lane prefix
/// sum in SIMD registers.  `out[0]` is written from `first`; loads stay
/// in bounds thanks to `stream_slop` (16).  Wrapping u32 arithmetic
/// matches the scalar decoder exactly.
__attribute__((target("ssse3"))) inline void decode_payload_ssse3(
    std::uint8_t const* p, std::uint32_t first, std::size_t count,
    std::uint32_t* out) {
  out[0] = first;
  simd_plan const* const plans = simd_table();
  std::size_t const ngroups = count > 1 ? (count - 1 + 3) / 4 : 0;
  std::uint8_t const* const tags = p;
  std::uint8_t const* data = p + ngroups;
  __m128i const kOne = _mm_set1_epi32(1);
  __m128i const kZero = _mm_setzero_si128();
  __m128i prevv = _mm_set1_epi32(static_cast<int>(first));
  std::size_t i = 1;
  std::size_t g = 0;
  while (i + 4 <= count) {
    simd_plan const& s = plans[tags[g++]];
    __m128i const raw =
        _mm_loadu_si128(reinterpret_cast<__m128i const*>(data));
    __m128i const shuf =
        _mm_loadu_si128(reinterpret_cast<__m128i const*>(s.shuffle));
    __m128i const zz = _mm_shuffle_epi8(raw, shuf);
    // unzigzag each lane: (zz >> 1) ^ -(zz & 1)
    __m128i d = _mm_xor_si128(_mm_srli_epi32(zz, 1),
                              _mm_sub_epi32(kZero, _mm_and_si128(zz, kOne)));
    // inclusive 4-lane prefix sum, then add the running value
    d = _mm_add_epi32(d, _mm_slli_si128(d, 4));
    d = _mm_add_epi32(d, _mm_slli_si128(d, 8));
    __m128i const vals = _mm_add_epi32(d, prevv);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), vals);
    prevv = _mm_shuffle_epi32(vals, _MM_SHUFFLE(3, 3, 3, 3));
    data += s.total;
    i += 4;
  }
  if (i < count) {  // final partial group, scalar
    std::uint32_t prev =
        static_cast<std::uint32_t>(_mm_cvtsi128_si32(prevv));
    tag_plan const& t = tag_table()[tags[g]];
    for (unsigned k = 0; i < count; ++k, ++i) {
      std::uint32_t raw;
      std::memcpy(&raw, data + t.off[k], 4);
      prev = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(prev) + varint::unzigzag(raw & t.msk[k]));
      out[i] = prev;
    }
  }
}

inline bool have_ssse3() {
  static bool const yes = __builtin_cpu_supports("ssse3");
  return yes;
}

#endif  // ESSENTIALS_BLOCK_SIMD

/// Decode block `b` into `out[0..count)`; returns count.  4-at-a-time:
/// one tag-table lookup per group, then four independent little-endian
/// 4-byte loads masked to the encoded width (in-bounds thanks to
/// `stream_slop`).  32-bit outputs take the pshufb path where the CPU has
/// SSSE3 (runtime-dispatched; bit-identical to the scalar decoder).
template <typename V>
std::size_t decode_block(std::uint8_t const* bytes,
                         std::uint64_t const* block_offsets, std::uint64_t b,
                         V* out) {
  std::uint8_t const* p = bytes + block_offsets[b];
  block_header h;
  std::memcpy(&h, p, sizeof h);
  p += sizeof h;
  // Clamp against a corrupted on-disk header: `out` is exactly
  // block_edges wide, and a hostile count must not overflow it (the
  // mapped reader validates sections, not every block header).
  std::size_t const count = std::min<std::size_t>(h.count, block_edges);
  if (count == 0)
    return 0;
#if ESSENTIALS_BLOCK_SIMD
  if constexpr (sizeof(V) == 4) {
    if (have_ssse3()) {
      // int32/uint32 outputs alias legally as uint32_t.
      decode_payload_ssse3(p, h.first_id, count,
                           reinterpret_cast<std::uint32_t*>(out));
      return count;
    }
  }
#endif
  tag_plan const* const plans = tag_table();
  std::size_t const ngroups = count > 1 ? (count - 1 + 3) / 4 : 0;
  std::uint8_t const* const tags = p;
  std::uint8_t const* data = p + ngroups;
  std::uint32_t prev = h.first_id;
  out[0] = static_cast<V>(prev);
  std::size_t i = 1;
  std::size_t g = 0;
  while (i + 4 <= count) {  // full groups, unrolled
    tag_plan const& t = plans[tags[g++]];
    std::uint32_t raw0, raw1, raw2, raw3;
    std::memcpy(&raw0, data + t.off[0], 4);
    std::memcpy(&raw1, data + t.off[1], 4);
    std::memcpy(&raw2, data + t.off[2], 4);
    std::memcpy(&raw3, data + t.off[3], 4);
    prev = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(prev) + varint::unzigzag(raw0 & t.msk[0]));
    out[i] = static_cast<V>(prev);
    prev = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(prev) + varint::unzigzag(raw1 & t.msk[1]));
    out[i + 1] = static_cast<V>(prev);
    prev = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(prev) + varint::unzigzag(raw2 & t.msk[2]));
    out[i + 2] = static_cast<V>(prev);
    prev = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(prev) + varint::unzigzag(raw3 & t.msk[3]));
    out[i + 3] = static_cast<V>(prev);
    data += t.total;
    i += 4;
  }
  if (i < count) {  // final partial group
    tag_plan const& t = plans[tags[g]];
    for (unsigned k = 0; i < count; ++k, ++i) {
      std::uint32_t raw;
      std::memcpy(&raw, data + t.off[k], 4);
      prev = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(prev) + varint::unzigzag(raw & t.msk[k]));
      out[i] = static_cast<V>(prev);
    }
  }
  return count;
}

/// Process-unique cookie for the decode-cache key (one per constructed
/// graph; copies share content, so sharing the cookie is sound).
inline std::uint64_t next_cookie() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace blockcodec

// ---------------------------------------------------------------------------
// block_graph_base: the operator-facing API over any block-coded storage
// ---------------------------------------------------------------------------

/// CRTP base implementing the CSR-side graph concept over block-coded
/// adjacency.  `Derived` supplies raw storage access:
///   base_num_vertices(), base_num_cols(), base_num_edges(),
///   row_offsets_data() -> u64 const*, block_offsets_data() -> u64 const*,
///   adjacency_data() -> u8 const*, weights_data() -> W const*, cookie().
/// Storage may be owned vectors (`compressed_graph`) or an mmap'd file
/// (`io::mapped_graph`); the decode path is identical.
template <typename Derived, typename V, typename E, typename W>
class block_graph_base {
  // The operators iterate edge ids of type E; 64-bit internals mean the
  // codec never narrows, but E itself must be able to *name* every edge.
  static_assert(sizeof(E) >= 4, "edge ids narrower than 32 bits cannot "
                                "index realistic adjacency");

 public:
  using vertex_type = V;
  using edge_type = E;
  using weight_type = W;

  static constexpr bool has_csr = true;  ///< push-side API below
  static constexpr bool has_csc = false;
  static constexpr bool has_coo = false;

  // --- whole-graph queries ---------------------------------------------------

  V get_num_vertices() const { return self().base_num_vertices(); }
  E get_num_edges() const { return static_cast<E>(self().base_num_edges()); }
  id_range<V> get_vertices() const { return {V{0}, get_num_vertices()}; }

  // --- push-side queries (the operator matrix's contract) --------------------

  E get_out_degree(V v) const {
    std::uint64_t const* const row = self().row_offsets_data();
    auto const i = static_cast<std::size_t>(v);
    return static_cast<E>(row[i + 1] - row[i]);
  }

  id_range<E> get_edges(V v) const {
    std::uint64_t const* const row = self().row_offsets_data();
    auto const i = static_cast<std::size_t>(v);
    return {static_cast<E>(row[i]), static_cast<E>(row[i + 1])};
  }

  /// Random edge access through the thread-local block cache: decode the
  /// containing block once, serve every edge of that block from scratch.
  /// Sequential `get_edges(v)` walks hit the cache on all but the first
  /// edge of each block — amortized O(1), the property that lets the
  /// unchanged operators (and their `edge_grain` chunking) run here.
  V get_dest_vertex(E e) const {
    auto& s = scratch();
    std::uint64_t const b =
        static_cast<std::uint64_t>(e) / blockcodec::block_edges;
    if (s.cookie != self().cookie() || s.block != b) {
      blockcodec::decode_block(self().adjacency_data(),
                               self().block_offsets_data(), b, s.vals);
      s.cookie = self().cookie();
      s.block = b;
    }
    return s.vals[static_cast<std::uint64_t>(e) % blockcodec::block_edges];
  }

  W get_edge_weight(E e) const {
    return self().weights_data()[static_cast<std::size_t>(e)];
  }

  /// Source of an edge id: binary search over row offsets (same contract
  /// as csr_view::csr_source).
  V get_source_vertex(E e) const {
    std::uint64_t const* const row = self().row_offsets_data();
    std::size_t const n = static_cast<std::size_t>(get_num_vertices());
    auto const it = std::upper_bound(row, row + n + 1,
                                     static_cast<std::uint64_t>(e));
    return static_cast<V>((it - row) - 1);
  }

  // --- streaming decode ------------------------------------------------------

  /// Visit every out-neighbor of v: fn(dst, weight).  Streams through the
  /// same block cache as `get_dest_vertex`, so mixing call styles stays
  /// coherent and warm.
  template <typename F>
  void for_each_neighbor(V v, F&& fn) const {
    std::uint64_t const* const row = self().row_offsets_data();
    std::uint64_t const lo = row[static_cast<std::size_t>(v)];
    std::uint64_t const hi = row[static_cast<std::size_t>(v) + 1];
    W const* const weights = self().weights_data();
    for (std::uint64_t e = lo; e < hi; ++e)
      fn(get_dest_vertex(static_cast<E>(e)), weights[e]);
  }

  /// Decode block `b` straight into `out` (bench / bulk-rehydrate path;
  /// bypasses the cache).  Returns the block's edge count.
  std::size_t decode_block_into(std::uint64_t b, V* out) const {
    return blockcodec::decode_block(self().adjacency_data(),
                                    self().block_offsets_data(), b, out);
  }

  std::uint64_t num_blocks() const {
    std::uint64_t const m = self().base_num_edges();
    return (m + blockcodec::block_edges - 1) / blockcodec::block_edges;
  }

  // --- footprint reporting ---------------------------------------------------

  /// Bytes of the encoded adjacency (headers + payloads) — the headline.
  std::uint64_t adjacency_bytes() const {
    return self().block_offsets_data()[num_blocks()];
  }
  /// What uncompressed CSR adjacency would use.
  std::uint64_t uncompressed_adjacency_bytes() const {
    return self().base_num_edges() * sizeof(V);
  }
  double compression_ratio() const {
    auto const b = adjacency_bytes();
    return b == 0 ? 1.0
                  : static_cast<double>(uncompressed_adjacency_bytes()) /
                        static_cast<double>(b);
  }
  /// Encoded adjacency bytes per edge (plain CSR: sizeof(V) == 4).
  double bytes_per_edge() const {
    auto const m = self().base_num_edges();
    return m == 0 ? 0.0
                  : static_cast<double>(adjacency_bytes()) /
                        static_cast<double>(m);
  }
  /// Full structure footprint: adjacency + offsets + block index + weights
  /// (what the registry's resident-budget accounting charges).
  std::uint64_t resident_bytes() const {
    return adjacency_bytes() + blockcodec::stream_slop +
           (static_cast<std::uint64_t>(self().base_num_vertices()) + 1) *
               sizeof(std::uint64_t) +
           (num_blocks() + 1) * sizeof(std::uint64_t) +
           self().base_num_edges() * sizeof(W);
  }

 private:
  Derived const& self() const { return *static_cast<Derived const*>(this); }

  /// Thread-local decoded-block scratch, cache-line aligned like a
  /// lane_buffers lane: a stealing worker decoding neighboring blocks must
  /// never false-share another worker's scratch.
  struct decode_scratch_t {
    std::uint64_t cookie = 0;      ///< 0 == empty (graph cookies start at 1)
    std::uint64_t block = ~0ull;
    alignas(parallel::cache_line_size) V vals[blockcodec::block_edges];
  };
  static decode_scratch_t& scratch() {
    thread_local decode_scratch_t s;
    return s;
  }
};

// ---------------------------------------------------------------------------
// compressed_graph: owned block-coded CSR
// ---------------------------------------------------------------------------

/// In-memory block-coded graph.  Satisfies the same push-side concept as
/// `graph_t<csr_view<>>`, so every CSR-side operator and algorithm runs on
/// it unchanged.
template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
class compressed_graph
    : public block_graph_base<compressed_graph<V, E, W>, V, E, W> {
 public:
  compressed_graph() = default;

  /// Compress a canonical CSR.  Encoding cursors are 64-bit; the only
  /// bound `E` imposes is that it can still name every edge id.
  explicit compressed_graph(csr_t<V, E, W> const& csr)
      : num_vertices_(csr.num_rows),
        num_cols_(csr.num_cols),
        num_edges_(static_cast<std::uint64_t>(csr.column_indices.size())),
        cookie_(blockcodec::next_cookie()),
        weights_(csr.values.begin(), csr.values.end()) {
    expects(num_edges_ <=
                static_cast<std::uint64_t>(std::numeric_limits<E>::max()),
            "compressed_graph: edge count exceeds edge-id type; widen E");
    row_offsets_.assign(csr.row_offsets.begin(), csr.row_offsets.end());
    if (row_offsets_.empty())
      row_offsets_.push_back(0);
    auto enc =
        blockcodec::encode_adjacency(csr.column_indices.data(), num_edges_);
    bytes_ = std::move(enc.bytes);
    block_offsets_ = std::move(enc.block_offsets);
  }

  // Storage access for block_graph_base.
  V base_num_vertices() const { return num_vertices_; }
  V base_num_cols() const { return num_cols_; }
  std::uint64_t base_num_edges() const { return num_edges_; }
  std::uint64_t const* row_offsets_data() const { return row_offsets_.data(); }
  std::uint64_t const* block_offsets_data() const {
    return block_offsets_.data();
  }
  std::uint8_t const* adjacency_data() const { return bytes_.data(); }
  W const* weights_data() const { return weights_.data(); }
  std::uint64_t cookie() const { return cookie_; }

  /// Rehydrate a plain CSR (registry promotion / round-trip tests).
  csr_t<V, E, W> to_csr() const {
    csr_t<V, E, W> csr;
    csr.num_rows = num_vertices_;
    csr.num_cols = num_cols_;
    csr.row_offsets.resize(static_cast<std::size_t>(num_vertices_) + 1);
    for (std::size_t i = 0; i < csr.row_offsets.size(); ++i)
      csr.row_offsets[i] = static_cast<E>(row_offsets_[i]);
    csr.column_indices.resize(static_cast<std::size_t>(num_edges_));
    for (std::uint64_t b = 0; b < this->num_blocks(); ++b)
      this->decode_block_into(
          b, csr.column_indices.data() + b * blockcodec::block_edges);
    csr.values.assign(weights_.begin(), weights_.end());
    return csr;
  }

 private:
  V num_vertices_ = 0;
  V num_cols_ = 0;
  std::uint64_t num_edges_ = 0;
  std::uint64_t cookie_ = 0;
  std::vector<std::uint64_t> row_offsets_;    ///< size V+1 (64-bit: >2^31-edge safe)
  std::vector<std::uint64_t> block_offsets_;  ///< size num_blocks+1
  std::vector<std::uint8_t> bytes_;           ///< blocks + trailing slop
  std::vector<W> weights_;                    ///< parallel to edge ids
};

// ---------------------------------------------------------------------------
// varint_graph: the scalar LEB128 baseline (previous representation)
// ---------------------------------------------------------------------------

/// Forward-iteration-only varint-delta graph — the byte-at-a-time decoder
/// `compressed_graph` replaced.  Kept as the live decode baseline for
/// bench_compressed's block-vs-scalar headline and the codec differential
/// tests; not operator-capable (no random edge access, by design).
template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
class varint_graph {
 public:
  using vertex_type = V;
  using edge_type = E;
  using weight_type = W;

  varint_graph() = default;

  explicit varint_graph(csr_t<V, E, W> const& csr)
      : num_vertices_(csr.num_rows),
        num_edges_(csr.num_edges()),
        offsets_(static_cast<std::size_t>(csr.num_rows) + 1, 0),
        weights_(csr.values.begin(), csr.values.end()) {
    bytes_.reserve(csr.column_indices.size());  // >=1 byte per edge
    for (V v = 0; v < csr.num_rows; ++v) {
      offsets_[static_cast<std::size_t>(v)] = bytes_.size();
      V prev = v;  // first delta is relative to the vertex id
      bool first = true;
      for (std::size_t e =
               static_cast<std::size_t>(csr.row_offsets[static_cast<std::size_t>(v)]);
           e < static_cast<std::size_t>(
                   csr.row_offsets[static_cast<std::size_t>(v) + 1]);
           ++e) {
        V const nb = csr.column_indices[e];
        if (first) {
          varint::encode(bytes_, varint::zigzag(static_cast<std::int64_t>(nb) -
                                                static_cast<std::int64_t>(v)));
          first = false;
        } else {
          expects(nb > prev, "varint_graph: adjacency must be sorted "
                             "and duplicate-free");
          varint::encode(bytes_,
                         static_cast<std::uint64_t>(nb - prev) - 1);
        }
        prev = nb;
      }
      degrees_.push_back(csr.row_offsets[static_cast<std::size_t>(v) + 1] -
                         csr.row_offsets[static_cast<std::size_t>(v)]);
    }
    offsets_[static_cast<std::size_t>(csr.num_rows)] = bytes_.size();
    weight_offsets_.assign(csr.row_offsets.begin(), csr.row_offsets.end());
  }

  V get_num_vertices() const { return num_vertices_; }
  E get_num_edges() const { return num_edges_; }
  E get_out_degree(V v) const {
    return degrees_[static_cast<std::size_t>(v)];
  }

  std::size_t adjacency_bytes() const { return bytes_.size(); }
  std::size_t uncompressed_adjacency_bytes() const {
    return static_cast<std::size_t>(num_edges_) * sizeof(V);
  }
  double compression_ratio() const {
    return bytes_.empty()
               ? 1.0
               : static_cast<double>(uncompressed_adjacency_bytes()) /
                     static_cast<double>(bytes_.size());
  }

  /// Visit every out-neighbor of v: fn(dst, weight) — byte-at-a-time.
  template <typename F>
  void for_each_neighbor(V v, F&& fn) const {
    std::size_t pos = offsets_[static_cast<std::size_t>(v)];
    E const deg = degrees_[static_cast<std::size_t>(v)];
    if (deg == 0)
      return;
    E const wbase = weight_offsets_[static_cast<std::size_t>(v)];
    V nb = static_cast<V>(
        static_cast<std::int64_t>(v) +
        varint::unzigzag(varint::decode(bytes_.data(), pos)));
    fn(nb, weights_[static_cast<std::size_t>(wbase)]);
    for (E k = 1; k < deg; ++k) {
      nb = static_cast<V>(nb + 1 +
                          static_cast<V>(varint::decode(bytes_.data(), pos)));
      fn(nb, weights_[static_cast<std::size_t>(wbase + k)]);
    }
  }

 private:
  V num_vertices_ = 0;
  E num_edges_ = 0;
  std::vector<std::size_t> offsets_;  ///< byte offset of each vertex's run
  std::vector<E> degrees_;
  std::vector<std::uint8_t> bytes_;   ///< varint-delta adjacency
  std::vector<W> weights_;            ///< parallel to logical edge order
  std::vector<E> weight_offsets_;     ///< == CSR row offsets
};

}  // namespace essentials::graph

namespace essentials::algorithms {

/// SSSP over any graph exposing `for_each_neighbor` (sequential reference
/// loop + the same relaxation).  Works for both `compressed_graph` and the
/// `varint_graph` baseline; the memory-bound anchor of the compression
/// bench.
template <typename CG>
std::vector<typename CG::weight_type> sssp_compressed(
    CG const& g, typename CG::vertex_type source) {
  using V = typename CG::vertex_type;
  using W = typename CG::weight_type;
  expects(source >= 0 && source < g.get_num_vertices(),
          "sssp_compressed: source out of range");
  std::vector<W> dist(static_cast<std::size_t>(g.get_num_vertices()),
                      infinity_v<W>);
  dist[static_cast<std::size_t>(source)] = W{0};
  std::vector<V> frontier{source}, next;
  while (!frontier.empty()) {
    next.clear();
    for (V const v : frontier) {
      W const d = dist[static_cast<std::size_t>(v)];
      g.for_each_neighbor(v, [&](V nb, W w) {
        if (d + w < dist[static_cast<std::size_t>(nb)]) {
          dist[static_cast<std::size_t>(nb)] = d + w;
          next.push_back(nb);
        }
      });
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier.swap(next);
  }
  return dist;
}

}  // namespace essentials::algorithms
