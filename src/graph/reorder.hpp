#pragma once

/// \file graph/reorder.hpp
/// \brief Vertex relabeling (reordering) transformations — the locality
/// lever behind partitioning and cache behaviour.  A reorder is just
/// another "underlying representation" in the paper's sense: the graph's
/// structure is unchanged, ids are permuted.
///
/// Provided orders:
///  - degree-descending (hub-first): groups the power-law head together,
///    improving frontier locality on skewed graphs;
///  - BFS order (Cuthill–McKee flavoured): places neighbors near each
///    other, shrinking the CSR's column-index working set on meshes.
///
/// `apply_permutation` rebuilds a COO under a new labeling;
/// `permutation_inverse` maps results computed on the reordered graph back
/// to original ids (tested round-trip in test_structures).
///
/// Compression interaction: reordering is the cheap lever for the block
/// codec's footprint (graph/compressed.hpp).  Encoded bytes-per-edge
/// tracks the magnitude of consecutive column-id deltas, so orders that
/// place neighbors near each other (BFS order on meshes, degree order on
/// power-law graphs — hubs get small ids, and most edges point at hubs)
/// shrink deltas into the codec's 1-byte class.  bench_compressed's
/// reorder-sensitivity hook measures exactly this: compression ratio of
/// the same graph under original vs degree vs BFS labelings
/// (BENCH_compressed.json, `reorder_sensitivity`).

#include <algorithm>
#include <cstddef>
#include <deque>
#include <numeric>
#include <vector>

#include "core/types.hpp"
#include "graph/formats.hpp"
#include "parallel/for_each.hpp"
#include "parallel/sort.hpp"
#include "parallel/thread_pool.hpp"

namespace essentials::graph {

/// new_id[v] = position of old vertex v in the new labeling.
template <typename V = vertex_t>
using permutation_t = std::vector<V>;

/// Degree-descending order: new id 0 is the highest-out-degree vertex.
/// Ties keep original id order, so the result is deterministic — and since
/// the sorted elements are *distinct* vertex ids, the unstable
/// `parallel::sort` under the (degree desc, id asc) comparator reproduces
/// the historical `std::stable_sort` output exactly, which is what lets
/// the named locality lever run multi-threaded on million-vertex graphs.
template <typename V, typename E, typename W>
permutation_t<V> order_by_degree(csr_t<V, E, W> const& csr) {
  std::size_t const n = static_cast<std::size_t>(csr.num_rows);
  auto& pool = parallel::default_pool();
  std::vector<E> degree(n);
  parallel::parallel_for(pool, 0, n, [&](std::size_t v) {
    degree[v] = csr.row_offsets[v + 1] - csr.row_offsets[v];
  });
  std::vector<V> by_degree(n);
  parallel::parallel_for(pool, 0, n,
                         [&](std::size_t v) { by_degree[v] = static_cast<V>(v); });
  parallel::sort(pool, by_degree, [&](V a, V b) {
    E const da = degree[static_cast<std::size_t>(a)];
    E const db = degree[static_cast<std::size_t>(b)];
    if (da != db)
      return da > db;
    return a < b;  // id tiebreak == stability over distinct elements
  });
  permutation_t<V> new_id(n);
  parallel::parallel_for(pool, 0, n, [&](std::size_t pos) {
    new_id[static_cast<std::size_t>(by_degree[pos])] = static_cast<V>(pos);
  });
  return new_id;
}

/// BFS order from `root`; unreached vertices are appended in id order.
template <typename V, typename E, typename W>
permutation_t<V> order_by_bfs(csr_t<V, E, W> const& csr, V root = V{0}) {
  std::size_t const n = static_cast<std::size_t>(csr.num_rows);
  permutation_t<V> new_id(n, invalid_vertex<V>);
  if (n == 0)
    return new_id;
  expects(root >= 0 && static_cast<std::size_t>(root) < n,
          "order_by_bfs: root out of range");
  V next = 0;
  std::deque<V> queue{root};
  new_id[static_cast<std::size_t>(root)] = next++;
  while (!queue.empty()) {
    V const v = queue.front();
    queue.pop_front();
    for (E e = csr.row_offsets[static_cast<std::size_t>(v)];
         e < csr.row_offsets[static_cast<std::size_t>(v) + 1]; ++e) {
      V const nb = csr.column_indices[static_cast<std::size_t>(e)];
      if (new_id[static_cast<std::size_t>(nb)] == invalid_vertex<V>) {
        new_id[static_cast<std::size_t>(nb)] = next++;
        queue.push_back(nb);
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v)
    if (new_id[v] == invalid_vertex<V>)
      new_id[v] = next++;
  return new_id;
}

/// Relabel every edge of `coo` through `new_id`.  Edge order is preserved
/// (slot i maps to slot i), so the relabeling is a parallel elementwise map.
template <typename V, typename E, typename W>
coo_t<V, E, W> apply_permutation(coo_t<V, E, W> const& coo,
                                 permutation_t<V> const& new_id) {
  expects(new_id.size() == static_cast<std::size_t>(coo.num_rows),
          "apply_permutation: size mismatch");
  std::size_t const m = coo.row_indices.size();
  coo_t<V, E, W> out;
  out.num_rows = coo.num_rows;
  out.num_cols = coo.num_cols;
  out.row_indices.resize(m);
  out.column_indices.resize(m);
  out.values.resize(m);
  parallel::parallel_for(parallel::default_pool(), 0, m, [&](std::size_t i) {
    out.row_indices[i] = new_id[static_cast<std::size_t>(coo.row_indices[i])];
    out.column_indices[i] =
        new_id[static_cast<std::size_t>(coo.column_indices[i])];
    out.values[i] = coo.values[i];
  });
  return out;
}

/// old_id[new] such that old_id[new_id[v]] == v.  Parallel scatter — slots
/// are disjoint because new_id is a permutation.
template <typename V>
permutation_t<V> permutation_inverse(permutation_t<V> const& new_id) {
  permutation_t<V> old_id(new_id.size());
  parallel::parallel_for(
      parallel::default_pool(), 0, new_id.size(), [&](std::size_t v) {
        old_id[static_cast<std::size_t>(new_id[v])] = static_cast<V>(v);
      });
  return old_id;
}

/// Mean |new_id[u] - new_id[v]| over edges — the locality score a reorder
/// improves (smaller = neighbors closer in memory).
template <typename V, typename E, typename W>
double average_edge_span(csr_t<V, E, W> const& csr,
                         permutation_t<V> const& new_id) {
  std::size_t const m = csr.column_indices.size();
  if (m == 0)
    return 0.0;
  // Per-vertex map + commutative double addition.  Chunk sums combine in
  // nondeterministic order, so the last few bits can differ run to run —
  // acceptable for a locality *score* (tests compare with tolerance).
  double const total = parallel::parallel_reduce(
      parallel::default_pool(), 0, static_cast<std::size_t>(csr.num_rows),
      0.0,
      [&](std::size_t u) {
        double acc = 0.0;
        for (E e = csr.row_offsets[u]; e < csr.row_offsets[u + 1]; ++e) {
          auto const v = csr.column_indices[static_cast<std::size_t>(e)];
          acc += std::abs(static_cast<double>(new_id[u]) -
                          static_cast<double>(new_id[static_cast<std::size_t>(v)]));
        }
        return acc;
      },
      [](double a, double b) { return a + b; });
  return total / static_cast<double>(m);
}

}  // namespace essentials::graph
