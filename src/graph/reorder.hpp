#pragma once

/// \file graph/reorder.hpp
/// \brief Vertex relabeling (reordering) transformations — the locality
/// lever behind partitioning and cache behaviour.  A reorder is just
/// another "underlying representation" in the paper's sense: the graph's
/// structure is unchanged, ids are permuted.
///
/// Provided orders:
///  - degree-descending (hub-first): groups the power-law head together,
///    improving frontier locality on skewed graphs;
///  - BFS order (Cuthill–McKee flavoured): places neighbors near each
///    other, shrinking the CSR's column-index working set on meshes.
///
/// `apply_permutation` rebuilds a COO under a new labeling;
/// `permutation_inverse` maps results computed on the reordered graph back
/// to original ids (tested round-trip in test_structures).

#include <algorithm>
#include <cstddef>
#include <deque>
#include <numeric>
#include <vector>

#include "core/types.hpp"
#include "graph/formats.hpp"

namespace essentials::graph {

/// new_id[v] = position of old vertex v in the new labeling.
template <typename V = vertex_t>
using permutation_t = std::vector<V>;

/// Degree-descending order: new id 0 is the highest-out-degree vertex.
/// Stable (ties keep original order) so it is deterministic.
template <typename V, typename E, typename W>
permutation_t<V> order_by_degree(csr_t<V, E, W> const& csr) {
  std::size_t const n = static_cast<std::size_t>(csr.num_rows);
  std::vector<V> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), V{0});
  std::stable_sort(by_degree.begin(), by_degree.end(), [&](V a, V b) {
    return (csr.row_offsets[static_cast<std::size_t>(a) + 1] -
            csr.row_offsets[static_cast<std::size_t>(a)]) >
           (csr.row_offsets[static_cast<std::size_t>(b) + 1] -
            csr.row_offsets[static_cast<std::size_t>(b)]);
  });
  permutation_t<V> new_id(n);
  for (std::size_t pos = 0; pos < n; ++pos)
    new_id[static_cast<std::size_t>(by_degree[pos])] = static_cast<V>(pos);
  return new_id;
}

/// BFS order from `root`; unreached vertices are appended in id order.
template <typename V, typename E, typename W>
permutation_t<V> order_by_bfs(csr_t<V, E, W> const& csr, V root = V{0}) {
  std::size_t const n = static_cast<std::size_t>(csr.num_rows);
  permutation_t<V> new_id(n, invalid_vertex<V>);
  if (n == 0)
    return new_id;
  expects(root >= 0 && static_cast<std::size_t>(root) < n,
          "order_by_bfs: root out of range");
  V next = 0;
  std::deque<V> queue{root};
  new_id[static_cast<std::size_t>(root)] = next++;
  while (!queue.empty()) {
    V const v = queue.front();
    queue.pop_front();
    for (E e = csr.row_offsets[static_cast<std::size_t>(v)];
         e < csr.row_offsets[static_cast<std::size_t>(v) + 1]; ++e) {
      V const nb = csr.column_indices[static_cast<std::size_t>(e)];
      if (new_id[static_cast<std::size_t>(nb)] == invalid_vertex<V>) {
        new_id[static_cast<std::size_t>(nb)] = next++;
        queue.push_back(nb);
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v)
    if (new_id[v] == invalid_vertex<V>)
      new_id[v] = next++;
  return new_id;
}

/// Relabel every edge of `coo` through `new_id`.
template <typename V, typename E, typename W>
coo_t<V, E, W> apply_permutation(coo_t<V, E, W> const& coo,
                                 permutation_t<V> const& new_id) {
  expects(new_id.size() == static_cast<std::size_t>(coo.num_rows),
          "apply_permutation: size mismatch");
  coo_t<V, E, W> out;
  out.num_rows = coo.num_rows;
  out.num_cols = coo.num_cols;
  out.reserve(coo.row_indices.size());
  for (std::size_t i = 0; i < coo.row_indices.size(); ++i)
    out.push_back(new_id[static_cast<std::size_t>(coo.row_indices[i])],
                  new_id[static_cast<std::size_t>(coo.column_indices[i])],
                  coo.values[i]);
  return out;
}

/// old_id[new] such that old_id[new_id[v]] == v.
template <typename V>
permutation_t<V> permutation_inverse(permutation_t<V> const& new_id) {
  permutation_t<V> old_id(new_id.size());
  for (std::size_t v = 0; v < new_id.size(); ++v)
    old_id[static_cast<std::size_t>(new_id[v])] = static_cast<V>(v);
  return old_id;
}

/// Mean |new_id[u] - new_id[v]| over edges — the locality score a reorder
/// improves (smaller = neighbors closer in memory).
template <typename V, typename E, typename W>
double average_edge_span(csr_t<V, E, W> const& csr,
                         permutation_t<V> const& new_id) {
  std::size_t const m = csr.column_indices.size();
  if (m == 0)
    return 0.0;
  double total = 0.0;
  for (V u = 0; u < csr.num_rows; ++u)
    for (E e = csr.row_offsets[static_cast<std::size_t>(u)];
         e < csr.row_offsets[static_cast<std::size_t>(u) + 1]; ++e) {
      auto const v = csr.column_indices[static_cast<std::size_t>(e)];
      total += std::abs(
          static_cast<double>(new_id[static_cast<std::size_t>(u)]) -
          static_cast<double>(new_id[static_cast<std::size_t>(v)]));
    }
  return total / static_cast<double>(m);
}

}  // namespace essentials::graph
