#pragma once

/// \file graph/subgraph.hpp
/// \brief Subgraph extraction: induced subgraphs over a vertex subset and
/// k-hop ego networks.  The practical workhorse of analytics pipelines
/// (drill into one community / one user's neighborhood) and the mechanism
/// partitioned processing uses to hand each worker its slice.
///
/// Extraction compacts vertex ids: the result carries the old->new and
/// new->old maps so per-vertex results can be joined back.

#include <cstddef>
#include <deque>
#include <vector>

#include "core/types.hpp"
#include "graph/formats.hpp"

namespace essentials::graph {

template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
struct subgraph_t {
  coo_t<V, E, W> edges;        ///< relabeled edge list of the subgraph
  std::vector<V> to_global;    ///< new id -> original id
  std::vector<V> to_local;     ///< original id -> new id (invalid_vertex if absent)
};

/// Induced subgraph: keep exactly the vertices with keep[v] == true and the
/// edges with both endpoints kept.
template <typename V, typename E, typename W>
subgraph_t<V, E, W> induced_subgraph(csr_t<V, E, W> const& csr,
                                     std::vector<bool> const& keep) {
  expects(keep.size() == static_cast<std::size_t>(csr.num_rows),
          "induced_subgraph: mask size mismatch");
  subgraph_t<V, E, W> sub;
  sub.to_local.assign(keep.size(), invalid_vertex<V>);
  for (std::size_t v = 0; v < keep.size(); ++v) {
    if (keep[v]) {
      sub.to_local[v] = static_cast<V>(sub.to_global.size());
      sub.to_global.push_back(static_cast<V>(v));
    }
  }
  sub.edges.num_rows = sub.edges.num_cols =
      static_cast<V>(sub.to_global.size());
  for (V const u : sub.to_global) {
    for (E e = csr.row_offsets[static_cast<std::size_t>(u)];
         e < csr.row_offsets[static_cast<std::size_t>(u) + 1]; ++e) {
      V const v = csr.column_indices[static_cast<std::size_t>(e)];
      if (sub.to_local[static_cast<std::size_t>(v)] != invalid_vertex<V>)
        sub.edges.push_back(sub.to_local[static_cast<std::size_t>(u)],
                            sub.to_local[static_cast<std::size_t>(v)],
                            csr.values[static_cast<std::size_t>(e)]);
    }
  }
  return sub;
}

/// k-hop ego network of `center`: the induced subgraph over all vertices
/// within `hops` out-edges of center (center included).
template <typename V, typename E, typename W>
subgraph_t<V, E, W> ego_network(csr_t<V, E, W> const& csr, V center,
                                int hops) {
  expects(center >= 0 && static_cast<std::size_t>(center) <
                             static_cast<std::size_t>(csr.num_rows),
          "ego_network: center out of range");
  expects(hops >= 0, "ego_network: negative hop count");
  std::vector<bool> keep(static_cast<std::size_t>(csr.num_rows), false);
  keep[static_cast<std::size_t>(center)] = true;
  std::deque<std::pair<V, int>> queue{{center, 0}};
  while (!queue.empty()) {
    auto const [v, depth] = queue.front();
    queue.pop_front();
    if (depth == hops)
      continue;
    for (E e = csr.row_offsets[static_cast<std::size_t>(v)];
         e < csr.row_offsets[static_cast<std::size_t>(v) + 1]; ++e) {
      V const nb = csr.column_indices[static_cast<std::size_t>(e)];
      if (!keep[static_cast<std::size_t>(nb)]) {
        keep[static_cast<std::size_t>(nb)] = true;
        queue.emplace_back(nb, depth + 1);
      }
    }
  }
  // Local ids follow ascending original id; use to_local[center] to find
  // the center inside the ego network.
  return induced_subgraph(csr, keep);
}

}  // namespace essentials::graph
