#pragma once

/// \file graph/graph.hpp
/// \brief The native-graph data structure: `graph_t`, a variadic-inheritance
/// composition of representation *views* queried through one graph-focused
/// API.
///
/// Paper Listing 1: "In our framework, we rely on variadic inheritance to
/// support multiple underlying data structures."  A `graph_t<csr_view<>>`
/// is a push-only graph; a `graph_t<csr_view<>, csc_view<>>` retains both
/// the original and the transposed structure, enabling push *and* pull
/// traversals (paper §III-C) at the cost of memory space.  Member functions
/// are constrained (`requires`) on which views are present, so asking a
/// push-only graph for in-edges is a compile-time error, not a runtime one.

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <tuple>
#include <type_traits>
#include <utility>

#include "core/types.hpp"
#include "graph/build.hpp"
#include "graph/formats.hpp"

namespace essentials::graph {

/// A half-open range of integer ids (edge or vertex) usable in range-for:
/// `for (auto e : g.get_edges(v))` — the paper's traversal idiom.
template <typename T>
class id_range {
 public:
  class iterator {
   public:
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = T;
    using iterator_category = std::forward_iterator_tag;
    iterator() = default;
    explicit iterator(T value) : value_(value) {}
    T operator*() const { return value_; }
    iterator& operator++() {
      ++value_;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++value_;
      return copy;
    }
    friend bool operator==(iterator const&, iterator const&) = default;

   private:
    T value_{};
  };

  id_range(T begin, T end) : begin_(begin), end_(end) {}
  iterator begin() const { return iterator(begin_); }
  iterator end() const { return iterator(end_); }
  std::size_t size() const { return static_cast<std::size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }

 private:
  T begin_;
  T end_;
};

// ---------------------------------------------------------------------------
// Representation views
// ---------------------------------------------------------------------------

struct csr_view_tag {};
struct csc_view_tag {};
struct coo_view_tag {};

/// CSR view: owns a csr_t and answers push-side (out-edge) queries.
template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
class csr_view : public csr_view_tag {
 public:
  using vertex_type = V;
  using edge_type = E;
  using weight_type = W;

  void set_csr(csr_t<V, E, W> csr) { csr_ = std::move(csr); }
  csr_t<V, E, W> const& csr() const { return csr_; }

  V csr_num_vertices() const { return csr_.num_rows; }
  E csr_num_edges() const { return csr_.num_edges(); }

  E csr_out_degree(V v) const {
    return csr_.row_offsets[static_cast<std::size_t>(v) + 1] -
           csr_.row_offsets[static_cast<std::size_t>(v)];
  }
  id_range<E> csr_out_edges(V v) const {
    return {csr_.row_offsets[static_cast<std::size_t>(v)],
            csr_.row_offsets[static_cast<std::size_t>(v) + 1]};
  }
  V csr_dest(E e) const {
    return csr_.column_indices[static_cast<std::size_t>(e)];
  }
  W csr_weight(E e) const { return csr_.values[static_cast<std::size_t>(e)]; }

  /// Source of a CSR edge id: binary search over row_offsets.  O(log V),
  /// used by edge-centric frontiers that carry only edge ids.
  V csr_source(E e) const {
    auto const it = std::upper_bound(csr_.row_offsets.begin(),
                                     csr_.row_offsets.end(), e);
    return static_cast<V>((it - csr_.row_offsets.begin()) - 1);
  }

 protected:
  csr_t<V, E, W> csr_;
};

/// CSC view: owns a csc_t and answers pull-side (in-edge) queries.  Edge ids
/// handed out by this view index the CSC arrays and are distinct from CSR
/// edge ids of the same logical edge.
template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
class csc_view : public csc_view_tag {
 public:
  using vertex_type = V;
  using edge_type = E;
  using weight_type = W;

  void set_csc(csc_t<V, E, W> csc) { csc_ = std::move(csc); }
  csc_t<V, E, W> const& csc() const { return csc_; }

  V csc_num_vertices() const { return csc_.num_cols; }
  E csc_num_edges() const { return csc_.num_edges(); }

  E csc_in_degree(V v) const {
    return csc_.column_offsets[static_cast<std::size_t>(v) + 1] -
           csc_.column_offsets[static_cast<std::size_t>(v)];
  }
  id_range<E> csc_in_edges(V v) const {
    return {csc_.column_offsets[static_cast<std::size_t>(v)],
            csc_.column_offsets[static_cast<std::size_t>(v) + 1]};
  }
  V csc_source(E e) const {
    return csc_.row_indices[static_cast<std::size_t>(e)];
  }
  W csc_weight(E e) const { return csc_.values[static_cast<std::size_t>(e)]; }

 protected:
  csc_t<V, E, W> csc_;
};

/// COO view: keeps the raw edge list around, e.g. for edge-centric programs
/// that iterate all edges regardless of endpoint, or for re-partitioning.
template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
class coo_view : public coo_view_tag {
 public:
  using vertex_type = V;
  using edge_type = E;
  using weight_type = W;

  void set_coo(coo_t<V, E, W> coo) { coo_ = std::move(coo); }
  coo_t<V, E, W> const& coo() const { return coo_; }

  E coo_num_edges() const { return coo_.num_edges(); }
  V coo_source(E e) const {
    return coo_.row_indices[static_cast<std::size_t>(e)];
  }
  V coo_dest(E e) const {
    return coo_.column_indices[static_cast<std::size_t>(e)];
  }
  W coo_weight(E e) const { return coo_.values[static_cast<std::size_t>(e)]; }

 protected:
  coo_t<V, E, W> coo_;
};

// ---------------------------------------------------------------------------
// graph_t
// ---------------------------------------------------------------------------

/// The native graph: inherits every requested view and exposes one
/// graph-focused API on top.  Out-edge queries route to the CSR view,
/// in-edge queries to the CSC view; where both exist, generic queries
/// (vertex/edge counts) prefer CSR.
template <typename... Views>
class graph_t : public Views... {
  using first_view = std::tuple_element_t<0, std::tuple<Views...>>;

 public:
  using vertex_type = typename first_view::vertex_type;
  using edge_type = typename first_view::edge_type;
  using weight_type = typename first_view::weight_type;

  static constexpr bool has_csr =
      (std::is_base_of_v<csr_view_tag, Views> || ...);
  static constexpr bool has_csc =
      (std::is_base_of_v<csc_view_tag, Views> || ...);
  static constexpr bool has_coo =
      (std::is_base_of_v<coo_view_tag, Views> || ...);

  // --- whole-graph queries --------------------------------------------------

  vertex_type get_num_vertices() const {
    if constexpr (has_csr)
      return this->csr_num_vertices();
    else
      return this->csc_num_vertices();
  }

  edge_type get_num_edges() const {
    if constexpr (has_csr)
      return this->csr_num_edges();
    else
      return this->csc_num_edges();
  }

  // --- push-side (out-edge) queries, Listing 1/3 API ------------------------

  edge_type get_out_degree(vertex_type v) const
    requires has_csr
  {
    return this->csr_out_degree(v);
  }

  /// Out-edge ids of v (CSR edge-id space): `for (auto e : g.get_edges(v))`.
  id_range<edge_type> get_edges(vertex_type v) const
    requires has_csr
  {
    return this->csr_out_edges(v);
  }

  vertex_type get_dest_vertex(edge_type e) const
    requires has_csr
  {
    return this->csr_dest(e);
  }

  vertex_type get_source_vertex(edge_type e) const
    requires has_csr
  {
    return this->csr_source(e);
  }

  /// "Get edge weight for a given edge." — Listing 1.
  weight_type get_edge_weight(edge_type e) const
    requires has_csr
  {
    return this->csr_weight(e);
  }

  // --- pull-side (in-edge) queries -------------------------------------------

  edge_type get_in_degree(vertex_type v) const
    requires has_csc
  {
    return this->csc_in_degree(v);
  }

  /// In-edge ids of v (CSC edge-id space).
  id_range<edge_type> get_in_edges(vertex_type v) const
    requires has_csc
  {
    return this->csc_in_edges(v);
  }

  vertex_type get_in_source_vertex(edge_type e) const
    requires has_csc
  {
    return this->csc_source(e);
  }

  weight_type get_in_edge_weight(edge_type e) const
    requires has_csc
  {
    return this->csc_weight(e);
  }

  /// Vertex-id range [0, V) for compute operators over all vertices.
  id_range<vertex_type> get_vertices() const {
    return {vertex_type{0}, get_num_vertices()};
  }
};

/// Push-only graph (CSR).
using graph_csr = graph_t<csr_view<>>;
/// Pull-only graph (CSC).
using graph_csc = graph_t<csc_view<>>;
/// Push + pull graph (CSR + CSC), required by direction-optimizing traversal.
using graph_push_pull = graph_t<csr_view<>, csc_view<>>;
/// Everything retained, including the raw edge list.
using graph_full = graph_t<csr_view<>, csc_view<>, coo_view<>>;

/// Build a graph_t from an edge list, populating exactly the views the
/// chosen GraphT inherits.  The COO is sorted/deduplicated first so that all
/// views agree on the canonical edge order.
template <typename GraphT, typename V, typename E, typename W>
GraphT from_coo(coo_t<V, E, W> coo,
                duplicate_policy policy = duplicate_policy::keep_first) {
  sort_and_deduplicate(coo, policy);
  GraphT g;
  if constexpr (GraphT::has_csr)
    g.set_csr(build_csr(coo));
  if constexpr (GraphT::has_csc)
    g.set_csc(build_csc(coo));
  if constexpr (GraphT::has_coo)
    g.set_coo(std::move(coo));
  return g;
}

}  // namespace essentials::graph
