#pragma once

/// \file core/enactor.hpp
/// \brief The iterative loop structure and convergence conditions — the
/// paper's fourth essential component: "loop structure/convergence
/// condition(s) to organize and schedule the computation and completion of
/// a graph algorithm."
///
/// Two drivers, one per timing model:
///  - `bsp_loop`: Listing 4's `while (f.size() != 0)` generalized — run a
///    user step (advance/filter/compute composition) per superstep until a
///    convergence condition fires.  The step itself decides which operators
///    and policies to use, so the same loop hosts push, pull and
///    direction-optimizing algorithms.
///  - `async_loop`: no supersteps — a crew of consumers pops active
///    vertices from an asynchronous queue frontier until quiescence (or an
///    explicit condition closes the queue).
///
/// Convergence conditions are small composable function objects; `either`
/// (binary) and `any_of` (variadic) compose them ("empty frontier OR
/// iteration cap"), mirroring how real systems bound runaway algorithms.
///
/// Both drivers feed the telemetry layer (core/telemetry.hpp): when a
/// `telemetry::scoped_recording` is active on the enacting thread,
/// `bsp_loop` opens one superstep record per iteration (frontier sizes,
/// wall time) and the operators invoked by the step fill in work counts.
/// Without a recording scope — or with telemetry compiled out — the hooks
/// are a folded-away null check.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/frontier/frontier.hpp"
#include "core/telemetry.hpp"
#include "core/types.hpp"

namespace essentials::enactor {

// ---------------------------------------------------------------------------
// Convergence conditions
// ---------------------------------------------------------------------------

/// Converged when the frontier has no active elements — the default
/// condition of every traversal algorithm (Listing 4).
struct frontier_empty {
  template <typename F>
  bool operator()(F const& f, std::size_t /*iteration*/) const {
    return f.empty();
  }
};

/// Survey-flavoured spelling of the same condition (TLAV literature calls
/// this "halt on empty frontier").
using empty_frontier = frontier_empty;

/// Converged after a fixed number of supersteps — the condition of
/// fixed-point algorithms sampled for a bounded time (or a safety net).
struct max_iterations {
  std::size_t limit;
  template <typename F>
  bool operator()(F const& /*f*/, std::size_t iteration) const {
    return iteration >= limit;
  }
};

/// Converged when a user-supplied measurement (e.g. L1 delta of ranks)
/// drops below a threshold.  The measurement runs once per superstep.
template <typename MeasureF>
struct value_below {
  MeasureF measure;
  double threshold;
  template <typename F>
  bool operator()(F const& /*f*/, std::size_t /*iteration*/) const {
    return measure() < threshold;
  }
};

template <typename MeasureF>
value_below(MeasureF, double) -> value_below<MeasureF>;

/// Cooperative cancellation: a copyable handle on a shared flag.  The
/// issuing side (an engine scheduler, a signal handler, another thread)
/// calls `request_cancel()`; the enacting side composes a
/// `cancelled{token}` (or `cancelled_or_deadline`) condition into its loop
/// and stops at the next superstep boundary.  Copies share the flag, so a
/// token can be captured by the job and kept by the scheduler at once.
class cancel_token {
 public:
  cancel_token() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Ask the owning computation to stop at its next convergence check.
  void request_cancel() const { flag_->store(true, std::memory_order_release); }

  /// True once any copy of this token has been cancelled.
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

  /// Reset for reuse (single-threaded setup phases only).
  void reset() const { flag_->store(false, std::memory_order_release); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Converged when a cancellation token fired — cooperative cancellation as
/// a first-class convergence condition.
struct cancelled {
  cancel_token token;
  template <typename F>
  bool operator()(F const& /*f*/, std::size_t /*iteration*/) const {
    return token.cancelled();
  }
};

/// Converged when a wall-clock budget is exhausted — the deadline as a
/// first-class composable condition.  Fixes the gap where runaway
/// algorithms could only be bounded by iteration count: an algorithm with
/// few, slow supersteps blows any iteration cap long after it blew the
/// latency budget.  Use standalone or via `any_of`:
///
///   bsp_loop(f, step, any_of{frontier_empty{}, time_budget{50ms}});
///
/// The check runs once per superstep, so the loop overshoots by at most one
/// superstep's wall time (cooperative, like every condition here).
class time_budget {
 public:
  using clock = std::chrono::steady_clock;

  /// Budget relative to *now* (construction time).
  explicit time_budget(clock::duration budget)
      : deadline_(clock::now() + budget) {}

  /// Absolute deadline (e.g. a job's admission-time deadline).
  static time_budget until(clock::time_point deadline) {
    time_budget b;
    b.deadline_ = deadline;
    return b;
  }

  /// A budget that never expires (identity under `any_of`).
  static time_budget unlimited() {
    return until(clock::time_point::max());
  }

  clock::time_point deadline() const { return deadline_; }

  bool expired() const {
    return deadline_ != clock::time_point::max() && clock::now() >= deadline_;
  }

  template <typename F>
  bool operator()(F const& /*f*/, std::size_t /*iteration*/) const {
    return expired();
  }

 private:
  time_budget() = default;
  clock::time_point deadline_ = clock::time_point::max();
};

/// The engine's stop condition: cancellation OR deadline, in one check.
/// `why()` reports which fired (deadline wins ties), so a scheduler can
/// classify the outcome after the loop returns.
struct cancelled_or_deadline {
  cancel_token token;
  time_budget budget = time_budget::unlimited();

  enum class reason { none, cancelled, deadline };

  template <typename F>
  bool operator()(F const& /*f*/, std::size_t /*iteration*/) const {
    return budget.expired() || token.cancelled();
  }

  reason why() const {
    if (budget.expired())
      return reason::deadline;
    if (token.cancelled())
      return reason::cancelled;
    return reason::none;
  }
};

/// Disjunction of two conditions.
template <typename A, typename B>
struct either {
  A first;
  B second;
  template <typename F>
  bool operator()(F const& f, std::size_t iteration) const {
    return first(f, iteration) || second(f, iteration);
  }
};

template <typename A, typename B>
either(A, B) -> either<A, B>;

/// Variadic disjunction: converged when *any* of the conditions holds.
/// Generalizes `either` to N conditions without nesting; `any_of{}` (zero
/// conditions) never converges on its own — pair it with a frontier test.
template <typename... Cs>
struct any_of {
  std::tuple<Cs...> conditions;

  explicit any_of(Cs... cs) : conditions(std::move(cs)...) {}

  template <typename F>
  bool operator()(F const& f, std::size_t iteration) const {
    return std::apply(
        [&](Cs const&... c) { return (c(f, iteration) || ...); }, conditions);
  }
};

template <typename... Cs>
any_of(Cs...) -> any_of<Cs...>;

// ---------------------------------------------------------------------------
// BSP driver
// ---------------------------------------------------------------------------

/// Outcome summary of a loop run.  These are the always-on aggregates; the
/// *full* per-superstep trace (frontier sizes, direction decisions, work
/// counts, per-operator timings) is captured by the telemetry layer when a
/// `telemetry::scoped_recording` is active — see core/telemetry.hpp.
struct enact_stats {
  std::size_t iterations = 0;       ///< supersteps executed
  std::size_t total_processed = 0;  ///< sum of input-frontier sizes
  std::size_t total_emitted = 0;    ///< sum of output-frontier sizes
  double millis = 0.0;              ///< wall time of the whole loop
};

/// Bulk-synchronous iterative loop: starting from `frontier`, repeatedly
/// invoke `step(frontier, iteration)` — which returns the next frontier —
/// until `converged(frontier, iteration)` holds.  Convergence is tested
/// *before* each superstep, so a converged initial frontier runs zero
/// steps.
///
/// Telemetry invariant: with a recording scope active, exactly one
/// superstep record is appended per executed iteration, with
/// `frontier_in`/`frontier_out` matching the step's input/output sizes.
template <typename FrontierT, typename StepF,
          typename ConvergedF = frontier_empty>
enact_stats bsp_loop(FrontierT frontier, StepF step,
                     ConvergedF converged = {}) {
  enact_stats stats;
  telemetry::recorder* const rec = telemetry::current();
  auto const start = std::chrono::steady_clock::now();
  while (!converged(frontier, stats.iterations)) {
    std::size_t const in_size = frontier.size();
    if (rec)
      rec->begin_superstep(in_size);
    stats.total_processed += in_size;
    frontier = step(std::move(frontier), stats.iterations);
    ++stats.iterations;
    std::size_t const out_size = frontier.size();
    stats.total_emitted += out_size;
    if (rec)
      rec->end_superstep(out_size);
  }
  stats.millis = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  return stats;
}

// ---------------------------------------------------------------------------
// Asynchronous driver
// ---------------------------------------------------------------------------

/// Asynchronous loop: `num_workers` consumers pop active vertices from the
/// queue frontier and run `body(v)` on each; `body` re-activates vertices
/// by calling `f.add_vertex(...)`.  Returns when the frontier is quiescent
/// (every activation processed, nothing in flight) — the asynchronous
/// convergence condition.  Dedicated threads (not the pool) because
/// consumers block on pops; blocking pool workers could starve unrelated
/// operators sharing the pool.
template <typename T, typename BodyF>
std::size_t async_loop(frontier::async_queue_frontier<T>& f,
                       std::size_t num_workers, BodyF body) {
  expects(num_workers >= 1, "async_loop: need at least one worker");
  auto const start = std::chrono::steady_clock::now();
  std::vector<std::thread> crew;
  crew.reserve(num_workers);
  std::vector<std::size_t> processed(num_workers, 0);
  for (std::size_t w = 0; w < num_workers; ++w) {
    crew.emplace_back([&f, &body, &processed, w] {
      T v{};
      while (f.pop_vertex(v)) {
        body(v);
        f.finish_vertex();
        ++processed[w];
      }
    });
  }
  std::size_t total = 0;
  for (std::size_t w = 0; w < num_workers; ++w) {
    crew[w].join();
    total += processed[w];
  }
  // Asynchronous runs have no supersteps; the trace records the whole
  // drain-to-quiescence phase as one op (items == activations processed).
  if (telemetry::recorder* const rec = telemetry::current()) {
    telemetry::op_record op;
    op.name = "async_loop";
    op.items_in = total;
    op.items_out = total;
    op.pool_lanes = num_workers;
    op.async = true;
    op.millis = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    rec->add_op(std::move(op));
  }
  return total;
}

/// Asynchronous loop with a stop condition: identical to `async_loop`, but
/// each consumer re-evaluates `should_stop()` (any nullary predicate — a
/// `cancelled_or_deadline` bound to a frontier-free closure, a lambda over
/// a cancel_token...) between items; the first lane to observe it closes
/// the queue, which wakes every blocked consumer and ends the loop even
/// though the frontier is not quiescent.  This is how engine jobs running
/// in the asynchronous timing model honour deadlines and cancellation: the
/// check costs one predicate call per *item*, never per edge.
template <typename T, typename BodyF, typename StopF>
std::size_t async_loop(frontier::async_queue_frontier<T>& f,
                       std::size_t num_workers, BodyF body,
                       StopF should_stop) {
  expects(num_workers >= 1, "async_loop: need at least one worker");
  auto const start = std::chrono::steady_clock::now();
  std::vector<std::thread> crew;
  crew.reserve(num_workers);
  std::vector<std::size_t> processed(num_workers, 0);
  for (std::size_t w = 0; w < num_workers; ++w) {
    crew.emplace_back([&f, &body, &should_stop, &processed, w] {
      T v{};
      while (f.pop_vertex(v)) {
        if (should_stop()) {
          f.finish_vertex();
          f.close();
          break;
        }
        body(v);
        f.finish_vertex();
        ++processed[w];
      }
    });
  }
  std::size_t total = 0;
  for (std::size_t w = 0; w < num_workers; ++w) {
    crew[w].join();
    total += processed[w];
  }
  if (telemetry::recorder* const rec = telemetry::current()) {
    telemetry::op_record op;
    op.name = "async_loop.stoppable";
    op.items_in = total;
    op.items_out = total;
    op.pool_lanes = num_workers;
    op.async = true;
    op.millis = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    rec->add_op(std::move(op));
  }
  return total;
}

}  // namespace essentials::enactor
